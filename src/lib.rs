//! Workspace umbrella for the NecoFuzz reproduction (EuroSys 2026).
//!
//! This crate carries the repository-level examples and integration
//! tests and re-exports every workspace member for one-stop rustdoc
//! navigation. The code lives in the member crates:
//!
//! - [`necofuzz`] — the framework: agent, harness, validator,
//!   configurator, campaigns, and the parallel campaign orchestrator;
//! - [`nf_fuzz`] — the AFL++-style engine (corpus, bitmap, mutators,
//!   cross-worker sync, persistence, minimization);
//! - [`nf_hv`] — the L0 hypervisor models (KVM, Xen, VirtualBox);
//! - [`nf_silicon`] — the physical-CPU oracle (VM-entry checks);
//! - [`nf_vmx`] — VMCS/VMCB layouts and capability rounding;
//! - [`nf_x86`] — architectural types (CRs, MSRs, segments, paging);
//! - [`nf_coverage`] — line coverage maps and set algebra;
//! - [`nf_stats`] — medians, Mann-Whitney U, Cohen's d, violins;
//! - [`nf_baselines`] — Syzkaller/IRIS/selftests/XTF models;
//! - [`nf_bench`] — drivers regenerating the paper's tables/figures.
//!
//! Start at `README.md` for the quickstart and `docs/ARCHITECTURE.md`
//! for the crate map and the orchestrator fan-out diagram.

pub use necofuzz;
pub use nf_baselines;
pub use nf_bench;
pub use nf_coverage;
pub use nf_fuzz;
pub use nf_hv;
pub use nf_silicon;
pub use nf_stats;
pub use nf_vmx;
pub use nf_x86;
pub use rand;
