//! Baseline fuzzers and test suites (paper §5.1).
//!
//! Behavioural models of the comparison points, each reproducing the
//! mechanism that limits it:
//!
//! - [`syzkaller`]: syscall fuzzer with a manually written nested-VMX
//!   harness on Intel (golden seed + raw random field values) and **no
//!   AMD harness** — it reaches the ioctl surface and shallow error arms
//!   but rarely passes the full check cascade.
//! - [`iris`]: record-and-replay of VMCS traces captured from
//!   well-behaved guests; VM-state diversity is limited to the recorded
//!   set and it crashes minutes into a nested run.
//! - [`selftests`] / [`kvm_unit_tests`]: fixed deterministic test lists
//!   (60 and 84 cases), including host-side ioctl tests for selftests.
//! - [`xtf`]: the Xen Test Framework's small nested smoke tests.

use nf_coverage::{CovMap, FileId, LineSet};
use nf_hv::{HvConfig, IoctlOp, L0Hypervisor};
use nf_silicon::{golden_vmcb, golden_vmcs, GuestInstr};
use nf_vmx::{Vmcs, VmcsField, VmxCapabilities};
use nf_x86::{CpuVendor, Cr4, FeatureSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of running a baseline tool against a hypervisor.
#[derive(Debug)]
pub struct BaselineResult {
    /// Hourly coverage fractions of the vendor-matching nested file.
    pub hourly: Vec<f64>,
    /// Final coverage fraction.
    pub final_coverage: f64,
    /// Covered line set (for the set-algebra rows).
    pub lines: LineSet,
    /// Coverage geometry.
    pub map: CovMap,
    /// Measured file.
    pub file: FileId,
}

fn vendor_file(hv: &dyn L0Hypervisor, vendor: CpuVendor) -> FileId {
    match vendor {
        CpuVendor::Intel => hv.intel_file(),
        CpuVendor::Amd => hv.amd_file().unwrap_or_else(|| hv.intel_file()),
    }
}

fn caps_for(vendor: CpuVendor) -> VmxCapabilities {
    VmxCapabilities::from_features(FeatureSet::default_for(vendor).sanitized(vendor))
}

fn boot_intel_nested(hv: &mut dyn L0Hypervisor) {
    hv.l1_exec(GuestInstr::MovToCr(
        nf_silicon::CrIndex::Cr4,
        Cr4::VMXE | Cr4::PAE,
    ));
    hv.l1_exec(GuestInstr::Vmxon(0x1000));
    hv.l1_exec(GuestInstr::Vmclear(0x2000));
    hv.l1_exec(GuestInstr::Vmptrld(0x2000));
}

fn write_vmcs(hv: &mut dyn L0Hypervisor, vmcs: &Vmcs) {
    for &f in VmcsField::ALL {
        if f.writable() {
            hv.l1_exec(GuestInstr::Vmwrite(f.encoding(), vmcs.read(f)));
        }
    }
}

/// Syzkaller model: KVM ioctl fuzzing plus the manual nested harness.
pub fn syzkaller(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    vendor: CpuVendor,
    hours: u32,
    execs_per_hour: u32,
    seed: u64,
) -> BaselineResult {
    let mut hv = factory(HvConfig::default_for(vendor));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a5a);
    let map = hv.coverage_map().clone();
    let file = vendor_file(hv.as_ref(), vendor);
    let mut lines = LineSet::for_map(&map);
    let mut hourly = Vec::new();
    let caps = caps_for(vendor);
    let golden = golden_vmcs(&caps);

    for _hour in 0..hours {
        for _ in 0..execs_per_hour {
            hv.reset_guest();
            if hv.health().dead {
                hv.reboot_host();
            }
            // Syscall surface: a random mix of KVM ioctls.
            for _ in 0..rng.gen_range(0..3) {
                let op = match rng.gen_range(0..5) {
                    0 => IoctlOp::GetNestedState,
                    1 => IoctlOp::SetNestedState,
                    2 => IoctlOp::FreeNestedState,
                    3 => IoctlOp::HardwareSetup,
                    _ => IoctlOp::HardwareUnsetup,
                };
                hv.host_ioctl(op);
            }
            match vendor {
                CpuVendor::Intel => {
                    // The manual nested harness: golden seed, then raw
                    // random values into a few fields ("assigning random
                    // values to VM states", §7.1).
                    boot_intel_nested(hv.as_mut());
                    let mut vmcs = golden.clone();
                    for _ in 0..rng.gen_range(0..6) {
                        let f = VmcsField::ALL[rng.gen_range(0..VmcsField::ALL.len())];
                        vmcs.write(f, rng.gen());
                    }
                    write_vmcs(hv.as_mut(), &vmcs);
                    let entered = matches!(
                        hv.l1_exec(GuestInstr::Vmlaunch),
                        nf_hv::L1Result::L2Entered { runnable: true }
                    );
                    if entered {
                        for _ in 0..rng.gen_range(0..6) {
                            let instr = match rng.gen_range(0..5) {
                                0 => GuestInstr::Cpuid(rng.gen()),
                                1 => GuestInstr::Hlt,
                                2 => GuestInstr::Rdmsr(0x10),
                                3 => GuestInstr::In(rng.gen()),
                                _ => GuestInstr::Pause,
                            };
                            if !matches!(
                                hv.l2_exec(instr),
                                nf_hv::L2Result::NoExit | nf_hv::L2Result::HandledByL0
                            ) {
                                break;
                            }
                        }
                    }
                }
                CpuVendor::Amd => {
                    // No AMD harness: syzkaller only pokes the interface
                    // blindly — vmrun without SVME setup.
                    hv.l1_exec(GuestInstr::Vmrun(rng.gen::<u64>() & 0xfffff000));
                }
            }
            let trace = hv.take_trace();
            lines.add_trace(&map, &trace);
            // Syzkaller must not get credit for its own crash finds here;
            // health reports are simply cleared (it has no Table 6 finds).
            hv.health_mut().reports.clear();
        }
        hourly.push(lines.fraction_of(&map, file));
    }
    let final_coverage = lines.fraction_of(&map, file);
    BaselineResult {
        hourly,
        final_coverage,
        lines,
        map,
        file,
    }
}

/// IRIS model: replay of recorded (well-behaved) VMCS traces; Intel
/// only, and it crashes after a few virtual minutes in the nested
/// environment — coverage is whatever the replays reached by then.
pub fn iris(factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>, seed: u64) -> BaselineResult {
    let mut hv = factory(HvConfig::default_for(CpuVendor::Intel));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1415);
    let map = hv.coverage_map().clone();
    let file = hv.intel_file();
    let mut lines = LineSet::for_map(&map);
    let caps = caps_for(CpuVendor::Intel);

    // The recorded trace corpus: golden states with the small legal
    // variations a real guest OS produces at boot.
    let mut corpus = Vec::new();
    for i in 0..8u64 {
        let mut v = golden_vmcs(&caps);
        v.write(VmcsField::GuestRip, 0x10_0000 + i * 0x40);
        v.write(VmcsField::GuestRsp, 0x20_0000 + i * 0x1000);
        v.write(VmcsField::TscOffset, i * 977);
        if i % 2 == 0 {
            v.write(VmcsField::GuestActivityState, 1); // HLT idle loop
        }
        corpus.push(v);
    }

    // "IRIS was unstable in the nested environment and crashed after a
    // few minutes" (§5.2): ~150 replays before the harness dies.
    for (n, vmcs) in corpus.iter().cycle().take(150).enumerate() {
        hv.reset_guest();
        boot_intel_nested(hv.as_mut());
        write_vmcs(hv.as_mut(), vmcs);
        let _ = hv.l1_exec(GuestInstr::Vmlaunch);
        for _ in 0..4 {
            let instr = match n % 3 {
                0 => GuestInstr::Cpuid(0),
                1 => GuestInstr::Rdtsc,
                _ => GuestInstr::Hlt,
            };
            if !matches!(
                hv.l2_exec(instr),
                nf_hv::L2Result::NoExit | nf_hv::L2Result::HandledByL0
            ) {
                break;
            }
        }
        let _ = rng.gen::<u8>();
        let trace = hv.take_trace();
        lines.add_trace(&map, &trace);
        hv.health_mut().reports.clear();
    }
    let final_coverage = lines.fraction_of(&map, file);
    BaselineResult {
        hourly: vec![final_coverage],
        final_coverage,
        lines,
        map,
        file,
    }
}

/// A deterministic test case of a fixed suite.
type Scenario = fn(&mut dyn L0Hypervisor, CpuVendor);

fn scenario_golden_launch(hv: &mut dyn L0Hypervisor, vendor: CpuVendor) {
    match vendor {
        CpuVendor::Intel => {
            boot_intel_nested(hv);
            let caps = caps_for(vendor);
            write_vmcs(hv, &golden_vmcs(&caps));
            let _ = hv.l1_exec(GuestInstr::Vmlaunch);
            let _ = hv.l2_exec(GuestInstr::Cpuid(0));
            let _ = hv.l1_exec(GuestInstr::Vmresume);
            let _ = hv.l2_exec(GuestInstr::Hlt);
        }
        CpuVendor::Amd => {
            hv.l1_exec(GuestInstr::Wrmsr(
                nf_x86::Msr::Efer.index(),
                nf_x86::Efer::LME | nf_x86::Efer::LMA | nf_x86::Efer::SVME,
            ));
            hv.l1_stage_vmcb(0x5000, golden_vmcb());
            let _ = hv.l1_exec(GuestInstr::Vmrun(0x5000));
            let _ = hv.l2_exec(GuestInstr::Cpuid(0));
            let _ = hv.l2_exec(GuestInstr::Hlt);
        }
    }
}

fn scenario_error_paths(hv: &mut dyn L0Hypervisor, vendor: CpuVendor) {
    match vendor {
        CpuVendor::Intel => {
            let _ = hv.l1_exec(GuestInstr::Vmlaunch); // before vmxon
            boot_intel_nested(hv);
            let _ = hv.l1_exec(GuestInstr::Vmclear(0x1000)); // vmxon ptr
            let _ = hv.l1_exec(GuestInstr::Vmptrld(0x123)); // misaligned
            let _ = hv.l1_exec(GuestInstr::Vmwrite(0xdead_0000, 0)); // bad field
            let _ = hv.l1_exec(GuestInstr::Vmread(VmcsField::VmExitReason.encoding()));
            let _ = hv.l1_exec(GuestInstr::Vmwrite(VmcsField::VmExitReason.encoding(), 7)); // read-only
            let _ = hv.l1_exec(GuestInstr::Vmlaunch); // zeroed vmcs12
        }
        CpuVendor::Amd => {
            hv.l1_exec(GuestInstr::Wrmsr(
                nf_x86::Msr::Efer.index(),
                nf_x86::Efer::LME | nf_x86::Efer::LMA | nf_x86::Efer::SVME,
            ));
            let mut bad = golden_vmcb();
            bad.control.guest_asid = 0;
            hv.l1_stage_vmcb(0x5000, bad);
            let _ = hv.l1_exec(GuestInstr::Vmrun(0x5000));
            let mut bad2 = golden_vmcb();
            bad2.control.intercepts = 0;
            hv.l1_stage_vmcb(0x6000, bad2);
            let _ = hv.l1_exec(GuestInstr::Vmrun(0x6000));
            let _ = hv.l1_exec(GuestInstr::Vmrun(0x9000)); // unstaged
        }
    }
}

fn scenario_feature_paths(hv: &mut dyn L0Hypervisor, vendor: CpuVendor) {
    match vendor {
        CpuVendor::Intel => {
            boot_intel_nested(hv);
            for idx in [0x480u32, 0x481, 0x482, 0x48b, 0x486, 0x488] {
                let _ = hv.l1_exec(GuestInstr::Rdmsr(idx));
            }
            let _ = hv.l1_exec(GuestInstr::Invept(1));
            let _ = hv.l1_exec(GuestInstr::Invvpid(2));
            let _ = hv.l1_exec(GuestInstr::Invept(9)); // bad type
            let _ = hv.l1_exec(GuestInstr::Vmptrst);
            let _ = hv.l1_exec(GuestInstr::Vmxoff);
        }
        CpuVendor::Amd => {
            hv.l1_exec(GuestInstr::Wrmsr(
                nf_x86::Msr::Efer.index(),
                nf_x86::Efer::LME | nf_x86::Efer::LMA | nf_x86::Efer::SVME,
            ));
            hv.l1_stage_vmcb(0x5000, golden_vmcb());
            let _ = hv.l1_exec(GuestInstr::Vmload(0x5000));
            let _ = hv.l1_exec(GuestInstr::Vmsave(0x5000));
            let _ = hv.l1_exec(GuestInstr::Stgi);
            let _ = hv.l1_exec(GuestInstr::Clgi);
            let _ = hv.l1_exec(GuestInstr::Vmmcall);
        }
    }
}

fn scenario_runtime_exits(hv: &mut dyn L0Hypervisor, vendor: CpuVendor) {
    scenario_golden_launch(hv, vendor);
    match vendor {
        CpuVendor::Intel => {
            let _ = hv.l1_exec(GuestInstr::Vmresume);
            for instr in [
                GuestInstr::In(0x60),
                GuestInstr::Out(0x80, 1),
                GuestInstr::Rdmsr(0xc000_0080),
                GuestInstr::Wrmsr(0x277, 0x0007_0406_0007_0406),
                GuestInstr::MovToCr(nf_silicon::CrIndex::Cr3, 0x4000),
                GuestInstr::Rdtsc,
                GuestInstr::Xsetbv(1),
                GuestInstr::Pause,
                GuestInstr::Invlpg(0x1000),
            ] {
                if !matches!(
                    hv.l2_exec(instr),
                    nf_hv::L2Result::NoExit | nf_hv::L2Result::HandledByL0
                ) {
                    let _ = hv.l1_exec(GuestInstr::Vmresume);
                }
            }
        }
        CpuVendor::Amd => {
            for instr in [
                GuestInstr::In(0x60),
                GuestInstr::Rdmsr(0xc000_0080),
                GuestInstr::MovToCr(nf_silicon::CrIndex::Cr0, 0x8000_0011),
                GuestInstr::Rdtsc,
                GuestInstr::Pause,
                GuestInstr::Invlpg(0x1000),
            ] {
                if !matches!(
                    hv.l2_exec(instr),
                    nf_hv::L2Result::NoExit | nf_hv::L2Result::HandledByL0
                ) {
                    hv.l1_stage_vmcb(0x5000, golden_vmcb());
                    let _ = hv.l1_exec(GuestInstr::Vmrun(0x5000));
                }
            }
        }
    }
}

fn scenario_ioctl_state(hv: &mut dyn L0Hypervisor, vendor: CpuVendor) {
    scenario_golden_launch(hv, vendor);
    hv.host_ioctl(IoctlOp::GetNestedState);
    hv.host_ioctl(IoctlOp::SetNestedState);
    hv.host_ioctl(IoctlOp::FreeNestedState);
    hv.host_ioctl(IoctlOp::HardwareSetup);
    hv.host_ioctl(IoctlOp::HardwareUnsetup);
}

fn run_suite(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    vendor: CpuVendor,
    scenarios: &[Scenario],
) -> BaselineResult {
    let mut hv = factory(HvConfig::default_for(vendor));
    let map = hv.coverage_map().clone();
    let file = vendor_file(hv.as_ref(), vendor);
    let mut lines = LineSet::for_map(&map);
    for scenario in scenarios {
        hv.reset_guest();
        if hv.health().dead {
            hv.reboot_host();
        }
        scenario(hv.as_mut(), vendor);
        let trace = hv.take_trace();
        lines.add_trace(&map, &trace);
        hv.health_mut().reports.clear();
    }
    let final_coverage = lines.fraction_of(&map, file);
    BaselineResult {
        hourly: vec![final_coverage],
        final_coverage,
        lines,
        map,
        file,
    }
}

/// Linux KVM selftests model: 60 deterministic cases including the
/// host-side nested-state ioctl tests (run once, §5.2).
pub fn selftests(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    vendor: CpuVendor,
) -> BaselineResult {
    let mut scenarios: Vec<Scenario> = Vec::with_capacity(60);
    for i in 0..60 {
        scenarios.push(match i % 5 {
            0 => scenario_golden_launch,
            1 => scenario_error_paths,
            2 => scenario_feature_paths,
            3 => scenario_runtime_exits,
            _ => scenario_ioctl_state,
        });
    }
    run_suite(factory, vendor, &scenarios)
}

/// KVM-unit-tests model: 84 deterministic guest-side cases — no ioctl
/// coverage (the tests run inside the guest).
pub fn kvm_unit_tests(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    vendor: CpuVendor,
) -> BaselineResult {
    let mut scenarios: Vec<Scenario> = Vec::with_capacity(84);
    for i in 0..84 {
        scenarios.push(match i % 4 {
            0 => scenario_golden_launch,
            1 => scenario_error_paths,
            2 => scenario_feature_paths,
            _ => scenario_runtime_exits,
        });
    }
    run_suite(factory, vendor, &scenarios)
}

/// Xen Test Framework model: smoke tests that probe the nested
/// interface (instruction availability, a failing launch) without ever
/// building a complete valid guest — which is why its coverage stays in
/// the 10–20% band of Table 4.
pub fn xtf(
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    vendor: CpuVendor,
) -> BaselineResult {
    fn smoke(hv: &mut dyn L0Hypervisor, vendor: CpuVendor) {
        match vendor {
            CpuVendor::Intel => {
                boot_intel_nested(hv);
                let _ = hv.l1_exec(GuestInstr::Vmwrite(VmcsField::GuestRip.encoding(), 0x1000));
                let _ = hv.l1_exec(GuestInstr::Vmread(VmcsField::GuestRip.encoding()));
                // The nested smoke test launches a zeroed VMCS and
                // expects the clean failure.
                let _ = hv.l1_exec(GuestInstr::Vmlaunch);
                let _ = hv.l1_exec(GuestInstr::Vmxoff);
            }
            CpuVendor::Amd => {
                // Availability probe: vmrun before enabling SVME plus
                // the GIF instructions.
                let _ = hv.l1_exec(GuestInstr::Vmrun(0x5000));
                let _ = hv.l1_exec(GuestInstr::Stgi);
                let _ = hv.l1_exec(GuestInstr::Vmmcall);
            }
        }
    }
    run_suite(factory, vendor, &[smoke])
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::{Vkvm, Vxen};

    fn kvm_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|cfg| Box::new(Vkvm::new(cfg)))
    }

    fn xen_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|cfg| Box::new(Vxen::new(cfg)))
    }

    #[test]
    fn syzkaller_intel_beats_syzkaller_amd() {
        let intel = syzkaller(kvm_factory(), CpuVendor::Intel, 4, 100, 0);
        let amd = syzkaller(kvm_factory(), CpuVendor::Amd, 4, 100, 0);
        assert!(
            intel.final_coverage > 2.0 * amd.final_coverage,
            "manual Intel harness must dominate: {} vs {}",
            intel.final_coverage,
            amd.final_coverage
        );
        assert!(
            amd.final_coverage < 0.25,
            "no AMD harness: {}",
            amd.final_coverage
        );
    }

    #[test]
    fn iris_saturates_quickly() {
        let r = iris(kvm_factory(), 0);
        assert!(
            r.final_coverage > 0.2 && r.final_coverage < 0.75,
            "{}",
            r.final_coverage
        );
    }

    #[test]
    fn deterministic_suites_are_reproducible() {
        let a = selftests(kvm_factory(), CpuVendor::Intel);
        let b = selftests(kvm_factory(), CpuVendor::Intel);
        assert_eq!(a.lines, b.lines);
        assert!(a.final_coverage > 0.3, "{}", a.final_coverage);
    }

    #[test]
    fn kvm_unit_tests_have_no_ioctl_coverage() {
        let r = kvm_unit_tests(kvm_factory(), CpuVendor::Intel);
        // The ioctl-only blocks (IoctlGetNested etc.) must stay uncovered.
        let selft = selftests(kvm_factory(), CpuVendor::Intel);
        let only_selftests = selft.lines.minus(&r.lines);
        assert!(
            only_selftests.count() > 0,
            "selftests cover ioctl lines unit-tests cannot"
        );
    }

    #[test]
    fn xtf_is_small_on_xen() {
        let r = xtf(xen_factory(), CpuVendor::Intel);
        assert!(
            r.final_coverage > 0.05 && r.final_coverage < 0.5,
            "{}",
            r.final_coverage
        );
        let amd = xtf(xen_factory(), CpuVendor::Amd);
        assert!(amd.final_coverage < r.final_coverage + 0.2);
    }
}
