//! Criterion benches wrapping the paper's experiment drivers.
//!
//! One bench per table/figure, at reduced iteration budgets so the
//! whole suite finishes in minutes; the `src/bin/` binaries run the
//! full-budget versions and print the paper-formatted rows.

use criterion::{criterion_group, criterion_main, Criterion};
use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::orchestrator::{CampaignExecutor, CampaignPlan};
use necofuzz::{ComponentMask, EngineMode, VmStateValidator};
use nf_bench::{vkvm_backend, vkvm_factory, vvbox_factory, vxen_factory};
use nf_fuzz::Mode;
use nf_vmx::{Vmcs, VmxCapabilities};
use nf_x86::{CpuVendor, FeatureSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mini_campaign(vendor: CpuVendor, mode: Mode, mask: ComponentMask, seed: u64) -> f64 {
    let cfg = CampaignConfig::necofuzz(vendor, 4, seed)
        .with_execs_per_hour(60)
        .with_mode(mode)
        .with_mask(mask)
        .with_engine(EngineMode::Snapshot);
    run_campaign(vkvm_factory(), &cfg).final_coverage
}

/// Table 2 / Figure 3: NecoFuzz and Syzkaller coverage campaigns on KVM.
fn bench_table2_figure3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_figure3");
    g.sample_size(10);
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        g.bench_function(format!("necofuzz_kvm_{vendor}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                mini_campaign(vendor, Mode::Unguided, ComponentMask::ALL, seed)
            })
        });
        g.bench_function(format!("syzkaller_kvm_{vendor}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                nf_baselines::syzkaller(vkvm_factory(), vendor, 4, 60, seed).final_coverage
            })
        });
    }
    g.finish();
}

/// Table 3 / Figure 4: component-ablation campaigns.
fn bench_table3_figure4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_figure4");
    g.sample_size(10);
    let variants: [(&str, ComponentMask); 3] = [
        (
            "wo_harness",
            ComponentMask {
                harness: false,
                ..ComponentMask::ALL
            },
        ),
        (
            "wo_validator",
            ComponentMask {
                validator: false,
                ..ComponentMask::ALL
            },
        ),
        (
            "wo_configurator",
            ComponentMask {
                configurator: false,
                ..ComponentMask::ALL
            },
        ),
    ];
    for (name, mask) in variants {
        g.bench_function(name, |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                mini_campaign(CpuVendor::Intel, Mode::Unguided, mask, seed)
            })
        });
    }
    g.finish();
}

/// Table 4: NecoFuzz on the Xen model.
fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        g.bench_function(format!("necofuzz_xen_{vendor}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = CampaignConfig::necofuzz(vendor, 4, seed).with_execs_per_hour(60);
                run_campaign(vxen_factory(), &cfg).final_coverage
            })
        });
    }
    g.bench_function("xtf_xen", |b| {
        b.iter(|| nf_baselines::xtf(vxen_factory(), CpuVendor::Intel).final_coverage)
    });
    g.finish();
}

/// Table 5: guided vs unguided engine modes.
fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    for (name, mode) in [("unguided", Mode::Unguided), ("guided", Mode::Guided)] {
        g.bench_function(name, |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                mini_campaign(CpuVendor::Intel, mode, ComponentMask::ALL, seed)
            })
        });
    }
    g.finish();
}

/// Table 6: campaigns against the bug-seeded targets (finds per run).
fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("bug_hunt_vvbox", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, 2, seed).with_execs_per_hour(60);
            run_campaign(vvbox_factory(), &cfg).finds.len()
        })
    });
    g.bench_function("bug_hunt_vxen_amd", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cfg = CampaignConfig::necofuzz(CpuVendor::Amd, 2, seed).with_execs_per_hour(60);
            run_campaign(vxen_factory(), &cfg).finds.len()
        })
    });
    g.finish();
}

/// Figure 5: the validator's round+verify pipeline per state.
fn bench_figure5(c: &mut Criterion) {
    let caps = VmxCapabilities::from_features(
        FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
    );
    let mut g = c.benchmark_group("figure5");
    g.bench_function("round_and_hamming", |b| {
        let validator = VmStateValidator::new(caps.clone());
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| {
            let mut seed = vec![0u8; Vmcs::BYTES];
            rng.fill(&mut seed[..]);
            let raw = Vmcs::from_bytes(&seed);
            let rounded = validator.round(&raw);
            raw.hamming_distance(&rounded)
        })
    });
    g.bench_function("oracle_verify", |b| {
        let mut validator = VmStateValidator::new(caps.clone());
        let mut rng = SmallRng::seed_from_u64(6);
        b.iter(|| {
            let mut seed = vec![0u8; Vmcs::BYTES];
            rng.fill(&mut seed[..]);
            let rounded = validator.round(&Vmcs::from_bytes(&seed));
            validator.verify_on_oracle(&rounded, &nf_vmx::MsrArea::new())
        })
    });
    g.finish();
}

/// Orchestrator: the same 2-vendor × 3-seed grid, serial vs fanned out.
/// The speedup of `jobs_auto` over `jobs_1` is the orchestrator's whole
/// point; outputs are identical either way.
fn bench_orchestrator(c: &mut Criterion) {
    let plan = || {
        CampaignPlan::new()
            .backend(vkvm_backend())
            .vendors(&[CpuVendor::Intel, CpuVendor::Amd])
            .seeds(0..3)
            .hours(2)
            .execs_per_hour(60)
    };
    let mut g = c.benchmark_group("orchestrator");
    g.sample_size(10);
    g.bench_function("grid_jobs_1", |b| {
        b.iter(|| CampaignExecutor::new().jobs(1).run(&plan()).len())
    });
    g.bench_function("grid_jobs_auto", |b| {
        b.iter(|| CampaignExecutor::new().run(&plan()).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_figure3,
    bench_table3_figure4,
    bench_table4,
    bench_table5,
    bench_table6,
    bench_figure5,
    bench_orchestrator
);
criterion_main!(benches);
