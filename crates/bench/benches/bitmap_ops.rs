//! Criterion microbenches for the word-level bitmap engine: each
//! operation against its byte-at-a-time reference
//! (`nf_coverage::bitmap::bytewise`) on realistic map shapes.
//!
//! The interesting regimes: a *sparse* raw bitmap (one exec's handful
//! of edges — the per-exec novelty scan), a *mostly-seen* virgin map
//! (late campaign — merges mostly skip), and a *churning* delta (the
//! sync path). The word forms win by skipping whole words; the shapes
//! here make the skip rates visible.

use criterion::{criterion_group, criterion_main, Criterion};
use nf_coverage::bitmap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MAP_SIZE: usize = 1 << 16;

/// A raw bitmap with `edges` scattered non-zero counts — the shape one
/// execution produces.
fn sparse_raw(edges: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw = vec![0u8; MAP_SIZE];
    for _ in 0..edges {
        raw[rng.gen_range(0..MAP_SIZE)] = rng.gen_range(1..=255);
    }
    raw
}

/// A virgin map after `execs` distinct sparse executions were merged.
fn warmed_virgin(execs: u64) -> Vec<u8> {
    let mut virgin = vec![0xffu8; MAP_SIZE];
    for seed in 0..execs {
        bitmap::merge_raw(&mut virgin, &sparse_raw(40, seed));
    }
    virgin
}

fn bench_merge_raw(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_raw");
    g.sample_size(200);
    let raw = sparse_raw(40, 1);
    let virgin = warmed_virgin(50);
    g.bench_function("words", |b| {
        b.iter(|| bitmap::merge_raw(&mut virgin.clone(), &raw))
    });
    g.bench_function("bytewise", |b| {
        b.iter(|| bitmap::bytewise::merge_raw(&mut virgin.clone(), &raw))
    });
    // Steady state: nothing novel, the scan is pure overhead.
    let mut seen = virgin.clone();
    bitmap::merge_raw(&mut seen, &raw);
    g.bench_function("words_no_novelty", |b| {
        let mut v = seen.clone();
        b.iter(|| bitmap::merge_raw(&mut v, &raw))
    });
    g.bench_function("bytewise_no_novelty", |b| {
        let mut v = seen.clone();
        b.iter(|| bitmap::bytewise::merge_raw(&mut v, &raw))
    });
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut g = c.benchmark_group("classify");
    g.sample_size(200);
    let raw = sparse_raw(40, 2);
    let mut buf = Vec::new();
    g.bench_function("words_into", |b| {
        b.iter(|| bitmap::classify_into(&raw, &mut buf))
    });
    g.bench_function("bytewise", |b| b.iter(|| bitmap::bytewise::classify(&raw)));
    g.finish();
}

fn bench_delta_and_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta_merge");
    g.sample_size(200);
    let then = warmed_virgin(50);
    let mut now = then.clone();
    bitmap::merge_raw(&mut now, &sparse_raw(40, 3));
    let mut buf = Vec::new();
    g.bench_function("cleared_since_words_into", |b| {
        b.iter(|| bitmap::cleared_since_into(&then, &now, &mut buf))
    });
    g.bench_function("cleared_since_bytewise", |b| {
        b.iter(|| bitmap::bytewise::cleared_since(&then, &now))
    });
    g.bench_function("merge_virgin_words", |b| {
        let mut dst = then.clone();
        b.iter(|| bitmap::merge_virgin(&mut dst, &now))
    });
    g.bench_function("merge_virgin_bytewise", |b| {
        let mut dst = then.clone();
        b.iter(|| bitmap::bytewise::merge_virgin(&mut dst, &now))
    });
    g.finish();
}

criterion_group!(
    bitmap_ops,
    bench_merge_raw,
    bench_classify,
    bench_delta_and_merge
);
criterion_main!(bitmap_ops);
