//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` prints the rows/series of one table or
//! figure; the Criterion benches in `benches/` wrap the same drivers.
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not the authors' testbed); the *shape* — who wins, by what factor,
//! where curves saturate — is the reproduced quantity (see
//! `EXPERIMENTS.md`).
//!
//! Every driver fans its campaign grid out through the
//! [`necofuzz::orchestrator`] worker pool: pass `--jobs N` to any bench
//! binary (or set `NF_JOBS`) to bound the pool; the default uses every
//! available core. Parallelism never changes output — results are
//! reduced in deterministic plan order — so `--jobs 1` and `--jobs 32`
//! print byte-identical tables.

pub mod diff_bench;
pub mod mutator_bench;
pub mod sync_bench;

use necofuzz::campaign::{CampaignConfig, CampaignResult};
use necofuzz::orchestrator::{Backend, CampaignExecutor, CampaignJob};
use necofuzz::ComponentMask;
use nf_coverage::LineSet;
use nf_fuzz::Mode;
use nf_hv::{HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

/// Number of repeated runs per configuration (Klees et al.; paper §5.1).
pub const RUNS: u64 = 5;

/// Scaled virtual campaign lengths: the paper's 48 h / 24 h compress to
/// the same execution budget shape at bench-friendly wall-clock cost.
pub const HOURS_LONG: u32 = 48;
/// Ablation/Xen campaigns run 24 virtual hours.
pub const HOURS_SHORT: u32 = 24;
/// Executions per virtual hour for the experiment drivers.
pub const EXECS_PER_HOUR: u32 = 120;

/// A hypervisor factory.
pub type Factory = Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>;

/// Factory for the KVM model.
pub fn vkvm_factory() -> Factory {
    Box::new(|cfg| Box::new(Vkvm::new(cfg)))
}

/// Factory for the Xen model.
pub fn vxen_factory() -> Factory {
    Box::new(|cfg| Box::new(Vxen::new(cfg)))
}

/// Factory for the VirtualBox model (Intel only).
pub fn vvbox_factory() -> Factory {
    Box::new(|cfg| Box::new(Vvbox::new(cfg)))
}

/// Orchestrator backend for the KVM model.
pub fn vkvm_backend() -> Backend {
    Backend::new("vkvm", |cfg| Box::new(Vkvm::new(cfg)))
}

/// Orchestrator backend for the Xen model.
pub fn vxen_backend() -> Backend {
    Backend::new("vxen", |cfg| Box::new(Vxen::new(cfg)))
}

/// Orchestrator backend for the VirtualBox model (Intel only).
pub fn vvbox_backend() -> Backend {
    Backend::new("vvbox", |cfg| Box::new(Vvbox::new(cfg)))
}

/// Worker-pool width for the experiment drivers: `--jobs N` (or
/// `--jobs=N`) on the command line, else the `NF_JOBS` environment
/// variable, else `0` (auto: every available core). A malformed value
/// is a usage error (exit 2), matching the `necofuzz` CLI.
pub fn jobs_arg() -> usize {
    let bad = |v: &str| -> ! {
        eprintln!("invalid --jobs value {v:?}: expected a non-negative integer");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let v = args.next().unwrap_or_else(|| bad("<missing>"));
            return v.parse().unwrap_or_else(|_| bad(&v));
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            return v.parse().unwrap_or_else(|_| bad(v));
        }
    }
    std::env::var("NF_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The shared executor of the experiment drivers: sized by
/// [`jobs_arg`], reporting per-job completions on stderr (stdout stays
/// byte-identical across worker counts).
pub fn executor() -> CampaignExecutor {
    CampaignExecutor::new().jobs(jobs_arg()).on_progress(|p| {
        eprintln!(
            "[{:>3}/{}] {:<40} {}",
            p.completed, p.total, p.label, p.summary
        );
    })
}

/// Runs NecoFuzz `RUNS` times (seeds `0..RUNS`) on the worker pool and
/// returns the per-run results in seed order.
pub fn necofuzz_runs(
    factory: fn() -> Factory,
    vendor: CpuVendor,
    hours: u32,
    mode: Mode,
    mask: ComponentMask,
) -> Vec<CampaignResult> {
    let jobs = (0..RUNS)
        .map(|seed| CampaignJob {
            backend: Backend::new("necofuzz", move |cfg| factory()(cfg)),
            cfg: CampaignConfig::necofuzz(vendor, hours, seed)
                .with_execs_per_hour(EXECS_PER_HOUR)
                .with_mode(mode)
                .with_mask(mask),
        })
        .collect();
    executor().run_jobs(jobs)
}

/// Median final coverage of a run set.
pub fn median_coverage(results: &[CampaignResult]) -> f64 {
    nf_stats::median(&results.iter().map(|r| r.final_coverage).collect::<Vec<_>>())
}

/// The run whose final coverage is the median (for set algebra on a
/// representative line set).
pub fn median_run(results: &[CampaignResult]) -> &CampaignResult {
    let med = median_coverage(results);
    results
        .iter()
        .min_by(|a, b| {
            (a.final_coverage - med)
                .abs()
                .partial_cmp(&(b.final_coverage - med).abs())
                .expect("no NaNs")
        })
        .expect("non-empty")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a `cov% / #line` pair for a line set restricted to `file`.
pub fn cov_row(lines: &LineSet, map: &nf_coverage::CovMap, file: nf_coverage::FileId) -> String {
    let covered = lines.count_in(map, file);
    let total = map.file_lines(file);
    format!("{:>6}  {:>6}", pct(covered as f64 / total as f64), covered)
}

/// Prints a Markdown-ish separator line.
pub fn hr(title: &str) {
    println!("\n================ {title} ================");
}
