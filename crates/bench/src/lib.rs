//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` prints the rows/series of one table or
//! figure; the Criterion benches in `benches/` wrap the same drivers.
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not the authors' testbed); the *shape* — who wins, by what factor,
//! where curves saturate — is the reproduced quantity (see
//! `EXPERIMENTS.md`).

use necofuzz::campaign::{run_campaign, CampaignConfig, CampaignResult};
use necofuzz::ComponentMask;
use nf_coverage::LineSet;
use nf_fuzz::Mode;
use nf_hv::{HvConfig, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_x86::CpuVendor;

/// Number of repeated runs per configuration (Klees et al.; paper §5.1).
pub const RUNS: u64 = 5;

/// Scaled virtual campaign lengths: the paper's 48 h / 24 h compress to
/// the same execution budget shape at bench-friendly wall-clock cost.
pub const HOURS_LONG: u32 = 48;
/// Ablation/Xen campaigns run 24 virtual hours.
pub const HOURS_SHORT: u32 = 24;
/// Executions per virtual hour for the experiment drivers.
pub const EXECS_PER_HOUR: u32 = 120;

/// A hypervisor factory.
pub type Factory = Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>;

/// Factory for the KVM model.
pub fn vkvm_factory() -> Factory {
    Box::new(|cfg| Box::new(Vkvm::new(cfg)))
}

/// Factory for the Xen model.
pub fn vxen_factory() -> Factory {
    Box::new(|cfg| Box::new(Vxen::new(cfg)))
}

/// Factory for the VirtualBox model (Intel only).
pub fn vvbox_factory() -> Factory {
    Box::new(|cfg| Box::new(Vvbox::new(cfg)))
}

/// Runs NecoFuzz `RUNS` times and returns the per-run results.
pub fn necofuzz_runs(
    factory: fn() -> Factory,
    vendor: CpuVendor,
    hours: u32,
    mode: Mode,
    mask: ComponentMask,
) -> Vec<CampaignResult> {
    (0..RUNS)
        .map(|seed| {
            let cfg = CampaignConfig {
                vendor,
                hours,
                execs_per_hour: EXECS_PER_HOUR,
                seed,
                mode,
                mask,
            };
            run_campaign(factory(), &cfg)
        })
        .collect()
}

/// Median final coverage of a run set.
pub fn median_coverage(results: &[CampaignResult]) -> f64 {
    nf_stats::median(&results.iter().map(|r| r.final_coverage).collect::<Vec<_>>())
}

/// The run whose final coverage is the median (for set algebra on a
/// representative line set).
pub fn median_run(results: &[CampaignResult]) -> &CampaignResult {
    let med = median_coverage(results);
    results
        .iter()
        .min_by(|a, b| {
            (a.final_coverage - med)
                .abs()
                .partial_cmp(&(b.final_coverage - med).abs())
                .expect("no NaNs")
        })
        .expect("non-empty")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a `cov% / #line` pair for a line set restricted to `file`.
pub fn cov_row(lines: &LineSet, map: &nf_coverage::CovMap, file: nf_coverage::FileId) -> String {
    let covered = lines.count_in(map, file);
    let total = map.file_lines(file);
    format!("{:>6}  {:>6}", pct(covered as f64 / total as f64), covered)
}

/// Prints a Markdown-ish separator line.
pub fn hr(title: &str) {
    println!("\n================ {title} ================");
}
