//! The deterministic pipeline behind the `diff_oracle` bench binary:
//! what the cross-backend differential oracle finds — and costs — at a
//! fixed execution budget.
//!
//! Three arms, all pure functions of `(hours, execs_per_hour)` so
//! `BENCH_diff.json` is bit-reproducible and
//! `tests/diff_determinism.rs` can regenerate it and hold it
//! byte-for-byte:
//!
//! - **seeded** — a campaign against [`SEEDED_HLT_BACKEND`] (a vkvm
//!   whose reflect path misreports HLT exits as PAUSE; invisible to
//!   every sanitizer) diffed against `golden`. The oracle must find
//!   the planted misvirtualization ([`SEEDED_SIGNATURE`]), and the
//!   reproducer is minimized under the signature-preserving
//!   [`necofuzz::DiffOracle`] and replay-validated.
//! - **conformance** — the same budget against clean `vkvm` + `golden`.
//!   Every divergent observation must be covered by the intentional-
//!   quirk [`necofuzz::ALLOWLIST`]; a single non-allowlisted
//!   divergence is a false positive and fails the smoke gate.
//! - **overhead** — the same campaign with the oracle off. The
//!   differential oracle replays every input on every configured
//!   backend, so its cost is a deterministic multiple of the primary
//!   exec count; the arm also proves exploration is bit-identical
//!   with the oracle on or off (same execs, same coverage).

use necofuzz::campaign::{Campaign, CampaignConfig, CampaignResult};
use necofuzz::{
    backend_factory, ComponentMask, DiffOracle, EngineMode, OracleMode, SEEDED_HLT_BACKEND,
};
use nf_fuzz::Mode;
use nf_hv::CrashKind;
use nf_x86::CpuVendor;

/// The divergence signature of the planted HLT-misreport bug: against
/// `golden`, the buggy backend reflects PAUSE (reason 0x28) where bare
/// metal reflects HLT (reason 0xc).
pub const SEEDED_SIGNATURE: &str = "diff_vkvm-hltbug+golden_rfl28vrflc";

/// One divergence finding row of the seeded arm.
pub struct DiffFinding {
    /// The `(backend pair, site tag)` signature.
    pub bug_id: String,
    /// Campaign execution index of first detection.
    pub exec: u64,
    /// Human-readable first-divergent-site description.
    pub message: String,
}

/// The complete bench output plus the serialized `BENCH_diff.json`.
pub struct DiffReport {
    /// Virtual hours per campaign.
    pub hours: u32,
    /// Executions per virtual hour.
    pub execs_per_hour: u32,
    /// Divergence findings of the seeded arm, in discovery order.
    pub seeded_finds: Vec<DiffFinding>,
    /// Whether [`SEEDED_SIGNATURE`] is among them (the detection gate).
    pub seeded_found: bool,
    /// Non-zero bytes of the seeded reproducer before minimization.
    pub minimized_before: usize,
    /// Non-zero bytes after signature-preserving minimization.
    pub minimized_after: usize,
    /// Whether a clean replay of the minimized input still produces
    /// the exact seeded signature.
    pub replay_validated: bool,
    /// Sanitizer-kind findings of the seeded campaign (the planted bug
    /// must not be among them — it is silent at host level).
    pub seeded_sanitizer_finds: usize,
    /// Conformance-arm counters (`divergences` must be 0).
    pub conformance: necofuzz::DivergenceStats,
    /// Unique non-allowlisted divergence findings on the clean pair —
    /// the false-positive count, gated to 0.
    pub conformance_findings: usize,
    /// Primary-agent executions with the oracle armed.
    pub primary_execs: u64,
    /// Differential replay executions across the backend set.
    pub diff_execs: u64,
    /// Executions of the identical campaign with the oracle off.
    pub baseline_execs: u64,
    /// `(primary + diff) / baseline` — the deterministic cost factor.
    pub overhead_factor: f64,
    /// Whether exploration was bit-identical with the oracle on/off
    /// (same exec count, same final coverage).
    pub exploration_unchanged: bool,
    /// The JSON document (what the binary writes to disk).
    pub json: String,
}

/// Runs one unguided campaign of the given budget against `target`,
/// with the differential oracle replaying across `diff_backends`
/// (empty = sanitizer oracle only).
fn run_arm(
    target: &str,
    diff_backends: &[&str],
    hours: u32,
    execs_per_hour: u32,
) -> CampaignResult {
    let mut cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, 0)
        .with_execs_per_hour(execs_per_hour)
        .with_mode(Mode::Unguided);
    if !diff_backends.is_empty() {
        cfg = cfg
            .with_oracle(OracleMode::Differential)
            .with_diff_backends(diff_backends);
    }
    let factory = backend_factory(target).expect("known backend");
    let mut campaign = Campaign::new(factory, &cfg);
    campaign.run_hours(hours);
    campaign.into_result()
}

fn build_json(r: &DiffReport) -> String {
    let finds: Vec<String> = r
        .seeded_finds
        .iter()
        .map(|f| {
            format!(
                "      {{\"bug_id\": \"{}\", \"exec\": {}, \"message\": \"{}\"}}",
                f.bug_id, f.exec, f.message
            )
        })
        .collect();
    let finds = if finds.is_empty() {
        String::new()
    } else {
        format!("\n{}\n    ", finds.join(",\n"))
    };
    let c = &r.conformance;
    format!(
        "{{\n  \"bench\": \"diff_oracle\",\n  \
         \"metric\": \"divergences found and replay overhead of the cross-backend \
         differential oracle at a fixed execution budget\",\n  \
         \"budget\": {{\"hours\": {}, \"execs_per_hour\": {}}},\n  \
         \"seeded\": {{\n    \
         \"backends\": [\"{}\", \"golden\"],\n    \
         \"seeded_signature\": \"{}\",\n    \"seeded_found\": {},\n    \
         \"divergence_findings\": [{finds}],\n    \
         \"sanitizer_findings\": {},\n    \
         \"minimized_reproducer\": {{\"nonzero_bytes_before\": {}, \
         \"nonzero_bytes_after\": {}, \"replay_validated\": {}}}\n  }},\n  \
         \"conformance\": {{\n    \"backends\": [\"vkvm\", \"golden\"],\n    \
         \"execs_compared\": {}, \"divergences\": {}, \"allowed\": {}, \
         \"crash_skipped\": {},\n    \"false_positive_findings\": {}\n  }},\n  \
         \"overhead\": {{\n    \"baseline_execs\": {}, \"primary_execs\": {}, \
         \"diff_execs\": {},\n    \"execs_factor\": {:.2}, \
         \"exploration_unchanged\": {}\n  }}\n}}\n",
        r.hours,
        r.execs_per_hour,
        SEEDED_HLT_BACKEND,
        SEEDED_SIGNATURE,
        r.seeded_found,
        r.seeded_sanitizer_finds,
        r.minimized_before,
        r.minimized_after,
        r.replay_validated,
        c.execs_compared,
        c.divergences,
        c.allowed,
        c.crash_skipped,
        r.conformance_findings,
        r.baseline_execs,
        r.primary_execs,
        r.diff_execs,
        r.overhead_factor,
        r.exploration_unchanged,
    )
}

/// Runs the whole bench pipeline: seeded arm, conformance arm,
/// oracle-off baseline.
pub fn run(hours: u32, execs_per_hour: u32) -> DiffReport {
    let seeded_pair = [SEEDED_HLT_BACKEND, "golden"];
    let seeded = run_arm(SEEDED_HLT_BACKEND, &seeded_pair, hours, execs_per_hour);
    let seeded_finds: Vec<DiffFinding> = seeded
        .finds
        .iter()
        .filter(|f| f.kind == CrashKind::Divergence)
        .map(|f| DiffFinding {
            bug_id: f.bug_id.clone(),
            exec: f.exec,
            message: f.message.clone(),
        })
        .collect();
    let seeded_sanitizer_finds = seeded.finds.len() - seeded_finds.len();

    let planted = seeded.finds.iter().find(|f| f.bug_id == SEEDED_SIGNATURE);
    let (minimized_before, minimized_after, replay_validated) = match planted {
        Some(find) => {
            let backends = [SEEDED_HLT_BACKEND.to_string(), "golden".to_string()];
            let oracle = DiffOracle::new(
                &backends,
                CpuVendor::Intel,
                ComponentMask::ALL,
                EngineMode::Snapshot,
            );
            let minimized = oracle.minimize(&find.bug_id, &find.input);
            let nonzero =
                |input: &nf_fuzz::FuzzInput| input.bytes.iter().filter(|&&b| b != 0).count();
            (
                nonzero(&find.input),
                nonzero(&minimized),
                oracle.reproduces(&find.bug_id, &minimized),
            )
        }
        None => (0, 0, false),
    };

    let conf = run_arm("vkvm", &["vkvm", "golden"], hours, execs_per_hour);
    let conformance_findings = conf
        .finds
        .iter()
        .filter(|f| f.kind == CrashKind::Divergence)
        .count();

    let baseline = run_arm(SEEDED_HLT_BACKEND, &[], hours, execs_per_hour);
    let overhead_factor = (seeded.execs + seeded.diff_execs) as f64 / baseline.execs as f64;
    let exploration_unchanged =
        baseline.execs == seeded.execs && baseline.final_coverage == seeded.final_coverage;

    let mut report = DiffReport {
        hours,
        execs_per_hour,
        seeded_found: planted.is_some(),
        seeded_finds,
        minimized_before,
        minimized_after,
        replay_validated,
        seeded_sanitizer_finds,
        conformance: conf.divergence,
        conformance_findings,
        primary_execs: seeded.execs,
        diff_execs: seeded.diff_execs,
        baseline_execs: baseline.execs,
        overhead_factor,
        exploration_unchanged,
        json: String::new(),
    };
    report.json = build_json(&report);
    report
}
