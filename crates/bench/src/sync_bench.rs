//! The deterministic pipeline behind the `sync_speedup` bench binary:
//! corpus-synced worker fleets vs unsynced ones at equal total
//! execution budget, reported as time-to-coverage-level.
//!
//! Extracted from the binary so the emitted JSON is *testable*:
//! everything here is a pure function of `(hours, execs_per_hour)` —
//! fixed seeds, worker-id-ordered merges — so `BENCH_sync.json` is
//! bit-reproducible, and `tests/hotpath_equivalence.rs` regenerates it
//! through this module and compares byte-for-byte against the
//! committed file. The binary adds only CLI parsing, table printing,
//! and the CI smoke gate.
//!
//! Each fleet size is measured in three variants: unsynced, hourly
//! lockstep sync (the original barrier protocol, kept as the A/B
//! oracle), and asynchronous watermark gossip (`SyncMode::Async` over
//! the default tree topology). Lockstep rows keep the original JSON
//! row shape byte-for-byte; async rows add a `"mode"` discriminator
//! and the per-fleet sync-cost counters.

use necofuzz::campaign::{run_campaign_group_observed, Campaign, CampaignConfig, GroupMember};
use nf_coverage::{CovMap, FileId, LineSet};
use nf_fuzz::{Mode, SyncMode, SyncStats, SyncTopology};
use nf_x86::CpuVendor;

use crate::vkvm_factory;

/// Fleet sizes measured — the single source for the main loop, the
/// JSON summary, and the smoke gate, so adding a size cannot silently
/// escape the CI comparison.
pub const FLEET_SIZES: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The subset the CI smoke gate runs: small enough to finish in
/// seconds, large enough to include the 8-worker cell where the
/// async-vs-lockstep comparison is asserted.
pub const SMOKE_FLEET_SIZES: [u32; 4] = [1, 2, 4, 8];

/// Large fleets sliced off a fixed total budget would get zero whole
/// virtual hours under the legacy `hours / n` layout, so from this
/// size up the budget is re-laid-out as `LARGE_FLEET_HOURS` hours at
/// `budget / (hours * n)` execs per hour instead.
const LARGE_FLEET_MIN: u32 = 16;

/// Hours per member in the large-fleet layout: enough hourly sync
/// boundaries for lockstep to matter, and `9 * 64` divides the
/// standard 2880-exec budget exactly.
const LARGE_FLEET_HOURS: u32 = 9;

/// The virtual-time layout of an `n`-worker fleet splitting the
/// `hours * execs_per_hour` budget: members run `.0` hours at `.1`
/// execs per hour. Sizes up to 8 keep the original `hours / n` slicing
/// (so their cells reproduce the historical numbers exactly); larger
/// fleets hold `LARGE_FLEET_HOURS` (9) hours and shrink the hourly rate.
pub fn fleet_layout(n: u32, hours: u32, execs_per_hour: u32) -> (u32, u32) {
    if n < LARGE_FLEET_MIN {
        (hours / n, execs_per_hour)
    } else {
        (
            LARGE_FLEET_HOURS,
            hours * execs_per_hour / (LARGE_FLEET_HOURS * n),
        )
    }
}

/// One fleet measurement.
pub struct SyncCell {
    /// Fleet size.
    pub workers: u32,
    /// Whether the fleet exchanged corpus deltas at all.
    pub synced: bool,
    /// Sync protocol of the fleet (lockstep for unsynced cells too —
    /// the field only distinguishes rows when `synced` is true).
    pub mode: SyncMode,
    /// Total executions (across workers, replays included) when every
    /// member's own coverage first reached the target level; `None` if
    /// the budget ran out first.
    pub execs_to_target: Option<u64>,
    /// Worst member's own coverage at budget exhaustion.
    pub final_min: f64,
    /// Union coverage of the fleet at budget exhaustion.
    pub final_union: f64,
    /// Corpus entries adopted from siblings (replayed under lockstep,
    /// evidence-merged under async).
    pub adoptions: u64,
    /// Actual executions at budget exhaustion: the generation budget
    /// plus adoption replays. Lockstep cells run more total executions
    /// than their unsynced twins — async cells do not, because
    /// adoption merges recorded evidence instead of replaying — and
    /// the JSON reports this so coverage comparisons can be read
    /// against each cell's real cost.
    pub total_execs: u64,
    /// Fleet-summed sync-cost counters.
    pub sync: SyncStats,
}

/// The complete bench output: the baseline target, every cell, and the
/// serialized `BENCH_sync.json` contents.
pub struct SyncReport {
    /// The single-worker baseline's final coverage (the target level).
    pub target: f64,
    /// The baseline's execution budget.
    pub budget: u64,
    /// Virtual hours per (whole) budget.
    pub hours: u32,
    /// Executions per virtual hour.
    pub execs_per_hour: u32,
    /// Every fleet cell, in fleet-size-major, (unsynced, lockstep,
    /// async) order.
    pub cells: Vec<SyncCell>,
    /// The JSON document (what the binary writes to disk).
    pub json: String,
}

/// Runs an `n`-worker unguided fleet at `hours_each` hours per worker,
/// measuring when every member reaches `target` coverage on its own.
///
/// The fleet runs on the product sync path —
/// [`run_campaign_group_observed`], the same loop `necofuzz
/// --sync-interval` ships — with the hourly observer doing the
/// time-to-coverage bookkeeping, so the bench measures exactly the
/// protocol users get.
#[allow(clippy::too_many_arguments)]
fn run_fleet(
    n: u32,
    hours_each: u32,
    execs_per_hour: u32,
    synced: bool,
    mode: SyncMode,
    target: f64,
    map: &CovMap,
    file: FileId,
) -> SyncCell {
    let members: Vec<GroupMember> = (0..n)
        .map(|worker| {
            let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours_each, worker as u64)
                .with_execs_per_hour(execs_per_hour)
                .with_mode(Mode::Unguided)
                .with_sync_interval(u32::from(synced))
                .with_sync_mode(mode)
                .with_sync_topology(SyncTopology::Tree);
            (vkvm_factory(), cfg)
        })
        .collect();
    let total_lines = map.file_lines(file) as f64;

    let mut execs_to_target = None;
    let mut final_min = 0.0;
    let mut final_union = 0.0;
    let results = run_campaign_group_observed(members, |members| {
        final_min = members
            .iter()
            .map(Campaign::coverage_fraction)
            .fold(f64::INFINITY, f64::min);
        let mut union = LineSet::for_map(map);
        for member in members {
            union.union_with(member.lines());
        }
        final_union = union.count_in(map, file) as f64 / total_lines;
        if execs_to_target.is_none() && final_min >= target {
            execs_to_target = Some(members.iter().map(Campaign::execs).sum());
        }
    });
    let mut sync = SyncStats::default();
    for r in &results {
        sync.absorb(&r.sync);
    }
    SyncCell {
        workers: n,
        synced,
        mode,
        execs_to_target,
        final_min,
        final_union,
        adoptions: results.iter().map(|r| r.adopted).sum(),
        total_execs: results.iter().map(|r| r.execs).sum(),
        sync,
    }
}

fn build_json(
    target: f64,
    budget: u64,
    baseline_hours: u32,
    execs_per_hour: u32,
    sizes: &[u32],
    cells: &[SyncCell],
) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let reached = match c.execs_to_target {
                Some(execs) => format!("\"execs_to_target\": {execs}, \"reached\": true"),
                None => "\"execs_to_target\": null, \"reached\": false".to_string(),
            };
            match c.mode {
                // Lockstep rows keep the historical row shape so the
                // pre-async file's cells stay byte-identical.
                SyncMode::Lockstep => format!(
                    "    {{\"workers\": {}, \"synced\": {}, {reached}, \
                     \"final_min_coverage\": {:.4}, \"final_union_coverage\": {:.4}, \
                     \"adoptions\": {}, \"total_execs\": {}}}",
                    c.workers, c.synced, c.final_min, c.final_union, c.adoptions, c.total_execs
                ),
                SyncMode::Async => format!(
                    "    {{\"workers\": {}, \"synced\": {}, \"mode\": \"async-tree\", {reached}, \
                     \"final_min_coverage\": {:.4}, \"final_union_coverage\": {:.4}, \
                     \"adoptions\": {}, \"total_execs\": {}, \"deltas_published\": {}, \
                     \"deltas_applied\": {}, \"segments_merged\": {}, \"words_scanned\": {}}}",
                    c.workers,
                    c.synced,
                    c.final_min,
                    c.final_union,
                    c.adoptions,
                    c.total_execs,
                    c.sync.deltas_published,
                    c.sync.deltas_applied,
                    c.sync.segments_merged,
                    c.sync.words_scanned
                ),
            }
        })
        .collect();
    let lockstep = |n: u32| {
        cells
            .iter()
            .find(|c| c.workers == n && c.synced && c.mode == SyncMode::Lockstep)
    };
    let asynced = |n: u32| {
        cells
            .iter()
            .find(|c| c.workers == n && c.synced && c.mode == SyncMode::Async)
    };
    let synced_beats_unsynced = sizes.iter().all(|&n| {
        let unsynced = cells.iter().find(|c| c.workers == n && !c.synced);
        match (lockstep(n), unsynced) {
            (Some(s), Some(u)) => s.final_min >= u.final_min,
            _ => true,
        }
    });
    let best_multi = cells
        .iter()
        .filter(|c| c.synced && c.mode == SyncMode::Lockstep && c.workers > 1)
        .filter_map(|c| c.execs_to_target)
        .min();
    let speedup = best_multi.map(|e| budget as f64 / e as f64).unwrap_or(0.0);
    let best_async = cells
        .iter()
        .filter(|c| c.mode == SyncMode::Async)
        .filter_map(|c| c.execs_to_target)
        .min();
    let async_speedup = best_async.map(|e| budget as f64 / e as f64).unwrap_or(0.0);
    // The scaling claim: from 8 workers up, async reaches the level in
    // no more executions than lockstep at the same fleet size. A cell
    // that never reaches counts as infinitely slow — so a null-null
    // pair (the fleet union itself falls short of the baseline level,
    // a property of the seed split, not of the protocol) is a tie.
    let async_no_slower =
        sizes
            .iter()
            .filter(|&&n| n >= 8)
            .all(|&n| match (asynced(n), lockstep(n)) {
                (Some(a), Some(l)) => match (a.execs_to_target, l.execs_to_target) {
                    (Some(ae), Some(le)) => ae <= le,
                    (Some(_), None) | (None, None) => true,
                    (None, Some(_)) => false,
                },
                _ => true,
            });
    // The headline scaling result: the widest async fleet reaches the
    // level in fewer executions than the widest lockstep fleet that
    // reaches it at all.
    let async_widest = sizes
        .iter()
        .rev()
        .find_map(|&n| asynced(n).and_then(|c| c.execs_to_target.map(|e| (n, e))));
    let lockstep_widest = sizes
        .iter()
        .rev()
        .find_map(|&n| lockstep(n).and_then(|c| c.execs_to_target.map(|e| (n, e))));
    let widest_async_beats_widest_lockstep = match (async_widest, lockstep_widest) {
        (Some((an, ae)), Some((ln, le))) => an >= ln && ae < le,
        (Some(_), None) => true,
        _ => false,
    };
    format!(
        "{{\n  \"bench\": \"sync_speedup\",\n  \"unit\": \"total_execs\",\n  \
         \"metric\": \"total executions until every fleet member's own coverage \
         reaches the baseline level\",\n  \
         \"baseline\": {{\"mode\": \"unguided\", \"workers\": 1, \"hours\": {baseline_hours}, \
         \"execs_per_hour\": {execs_per_hour}, \"budget_execs\": {budget}, \
         \"target_coverage\": {target:.4}}},\n  \
         \"cells\": [\n{}\n  ],\n  \"summary\": {{\
         \"synced_beats_unsynced_at_equal_budget\": {synced_beats_unsynced}, \
         \"best_synced_multi_execs_to_target\": {}, \
         \"speedup_vs_baseline_budget\": {speedup:.2}, \
         \"best_async_execs_to_target\": {}, \
         \"async_speedup_vs_baseline_budget\": {async_speedup:.2}, \
         \"async_no_slower_than_lockstep_from_8_workers\": {async_no_slower}, \
         \"widest_async_beats_widest_lockstep\": {widest_async_beats_widest_lockstep}}}\n}}\n",
        rows.join(",\n"),
        best_multi.map_or("null".to_string(), |e| e.to_string()),
        best_async.map_or("null".to_string(), |e| e.to_string()),
    )
}

/// The shared pipeline: the single-worker unguided baseline (whose
/// endpoint is the level every fleet must reach), then for every size
/// in `sizes` an unsynced cell, a lockstep-synced cell, and — for the
/// sizes in `async_sizes` — an async-gossip cell.
fn run_sizes(hours: u32, execs_per_hour: u32, sizes: &[u32], async_sizes: &[u32]) -> SyncReport {
    let budget = u64::from(hours) * u64::from(execs_per_hour);
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, 0)
        .with_execs_per_hour(execs_per_hour)
        .with_mode(Mode::Unguided);
    let mut baseline = Campaign::new(vkvm_factory(), &cfg);
    baseline.run_hours(hours);
    let target = baseline.coverage_fraction();
    let (map, file) = baseline.coverage_geometry();

    let mut cells = Vec::new();
    for &n in sizes {
        let (hours_each, eph) = fleet_layout(n, hours, execs_per_hour);
        for (synced, mode) in [
            (false, SyncMode::Lockstep),
            (true, SyncMode::Lockstep),
            (true, SyncMode::Async),
        ] {
            if mode == SyncMode::Async && !async_sizes.contains(&n) {
                continue;
            }
            cells.push(run_fleet(
                n, hours_each, eph, synced, mode, target, &map, file,
            ));
        }
    }
    let json = build_json(target, budget, hours, execs_per_hour, sizes, &cells);
    SyncReport {
        target,
        budget,
        hours,
        execs_per_hour,
        cells,
        json,
    }
}

/// Runs the whole bench pipeline over [`FLEET_SIZES`], with async
/// cells at every multi-worker size (a 1-worker "fleet" has no peers
/// to gossip with).
pub fn run(hours: u32, execs_per_hour: u32) -> SyncReport {
    run_sizes(hours, execs_per_hour, &FLEET_SIZES, &FLEET_SIZES[1..])
}

/// The CI smoke variant: [`SMOKE_FLEET_SIZES`] only, with a single
/// async cell at the largest size — enough for the gate to assert
/// async is no slower than lockstep at 8 workers.
pub fn run_smoke(hours: u32, execs_per_hour: u32) -> SyncReport {
    run_sizes(hours, execs_per_hour, &SMOKE_FLEET_SIZES, &[8])
}
