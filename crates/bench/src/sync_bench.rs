//! The deterministic pipeline behind the `sync_speedup` bench binary:
//! corpus-synced worker fleets vs unsynced ones at equal total
//! execution budget, reported as time-to-coverage-level.
//!
//! Extracted from the binary so the emitted JSON is *testable*:
//! everything here is a pure function of `(hours, execs_per_hour)` —
//! fixed seeds, worker-id-ordered merges — so `BENCH_sync.json` is
//! bit-reproducible, and `tests/hotpath_equivalence.rs` regenerates it
//! through this module and compares byte-for-byte against the
//! committed file. The binary adds only CLI parsing, table printing,
//! and the CI smoke gate.

use necofuzz::campaign::{run_campaign_group_observed, Campaign, CampaignConfig, GroupMember};
use nf_coverage::{CovMap, FileId, LineSet};
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

use crate::vkvm_factory;

/// Fleet sizes measured — the single source for the main loop, the
/// JSON summary, and the smoke gate, so adding a size cannot silently
/// escape the CI comparison.
pub const FLEET_SIZES: [u32; 4] = [1, 2, 4, 8];

/// One fleet measurement.
pub struct SyncCell {
    /// Fleet size.
    pub workers: u32,
    /// Whether the fleet exchanged corpus deltas every virtual hour.
    pub synced: bool,
    /// Total executions (across workers, replays included) when every
    /// member's own coverage first reached the target level; `None` if
    /// the budget ran out first.
    pub execs_to_target: Option<u64>,
    /// Worst member's own coverage at budget exhaustion.
    pub final_min: f64,
    /// Union coverage of the fleet at budget exhaustion.
    pub final_union: f64,
    /// Corpus entries adopted (and replayed) from siblings.
    pub adoptions: u64,
    /// Actual executions at budget exhaustion: the generation budget
    /// plus adoption replays. Synced cells run more total executions
    /// than their unsynced twins — the JSON reports this so coverage
    /// comparisons can be read against each cell's real cost.
    pub total_execs: u64,
}

/// The complete bench output: the baseline target, every cell, and the
/// serialized `BENCH_sync.json` contents.
pub struct SyncReport {
    /// The single-worker baseline's final coverage (the target level).
    pub target: f64,
    /// The baseline's execution budget.
    pub budget: u64,
    /// Virtual hours per (whole) budget.
    pub hours: u32,
    /// Executions per virtual hour.
    pub execs_per_hour: u32,
    /// Every fleet cell, in `FLEET_SIZES` × (unsynced, synced) order.
    pub cells: Vec<SyncCell>,
    /// The JSON document (what the binary writes to disk).
    pub json: String,
}

/// Runs an `n`-worker unguided fleet at `hours_each` hours per worker,
/// measuring when every member reaches `target` coverage on its own.
///
/// The fleet runs on the product sync path —
/// [`run_campaign_group_observed`], the same loop `necofuzz
/// --sync-interval` ships — with the hourly observer doing the
/// time-to-coverage bookkeeping, so the bench measures exactly the
/// protocol users get.
fn run_fleet(
    n: u32,
    hours_each: u32,
    execs_per_hour: u32,
    synced: bool,
    target: f64,
    map: &CovMap,
    file: FileId,
) -> SyncCell {
    let members: Vec<GroupMember> = (0..n)
        .map(|worker| {
            let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours_each, worker as u64)
                .with_execs_per_hour(execs_per_hour)
                .with_mode(Mode::Unguided)
                .with_sync_interval(u32::from(synced));
            (vkvm_factory(), cfg)
        })
        .collect();
    let total_lines = map.file_lines(file) as f64;

    let mut execs_to_target = None;
    let mut final_min = 0.0;
    let mut final_union = 0.0;
    let results = run_campaign_group_observed(members, |members| {
        final_min = members
            .iter()
            .map(Campaign::coverage_fraction)
            .fold(f64::INFINITY, f64::min);
        let mut union = LineSet::for_map(map);
        for member in members {
            union.union_with(member.lines());
        }
        final_union = union.count_in(map, file) as f64 / total_lines;
        if execs_to_target.is_none() && final_min >= target {
            execs_to_target = Some(members.iter().map(Campaign::execs).sum());
        }
    });
    SyncCell {
        workers: n,
        synced,
        execs_to_target,
        final_min,
        final_union,
        adoptions: results.iter().map(|r| r.adopted).sum(),
        total_execs: results.iter().map(|r| r.execs).sum(),
    }
}

fn build_json(
    target: f64,
    budget: u64,
    baseline_hours: u32,
    execs_per_hour: u32,
    cells: &[SyncCell],
) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let reached = match c.execs_to_target {
                Some(execs) => format!("\"execs_to_target\": {execs}, \"reached\": true"),
                None => "\"execs_to_target\": null, \"reached\": false".to_string(),
            };
            format!(
                "    {{\"workers\": {}, \"synced\": {}, {reached}, \
                 \"final_min_coverage\": {:.4}, \"final_union_coverage\": {:.4}, \
                 \"adoptions\": {}, \"total_execs\": {}}}",
                c.workers, c.synced, c.final_min, c.final_union, c.adoptions, c.total_execs
            )
        })
        .collect();
    let synced_beats_unsynced = FLEET_SIZES.iter().all(|&n| {
        let synced = cells.iter().find(|c| c.workers == n && c.synced);
        let unsynced = cells.iter().find(|c| c.workers == n && !c.synced);
        match (synced, unsynced) {
            (Some(s), Some(u)) => s.final_min >= u.final_min,
            _ => true,
        }
    });
    let best_multi = cells
        .iter()
        .filter(|c| c.synced && c.workers > 1)
        .filter_map(|c| c.execs_to_target)
        .min();
    let speedup = best_multi.map(|e| budget as f64 / e as f64).unwrap_or(0.0);
    format!(
        "{{\n  \"bench\": \"sync_speedup\",\n  \"unit\": \"total_execs\",\n  \
         \"metric\": \"total executions until every fleet member's own coverage \
         reaches the baseline level\",\n  \
         \"baseline\": {{\"mode\": \"unguided\", \"workers\": 1, \"hours\": {baseline_hours}, \
         \"execs_per_hour\": {execs_per_hour}, \"budget_execs\": {budget}, \
         \"target_coverage\": {target:.4}}},\n  \
         \"cells\": [\n{}\n  ],\n  \"summary\": {{\
         \"synced_beats_unsynced_at_equal_budget\": {synced_beats_unsynced}, \
         \"best_synced_multi_execs_to_target\": {}, \
         \"speedup_vs_baseline_budget\": {speedup:.2}}}\n}}\n",
        rows.join(",\n"),
        best_multi.map_or("null".to_string(), |e| e.to_string()),
    )
}

/// Runs the whole bench pipeline: the single-worker unguided baseline
/// (whose endpoint is the level every fleet must reach), then every
/// `FLEET_SIZES` × {unsynced, synced} cell.
pub fn run(hours: u32, execs_per_hour: u32) -> SyncReport {
    let budget = u64::from(hours) * u64::from(execs_per_hour);
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, 0)
        .with_execs_per_hour(execs_per_hour)
        .with_mode(Mode::Unguided);
    let mut baseline = Campaign::new(vkvm_factory(), &cfg);
    baseline.run_hours(hours);
    let target = baseline.coverage_fraction();
    let (map, file) = baseline.coverage_geometry();

    let mut cells = Vec::new();
    for n in FLEET_SIZES {
        let hours_each = hours / n;
        for synced in [false, true] {
            cells.push(run_fleet(
                n,
                hours_each,
                execs_per_hour,
                synced,
                target,
                &map,
                file,
            ));
        }
    }
    let json = build_json(target, budget, hours, execs_per_hour, &cells);
    SyncReport {
        target,
        budget,
        hours,
        execs_per_hour,
        cells,
        json,
    }
}
