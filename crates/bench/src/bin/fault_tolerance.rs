//! Fault tolerance: campaign behavior under deterministic fault
//! injection, and the cost of surviving it.
//!
//! The grid runs the same guided campaign under a fault-rate sweep
//! (`0`, `1%`, `5%` — each rate split by [`FaultPlan::uniform`]
//! across hung vmexit loops, transient and permanent restore
//! failures, snapshot-capture corruption, and silent host deaths)
//! and reports what the runtime did to absorb the faults: watchdog
//! reaps, restore retries and their exponential backoff, image and
//! trie-node quarantines, factory rebuilds, degraded-mode execs.
//!
//! The **overhead** metric is a deterministic model cost, not wall
//! clock: engine service operations (snapshot restores + retries +
//! factory builds + degraded rebuilds) per execution, normalized to
//! the zero-fault cell. The zero-fault cell itself must be
//! bit-identical to a campaign with no plan armed at all — the
//! injection seam is free when idle.
//!
//! A **kill + resume** section checkpoints the 5%-fault campaign
//! every virtual hour, drops it cold halfway through (everything not
//! checkpointed is lost), resumes from the checkpoint directory, and
//! compares the converged `CampaignResult` against the uninterrupted
//! baseline with full structural equality.
//!
//! Results are written to `BENCH_faults.json` (schema in README.md),
//! byte-reproducible across hosts; wall-clock rates go to stderr.
//! Flags: `--out PATH` (default `BENCH_faults.json`), `--smoke`
//! (tiny budget; exit 1 unless the zero-fault cell is identical, the
//! 1% overhead is under 1.3x, faults actually fire at 5%, and
//! kill + resume converges — the CI gate), `--jobs N` (accepted for
//! CLI uniformity; the cells are sequential and deterministic).

use std::time::Instant;

use necofuzz::campaign::{run_campaign, Campaign, CampaignConfig, CampaignResult};
use nf_bench::{hr, pct, vkvm_factory};
use nf_fuzz::Mode;
use nf_hv::FaultPlan;
use nf_x86::CpuVendor;

/// The fault-rate grid, zero first (the normalization cell).
const RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// Seed of the fault schedule (independent of the fuzzing seed).
const FAULT_SEED: u64 = 0xfa17;

/// Campaign seed shared by every cell: the cells differ only in the
/// fault rate.
const CAMPAIGN_SEED: u64 = 5;

/// The 1%-cell overhead gate: surviving a 1% fault rate must cost
/// less than 1.3x the zero-fault engine service work per exec.
const OVERHEAD_GATE: f64 = 1.3;

/// One fault-rate cell.
struct FaultCell {
    rate: f64,
    execs: u64,
    coverage: f64,
    finds: usize,
    hangs: u64,
    deaths: u64,
    restores: u64,
    retries: u64,
    backoff_units: u64,
    quarantines: u64,
    rebuilds: u64,
    degraded: u64,
    captures_corrupted: u64,
}

impl FaultCell {
    /// Engine service operations per execution — the work spent
    /// getting each exec a healthy, booted instance.
    fn service_ops_per_exec(&self) -> f64 {
        (self.restores + self.retries + self.rebuilds + self.degraded) as f64
            / self.execs.max(1) as f64
    }
}

fn campaign_config(hours: u32, eph: u32, rate: Option<f64>) -> CampaignConfig {
    let mut cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, CAMPAIGN_SEED)
        .with_execs_per_hour(eph)
        .with_mode(Mode::Guided);
    if let Some(rate) = rate {
        cfg = cfg.with_fault_plan(FaultPlan::uniform(FAULT_SEED, rate));
    }
    cfg
}

fn cell_of(rate: f64, result: &CampaignResult) -> FaultCell {
    let es = &result.engine_stats;
    FaultCell {
        rate,
        execs: result.execs,
        coverage: result.final_coverage,
        finds: result.finds.len(),
        hangs: result.faults.hangs,
        deaths: result.faults.deaths,
        restores: es.snapshot_restores,
        retries: es.restore_retries,
        backoff_units: es.restore_backoff_units,
        quarantines: es.quarantined_images + es.quarantined_prefix_nodes,
        rebuilds: es.factory_builds,
        degraded: es.degraded_mode,
        captures_corrupted: es.captures_corrupted,
    }
}

fn fault_cell(rate: f64, hours: u32, eph: u32) -> FaultCell {
    let started = Instant::now();
    let result = run_campaign(vkvm_factory(), &campaign_config(hours, eph, Some(rate)));
    eprintln!(
        "rate {rate:.2}: {:.0} execs/sec wall-clock (model numbers are virtual)",
        result.execs as f64 / started.elapsed().as_secs_f64()
    );
    cell_of(rate, &result)
}

/// The kill + resume measurement: checkpoint the 5%-fault campaign
/// hourly, drop it cold at the midpoint, resume, and compare against
/// the uninterrupted run.
struct ResumeCell {
    killed_at_hour: u32,
    hours: u32,
    identical: bool,
    coverage: f64,
    baseline_coverage: f64,
}

fn resume_cell(hours: u32, eph: u32) -> ResumeCell {
    let cfg = campaign_config(hours, eph, Some(0.05));
    let baseline = run_campaign(vkvm_factory(), &cfg);

    let dir = std::env::temp_dir().join(format!("nf-bench-faults-ckpt-{}", std::process::id()));
    let split = hours / 2;
    let mut partial = Campaign::new(vkvm_factory(), &cfg);
    partial.set_checkpoint(&dir, 1);
    partial.run_hours(split);
    drop(partial); // the kill: everything not checkpointed is lost

    let resumed = Campaign::resume_from_checkpoint(vkvm_factory(), &cfg, &dir)
        .expect("resume from checkpoint");
    assert_eq!(resumed.hours_done(), split, "checkpoint lags the kill");
    let result = resumed.into_result();
    std::fs::remove_dir_all(&dir).ok();

    ResumeCell {
        killed_at_hour: split,
        hours,
        identical: result == baseline,
        coverage: result.final_coverage,
        baseline_coverage: baseline.final_coverage,
    }
}

fn write_json(path: &str, cells: &[FaultCell], resume: &ResumeCell, zero_identical: bool) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"rate\": {:.2}, \"execs\": {}, \"coverage\": {:.4}, \
                 \"finds\": {}, \"hangs\": {}, \"deaths\": {}, \"restores\": {}, \
                 \"retries\": {}, \"backoff_units\": {}, \"quarantines\": {}, \
                 \"rebuilds\": {}, \"degraded\": {}, \"captures_corrupted\": {}, \
                 \"service_ops_per_exec\": {:.4}}}",
                c.rate,
                c.execs,
                c.coverage,
                c.finds,
                c.hangs,
                c.deaths,
                c.restores,
                c.retries,
                c.backoff_units,
                c.quarantines,
                c.rebuilds,
                c.degraded,
                c.captures_corrupted,
                c.service_ops_per_exec(),
            )
        })
        .collect();
    let base = cells[0].service_ops_per_exec();
    let overhead_1pct = cells[1].service_ops_per_exec() / base;
    let json = format!(
        "{{\n  \"bench\": \"fault_tolerance\",\n  \"version\": 1,\n  \
         \"unit\": \"engine_service_ops\",\n  \
         \"description\": \"campaigns under deterministic fault injection: each rate is \
         split across hung vmexit loops, transient/permanent restore failures, capture \
         corruption, and silent host deaths; service_ops_per_exec = (snapshot restores + \
         retries + factory builds + degraded rebuilds) / execs; overhead_1pct normalizes \
         the 1% cell to the zero-fault cell. resume kills the 5% campaign cold at its \
         midpoint and resumes from the hourly checkpoint. Virtual cost model, \
         byte-reproducible; wall-clock goes to stderr.\",\n  \
         \"cells\": [\n{}\n  ],\n  \
         \"resume\": {{\"killed_at_hour\": {}, \"hours\": {}, \"identical\": {}, \
         \"coverage\": {:.4}, \"baseline_coverage\": {:.4}}},\n  \
         \"summary\": {{\"zero_fault_identical\": {}, \"overhead_1pct\": {:.4}, \
         \"overhead_gate\": {:.1}, \"faults_fired_at_5pct\": {}, \
         \"resume_identical\": {}}}\n}}\n",
        rows.join(",\n"),
        resume.killed_at_hour,
        resume.hours,
        resume.identical,
        resume.coverage,
        resume.baseline_coverage,
        zero_identical,
        overhead_1pct,
        OVERHEAD_GATE,
        cells[2].hangs + cells[2].deaths > 0,
        resume.identical,
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: fault_tolerance [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_faults.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    let (hours, eph) = if smoke { (4, 60) } else { (8, 120) };

    // The idle-seam gate: a zero-rate plan must leave the campaign
    // bit-identical to one with no plan armed at all.
    let unarmed = run_campaign(vkvm_factory(), &campaign_config(hours, eph, None));
    let zeroed = run_campaign(vkvm_factory(), &campaign_config(hours, eph, Some(0.0)));
    let zero_identical = unarmed == zeroed;

    let cells: Vec<FaultCell> = RATES.iter().map(|&r| fault_cell(r, hours, eph)).collect();
    let resume = resume_cell(hours, eph);

    hr("Fault tolerance: campaign health under a fault-rate sweep");
    println!(
        "{:<6} {:>6} {:>9} {:>6} {:>6} {:>7} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "rate",
        "execs",
        "coverage",
        "hangs",
        "deaths",
        "retries",
        "backoff",
        "degraded",
        "rebuilds",
        "quarant.",
        "ops/exec"
    );
    for c in &cells {
        println!(
            "{:<6.2} {:>6} {:>9} {:>6} {:>6} {:>7} {:>9} {:>8} {:>9} {:>9} {:>9.4}",
            c.rate,
            c.execs,
            pct(c.coverage),
            c.hangs,
            c.deaths,
            c.retries,
            c.backoff_units,
            c.degraded,
            c.rebuilds,
            c.quarantines,
            c.service_ops_per_exec(),
        );
    }
    let overhead_1pct = cells[1].service_ops_per_exec() / cells[0].service_ops_per_exec();
    println!();
    println!("zero-fault cell identical to unarmed campaign: {zero_identical}");
    println!("1% fault-rate service overhead: {overhead_1pct:.4}x (gate < {OVERHEAD_GATE:.1}x)");
    println!(
        "kill at hour {} of {} + resume: identical={} (coverage {} vs baseline {})",
        resume.killed_at_hour,
        resume.hours,
        resume.identical,
        pct(resume.coverage),
        pct(resume.baseline_coverage),
    );

    write_json(&out, &cells, &resume, zero_identical);
    println!("\nwrote {out}");

    if smoke {
        let mut failures = Vec::new();
        if !zero_identical {
            failures.push("zero-rate plan perturbed the campaign".to_string());
        }
        if overhead_1pct >= OVERHEAD_GATE {
            failures.push(format!(
                "1% fault-rate overhead {overhead_1pct:.4}x breaches the {OVERHEAD_GATE:.1}x gate"
            ));
        }
        if cells[2].hangs + cells[2].deaths == 0 {
            failures.push("no faults fired at the 5% rate".to_string());
        }
        if !resume.identical {
            failures.push("kill + resume diverged from the uninterrupted run".to_string());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!(
            "smoke OK: idle seam free, 1% overhead {overhead_1pct:.4}x < {OVERHEAD_GATE:.1}x, \
             faults fire at 5%, kill + resume identical"
        );
    }
}
