//! Hot path: execs/sec and allocations/exec of the zero-allocation
//! iteration loop vs the compat byte-wise/allocating mode.
//!
//! The snapshot engine (PR 2) removed reboots from the iteration loop;
//! this bench measures what was left — the per-exec buffer churn and
//! byte-at-a-time bitmap scans the scratch/word-level engine
//! eliminates. Two workloads, each run in both modes:
//!
//! - **feedback_loop** — the exec feedback cycle at full rate: input
//!   generation, snapshot restore, a fixed L1 probe sequence, coverage
//!   collection, and the virgin-map novelty scan. The *hotpath* mode is
//!   the product path (`Fuzzer::next_input_into`, trace swap,
//!   `ExecScratch` reuse, word-level `bitmap::merge_raw`); the *compat*
//!   mode replays the original sequence (`next_input` allocation,
//!   `take_trace`, fresh `vec![0; MAP_SIZE]` + `LineSet` per exec,
//!   byte-wise `bitmap::bytewise::merge_raw`). Both modes are asserted
//!   to produce identical virgin maps and cumulative line coverage.
//! - **campaign** — an end-to-end `run_campaign` (all components on)
//!   vs a manual campaign driver on `Agent::run_iteration_alloc`; the
//!   results are asserted bit-identical.
//!
//! A counting global allocator measures **allocations per steady-state
//! exec** on the feedback loop: the hotpath mode must perform exactly
//! zero (after a short warm-up that sizes the reusable buffers).
//!
//! Results are written to `BENCH_hotpath.json` (schema in README.md).
//! Flags: `--out PATH` (default `BENCH_hotpath.json`), `--smoke` (tiny
//! budget; exit 1 unless the feedback loop is ≥ 2x faster than compat
//! with zero steady-state allocations and both workloads' results are
//! identical — the CI gate), `--jobs N` (accepted for CLI uniformity;
//! the mode pairs must share a core for a clean ratio).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::{Agent, ComponentMask, EngineMode, ExecutionEngine};
use nf_bench::{hr, vkvm_factory};
use nf_coverage::{bitmap, LineSet};
use nf_fuzz::{ExecFeedback, FuzzInput, Fuzzer, Mode, MAP_SIZE};
use nf_hv::HvConfig;
use nf_silicon::{CrIndex, GuestInstr};
use nf_vmx::VmxCapabilities;
use nf_x86::{CpuVendor, FeatureSet, Msr};

/// Allocation-event counter: every `alloc`/`realloc`/`alloc_zeroed`
/// bumps the counter (frees are not events — the gate is about churn,
/// not leaks). The harness snapshots the counter around the measured
/// region, so setup and reporting cost nothing.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One mode's feedback-loop measurement plus the state the
/// identical-results check compares.
struct FeedbackSide {
    eps: f64,
    allocs_per_exec: f64,
    virgin: Vec<u8>,
    cumulative: LineSet,
}

/// The fixed L1 probe sequence every feedback-loop exec runs: CR4
/// setup, `vmxon`, and two nested-capability MSR reads — enough to
/// exercise several instrumented blocks without staging guest memory.
fn run_probes(engine: &mut ExecutionEngine) {
    let hv = engine.hv_mut();
    hv.l1_exec(GuestInstr::MovToCr(
        CrIndex::Cr4,
        nf_x86::Cr4::VMXE | nf_x86::Cr4::PAE,
    ));
    hv.l1_exec(GuestInstr::Vmxon(0x1000));
    hv.l1_exec(GuestInstr::Rdmsr(Msr::VmxBasic.index()));
    hv.l1_exec(GuestInstr::Rdmsr(Msr::VmxProcbasedCtls.index()));
}

fn feedback_engine() -> (ExecutionEngine, HvConfig) {
    let vendor = CpuVendor::Intel;
    let config = HvConfig::default_for(vendor);
    let caps = VmxCapabilities::from_features(FeatureSet::default_for(vendor).sanitized(vendor));
    (
        ExecutionEngine::new(vkvm_factory(), config.clone(), caps, EngineMode::Snapshot),
        config,
    )
}

/// The product hot path: scratch reuse end to end. Returns the
/// measured rate and the allocation events per measured exec (the
/// zero-allocation gate).
fn feedback_hotpath(warmup: u32, execs: u32) -> FeedbackSide {
    let (mut engine, config) = feedback_engine();
    let mut fuzzer = Fuzzer::new(0, Mode::Unguided);
    let mut input = FuzzInput::zeroed();
    let mut cumulative = LineSet::for_map(engine.hv().coverage_map());
    let mut iter = |engine: &mut ExecutionEngine, fuzzer: &mut Fuzzer, cumulative: &mut LineSet| {
        fuzzer.next_input_into(&mut input);
        engine.prepare(&config);
        run_probes(engine);
        engine.collect_coverage();
        cumulative.union_with(&engine.scratch().lines);
        let scratch = engine.scratch();
        fuzzer.report_observed(
            &input,
            &scratch.bitmap,
            &scratch.lines,
            ExecFeedback { crashed: false },
        );
    };
    for _ in 0..warmup {
        iter(&mut engine, &mut fuzzer, &mut cumulative);
    }
    let allocs_before = ALLOC_EVENTS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..execs {
        iter(&mut engine, &mut fuzzer, &mut cumulative);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - allocs_before;
    FeedbackSide {
        eps: execs as f64 / elapsed,
        allocs_per_exec: allocs as f64 / execs as f64,
        virgin: fuzzer.corpus().virgin().to_vec(),
        cumulative,
    }
}

/// The compat ("before") mode: the original allocating sequence with
/// byte-wise bitmap scans — fresh input, trace, line set, and bitmap
/// per exec, `bitmap::bytewise::merge_raw` for novelty.
fn feedback_compat(warmup: u32, execs: u32) -> FeedbackSide {
    let (mut engine, config) = feedback_engine();
    let mut fuzzer = Fuzzer::new(0, Mode::Unguided);
    let mut virgin = vec![0xffu8; MAP_SIZE];
    let mut cumulative = LineSet::for_map(engine.hv().coverage_map());
    let iter = |engine: &mut ExecutionEngine,
                fuzzer: &mut Fuzzer,
                virgin: &mut Vec<u8>,
                cumulative: &mut LineSet| {
        let input = fuzzer.next_input();
        let _ = input; // executed for its RNG stream; probes are fixed
        engine.prepare(&config);
        run_probes(engine);
        let trace = engine.hv_mut().take_trace();
        let map = engine.hv().coverage_map();
        let mut lines = LineSet::for_map(map);
        lines.add_trace(map, &trace);
        cumulative.union_with(&lines);
        let mut raw = vec![0u8; MAP_SIZE];
        trace.fill_afl_bitmap(&mut raw);
        bitmap::bytewise::merge_raw(virgin, &raw);
    };
    for _ in 0..warmup {
        iter(&mut engine, &mut fuzzer, &mut virgin, &mut cumulative);
    }
    let allocs_before = ALLOC_EVENTS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..execs {
        iter(&mut engine, &mut fuzzer, &mut virgin, &mut cumulative);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - allocs_before;
    FeedbackSide {
        eps: execs as f64 / elapsed,
        allocs_per_exec: allocs as f64 / execs as f64,
        virgin,
        cumulative,
    }
}

/// One workload's before/after cell.
struct CellResult {
    workload: &'static str,
    compat_eps: f64,
    hotpath_eps: f64,
    compat_allocs: Option<f64>,
    hotpath_allocs: Option<f64>,
    identical: bool,
}

impl CellResult {
    fn speedup(&self) -> f64 {
        self.hotpath_eps / self.compat_eps
    }
}

/// End-to-end campaign cell: `run_campaign` (the product scratch loop)
/// vs a manual driver on the allocating iteration, asserted
/// bit-identical.
fn campaign_cell(hours: u32, eph: u32) -> CellResult {
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, 0).with_execs_per_hour(eph);

    let start = Instant::now();
    let product = run_campaign(vkvm_factory(), &cfg);
    let hotpath_eps = product.execs as f64 / start.elapsed().as_secs_f64();

    // The pre-scratch campaign loop: allocate per exec, sample hourly.
    let start = Instant::now();
    let mut agent = Agent::with_engine(
        vkvm_factory(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    );
    let mut fuzzer = Fuzzer::with_strategy(cfg.seed, cfg.mode, cfg.strategy);
    fuzzer.set_worker(0);
    let mut hourly = Vec::new();
    for _ in 0..hours {
        for _ in 0..eph {
            let input = fuzzer.next_input();
            let result = agent.run_iteration_alloc(&input);
            fuzzer.report_observed(&input, &result.bitmap, &result.lines, result.feedback);
        }
        hourly.push(agent.coverage_fraction());
    }
    let compat_eps = agent.execs() as f64 / start.elapsed().as_secs_f64();

    let identical = product
        .hourly
        .iter()
        .map(|h| h.coverage)
        .eq(hourly.iter().copied())
        && product.final_coverage == agent.coverage_fraction()
        && product.lines == agent.cumulative
        && product.execs == agent.execs()
        && product.restarts == agent.restarts()
        && product.finds == agent.triage().finds()
        && &product.corpus == fuzzer.corpus();
    CellResult {
        workload: "campaign",
        compat_eps,
        hotpath_eps,
        compat_allocs: None,
        hotpath_allocs: None,
        identical,
    }
}

fn write_json(path: &str, cells: &[CellResult], feedback_execs: u32, hours: u32, eph: u32) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let allocs = match (c.compat_allocs, c.hotpath_allocs) {
                (Some(compat), Some(hot)) => format!(
                    ", \"compat_allocs_per_exec\": {compat:.2}, \
                     \"hotpath_allocs_per_exec\": {hot:.2}"
                ),
                _ => String::new(),
            };
            format!(
                "    {{\"workload\": \"{}\", \"compat_eps\": {:.1}, \"hotpath_eps\": {:.1}, \
                 \"speedup\": {:.2}{allocs}, \"identical\": {}}}",
                c.workload,
                c.compat_eps,
                c.hotpath_eps,
                c.speedup(),
                c.identical
            )
        })
        .collect();
    let feedback = cells
        .iter()
        .find(|c| c.workload == "feedback_loop")
        .expect("feedback cell");
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"unit\": \"execs_per_sec\",\n  \
         \"workloads\": {{\n    \"feedback_loop\": {{\"execs\": {feedback_execs}, \
         \"description\": \"input generation + snapshot restore + probes + coverage \
         collection + virgin-map scan; hotpath reuses scratch buffers and word-level \
         bitmap ops, compat allocates per exec and scans byte-wise\"}},\n    \
         \"campaign\": {{\"hours\": {hours}, \"execs_per_hour\": {eph}, \
         \"description\": \"end-to-end run_campaign vs the allocating iteration \
         (run_iteration_alloc), results bit-identical\"}}\n  }},\n  \
         \"cells\": [\n{}\n  ],\n  \"summary\": {{\"feedback_loop_speedup\": {:.2}, \
         \"steady_state_allocs_per_exec\": {:.2}, \"results_identical\": {}}}\n}}\n",
        rows.join(",\n"),
        feedback.speedup(),
        feedback.hotpath_allocs.unwrap_or(0.0),
        cells.iter().all(|c| c.identical),
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: hotpath [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_hotpath.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    let (feedback_execs, hours, eph) = if smoke {
        (20_000u32, 4, 100)
    } else {
        (200_000u32, 12, 150)
    };
    let warmup = (feedback_execs / 10).max(100);

    // Feedback loop: compat first, then hotpath (same order every run;
    // both sides share the warmed process).
    let compat = feedback_compat(warmup, feedback_execs);
    let hot = feedback_hotpath(warmup, feedback_execs);
    let feedback_cell = CellResult {
        workload: "feedback_loop",
        compat_eps: compat.eps,
        hotpath_eps: hot.eps,
        compat_allocs: Some(compat.allocs_per_exec),
        hotpath_allocs: Some(hot.allocs_per_exec),
        identical: compat.virgin == hot.virgin && compat.cumulative == hot.cumulative,
    };

    let cells = vec![feedback_cell, campaign_cell(hours, eph)];

    hr("Hot path: scratch + word-level engine vs compat allocating mode (execs/sec)");
    println!(
        "{:<14} {:>14} {:>14} {:>9} {:>14} {:>15}  identical",
        "workload", "compat", "hotpath", "speedup", "compat allocs", "hotpath allocs"
    );
    for c in &cells {
        println!(
            "{:<14} {:>14.0} {:>14.0} {:>8.1}x {:>14} {:>15}  {}",
            c.workload,
            c.compat_eps,
            c.hotpath_eps,
            c.speedup(),
            c.compat_allocs
                .map_or("-".to_string(), |a| format!("{a:.2}/exec")),
            c.hotpath_allocs
                .map_or("-".to_string(), |a| format!("{a:.2}/exec")),
            c.identical
        );
    }

    write_json(&out, &cells, feedback_execs, hours, eph);
    println!("\nwrote {out}");

    let broken: Vec<&str> = cells
        .iter()
        .filter(|c| !c.identical)
        .map(|c| c.workload)
        .collect();
    if !broken.is_empty() {
        eprintln!("FAIL: hotpath results diverged from the compat mode on {broken:?}");
        std::process::exit(1);
    }
    if smoke {
        // CI gate: ≥2x on the iteration loop, zero steady-state
        // allocations on the product path.
        let feedback = &cells[0];
        let mut failures = Vec::new();
        if feedback.speedup() < 2.0 {
            failures.push(format!(
                "feedback loop speedup {:.2}x below the 2x gate",
                feedback.speedup()
            ));
        }
        if feedback.hotpath_allocs != Some(0.0) {
            failures.push(format!(
                "hot path allocated {:.2} times/exec at steady state (must be 0)",
                feedback.hotpath_allocs.unwrap_or(f64::NAN)
            ));
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!("smoke OK: >=2x iteration-loop speedup, zero steady-state allocations");
    }
}
