//! Table 6: newly discovered vulnerabilities across hypervisors.
//!
//! Runs NecoFuzz campaigns against the three hypervisor models (KVM on
//! Intel and AMD, Xen on Intel and AMD, VirtualBox on Intel) and reports
//! every Table 6 bug with its detector, matching the paper's six finds.

use necofuzz::orchestrator::{Backend, CampaignJob};
use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    hr("Table 6 — vulnerability discovery");
    println!(
        "{:<4} {:<12} {:<7} {:<28} {:<18} found at exec",
        "No", "Hypervisor", "CPU", "Bug id", "Detector"
    );
    let mut no = 0;
    type Target = (fn() -> Backend, CpuVendor, u32);
    let targets: [Target; 5] = [
        (vkvm_backend, CpuVendor::Intel, HOURS_LONG),
        (vkvm_backend, CpuVendor::Amd, HOURS_LONG),
        (vxen_backend, CpuVendor::Intel, HOURS_SHORT),
        (vxen_backend, CpuVendor::Amd, HOURS_SHORT),
        (vvbox_backend, CpuVendor::Intel, HOURS_SHORT),
    ];
    // All five targets × RUNS seeds go out as one 25-job batch; the
    // per-target budgets differ, so this is an explicit job list
    // rather than a cartesian plan.
    let jobs: Vec<CampaignJob> = targets
        .iter()
        .flat_map(|&(backend, vendor, hours)| {
            (0..RUNS).map(move |seed| CampaignJob {
                backend: backend(),
                cfg: necofuzz::CampaignConfig::necofuzz(vendor, hours, seed)
                    .with_execs_per_hour(EXECS_PER_HOUR)
                    .with_mode(Mode::Unguided),
            })
        })
        .collect();
    let results = executor().run_jobs(jobs);

    let mut all_found = std::collections::BTreeSet::new();
    for ((backend, vendor, _), target_results) in targets.iter().zip(results.chunks(RUNS as usize))
    {
        let name = backend().name().to_string();
        // vGIF is an optional feature the configurator must enable; the
        // Xen/AMD campaign explores it via the feature bit-array.
        let mut finds = Vec::new();
        for result in target_results {
            for f in &result.finds {
                if !finds
                    .iter()
                    .any(|(id, _, _): &(String, _, _)| *id == f.bug_id)
                {
                    finds.push((f.bug_id.clone(), f.kind, f.exec));
                }
            }
        }
        for (id, kind, exec) in finds {
            no += 1;
            all_found.insert(id.clone());
            println!(
                "{:<4} {:<12} {:<7} {:<28} {:<18} {}",
                no,
                name,
                format!("{vendor}"),
                id,
                format!("{kind}"),
                exec
            );
        }
    }
    println!("\nUnique bugs found: {}", all_found.len());
    for expected in [
        "CVE-2023-30456",
        "CVE-2024-21106",
        "kvm-spurious-triple-fault",
        "xen-wait-for-sipi",
        "xen-avic-noaccel",
        "xen-vgif-assert",
    ] {
        println!(
            "  [{}] {}",
            if all_found.contains(expected) {
                "found"
            } else {
                "  -  "
            },
            expected
        );
    }
}
