//! Table 6: newly discovered vulnerabilities across hypervisors.
//!
//! Runs NecoFuzz campaigns against the three hypervisor models (KVM on
//! Intel and AMD, Xen on Intel and AMD, VirtualBox on Intel) and reports
//! every Table 6 bug with its detector, matching the paper's six finds.

use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    hr("Table 6 — vulnerability discovery");
    println!(
        "{:<4} {:<12} {:<7} {:<28} {:<18} {}",
        "No", "Hypervisor", "CPU", "Bug id", "Detector", "found at exec"
    );
    let mut no = 0;
    let targets: [(&str, fn() -> Factory, CpuVendor, u32); 5] = [
        ("vkvm", vkvm_factory, CpuVendor::Intel, HOURS_LONG),
        ("vkvm", vkvm_factory, CpuVendor::Amd, HOURS_LONG),
        ("vxen", vxen_factory, CpuVendor::Intel, HOURS_SHORT),
        ("vxen", vxen_factory, CpuVendor::Amd, HOURS_SHORT),
        ("vvbox", vvbox_factory, CpuVendor::Intel, HOURS_SHORT),
    ];
    let mut all_found = std::collections::BTreeSet::new();
    for (name, factory, vendor, hours) in targets {
        // vGIF is an optional feature the configurator must enable; the
        // Xen/AMD campaign explores it via the feature bit-array.
        let mut finds = Vec::new();
        for seed in 0..RUNS {
            let cfg = necofuzz::CampaignConfig {
                vendor,
                hours,
                execs_per_hour: EXECS_PER_HOUR,
                seed,
                mode: Mode::Unguided,
                mask: necofuzz::ComponentMask::ALL,
            };
            let result = necofuzz::run_campaign(factory(), &cfg);
            for f in result.finds {
                if !finds
                    .iter()
                    .any(|(id, _, _): &(String, _, _)| *id == f.bug_id)
                {
                    finds.push((f.bug_id.clone(), f.kind, f.exec));
                }
            }
        }
        for (id, kind, exec) in finds {
            no += 1;
            all_found.insert(id.clone());
            println!(
                "{:<4} {:<12} {:<7} {:<28} {:<18} {}",
                no,
                name,
                format!("{vendor}"),
                id,
                format!("{kind}"),
                exec
            );
        }
    }
    println!("\nUnique bugs found: {}", all_found.len());
    for expected in [
        "CVE-2023-30456",
        "CVE-2024-21106",
        "kvm-spurious-triple-fault",
        "xen-wait-for-sipi",
        "xen-avic-noaccel",
        "xen-vgif-assert",
    ] {
        println!(
            "  [{}] {}",
            if all_found.contains(expected) {
                "found"
            } else {
                "  -  "
            },
            expected
        );
    }
}
