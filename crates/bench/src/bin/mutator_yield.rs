//! Mutator yield: structured scenario mutation vs classic havoc on the
//! guided campaign path.
//!
//! Byte-blind havoc wastes most of the snapshot engine's throughput on
//! semantically dead children — bit flips land mid-way through VMCS
//! field encodings and init-step argument pairs. The structure-aware
//! engine (`--mutator structured`) mutates at the granularity of the
//! scenario's actual interface objects: whole VMCS fields at their own
//! width, MSR-area entries over the architectural index dictionary,
//! 4-byte-aligned runtime steps, init-step directives. This bench
//! quantifies the payoff as **time to coverage level**:
//!
//! - per seed, a **havoc** guided campaign runs the full budget; its
//!   final coverage is that seed's *target level*;
//! - a **structured** campaign (same seed, same budget, same RNG
//!   stream) runs next to it, and we record the execution count at
//!   which it first reaches the havoc level ([`nf_stats::execs_to_level`]
//!   over the hourly growth curve).
//!
//! The headline ratio is `structured execs-to-level / havoc budget`,
//! medianed over seeds: below 1.0 means structured converts raw
//! exec/s into coverage faster than havoc; the CI gate demands ≤ 0.75.
//! The whole pipeline lives in [`nf_bench::mutator_bench`] (both
//! campaigns run on the product guided path — exactly what `necofuzz
//! --guided --mutator ...` ships), so `tests/hotpath_equivalence.rs`
//! can regenerate `BENCH_mutators.json` and hold it byte-for-byte;
//! everything is a pure function of the seeds, so the emitted file is
//! bit-reproducible.
//!
//! Flags: `--out PATH` (default `BENCH_mutators.json`), `--smoke`
//! (small budget; the CI gate — asserts the ratio, that every operator
//! of both strategies actually ran, and that a repeated cell is
//! bit-identical), `--jobs N` (accepted for CLI uniformity; cells are
//! a handful of serial campaigns).

use nf_bench::hr;
use nf_bench::mutator_bench::{self, GATE_RATIO, SEEDS};
use nf_fuzz::MutationStrategy;

fn usage() -> ! {
    eprintln!("usage: mutator_yield [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_mutators.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    // The smoke budget must still be large enough that the structured
    // profile draws every one of the 11 operators at least once per
    // run (the all-operators gate below) — a few hundred guided execs
    // make that overwhelmingly certain while the gate stays fast.
    let (hours, eph, seeds): (u32, u32, &[u64]) = if smoke {
        (12, 60, &SEEDS[..3])
    } else {
        (24, 120, &SEEDS)
    };

    hr("Mutator yield: structured scenario mutation vs havoc (guided campaigns)");
    println!(
        "{:<6} {:>12} {:>12} {:>16} {:>8} {:>12}",
        "seed", "havoc_cov", "havoc_execs", "structured@lvl", "ratio", "struct_cov"
    );

    let report = mutator_bench::run(hours, eph, seeds);
    for row in &report.rows {
        println!(
            "{:<6} {:>11.1}% {:>12} {:>16} {:>8} {:>11.1}%",
            row.seed,
            row.havoc_final * 100.0,
            row.havoc_execs,
            row.structured_execs_to_level
                .map_or("-".to_string(), |e| e.to_string()),
            row.ratio().map_or("-".to_string(), |x| format!("{x:.2}")),
            row.structured_final * 100.0
        );
    }

    println!("\nper-operator yield (structured, all seeds):");
    for &(op, generated, queued) in &report.ops {
        println!(
            "  {:<18} generated {generated:>6}  queued {queued:>4}",
            op.name()
        );
    }
    println!(
        "\nmedian ratio {:.2} (gate {GATE_RATIO}) — structured reaches the havoc \
         level in {:.0}% of the havoc budget",
        report.median_ratio,
        report.median_ratio * 100.0
    );

    std::fs::write(&out, &report.json).expect("write bench output");
    println!("wrote {out}");

    if smoke {
        let mut failures = Vec::new();
        if !report.gate_pass {
            failures.push(format!(
                "median ratio {:.3} exceeds the {GATE_RATIO} gate",
                report.median_ratio
            ));
        }
        // Every mutation primitive of both strategies must have run:
        // the gate is sized so a silently dead operator cannot hide.
        for (seed, stats) in seeds.iter().zip(&report.structured_stats) {
            if !stats.all_exercised() {
                let dead: Vec<&str> = stats
                    .operators
                    .iter()
                    .filter(|s| s.generated == 0)
                    .map(|s| s.op.name())
                    .collect();
                failures.push(format!("seed {seed}: operators never ran: {dead:?}"));
            }
        }
        if report.havoc_arms.contains(&0) {
            failures.push(format!(
                "havoc arms not all exercised: {:?}",
                report.havoc_arms
            ));
        }
        // Bit-reproducibility: repeating the first structured cell
        // must reproduce the main loop's run exactly.
        let first = report.first_structured.expect("seeds is non-empty");
        let again = mutator_bench::run_strategy(MutationStrategy::Structured, seeds[0], hours, eph);
        if again.curve != first.curve || again.result != first.result {
            failures.push("structured cell is not bit-reproducible".to_string());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!("smoke OK: ratio within gate, every operator exercised, bit-reproducible");
    }
}
