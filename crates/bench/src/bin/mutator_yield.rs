//! Mutator yield: structured scenario mutation vs classic havoc on the
//! guided campaign path.
//!
//! Byte-blind havoc wastes most of the snapshot engine's throughput on
//! semantically dead children — bit flips land mid-way through VMCS
//! field encodings and init-step argument pairs. The structure-aware
//! engine (`--mutator structured`) mutates at the granularity of the
//! scenario's actual interface objects: whole VMCS fields at their own
//! width, MSR-area entries over the architectural index dictionary,
//! 4-byte-aligned runtime steps, init-step directives. This bench
//! quantifies the payoff as **time to coverage level**:
//!
//! - per seed, a **havoc** guided campaign runs the full budget; its
//!   final coverage is that seed's *target level*;
//! - a **structured** campaign (same seed, same budget, same RNG
//!   stream) runs next to it, and we record the execution count at
//!   which it first reaches the havoc level ([`nf_stats::execs_to_level`]
//!   over the hourly growth curve).
//!
//! The headline ratio is `structured execs-to-level / havoc budget`,
//! medianed over seeds: below 1.0 means structured converts raw
//! exec/s into coverage faster than havoc; the CI gate demands ≤ 0.75.
//! Both campaigns run on the product guided path (`Campaign::run_hours`
//! — exactly what `necofuzz --guided --mutator ...` ships), and
//! everything is a pure function of the seeds, so the emitted
//! `BENCH_mutators.json` is bit-reproducible.
//!
//! Flags: `--out PATH` (default `BENCH_mutators.json`), `--smoke`
//! (small budget; the CI gate — asserts the ratio, that every operator
//! of both strategies actually ran, and that a repeated cell is
//! bit-identical), `--jobs N` (accepted for CLI uniformity; cells are
//! a handful of serial campaigns).

use necofuzz::campaign::{Campaign, CampaignConfig, CampaignResult};
use nf_bench::{hr, vkvm_factory};
use nf_fuzz::{Mode, MutationStats, MutationStrategy, Operator, HAVOC_ARMS};
use nf_stats::{execs_to_level, median};
use nf_x86::CpuVendor;

/// Seeds of the comparison (medianed; Klees et al.'s repeated runs).
const SEEDS: [u64; 5] = [0, 1, 2, 3, 4];

/// The ratio the CI gate demands: structured must reach the havoc
/// level in at most this fraction of the havoc budget (median).
const GATE_RATIO: f64 = 0.75;

/// One strategy's run on one seed: the hourly growth curve plus the
/// campaign result (operator stats, final coverage).
struct StrategyRun {
    curve: Vec<(u64, f64)>,
    result: CampaignResult,
}

/// Runs one guided campaign on the product path, sampling the coverage
/// growth curve at every virtual hour.
fn run_strategy(strategy: MutationStrategy, seed: u64, hours: u32, eph: u32) -> StrategyRun {
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, seed)
        .with_execs_per_hour(eph)
        .with_mode(Mode::Guided)
        .with_strategy(strategy);
    let mut campaign = Campaign::new(vkvm_factory(), &cfg);
    let mut curve = Vec::with_capacity(hours as usize);
    while !campaign.is_complete() {
        campaign.run_hours(1);
        curve.push((campaign.execs(), campaign.coverage_fraction()));
    }
    StrategyRun {
        curve,
        result: campaign.into_result(),
    }
}

/// One seed's havoc-vs-structured comparison.
struct SeedRow {
    seed: u64,
    /// The havoc baseline's final coverage (= the target level).
    havoc_final: f64,
    /// The havoc baseline's execution budget.
    havoc_execs: u64,
    /// Executions at which structured first reached the havoc level.
    structured_execs_to_level: Option<u64>,
    /// Structured coverage at budget exhaustion.
    structured_final: f64,
}

impl SeedRow {
    /// `structured execs-to-level / havoc budget`; `None` while the
    /// level was never reached (treated as ratio 1.0+ by the gate).
    fn ratio(&self) -> Option<f64> {
        self.structured_execs_to_level
            .map(|e| e as f64 / self.havoc_execs as f64)
    }
}

/// Aggregated per-operator stats across the structured runs.
fn operator_table(runs: &[&MutationStats]) -> Vec<(Operator, u64, u64)> {
    Operator::ALL
        .iter()
        .map(|&op| {
            let (mut generated, mut queued) = (0u64, 0u64);
            for stats in runs {
                let s = &stats.operators[op.index()];
                generated += s.generated;
                queued += s.queued;
            }
            (op, generated, queued)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    hours: u32,
    eph: u32,
    rows: &[SeedRow],
    ops: &[(Operator, u64, u64)],
    havoc_arms: &[u64; HAVOC_ARMS],
    median_ratio: f64,
    gate_pass: bool,
) {
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let reached = match r.structured_execs_to_level {
                Some(e) => format!("\"execs_to_level\": {e}, \"reached\": true"),
                None => "\"execs_to_level\": null, \"reached\": false".to_string(),
            };
            format!(
                "    {{\"seed\": {}, \"havoc_final_coverage\": {:.4}, \"havoc_execs\": {}, \
                 {reached}, \"ratio\": {}, \"structured_final_coverage\": {:.4}}}",
                r.seed,
                r.havoc_final,
                r.havoc_execs,
                r.ratio().map_or("null".to_string(), |x| format!("{x:.4}")),
                r.structured_final
            )
        })
        .collect();
    let op_json: Vec<String> = ops
        .iter()
        .map(|&(op, generated, queued)| {
            format!(
                "    {{\"operator\": \"{}\", \"generated\": {generated}, \"queued\": {queued}, \
                 \"yield\": {:.4}}}",
                op.name(),
                queued as f64 / generated.max(1) as f64
            )
        })
        .collect();
    let arms: Vec<String> = havoc_arms.iter().map(u64::to_string).collect();
    let json = format!(
        "{{\n  \"bench\": \"mutator_yield\",\n  \"unit\": \"execs_to_level_ratio\",\n  \
         \"metric\": \"structured executions to reach the havoc baseline's final coverage, \
         as a fraction of the havoc budget (guided campaigns, medians over seeds)\",\n  \
         \"config\": {{\"target\": \"vkvm\", \"vendor\": \"intel\", \"mode\": \"guided\", \
         \"hours\": {hours}, \"execs_per_hour\": {eph}, \"seeds\": {}}},\n  \
         \"seeds\": [\n{}\n  ],\n  \"operators\": [\n{}\n  ],\n  \
         \"havoc_arm_execs\": [{}],\n  \
         \"summary\": {{\"median_ratio\": {median_ratio:.4}, \"gate_ratio\": {GATE_RATIO}, \
         \"structured_reaches_havoc_level_within_gate\": {gate_pass}}}\n}}\n",
        rows.len(),
        row_json.join(",\n"),
        op_json.join(",\n"),
        arms.join(", "),
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: mutator_yield [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_mutators.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    // The smoke budget must still be large enough that the structured
    // profile draws every one of the 11 operators at least once per
    // run (the all-operators gate below) — a few hundred guided execs
    // make that overwhelmingly certain while the gate stays fast.
    let (hours, eph, seeds): (u32, u32, &[u64]) = if smoke {
        (12, 60, &SEEDS[..3])
    } else {
        (24, 120, &SEEDS)
    };

    hr("Mutator yield: structured scenario mutation vs havoc (guided campaigns)");
    println!(
        "{:<6} {:>12} {:>12} {:>16} {:>8} {:>12}",
        "seed", "havoc_cov", "havoc_execs", "structured@lvl", "ratio", "struct_cov"
    );

    let mut rows = Vec::new();
    let mut structured_stats = Vec::new();
    let mut havoc_arms = [0u64; HAVOC_ARMS];
    // The first seed's structured run is kept whole: the smoke gate
    // re-runs that cell once and compares, so reproducibility costs
    // one extra campaign rather than two.
    let mut first_structured: Option<StrategyRun> = None;
    for &seed in seeds {
        let havoc = run_strategy(MutationStrategy::Havoc, seed, hours, eph);
        let structured = run_strategy(MutationStrategy::Structured, seed, hours, eph);
        let row = SeedRow {
            seed,
            havoc_final: havoc.result.final_coverage,
            havoc_execs: havoc.result.execs,
            structured_execs_to_level: execs_to_level(
                &structured.curve,
                havoc.result.final_coverage,
            ),
            structured_final: structured.result.final_coverage,
        };
        println!(
            "{:<6} {:>11.1}% {:>12} {:>16} {:>8} {:>11.1}%",
            row.seed,
            row.havoc_final * 100.0,
            row.havoc_execs,
            row.structured_execs_to_level
                .map_or("-".to_string(), |e| e.to_string()),
            row.ratio().map_or("-".to_string(), |x| format!("{x:.2}")),
            row.structured_final * 100.0
        );
        for (arm, &n) in havoc.result.mutation.havoc_arms.iter().enumerate() {
            havoc_arms[arm] += n;
        }
        structured_stats.push(structured.result.mutation.clone());
        if first_structured.is_none() {
            first_structured = Some(structured);
        }
        rows.push(row);
    }

    // A never-reached level counts as the full budget (ratio 1.0) so
    // the median cannot be flattered by dropping bad seeds.
    let ratios: Vec<f64> = rows.iter().map(|r| r.ratio().unwrap_or(1.0)).collect();
    let median_ratio = median(&ratios);
    let gate_pass = median_ratio <= GATE_RATIO;
    let stats_refs: Vec<&MutationStats> = structured_stats.iter().collect();
    let ops = operator_table(&stats_refs);

    println!("\nper-operator yield (structured, all seeds):");
    for &(op, generated, queued) in &ops {
        println!(
            "  {:<18} generated {generated:>6}  queued {queued:>4}",
            op.name()
        );
    }
    println!(
        "\nmedian ratio {median_ratio:.2} (gate {GATE_RATIO}) — structured reaches the havoc \
         level in {:.0}% of the havoc budget",
        median_ratio * 100.0
    );

    write_json(
        &out,
        hours,
        eph,
        &rows,
        &ops,
        &havoc_arms,
        median_ratio,
        gate_pass,
    );
    println!("wrote {out}");

    if smoke {
        let mut failures = Vec::new();
        if !gate_pass {
            failures.push(format!(
                "median ratio {median_ratio:.3} exceeds the {GATE_RATIO} gate"
            ));
        }
        // Every mutation primitive of both strategies must have run:
        // the gate is sized so a silently dead operator cannot hide.
        for (seed, stats) in seeds.iter().zip(&structured_stats) {
            if !stats.all_exercised() {
                let dead: Vec<&str> = stats
                    .operators
                    .iter()
                    .filter(|s| s.generated == 0)
                    .map(|s| s.op.name())
                    .collect();
                failures.push(format!("seed {seed}: operators never ran: {dead:?}"));
            }
        }
        if havoc_arms.contains(&0) {
            failures.push(format!("havoc arms not all exercised: {havoc_arms:?}"));
        }
        // Bit-reproducibility: repeating the first structured cell
        // must reproduce the main loop's run exactly.
        let first = first_structured.expect("seeds is non-empty");
        let again = run_strategy(MutationStrategy::Structured, seeds[0], hours, eph);
        if again.curve != first.curve || again.result != first.result {
            failures.push("structured cell is not bit-reproducible".to_string());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!("smoke OK: ratio within gate, every operator exercised, bit-reproducible");
    }
}
