//! Figure 5: distribution of VM states, measured as Hamming distances
//! over the 8000-bit / 165-field VMCS layout (10,000 repetitions):
//!
//! - random vs validated: bits the rounding pass changes;
//! - default vs validated: distance of validated states from the
//!   default-initialized (golden) state;
//! - inter post-validation: pairwise distance between validated states.

use necofuzz::VmStateValidator;
use nf_bench::pct;
use nf_vmx::{Vmcs, VmxCapabilities};
use nf_x86::{CpuVendor, FeatureSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let caps = VmxCapabilities::from_features(
        FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
    );
    let mut validator = VmStateValidator::new(caps.clone());
    // Warm the oracle loop so rounding reflects the corrected model.
    let mut rng = SmallRng::seed_from_u64(0xf165);
    for _ in 0..64 {
        let mut seed = vec![0u8; Vmcs::BYTES];
        rng.fill(&mut seed[..]);
        let rounded = validator.round(&Vmcs::from_bytes(&seed));
        validator.verify_on_oracle(&rounded, &nf_vmx::MsrArea::new());
    }

    const REPS: usize = 10_000;
    let golden = nf_silicon::golden_vmcs(&caps);
    let mut rand_vs_valid = Vec::with_capacity(REPS);
    let mut default_vs_valid = Vec::with_capacity(REPS);
    let mut validated = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut seed = vec![0u8; Vmcs::BYTES];
        rng.fill(&mut seed[..]);
        let raw = Vmcs::from_bytes(&seed);
        let rounded = validator.round(&raw);
        rand_vs_valid.push(raw.hamming_distance(&rounded) as f64);
        default_vs_valid.push(golden.hamming_distance(&rounded) as f64);
        validated.push(rounded);
    }
    let mut inter = Vec::with_capacity(REPS);
    for i in 0..REPS {
        let j = (i + 1) % REPS;
        inter.push(validated[i].hamming_distance(&validated[j]) as f64);
    }

    println!("Figure 5 — VM state distributions (Hamming distance, bits)");
    println!(
        "layout: {} fields, {} bits",
        nf_vmx::FIELD_COUNT,
        nf_vmx::STATE_BITS
    );
    for (name, xs) in [
        ("Random vs Validated", &rand_vs_valid),
        ("Default vs Validated", &default_vs_valid),
        ("Inter Post-Validation", &inter),
    ] {
        let s = nf_stats::summarize(xs);
        println!(
            "\n{name}: mean {:.2}  std {:.2}  min {:.0}  max {:.0}",
            s.mean, s.std, s.min, s.max
        );
        for row in nf_stats::ascii_violin(xs, 12, 48) {
            println!("  {row}");
        }
    }
    println!(
        "\nA random state matches a valid one with probability ~2^-{:.1}",
        nf_stats::mean(&rand_vs_valid)
    );
    let _ = pct(0.0);
}
