//! Table 4: Xen coverage of nested-virtualization-specific code after
//! 24 virtual hours — NecoFuzz (median of five runs) vs the Xen Test
//! Framework, with the set-algebra rows.

use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        hr(&format!("Table 4 — Xen nested coverage at 24 h ({vendor})"));
        let neco = necofuzz_runs(
            vxen_factory,
            vendor,
            HOURS_SHORT,
            Mode::Unguided,
            necofuzz::ComponentMask::ALL,
        );
        let xtf = nf_baselines::xtf(vxen_factory(), vendor);
        let neco_med = median_run(&neco);
        let map = &neco_med.map;
        let file = neco_med.file;
        let total = map.file_lines(file);

        println!("{:<24} {:>7} {:>7}", "row", "cov%", "#line");
        println!("{:<24} {:>7} {:>7}", "Instrumented", "100%", total);
        let row = |name: &str, lines: &nf_coverage::LineSet| {
            println!(
                "{:<24} {:>7} {:>7}",
                name,
                pct(lines.count_in(map, file) as f64 / total as f64),
                lines.count_in(map, file)
            );
        };
        row("NecoFuzz", &neco_med.lines);
        row("XTF", &xtf.lines);
        row("NecoFuzz∩XTF", &neco_med.lines.intersect(&xtf.lines));
        row("NecoFuzz-XTF", &neco_med.lines.minus(&xtf.lines));
        row("XTF-NecoFuzz", &xtf.lines.minus(&neco_med.lines));

        let cov: Vec<f64> = neco.iter().map(|r| r.final_coverage).collect();
        let (lo, hi) = nf_stats::median_ci(&cov);
        println!(
            "\nNecoFuzz median {} (CI {}..{}), XTF {} -> +{:.1} pp",
            pct(nf_stats::median(&cov)),
            pct(lo),
            pct(hi),
            pct(xtf.final_coverage),
            (nf_stats::median(&cov) - xtf.final_coverage) * 100.0
        );
    }
}
