//! Table 3 + Figure 4: contribution of each VM-generator component.
//!
//! NecoFuzz with each component selectively disabled, 24 virtual hours,
//! median of five runs: coverage at the end (Table 3) and the hourly
//! progression (Figure 4), on Intel and AMD.

use necofuzz::orchestrator::CampaignPlan;
use necofuzz::ComponentMask;
use nf_bench::*;
use nf_x86::CpuVendor;

fn main() {
    let variants: [(&str, ComponentMask); 5] = [
        ("with ALL", ComponentMask::ALL),
        (
            "w/o VM execution harness",
            ComponentMask {
                harness: false,
                ..ComponentMask::ALL
            },
        ),
        (
            "w/o VM state validator",
            ComponentMask {
                validator: false,
                ..ComponentMask::ALL
            },
        ),
        (
            "w/o vCPU configurator",
            ComponentMask {
                configurator: false,
                ..ComponentMask::ALL
            },
        ),
        ("w/o ALL", ComponentMask::NONE),
    ];
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        hr(&format!("Table 3 — component ablation at 24 h ({vendor})"));
        // The whole ablation — every mask × every seed — is one plan;
        // the orchestrator fans the 25 campaigns out together and hands
        // results back in plan order (mask-major, seed-minor).
        let plan = CampaignPlan::new()
            .backend(vkvm_backend())
            .vendors(&[vendor])
            .masks(&variants.map(|(_, mask)| mask))
            .seeds(0..RUNS)
            .hours(HOURS_SHORT)
            .execs_per_hour(EXECS_PER_HOUR);
        let results = executor().run(&plan);

        let mut curves = Vec::new();
        for ((name, _), runs) in variants.iter().zip(results.chunks(RUNS as usize)) {
            let med = median_coverage(runs);
            println!("{:<28} {}", name, pct(med));
            let curve: Vec<f64> = (0..HOURS_SHORT as usize)
                .map(|h| {
                    nf_stats::median(
                        &runs
                            .iter()
                            .map(|r| r.hourly[h].coverage)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            curves.push((*name, curve));
        }
        hr(&format!(
            "Figure 4 — ablation coverage over time ({vendor})"
        ));
        print!("{:>5}", "hour");
        for (name, _) in &curves {
            print!(" {:>26}", name);
        }
        println!();
        for h in 0..HOURS_SHORT as usize {
            print!("{:>5}", h + 1);
            for (_, curve) in &curves {
                print!(" {:>26}", pct(curve[h]));
            }
            println!();
        }
    }
}
