//! Table 3 + Figure 4: contribution of each VM-generator component.
//!
//! NecoFuzz with each component selectively disabled, 24 virtual hours,
//! median of five runs: coverage at the end (Table 3) and the hourly
//! progression (Figure 4), on Intel and AMD.

use necofuzz::ComponentMask;
use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    let variants: [(&str, ComponentMask); 5] = [
        ("with ALL", ComponentMask::ALL),
        (
            "w/o VM execution harness",
            ComponentMask {
                harness: false,
                ..ComponentMask::ALL
            },
        ),
        (
            "w/o VM state validator",
            ComponentMask {
                validator: false,
                ..ComponentMask::ALL
            },
        ),
        (
            "w/o vCPU configurator",
            ComponentMask {
                configurator: false,
                ..ComponentMask::ALL
            },
        ),
        ("w/o ALL", ComponentMask::NONE),
    ];
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        hr(&format!("Table 3 — component ablation at 24 h ({vendor})"));
        let mut curves = Vec::new();
        for (name, mask) in variants {
            let runs = necofuzz_runs(vkvm_factory, vendor, HOURS_SHORT, Mode::Unguided, mask);
            let med = median_coverage(&runs);
            println!("{:<28} {}", name, pct(med));
            let curve: Vec<f64> = (0..HOURS_SHORT as usize)
                .map(|h| {
                    nf_stats::median(
                        &runs
                            .iter()
                            .map(|r| r.hourly[h].coverage)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            curves.push((name, curve));
        }
        hr(&format!(
            "Figure 4 — ablation coverage over time ({vendor})"
        ));
        print!("{:>5}", "hour");
        for (name, _) in &curves {
            print!(" {:>26}", name);
        }
        println!();
        for h in 0..HOURS_SHORT as usize {
            print!("{:>5}", h + 1);
            for (_, curve) in &curves {
                print!(" {:>26}", pct(curve[h]));
            }
            println!();
        }
    }
}
