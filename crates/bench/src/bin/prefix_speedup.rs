//! Prefix cache: scenario units skipped per exec as a function of how
//! much consecutive inputs share.
//!
//! The snapshot trie (engine prefix cache) restores the deepest cached
//! ancestor of an input's scenario-prefix chain and executes only the
//! suffix. This bench drives the product execution path
//! (`Agent::run_iteration` with `--prefix-cache` semantics) over
//! workloads with a controlled **prefix share**: every input in a cell
//! keeps the first `share * RUNTIME_STEPS` runtime records of a fixed
//! base scenario and randomizes the rest, so consecutive execs agree
//! on exactly that much of the instruction stream (plus the whole init
//! plan, which the cell holds constant).
//!
//! The reported speedup is a **deterministic model cost**, not wall
//! clock: every scenario unit (init step or runtime record) costs 1,
//! `units_total` is what full replay would execute, `units_skipped`
//! comes from the engine's own counters, and
//! `model_speedup = units_total / units_executed`. The virtual-time
//! model keeps `BENCH_prefix.json` byte-reproducible across hosts;
//! measured wall-clock rates go to stderr only.
//!
//! A separate **identical** check runs small campaigns — solo and
//! sync-grouped, both strategies, both vendors — with the prefix cache
//! on and off and asserts the `CampaignResult`s compare equal: the
//! cache is a pure execution-cost optimization.
//!
//! Results are written to `BENCH_prefix.json` (schema in README.md).
//! Flags: `--out PATH` (default `BENCH_prefix.json`), `--smoke` (tiny
//! budget; exit 1 unless model speedup rises monotonically with the
//! share, the high-share cell is ≥ 2x, and every A/B campaign pair is
//! identical — the CI gate), `--jobs N` (accepted for CLI uniformity;
//! the cells are sequential and deterministic).

use std::time::Instant;

use necofuzz::campaign::{run_campaign, run_campaign_group, CampaignConfig, GroupMember};
use necofuzz::{Agent, ComponentMask, EngineMode, ExecutionHarness};
use nf_bench::{hr, vkvm_factory, vxen_factory};
use nf_fuzz::scenario::InputLayout;
use nf_fuzz::{FuzzInput, Mode, MutationStrategy};
use nf_x86::CpuVendor;

/// The prefix-share grid: the fraction of the runtime record stream
/// consecutive inputs have in common.
const SHARES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.95];

/// Capture at every boundary and never evict inside a cell: the cells
/// measure the restore geometry, not the capture policy (the policy's
/// hit/eviction behavior is exercised by the equivalence suite).
const CELL_BUDGET: usize = 64 << 20;

/// One share cell's deterministic model measurement.
struct ShareCell {
    share: f64,
    execs: u32,
    units_total: u64,
    units_skipped: u64,
    hits: u64,
    misses: u64,
    captures: u64,
    evictions: u64,
}

impl ShareCell {
    fn units_executed(&self) -> u64 {
        self.units_total - self.units_skipped
    }

    fn model_speedup(&self) -> f64 {
        self.units_total as f64 / self.units_executed() as f64
    }
}

/// Runs one share cell: `execs` iterations on the product path, every
/// input sharing the first `share` of the base scenario's runtime
/// records. Deterministic in (share, execs).
fn share_cell(share: f64, execs: u32) -> ShareCell {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut agent = Agent::with_engine(
        vkvm_factory(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    )
    .with_prefix_cache(true)
    .with_prefix_threshold(1)
    .with_prefix_budget(CELL_BUDGET);

    // One fixed base scenario per cell grid; the same seed for every
    // share so the cells differ only in how much of it they keep.
    let mut rng = SmallRng::seed_from_u64(7);
    let base = FuzzInput::random(&mut rng);

    // Scenario units per exec: the (fixed) mutated init plan plus one
    // unit per runtime record. The cell never touches the init section
    // or the staged images, so the plan — and with it the chain length
    // — is constant across the cell. The revision argument parameterizes
    // a step's payload, never the step count.
    let init_bytes = &base.bytes[InputLayout::INIT.range()];
    let plan_units = ExecutionHarness::new(CpuVendor::Intel)
        .mutated_plan(1, init_bytes)
        .steps
        .len() as u64;
    let units_per_exec = plan_units + InputLayout::RUNTIME_STEPS as u64;

    let shared_records = (share * InputLayout::RUNTIME_STEPS as f64).round() as usize;
    let run = InputLayout::RUNTIME;
    let tail_start = run.offset + shared_records * InputLayout::STEP_BYTES;

    let mut input = base.clone();
    let start = Instant::now();
    for _ in 0..execs {
        input.bytes[run.offset..run.range().end].copy_from_slice(&base.bytes[run.range()]);
        rng.fill(&mut input.bytes[tail_start..run.range().end]);
        agent.run_iteration(&input);
    }
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "share {share:.2}: {:.0} execs/sec wall-clock (model numbers are virtual)",
        execs as f64 / elapsed
    );

    let stats = agent.engine_stats();
    ShareCell {
        share,
        execs,
        units_total: units_per_exec * execs as u64,
        units_skipped: stats.prefix_units_skipped,
        hits: stats.prefix_hits,
        misses: stats.prefix_misses,
        captures: stats.prefix_captures,
        evictions: stats.prefix_evictions,
    }
}

/// One A/B identity cell: the same campaign with the prefix cache on
/// and off, compared with `CampaignResult`'s equality (which spans
/// coverage curves, corpus, triage, divergence — everything except the
/// engine counters).
struct AbCell {
    label: &'static str,
    identical: bool,
}

fn ab_solo(
    label: &'static str,
    factory: fn() -> necofuzz::campaign::HvFactory,
    cfg: CampaignConfig,
) -> AbCell {
    let cached = run_campaign(factory(), &cfg.clone().with_prefix_cache(true));
    let full = run_campaign(factory(), &cfg.with_prefix_cache(false));
    AbCell {
        label,
        identical: cached == full,
    }
}

/// The synced-fleet A/B cell: a two-member vkvm sync group, prefix
/// cache on vs off, every member's result compared.
fn ab_group(label: &'static str, hours: u32, eph: u32) -> AbCell {
    let run = |prefix: bool| {
        let members: Vec<GroupMember> = (0..2)
            .map(|seed| {
                let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, seed)
                    .with_execs_per_hour(eph)
                    .with_mode(Mode::Guided)
                    .with_sync_interval(2)
                    .with_prefix_cache(prefix);
                (vkvm_factory(), cfg) as GroupMember
            })
            .collect();
        run_campaign_group(members)
    };
    AbCell {
        label,
        identical: run(true) == run(false),
    }
}

fn identity_cells(hours: u32, eph: u32) -> Vec<AbCell> {
    let base = |vendor, seed| {
        CampaignConfig::necofuzz(vendor, hours, seed)
            .with_execs_per_hour(eph)
            .with_mode(Mode::Guided)
    };
    vec![
        ab_solo("vkvm/intel/guided", vkvm_factory, base(CpuVendor::Intel, 1)),
        ab_solo(
            "vxen/amd/structured",
            vxen_factory,
            base(CpuVendor::Amd, 2).with_strategy(MutationStrategy::Structured),
        ),
        ab_group("vkvm/intel/synced-x2", hours, eph),
    ]
}

fn write_json(path: &str, cells: &[ShareCell], ab: &[AbCell]) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"share\": {:.2}, \"execs\": {}, \"units_total\": {}, \
                 \"units_executed\": {}, \"units_skipped\": {}, \"model_speedup\": {:.2}, \
                 \"hits\": {}, \"misses\": {}, \"captures\": {}, \"evictions\": {}}}",
                c.share,
                c.execs,
                c.units_total,
                c.units_executed(),
                c.units_skipped,
                c.model_speedup(),
                c.hits,
                c.misses,
                c.captures,
                c.evictions,
            )
        })
        .collect();
    let ab_rows: Vec<String> = ab
        .iter()
        .map(|c| {
            format!(
                "    {{\"campaign\": \"{}\", \"identical\": {}}}",
                c.label, c.identical
            )
        })
        .collect();
    let high = cells.last().expect("share grid");
    let json = format!(
        "{{\n  \"bench\": \"prefix_speedup\",\n  \"unit\": \"model_scenario_units\",\n  \
         \"description\": \"snapshot-trie prefix cache: every scenario unit (init step or \
         runtime record) costs 1; units_skipped are restored from cached mid-scenario \
         snapshots instead of re-executed; model_speedup = units_total / units_executed. \
         Virtual cost model, byte-reproducible; wall-clock goes to stderr.\",\n  \
         \"cells\": [\n{}\n  ],\n  \"identity\": [\n{}\n  ],\n  \
         \"summary\": {{\"high_share_speedup\": {:.2}, \"monotone\": {}, \
         \"results_identical\": {}}}\n}}\n",
        rows.join(",\n"),
        ab_rows.join(",\n"),
        high.model_speedup(),
        cells
            .windows(2)
            .all(|w| w[1].model_speedup() > w[0].model_speedup()),
        ab.iter().all(|c| c.identical),
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: prefix_speedup [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_prefix.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    let (execs, hours, eph) = if smoke {
        (80u32, 3, 60)
    } else {
        (400u32, 6, 120)
    };

    let cells: Vec<ShareCell> = SHARES.iter().map(|&s| share_cell(s, execs)).collect();
    let ab = identity_cells(hours, eph);

    hr("Prefix cache: scenario units skipped vs prefix share (model cost)");
    println!(
        "{:<7} {:>6} {:>12} {:>14} {:>14} {:>9} {:>7} {:>8}",
        "share",
        "execs",
        "units_total",
        "units_executed",
        "units_skipped",
        "speedup",
        "hits",
        "misses"
    );
    for c in &cells {
        println!(
            "{:<7.2} {:>6} {:>12} {:>14} {:>14} {:>8.2}x {:>7} {:>8}",
            c.share,
            c.execs,
            c.units_total,
            c.units_executed(),
            c.units_skipped,
            c.model_speedup(),
            c.hits,
            c.misses
        );
    }
    println!();
    for c in &ab {
        println!("identical {:<22} {}", c.label, c.identical);
    }

    write_json(&out, &cells, &ab);
    println!("\nwrote {out}");

    let broken: Vec<&str> = ab
        .iter()
        .filter(|c| !c.identical)
        .map(|c| c.label)
        .collect();
    if !broken.is_empty() {
        eprintln!("FAIL: prefix-cached campaigns diverged from full replay on {broken:?}");
        std::process::exit(1);
    }
    if smoke {
        let mut failures = Vec::new();
        if !cells
            .windows(2)
            .all(|w| w[1].model_speedup() > w[0].model_speedup())
        {
            failures.push("model speedup is not monotone in the prefix share".to_string());
        }
        let high = cells.last().expect("share grid");
        if high.model_speedup() < 2.0 {
            failures.push(format!(
                "high-share model speedup {:.2}x below the 2x gate",
                high.model_speedup()
            ));
        }
        if cells.iter().any(|c| c.hits == 0) {
            failures.push("a share cell never hit the prefix cache".to_string());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!("smoke OK: monotone model speedup, >=2x at high share, A/B identical");
    }
}
