//! Prefix cache: scenario units skipped per exec as a function of how
//! much consecutive inputs share.
//!
//! The snapshot trie (engine prefix cache) restores the deepest cached
//! ancestor of an input's scenario-prefix chain and executes only the
//! suffix. This bench drives the product execution path
//! (`Agent::run_iteration` with `--prefix-cache` semantics) over
//! workloads with a controlled **prefix share**: every input in a cell
//! keeps the first `share * RUNTIME_STEPS` runtime records of a fixed
//! base scenario and randomizes the rest, so consecutive execs agree
//! on exactly that much of the instruction stream (plus the whole init
//! plan, which the cell holds constant).
//!
//! The reported speedup is a **deterministic model cost**, not wall
//! clock: every scenario unit (init step or runtime record) costs 1,
//! `units_total` is what full replay would execute, `units_skipped`
//! comes from the engine's own counters, and
//! `model_speedup = units_total / units_executed`. The virtual-time
//! model keeps `BENCH_prefix.json` byte-reproducible across hosts;
//! measured wall-clock rates go to stderr only.
//!
//! A second, **budget-constrained** grid compares the trie's two
//! snapshot stores head-to-head: the content-addressed copy-on-write
//! store (`cow`, the default) against self-contained deep copies
//! (`deep`, PR 7 semantics). Each cell rotates a working set of
//! distinct base scenarios under a fixed byte budget, so the store
//! that fits more boundaries into the budget serves more restores.
//! The CoW store charges each unique blob once (event-log chains cost
//! their suffix, snapshot components and traces dedup across nodes),
//! so at tight budgets it strictly out-speeds the deep store — the
//! `cow_beats_deep` gate.
//!
//! A separate **identical** check runs small campaigns — solo and
//! sync-grouped, both strategies, both vendors — with the prefix cache
//! on and off and asserts the `CampaignResult`s compare equal: the
//! cache is a pure execution-cost optimization.
//!
//! Results are written to `BENCH_prefix.json` (v2 schema in
//! README.md). Flags: `--out PATH` (default `BENCH_prefix.json`),
//! `--smoke` (tiny budget; exit 1 unless model speedup rises
//! monotonically with the share, the high-share cell is ≥ 2x, the CoW
//! store dedups (ratio > 1.0) and strictly beats the deep store at the
//! smallest budget, and every A/B campaign pair is identical — the CI
//! gate), `--jobs N` (accepted for CLI uniformity; the cells are
//! sequential and deterministic).

use std::time::Instant;

use necofuzz::campaign::{run_campaign, run_campaign_group, CampaignConfig, GroupMember};
use necofuzz::{Agent, ComponentMask, EngineMode, ExecutionHarness, PrefixStoreMode};
use nf_bench::{hr, vkvm_factory, vxen_factory};
use nf_fuzz::scenario::InputLayout;
use nf_fuzz::{FuzzInput, Mode, MutationStrategy};
use nf_x86::CpuVendor;

/// The prefix-share grid: the fraction of the runtime record stream
/// consecutive inputs have in common.
const SHARES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.95];

/// Capture at every boundary and never evict inside a cell: the cells
/// measure the restore geometry, not the capture policy (the policy's
/// hit/eviction behavior is exercised by the equivalence suite).
const CELL_BUDGET: usize = 64 << 20;

/// The byte-budget grid of the store comparison, smallest first. The
/// smallest budget is the `cow_beats_deep` gate cell.
const BUDGETS: [usize; 3] = [256 << 10, 1 << 20, 8 << 20];

/// The (prefix share, rotating base count) pairs of the budget grid.
/// Deeper chains get fewer bases so every cell's working set lands in
/// the same byte range: small enough that the CoW store (charging
/// unique blobs once) holds every chain at the smallest budget, large
/// enough that the deep-copy store cannot — under round-robin access
/// an LRU trie that cannot hold the full set serves no restores at
/// all, so the smallest budget is where the stores separate.
const BUDGET_GRID: [(f64, usize); 2] = [(0.25, 4), (0.5, 3)];

/// One share cell's deterministic model measurement.
struct ShareCell {
    share: f64,
    execs: u32,
    units_total: u64,
    units_skipped: u64,
    hits: u64,
    misses: u64,
    captures: u64,
    evictions: u64,
}

impl ShareCell {
    fn units_executed(&self) -> u64 {
        self.units_total - self.units_skipped
    }

    fn model_speedup(&self) -> f64 {
        self.units_total as f64 / self.units_executed() as f64
    }
}

/// Runs one share cell: `execs` iterations on the product path, every
/// input sharing the first `share` of the base scenario's runtime
/// records. Deterministic in (share, execs).
fn share_cell(share: f64, execs: u32) -> ShareCell {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut agent = Agent::with_engine(
        vkvm_factory(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    )
    .with_prefix_cache(true)
    .with_prefix_threshold(1)
    .with_prefix_budget(CELL_BUDGET);

    // One fixed base scenario per cell grid; the same seed for every
    // share so the cells differ only in how much of it they keep.
    let mut rng = SmallRng::seed_from_u64(7);
    let base = FuzzInput::random(&mut rng);

    // Scenario units per exec: the (fixed) mutated init plan plus one
    // unit per runtime record. The cell never touches the init section
    // or the staged images, so the plan — and with it the chain length
    // — is constant across the cell. The revision argument parameterizes
    // a step's payload, never the step count.
    let init_bytes = &base.bytes[InputLayout::INIT.range()];
    let plan_units = ExecutionHarness::new(CpuVendor::Intel)
        .mutated_plan(1, init_bytes)
        .steps
        .len() as u64;
    let units_per_exec = plan_units + InputLayout::RUNTIME_STEPS as u64;

    let shared_records = (share * InputLayout::RUNTIME_STEPS as f64).round() as usize;
    let run = InputLayout::RUNTIME;
    let tail_start = run.offset + shared_records * InputLayout::STEP_BYTES;

    let mut input = base.clone();
    let start = Instant::now();
    for _ in 0..execs {
        input.bytes[run.offset..run.range().end].copy_from_slice(&base.bytes[run.range()]);
        rng.fill(&mut input.bytes[tail_start..run.range().end]);
        agent.run_iteration(&input);
    }
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "share {share:.2}: {:.0} execs/sec wall-clock (model numbers are virtual)",
        execs as f64 / elapsed
    );

    let stats = agent.engine_stats();
    ShareCell {
        share,
        execs,
        units_total: units_per_exec * execs as u64,
        units_skipped: stats.prefix_units_skipped,
        hits: stats.prefix_hits,
        misses: stats.prefix_misses,
        captures: stats.prefix_captures,
        evictions: stats.prefix_evictions,
    }
}

/// One budget-constrained store-comparison cell.
struct BudgetCell {
    store: PrefixStoreMode,
    budget: usize,
    share: f64,
    execs: u32,
    units_total: u64,
    units_skipped: u64,
    hits: u64,
    misses: u64,
    captures: u64,
    evictions: u64,
    bytes_resident: u64,
    nodes_resident: u64,
    dedup_ratio: f64,
    max_hit_depth: u64,
}

impl BudgetCell {
    fn units_executed(&self) -> u64 {
        self.units_total - self.units_skipped
    }

    fn model_speedup(&self) -> f64 {
        self.units_total as f64 / self.units_executed() as f64
    }
}

/// Runs one budget cell: `execs` iterations rotating through `bases`
/// distinct base scenarios, each exec keeping the first `share` of its
/// base's runtime records and randomizing the rest, under `budget`
/// bytes of trie with the given snapshot store. Deterministic in
/// (store, budget, share, bases, execs).
fn budget_cell(
    store: PrefixStoreMode,
    budget: usize,
    share: f64,
    bases: usize,
    execs: u32,
) -> BudgetCell {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut agent = Agent::with_engine(
        vkvm_factory(),
        CpuVendor::Intel,
        ComponentMask::ALL,
        EngineMode::Snapshot,
    )
    .with_prefix_cache(true)
    .with_prefix_threshold(2)
    .with_prefix_budget(budget)
    .with_prefix_store(store);

    // The same base working set for every (store, budget) pair: the
    // seed covers base generation only, so cells differ in nothing but
    // the store policy under test.
    let mut rng = SmallRng::seed_from_u64(11);
    let bases: Vec<FuzzInput> = (0..bases).map(|_| FuzzInput::random(&mut rng)).collect();
    let harness = ExecutionHarness::new(CpuVendor::Intel);
    let plan_units: Vec<u64> = bases
        .iter()
        .map(|b| {
            harness
                .mutated_plan(1, &b.bytes[InputLayout::INIT.range()])
                .steps
                .len() as u64
        })
        .collect();

    let shared_records = (share * InputLayout::RUNTIME_STEPS as f64).round() as usize;
    let run = InputLayout::RUNTIME;
    let tail_start = run.offset + shared_records * InputLayout::STEP_BYTES;

    let mut units_total = 0u64;
    let mut input = FuzzInput::zeroed();
    let start = Instant::now();
    for i in 0..execs {
        let slot = i as usize % bases.len();
        input.bytes.copy_from_slice(&bases[slot].bytes);
        rng.fill(&mut input.bytes[tail_start..run.range().end]);
        agent.run_iteration(&input);
        units_total += plan_units[slot] + InputLayout::RUNTIME_STEPS as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "store {store} budget {budget} share {share:.2}: {:.0} execs/sec wall-clock",
        execs as f64 / elapsed
    );

    let stats = agent.engine_stats();
    BudgetCell {
        store,
        budget,
        share,
        execs,
        units_total,
        units_skipped: stats.prefix_units_skipped,
        hits: stats.prefix_hits,
        misses: stats.prefix_misses,
        captures: stats.prefix_captures,
        evictions: stats.prefix_evictions,
        bytes_resident: stats.prefix_bytes_resident,
        nodes_resident: stats.prefix_nodes,
        dedup_ratio: stats.prefix_dedup_ratio(),
        max_hit_depth: stats.prefix_max_hit_depth,
    }
}

fn budget_cells(execs: u32) -> Vec<BudgetCell> {
    let mut cells = Vec::new();
    for &budget in &BUDGETS {
        for &(share, bases) in &BUDGET_GRID {
            for store in [PrefixStoreMode::Cow, PrefixStoreMode::DeepCopy] {
                cells.push(budget_cell(store, budget, share, bases, execs));
            }
        }
    }
    cells
}

/// The gate comparison: at the smallest budget, the CoW store's model
/// speedup must strictly exceed the deep store's at every share.
fn cow_beats_deep(cells: &[BudgetCell]) -> bool {
    let min_budget = BUDGETS[0];
    BUDGET_GRID.iter().all(|&(share, _)| {
        let at = |store: PrefixStoreMode| {
            cells
                .iter()
                .find(|c| c.store == store && c.budget == min_budget && c.share == share)
                .expect("grid covers the gate cell")
                .model_speedup()
        };
        at(PrefixStoreMode::Cow) > at(PrefixStoreMode::DeepCopy)
    })
}

/// One A/B identity cell: the same campaign with the prefix cache on
/// and off, compared with `CampaignResult`'s equality (which spans
/// coverage curves, corpus, triage, divergence — everything except the
/// engine counters).
struct AbCell {
    label: &'static str,
    identical: bool,
}

fn ab_solo(
    label: &'static str,
    factory: fn() -> necofuzz::campaign::HvFactory,
    cfg: CampaignConfig,
) -> AbCell {
    let cached = run_campaign(factory(), &cfg.clone().with_prefix_cache(true));
    let full = run_campaign(factory(), &cfg.with_prefix_cache(false));
    AbCell {
        label,
        identical: cached == full,
    }
}

/// The synced-fleet A/B cell: a two-member vkvm sync group, prefix
/// cache on vs off, every member's result compared.
fn ab_group(label: &'static str, hours: u32, eph: u32) -> AbCell {
    let run = |prefix: bool| {
        let members: Vec<GroupMember> = (0..2)
            .map(|seed| {
                let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, seed)
                    .with_execs_per_hour(eph)
                    .with_mode(Mode::Guided)
                    .with_sync_interval(2)
                    .with_prefix_cache(prefix);
                (vkvm_factory(), cfg) as GroupMember
            })
            .collect();
        run_campaign_group(members)
    };
    AbCell {
        label,
        identical: run(true) == run(false),
    }
}

fn identity_cells(hours: u32, eph: u32) -> Vec<AbCell> {
    let base = |vendor, seed| {
        CampaignConfig::necofuzz(vendor, hours, seed)
            .with_execs_per_hour(eph)
            .with_mode(Mode::Guided)
    };
    vec![
        ab_solo("vkvm/intel/guided", vkvm_factory, base(CpuVendor::Intel, 1)),
        ab_solo(
            "vxen/amd/structured",
            vxen_factory,
            base(CpuVendor::Amd, 2).with_strategy(MutationStrategy::Structured),
        ),
        ab_group("vkvm/intel/synced-x2", hours, eph),
    ]
}

fn write_json(path: &str, cells: &[ShareCell], budget: &[BudgetCell], ab: &[AbCell]) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"share\": {:.2}, \"execs\": {}, \"units_total\": {}, \
                 \"units_executed\": {}, \"units_skipped\": {}, \"model_speedup\": {:.2}, \
                 \"hits\": {}, \"misses\": {}, \"captures\": {}, \"evictions\": {}}}",
                c.share,
                c.execs,
                c.units_total,
                c.units_executed(),
                c.units_skipped,
                c.model_speedup(),
                c.hits,
                c.misses,
                c.captures,
                c.evictions,
            )
        })
        .collect();
    let budget_rows: Vec<String> = budget
        .iter()
        .map(|c| {
            format!(
                "    {{\"store\": \"{}\", \"budget\": {}, \"share\": {:.2}, \"execs\": {}, \
                 \"units_total\": {}, \"units_executed\": {}, \"units_skipped\": {}, \
                 \"model_speedup\": {:.2}, \"hits\": {}, \"misses\": {}, \"captures\": {}, \
                 \"evictions\": {}, \"bytes_resident\": {}, \"nodes_resident\": {}, \
                 \"dedup_ratio\": {:.2}, \"max_hit_depth\": {}}}",
                c.store,
                c.budget,
                c.share,
                c.execs,
                c.units_total,
                c.units_executed(),
                c.units_skipped,
                c.model_speedup(),
                c.hits,
                c.misses,
                c.captures,
                c.evictions,
                c.bytes_resident,
                c.nodes_resident,
                c.dedup_ratio,
                c.max_hit_depth,
            )
        })
        .collect();
    let ab_rows: Vec<String> = ab
        .iter()
        .map(|c| {
            format!(
                "    {{\"campaign\": \"{}\", \"identical\": {}}}",
                c.label, c.identical
            )
        })
        .collect();
    let high = cells.last().expect("share grid");
    let max_dedup = budget
        .iter()
        .filter(|c| c.store == PrefixStoreMode::Cow)
        .map(|c| c.dedup_ratio)
        .fold(1.0f64, f64::max);
    let json = format!(
        "{{\n  \"bench\": \"prefix_speedup\",\n  \"version\": 2,\n  \
         \"unit\": \"model_scenario_units\",\n  \
         \"description\": \"snapshot-trie prefix cache: every scenario unit (init step or \
         runtime record) costs 1; units_skipped are restored from cached mid-scenario \
         snapshots instead of re-executed; model_speedup = units_total / units_executed. \
         budget_cells compare the content-addressed CoW store against deep-copied nodes \
         under tight byte budgets over a rotating base working set. Virtual cost model, \
         byte-reproducible; wall-clock goes to stderr.\",\n  \
         \"cells\": [\n{}\n  ],\n  \"budget_cells\": [\n{}\n  ],\n  \
         \"identity\": [\n{}\n  ],\n  \
         \"summary\": {{\"high_share_speedup\": {:.2}, \"monotone\": {}, \
         \"cow_beats_deep_at_min_budget\": {}, \"max_cow_dedup_ratio\": {:.2}, \
         \"results_identical\": {}}}\n}}\n",
        rows.join(",\n"),
        budget_rows.join(",\n"),
        ab_rows.join(",\n"),
        high.model_speedup(),
        cells
            .windows(2)
            .all(|w| w[1].model_speedup() > w[0].model_speedup()),
        cow_beats_deep(budget),
        max_dedup,
        ab.iter().all(|c| c.identical),
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: prefix_speedup [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_prefix.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    let (execs, budget_execs, hours, eph) = if smoke {
        (80u32, 64u32, 3, 60)
    } else {
        (400u32, 240u32, 6, 120)
    };

    let cells: Vec<ShareCell> = SHARES.iter().map(|&s| share_cell(s, execs)).collect();
    let bcells = budget_cells(budget_execs);
    let ab = identity_cells(hours, eph);

    hr("Prefix cache: scenario units skipped vs prefix share (model cost)");
    println!(
        "{:<7} {:>6} {:>12} {:>14} {:>14} {:>9} {:>7} {:>8}",
        "share",
        "execs",
        "units_total",
        "units_executed",
        "units_skipped",
        "speedup",
        "hits",
        "misses"
    );
    for c in &cells {
        println!(
            "{:<7.2} {:>6} {:>12} {:>14} {:>14} {:>8.2}x {:>7} {:>8}",
            c.share,
            c.execs,
            c.units_total,
            c.units_executed(),
            c.units_skipped,
            c.model_speedup(),
            c.hits,
            c.misses
        );
    }
    println!();
    hr("Snapshot store under byte budgets: CoW vs deep copy (model cost)");
    println!(
        "{:<6} {:>9} {:<6} {:>6} {:>9} {:>6} {:>10} {:>6} {:>6} {:>10}",
        "store",
        "budget",
        "share",
        "execs",
        "speedup",
        "hits",
        "evictions",
        "nodes",
        "dedup",
        "hit_depth"
    );
    for c in &bcells {
        println!(
            "{:<6} {:>9} {:<6.2} {:>6} {:>8.2}x {:>6} {:>10} {:>6} {:>6.2} {:>10}",
            c.store.name(),
            c.budget,
            c.share,
            c.execs,
            c.model_speedup(),
            c.hits,
            c.evictions,
            c.nodes_resident,
            c.dedup_ratio,
            c.max_hit_depth
        );
    }
    println!();
    for c in &ab {
        println!("identical {:<22} {}", c.label, c.identical);
    }

    write_json(&out, &cells, &bcells, &ab);
    println!("\nwrote {out}");

    let broken: Vec<&str> = ab
        .iter()
        .filter(|c| !c.identical)
        .map(|c| c.label)
        .collect();
    if !broken.is_empty() {
        eprintln!("FAIL: prefix-cached campaigns diverged from full replay on {broken:?}");
        std::process::exit(1);
    }
    if smoke {
        let mut failures = Vec::new();
        if !cells
            .windows(2)
            .all(|w| w[1].model_speedup() > w[0].model_speedup())
        {
            failures.push("model speedup is not monotone in the prefix share".to_string());
        }
        let high = cells.last().expect("share grid");
        if high.model_speedup() < 2.0 {
            failures.push(format!(
                "high-share model speedup {:.2}x below the 2x gate",
                high.model_speedup()
            ));
        }
        if cells.iter().any(|c| c.hits == 0) {
            failures.push("a share cell never hit the prefix cache".to_string());
        }
        for c in bcells
            .iter()
            .filter(|c| c.store == PrefixStoreMode::Cow && c.dedup_ratio <= 1.0)
        {
            failures.push(format!(
                "cow cell (budget {}, share {:.2}) dedup ratio {:.2} is not > 1.0",
                c.budget, c.share, c.dedup_ratio
            ));
        }
        if !cow_beats_deep(&bcells) {
            failures.push(format!(
                "cow store does not strictly beat deep copies at the {} B budget",
                BUDGETS[0]
            ));
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!(
            "smoke OK: monotone model speedup, >=2x at high share, \
             cow dedups and beats deep at min budget, A/B identical"
        );
    }
}
