//! Throughput: execs/sec of the snapshot persistent-execution engine
//! vs the original full-rebuild path, across the backend × vendor grid.
//!
//! Two workloads per cell, fanned out through the orchestrator's
//! worker pool (both engines are timed inside the same task, on the
//! same thread, so pool scheduling cannot skew the ratio):
//!
//! - **config-churn** — the hot path this engine exists for: every
//!   execution flips the vCPU configuration (the configurator's
//!   behavior under fuzzing), so the rebuild engine pays a full
//!   hypervisor-factory boot per exec while the snapshot engine
//!   restores a cached booted image.
//! - **campaign** — an end-to-end `run_campaign` with all components
//!   on; the shared per-iteration work (validator, harness, silicon)
//!   dilutes the ratio, and the two engines' `CampaignResult`s are
//!   asserted bit-identical.
//!
//! Results are written to `BENCH_throughput.json` (schema in
//! README.md). Flags: `--jobs N` / `NF_JOBS` (pool width),
//! `--out PATH` (default `BENCH_throughput.json`), `--smoke` (tiny
//! budget; exit 1 unless snapshot ≥ rebuild on every churn cell — the
//! CI gate).

use std::time::Instant;

use necofuzz::campaign::{run_campaign, CampaignConfig};
use necofuzz::orchestrator::Task;
use necofuzz::{ComponentMask, EngineMode, ExecutionEngine};
use nf_bench::{executor, hr, vkvm_factory, vvbox_factory, vxen_factory, Factory};
use nf_fuzz::Mode;
use nf_hv::HvConfig;
use nf_silicon::GuestInstr;
use nf_vmx::VmxCapabilities;
use nf_x86::{CpuFeature, CpuVendor, FeatureSet};

/// One grid cell's measurements for one workload.
struct CellResult {
    backend: &'static str,
    vendor: CpuVendor,
    workload: &'static str,
    rebuild_eps: f64,
    snapshot_eps: f64,
    /// Campaign workload only: engines produced equal results.
    identical: Option<bool>,
}

impl CellResult {
    fn speedup(&self) -> f64 {
        self.snapshot_eps / self.rebuild_eps
    }
}

/// The alternating configuration ring of the churn workload: feature
/// flips (capability-changing) and nested flips (capability-neutral),
/// the two kinds of churn the configurator produces.
fn churn_configs(vendor: CpuVendor) -> Vec<HvConfig> {
    let toggles: [&[CpuFeature]; 4] = match vendor {
        CpuVendor::Intel => [
            &[],
            &[CpuFeature::Ept],
            &[CpuFeature::Vpid],
            &[CpuFeature::Ept, CpuFeature::Vpid],
        ],
        CpuVendor::Amd => [
            &[],
            &[CpuFeature::NestedPaging],
            &[CpuFeature::Avic],
            &[CpuFeature::NestedPaging, CpuFeature::Avic],
        ],
    };
    let mut ring = Vec::new();
    for (i, off) in toggles.iter().enumerate() {
        let mut config = HvConfig::default_for(vendor);
        for &f in *off {
            config.features.remove(f);
        }
        config.nested = i % 2 == 0;
        ring.push(config);
    }
    ring
}

/// Times `execs` churn iterations: every exec reconfigures the host
/// and runs one probe. Returns execs/sec.
fn churn_eps(factory: Factory, vendor: CpuVendor, mode: EngineMode, execs: u32) -> f64 {
    let ring = churn_configs(vendor);
    let caps = VmxCapabilities::from_features(FeatureSet::default_for(vendor).sanitized(vendor));
    let mut engine = ExecutionEngine::new(factory, HvConfig::default_for(vendor), caps, mode);
    let probe = match vendor {
        CpuVendor::Intel => GuestInstr::Rdmsr(nf_x86::Msr::VmxBasic.index()),
        CpuVendor::Amd => GuestInstr::Stgi,
    };
    let start = Instant::now();
    for i in 0..execs {
        engine.prepare(&ring[i as usize % ring.len()]);
        engine.hv_mut().l1_exec(probe);
        engine.hv_mut().take_trace();
    }
    execs as f64 / start.elapsed().as_secs_f64()
}

/// Times a full campaign (all components on, configurator churning)
/// and returns (execs/sec, result).
fn campaign_eps(
    factory: Factory,
    vendor: CpuVendor,
    mode: EngineMode,
    hours: u32,
    execs_per_hour: u32,
) -> (f64, necofuzz::CampaignResult) {
    let cfg = CampaignConfig::necofuzz(vendor, hours, 0)
        .with_execs_per_hour(execs_per_hour)
        .with_mode(Mode::Unguided)
        .with_mask(ComponentMask::ALL)
        .with_engine(mode);
    let start = Instant::now();
    let result = run_campaign(factory, &cfg);
    let eps = result.execs as f64 / start.elapsed().as_secs_f64();
    (eps, result)
}

fn vendor_key(vendor: CpuVendor) -> &'static str {
    match vendor {
        CpuVendor::Intel => "intel",
        CpuVendor::Amd => "amd",
    }
}

fn write_json(path: &str, cells: &[CellResult], churn_execs: u32, hours: u32, execs_per_hour: u32) {
    let mut rows = Vec::new();
    for c in cells {
        let identical = match c.identical {
            Some(b) => format!(", \"identical\": {b}"),
            None => String::new(),
        };
        rows.push(format!(
            "    {{\"backend\": \"{}\", \"vendor\": \"{}\", \"workload\": \"{}\", \
             \"rebuild_eps\": {:.1}, \"snapshot_eps\": {:.1}, \"speedup\": {:.2}{}}}",
            c.backend,
            vendor_key(c.vendor),
            c.workload,
            c.rebuild_eps,
            c.snapshot_eps,
            c.speedup(),
            identical
        ));
    }
    let churn: Vec<&CellResult> = cells
        .iter()
        .filter(|c| c.workload == "config_churn")
        .collect();
    let min_speedup = churn
        .iter()
        .map(|c| c.speedup())
        .fold(f64::INFINITY, f64::min);
    let all_identical = cells.iter().all(|c| c.identical.unwrap_or(true));
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"unit\": \"execs_per_sec\",\n  \
         \"workloads\": {{\n    \"config_churn\": {{\"execs\": {churn_execs}, \
         \"description\": \"every exec flips the vCPU config; rebuild pays a \
         factory boot, snapshot restores a cached image\"}},\n    \
         \"campaign\": {{\"hours\": {hours}, \"execs_per_hour\": {execs_per_hour}, \
         \"description\": \"end-to-end run_campaign, all components on\"}}\n  }},\n  \
         \"cells\": [\n{}\n  ],\n  \"summary\": {{\"config_churn_min_speedup\": {:.2}, \
         \"campaign_results_identical\": {}}}\n}}\n",
        rows.join(",\n"),
        min_speedup,
        all_identical
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: throughput [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_throughput.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            // `--jobs` is consumed by nf_bench::jobs_arg / executor().
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    let (churn_execs, hours, execs_per_hour) = if smoke {
        (2_000, 2, 100)
    } else {
        (20_000, 12, 150)
    };

    type Cell = (&'static str, fn() -> Factory, CpuVendor);
    let grid: [Cell; 5] = [
        ("vkvm", vkvm_factory, CpuVendor::Intel),
        ("vkvm", vkvm_factory, CpuVendor::Amd),
        ("vxen", vxen_factory, CpuVendor::Intel),
        ("vxen", vxen_factory, CpuVendor::Amd),
        ("vvbox", vvbox_factory, CpuVendor::Intel),
    ];

    // One task per cell; both engines are timed inside the task so the
    // ratio is scheduling-independent. Results come back in grid order.
    let tasks: Vec<Task<Vec<CellResult>>> = grid
        .iter()
        .map(|&(backend, factory, vendor)| {
            Task::new(format!("throughput/{backend}/{vendor}"), move || {
                // Warm-up (page in code, fill allocator pools), then
                // measure rebuild and snapshot back to back.
                churn_eps(factory(), vendor, EngineMode::Snapshot, churn_execs / 10);
                let churn_rebuild = churn_eps(factory(), vendor, EngineMode::Rebuild, churn_execs);
                let churn_snapshot =
                    churn_eps(factory(), vendor, EngineMode::Snapshot, churn_execs);
                let (camp_rebuild, r_rebuild) = campaign_eps(
                    factory(),
                    vendor,
                    EngineMode::Rebuild,
                    hours,
                    execs_per_hour,
                );
                let (camp_snapshot, r_snapshot) = campaign_eps(
                    factory(),
                    vendor,
                    EngineMode::Snapshot,
                    hours,
                    execs_per_hour,
                );
                vec![
                    CellResult {
                        backend,
                        vendor,
                        workload: "config_churn",
                        rebuild_eps: churn_rebuild,
                        snapshot_eps: churn_snapshot,
                        identical: None,
                    },
                    CellResult {
                        backend,
                        vendor,
                        workload: "campaign",
                        rebuild_eps: camp_rebuild,
                        snapshot_eps: camp_snapshot,
                        identical: Some(r_snapshot == r_rebuild),
                    },
                ]
            })
            .with_summary(|cells: &Vec<CellResult>| {
                format!("churn speedup {:.1}x", cells[0].speedup())
            })
        })
        .collect();

    let cells: Vec<CellResult> = executor().execute(tasks).into_iter().flatten().collect();

    hr("Throughput: snapshot engine vs full rebuild (execs/sec)");
    println!(
        "{:<7} {:<6} {:<13} {:>14} {:>14} {:>9}  identical",
        "target", "CPU", "workload", "rebuild", "snapshot", "speedup"
    );
    for c in &cells {
        println!(
            "{:<7} {:<6} {:<13} {:>14.0} {:>14.0} {:>8.1}x  {}",
            c.backend,
            vendor_key(c.vendor),
            c.workload,
            c.rebuild_eps,
            c.snapshot_eps,
            c.speedup(),
            c.identical.map(|b| b.to_string()).unwrap_or_default()
        );
    }

    write_json(&out, &cells, churn_execs, hours, execs_per_hour);
    println!("\nwrote {out}");

    let broken: Vec<&CellResult> = cells
        .iter()
        .filter(|c| c.identical == Some(false))
        .collect();
    if !broken.is_empty() {
        eprintln!("FAIL: campaign results diverged between engines");
        std::process::exit(1);
    }
    if smoke {
        // CI gate: the snapshot engine must win every churn cell.
        let losing: Vec<String> = cells
            .iter()
            .filter(|c| c.workload == "config_churn" && c.speedup() < 1.0)
            .map(|c| format!("{}/{}", c.backend, vendor_key(c.vendor)))
            .collect();
        if !losing.is_empty() {
            eprintln!("FAIL: snapshot slower than rebuild on {losing:?}");
            std::process::exit(1);
        }
        println!("smoke OK: snapshot >= rebuild on every config-churn cell");
    }
}
