//! Differential oracle: divergences found and replay overhead at a
//! fixed execution budget.
//!
//! Three deterministic arms (see [`nf_bench::diff_bench`]):
//!
//! - **seeded** — fuzzes a vkvm variant whose reflect path misreports
//!   HLT exits as PAUSE (silent at host level: no sanitizer fires)
//!   diffed against the `golden` bare-metal model. The oracle must
//!   detect the planted misvirtualization, and the reproducer is
//!   minimized under the signature-preserving minimizer and
//!   replay-validated.
//! - **conformance** — the same budget on clean `vkvm` + `golden`:
//!   every divergent observation must fall under the documented
//!   intentional-quirk allowlist, so reported findings stay zero.
//! - **overhead** — the same campaign with the oracle off, proving
//!   exploration is bit-identical either way and reporting the
//!   deterministic replay-cost factor.
//!
//! Everything is a pure function of the budget — fixed seeds, no wall
//! clock — so the emitted `BENCH_diff.json` is bit-reproducible and
//! `tests/diff_determinism.rs` holds it byte-for-byte. Flags: `--out
//! PATH` (default `BENCH_diff.json`), `--smoke` (tiny budget; exit 1
//! unless the seeded signature is found, its minimized reproducer
//! replays, and the conformance arm has zero false positives — the CI
//! gate), `--jobs N` (accepted for CLI uniformity; the arms share
//! state and run serially).

use nf_bench::diff_bench::{self, SEEDED_SIGNATURE};
use nf_bench::hr;

fn usage() -> ! {
    eprintln!("usage: diff_oracle [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_diff.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    // The planted HLT misreport needs an input that reaches L2 with
    // HLT exiting enabled and executes HLT there — roughly one random
    // input in a few hundred — so even the smoke budget runs enough
    // executions to make detection deterministic, not lucky.
    let (hours, execs_per_hour) = if smoke { (24, 60) } else { (24, 120) };

    let report = diff_bench::run(hours, execs_per_hour);

    hr("Differential oracle: divergences found + replay overhead (equal budget)");
    println!(
        "budget: {hours}h x {execs_per_hour} execs/h = {} generation execs per arm",
        u64::from(hours) * u64::from(execs_per_hour)
    );

    println!("\nseeded arm ({}+golden):", necofuzz::SEEDED_HLT_BACKEND);
    for f in &report.seeded_finds {
        println!(
            "  [divergence] {} at exec {}: {}",
            f.bug_id, f.exec, f.message
        );
    }
    println!(
        "  planted bug found: {} (sanitizer findings of it: 0 — host stays healthy)",
        report.seeded_found
    );
    println!(
        "  minimized reproducer: {} -> {} non-zero bytes, replay-validated: {}",
        report.minimized_before, report.minimized_after, report.replay_validated
    );

    let c = &report.conformance;
    println!(
        "\nconformance arm (vkvm+golden): {} execs compared, {} non-allowlisted \
         divergent observations, {} allowed as intentional quirks, {} crash-skipped \
         -> {} findings",
        c.execs_compared, c.divergences, c.allowed, c.crash_skipped, report.conformance_findings
    );

    println!(
        "\noverhead: baseline {} execs, differential {} primary + {} replay execs \
         = {:.2}x cost, exploration unchanged: {}",
        report.baseline_execs,
        report.primary_execs,
        report.diff_execs,
        report.overhead_factor,
        report.exploration_unchanged
    );

    std::fs::write(&out, &report.json).expect("write bench output");
    println!("\nwrote {out}");

    if smoke {
        // CI gate: the oracle must catch what the sanitizers cannot,
        // with a replay-valid minimized reproducer, and must stay
        // silent on the conformant pair.
        let mut failures = Vec::new();
        if !report.seeded_found {
            failures.push(format!("seeded signature {SEEDED_SIGNATURE} not found"));
        }
        if !report.replay_validated {
            failures.push("minimized reproducer did not replay the seeded signature".into());
        }
        if report.conformance.divergences != 0 || report.conformance_findings != 0 {
            failures.push(format!(
                "{} non-allowlisted divergences ({} findings) on the conformant pair \
                 (false positives)",
                report.conformance.divergences, report.conformance_findings
            ));
        }
        if !report.exploration_unchanged {
            failures.push("arming the oracle changed exploration".into());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!(
            "smoke OK: seeded divergence found + minimized + replayed, \
             zero false positives on the conformant pair"
        );
    }
}
