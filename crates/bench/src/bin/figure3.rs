//! Figure 3: coverage transition over 48 virtual hours for
//! nested-virtualization-specific code — NecoFuzz vs Syzkaller, with
//! IRIS's termination coverage as the reference line; (a) Intel, (b) AMD.

use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        hr(&format!("Figure 3 — coverage over time ({vendor})"));
        let neco = necofuzz_runs(
            vkvm_factory,
            vendor,
            HOURS_LONG,
            Mode::Unguided,
            necofuzz::ComponentMask::ALL,
        );
        let syz: Vec<_> = (0..RUNS)
            .map(|seed| {
                nf_baselines::syzkaller(vkvm_factory(), vendor, HOURS_LONG, EXECS_PER_HOUR, seed)
            })
            .collect();
        let iris_cov = if vendor == CpuVendor::Intel {
            Some(nf_baselines::iris(vkvm_factory(), 0).final_coverage)
        } else {
            None
        };

        println!(
            "{:>5} {:>10} {:>10} {:>10}",
            "hour", "NecoFuzz", "Syzkaller", "IRIS"
        );
        for h in 0..HOURS_LONG as usize {
            let n_med = nf_stats::median(
                &neco
                    .iter()
                    .map(|r| r.hourly[h].coverage)
                    .collect::<Vec<_>>(),
            );
            let s_med = nf_stats::median(&syz.iter().map(|r| r.hourly[h]).collect::<Vec<_>>());
            println!(
                "{:>5} {:>10} {:>10} {:>10}",
                h + 1,
                pct(n_med),
                pct(s_med),
                iris_cov.map(pct).unwrap_or_else(|| "-".into())
            );
        }
    }
}
