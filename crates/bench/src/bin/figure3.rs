//! Figure 3: coverage transition over 48 virtual hours for
//! nested-virtualization-specific code — NecoFuzz vs Syzkaller, with
//! IRIS's termination coverage as the reference line; (a) Intel, (b) AMD.

use necofuzz::orchestrator::Task;
use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        hr(&format!("Figure 3 — coverage over time ({vendor})"));
        let neco = necofuzz_runs(
            vkvm_factory,
            vendor,
            HOURS_LONG,
            Mode::Unguided,
            necofuzz::ComponentMask::ALL,
        );
        // The syzkaller runs ride the same worker pool.
        let syz = executor().execute(
            (0..RUNS)
                .map(|seed| {
                    Task::new(format!("syzkaller/{vendor}/seed{seed}"), move || {
                        nf_baselines::syzkaller(
                            vkvm_factory(),
                            vendor,
                            HOURS_LONG,
                            EXECS_PER_HOUR,
                            seed,
                        )
                    })
                    .with_summary(|r| format!("cov {:.1}%", r.final_coverage * 100.0))
                })
                .collect(),
        );
        let iris_cov = if vendor == CpuVendor::Intel {
            Some(nf_baselines::iris(vkvm_factory(), 0).final_coverage)
        } else {
            None
        };

        println!(
            "{:>5} {:>10} {:>10} {:>10}",
            "hour", "NecoFuzz", "Syzkaller", "IRIS"
        );
        for h in 0..HOURS_LONG as usize {
            let n_med = nf_stats::median(
                &neco
                    .iter()
                    .map(|r| r.hourly[h].coverage)
                    .collect::<Vec<_>>(),
            );
            let s_med = nf_stats::median(&syz.iter().map(|r| r.hourly[h]).collect::<Vec<_>>());
            println!(
                "{:>5} {:>10} {:>10} {:>10}",
                h + 1,
                pct(n_med),
                pct(s_med),
                iris_cov.map(pct).unwrap_or_else(|| "-".into())
            );
        }
    }
}
