//! Table 2: KVM code coverage for nested-virtualization-specific code.
//!
//! NecoFuzz vs Syzkaller (median of 5 × 48 virtual hours), IRIS (at
//! termination), Selftests and KVM-unit-tests (single run), on Intel and
//! AMD, with the `A∩B` / `A−B` set-algebra rows, plus the Klees-style
//! statistics (Mann-Whitney U, Cohen's d).

use necofuzz::orchestrator::Task;
use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
        hr(&format!("Table 2 — KVM nested coverage ({vendor})"));
        let neco = necofuzz_runs(
            vkvm_factory,
            vendor,
            HOURS_LONG,
            Mode::Unguided,
            necofuzz::ComponentMask::ALL,
        );
        // The baselines join the same worker pool as one task batch:
        // RUNS syzkaller campaigns, then the two deterministic suites.
        let mut baseline_tasks: Vec<Task<nf_baselines::BaselineResult>> = (0..RUNS)
            .map(|seed| {
                Task::new(format!("syzkaller/{vendor}/seed{seed}"), move || {
                    nf_baselines::syzkaller(
                        vkvm_factory(),
                        vendor,
                        HOURS_LONG,
                        EXECS_PER_HOUR,
                        seed,
                    )
                })
                .with_summary(|r| format!("cov {:.1}%", r.final_coverage * 100.0))
            })
            .collect();
        baseline_tasks.push(Task::new(format!("selftests/{vendor}"), move || {
            nf_baselines::selftests(vkvm_factory(), vendor)
        }));
        baseline_tasks.push(Task::new(format!("kvm-unit-tests/{vendor}"), move || {
            nf_baselines::kvm_unit_tests(vkvm_factory(), vendor)
        }));
        let mut baselines = executor().execute(baseline_tasks);
        let kut = baselines.pop().expect("kvm-unit-tests result");
        let selft = baselines.pop().expect("selftests result");
        let syz = baselines;

        let neco_med = median_run(&neco);
        let syz_cov: Vec<f64> = syz.iter().map(|r| r.final_coverage).collect();
        let syz_med_idx = {
            let med = nf_stats::median(&syz_cov);
            (0..syz.len())
                .min_by(|&a, &b| {
                    (syz_cov[a] - med)
                        .abs()
                        .partial_cmp(&(syz_cov[b] - med).abs())
                        .expect("no NaN")
                })
                .expect("non-empty")
        };
        let syz_med = &syz[syz_med_idx];

        let map = &neco_med.map;
        let file = neco_med.file;
        let total = map.file_lines(file);

        println!("{:<28} {:>7} {:>7}", "row", "cov%", "#line");
        println!("{:<28} {:>7} {:>7}", "Total", "100%", total);
        let row = |name: &str, lines: &nf_coverage::LineSet| {
            println!(
                "{:<28} {:>7} {:>7}",
                name,
                pct(lines.count_in(map, file) as f64 / total as f64),
                lines.count_in(map, file)
            );
        };
        row("NecoFuzz", &neco_med.lines);
        row("Syzkaller", &syz_med.lines);
        row("Syzkaller-NecoFuzz", &syz_med.lines.minus(&neco_med.lines));
        row("NecoFuzz-Syzkaller", &neco_med.lines.minus(&syz_med.lines));
        row(
            "NecoFuzz∩Syzkaller",
            &neco_med.lines.intersect(&syz_med.lines),
        );
        if vendor == CpuVendor::Intel {
            let iris = nf_baselines::iris(vkvm_factory(), 0);
            row("IRIS", &iris.lines);
        } else {
            println!("{:<28} {:>7} {:>7}", "IRIS", "-", "-");
        }
        row("Selftests", &selft.lines);
        row("Selftests-NecoFuzz", &selft.lines.minus(&neco_med.lines));
        row("NecoFuzz-Selftests", &neco_med.lines.minus(&selft.lines));
        row(
            "NecoFuzz∩Selftests",
            &neco_med.lines.intersect(&selft.lines),
        );
        row("KVM-unit-tests", &kut.lines);

        // Klees-et-al. statistics.
        let neco_cov: Vec<f64> = neco.iter().map(|r| r.final_coverage).collect();
        let (lo, hi) = nf_stats::median_ci(&neco_cov);
        let (u, p) = nf_stats::mann_whitney_u(&neco_cov, &syz_cov);
        let d = nf_stats::cohens_d(&neco_cov, &syz_cov);
        println!(
            "\nNecoFuzz median {} (CI {}..{}), Syzkaller median {}",
            pct(nf_stats::median(&neco_cov)),
            pct(lo),
            pct(hi),
            pct(nf_stats::median(&syz_cov)),
        );
        println!(
            "improvement {:.1}x, Mann-Whitney U={u:.1} p={p:.4}, Cohen's d={d:.2}",
            nf_stats::median(&neco_cov) / nf_stats::median(&syz_cov).max(1e-9),
        );
    }
}
