//! Sync speedup: time-to-coverage-level of corpus-synced worker fleets
//! vs unsynced ones, at equal total execution budget.
//!
//! The paper runs its grids as fleets of independent campaigns; the
//! shared-corpus runtime lets a fleet behave like one AFL++
//! main/secondary group. This bench quantifies the payoff of the two
//! sync protocols:
//!
//! - the **baseline** is the product configuration — one unguided
//!   worker spending the whole budget; its final coverage is the
//!   *target level*;
//! - each **cell** runs `n` workers (`n` ∈ 1/2/4/8/16/32/64, unguided,
//!   seeds `0..n`) splitting the same total generation budget
//!   (`fleet_layout` slices it into whole virtual hours), and records
//!   the total executions until **every** worker's own coverage
//!   reaches the target level — a fleet is only as reproducible as its
//!   weakest member — plus the worst member's coverage at budget
//!   exhaustion. Cells come in three variants: **unsynced**,
//!   **lockstep** (corpus deltas exchanged all-to-all at every hourly
//!   barrier, adopted entries replayed), and **async** (watermark
//!   gossip over the tree topology: sharded deltas published on
//!   novelty, absorbed at iteration boundaries without replay).
//!
//! Unsynced fleets cannot reach the level: each member is capped by
//! its own `1/n` budget. Synced fleets converge every member to the
//! fleet union, crossing the level while the single-worker baseline
//! is still crawling along its plateau. Lockstep pays for that with
//! O(n²) whole-map merges and adoption replays per epoch — visible in
//! the `total_execs` and `words_scanned` columns — while async pays
//! O(n) segment-sharded merges spread over the run, which is what
//! keeps the 64-worker cell ahead of lockstep's 8-worker one.
//!
//! The whole pipeline lives in [`nf_bench::sync_bench`] (fleets run on
//! the product sync path, the loop behind `necofuzz --sync-interval`),
//! so the bench measures the shipped protocol and
//! `tests/hotpath_equivalence.rs` can regenerate `BENCH_sync.json` and
//! hold it byte-for-byte. Everything is deterministic (fixed seeds,
//! worker-id-ordered merges, deterministic gossip schedule), so the
//! emitted file is bit-reproducible. Flags: `--out PATH` (default
//! `BENCH_sync.json`), `--smoke` (tiny budget over the 1/2/4/8 sizes
//! plus an async 8-worker cell; exit 1 unless every lockstep cell
//! covers at least as much as its unsynced twin at equal budget, some
//! synced multi-worker fleet reaches the level, and async is no
//! slower than lockstep at ≥ 8 workers — the CI gate), `--jobs N`
//! (accepted for CLI uniformity; cells run serially because each is
//! itself a fleet).

use nf_bench::hr;
use nf_bench::sync_bench::{self, SyncReport, SMOKE_FLEET_SIZES};
use nf_fuzz::SyncMode;

fn usage() -> ! {
    eprintln!("usage: sync_speedup [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn mode_desc(cell: &sync_bench::SyncCell) -> &'static str {
    if !cell.synced {
        return "-";
    }
    match cell.mode {
        SyncMode::Lockstep => "lockstep",
        SyncMode::Async => "async",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_sync.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    // The smoke budget must give the largest fleet at least two hours
    // per member — lockstep exchanges happen strictly *between* hours,
    // so an 8-worker cell under 16 total hours would never sync and
    // the CI gate's n=8 comparison would be vacuously true. 24 virtual
    // hours at half the full exec rate keeps every cell syncing while
    // the whole gate still finishes in seconds.
    let (hours, execs_per_hour) = if smoke { (24, 60) } else { (24, 120) };

    let report: SyncReport = if smoke {
        sync_bench::run_smoke(hours, execs_per_hour)
    } else {
        sync_bench::run(hours, execs_per_hour)
    };

    hr("Sync speedup: corpus-synced fleets vs unsynced (equal total budget)");
    println!(
        "baseline: 1 unguided worker, {hours}h x {execs_per_hour} execs/h = {} execs, \
         coverage {:.1}% (the target level)",
        report.budget,
        report.target * 100.0
    );
    println!(
        "\n{:<8} {:<9} {:>16} {:>10} {:>11} {:>10} {:>12} {:>13}",
        "workers",
        "sync",
        "execs_to_target",
        "min_cov",
        "union_cov",
        "adoptions",
        "total_execs",
        "words_scanned"
    );
    for cell in &report.cells {
        println!(
            "{:<8} {:<9} {:>16} {:>9.1}% {:>10.1}% {:>10} {:>12} {:>13}",
            cell.workers,
            mode_desc(cell),
            cell.execs_to_target
                .map_or("-".to_string(), |e| e.to_string()),
            cell.final_min * 100.0,
            cell.final_union * 100.0,
            cell.adoptions,
            cell.total_execs,
            cell.sync.words_scanned
        );
    }

    std::fs::write(&out, &report.json).expect("write bench output");
    println!("\nwrote {out}");

    if smoke {
        // CI gate: at equal total budget, syncing must never cost the
        // fleet coverage, some synced multi-worker fleet must reach
        // the baseline level before exhausting the budget, and from 8
        // workers up async must reach it in no more executions than
        // lockstep.
        let cells = &report.cells;
        let mut failures = Vec::new();
        for n in SMOKE_FLEET_SIZES {
            let synced = cells
                .iter()
                .find(|c| c.workers == n && c.synced && c.mode == SyncMode::Lockstep)
                .unwrap();
            let unsynced = cells.iter().find(|c| c.workers == n && !c.synced).unwrap();
            if synced.final_min < unsynced.final_min {
                failures.push(format!(
                    "{n} workers: synced min {:.3} < unsynced min {:.3}",
                    synced.final_min, unsynced.final_min
                ));
            }
        }
        if !cells
            .iter()
            .any(|c| c.synced && c.workers > 1 && c.execs_to_target.is_some())
        {
            failures.push("no synced multi-worker fleet reached the baseline level".into());
        }
        for cell in cells.iter().filter(|c| c.mode == SyncMode::Async) {
            let lockstep = cells
                .iter()
                .find(|c| c.workers == cell.workers && c.synced && c.mode == SyncMode::Lockstep)
                .unwrap();
            match (cell.execs_to_target, lockstep.execs_to_target) {
                (Some(a), Some(l)) if a <= l => {}
                (Some(_), None) => {}
                (a, l) => failures.push(format!(
                    "{} workers: async execs-to-target {a:?} not <= lockstep {l:?}",
                    cell.workers
                )),
            }
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!(
            "smoke OK: synced >= unsynced on every fleet size, target level reached, \
             async <= lockstep at 8 workers"
        );
    }
}
