//! Sync speedup: time-to-coverage-level of corpus-synced worker fleets
//! vs unsynced ones, at equal total execution budget.
//!
//! The paper runs its grids as fleets of independent campaigns; the
//! shared-corpus runtime lets a fleet behave like one AFL++
//! main/secondary group: every sync epoch, workers exchange their
//! novel corpus entries and *replay* adopted ones, importing sibling
//! discoveries into their own coverage. This bench quantifies the
//! payoff:
//!
//! - the **baseline** is the product configuration — one unguided
//!   worker spending the whole budget; its final coverage is the
//!   *target level*;
//! - each **cell** runs `n` workers (`n` ∈ 1/2/4/8, unguided, seeds
//!   `0..n`) at budget `total/n` generation execs each, synced (corpus
//!   deltas exchanged every virtual hour through a `SharedCorpus`) or
//!   unsynced, and records the total executions until **every**
//!   worker's own coverage reaches the target level — a fleet is only
//!   as reproducible as its weakest member — plus the worst member's
//!   coverage at budget exhaustion.
//!
//! Unsynced fleets cannot reach the level: each member is capped by
//! its own `1/n` budget. Synced fleets converge every member to the
//! fleet union, crossing the level while the single-worker baseline
//! is still crawling along its plateau — i.e. in measurably fewer
//! total executions.
//!
//! Fleets run on the product sync path
//! ([`run_campaign_group_observed`], the loop behind `necofuzz
//! --sync-interval`), so the bench measures the shipped protocol, not
//! a re-implementation. Adoption replays are real executions on top of
//! the generation budget: `execs_to_target` counts them, and each
//! cell's `total_execs` reports its actual cost so the
//! equal-generation-budget coverage comparison can be read honestly.
//!
//! Everything is deterministic (fixed seeds, worker-id-ordered
//! merges), so the emitted `BENCH_sync.json` is bit-reproducible.
//! Flags: `--out PATH` (default `BENCH_sync.json`), `--smoke` (tiny
//! budget; exit 1 unless every synced cell covers at least as much as
//! its unsynced twin at equal budget and some synced multi-worker
//! fleet reaches the level — the CI gate), `--jobs N` (accepted for
//! CLI uniformity; cells run serially because each is itself a fleet).

use necofuzz::campaign::{run_campaign_group_observed, Campaign, CampaignConfig, GroupMember};
use nf_bench::{hr, vkvm_factory};
use nf_coverage::{CovMap, FileId, LineSet};
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

/// Fleet sizes measured — the single source for the main loop, the
/// JSON summary, and the smoke gate, so adding a size cannot silently
/// escape the CI comparison.
const FLEET_SIZES: [u32; 4] = [1, 2, 4, 8];

/// One fleet measurement.
struct CellResult {
    workers: u32,
    synced: bool,
    /// Total executions (across workers, replays included) when every
    /// member's own coverage first reached the target level; `None` if
    /// the budget ran out first.
    execs_to_target: Option<u64>,
    /// Worst member's own coverage at budget exhaustion.
    final_min: f64,
    /// Union coverage of the fleet at budget exhaustion.
    final_union: f64,
    /// Corpus entries adopted (and replayed) from siblings.
    adoptions: u64,
    /// Actual executions at budget exhaustion: the generation budget
    /// plus adoption replays. Synced cells run more total executions
    /// than their unsynced twins — the JSON reports this so coverage
    /// comparisons can be read against each cell's real cost.
    total_execs: u64,
}

/// Runs an `n`-worker unguided fleet at `hours_each` hours per worker,
/// measuring when every member reaches `target` coverage on its own.
///
/// The fleet runs on the product sync path —
/// [`run_campaign_group_observed`], the same loop `necofuzz
/// --sync-interval` ships — with the hourly observer doing the
/// time-to-coverage bookkeeping, so the bench measures exactly the
/// protocol users get.
fn run_fleet(
    n: u32,
    hours_each: u32,
    execs_per_hour: u32,
    synced: bool,
    target: f64,
    map: &CovMap,
    file: FileId,
) -> CellResult {
    let members: Vec<GroupMember> = (0..n)
        .map(|worker| {
            let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours_each, worker as u64)
                .with_execs_per_hour(execs_per_hour)
                .with_mode(Mode::Unguided)
                .with_sync_interval(u32::from(synced));
            (vkvm_factory(), cfg)
        })
        .collect();
    let total_lines = map.file_lines(file) as f64;

    let mut execs_to_target = None;
    let mut final_min = 0.0;
    let mut final_union = 0.0;
    let results = run_campaign_group_observed(members, |members| {
        final_min = members
            .iter()
            .map(Campaign::coverage_fraction)
            .fold(f64::INFINITY, f64::min);
        let mut union = LineSet::for_map(map);
        for member in members {
            union.union_with(member.lines());
        }
        final_union = union.count_in(map, file) as f64 / total_lines;
        if execs_to_target.is_none() && final_min >= target {
            execs_to_target = Some(members.iter().map(Campaign::execs).sum());
        }
    });
    CellResult {
        workers: n,
        synced,
        execs_to_target,
        final_min,
        final_union,
        adoptions: results.iter().map(|r| r.adopted).sum(),
        total_execs: results.iter().map(|r| r.execs).sum(),
    }
}

fn write_json(
    path: &str,
    target: f64,
    budget: u64,
    baseline_hours: u32,
    execs_per_hour: u32,
    cells: &[CellResult],
) {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let reached = match c.execs_to_target {
                Some(execs) => format!("\"execs_to_target\": {execs}, \"reached\": true"),
                None => "\"execs_to_target\": null, \"reached\": false".to_string(),
            };
            format!(
                "    {{\"workers\": {}, \"synced\": {}, {reached}, \
                 \"final_min_coverage\": {:.4}, \"final_union_coverage\": {:.4}, \
                 \"adoptions\": {}, \"total_execs\": {}}}",
                c.workers, c.synced, c.final_min, c.final_union, c.adoptions, c.total_execs
            )
        })
        .collect();
    let synced_beats_unsynced = FLEET_SIZES.iter().all(|&n| {
        let synced = cells.iter().find(|c| c.workers == n && c.synced);
        let unsynced = cells.iter().find(|c| c.workers == n && !c.synced);
        match (synced, unsynced) {
            (Some(s), Some(u)) => s.final_min >= u.final_min,
            _ => true,
        }
    });
    let best_multi = cells
        .iter()
        .filter(|c| c.synced && c.workers > 1)
        .filter_map(|c| c.execs_to_target)
        .min();
    let speedup = best_multi.map(|e| budget as f64 / e as f64).unwrap_or(0.0);
    let json = format!(
        "{{\n  \"bench\": \"sync_speedup\",\n  \"unit\": \"total_execs\",\n  \
         \"metric\": \"total executions until every fleet member's own coverage \
         reaches the baseline level\",\n  \
         \"baseline\": {{\"mode\": \"unguided\", \"workers\": 1, \"hours\": {baseline_hours}, \
         \"execs_per_hour\": {execs_per_hour}, \"budget_execs\": {budget}, \
         \"target_coverage\": {target:.4}}},\n  \
         \"cells\": [\n{}\n  ],\n  \"summary\": {{\
         \"synced_beats_unsynced_at_equal_budget\": {synced_beats_unsynced}, \
         \"best_synced_multi_execs_to_target\": {}, \
         \"speedup_vs_baseline_budget\": {speedup:.2}}}\n}}\n",
        rows.join(",\n"),
        best_multi.map_or("null".to_string(), |e| e.to_string()),
    );
    std::fs::write(path, json).expect("write bench output");
}

fn usage() -> ! {
    eprintln!("usage: sync_speedup [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_sync.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    // The smoke budget must give the largest fleet at least two hours
    // per member — exchanges happen strictly *between* hours, so an
    // 8-worker cell under 16 total hours would never sync and the CI
    // gate's n=8 comparison would be vacuously true. 24 virtual hours
    // at half the full exec rate keeps every cell syncing while the
    // whole gate still finishes in seconds.
    let (hours, execs_per_hour) = if smoke { (24, 60) } else { (24, 120) };
    let budget = u64::from(hours) * u64::from(execs_per_hour);

    // Baseline: the product configuration (one unguided worker) at the
    // full budget; its endpoint is the level every fleet must reach.
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, 0)
        .with_execs_per_hour(execs_per_hour)
        .with_mode(Mode::Unguided);
    let mut baseline = Campaign::new(vkvm_factory(), &cfg);
    baseline.run_hours(hours);
    let target = baseline.coverage_fraction();
    let (map, file) = baseline.coverage_geometry();

    hr("Sync speedup: corpus-synced fleets vs unsynced (equal total budget)");
    println!(
        "baseline: 1 unguided worker, {hours}h x {execs_per_hour} execs/h = {budget} execs, \
         coverage {:.1}% (the target level)",
        target * 100.0
    );
    println!(
        "\n{:<8} {:<7} {:>16} {:>14} {:>14} {:>10} {:>12}",
        "workers", "synced", "execs_to_target", "min_cov", "union_cov", "adoptions", "total_execs"
    );

    let mut cells = Vec::new();
    for n in FLEET_SIZES {
        let hours_each = hours / n;
        for synced in [false, true] {
            let cell = run_fleet(n, hours_each, execs_per_hour, synced, target, &map, file);
            println!(
                "{:<8} {:<7} {:>16} {:>13.1}% {:>13.1}% {:>10} {:>12}",
                cell.workers,
                cell.synced,
                cell.execs_to_target
                    .map_or("-".to_string(), |e| e.to_string()),
                cell.final_min * 100.0,
                cell.final_union * 100.0,
                cell.adoptions,
                cell.total_execs
            );
            cells.push(cell);
        }
    }

    write_json(&out, target, budget, hours, execs_per_hour, &cells);
    println!("\nwrote {out}");

    if smoke {
        // CI gate: at equal total budget, syncing must never cost the
        // fleet coverage, and some synced multi-worker fleet must
        // reach the baseline level before exhausting the budget.
        let mut failures = Vec::new();
        for n in FLEET_SIZES {
            let synced = cells.iter().find(|c| c.workers == n && c.synced).unwrap();
            let unsynced = cells.iter().find(|c| c.workers == n && !c.synced).unwrap();
            if synced.final_min < unsynced.final_min {
                failures.push(format!(
                    "{n} workers: synced min {:.3} < unsynced min {:.3}",
                    synced.final_min, unsynced.final_min
                ));
            }
        }
        if !cells
            .iter()
            .any(|c| c.synced && c.workers > 1 && c.execs_to_target.is_some())
        {
            failures.push("no synced multi-worker fleet reached the baseline level".into());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!("smoke OK: synced >= unsynced on every fleet size, target level reached");
    }
}
