//! Sync speedup: time-to-coverage-level of corpus-synced worker fleets
//! vs unsynced ones, at equal total execution budget.
//!
//! The paper runs its grids as fleets of independent campaigns; the
//! shared-corpus runtime lets a fleet behave like one AFL++
//! main/secondary group: every sync epoch, workers exchange their
//! novel corpus entries and *replay* adopted ones, importing sibling
//! discoveries into their own coverage. This bench quantifies the
//! payoff:
//!
//! - the **baseline** is the product configuration — one unguided
//!   worker spending the whole budget; its final coverage is the
//!   *target level*;
//! - each **cell** runs `n` workers (`n` ∈ 1/2/4/8, unguided, seeds
//!   `0..n`) at budget `total/n` generation execs each, synced (corpus
//!   deltas exchanged every virtual hour through a `SharedCorpus`) or
//!   unsynced, and records the total executions until **every**
//!   worker's own coverage reaches the target level — a fleet is only
//!   as reproducible as its weakest member — plus the worst member's
//!   coverage at budget exhaustion.
//!
//! Unsynced fleets cannot reach the level: each member is capped by
//! its own `1/n` budget. Synced fleets converge every member to the
//! fleet union, crossing the level while the single-worker baseline
//! is still crawling along its plateau — i.e. in measurably fewer
//! total executions.
//!
//! The whole pipeline lives in [`nf_bench::sync_bench`] (fleets run on
//! the product sync path, the loop behind `necofuzz --sync-interval`),
//! so the bench measures the shipped protocol and
//! `tests/hotpath_equivalence.rs` can regenerate `BENCH_sync.json` and
//! hold it byte-for-byte. Everything is deterministic (fixed seeds,
//! worker-id-ordered merges), so the emitted file is bit-reproducible.
//! Flags: `--out PATH` (default `BENCH_sync.json`), `--smoke` (tiny
//! budget; exit 1 unless every synced cell covers at least as much as
//! its unsynced twin at equal budget and some synced multi-worker
//! fleet reaches the level — the CI gate), `--jobs N` (accepted for
//! CLI uniformity; cells run serially because each is itself a fleet).

use nf_bench::hr;
use nf_bench::sync_bench::{self, FLEET_SIZES};

fn usage() -> ! {
    eprintln!("usage: sync_speedup [--smoke] [--jobs N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_sync.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                it.next().unwrap_or_else(|| usage());
            }
            j if j.starts_with("--jobs=") => {}
            _ => usage(),
        }
    }
    // The smoke budget must give the largest fleet at least two hours
    // per member — exchanges happen strictly *between* hours, so an
    // 8-worker cell under 16 total hours would never sync and the CI
    // gate's n=8 comparison would be vacuously true. 24 virtual hours
    // at half the full exec rate keeps every cell syncing while the
    // whole gate still finishes in seconds.
    let (hours, execs_per_hour) = if smoke { (24, 60) } else { (24, 120) };

    let report = sync_bench::run(hours, execs_per_hour);

    hr("Sync speedup: corpus-synced fleets vs unsynced (equal total budget)");
    println!(
        "baseline: 1 unguided worker, {hours}h x {execs_per_hour} execs/h = {} execs, \
         coverage {:.1}% (the target level)",
        report.budget,
        report.target * 100.0
    );
    println!(
        "\n{:<8} {:<7} {:>16} {:>14} {:>14} {:>10} {:>12}",
        "workers", "synced", "execs_to_target", "min_cov", "union_cov", "adoptions", "total_execs"
    );
    for cell in &report.cells {
        println!(
            "{:<8} {:<7} {:>16} {:>13.1}% {:>13.1}% {:>10} {:>12}",
            cell.workers,
            cell.synced,
            cell.execs_to_target
                .map_or("-".to_string(), |e| e.to_string()),
            cell.final_min * 100.0,
            cell.final_union * 100.0,
            cell.adoptions,
            cell.total_execs
        );
    }

    std::fs::write(&out, &report.json).expect("write bench output");
    println!("\nwrote {out}");

    if smoke {
        // CI gate: at equal total budget, syncing must never cost the
        // fleet coverage, and some synced multi-worker fleet must
        // reach the baseline level before exhausting the budget.
        let cells = &report.cells;
        let mut failures = Vec::new();
        for n in FLEET_SIZES {
            let synced = cells.iter().find(|c| c.workers == n && c.synced).unwrap();
            let unsynced = cells.iter().find(|c| c.workers == n && !c.synced).unwrap();
            if synced.final_min < unsynced.final_min {
                failures.push(format!(
                    "{n} workers: synced min {:.3} < unsynced min {:.3}",
                    synced.final_min, unsynced.final_min
                ));
            }
        }
        if !cells
            .iter()
            .any(|c| c.synced && c.workers > 1 && c.execs_to_target.is_some())
        {
            failures.push("no synced multi-worker fleet reached the baseline level".into());
        }
        if !failures.is_empty() {
            eprintln!("FAIL: {failures:?}");
            std::process::exit(1);
        }
        println!("smoke OK: synced >= unsynced on every fleet size, target level reached");
    }
}
