//! Table 5: the effect of coverage guidance in NecoFuzz.
//!
//! 48 virtual hours on KVM, Intel and AMD, guided vs unguided. The
//! paper's counter-intuitive finding: guidance does *not* help (and
//! slightly hurts), because rounding collapses coverage-guided
//! micro-variations into equivalent post-rounding states (§5.4, §5.6).

use necofuzz::orchestrator::CampaignPlan;
use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    hr("Table 5 — effect of coverage guidance (KVM, 48 h)");
    // The full 2-vendor × 2-mode × RUNS-seed grid is one plan; results
    // come back vendor-major, then mode, then seed.
    let plan = CampaignPlan::new()
        .backend(vkvm_backend())
        .vendors(&[CpuVendor::Intel, CpuVendor::Amd])
        .modes(&[Mode::Unguided, Mode::Guided])
        .seeds(0..RUNS)
        .hours(HOURS_LONG)
        .execs_per_hour(EXECS_PER_HOUR);
    let results = executor().run(&plan);
    let cell = |vendor_idx: usize, mode_idx: usize| {
        let start = (vendor_idx * 2 + mode_idx) * RUNS as usize;
        pct(median_coverage(&results[start..start + RUNS as usize]))
    };

    println!("{:<26} {:>10} {:>10}", "", "Intel", "AMD");
    for (mode_idx, name) in [(0, "w/o coverage guidance"), (1, "with coverage guidance")] {
        println!(
            "{:<26} {:>10} {:>10}",
            name,
            cell(0, mode_idx),
            cell(1, mode_idx)
        );
    }
}
