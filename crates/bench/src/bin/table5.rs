//! Table 5: the effect of coverage guidance in NecoFuzz.
//!
//! 48 virtual hours on KVM, Intel and AMD, guided vs unguided. The
//! paper's counter-intuitive finding: guidance does *not* help (and
//! slightly hurts), because rounding collapses coverage-guided
//! micro-variations into equivalent post-rounding states (§5.4, §5.6).

use nf_bench::*;
use nf_fuzz::Mode;
use nf_x86::CpuVendor;

fn main() {
    hr("Table 5 — effect of coverage guidance (KVM, 48 h)");
    println!("{:<26} {:>10} {:>10}", "", "Intel", "AMD");
    for (name, mode) in [
        ("w/o coverage guidance", Mode::Unguided),
        ("with coverage guidance", Mode::Guided),
    ] {
        let mut cells = Vec::new();
        for vendor in [CpuVendor::Intel, CpuVendor::Amd] {
            let runs = necofuzz_runs(
                vkvm_factory,
                vendor,
                HOURS_LONG,
                mode,
                necofuzz::ComponentMask::ALL,
            );
            cells.push(pct(median_coverage(&runs)));
        }
        println!("{:<26} {:>10} {:>10}", name, cells[0], cells[1]);
    }
}
