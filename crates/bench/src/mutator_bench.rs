//! The deterministic pipeline behind the `mutator_yield` bench binary:
//! structured scenario mutation vs classic havoc on the guided
//! campaign path, reported as time-to-coverage-level ratios.
//!
//! Extracted from the binary so the emitted JSON is *testable*:
//! everything here is a pure function of `(hours, execs_per_hour,
//! seeds)`, so `BENCH_mutators.json` is bit-reproducible, and
//! `tests/hotpath_equivalence.rs` regenerates it through this module
//! and compares byte-for-byte against the committed file. The binary
//! adds only CLI parsing, table printing, and the CI smoke gate.

use necofuzz::campaign::{Campaign, CampaignConfig, CampaignResult};
use nf_fuzz::{Mode, MutationStats, MutationStrategy, Operator, HAVOC_ARMS};
use nf_stats::{execs_to_level, median};
use nf_x86::CpuVendor;

use crate::vkvm_factory;

/// Seeds of the comparison (medianed; Klees et al.'s repeated runs).
pub const SEEDS: [u64; 5] = [0, 1, 2, 3, 4];

/// The ratio the CI gate demands: structured must reach the havoc
/// level in at most this fraction of the havoc budget (median).
pub const GATE_RATIO: f64 = 0.75;

/// One strategy's run on one seed: the hourly growth curve plus the
/// campaign result (operator stats, final coverage).
pub struct StrategyRun {
    /// `(execs, coverage)` at every virtual hour.
    pub curve: Vec<(u64, f64)>,
    /// The finished campaign.
    pub result: CampaignResult,
}

/// Runs one guided campaign on the product path, sampling the coverage
/// growth curve at every virtual hour.
pub fn run_strategy(strategy: MutationStrategy, seed: u64, hours: u32, eph: u32) -> StrategyRun {
    let cfg = CampaignConfig::necofuzz(CpuVendor::Intel, hours, seed)
        .with_execs_per_hour(eph)
        .with_mode(Mode::Guided)
        .with_strategy(strategy);
    let mut campaign = Campaign::new(vkvm_factory(), &cfg);
    let mut curve = Vec::with_capacity(hours as usize);
    while !campaign.is_complete() {
        campaign.run_hours(1);
        curve.push((campaign.execs(), campaign.coverage_fraction()));
    }
    StrategyRun {
        curve,
        result: campaign.into_result(),
    }
}

/// One seed's havoc-vs-structured comparison.
pub struct SeedRow {
    /// The RNG seed both strategies ran on.
    pub seed: u64,
    /// The havoc baseline's final coverage (= the target level).
    pub havoc_final: f64,
    /// The havoc baseline's execution budget.
    pub havoc_execs: u64,
    /// Executions at which structured first reached the havoc level.
    pub structured_execs_to_level: Option<u64>,
    /// Structured coverage at budget exhaustion.
    pub structured_final: f64,
}

impl SeedRow {
    /// `structured execs-to-level / havoc budget`; `None` while the
    /// level was never reached (treated as ratio 1.0+ by the gate).
    pub fn ratio(&self) -> Option<f64> {
        self.structured_execs_to_level
            .map(|e| e as f64 / self.havoc_execs as f64)
    }
}

/// Aggregated per-operator stats across the structured runs.
fn operator_table(runs: &[MutationStats]) -> Vec<(Operator, u64, u64)> {
    Operator::ALL
        .iter()
        .map(|&op| {
            let (mut generated, mut queued) = (0u64, 0u64);
            for stats in runs {
                let s = &stats.operators[op.index()];
                generated += s.generated;
                queued += s.queued;
            }
            (op, generated, queued)
        })
        .collect()
}

/// The complete bench output: per-seed rows, operator aggregates, the
/// gate verdict, and the serialized `BENCH_mutators.json` contents.
pub struct MutatorReport {
    /// Per-seed comparison rows, in seed order.
    pub rows: Vec<SeedRow>,
    /// `(operator, generated, queued)` aggregated over all seeds.
    pub ops: Vec<(Operator, u64, u64)>,
    /// Classic havoc arm executions aggregated over all seeds.
    pub havoc_arms: [u64; HAVOC_ARMS],
    /// Median of the per-seed ratios (never-reached counts as 1.0).
    pub median_ratio: f64,
    /// `median_ratio <= GATE_RATIO`.
    pub gate_pass: bool,
    /// Each structured run's mutation stats, in seed order.
    pub structured_stats: Vec<MutationStats>,
    /// The first seed's whole structured run (the smoke gate re-runs
    /// that cell once to check bit-reproducibility).
    pub first_structured: Option<StrategyRun>,
    /// The JSON document (what the binary writes to disk).
    pub json: String,
}

#[allow(clippy::too_many_arguments)]
fn build_json(
    hours: u32,
    eph: u32,
    rows: &[SeedRow],
    ops: &[(Operator, u64, u64)],
    havoc_arms: &[u64; HAVOC_ARMS],
    median_ratio: f64,
    gate_pass: bool,
) -> String {
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let reached = match r.structured_execs_to_level {
                Some(e) => format!("\"execs_to_level\": {e}, \"reached\": true"),
                None => "\"execs_to_level\": null, \"reached\": false".to_string(),
            };
            format!(
                "    {{\"seed\": {}, \"havoc_final_coverage\": {:.4}, \"havoc_execs\": {}, \
                 {reached}, \"ratio\": {}, \"structured_final_coverage\": {:.4}}}",
                r.seed,
                r.havoc_final,
                r.havoc_execs,
                r.ratio().map_or("null".to_string(), |x| format!("{x:.4}")),
                r.structured_final
            )
        })
        .collect();
    let op_json: Vec<String> = ops
        .iter()
        .map(|&(op, generated, queued)| {
            format!(
                "    {{\"operator\": \"{}\", \"generated\": {generated}, \"queued\": {queued}, \
                 \"yield\": {:.4}}}",
                op.name(),
                queued as f64 / generated.max(1) as f64
            )
        })
        .collect();
    let arms: Vec<String> = havoc_arms.iter().map(u64::to_string).collect();
    format!(
        "{{\n  \"bench\": \"mutator_yield\",\n  \"unit\": \"execs_to_level_ratio\",\n  \
         \"metric\": \"structured executions to reach the havoc baseline's final coverage, \
         as a fraction of the havoc budget (guided campaigns, medians over seeds)\",\n  \
         \"config\": {{\"target\": \"vkvm\", \"vendor\": \"intel\", \"mode\": \"guided\", \
         \"hours\": {hours}, \"execs_per_hour\": {eph}, \"seeds\": {}}},\n  \
         \"seeds\": [\n{}\n  ],\n  \"operators\": [\n{}\n  ],\n  \
         \"havoc_arm_execs\": [{}],\n  \
         \"summary\": {{\"median_ratio\": {median_ratio:.4}, \"gate_ratio\": {GATE_RATIO}, \
         \"structured_reaches_havoc_level_within_gate\": {gate_pass}}}\n}}\n",
        rows.len(),
        row_json.join(",\n"),
        op_json.join(",\n"),
        arms.join(", "),
    )
}

/// Runs the whole bench pipeline: per seed, a havoc baseline campaign
/// (its endpoint is the target level) and a structured campaign next
/// to it, then the aggregate tables and the gate verdict.
pub fn run(hours: u32, eph: u32, seeds: &[u64]) -> MutatorReport {
    let mut rows = Vec::new();
    let mut structured_stats = Vec::new();
    let mut havoc_arms = [0u64; HAVOC_ARMS];
    let mut first_structured: Option<StrategyRun> = None;
    for &seed in seeds {
        let havoc = run_strategy(MutationStrategy::Havoc, seed, hours, eph);
        let structured = run_strategy(MutationStrategy::Structured, seed, hours, eph);
        rows.push(SeedRow {
            seed,
            havoc_final: havoc.result.final_coverage,
            havoc_execs: havoc.result.execs,
            structured_execs_to_level: execs_to_level(
                &structured.curve,
                havoc.result.final_coverage,
            ),
            structured_final: structured.result.final_coverage,
        });
        for (arm, &n) in havoc.result.mutation.havoc_arms.iter().enumerate() {
            havoc_arms[arm] += n;
        }
        structured_stats.push(structured.result.mutation.clone());
        if first_structured.is_none() {
            first_structured = Some(structured);
        }
    }

    // A never-reached level counts as the full budget (ratio 1.0) so
    // the median cannot be flattered by dropping bad seeds.
    let ratios: Vec<f64> = rows.iter().map(|r| r.ratio().unwrap_or(1.0)).collect();
    let median_ratio = median(&ratios);
    let gate_pass = median_ratio <= GATE_RATIO;
    let ops = operator_table(&structured_stats);
    let json = build_json(
        hours,
        eph,
        &rows,
        &ops,
        &havoc_arms,
        median_ratio,
        gate_pass,
    );
    MutatorReport {
        rows,
        ops,
        havoc_arms,
        median_ratio,
        gate_pass,
        structured_stats,
        first_structured,
        json,
    }
}
