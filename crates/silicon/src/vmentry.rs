//! The physical CPU's VM-entry checks (Intel SDM Vol. 3 ch. 26).
//!
//! This module is the **hardware oracle** of the paper's §3.4: the ground
//! truth against which the Bochs-derived VM state validator corrects
//! itself. It implements the three check groups in architectural order —
//! VM-execution controls, host state, guest state — plus the *silent
//! rounding* quirks that documentation does not fully capture:
//!
//! - IA-32e mode guest with `CR4.PAE = 0`: the SDM demands `PAE = 1`, but
//!   the CPU silently assumes it and lets the entry proceed. KVM's
//!   literal interpretation of the bit is CVE-2023-30456.
//! - `DR7` bit 10 and `DR6`-style reserved-one patterns are forced rather
//!   than faulted when debug controls are loaded.
//! - The RTM bit of pending debug exceptions is cleared on parts without
//!   RTM instead of failing the entry.
//!
//! Checks deliberately *stop at the first failure* within each group —
//! matching hardware, which reports only a single error — because the
//! fuzzer's boundary exploration relies on which check fires first.

use nf_vmx::caps::CtrlKind;
use nf_vmx::controls::{entry as ec, exit as xc, pin, proc, proc2};
use nf_vmx::{MsrArea, Vmcs, VmcsField, VmxCapabilities};
use nf_x86::addr::{page_aligned, phys_in_width, VirtAddr};
use nf_x86::msr::{debugctl_valid, pat_valid};
use nf_x86::segment::SegmentKind;
use nf_x86::{
    ActivityState, ArchError, Cr0, Cr3, Cr4, Efer, EventInjection, Interruptibility, Msr, Pdpte,
    RFlags, SegReg,
};

/// Which class of failure a VM entry produced (SDM 26.8 / 30.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryFailure {
    /// `VMfailValid` with VM-instruction error 7: invalid control fields.
    InvalidControls(ArchError),
    /// `VMfailValid` with VM-instruction error 8: invalid host state.
    InvalidHostState(ArchError),
    /// VM-entry failure exit (reason 33): invalid guest state.
    InvalidGuestState(ArchError),
    /// VM-entry failure exit (reason 34): MSR loading failed at `index`.
    MsrLoad(u32, ArchError),
}

impl EntryFailure {
    /// The architectural rule identifier that fired.
    pub fn rule(&self) -> &'static str {
        match self {
            EntryFailure::InvalidControls(e)
            | EntryFailure::InvalidHostState(e)
            | EntryFailure::InvalidGuestState(e) => e.rule,
            EntryFailure::MsrLoad(_, e) => e.rule,
        }
    }
}

/// A silent correction the hardware applied instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjustment {
    /// The VMCS field whose *effective* value differs from the stored one.
    pub field: VmcsField,
    /// Stored value.
    pub from: u64,
    /// Effective value the CPU operates with.
    pub to: u64,
    /// Name of the quirk, e.g. `"cr4_pae_assumed"`.
    pub quirk: &'static str,
}

/// Result of a successful VM entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EntryOutcome {
    /// Silent corrections applied by the CPU.
    pub adjustments: Vec<Adjustment>,
    /// Whether the entered guest can make forward progress (`false` for
    /// the Shutdown / Wait-for-SIPI activity states, which stall the
    /// vCPU until an event that never arrives in a nested setting).
    pub runnable: bool,
}

/// Effective secondary controls: zero unless activated by the primary
/// controls (SDM 24.6.2).
fn secondary(vmcs: &Vmcs) -> u32 {
    if vmcs.read(VmcsField::CpuBasedVmExecControl) as u32 & proc::SECONDARY_CONTROLS != 0 {
        vmcs.read(VmcsField::SecondaryVmExecControl) as u32
    } else {
        0
    }
}

fn fail_ctrl(rule: &'static str, detail: String) -> EntryFailure {
    EntryFailure::InvalidControls(ArchError::new(rule, detail))
}

fn fail_host(rule: &'static str, detail: String) -> EntryFailure {
    EntryFailure::InvalidHostState(ArchError::new(rule, detail))
}

fn fail_guest(rule: &'static str, detail: String) -> EntryFailure {
    EntryFailure::InvalidGuestState(ArchError::new(rule, detail))
}

/// Checks an EPT pointer (SDM 24.6.11): memory type UC or WB, page-walk
/// length 4, reserved bits clear, address within the physical width.
pub fn eptp_valid(eptp: u64) -> bool {
    let memtype = eptp & 0x7;
    if memtype != 0 && memtype != 6 {
        return false;
    }
    if (eptp >> 3) & 0x7 != 3 {
        return false;
    }
    // Bits 11:7 reserved (bit 6 is the accessed/dirty enable).
    if eptp & 0xf80 != 0 {
        return false;
    }
    phys_in_width(eptp & !0xfffu64)
}

/// Group 1: checks on VM-execution, VM-entry, and VM-exit control fields
/// (SDM 26.2.1).
pub fn check_vm_controls(vmcs: &Vmcs, caps: &VmxCapabilities) -> Result<(), EntryFailure> {
    let pinv = vmcs.read(VmcsField::PinBasedVmExecControl) as u32;
    let procv = vmcs.read(VmcsField::CpuBasedVmExecControl) as u32;
    let proc2v = secondary(vmcs);
    let exitv = vmcs.read(VmcsField::VmExitControls) as u32;
    let entryv = vmcs.read(VmcsField::VmEntryControls) as u32;

    for (kind, value, name) in [
        (CtrlKind::PinBased, pinv, "pin-based"),
        (CtrlKind::ProcBased, procv, "proc-based"),
        (CtrlKind::Exit, exitv, "exit"),
        (CtrlKind::Entry, entryv, "entry"),
    ] {
        if !caps.control_ok(kind, value) {
            return Err(fail_ctrl(
                "ctrl.capability",
                format!("{name} controls {value:#x} violate IA32_VMX capability MSRs"),
            ));
        }
    }
    if procv & proc::SECONDARY_CONTROLS != 0 && !caps.control_ok(CtrlKind::ProcBased2, proc2v) {
        return Err(fail_ctrl(
            "ctrl.capability2",
            format!("secondary controls {proc2v:#x} violate IA32_VMX_PROCBASED_CTLS2"),
        ));
    }

    if vmcs.read(VmcsField::Cr3TargetCount) > 4 {
        return Err(fail_ctrl(
            "ctrl.cr3_target_count",
            format!(
                "CR3-target count {} exceeds 4",
                vmcs.read(VmcsField::Cr3TargetCount)
            ),
        ));
    }

    if procv & proc::USE_IO_BITMAPS != 0 {
        for f in [VmcsField::IoBitmapA, VmcsField::IoBitmapB] {
            let addr = vmcs.read(f);
            if !page_aligned(addr) || !phys_in_width(addr) {
                return Err(fail_ctrl(
                    "ctrl.io_bitmap_addr",
                    format!("{} address {addr:#x} invalid", f.name()),
                ));
            }
        }
    }
    if procv & proc::USE_MSR_BITMAPS != 0 {
        let addr = vmcs.read(VmcsField::MsrBitmap);
        if !page_aligned(addr) || !phys_in_width(addr) {
            return Err(fail_ctrl(
                "ctrl.msr_bitmap_addr",
                format!("MSR bitmap {addr:#x} invalid"),
            ));
        }
    }

    if procv & proc::USE_TPR_SHADOW != 0 {
        let apic = vmcs.read(VmcsField::VirtualApicPageAddr);
        if !page_aligned(apic) || !phys_in_width(apic) {
            return Err(fail_ctrl(
                "ctrl.vapic_addr",
                format!("virtual-APIC page {apic:#x} invalid"),
            ));
        }
        if proc2v & proc2::VIRT_INTR_DELIVERY == 0 {
            let thr = vmcs.read(VmcsField::TprThreshold) as u32;
            if thr & !0xf != 0 {
                return Err(fail_ctrl(
                    "ctrl.tpr_threshold",
                    format!("TPR threshold {thr:#x} has bits 31:4 set"),
                ));
            }
        }
    } else if proc2v & (proc2::VIRT_X2APIC | proc2::APIC_REGISTER_VIRT | proc2::VIRT_INTR_DELIVERY)
        != 0
    {
        return Err(fail_ctrl(
            "ctrl.apicv_requires_tpr_shadow",
            "APIC virtualization controls require the TPR shadow".into(),
        ));
    }

    if proc2v & proc2::ENABLE_EPT != 0 {
        let eptp = vmcs.read(VmcsField::EptPointer);
        if !eptp_valid(eptp) {
            return Err(fail_ctrl(
                "ctrl.eptp",
                format!("EPT pointer {eptp:#x} invalid"),
            ));
        }
    }
    if proc2v & proc2::UNRESTRICTED_GUEST != 0 && proc2v & proc2::ENABLE_EPT == 0 {
        return Err(fail_ctrl(
            "ctrl.ug_requires_ept",
            "unrestricted guest requires EPT".into(),
        ));
    }
    if proc2v & proc2::ENABLE_VPID != 0 && vmcs.read(VmcsField::Vpid) == 0 {
        return Err(fail_ctrl(
            "ctrl.vpid_zero",
            "VPID enabled but VPID field is 0".into(),
        ));
    }
    if proc2v & proc2::VMCS_SHADOWING != 0 {
        for f in [VmcsField::VmreadBitmap, VmcsField::VmwriteBitmap] {
            let addr = vmcs.read(f);
            if !page_aligned(addr) || !phys_in_width(addr) {
                return Err(fail_ctrl(
                    "ctrl.shadow_bitmap",
                    format!("{} address {addr:#x} invalid", f.name()),
                ));
            }
        }
    }

    if pinv & pin::POSTED_INTR != 0 {
        if proc2v & proc2::VIRT_INTR_DELIVERY == 0 || exitv & xc::ACK_INTR_ON_EXIT == 0 {
            return Err(fail_ctrl(
                "ctrl.posted_intr_deps",
                "posted interrupts require virtual-interrupt delivery and ack-on-exit".into(),
            ));
        }
        if vmcs.read(VmcsField::PostedIntrNv) & !0xff != 0 {
            return Err(fail_ctrl(
                "ctrl.posted_intr_nv",
                "posted-interrupt notification vector has bits 15:8 set".into(),
            ));
        }
        let desc = vmcs.read(VmcsField::PostedIntrDescAddr);
        if desc & 0x3f != 0 || !phys_in_width(desc) {
            return Err(fail_ctrl(
                "ctrl.posted_intr_desc",
                format!("posted-interrupt descriptor {desc:#x} invalid"),
            ));
        }
    }

    // MSR-load/store area addresses (SDM 26.2.2).
    for (count_f, addr_f) in [
        (
            VmcsField::VmExitMsrStoreCount,
            VmcsField::VmExitMsrStoreAddr,
        ),
        (VmcsField::VmExitMsrLoadCount, VmcsField::VmExitMsrLoadAddr),
        (
            VmcsField::VmEntryMsrLoadCount,
            VmcsField::VmEntryMsrLoadAddr,
        ),
    ] {
        if vmcs.read(count_f) != 0 {
            let addr = vmcs.read(addr_f);
            if addr & 0xf != 0 || !phys_in_width(addr) {
                return Err(fail_ctrl(
                    "ctrl.msr_area_addr",
                    format!("{} address {addr:#x} invalid", addr_f.name()),
                ));
            }
        }
    }

    // Event injection (SDM 26.2.1.3).
    let inj = EventInjection(vmcs.read(VmcsField::VmEntryIntrInfoField) as u32);
    if let Err(e) = inj.check() {
        return Err(EntryFailure::InvalidControls(e));
    }

    // SMM controls outside SMM (SDM 26.2.1.1, modeled: never in SMM).
    if entryv & ec::ENTRY_TO_SMM != 0 || entryv & ec::DEACT_DUAL_MONITOR != 0 {
        return Err(fail_ctrl(
            "ctrl.smm_outside_smm",
            "entry-to-SMM / deactivate-dual-monitor outside SMM".into(),
        ));
    }
    Ok(())
}

/// Group 2: checks on the host-state area (SDM 26.2.2–26.2.3).
pub fn check_host_state(vmcs: &Vmcs, caps: &VmxCapabilities) -> Result<(), EntryFailure> {
    let exitv = vmcs.read(VmcsField::VmExitControls) as u32;
    let host_cr0 = vmcs.read(VmcsField::HostCr0);
    let host_cr4 = vmcs.read(VmcsField::HostCr4);

    if !caps.cr0_ok(host_cr0, false) {
        return Err(fail_host(
            "host.cr0_fixed",
            format!("host CR0 {host_cr0:#x} violates fixed bits"),
        ));
    }
    if !caps.cr4_ok(host_cr4) {
        return Err(fail_host(
            "host.cr4_fixed",
            format!("host CR4 {host_cr4:#x} violates fixed bits"),
        ));
    }
    if let Err(e) = Cr3::new(vmcs.read(VmcsField::HostCr3)).check_width() {
        return Err(fail_host("host.cr3_width", e.detail));
    }

    let host_64 = exitv & xc::HOST_ADDR_SPACE_SIZE != 0;
    // The modeled L0 runs in IA-32e mode, where hardware rejects entries
    // that would return to a 32-bit host.
    if !host_64 {
        return Err(fail_host(
            "host.addr_space_size",
            "host address-space size must be 1 on a 64-bit host".into(),
        ));
    }
    if host_64 && host_cr4 & Cr4::PAE == 0 {
        return Err(fail_host(
            "host.cr4_pae",
            "64-bit host requires CR4.PAE".into(),
        ));
    }

    // Selector checks (SDM 26.2.3): TI and RPL zero everywhere; CS and TR
    // must not be null.
    for (f, name) in [
        (VmcsField::HostEsSelector, "ES"),
        (VmcsField::HostCsSelector, "CS"),
        (VmcsField::HostSsSelector, "SS"),
        (VmcsField::HostDsSelector, "DS"),
        (VmcsField::HostFsSelector, "FS"),
        (VmcsField::HostGsSelector, "GS"),
        (VmcsField::HostTrSelector, "TR"),
    ] {
        if vmcs.read(f) & 0x7 != 0 {
            return Err(fail_host(
                "host.selector_rpl_ti",
                format!("host {name} selector has TI/RPL bits set"),
            ));
        }
    }
    if vmcs.read(VmcsField::HostCsSelector) == 0 {
        return Err(fail_host("host.cs_null", "host CS selector is null".into()));
    }
    if vmcs.read(VmcsField::HostTrSelector) == 0 {
        return Err(fail_host("host.tr_null", "host TR selector is null".into()));
    }

    for (f, name) in [
        (VmcsField::HostFsBase, "FS base"),
        (VmcsField::HostGsBase, "GS base"),
        (VmcsField::HostTrBase, "TR base"),
        (VmcsField::HostGdtrBase, "GDTR base"),
        (VmcsField::HostIdtrBase, "IDTR base"),
        (VmcsField::HostIa32SysenterEsp, "SYSENTER_ESP"),
        (VmcsField::HostIa32SysenterEip, "SYSENTER_EIP"),
        (VmcsField::HostRip, "RIP"),
        (VmcsField::HostRsp, "RSP"),
    ] {
        if !VirtAddr(vmcs.read(f)).is_canonical() {
            return Err(fail_host(
                "host.canonical",
                format!("host {name} {:#x} non-canonical", vmcs.read(f)),
            ));
        }
    }

    if exitv & xc::LOAD_PAT != 0 && !pat_valid(vmcs.read(VmcsField::HostIa32Pat)) {
        return Err(fail_host(
            "host.pat",
            format!("host PAT {:#x} invalid", vmcs.read(VmcsField::HostIa32Pat)),
        ));
    }
    if exitv & xc::LOAD_EFER != 0 {
        let efer = Efer::new(vmcs.read(VmcsField::HostIa32Efer));
        if let Err(e) = efer.check_reserved() {
            return Err(fail_host("host.efer_reserved", e.detail));
        }
        let lma = efer.has(Efer::LMA);
        let lme = efer.has(Efer::LME);
        if lma != host_64 || lme != host_64 {
            return Err(fail_host(
                "host.efer_lma_lme",
                "host EFER.LMA/LME must equal the host address-space size".into(),
            ));
        }
    }
    Ok(())
}

/// Returns the guest segment-register check result (SDM 26.3.1.2).
fn check_guest_segments(
    vmcs: &Vmcs,
    unrestricted: bool,
    v86: bool,
    ia32e: bool,
) -> Result<(), EntryFailure> {
    let cs = vmcs.guest_segment(SegReg::Cs);
    let ss = vmcs.guest_segment(SegReg::Ss);
    let tr = vmcs.guest_segment(SegReg::Tr);
    let ldtr = vmcs.guest_segment(SegReg::Ldtr);

    // TR and, when usable, LDTR selectors must reference the GDT.
    if tr.selector.ti() {
        return Err(fail_guest(
            "guest.tr_ti",
            "guest TR selector TI bit set".into(),
        ));
    }
    if !ldtr.ar.unusable() && ldtr.selector.ti() {
        return Err(fail_guest(
            "guest.ldtr_ti",
            "guest LDTR selector TI bit set".into(),
        ));
    }
    // SS.RPL must equal CS.RPL outside unrestricted/V86 operation.
    if !v86 && !unrestricted && ss.selector.rpl() != cs.selector.rpl() {
        return Err(fail_guest("guest.ss_rpl", "SS.RPL != CS.RPL".into()));
    }

    if v86 {
        // Virtual-8086 mode pins base/limit/AR of every segment.
        for reg in SegReg::ALL {
            let seg = vmcs.guest_segment(reg);
            if matches!(reg, SegReg::Ldtr | SegReg::Tr) {
                continue;
            }
            if seg.base != (seg.selector.0 as u64) << 4 {
                return Err(fail_guest(
                    "guest.v86_base",
                    format!(
                        "{} base {:#x} != selector<<4 in V86 mode",
                        reg.name(),
                        seg.base
                    ),
                ));
            }
            if seg.limit != 0xffff {
                return Err(fail_guest(
                    "guest.v86_limit",
                    format!(
                        "{} limit {:#x} != 0xffff in V86 mode",
                        reg.name(),
                        seg.limit
                    ),
                ));
            }
            if seg.ar.0 != 0xf3 {
                return Err(fail_guest(
                    "guest.v86_ar",
                    format!("{} AR {:#x} != 0xf3 in V86 mode", reg.name(), seg.ar.0),
                ));
            }
        }
        return Ok(());
    }

    // CS: always usable; type rules depend on unrestricted guest.
    if cs.ar.unusable() {
        return Err(fail_guest("guest.cs_unusable", "CS must be usable".into()));
    }
    let cs_type = cs.ar.typ();
    let cs_ok = matches!(cs_type, 9 | 11 | 13 | 15) || (unrestricted && cs_type == 3);
    if !cs_ok || cs.ar.kind() != SegmentKind::CodeOrData {
        return Err(fail_guest(
            "guest.cs_type",
            format!("CS type {cs_type} invalid"),
        ));
    }
    if !cs.ar.present() {
        return Err(fail_guest("guest.cs_present", "CS not present".into()));
    }
    if let Err(e) = cs.ar.check_reserved() {
        return Err(fail_guest("guest.cs_ar_reserved", e.detail));
    }
    if let Err(e) = cs.check_granularity() {
        return Err(fail_guest("guest.cs_granularity", e.detail));
    }
    if ia32e && cs.ar.long() && cs.ar.db() {
        return Err(fail_guest(
            "guest.cs_l_db",
            "CS.L and CS.D/B both set in IA-32e".into(),
        ));
    }

    // SS, DS, ES, FS, GS: rules apply only when usable.
    for reg in [SegReg::Ss, SegReg::Ds, SegReg::Es, SegReg::Fs, SegReg::Gs] {
        let seg = vmcs.guest_segment(reg);
        if seg.ar.unusable() {
            continue;
        }
        if seg.ar.kind() != SegmentKind::CodeOrData {
            return Err(fail_guest(
                "guest.seg_s_bit",
                format!("{} is a system segment", reg.name()),
            ));
        }
        let t = seg.ar.typ();
        if reg == SegReg::Ss {
            if !unrestricted && t != 3 && t != 7 {
                return Err(fail_guest("guest.ss_type", format!("SS type {t} invalid")));
            }
        } else {
            // Data segments must be accessed; code segments readable.
            if t & 1 == 0 {
                return Err(fail_guest(
                    "guest.seg_accessed",
                    format!("{} type {t} not accessed", reg.name()),
                ));
            }
            if t & 8 != 0 && t & 2 == 0 {
                return Err(fail_guest(
                    "guest.seg_code_readable",
                    format!("{} is unreadable code", reg.name()),
                ));
            }
        }
        if !seg.ar.present() {
            return Err(fail_guest(
                "guest.seg_present",
                format!("{} usable but not present", reg.name()),
            ));
        }
        if let Err(e) = seg.ar.check_reserved() {
            return Err(fail_guest("guest.seg_ar_reserved", e.detail));
        }
        if let Err(e) = seg.check_granularity() {
            return Err(fail_guest("guest.seg_granularity", e.detail));
        }
    }

    // FS/GS bases must be canonical.
    for reg in [SegReg::Fs, SegReg::Gs] {
        if let Err(e) = vmcs.guest_segment(reg).check_base_canonical(reg) {
            return Err(fail_guest("guest.seg_base_canonical", e.detail));
        }
    }

    // TR: usable system segment, busy TSS, canonical base.
    if tr.ar.unusable() {
        return Err(fail_guest("guest.tr_unusable", "TR must be usable".into()));
    }
    let tr_type = tr.ar.typ();
    let tr_ok = if ia32e {
        tr_type == 11
    } else {
        tr_type == 3 || tr_type == 11
    };
    if !tr_ok || tr.ar.kind() != SegmentKind::System {
        return Err(fail_guest(
            "guest.tr_type",
            format!("TR type {tr_type} invalid"),
        ));
    }
    if !tr.ar.present() {
        return Err(fail_guest("guest.tr_present", "TR not present".into()));
    }
    if let Err(e) = tr.check_granularity() {
        return Err(fail_guest("guest.tr_granularity", e.detail));
    }
    if let Err(e) = tr.check_base_canonical(SegReg::Tr) {
        return Err(fail_guest("guest.tr_base_canonical", e.detail));
    }

    // LDTR, when usable: LDT type, present, canonical base.
    if !ldtr.ar.unusable() {
        if ldtr.ar.typ() != 2 || ldtr.ar.kind() != SegmentKind::System {
            return Err(fail_guest(
                "guest.ldtr_type",
                format!("LDTR type {} invalid", ldtr.ar.typ()),
            ));
        }
        if !ldtr.ar.present() {
            return Err(fail_guest("guest.ldtr_present", "LDTR not present".into()));
        }
        if let Err(e) = ldtr.check_base_canonical(SegReg::Ldtr) {
            return Err(fail_guest("guest.ldtr_base_canonical", e.detail));
        }
    }
    Ok(())
}

/// Group 3: checks on the guest-state area (SDM 26.3.1), applying the
/// silent-rounding quirks instead of failing where real CPUs do so.
pub fn check_guest_state(
    vmcs: &Vmcs,
    caps: &VmxCapabilities,
) -> Result<EntryOutcome, EntryFailure> {
    let mut outcome = EntryOutcome {
        adjustments: Vec::new(),
        runnable: true,
    };
    let entryv = vmcs.read(VmcsField::VmEntryControls) as u32;
    let proc2v = secondary(vmcs);
    let unrestricted = proc2v & proc2::UNRESTRICTED_GUEST != 0;
    let ia32e = entryv & ec::IA32E_MODE_GUEST != 0;

    let cr0 = vmcs.read(VmcsField::GuestCr0);
    let cr4 = vmcs.read(VmcsField::GuestCr4);

    if !caps.cr0_ok(cr0, unrestricted) {
        return Err(fail_guest(
            "guest.cr0_fixed",
            format!("guest CR0 {cr0:#x} violates fixed bits"),
        ));
    }
    if !caps.cr4_ok(cr4) {
        return Err(fail_guest(
            "guest.cr4_fixed",
            format!("guest CR4 {cr4:#x} violates fixed bits"),
        ));
    }
    if let Err(e) = Cr3::new(vmcs.read(VmcsField::GuestCr3)).check_width() {
        return Err(fail_guest("guest.cr3_width", e.detail));
    }

    let cr0v = Cr0::new(cr0);
    let cr4v = Cr4::new(cr4);

    if ia32e {
        if !cr0v.has(Cr0::PG) {
            return Err(fail_guest(
                "guest.ia32e_pg",
                "IA-32e mode guest requires CR0.PG".into(),
            ));
        }
        if !cr4v.has(Cr4::PAE) {
            // QUIRK: the SDM says entry must fail; silicon silently
            // behaves as if CR4.PAE were set (CVE-2023-30456 surface).
            outcome.adjustments.push(Adjustment {
                field: VmcsField::GuestCr4,
                from: cr4,
                to: cr4 | Cr4::PAE,
                quirk: "cr4_pae_assumed",
            });
        }
    } else {
        if cr4v.has(Cr4::PCIDE) {
            return Err(fail_guest(
                "guest.pcide_requires_ia32e",
                "CR4.PCIDE set outside IA-32e mode".into(),
            ));
        }
    }

    // Debug state when the entry loads debug controls.
    if entryv & ec::LOAD_DEBUG_CONTROLS != 0 {
        let dbgctl = vmcs.read(VmcsField::GuestIa32Debugctl);
        if !debugctl_valid(dbgctl) {
            return Err(fail_guest(
                "guest.debugctl_reserved",
                format!("guest DEBUGCTL {dbgctl:#x} has reserved bits"),
            ));
        }
        let dr7 = vmcs.read(VmcsField::GuestDr7);
        if dr7 >> 32 != 0 {
            return Err(fail_guest(
                "guest.dr7_upper",
                format!("guest DR7 {dr7:#x} bits 63:32 set"),
            ));
        }
        if dr7 & (1 << 10) == 0 {
            // QUIRK: bit 10 of DR7 always reads as 1; the CPU forces it.
            outcome.adjustments.push(Adjustment {
                field: VmcsField::GuestDr7,
                from: dr7,
                to: dr7 | (1 << 10),
                quirk: "dr7_bit10_forced",
            });
        }
    }

    // EFER consistency (SDM 26.3.1.1) when the entry loads EFER.
    if entryv & ec::LOAD_EFER != 0 {
        let efer = Efer::new(vmcs.read(VmcsField::GuestIa32Efer));
        if let Err(e) = efer.check_reserved() {
            return Err(fail_guest("guest.efer_reserved", e.detail));
        }
        if efer.has(Efer::LMA) != ia32e {
            return Err(fail_guest(
                "guest.efer_lma_entry_ctl",
                "guest EFER.LMA must equal the IA-32e-mode-guest control".into(),
            ));
        }
        if cr0v.has(Cr0::PG) && efer.has(Efer::LMA) != efer.has(Efer::LME) {
            return Err(fail_guest(
                "guest.efer_lma_lme",
                "EFER.LMA != EFER.LME with paging enabled".into(),
            ));
        }
    }

    let rflags = RFlags::new(vmcs.read(VmcsField::GuestRflags));
    if let Err(e) = rflags.check_vmx() {
        return Err(fail_guest("guest.rflags", e.detail));
    }
    let v86 = rflags.has(RFlags::VM);
    if v86 && (ia32e || !unrestricted && !cr0v.has(Cr0::PE)) {
        return Err(fail_guest(
            "guest.vm86_mode",
            "RFLAGS.VM incompatible with IA-32e / protected-mode rules".into(),
        ));
    }

    check_guest_segments(vmcs, unrestricted, v86, ia32e)?;

    for (f, name) in [
        (VmcsField::GuestGdtrBase, "GDTR"),
        (VmcsField::GuestIdtrBase, "IDTR"),
    ] {
        if !VirtAddr(vmcs.read(f)).is_canonical() {
            return Err(fail_guest(
                "guest.dtable_base",
                format!("guest {name} base {:#x} non-canonical", vmcs.read(f)),
            ));
        }
    }
    for (f, name) in [
        (VmcsField::GuestGdtrLimit, "GDTR"),
        (VmcsField::GuestIdtrLimit, "IDTR"),
    ] {
        if vmcs.read(f) >> 16 != 0 {
            return Err(fail_guest(
                "guest.dtable_limit",
                format!("guest {name} limit has bits 31:16 set"),
            ));
        }
    }

    // RIP (SDM 26.3.1.4).
    let rip = vmcs.read(VmcsField::GuestRip);
    let cs = vmcs.guest_segment(SegReg::Cs);
    if (!ia32e || !cs.ar.long()) && rip >> 32 != 0 {
        return Err(fail_guest(
            "guest.rip_upper",
            format!("RIP {rip:#x} bits 63:32 set"),
        ));
    }
    if ia32e && cs.ar.long() && !VirtAddr(rip).is_canonical() {
        return Err(fail_guest(
            "guest.rip_canonical",
            format!("RIP {rip:#x} non-canonical"),
        ));
    }

    // Activity and interruptibility state (SDM 26.3.1.5).
    let act_raw = vmcs.read(VmcsField::GuestActivityState);
    let activity = match ActivityState::from_raw(act_raw) {
        Ok(a) => a,
        Err(e) => return Err(fail_guest("guest.activity_reserved", e.detail)),
    };
    if !matches!(activity, ActivityState::Active) {
        // HLT keeps the vCPU runnable (interrupts resume it); Shutdown
        // and Wait-for-SIPI stall it — hardware enters anyway, which is
        // exactly why L0 hypervisors must sanitize VMCS12 activity state.
        outcome.runnable = matches!(activity, ActivityState::Hlt);
    }
    let intr = Interruptibility(vmcs.read(VmcsField::GuestInterruptibilityInfo) as u32);
    if let Err(e) = intr.check(rflags) {
        return Err(fail_guest("guest.interruptibility", e.detail));
    }
    if matches!(activity, ActivityState::Hlt)
        && intr.0 & (Interruptibility::STI | Interruptibility::MOV_SS) != 0
    {
        return Err(fail_guest(
            "guest.hlt_blocking",
            "HLT activity with STI/MOV-SS blocking".into(),
        ));
    }

    // Pending debug exceptions (SDM 26.3.1.5): reserved bits.
    let pend = vmcs.read(VmcsField::GuestPendingDbgExceptions);
    const PEND_DEFINED: u64 = 0xf | (1 << 12) | (1 << 14) | (1 << 16);
    if pend & !PEND_DEFINED != 0 {
        return Err(fail_guest(
            "guest.pending_dbg_reserved",
            format!("pending debug exceptions {pend:#x} reserved bits"),
        ));
    }
    if pend & (1 << 16) != 0 {
        // QUIRK: RTM bit cleared on parts without RTM instead of failing.
        outcome.adjustments.push(Adjustment {
            field: VmcsField::GuestPendingDbgExceptions,
            from: pend,
            to: pend & !(1 << 16),
            quirk: "pending_dbg_rtm_cleared",
        });
    }

    // VMCS link pointer (SDM 26.3.1.5).
    let link = vmcs.read(VmcsField::VmcsLinkPointer);
    if link != u64::MAX {
        let shadowing = proc2v & proc2::VMCS_SHADOWING != 0;
        if !shadowing || !page_aligned(link) || !phys_in_width(link) {
            return Err(fail_guest(
                "guest.vmcs_link",
                format!("VMCS link pointer {link:#x} invalid"),
            ));
        }
    }

    // PDPTEs for PAE paging without EPT handled by the MMU at entry
    // (SDM 26.3.1.6): checked only when EPT is on (otherwise loaded from
    // memory, modeled as valid).
    if !ia32e && cr0v.has(Cr0::PG) && cr4v.has(Cr4::PAE) && proc2v & proc2::ENABLE_EPT != 0 {
        for f in [
            VmcsField::GuestPdpte0,
            VmcsField::GuestPdpte1,
            VmcsField::GuestPdpte2,
            VmcsField::GuestPdpte3,
        ] {
            if let Err(e) = Pdpte(vmcs.read(f)).check() {
                return Err(fail_guest("guest.pdpte", e.detail));
            }
        }
    }

    // PAT/PERF_GLOBAL_CTRL loads.
    if entryv & ec::LOAD_PAT != 0 && !pat_valid(vmcs.read(VmcsField::GuestIa32Pat)) {
        return Err(fail_guest(
            "guest.pat",
            format!(
                "guest PAT {:#x} invalid",
                vmcs.read(VmcsField::GuestIa32Pat)
            ),
        ));
    }
    if entryv & ec::LOAD_PERF_GLOBAL_CTRL != 0 {
        let v = vmcs.read(VmcsField::GuestIa32PerfGlobalCtrl);
        if v & !0x7_0000_000f != 0 {
            return Err(fail_guest(
                "guest.perf_global",
                format!("guest PERF_GLOBAL_CTRL {v:#x} reserved bits"),
            ));
        }
    }
    Ok(outcome)
}

/// Processes the VM-entry MSR-load list (SDM 26.4): each value must be
/// legal for its MSR, enforced with full `wrmsr` semantics.
pub fn check_msr_load(area: &MsrArea) -> Result<(), EntryFailure> {
    for (i, e) in area.entries.iter().enumerate() {
        let Some(msr) = Msr::from_index(e.index) else {
            return Err(EntryFailure::MsrLoad(
                e.index,
                ArchError::new(
                    "msrload.unknown",
                    format!("entry {i}: unknown MSR {:#x}", e.index),
                ),
            ));
        };
        if msr.requires_canonical() && !VirtAddr(e.value).is_canonical() {
            return Err(EntryFailure::MsrLoad(
                e.index,
                ArchError::new(
                    "msrload.non_canonical",
                    format!(
                        "entry {i}: MSR {:#x} value {:#x} non-canonical",
                        e.index, e.value
                    ),
                ),
            ));
        }
        if msr == Msr::Pat && !pat_valid(e.value) {
            return Err(EntryFailure::MsrLoad(
                e.index,
                ArchError::new(
                    "msrload.pat",
                    format!("entry {i}: invalid PAT {:#x}", e.value),
                ),
            ));
        }
        if msr == Msr::Efer {
            if let Err(err) = Efer::new(e.value).check_reserved() {
                return Err(EntryFailure::MsrLoad(e.index, err));
            }
        }
    }
    Ok(())
}

/// The full VM-entry decision: the three check groups in architectural
/// order, then MSR loading. This is the oracle the validator consults.
pub fn try_vmentry(
    vmcs: &Vmcs,
    caps: &VmxCapabilities,
    entry_msr_load: &MsrArea,
) -> Result<EntryOutcome, EntryFailure> {
    check_vm_controls(vmcs, caps)?;
    check_host_state(vmcs, caps)?;
    let outcome = check_guest_state(vmcs, caps)?;
    check_msr_load(entry_msr_load)?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::golden_vmcs;
    use nf_x86::{CpuVendor, FeatureSet};

    fn caps() -> VmxCapabilities {
        VmxCapabilities::from_features(FeatureSet::default_for(CpuVendor::Intel))
    }

    #[test]
    fn golden_vmcs_enters_cleanly() {
        let caps = caps();
        let vmcs = golden_vmcs(&caps);
        let outcome = try_vmentry(&vmcs, &caps, &MsrArea::new()).expect("golden state must enter");
        assert!(outcome.adjustments.is_empty(), "{:?}", outcome.adjustments);
        assert!(outcome.runnable);
    }

    #[test]
    fn zeroed_vmcs_fails_controls_first() {
        let caps = caps();
        let vmcs = Vmcs::new();
        match try_vmentry(&vmcs, &caps, &MsrArea::new()) {
            Err(EntryFailure::InvalidControls(_)) => {}
            other => panic!("expected control failure, got {other:?}"),
        }
    }

    #[test]
    fn cr4_pae_quirk_applies_in_ia32e() {
        let caps = caps();
        let mut vmcs = golden_vmcs(&caps);
        let cr4 = vmcs.read(VmcsField::GuestCr4) & !Cr4::PAE;
        vmcs.write(VmcsField::GuestCr4, cr4);
        let outcome = try_vmentry(&vmcs, &caps, &MsrArea::new()).expect("quirk permits entry");
        assert!(outcome
            .adjustments
            .iter()
            .any(|a| a.quirk == "cr4_pae_assumed"));
    }

    #[test]
    fn bad_host_cr3_fails_host_group() {
        let caps = caps();
        let mut vmcs = golden_vmcs(&caps);
        vmcs.write(VmcsField::HostCr3, u64::MAX);
        match try_vmentry(&vmcs, &caps, &MsrArea::new()) {
            Err(EntryFailure::InvalidHostState(e)) => assert_eq!(e.rule, "host.cr3_width"),
            other => panic!("expected host failure, got {other:?}"),
        }
    }

    #[test]
    fn wait_for_sipi_enters_but_stalls() {
        let caps = caps();
        let mut vmcs = golden_vmcs(&caps);
        vmcs.write(
            VmcsField::GuestActivityState,
            ActivityState::WaitForSipi as u64,
        );
        let outcome = try_vmentry(&vmcs, &caps, &MsrArea::new()).expect("WFS entry is legal");
        assert!(!outcome.runnable, "wait-for-SIPI guest must stall");
    }

    #[test]
    fn reserved_activity_state_fails() {
        let caps = caps();
        let mut vmcs = golden_vmcs(&caps);
        vmcs.write(VmcsField::GuestActivityState, 7);
        let err = try_vmentry(&vmcs, &caps, &MsrArea::new()).unwrap_err();
        assert_eq!(err.rule(), "guest.activity_reserved");
    }

    #[test]
    fn non_canonical_msr_load_fails_reason_34() {
        let caps = caps();
        let vmcs = golden_vmcs(&caps);
        let area = MsrArea {
            entries: vec![nf_vmx::MsrAreaEntry {
                index: Msr::KernelGsBase.index(),
                value: 0x8000_0000_0000_0000,
            }],
        };
        match try_vmentry(&vmcs, &caps, &area) {
            Err(EntryFailure::MsrLoad(idx, _)) => assert_eq!(idx, Msr::KernelGsBase.index()),
            other => panic!("expected MSR-load failure, got {other:?}"),
        }
    }

    #[test]
    fn vpid_zero_rejected_when_enabled() {
        let caps = VmxCapabilities::from_features({
            let mut f = FeatureSet::default_for(CpuVendor::Intel);
            f.insert(nf_x86::CpuFeature::Vpid);
            f
        });
        let mut vmcs = golden_vmcs(&caps);
        let p2 = vmcs.read(VmcsField::SecondaryVmExecControl) | proc2::ENABLE_VPID as u64;
        vmcs.write(VmcsField::SecondaryVmExecControl, p2);
        vmcs.write(VmcsField::Vpid, 0);
        let err = try_vmentry(&vmcs, &caps, &MsrArea::new()).unwrap_err();
        assert_eq!(err.rule(), "ctrl.vpid_zero");
    }

    #[test]
    fn eptp_validity() {
        assert!(eptp_valid(0x1000 | 6 | (3 << 3)));
        assert!(eptp_valid(0x1000 | (3 << 3))); // UC
        assert!(!eptp_valid(0x1000 | 1 | (3 << 3))); // bad memtype
        assert!(!eptp_valid(0x1000 | 6)); // walk length 1
        assert!(!eptp_valid(0x1000 | 6 | (3 << 3) | (1 << 7))); // reserved
        assert!(!eptp_valid((1 << 50) | 6 | (3 << 3))); // beyond MAXPHYADDR
    }

    #[test]
    fn checks_stop_at_first_failure() {
        // A VMCS with both a control error and a guest error reports the
        // control error, matching hardware's check order.
        let caps = caps();
        let mut vmcs = golden_vmcs(&caps);
        vmcs.write(VmcsField::Cr3TargetCount, 100);
        vmcs.write(VmcsField::GuestRflags, 0); // also invalid
        match try_vmentry(&vmcs, &caps, &MsrArea::new()) {
            Err(EntryFailure::InvalidControls(e)) => assert_eq!(e.rule, "ctrl.cr3_target_count"),
            other => panic!("expected control failure, got {other:?}"),
        }
    }
}
