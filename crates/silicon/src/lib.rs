//! The physical-CPU model ("silicon") for the NecoFuzz reproduction.
//!
//! NecoFuzz uses the physical CPU as an **oracle**: generated VM states
//! are set on the real CPU, a VM entry is attempted, and the result is
//! compared with the validator's prediction (paper §3.4). This crate is
//! that CPU: an architectural model of Intel VT-x VM entry (with the
//! silent-rounding quirks documentation omits), AMD-V `VMRUN`
//! canonicalization, the per-instruction exit decision of Table 1, and
//! the root-mode VMX instruction rules.
//!
//! The hypervisor models in `nf-hv` run *on top of* this crate — the
//! exits they receive and the entries they perform are all decided here.

pub mod exit_decide;
pub mod golden;
pub mod instr;
pub mod svm;
pub mod vmentry;
pub mod vmx_ops;

pub use exit_decide::{svm_exit_for, vmx_exit_for};
pub use golden::{golden_vmcb, golden_vmcs, GOLDEN_EPTP};
pub use instr::{CrIndex, GuestInstr, InstrClass};
pub use svm::{check_vmrun, VmrunFailure, VmrunOutcome};
pub use vmentry::{
    check_guest_state, check_host_state, check_msr_load, check_vm_controls, eptp_valid,
    try_vmentry, Adjustment, EntryFailure, EntryOutcome,
};
pub use vmx_ops::{
    launch_state_check, vmclear_check, vmptrld_check, vmread_check, vmwrite_check, vmxon_check,
    VmInstrError,
};
