//! Golden (known-valid) VM states.
//!
//! The golden VMCS/VMCB is the structurally correct 64-bit guest state a
//! well-behaved hypervisor would construct. The fuzz-harness VM's
//! templates start from these states, and the validator's rounding pass
//! falls back to golden values where a field has a single legal shape.

use nf_vmx::controls::{entry as ec, exit as xc, proc, proc2};
use nf_vmx::vmcb::{intercept, Vmcb};
use nf_vmx::{CtrlKind, Vmcs, VmcsField, VmxCapabilities};
use nf_x86::segment::Segment;
use nf_x86::{Cr0, Cr4, Efer, RFlags, SegReg};

/// A canonical EPT pointer: WB memory type, 4-level walk, page at 16 MiB.
pub const GOLDEN_EPTP: u64 = 0x0100_0000 | 6 | (3 << 3);

/// Builds a fully valid VMCS for a 64-bit guest under `caps`.
///
/// Every field group passes the silicon checks with zero adjustments, so
/// the state is strictly *inside* the validity boundary — the seeds from
/// which boundary exploration starts.
pub fn golden_vmcs(caps: &VmxCapabilities) -> Vmcs {
    let mut v = Vmcs::new();
    v.revision_id = caps.revision_id;

    // --- Control fields.
    v.write(
        VmcsField::PinBasedVmExecControl,
        caps.round_control(CtrlKind::PinBased, 0) as u64,
    );
    let mut procv = caps.round_control(
        CtrlKind::ProcBased,
        proc::HLT_EXITING
            | proc::USE_MSR_BITMAPS
            | proc::USE_IO_BITMAPS
            | proc::MOV_DR_EXITING
            | proc::MWAIT_EXITING
            | proc::MONITOR_EXITING
            | proc::RDPMC_EXITING,
    );
    let proc2v = caps.round_control(CtrlKind::ProcBased2, proc2::ENABLE_EPT);
    if proc2v != 0 {
        procv = caps.round_control(CtrlKind::ProcBased, procv | proc::SECONDARY_CONTROLS);
    }
    v.write(VmcsField::CpuBasedVmExecControl, procv as u64);
    v.write(VmcsField::SecondaryVmExecControl, proc2v as u64);
    if proc2v & proc2::ENABLE_EPT != 0 {
        v.write(VmcsField::EptPointer, GOLDEN_EPTP);
    }
    v.write(
        VmcsField::VmExitControls,
        caps.round_control(
            CtrlKind::Exit,
            xc::HOST_ADDR_SPACE_SIZE | xc::LOAD_EFER | xc::SAVE_EFER | xc::LOAD_PAT | xc::SAVE_PAT,
        ) as u64,
    );
    v.write(
        VmcsField::VmEntryControls,
        caps.round_control(
            CtrlKind::Entry,
            ec::IA32E_MODE_GUEST | ec::LOAD_EFER | ec::LOAD_PAT,
        ) as u64,
    );
    v.write(VmcsField::VmcsLinkPointer, u64::MAX);
    v.write(VmcsField::IoBitmapA, 0x0001_0000);
    v.write(VmcsField::IoBitmapB, 0x0001_1000);
    v.write(VmcsField::MsrBitmap, 0x0001_2000);
    // CR bits the hypervisor owns (KVM-style guest/host masks).
    v.write(VmcsField::Cr0GuestHostMask, Cr0::PE | Cr0::PG | Cr0::NE);
    v.write(VmcsField::Cr0ReadShadow, Cr0::PE | Cr0::PG | Cr0::NE);
    v.write(VmcsField::Cr4GuestHostMask, Cr4::VMXE);
    v.write(VmcsField::Cr4ReadShadow, 0);

    // --- Guest state: flat 64-bit protected mode.
    v.write(
        VmcsField::GuestCr0,
        caps.round_cr0(Cr0::PE | Cr0::PG | Cr0::NE, false),
    );
    v.write(VmcsField::GuestCr4, caps.round_cr4(Cr4::PAE));
    v.write(VmcsField::GuestCr3, 0x0000_3000);
    v.write(VmcsField::GuestIa32Efer, Efer::LME | Efer::LMA);
    v.write(VmcsField::GuestIa32Pat, 0x0007_0406_0007_0406);
    v.write(VmcsField::GuestRflags, RFlags::RESERVED_ONE);
    v.write(VmcsField::GuestRip, 0x0010_0000);
    v.write(VmcsField::GuestRsp, 0x0020_0000);
    v.write(VmcsField::GuestDr7, 0x400);
    v.set_guest_segment(SegReg::Cs, Segment::flat_code64());
    for reg in [SegReg::Ss, SegReg::Ds, SegReg::Es, SegReg::Fs, SegReg::Gs] {
        v.set_guest_segment(reg, Segment::flat_data());
    }
    v.set_guest_segment(SegReg::Tr, Segment::busy_tss64());
    v.set_guest_segment(SegReg::Ldtr, Segment::unusable());
    v.write(VmcsField::GuestGdtrBase, 0x0000_4000);
    v.write(VmcsField::GuestGdtrLimit, 0xff);
    v.write(VmcsField::GuestIdtrBase, 0x0000_5000);
    v.write(VmcsField::GuestIdtrLimit, 0xfff);

    // --- Host state: the L1 hypervisor's own 64-bit context.
    v.write(
        VmcsField::HostCr0,
        caps.round_cr0(Cr0::PE | Cr0::PG | Cr0::NE | Cr0::WP, false),
    );
    v.write(VmcsField::HostCr4, caps.round_cr4(Cr4::PAE));
    v.write(VmcsField::HostCr3, 0x0000_2000);
    v.write(VmcsField::HostIa32Efer, Efer::LME | Efer::LMA | Efer::SCE);
    v.write(VmcsField::HostIa32Pat, 0x0007_0406_0007_0406);
    v.write(VmcsField::HostCsSelector, 0x08);
    v.write(VmcsField::HostSsSelector, 0x10);
    for f in [
        VmcsField::HostDsSelector,
        VmcsField::HostEsSelector,
        VmcsField::HostFsSelector,
        VmcsField::HostGsSelector,
    ] {
        v.write(f, 0x10);
    }
    v.write(VmcsField::HostTrSelector, 0x40);
    v.write(VmcsField::HostRip, 0xffff_8000_0010_0000);
    v.write(VmcsField::HostRsp, 0xffff_8000_0020_0000);
    v.write(VmcsField::HostGdtrBase, 0xffff_8000_0000_4000);
    v.write(VmcsField::HostIdtrBase, 0xffff_8000_0000_5000);
    v.write(VmcsField::HostTrBase, 0xffff_8000_0000_6000);
    v
}

/// Builds a fully valid VMCB for a 64-bit L2 guest.
pub fn golden_vmcb() -> Vmcb {
    let mut v = Vmcb::default();
    v.control.intercepts = intercept::VMRUN
        | intercept::CPUID
        | intercept::HLT
        | intercept::MSR_PROT
        | intercept::IOIO_PROT
        | intercept::SHUTDOWN
        | intercept::VMMCALL;
    v.control.guest_asid = 1;
    v.control.np_enable = 1;
    v.control.ncr3 = 0x0100_0000;
    v.control.iopm_base_pa = 0x0020_0000;
    v.control.msrpm_base_pa = 0x0020_3000;
    v.save.efer = Efer::SVME | Efer::LME | Efer::LMA;
    v.save.cr0 = Cr0::PE | Cr0::PG | Cr0::NE | Cr0::ET;
    v.save.cr4 = Cr4::PAE;
    v.save.cr3 = 0x0000_3000;
    v.save.rflags = RFlags::RESERVED_ONE;
    v.save.rip = 0x0010_0000;
    v.save.rsp = 0x0020_0000;
    v.save.dr6 = 0xffff_0ff0;
    v.save.dr7 = 0x400;
    v.save.g_pat = 0x0007_0406_0007_0406;
    v.save.cs = Segment::flat_code64();
    for seg in [
        &mut v.save.ss,
        &mut v.save.ds,
        &mut v.save.es,
        &mut v.save.fs,
        &mut v.save.gs,
    ] {
        *seg = Segment::flat_data();
    }
    v.save.tr = Segment::busy_tss64();
    v.save.ldtr = Segment::unusable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_x86::{CpuVendor, FeatureSet};

    #[test]
    fn golden_eptp_is_valid() {
        assert!(crate::vmentry::eptp_valid(GOLDEN_EPTP));
    }

    #[test]
    fn golden_vmcs_without_ept_has_no_secondary_ept() {
        let mut f = FeatureSet::default_for(CpuVendor::Intel);
        f.remove(nf_x86::CpuFeature::Ept);
        f.remove(nf_x86::CpuFeature::UnrestrictedGuest);
        let caps = VmxCapabilities::from_features(f.sanitized(CpuVendor::Intel));
        let v = golden_vmcs(&caps);
        assert_eq!(
            v.read(VmcsField::SecondaryVmExecControl) as u32 & proc2::ENABLE_EPT,
            0
        );
    }

    #[test]
    fn golden_vmcb_shape() {
        let v = golden_vmcb();
        assert_ne!(v.control.intercepts & intercept::VMRUN, 0);
        assert_ne!(v.control.guest_asid, 0);
        assert_ne!(v.save.efer & Efer::SVME, 0);
    }
}
