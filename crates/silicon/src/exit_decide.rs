//! Exit decision: does an instruction executed in non-root mode cause a
//! VM exit, and with which reason?
//!
//! This is the hardware half of Table 1. The L0 hypervisor consults it to
//! learn which exits its L2 guest produces (against VMCS02) and which
//! exits must be *reflected* to L1 (against VMCS12's controls) — the
//! dispatch decision at the heart of `nested.c`.

use crate::instr::{CrIndex, GuestInstr};
use nf_vmx::controls::{proc, proc2};
use nf_vmx::vmcb::intercept;
use nf_vmx::{ExitReason, SvmExitCode, Vmcb, Vmcs, VmcsField};
use nf_x86::Msr;

/// Effective secondary controls of a VMCS.
fn secondary(vmcs: &Vmcs) -> u32 {
    if vmcs.read(VmcsField::CpuBasedVmExecControl) as u32 & proc::SECONDARY_CONTROLS != 0 {
        vmcs.read(VmcsField::SecondaryVmExecControl) as u32
    } else {
        0
    }
}

/// MSRs that hypervisors conventionally pass through when MSR bitmaps
/// are active (the typical KVM/Xen bitmap configuration).
fn msr_passthrough(index: u32) -> bool {
    matches!(index, i if i == Msr::FsBase.index() || i == Msr::GsBase.index() || i == Msr::Tsc.index())
}

/// Decides the VM exit an instruction causes under Intel VT-x, given the
/// controlling VMCS. `None` means the instruction executes natively.
pub fn vmx_exit_for(instr: GuestInstr, vmcs: &Vmcs) -> Option<ExitReason> {
    use GuestInstr::*;
    let procv = vmcs.read(VmcsField::CpuBasedVmExecControl) as u32;
    let proc2v = secondary(vmcs);
    let pinv = vmcs.read(VmcsField::PinBasedVmExecControl) as u32;
    let on = |bit: u32| procv & bit != 0;
    let on2 = |bit: u32| proc2v & bit != 0;
    // An expired preemption timer fires before the next instruction.
    if pinv & nf_vmx::controls::pin::PREEMPTION_TIMER != 0
        && vmcs.read(VmcsField::VmxPreemptionTimerValue) == 0
    {
        return Some(ExitReason::PreemptionTimer);
    }
    match instr {
        // All VMX instructions unconditionally exit in non-root mode.
        Vmxon(_) => Some(ExitReason::Vmxon),
        Vmxoff => Some(ExitReason::Vmxoff),
        Vmclear(_) => Some(ExitReason::Vmclear),
        Vmptrld(_) => Some(ExitReason::Vmptrld),
        Vmptrst => Some(ExitReason::Vmptrst),
        Vmread(_) => Some(ExitReason::Vmread),
        Vmwrite(..) => Some(ExitReason::Vmwrite),
        Vmlaunch => Some(ExitReason::Vmlaunch),
        Vmresume => Some(ExitReason::Vmresume),
        Vmcall | Vmmcall => Some(ExitReason::Vmcall),
        Invept(_) => Some(ExitReason::Invept),
        Invvpid(_) => Some(ExitReason::Invvpid),
        // SVM instructions on an Intel part raise #UD → exception exit.
        Vmrun(_) | Vmload(_) | Vmsave(_) | Stgi | Clgi | Skinit => Some(ExitReason::ExceptionNmi),

        MovToCr(CrIndex::Cr0, value) => {
            let mask = vmcs.read(VmcsField::Cr0GuestHostMask);
            let shadow = vmcs.read(VmcsField::Cr0ReadShadow);
            ((value ^ shadow) & mask != 0).then_some(ExitReason::CrAccess)
        }
        MovToCr(CrIndex::Cr4, value) => {
            let mask = vmcs.read(VmcsField::Cr4GuestHostMask);
            let shadow = vmcs.read(VmcsField::Cr4ReadShadow);
            ((value ^ shadow) & mask != 0).then_some(ExitReason::CrAccess)
        }
        MovToCr(CrIndex::Cr3, value) => {
            if !on(proc::CR3_LOAD_EXITING) {
                return None;
            }
            // CR3-target values suppress the exit (SDM 25.1.3).
            let count = vmcs.read(VmcsField::Cr3TargetCount).min(4) as usize;
            let targets = [
                VmcsField::Cr3TargetValue0,
                VmcsField::Cr3TargetValue1,
                VmcsField::Cr3TargetValue2,
                VmcsField::Cr3TargetValue3,
            ];
            let matched = targets.iter().take(count).any(|&t| vmcs.read(t) == value);
            (!matched).then_some(ExitReason::CrAccess)
        }
        MovToCr(CrIndex::Cr8, _) => on(proc::CR8_LOAD_EXITING).then_some(ExitReason::CrAccess),
        MovFromCr(CrIndex::Cr3) => on(proc::CR3_STORE_EXITING).then_some(ExitReason::CrAccess),
        MovFromCr(CrIndex::Cr8) => on(proc::CR8_STORE_EXITING).then_some(ExitReason::CrAccess),
        MovFromCr(_) => None,
        MovToDr(..) | MovFromDr(_) => on(proc::MOV_DR_EXITING).then_some(ExitReason::DrAccess),

        In(_) | Out(..) => {
            // Modeled bitmap contents: all-ones (every port exits), the
            // configuration every modeled hypervisor programs.
            (on(proc::UNCOND_IO_EXITING) || on(proc::USE_IO_BITMAPS))
                .then_some(ExitReason::IoInstruction)
        }
        Rdmsr(index) => {
            if on(proc::USE_MSR_BITMAPS) && msr_passthrough(index) {
                None
            } else {
                Some(ExitReason::Rdmsr)
            }
        }
        Wrmsr(index, _) => {
            if on(proc::USE_MSR_BITMAPS) && msr_passthrough(index) {
                None
            } else {
                Some(ExitReason::Wrmsr)
            }
        }

        Cpuid(_) => Some(ExitReason::Cpuid),
        Hlt => on(proc::HLT_EXITING).then_some(ExitReason::Hlt),
        Rdtsc => on(proc::RDTSC_EXITING).then_some(ExitReason::Rdtsc),
        Rdtscp => on(proc::RDTSC_EXITING).then_some(ExitReason::Rdtscp),
        Pause => on(proc::PAUSE_EXITING).then_some(ExitReason::Pause),
        Rdrand => on2(proc2::RDRAND_EXITING).then_some(ExitReason::Rdrand),
        Rdseed => on2(proc2::RDSEED_EXITING).then_some(ExitReason::Rdseed),
        Rdpmc => on(proc::RDPMC_EXITING).then_some(ExitReason::Rdpmc),
        Invlpg(_) => on(proc::INVLPG_EXITING).then_some(ExitReason::Invlpg),
        Invpcid(_) => on(proc::INVLPG_EXITING).then_some(ExitReason::Invpcid),
        Wbinvd => on2(proc2::WBINVD_EXITING).then_some(ExitReason::Wbinvd),
        Monitor => on(proc::MONITOR_EXITING).then_some(ExitReason::Monitor),
        Mwait => on(proc::MWAIT_EXITING).then_some(ExitReason::Mwait),
        Xsetbv(_) => Some(ExitReason::Xsetbv),
        TouchMemory(addr) => {
            if !nf_x86::addr::VirtAddr(addr).is_canonical() {
                // #GP on the access: intercepted when the exception
                // bitmap has the GP bit, otherwise it escalates to a
                // triple fault in the modeled bare-bones guest.
                let bitmap = vmcs.read(VmcsField::ExceptionBitmap) as u32;
                if bitmap & (1 << 13) != 0 {
                    Some(ExitReason::ExceptionNmi)
                } else {
                    Some(ExitReason::TripleFault)
                }
            } else if on2(proc2::ENABLE_EPT) && addr >= 0x2000_0000 {
                Some(ExitReason::EptViolation)
            } else {
                None
            }
        }
        Nop => None,
    }
}

/// Decides the #VMEXIT an instruction causes under AMD-V, given the
/// controlling VMCB. `None` means the instruction executes natively.
pub fn svm_exit_for(instr: GuestInstr, vmcb: &Vmcb) -> Option<SvmExitCode> {
    use GuestInstr::*;
    let ic = vmcb.control.intercepts;
    let on = |bit: u64| ic & bit != 0;
    match instr {
        // SVM instructions exit when intercepted; VMRUN must always be.
        Vmrun(_) => Some(SvmExitCode::Vmrun),
        Vmmcall | Vmcall => on(intercept::VMMCALL).then_some(SvmExitCode::Vmmcall),
        Vmload(_) => on(intercept::VMLOAD).then_some(SvmExitCode::Vmload),
        Vmsave(_) => on(intercept::VMSAVE).then_some(SvmExitCode::Vmsave),
        Stgi => on(intercept::STGI).then_some(SvmExitCode::Stgi),
        Clgi => on(intercept::CLGI).then_some(SvmExitCode::Clgi),
        Skinit => on(intercept::SKINIT).then_some(SvmExitCode::Skinit),
        // VMX instructions on an AMD part raise #UD → shutdown-free exit.
        Vmxon(_) | Vmxoff | Vmclear(_) | Vmptrld(_) | Vmptrst | Vmread(_) | Vmwrite(..)
        | Vmlaunch | Vmresume | Invept(_) | Invvpid(_) => Some(SvmExitCode::Shutdown),

        MovToCr(CrIndex::Cr0, _) => on(intercept::CR0_WRITE).then_some(SvmExitCode::Cr0Write),
        MovToCr(CrIndex::Cr3, _) => on(intercept::CR3_WRITE).then_some(SvmExitCode::Cr3Write),
        MovToCr(CrIndex::Cr4, _) => on(intercept::CR4_WRITE).then_some(SvmExitCode::Cr4Write),
        MovToCr(CrIndex::Cr8, _) => None,
        MovFromCr(CrIndex::Cr0) => on(intercept::CR0_WRITE).then_some(SvmExitCode::Cr0Read),
        MovFromCr(_) => None,
        MovToDr(..) | MovFromDr(_) => None,

        In(_) | Out(..) => on(intercept::IOIO_PROT).then_some(SvmExitCode::Ioio),
        Rdmsr(index) | Wrmsr(index, _) => {
            if on(intercept::MSR_PROT) && !msr_passthrough(index) {
                Some(SvmExitCode::Msr)
            } else {
                None
            }
        }

        Cpuid(_) => on(intercept::CPUID).then_some(SvmExitCode::Cpuid),
        Hlt => on(intercept::HLT).then_some(SvmExitCode::Hlt),
        Invlpg(_) | Invpcid(_) => on(intercept::INVLPG).then_some(SvmExitCode::Invlpg),
        Rdtsc => on(intercept::RDTSC).then_some(SvmExitCode::Rdtscp),
        Rdtscp => on(intercept::RDTSC).then_some(SvmExitCode::Rdtscp),
        Rdpmc => on(intercept::RDPMC).then_some(SvmExitCode::Rdtscp),
        Pause => on(intercept::PAUSE).then_some(SvmExitCode::Pause),
        Rdrand | Rdseed | Wbinvd | Monitor | Mwait | Xsetbv(_) | TouchMemory(_) | Nop => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{golden_vmcb, golden_vmcs};
    use nf_vmx::VmxCapabilities;
    use nf_x86::{CpuVendor, FeatureSet};

    fn vmcs() -> Vmcs {
        golden_vmcs(&VmxCapabilities::from_features(FeatureSet::default_for(
            CpuVendor::Intel,
        )))
    }

    #[test]
    fn vmx_instructions_always_exit() {
        let v = vmcs();
        for instr in [
            GuestInstr::Vmxon(0x1000),
            GuestInstr::Vmclear(0x2000),
            GuestInstr::Vmlaunch,
            GuestInstr::Vmread(0x6800),
            GuestInstr::Vmcall,
        ] {
            assert!(vmx_exit_for(instr, &v).is_some(), "{instr:?}");
        }
    }

    #[test]
    fn cpuid_always_exits_hlt_conditionally() {
        let mut v = vmcs();
        assert_eq!(
            vmx_exit_for(GuestInstr::Cpuid(0), &v),
            Some(ExitReason::Cpuid)
        );
        assert_eq!(vmx_exit_for(GuestInstr::Hlt, &v), Some(ExitReason::Hlt));
        let procv = v.read(VmcsField::CpuBasedVmExecControl) & !(proc::HLT_EXITING as u64);
        v.write(VmcsField::CpuBasedVmExecControl, procv);
        assert_eq!(vmx_exit_for(GuestInstr::Hlt, &v), None);
    }

    #[test]
    fn cr0_exit_depends_on_mask_and_shadow() {
        let mut v = vmcs();
        v.write(VmcsField::Cr0GuestHostMask, 0x1); // PE owned by host
        v.write(VmcsField::Cr0ReadShadow, 0x1);
        // Writing PE=1 matches the shadow: no exit.
        assert_eq!(
            vmx_exit_for(GuestInstr::MovToCr(CrIndex::Cr0, 0x1), &v),
            None
        );
        // Clearing PE differs from the shadow: exit.
        assert_eq!(
            vmx_exit_for(GuestInstr::MovToCr(CrIndex::Cr0, 0x0), &v),
            Some(ExitReason::CrAccess)
        );
    }

    #[test]
    fn cr3_target_values_suppress_exit() {
        let mut v = vmcs();
        let procv = v.read(VmcsField::CpuBasedVmExecControl) | proc::CR3_LOAD_EXITING as u64;
        v.write(VmcsField::CpuBasedVmExecControl, procv);
        v.write(VmcsField::Cr3TargetCount, 1);
        v.write(VmcsField::Cr3TargetValue0, 0xabc000);
        assert_eq!(
            vmx_exit_for(GuestInstr::MovToCr(CrIndex::Cr3, 0xabc000), &v),
            None
        );
        assert_eq!(
            vmx_exit_for(GuestInstr::MovToCr(CrIndex::Cr3, 0xdef000), &v),
            Some(ExitReason::CrAccess)
        );
    }

    #[test]
    fn msr_bitmap_passthrough() {
        let mut v = vmcs();
        let procv = v.read(VmcsField::CpuBasedVmExecControl) | proc::USE_MSR_BITMAPS as u64;
        v.write(VmcsField::CpuBasedVmExecControl, procv);
        assert_eq!(
            vmx_exit_for(GuestInstr::Rdmsr(Msr::FsBase.index()), &v),
            None
        );
        assert_eq!(
            vmx_exit_for(GuestInstr::Rdmsr(Msr::Efer.index()), &v),
            Some(ExitReason::Rdmsr)
        );
    }

    #[test]
    fn svm_intercept_driven_exits() {
        let vmcb = golden_vmcb();
        assert_eq!(
            svm_exit_for(GuestInstr::Vmrun(0), &vmcb),
            Some(SvmExitCode::Vmrun)
        );
        assert_eq!(
            svm_exit_for(GuestInstr::Cpuid(0), &vmcb),
            Some(SvmExitCode::Cpuid)
        );
        assert_eq!(svm_exit_for(GuestInstr::Hlt, &vmcb), Some(SvmExitCode::Hlt));
        assert_eq!(
            svm_exit_for(GuestInstr::In(0x60), &vmcb),
            Some(SvmExitCode::Ioio)
        );
        assert_eq!(svm_exit_for(GuestInstr::Nop, &vmcb), None);
        let mut quiet = vmcb;
        quiet.control.intercepts = intercept::VMRUN;
        assert_eq!(svm_exit_for(GuestInstr::Cpuid(0), &quiet), None);
    }
}
