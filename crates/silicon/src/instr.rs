//! The guest-instruction model.
//!
//! These are the instruction templates of the paper's Table 1: the
//! exit-triggering instructions the VM execution harness selects and
//! parameterizes from fuzzing input, wrapped with minimal setup logic.
//! Both the silicon model (to decide exits) and the hypervisors (to
//! emulate L1 execution) consume this type.

/// A control register targeted by `mov cr*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrIndex {
    /// `CR0`.
    Cr0,
    /// `CR3`.
    Cr3,
    /// `CR4`.
    Cr4,
    /// `CR8` (TPR).
    Cr8,
}

/// One guest instruction, possibly with operands derived from fuzz input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuestInstr {
    // --- VMX instructions (Table 1, class "VMX Instructions").
    /// `vmxon` with the VMXON-region physical address.
    Vmxon(u64),
    /// `vmxoff`.
    Vmxoff,
    /// `vmclear` with a VMCS physical address.
    Vmclear(u64),
    /// `vmptrld` with a VMCS physical address.
    Vmptrld(u64),
    /// `vmptrst`.
    Vmptrst,
    /// `vmread` of a field encoding.
    Vmread(u32),
    /// `vmwrite` of a field encoding with a value.
    Vmwrite(u32, u64),
    /// `vmlaunch`.
    Vmlaunch,
    /// `vmresume`.
    Vmresume,
    /// `vmcall`.
    Vmcall,
    /// `invept` with type operand.
    Invept(u64),
    /// `invvpid` with type operand.
    Invvpid(u64),
    // --- SVM instructions (AMD side of the same class).
    /// `vmrun` with the VMCB physical address in `rax`.
    Vmrun(u64),
    /// `vmload` with the VMCB physical address.
    Vmload(u64),
    /// `vmsave` with the VMCB physical address.
    Vmsave(u64),
    /// `stgi`.
    Stgi,
    /// `clgi`.
    Clgi,
    /// `vmmcall`.
    Vmmcall,
    /// `skinit`.
    Skinit,
    // --- Privileged register access (Table 1, class "Privileged Registers").
    /// `mov cr, reg` — write `value` into the control register.
    MovToCr(CrIndex, u64),
    /// `mov reg, cr` — read a control register.
    MovFromCr(CrIndex),
    /// `mov dr, reg` — write a debug register (index 0..=7).
    MovToDr(u8, u64),
    /// `mov reg, dr` — read a debug register.
    MovFromDr(u8),
    // --- I/O and MSR operations (Table 1, class "I/O and MSR Operations").
    /// `in` from a port.
    In(u16),
    /// `out` to a port with a value.
    Out(u16, u32),
    /// `rdmsr` of an MSR index.
    Rdmsr(u32),
    /// `wrmsr` of an MSR index with a value.
    Wrmsr(u32, u64),
    // --- Miscellaneous intercepted instructions (Table 1, class "Misc").
    /// `cpuid` with a leaf.
    Cpuid(u32),
    /// `hlt`.
    Hlt,
    /// `rdtsc`.
    Rdtsc,
    /// `rdtscp`.
    Rdtscp,
    /// `pause`.
    Pause,
    /// `rdrand`.
    Rdrand,
    /// `rdseed`.
    Rdseed,
    /// `rdpmc`.
    Rdpmc,
    /// `invlpg` of a linear address.
    Invlpg(u64),
    /// `invpcid` with a type operand.
    Invpcid(u64),
    /// `wbinvd`.
    Wbinvd,
    /// `monitor`.
    Monitor,
    /// `mwait`.
    Mwait,
    /// `xsetbv` with a value for `XCR0`.
    Xsetbv(u64),
    /// A guest memory access at a linear address (drives EPT-violation,
    /// #GP, and triple-fault paths).
    TouchMemory(u64),
    /// A plain ALU instruction that never exits (noise in the stream).
    Nop,
}

/// Instruction classes of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// VMX/SVM instructions, emulated by the L0 hypervisor.
    VmxInstruction,
    /// Privileged register access, commonly intercepted.
    PrivilegedRegister,
    /// I/O and MSR operations, selectively intercepted via bitmaps.
    IoMsr,
    /// Miscellaneous commonly intercepted instructions.
    Misc,
    /// Instructions that execute natively without exiting.
    Plain,
}

impl GuestInstr {
    /// Returns the Table 1 class of the instruction.
    pub const fn class(self) -> InstrClass {
        use GuestInstr::*;
        match self {
            Vmxon(_) | Vmxoff | Vmclear(_) | Vmptrld(_) | Vmptrst | Vmread(_) | Vmwrite(..)
            | Vmlaunch | Vmresume | Vmcall | Invept(_) | Invvpid(_) | Vmrun(_) | Vmload(_)
            | Vmsave(_) | Stgi | Clgi | Vmmcall | Skinit => InstrClass::VmxInstruction,
            MovToCr(..) | MovFromCr(_) | MovToDr(..) | MovFromDr(_) => {
                InstrClass::PrivilegedRegister
            }
            In(_) | Out(..) | Rdmsr(_) | Wrmsr(..) => InstrClass::IoMsr,
            Cpuid(_) | Hlt | Rdtsc | Rdtscp | Pause | Rdrand | Rdseed | Rdpmc | Invlpg(_)
            | Invpcid(_) | Wbinvd | Monitor | Mwait | Xsetbv(_) => InstrClass::Misc,
            TouchMemory(_) | Nop => InstrClass::Plain,
        }
    }

    /// Returns `true` if the instruction requires CPL 0.
    pub const fn privileged(self) -> bool {
        !matches!(
            self,
            GuestInstr::Cpuid(_)
                | GuestInstr::Pause
                | GuestInstr::Rdrand
                | GuestInstr::Rdseed
                | GuestInstr::Rdtsc
                | GuestInstr::Nop
                | GuestInstr::TouchMemory(_)
                | GuestInstr::Vmcall
                | GuestInstr::Vmmcall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        assert_eq!(GuestInstr::Vmlaunch.class(), InstrClass::VmxInstruction);
        assert_eq!(GuestInstr::Vmrun(0).class(), InstrClass::VmxInstruction);
        assert_eq!(
            GuestInstr::MovToCr(CrIndex::Cr0, 0).class(),
            InstrClass::PrivilegedRegister
        );
        assert_eq!(GuestInstr::In(0x60).class(), InstrClass::IoMsr);
        assert_eq!(GuestInstr::Rdmsr(0x10).class(), InstrClass::IoMsr);
        assert_eq!(GuestInstr::Cpuid(0).class(), InstrClass::Misc);
        assert_eq!(GuestInstr::Nop.class(), InstrClass::Plain);
    }

    #[test]
    fn privilege_model() {
        assert!(GuestInstr::Vmxon(0).privileged());
        assert!(GuestInstr::Hlt.privileged());
        assert!(GuestInstr::Wrmsr(0x10, 0).privileged());
        assert!(!GuestInstr::Cpuid(0).privileged());
        assert!(!GuestInstr::Pause.privileged());
    }
}
