//! The physical CPU's `VMRUN` checks (AMD APM Vol. 2, §15.5).
//!
//! AMD reports every illegal VMCB state with a single exit code,
//! `VMEXIT_INVALID`, rather than Intel's per-group error numbers — which
//! is why the paper's AMD-side validator matters even more: software gets
//! no hint which field was wrong.
//!
//! One architectural *ambiguity* is modeled deliberately: a VMCB with
//! `EFER.LMA = 1` while `CR0.PG = 0` is **accepted** by the silicon, as
//! the APM does not specify a consistency check for it (the paper's Xen
//! bugs #5/#6 live exactly in this gap).

use nf_vmx::vmcb::{intercept, Vmcb};
use nf_x86::addr::phys_in_width;
use nf_x86::msr::pat_valid;
use nf_x86::{ArchError, Cr0, Cr4, Efer};

/// Why a `vmrun` rejected its VMCB (all map to `VMEXIT_INVALID`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmrunFailure(pub ArchError);

/// Outcome of a successful `vmrun`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmrunOutcome {
    /// Whether the guest can make forward progress.
    pub runnable: bool,
}

fn fail(rule: &'static str, detail: String) -> VmrunFailure {
    VmrunFailure(ArchError::new(rule, detail))
}

/// The canonicalization checks `vmrun` performs before entering the
/// guest (APM 15.5.1 "Canonicalization and Consistency Checks").
pub fn check_vmrun(vmcb: &Vmcb, host_efer_svme: bool) -> Result<VmrunOutcome, VmrunFailure> {
    if !host_efer_svme {
        return Err(fail("svm.host_svme", "EFER.SVME clear in host".into()));
    }

    let c = &vmcb.control;
    let s = &vmcb.save;

    if c.intercepts & intercept::VMRUN == 0 {
        return Err(fail(
            "svm.vmrun_intercept",
            "VMRUN intercept bit clear".into(),
        ));
    }
    if c.guest_asid == 0 {
        return Err(fail(
            "svm.asid_zero",
            "guest ASID 0 is reserved for the host".into(),
        ));
    }

    let efer = Efer::new(s.efer);
    if let Err(e) = efer.check_reserved() {
        return Err(fail("svm.efer_reserved", e.detail));
    }
    if !efer.has(Efer::SVME) {
        return Err(fail(
            "svm.guest_svme",
            "EFER.SVME must be set in the VMCB".into(),
        ));
    }

    // CR0 checks: upper 32 bits MBZ, CD=0 with NW=1 illegal.
    if s.cr0 >> 32 != 0 {
        return Err(fail(
            "svm.cr0_upper",
            format!("CR0 {:#x} bits 63:32 set", s.cr0),
        ));
    }
    let cr0 = Cr0::new(s.cr0);
    if cr0.has(Cr0::NW) && !cr0.has(Cr0::CD) {
        return Err(fail("svm.cr0_nw_cd", "CR0.NW=1 with CR0.CD=0".into()));
    }

    // CR3 MBZ bits.
    if !phys_in_width(s.cr3) {
        return Err(fail(
            "svm.cr3_mbz",
            format!("CR3 {:#x} exceeds physical width", s.cr3),
        ));
    }

    // CR4 reserved bits.
    let cr4 = Cr4::new(s.cr4);
    if cr4.reserved_set() != 0 {
        return Err(fail(
            "svm.cr4_reserved",
            format!("CR4 {:#x} reserved bits {:#x}", s.cr4, cr4.reserved_set()),
        ));
    }

    // DR6/DR7 upper 32 bits MBZ.
    if s.dr6 >> 32 != 0 || s.dr7 >> 32 != 0 {
        return Err(fail("svm.dr_upper", "DR6/DR7 bits 63:32 set".into()));
    }

    // Long-mode consistency (APM 15.5.1): LME && PG requires PAE; with a
    // long-mode CS, CS.L && CS.D is illegal.
    if efer.has(Efer::LME) && cr0.has(Cr0::PG) {
        if !cr4.has(Cr4::PAE) {
            return Err(fail(
                "svm.lme_pg_pae",
                "EFER.LME && CR0.PG with CR4.PAE=0".into(),
            ));
        }
        if !cr0.has(Cr0::PE) {
            return Err(fail(
                "svm.lme_pg_pe",
                "EFER.LME && CR0.PG with CR0.PE=0".into(),
            ));
        }
        if s.cs.ar.long() && s.cs.ar.db() {
            return Err(fail(
                "svm.cs_l_d",
                "CS.L and CS.D both set in long mode".into(),
            ));
        }
    }
    // NOTE: EFER.LMA=1 with CR0.PG=0 is *not* rejected — the APM leaves
    // this combination unspecified, and real parts accept it. Hypervisors
    // that assume it cannot happen (Xen issues #215/#216) corrupt state.

    // Nested paging: nCR3 must fit the physical width when enabled.
    if c.np_enable & 1 != 0 && !phys_in_width(c.ncr3) {
        return Err(fail(
            "svm.ncr3",
            format!("nCR3 {:#x} exceeds physical width", c.ncr3),
        ));
    }

    // Permission-map physical addresses.
    if !phys_in_width(c.iopm_base_pa) || !phys_in_width(c.msrpm_base_pa) {
        return Err(fail(
            "svm.pm_base",
            "IOPM/MSRPM base exceeds physical width".into(),
        ));
    }

    // PAT validity when nested paging is on (the guest PAT is used).
    if c.np_enable & 1 != 0 && !pat_valid(s.g_pat) {
        return Err(fail("svm.g_pat", format!("G_PAT {:#x} invalid", s.g_pat)));
    }

    let shutdown = Efer::new(s.efer).has(Efer::LMA) && !cr0.has(Cr0::PG);
    Ok(VmrunOutcome {
        // The ambiguous LMA&&!PG state enters but the guest is in a mode
        // hardware never architecturally defines; it stalls rather than
        // executing (observed behaviour the paper's bug #5 relies on).
        runnable: !shutdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::golden_vmcb;

    #[test]
    fn golden_vmcb_runs() {
        let out = check_vmrun(&golden_vmcb(), true).expect("golden VMCB must run");
        assert!(out.runnable);
    }

    #[test]
    fn svme_required_on_both_sides() {
        let vmcb = golden_vmcb();
        assert_eq!(
            check_vmrun(&vmcb, false).unwrap_err().0.rule,
            "svm.host_svme"
        );
        let mut v = vmcb;
        v.save.efer &= !Efer::SVME;
        assert_eq!(check_vmrun(&v, true).unwrap_err().0.rule, "svm.guest_svme");
    }

    #[test]
    fn vmrun_intercept_mandatory() {
        let mut v = golden_vmcb();
        v.control.intercepts &= !intercept::VMRUN;
        assert_eq!(
            check_vmrun(&v, true).unwrap_err().0.rule,
            "svm.vmrun_intercept"
        );
    }

    #[test]
    fn asid_zero_rejected() {
        let mut v = golden_vmcb();
        v.control.guest_asid = 0;
        assert_eq!(check_vmrun(&v, true).unwrap_err().0.rule, "svm.asid_zero");
    }

    #[test]
    fn long_mode_without_pae_rejected() {
        let mut v = golden_vmcb();
        v.save.cr4 = 0;
        assert_eq!(check_vmrun(&v, true).unwrap_err().0.rule, "svm.lme_pg_pae");
    }

    #[test]
    fn ambiguous_lma_without_pg_accepted_but_stalls() {
        // The APM gap behind Xen issues #215/#216: hardware accepts it.
        let mut v = golden_vmcb();
        v.save.cr0 &= !Cr0::PG;
        // Keep LMA set in EFER (stale from a previous 64-bit run).
        let out = check_vmrun(&v, true).expect("ambiguous state is accepted");
        assert!(!out.runnable, "LMA && !PG guest stalls");
    }

    #[test]
    fn cr0_upper_bits_rejected() {
        let mut v = golden_vmcb();
        v.save.cr0 |= 1 << 40;
        assert_eq!(check_vmrun(&v, true).unwrap_err().0.rule, "svm.cr0_upper");
    }

    #[test]
    fn cs_l_and_d_rejected_in_long_mode() {
        let mut v = golden_vmcb();
        v.save.cs.ar.0 |= (1 << 13) | (1 << 14);
        assert_eq!(check_vmrun(&v, true).unwrap_err().0.rule, "svm.cs_l_d");
    }

    #[test]
    fn invalid_gpat_rejected_with_np() {
        let mut v = golden_vmcb();
        v.save.g_pat = 2;
        assert_eq!(check_vmrun(&v, true).unwrap_err().0.rule, "svm.g_pat");
        // Without nested paging G_PAT is ignored.
        v.control.np_enable = 0;
        assert!(check_vmrun(&v, true).is_ok());
    }
}
