//! Hardware rules for the individual VMX instructions (SDM ch. 30).
//!
//! These are the checks the physical CPU performs when a hypervisor
//! executes `vmxon`/`vmclear`/`vmptrld`/`vmwrite`/... in root mode.
//! An L0 hypervisor that emulates nested virtualization must replicate
//! them for its L1 guests; the helpers live here so that the faithful
//! parts of each hypervisor can share one definition while their seeded
//! deviations remain local to the hypervisor.

use nf_vmx::{VmcsField, VmcsState};
use nf_x86::addr::{page_aligned, phys_in_width};
use nf_x86::{ArchError, ArchResult, Cr0, Cr4, Efer};

/// VM-instruction error numbers (SDM 30.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum VmInstrError {
    /// `VMfailInvalid`: no current VMCS (reported via `RFLAGS.CF`).
    FailInvalid = 0,
    /// VMCALL executed in VMX root operation.
    VmcallInRoot = 1,
    /// VMCLEAR with invalid physical address.
    VmclearBadAddress = 2,
    /// VMCLEAR with the VMXON pointer.
    VmclearVmxonPointer = 3,
    /// VMLAUNCH with non-clear VMCS.
    VmlaunchNonClear = 4,
    /// VMRESUME with non-launched VMCS.
    VmresumeNonLaunched = 5,
    /// VM entry with invalid control fields.
    EntryInvalidControls = 7,
    /// VM entry with invalid host state.
    EntryInvalidHostState = 8,
    /// VMPTRLD with invalid physical address.
    VmptrldBadAddress = 9,
    /// VMPTRLD with the VMXON pointer.
    VmptrldVmxonPointer = 10,
    /// VMPTRLD with incorrect VMCS revision identifier.
    VmptrldBadRevision = 11,
    /// VMREAD/VMWRITE to unsupported field.
    BadField = 12,
    /// VMWRITE to a read-only field.
    VmwriteReadOnly = 13,
    /// VMXON executed in VMX root operation.
    VmxonInRoot = 15,
}

/// Checks the preconditions of `vmxon` (SDM 30.3 "VMXON").
pub fn vmxon_check(cr0: Cr0, cr4: Cr4, efer: Efer, region: u64) -> ArchResult {
    if !cr4.has(Cr4::VMXE) {
        return Err(ArchError::new(
            "vmxon.vmxe",
            "CR4.VMXE must be set before vmxon",
        ));
    }
    if !cr0.has(Cr0::PE) || !cr0.has(Cr0::NE) || !cr0.has(Cr0::PG) {
        return Err(ArchError::new(
            "vmxon.cr0",
            "vmxon requires CR0.PE, CR0.NE and CR0.PG",
        ));
    }
    // Long-mode consistency is a #GP source, not a VMfail.
    let _ = efer;
    if !page_aligned(region) || !phys_in_width(region) {
        return Err(ArchError::new(
            "vmxon.region",
            format!("VMXON region {region:#x} misaligned or out of range"),
        ));
    }
    Ok(())
}

/// Checks a `vmclear` operand (SDM 30.3 "VMCLEAR").
pub fn vmclear_check(addr: u64, vmxon_region: u64) -> Result<(), VmInstrError> {
    if !page_aligned(addr) || !phys_in_width(addr) {
        return Err(VmInstrError::VmclearBadAddress);
    }
    if addr == vmxon_region {
        return Err(VmInstrError::VmclearVmxonPointer);
    }
    Ok(())
}

/// Checks a `vmptrld` operand (SDM 30.3 "VMPTRLD").
pub fn vmptrld_check(
    addr: u64,
    vmxon_region: u64,
    region_revision: u32,
    cpu_revision: u32,
) -> Result<(), VmInstrError> {
    if !page_aligned(addr) || !phys_in_width(addr) {
        return Err(VmInstrError::VmptrldBadAddress);
    }
    if addr == vmxon_region {
        return Err(VmInstrError::VmptrldVmxonPointer);
    }
    if region_revision != cpu_revision {
        return Err(VmInstrError::VmptrldBadRevision);
    }
    Ok(())
}

/// Checks a `vmwrite` target field (SDM 30.3 "VMWRITE").
pub fn vmwrite_check(encoding: u32) -> Result<VmcsField, VmInstrError> {
    let field = VmcsField::from_encoding(encoding).ok_or(VmInstrError::BadField)?;
    if !field.writable() {
        return Err(VmInstrError::VmwriteReadOnly);
    }
    Ok(field)
}

/// Checks a `vmread` source field.
pub fn vmread_check(encoding: u32) -> Result<VmcsField, VmInstrError> {
    VmcsField::from_encoding(encoding).ok_or(VmInstrError::BadField)
}

/// Checks the launch-state rule of `vmlaunch`/`vmresume` (SDM 26.1).
pub fn launch_state_check(state: VmcsState, is_resume: bool) -> Result<(), VmInstrError> {
    match (is_resume, state) {
        (false, VmcsState::Clear | VmcsState::Loaded) => Ok(()),
        (false, VmcsState::Launched) => Err(VmInstrError::VmlaunchNonClear),
        (true, VmcsState::Launched) => Ok(()),
        (true, _) => Err(VmInstrError::VmresumeNonLaunched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vmx_regs() -> (Cr0, Cr4, Efer) {
        (
            Cr0::new(Cr0::PE | Cr0::PG | Cr0::NE),
            Cr4::new(Cr4::VMXE | Cr4::PAE),
            Efer::new(Efer::LME | Efer::LMA),
        )
    }

    #[test]
    fn vmxon_requires_vmxe_and_cr0_bits() {
        let (cr0, cr4, efer) = vmx_regs();
        assert!(vmxon_check(cr0, cr4, efer, 0x1000).is_ok());
        assert!(vmxon_check(cr0, Cr4::new(Cr4::PAE), efer, 0x1000).is_err());
        assert!(vmxon_check(Cr0::new(Cr0::PE), cr4, efer, 0x1000).is_err());
        assert!(vmxon_check(cr0, cr4, efer, 0x1001).is_err());
    }

    #[test]
    fn vmclear_vmptrld_pointer_rules() {
        assert_eq!(
            vmclear_check(0x3000, 0x3000),
            Err(VmInstrError::VmclearVmxonPointer)
        );
        assert_eq!(
            vmclear_check(0x123, 0x3000),
            Err(VmInstrError::VmclearBadAddress)
        );
        assert!(vmclear_check(0x4000, 0x3000).is_ok());

        assert_eq!(
            vmptrld_check(0x3000, 0x3000, 0, 0),
            Err(VmInstrError::VmptrldVmxonPointer)
        );
        assert_eq!(
            vmptrld_check(0x4000, 0x3000, 1, 2),
            Err(VmInstrError::VmptrldBadRevision)
        );
        assert!(vmptrld_check(0x4000, 0x3000, 7, 7).is_ok());
    }

    #[test]
    fn vmwrite_rejects_read_only_and_unknown_fields() {
        assert!(vmwrite_check(VmcsField::GuestCr0.encoding()).is_ok());
        assert_eq!(
            vmwrite_check(VmcsField::VmExitReason.encoding()),
            Err(VmInstrError::VmwriteReadOnly)
        );
        assert_eq!(vmwrite_check(0xdead_0000), Err(VmInstrError::BadField));
        assert!(vmread_check(VmcsField::VmExitReason.encoding()).is_ok());
    }

    #[test]
    fn launch_state_machine() {
        assert!(launch_state_check(VmcsState::Clear, false).is_ok());
        assert!(launch_state_check(VmcsState::Loaded, false).is_ok());
        assert_eq!(
            launch_state_check(VmcsState::Launched, false),
            Err(VmInstrError::VmlaunchNonClear)
        );
        assert!(launch_state_check(VmcsState::Launched, true).is_ok());
        assert_eq!(
            launch_state_check(VmcsState::Clear, true),
            Err(VmInstrError::VmresumeNonLaunched)
        );
    }
}
