//! Structure-aware scenario mutation: a typed IR over the 2 KiB input
//! and a weighted profile of section-aware mutation operators.
//!
//! The agent partitions the fuzz input across the harness, validator,
//! and configurator (paper §3.2), but byte-blind havoc knows nothing of
//! that partition: bit flips land mid-way through VMCS field encodings
//! and init-step argument pairs, so most children are semantically dead
//! and the snapshot engine's throughput win is spent re-executing
//! noise. Interface-format-aware virtualization fuzzers (IRIS, FuzzBox)
//! mutate at the granularity of the target's actual interface objects;
//! this module brings that to the scenario level:
//!
//! - [`InputLayout`] — the single shared schema of the input's seven
//!   sections. Both sides of the stack consume it: the mutators here
//!   and the `InputView`/harness/validator decode in `necofuzz`. No
//!   other code states a section offset.
//! - [`Scenario`] — a typed, **lossless** IR of one input:
//!   [`Scenario::decode`] ∘ [`Scenario::encode`] is the identity on
//!   every 2 KiB input (property-tested), so structured mutation
//!   composes with splicing, persistence, and replay.
//! - [`Operator`] — the section-aware operators: init-step
//!   reorder/duplicate/drop/argument mutation, 4-byte-aligned
//!   runtime-step opcode and operand mutation, VMCS mutation at field
//!   granularity (driven by the `nf_vmx::field` width/offset tables),
//!   MSR-area entry mutation over the `nf_x86::msr` index dictionary,
//!   vCPU feature-bit flips, and AFL-parity wide interesting values.
//! - [`MutatorProfile`] — weighted operator scheduling that adapts:
//!   operators whose offspring get queued earn weight, so the profile
//!   drifts toward whatever the target currently rewards.
//!
//! Everything is a pure function of the RNG stream, so structured
//! campaigns are exactly as reproducible as havoc ones.

use std::ops::Range;

use nf_vmx::{MsrArea, Vmcs, VmcsField};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{FuzzInput, INPUT_LEN};

/// One contiguous section of the 2 KiB input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSpan {
    /// Byte offset of the section inside the input.
    pub offset: usize,
    /// Section length in bytes.
    pub len: usize,
}

impl SectionSpan {
    /// First byte past the section.
    pub const fn end(self) -> usize {
        self.offset + self.len
    }

    /// The section immediately following this one.
    pub const fn then(self, len: usize) -> SectionSpan {
        SectionSpan {
            offset: self.end(),
            len,
        }
    }

    /// The section as an index range.
    pub fn range(self) -> Range<usize> {
        self.offset..self.end()
    }
}

/// The single shared schema of the 2 KiB fuzz input.
///
/// Section offsets are derived, never stated: each span is defined as
/// `then(len)` of its predecessor, and the lengths of the structured
/// sections come from the structures themselves ([`Vmcs::BYTES`],
/// [`MsrArea::ENTRY_BYTES`]). A layout-guard test asserts no raw
/// section offset survives anywhere else in the workspace.
pub struct InputLayout;

impl InputLayout {
    /// Meta bytes: phase gates, iteration limits.
    pub const META: SectionSpan = SectionSpan { offset: 0, len: 8 };
    /// Init-phase template mutations (order/argument/repetition).
    pub const INIT: SectionSpan = Self::META.then(64);
    /// Runtime-phase instruction selection and arguments.
    pub const RUNTIME: SectionSpan = Self::INIT.then(Self::RUNTIME_STEPS * Self::STEP_BYTES);
    /// Raw VMCS seed (the full serialized 8000-bit layout; reused as
    /// the VMCB seed on AMD).
    pub const VMCS_SEED: SectionSpan = Self::RUNTIME.then(Vmcs::BYTES);
    /// Post-rounding selective-invalidation directives.
    pub const MUTATE: SectionSpan = Self::VMCS_SEED.then(28);
    /// vCPU configuration bit-array.
    pub const VCPU_CFG: SectionSpan = Self::MUTATE.then(8);
    /// MSR-load-area entries.
    pub const MSR_AREA: SectionSpan = Self::VCPU_CFG.then(Self::MSR_ENTRIES * MsrArea::ENTRY_BYTES);
    /// Unassigned padding up to the 2 KiB input end.
    pub const TAIL: SectionSpan = SectionSpan {
        offset: Self::MSR_AREA.end(),
        len: INPUT_LEN - Self::MSR_AREA.end(),
    };

    /// Bytes per runtime step record (selector + two operands + context).
    pub const STEP_BYTES: usize = 4;
    /// Number of runtime step records.
    pub const RUNTIME_STEPS: usize = 80;
    /// Number of MSR-load-area entries.
    pub const MSR_ENTRIES: usize = 8;

    /// `(ctrl, arg)` pairs steering per-init-step argument corruption.
    pub const INIT_PAIRS: usize = 12;
    /// Offset (inside [`Self::INIT`]) of the adjacent-swap directives:
    /// a count byte followed by swap indices.
    pub const INIT_ORDER: usize = Self::INIT_PAIRS * 2;
    /// Maximum adjacent swaps the harness performs (the count byte is
    /// taken modulo `INIT_SWAPS_MAX + 1`), so only the first
    /// `INIT_SWAPS_MAX` index bytes after the count are live.
    pub const INIT_SWAPS_MAX: usize = 2;
    /// Length of the swap-directive block.
    pub const INIT_ORDER_LEN: usize = 6;
    /// Offset (inside [`Self::INIT`]) of the duplication directive pair.
    pub const INIT_DUP: usize = Self::INIT_ORDER + Self::INIT_ORDER_LEN;
    /// Offset (inside [`Self::INIT`]) of the drop directive pair.
    pub const INIT_DROP: usize = Self::INIT_DUP + 2;
    /// Offset (inside [`Self::INIT`]) of the unassigned init bytes.
    pub const INIT_REST: usize = Self::INIT_DROP + 2;
}

/// FNV-1a offset basis: the root of every scenario-prefix hash chain
/// (the same constants as the hypervisor state digests, so the two
/// hash families stay consistent across the workspace).
const PREFIX_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PREFIX_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The root of a scenario-prefix hash chain (the empty prefix).
///
/// The prefix cache keys mid-scenario snapshots by a rolling hash over
/// everything that shapes execution up to an instruction boundary:
/// callers fold the execution context (hypervisor config, generated
/// VMCS/VMCB/MSR images) into the root first, then extend once per
/// scenario instruction. Two inputs share a cached ancestor exactly
/// when their chains agree through that boundary.
pub const fn prefix_root() -> u64 {
    PREFIX_OFFSET
}

/// Extends a rolling scenario-prefix hash with one canonical byte unit.
///
/// Pure FNV-1a over the bytes, seeded by `h` — associative-free and
/// order-sensitive, so `prefix_extend(prefix_extend(root, a), b)`
/// differs from any reordering. Callers frame variable-length units
/// with [`prefix_extend_u64`] discriminants to keep encodings
/// prefix-free.
pub fn prefix_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(PREFIX_PRIME);
    }
    h
}

/// Extends a rolling scenario-prefix hash with one little-endian `u64`
/// (discriminants, lengths, digests).
pub fn prefix_extend_u64(h: u64, v: u64) -> u64 {
    prefix_extend(h, &v.to_le_bytes())
}

/// The scheduling affinity key of an input: a hash of every section
/// that shapes the *early* execution prefix (init directives, VMCS
/// seed, invalidation directives, vCPU config, MSR area, and the first
/// half of the runtime steps). Corpus scheduling batches consecutive
/// parents by this key so back-to-back executions share deep snapshot
/// ancestors; it is a pure function of the input bytes and is never
/// persisted.
pub fn prefix_affinity(input: &FuzzInput) -> u64 {
    let sec = |s: SectionSpan| &input.bytes[s.range()];
    let mut h = prefix_root();
    h = prefix_extend(h, sec(InputLayout::INIT));
    h = prefix_extend(h, sec(InputLayout::VMCS_SEED));
    h = prefix_extend(h, sec(InputLayout::MUTATE));
    h = prefix_extend(h, sec(InputLayout::VCPU_CFG));
    h = prefix_extend(h, sec(InputLayout::MSR_AREA));
    let runtime = sec(InputLayout::RUNTIME);
    prefix_extend(h, &runtime[..runtime.len() / 2])
}

/// The init section, decoded: the knobs `ExecutionHarness::mutated_plan`
/// reads, each in its own field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitDirectives {
    /// `(ctrl, arg)` pairs: the high ctrl nibble selects a corruption
    /// arm per canonical init step, `arg` parameterizes it.
    pub args: Vec<(u8, u8)>,
    /// Adjacent-swap directives: count byte, then swap indices.
    pub order: Vec<u8>,
    /// Step-duplication directive `(gate, index)`.
    pub dup: (u8, u8),
    /// Step-drop directive `(gate, index)`.
    pub drop: (u8, u8),
    /// Unassigned init bytes (kept for lossless round-trip).
    pub rest: Vec<u8>,
}

/// One 4-byte runtime step record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStep {
    /// Instruction-template selector (Table 1 row).
    pub sel: u8,
    /// First operand byte.
    pub a: u8,
    /// Second operand byte.
    pub b: u8,
    /// Context byte.
    pub ctx: u8,
}

/// One MSR-load-area slot: `(index, value)` as the harness stages it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsrSlot {
    /// Raw MSR index.
    pub index: u32,
    /// Raw value (value legality is exactly what the L0 must check).
    pub value: u64,
}

/// A typed, lossless view of one 2 KiB fuzz input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Meta bytes.
    pub meta: Vec<u8>,
    /// Init-phase directives.
    pub init: InitDirectives,
    /// Runtime steps, 4-byte aligned.
    pub runtime: Vec<RuntimeStep>,
    /// The raw VMCS seed bytes (field-granular access via
    /// [`Scenario::read_field`]/[`Scenario::write_field`]).
    pub vmcs_seed: Vec<u8>,
    /// Selective-invalidation directives.
    pub directives: Vec<u8>,
    /// The vCPU configuration word.
    pub vcpu_cfg: u64,
    /// MSR-load-area slots.
    pub msr_area: Vec<MsrSlot>,
    /// Unassigned tail bytes (kept for lossless round-trip).
    pub tail: Vec<u8>,
}

impl Scenario {
    /// Decodes an input into the typed IR. Total: every byte of the
    /// input lands in exactly one field, so [`Scenario::encode`]
    /// reproduces the input bit-identically.
    pub fn decode(input: &FuzzInput) -> Scenario {
        let bytes = &input.bytes;
        let sec = |s: SectionSpan| &bytes[s.range()];

        let init_bytes = sec(InputLayout::INIT);
        let init = InitDirectives {
            args: (0..InputLayout::INIT_PAIRS)
                .map(|i| (init_bytes[i * 2], init_bytes[i * 2 + 1]))
                .collect(),
            order: init_bytes[InputLayout::INIT_ORDER..InputLayout::INIT_DUP].to_vec(),
            dup: (
                init_bytes[InputLayout::INIT_DUP],
                init_bytes[InputLayout::INIT_DUP + 1],
            ),
            drop: (
                init_bytes[InputLayout::INIT_DROP],
                init_bytes[InputLayout::INIT_DROP + 1],
            ),
            rest: init_bytes[InputLayout::INIT_REST..].to_vec(),
        };

        let runtime = sec(InputLayout::RUNTIME)
            .chunks(InputLayout::STEP_BYTES)
            .map(|c| RuntimeStep {
                sel: c[0],
                a: c[1],
                b: c[2],
                ctx: c[3],
            })
            .collect();

        let msr_area = sec(InputLayout::MSR_AREA)
            .chunks(MsrArea::ENTRY_BYTES)
            .map(|c| MsrSlot {
                index: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                value: u64::from_le_bytes([c[4], c[5], c[6], c[7], c[8], c[9], c[10], c[11]]),
            })
            .collect();

        Scenario {
            meta: sec(InputLayout::META).to_vec(),
            init,
            runtime,
            vmcs_seed: sec(InputLayout::VMCS_SEED).to_vec(),
            directives: sec(InputLayout::MUTATE).to_vec(),
            vcpu_cfg: input.u64_at(InputLayout::VCPU_CFG.offset),
            msr_area,
            tail: sec(InputLayout::TAIL).to_vec(),
        }
    }

    /// Serializes the IR back into the 2 KiB input layout.
    pub fn encode(&self) -> FuzzInput {
        let mut bytes = vec![0u8; INPUT_LEN];
        bytes[InputLayout::META.range()].copy_from_slice(&self.meta);

        let init = &mut bytes[InputLayout::INIT.range()];
        for (i, &(ctrl, arg)) in self.init.args.iter().enumerate() {
            init[i * 2] = ctrl;
            init[i * 2 + 1] = arg;
        }
        init[InputLayout::INIT_ORDER..InputLayout::INIT_DUP].copy_from_slice(&self.init.order);
        init[InputLayout::INIT_DUP] = self.init.dup.0;
        init[InputLayout::INIT_DUP + 1] = self.init.dup.1;
        init[InputLayout::INIT_DROP] = self.init.drop.0;
        init[InputLayout::INIT_DROP + 1] = self.init.drop.1;
        init[InputLayout::INIT_REST..].copy_from_slice(&self.init.rest);

        for (i, step) in self.runtime.iter().enumerate() {
            let off = InputLayout::RUNTIME.offset + i * InputLayout::STEP_BYTES;
            bytes[off..off + InputLayout::STEP_BYTES]
                .copy_from_slice(&[step.sel, step.a, step.b, step.ctx]);
        }

        bytes[InputLayout::VMCS_SEED.range()].copy_from_slice(&self.vmcs_seed);
        bytes[InputLayout::MUTATE.range()].copy_from_slice(&self.directives);
        bytes[InputLayout::VCPU_CFG.range()].copy_from_slice(&self.vcpu_cfg.to_le_bytes());

        for (i, slot) in self.msr_area.iter().enumerate() {
            let off = InputLayout::MSR_AREA.offset + i * MsrArea::ENTRY_BYTES;
            bytes[off..off + 4].copy_from_slice(&slot.index.to_le_bytes());
            bytes[off + 4..off + 12].copy_from_slice(&slot.value.to_le_bytes());
        }

        bytes[InputLayout::TAIL.range()].copy_from_slice(&self.tail);
        FuzzInput { bytes }
    }

    /// Reads a VMCS field out of the raw seed, at the offset and width
    /// the `nf_vmx::field` tables assign it.
    pub fn read_field(&self, field: VmcsField) -> u64 {
        let mut buf = [0u8; 8];
        let span = &self.vmcs_seed[field.seed_offset()..field.seed_offset() + field.seed_len()];
        buf[..span.len()].copy_from_slice(span);
        u64::from_le_bytes(buf)
    }

    /// Writes a VMCS field into the raw seed, masked to the field width.
    pub fn write_field(&mut self, field: VmcsField, value: u64) {
        let value = value & field.width().mask();
        let le = value.to_le_bytes();
        self.vmcs_seed[field.seed_offset()..field.seed_offset() + field.seed_len()]
            .copy_from_slice(&le[..field.seed_len()]);
    }
}

/// AFL's 8-bit interesting values.
pub const INTERESTING_8: [i8; 9] = [-128, -1, 0, 1, 16, 32, 64, 100, 127];

/// AFL's 16-bit interesting values (the 8-bit set plus the 16-bit
/// boundary cases).
pub const INTERESTING_16: [i16; 19] = [
    -128, -1, 0, 1, 16, 32, 64, 100, 127, // INTERESTING_8
    -32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767,
];

/// AFL's 32-bit interesting values (the 16-bit set plus the 32-bit
/// boundary cases).
pub const INTERESTING_32: [i32; 27] = [
    -128,
    -1,
    0,
    1,
    16,
    32,
    64,
    100,
    127, // INTERESTING_8
    -32768,
    -129,
    128,
    255,
    256,
    512,
    1000,
    1024,
    4096,
    32767, // 16-bit extension
    -2147483648,
    -100663046,
    -32769,
    32768,
    65535,
    65536,
    100663045,
    2147483647,
];

/// 64-bit interesting values: the 32-bit set extended with the i64
/// extremes and the canonical-address boundaries VM-entry MSR checks
/// care about (CVE-2024-21106 territory).
pub const INTERESTING_64: [i64; 31] = [
    -128,
    -1,
    0,
    1,
    16,
    32,
    64,
    100,
    127, // INTERESTING_8
    -32768,
    -129,
    128,
    255,
    256,
    512,
    1000,
    1024,
    4096,
    32767, // 16-bit extension
    -2147483648,
    -100663046,
    -32769,
    32768,
    65535,
    65536,
    100663045,
    2147483647, // 32-bit extension
    i64::MIN + 1,
    i64::MAX,
    0x0000_7fff_ffff_ffff,           // last canonical low-half address
    0xffff_8000_0000_0000u64 as i64, // first canonical high-half address
];

/// A section-aware mutation operator.
///
/// Operators are the unit of provenance and of adaptive scheduling:
/// every structured child records the operator that produced it, and
/// operators whose children get queued earn scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Mutate one init-step `(ctrl, arg)` pair (argument corruption).
    InitArg,
    /// Mutate the adjacent-swap directives (step reordering).
    InitReorder,
    /// Toggle/retarget the step-duplication directive.
    InitDup,
    /// Toggle/retarget the step-drop directive.
    InitDrop,
    /// Replace runtime-step selectors (4-byte-aligned opcode mutation).
    RuntimeOpcode,
    /// Mutate runtime-step operand/context bytes, selector kept.
    RuntimeOperand,
    /// Mutate whole VMCS fields at their own width and offset.
    VmcsField,
    /// Mutate the selective-invalidation directives the validator reads.
    VmcsDirective,
    /// Rewrite one MSR-area slot from the index dictionary +
    /// interesting values.
    MsrEntry,
    /// Flip vCPU feature / keep-base / nested bits.
    VcpuBits,
    /// AFL-parity wide interesting values: 16/32/64-bit, both
    /// endiannesses, anywhere in the input.
    WideInteresting,
}

impl Operator {
    /// Every operator, in scheduling-table order.
    pub const ALL: [Operator; 11] = [
        Operator::InitArg,
        Operator::InitReorder,
        Operator::InitDup,
        Operator::InitDrop,
        Operator::RuntimeOpcode,
        Operator::RuntimeOperand,
        Operator::VmcsField,
        Operator::VmcsDirective,
        Operator::MsrEntry,
        Operator::VcpuBits,
        Operator::WideInteresting,
    ];

    /// Number of operators.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index into the scheduling tables.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable display name (used by `corpus stat` and the bench JSON).
    pub const fn name(self) -> &'static str {
        match self {
            Operator::InitArg => "init_arg",
            Operator::InitReorder => "init_reorder",
            Operator::InitDup => "init_dup",
            Operator::InitDrop => "init_drop",
            Operator::RuntimeOpcode => "runtime_opcode",
            Operator::RuntimeOperand => "runtime_operand",
            Operator::VmcsField => "vmcs_field",
            Operator::VmcsDirective => "vmcs_directive",
            Operator::MsrEntry => "msr_entry",
            Operator::VcpuBits => "vcpu_bits",
            Operator::WideInteresting => "wide_interesting",
        }
    }

    /// Persistence code (`0` is reserved for "no operator": seeds,
    /// havoc children, unguided inputs).
    pub const fn code(self) -> u8 {
        self as u8 + 1
    }

    /// Inverse of [`Operator::code`].
    pub fn from_code(code: u8) -> Option<Operator> {
        match code {
            0 => None,
            c => Self::ALL.get(c as usize - 1).copied(),
        }
    }
}

/// Initial scheduling weight of every operator.
const BASE_WEIGHT: u32 = 8;
/// Weight earned per queued child.
const CREDIT_STEP: u32 = 2;
/// Adaptive weight ceiling (8x the base: a hot operator dominates
/// without starving the rest).
const WEIGHT_CAP: u32 = 64;

/// Per-operator scheduling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorStats {
    /// The operator.
    pub op: Operator,
    /// Children generated by this operator.
    pub generated: u64,
    /// Children that earned a queue slot (new coverage).
    pub queued: u64,
    /// Current scheduling weight.
    pub weight: u32,
}

/// Persistable snapshot of a [`MutatorProfile`]: the learned weights
/// and lifetime counters. The pending credit stack is deliberately
/// absent — checkpoints are taken at report boundaries, where the
/// credit decision for the last child has already landed and the stack
/// is dead state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileState {
    /// Current scheduling weight per operator, in table order.
    pub weights: [u32; Operator::COUNT],
    /// Children generated per operator.
    pub generated: [u64; Operator::COUNT],
    /// Children queued per operator.
    pub queued: [u64; Operator::COUNT],
}

/// The weighted, adaptive operator scheduler.
///
/// Selection is a weighted draw over [`Operator::ALL`]; a queued child
/// credits its operator with `CREDIT_STEP` weight up to `WEIGHT_CAP`.
/// Pure function of the RNG stream and the credit sequence, so
/// campaigns stay bit-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutatorProfile {
    weights: [u32; Operator::COUNT],
    generated: [u64; Operator::COUNT],
    queued: [u64; Operator::COUNT],
    /// Operators drawn by the most recent [`MutatorProfile::mutate`]
    /// stack, pending a [`MutatorProfile::credit_last`] decision.
    last_stack: Vec<Operator>,
}

impl Default for MutatorProfile {
    fn default() -> Self {
        MutatorProfile::balanced()
    }
}

impl MutatorProfile {
    /// A profile with every operator at the base weight.
    pub fn balanced() -> Self {
        MutatorProfile {
            weights: [BASE_WEIGHT; Operator::COUNT],
            generated: [0; Operator::COUNT],
            queued: [0; Operator::COUNT],
            last_stack: Vec::new(),
        }
    }

    /// Current per-operator statistics, in table order.
    pub fn stats(&self) -> Vec<OperatorStats> {
        Operator::ALL
            .iter()
            .map(|&op| OperatorStats {
                op,
                generated: self.generated[op.index()],
                queued: self.queued[op.index()],
                weight: self.weights[op.index()],
            })
            .collect()
    }

    /// Snapshots the learned weights and counters for persistence.
    pub fn state(&self) -> ProfileState {
        ProfileState {
            weights: self.weights,
            generated: self.generated,
            queued: self.queued,
        }
    }

    /// Rebuilds a scheduler from a persisted snapshot (the inverse of
    /// [`MutatorProfile::state`]); future draws continue exactly as the
    /// snapshotted scheduler's would.
    pub fn from_state(state: ProfileState) -> Self {
        MutatorProfile {
            weights: state.weights,
            generated: state.generated,
            queued: state.queued,
            last_stack: Vec::new(),
        }
    }

    /// Credits an operator whose child was queued: its scheduling
    /// weight grows (capped), so productive operators run more often.
    pub fn credit(&mut self, op: Operator) {
        self.queued[op.index()] += 1;
        self.weights[op.index()] = (self.weights[op.index()] + CREDIT_STEP).min(WEIGHT_CAP);
    }

    /// Weighted operator draw.
    fn pick(&self, rng: &mut SmallRng) -> Operator {
        let total: u32 = self.weights.iter().sum();
        let mut ticket = rng.gen_range(0..total);
        for &op in &Operator::ALL {
            let w = self.weights[op.index()];
            if ticket < w {
                return op;
            }
            ticket -= w;
        }
        Operator::WideInteresting // unreachable: tickets < total
    }

    /// Produces one structured child of `parent`: AFL's havoc stacking
    /// lifted to the operator level (FuzzBox-style format-mutation
    /// blending) — 2..=32 weighted operator draws compose into one
    /// child, each applied at its own internal intensity, so a child
    /// can cross several sections while every individual change stays
    /// semantically aligned. Returns the child and the *lead* (first
    /// drawn) operator for entry provenance; every drawn operator is
    /// remembered for crediting via [`MutatorProfile::credit_last`].
    pub fn mutate(&mut self, parent: &FuzzInput, rng: &mut SmallRng) -> (FuzzInput, Operator) {
        let stacking = 1 << rng.gen_range(1..6); // 2..32 draws (AFL parity)
        self.last_stack.clear();
        // Stay in the IR across scenario draws — decode ∘ encode is the
        // identity, so hopping out only for the byte-level operator
        // composes losslessly while sparing a 2 KiB round-trip per draw.
        let mut scenario = Scenario::decode(parent);
        for _ in 0..stacking {
            let op = self.pick(rng);
            self.generated[op.index()] += 1;
            self.last_stack.push(op);
            match op {
                Operator::WideInteresting => {
                    scenario = Scenario::decode(&wide_interesting(scenario.encode(), rng));
                }
                _ => apply_scenario_op(op, &mut scenario, rng),
            }
        }
        let lead = self.last_stack[0];
        (scenario.encode(), lead)
    }

    /// Credits every operator of the most recent [`mutate`] stack: the
    /// child was queued, so each participating operator earns weight.
    ///
    /// [`mutate`]: MutatorProfile::mutate
    pub fn credit_last(&mut self) {
        let stack = std::mem::take(&mut self.last_stack);
        for &op in &stack {
            self.credit(op);
        }
        self.last_stack = stack;
    }
}

/// The MSR-index fuzz dictionary, built once — `MsrEntry` draws from
/// it on the mutation hot path, and the table never changes.
fn msr_dictionary() -> &'static [u32] {
    static DICT: std::sync::OnceLock<Vec<u32>> = std::sync::OnceLock::new();
    DICT.get_or_init(nf_x86::msr::index_dictionary)
}

/// Applies one scenario-level operator in place.
fn apply_scenario_op(op: Operator, s: &mut Scenario, rng: &mut SmallRng) {
    match op {
        Operator::InitArg => {
            // Retarget 1-4 (ctrl, arg) pairs. The high ctrl nibble is
            // what mutated_plan dispatches on, so draw it from the arm
            // vocabulary (0x1_..0x5_ are live arms; higher nibbles are
            // deliberate no-ops that restore the canonical step).
            for _ in 0..rng.gen_range(1..=4u32) {
                let i = rng.gen_range(0..s.init.args.len());
                let arm = rng.gen_range(0..=7u8);
                let low: u8 = rng.gen();
                s.init.args[i] = (arm << 4 | (low & 0x0f), rng.gen());
            }
        }
        Operator::InitReorder => {
            // New swap count + one retargeted swap index, drawn from
            // the *live* slots only — the harness performs at most
            // INIT_SWAPS_MAX swaps, so the later index bytes are dead
            // and mutating them would produce semantically identical
            // children.
            s.init.order[0] = rng.gen();
            let i = rng.gen_range(1..=InputLayout::INIT_SWAPS_MAX);
            s.init.order[i] = rng.gen();
        }
        Operator::InitDup => {
            // The gate fires on the low bits; half the draws arm it,
            // half disarm, and the index byte is always refreshed.
            let gate: u8 = rng.gen();
            s.init.dup = (if rng.gen() { gate | 0x3 } else { gate & !0x3 }, rng.gen());
        }
        Operator::InitDrop => {
            let gate: u8 = rng.gen();
            s.init.drop = (if rng.gen() { gate | 0x7 } else { gate & !0x7 }, rng.gen());
        }
        Operator::RuntimeOpcode => {
            // Reselect 1-16 step opcodes; operands survive, so a step
            // keeps its arguments across instruction-template changes.
            for _ in 0..rng.gen_range(1..=16u32) {
                let i = rng.gen_range(0..s.runtime.len());
                s.runtime[i].sel = rng.gen();
            }
        }
        Operator::RuntimeOperand => {
            // Mutate the operand/context bytes of 1-8 steps.
            for _ in 0..rng.gen_range(1..=8u32) {
                let i = rng.gen_range(0..s.runtime.len());
                let step = &mut s.runtime[i];
                match rng.gen_range(0..3u32) {
                    0 => step.a = rng.gen(),
                    1 => step.b = rng.gen(),
                    _ => step.ctx = rng.gen(),
                }
            }
        }
        Operator::VmcsField => {
            // Mutate 1-16 whole fields at their own width: bit flips,
            // width-sized interesting values, small arithmetic, or a
            // fresh random value (the validator rounds whatever lands
            // here toward validity, so field-granular entropy turns
            // into near-boundary states rather than noise).
            for _ in 0..rng.gen_range(1..=16u32) {
                let field = VmcsField::ALL[rng.gen_range(0..VmcsField::ALL.len())];
                let width = field.width().bits();
                let value = match rng.gen_range(0..4u32) {
                    0 => {
                        let mut v = s.read_field(field);
                        for _ in 0..rng.gen_range(1..=4u32) {
                            v ^= 1 << rng.gen_range(0..width);
                        }
                        v
                    }
                    1 => INTERESTING_64[rng.gen_range(0..INTERESTING_64.len())] as u64,
                    2 => {
                        let delta = rng.gen_range(1..=35u64);
                        if rng.gen() {
                            s.read_field(field).wrapping_add(delta)
                        } else {
                            s.read_field(field).wrapping_sub(delta)
                        }
                    }
                    _ => rng.gen(),
                };
                s.write_field(field, value);
            }
        }
        Operator::VmcsDirective => {
            // The validator reads (field-selector, bit-selector) tuples
            // out of this section; refresh 1-8 of its bytes.
            for _ in 0..rng.gen_range(1..=8u32) {
                let i = rng.gen_range(0..s.directives.len());
                s.directives[i] = rng.gen();
            }
        }
        Operator::MsrEntry => {
            // Entry-level rewrite of 1-4 slots: index from the
            // architectural dictionary, value from the 64-bit
            // interesting set (the canonical-address boundaries live
            // there) or raw entropy.
            let dict = msr_dictionary();
            for _ in 0..rng.gen_range(1..=4u32) {
                let slot = rng.gen_range(0..s.msr_area.len());
                let index = dict[rng.gen_range(0..dict.len())];
                let value = if rng.gen() {
                    INTERESTING_64[rng.gen_range(0..INTERESTING_64.len())] as u64
                } else {
                    rng.gen()
                };
                s.msr_area[slot] = MsrSlot { index, value };
            }
        }
        Operator::VcpuBits => {
            // The config word steers the whole HvConfig, so both scales
            // matter: fine bit flips walk the feature lattice one step
            // at a time, region rewrites jump to a fresh configuration
            // (the configurator masks each region to its own vocabulary,
            // so a random draw is always a *valid* configuration). Live
            // regions: feature bits 0..22, keep-base 32..35, nested
            // 36..40.
            if rng.gen() {
                for _ in 0..rng.gen_range(1..=3u32) {
                    let bit = match rng.gen_range(0..4u32) {
                        0..=1 => rng.gen_range(0..22u32),
                        2 => 32 + rng.gen_range(0..3u32),
                        _ => 36 + rng.gen_range(0..4u32),
                    };
                    s.vcpu_cfg ^= 1 << bit;
                }
            } else {
                let fresh: u64 = rng.gen();
                match rng.gen_range(0..3u32) {
                    0 => s.vcpu_cfg = (s.vcpu_cfg & !0x3f_ffff) | (fresh & 0x3f_ffff),
                    1 => s.vcpu_cfg = (s.vcpu_cfg & !(0xff << 32)) | (fresh & (0xff << 32)),
                    _ => s.vcpu_cfg = fresh,
                }
            }
        }
        Operator::WideInteresting => unreachable!("byte-level operator"),
    }
}

/// AFL-parity wide interesting-value mutation: a 16/32/64-bit value
/// from the interesting tables, written at a random offset in either
/// endianness. Byte-level on purpose — it is the one operator that
/// crosses section boundaries, keeping plain havoc's reach available
/// to the structured profile — but confined to the *live* span (init
/// through MSR area): the reserved meta bytes and the unassigned tail
/// are dead to the decode side, and spending entropy there is exactly
/// the waste this engine exists to avoid.
fn wide_interesting(mut input: FuzzInput, rng: &mut SmallRng) -> FuzzInput {
    let bytes = match rng.gen_range(0..3u32) {
        0 => {
            let v = INTERESTING_16[rng.gen_range(0..INTERESTING_16.len())] as u16;
            if rng.gen() {
                v.to_be_bytes().to_vec()
            } else {
                v.to_le_bytes().to_vec()
            }
        }
        1 => {
            let v = INTERESTING_32[rng.gen_range(0..INTERESTING_32.len())] as u32;
            if rng.gen() {
                v.to_be_bytes().to_vec()
            } else {
                v.to_le_bytes().to_vec()
            }
        }
        _ => {
            let v = INTERESTING_64[rng.gen_range(0..INTERESTING_64.len())] as u64;
            if rng.gen() {
                v.to_be_bytes().to_vec()
            } else {
                v.to_le_bytes().to_vec()
            }
        }
    };
    let live = InputLayout::INIT.offset..InputLayout::MSR_AREA.end();
    let off = rng.gen_range(live.start..=live.end - bytes.len());
    input.bytes[off..off + bytes.len()].copy_from_slice(&bytes);
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn layout_sections_are_contiguous_and_fill_the_input() {
        let spans = [
            InputLayout::META,
            InputLayout::INIT,
            InputLayout::RUNTIME,
            InputLayout::VMCS_SEED,
            InputLayout::MUTATE,
            InputLayout::VCPU_CFG,
            InputLayout::MSR_AREA,
            InputLayout::TAIL,
        ];
        let mut expected = 0;
        for s in spans {
            assert_eq!(s.offset, expected, "sections must be contiguous");
            expected = s.end();
        }
        assert_eq!(expected, INPUT_LEN, "layout must cover the full input");
        assert_eq!(InputLayout::VMCS_SEED.len, Vmcs::BYTES);
        // Compile-time: the init sub-geometry fits inside the section.
        const _: () = assert!(InputLayout::INIT_REST < InputLayout::INIT.len);
    }

    #[test]
    fn prefix_hash_is_deterministic_and_order_sensitive() {
        let a = prefix_extend(prefix_root(), &[1, 2, 3]);
        assert_eq!(a, prefix_extend(prefix_root(), &[1, 2, 3]));
        assert_ne!(a, prefix_extend(prefix_root(), &[3, 2, 1]));
        assert_ne!(a, prefix_root());
        // Extending is associative over concatenation: hashing a full
        // chain equals hashing its pieces in sequence — the property
        // the rolling per-unit chain relies on.
        let ab = prefix_extend(prefix_extend(prefix_root(), &[1, 2]), &[3]);
        assert_eq!(a, ab);
        assert_eq!(
            prefix_extend_u64(prefix_root(), 7),
            prefix_extend(prefix_root(), &7u64.to_le_bytes())
        );
    }

    #[test]
    fn prefix_affinity_keys_on_scenario_shape_not_runtime_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let base = FuzzInput::random(&mut rng);
        let key = prefix_affinity(&base);
        assert_eq!(key, prefix_affinity(&base), "deterministic");
        // The back half of the runtime section — the part a deep trie
        // hit never re-executes differently — must not split affinity
        // groups.
        let mut tail = base.clone();
        let run = InputLayout::RUNTIME;
        tail.bytes[run.offset + run.len - 1] ^= 0xff;
        assert_eq!(prefix_affinity(&tail), key);
        // The init plan *is* the prefix: changing it changes the key.
        let mut init = base.clone();
        init.bytes[InputLayout::INIT.offset] ^= 0xff;
        assert_ne!(prefix_affinity(&init), key);
    }

    #[test]
    fn decode_encode_is_identity_on_random_inputs() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            let input = FuzzInput::random(&mut rng);
            assert_eq!(Scenario::decode(&input).encode(), input);
        }
        let zero = FuzzInput::zeroed();
        assert_eq!(Scenario::decode(&zero).encode(), zero);
    }

    #[test]
    fn field_accessors_match_vmcs_deserialization() {
        let mut rng = SmallRng::seed_from_u64(2);
        let input = FuzzInput::random(&mut rng);
        let s = Scenario::decode(&input);
        let vmcs = Vmcs::from_bytes(&s.vmcs_seed);
        for &f in VmcsField::ALL {
            assert_eq!(s.read_field(f), vmcs.read(f), "{}", f.name());
        }
    }

    #[test]
    fn write_field_masks_to_width_and_stays_in_span() {
        let mut s = Scenario::decode(&FuzzInput::zeroed());
        s.write_field(VmcsField::GuestEsSelector, 0xffff_ffff);
        assert_eq!(s.read_field(VmcsField::GuestEsSelector), 0xffff);
        // The neighbouring field is untouched.
        assert_eq!(s.read_field(VmcsField::GuestCsSelector), 0);
    }

    #[test]
    fn every_operator_produces_a_changed_full_length_child() {
        let mut rng = SmallRng::seed_from_u64(3);
        let parent = FuzzInput::random(&mut rng);
        for &op in &Operator::ALL {
            // Drive the op directly (bypassing the weighted pick) until
            // it visibly changes the parent; every operator must be
            // able to within a few draws.
            let mut changed = false;
            for _ in 0..16 {
                let child = match op {
                    Operator::WideInteresting => wide_interesting(parent.clone(), &mut rng),
                    _ => {
                        let mut s = Scenario::decode(&parent);
                        apply_scenario_op(op, &mut s, &mut rng);
                        s.encode()
                    }
                };
                assert_eq!(child.bytes.len(), INPUT_LEN);
                if child != parent {
                    changed = true;
                    break;
                }
            }
            assert!(changed, "{} never changed the input", op.name());
        }
    }

    #[test]
    fn operators_touch_only_their_own_section() {
        let mut rng = SmallRng::seed_from_u64(4);
        let parent = FuzzInput::random(&mut rng);
        let section_of = |op: Operator| match op {
            Operator::InitArg | Operator::InitReorder | Operator::InitDup | Operator::InitDrop => {
                InputLayout::INIT
            }
            Operator::RuntimeOpcode | Operator::RuntimeOperand => InputLayout::RUNTIME,
            Operator::VmcsField => InputLayout::VMCS_SEED,
            Operator::VmcsDirective => InputLayout::MUTATE,
            Operator::MsrEntry => InputLayout::MSR_AREA,
            Operator::VcpuBits => InputLayout::VCPU_CFG,
            Operator::WideInteresting => unreachable!(),
        };
        for &op in &Operator::ALL {
            if op == Operator::WideInteresting {
                continue; // deliberately section-crossing
            }
            let span = section_of(op);
            for _ in 0..8 {
                let mut s = Scenario::decode(&parent);
                apply_scenario_op(op, &mut s, &mut rng);
                let child = s.encode();
                for (i, (&a, &b)) in parent.bytes.iter().zip(&child.bytes).enumerate() {
                    if a != b {
                        assert!(
                            span.range().contains(&i),
                            "{} changed byte {i} outside {span:?}",
                            op.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn operator_codes_round_trip() {
        for &op in &Operator::ALL {
            assert_eq!(Operator::from_code(op.code()), Some(op));
        }
        assert_eq!(Operator::from_code(0), None);
        assert_eq!(Operator::from_code(200), None);
    }

    #[test]
    fn profile_adapts_toward_credited_operators() {
        let mut profile = MutatorProfile::balanced();
        for _ in 0..100 {
            profile.credit(Operator::VmcsField);
        }
        let stats = profile.stats();
        let vmcs = stats.iter().find(|s| s.op == Operator::VmcsField).unwrap();
        let other = stats.iter().find(|s| s.op == Operator::InitArg).unwrap();
        assert_eq!(vmcs.weight, WEIGHT_CAP, "credit must cap, not overflow");
        assert_eq!(vmcs.queued, 100);
        assert_eq!(other.weight, BASE_WEIGHT);
        // The hot operator now dominates the draw.
        let mut rng = SmallRng::seed_from_u64(5);
        let picks = (0..400)
            .filter(|_| profile.pick(&mut rng) == Operator::VmcsField)
            .count();
        assert!(picks > 100, "capped operator must dominate: {picks}/400");
    }

    #[test]
    fn profile_mutation_is_deterministic() {
        let parent = FuzzInput::zeroed();
        let run = || {
            let mut profile = MutatorProfile::balanced();
            let mut rng = SmallRng::seed_from_u64(9);
            (0..32)
                .map(|_| profile.mutate(&parent, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn interesting_tables_nest() {
        for &v in &INTERESTING_8 {
            assert!(INTERESTING_16.contains(&(v as i16)));
        }
        for &v in &INTERESTING_16 {
            assert!(INTERESTING_32.contains(&(v as i32)));
        }
        for &v in &INTERESTING_32 {
            assert!(INTERESTING_64.contains(&(v as i64)));
        }
    }
}
