//! An AFL++-style coverage-guided fuzzing engine.
//!
//! The paper extends AFL++ to drive fuzz-harness VMs (§4.1): the fuzzer
//! produces 2 KiB binary inputs, the agent maps hypervisor coverage onto
//! a shared-memory bitmap, and new bitmap bytes promote inputs into the
//! queue. This crate reproduces that loop:
//!
//! - [`FuzzInput`] — the 2 KiB input buffer;
//! - deterministic + havoc mutators (bit flips, arithmetic, block copy,
//!   splice);
//! - a [`corpus::Corpus`] with energy assignment, a virgin-bitmap
//!   novelty test, cross-worker sync deltas, persistence, and
//!   afl-cmin-style minimization;
//! - two modes: [`Mode::Guided`] (classic AFL feedback) and
//!   [`Mode::Unguided`] (black-box breadth-first), the comparison of the
//!   paper's Table 5.

pub mod corpus;
pub mod scenario;
pub mod sync;

use nf_coverage::LineSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use corpus::{Corpus, CorpusDelta, CorpusEntry, Provenance, SharedCorpus};
pub use scenario::{
    prefix_affinity, prefix_extend, prefix_extend_u64, prefix_root, InputLayout, MutatorProfile,
    Operator, OperatorStats, ProfileState, Scenario, SectionSpan,
};
pub use sync::{DeltaBus, GossipNode, SeqDelta, SyncMode, SyncStats, SyncTopology};

/// Size of one fuzzing input (paper §4.1: "2KiB of binary data").
pub const INPUT_LEN: usize = 2048;

/// Size of the coverage bitmap shared between agent and fuzzer.
pub const MAP_SIZE: usize = 1 << 16;

/// One fuzzing input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzInput {
    /// The raw bytes handed to the VM generator.
    pub bytes: Vec<u8>,
}

impl FuzzInput {
    /// An all-zero input.
    pub fn zeroed() -> Self {
        FuzzInput {
            bytes: vec![0; INPUT_LEN],
        }
    }

    /// A uniformly random input.
    pub fn random(rng: &mut SmallRng) -> Self {
        let mut input = FuzzInput::zeroed();
        input.fill_random(rng);
        input
    }

    /// Refills this input with uniformly random bytes in place — the
    /// zero-allocation form of [`FuzzInput::random`]; both consume the
    /// identical RNG stream, so the generated inputs are bit-equal.
    pub fn fill_random(&mut self, rng: &mut SmallRng) {
        rng.fill(&mut self.bytes[..]);
    }

    /// Overwrites this input with `other`'s bytes in place (no
    /// allocation when the lengths already match — they always do on
    /// the campaign path, where every input is [`INPUT_LEN`] bytes).
    pub fn copy_from(&mut self, other: &FuzzInput) {
        self.bytes.resize(other.bytes.len(), 0);
        self.bytes.copy_from_slice(&other.bytes);
    }

    /// Reads a little-endian `u16` at `off` (zero beyond the end).
    pub fn u16_at(&self, off: usize) -> u16 {
        let lo = self.bytes.get(off).copied().unwrap_or(0) as u16;
        let hi = self.bytes.get(off + 1).copied().unwrap_or(0) as u16;
        lo | (hi << 8)
    }

    /// Reads a little-endian `u32` at `off`.
    pub fn u32_at(&self, off: usize) -> u32 {
        self.u16_at(off) as u32 | ((self.u16_at(off + 2) as u32) << 16)
    }

    /// Reads a little-endian `u64` at `off`.
    pub fn u64_at(&self, off: usize) -> u64 {
        self.u32_at(off) as u64 | ((self.u32_at(off + 4) as u64) << 32)
    }

    /// Borrows `len` bytes at `off` (clamped to the buffer).
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        let start = off.min(self.bytes.len());
        let end = (off + len).min(self.bytes.len());
        &self.bytes[start..end]
    }
}

/// Feedback mode (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Coverage-guided: queue + havoc on interesting inputs.
    Guided,
    /// Black-box breadth-first: fresh random inputs every iteration —
    /// the mode the paper found slightly *better* for this target.
    Unguided,
}

/// Execution feedback the agent reports back to the fuzzer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecFeedback {
    /// The execution produced a crash/anomaly report.
    pub crashed: bool,
}

/// How guided mode turns a queue parent into a child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MutationStrategy {
    /// The classic byte-blind havoc stack. Bit-identical to the
    /// original engine — the determinism suites replay against it.
    #[default]
    Havoc,
    /// The structure-aware [`scenario`] engine: section-typed operators
    /// scheduled by an adaptive [`MutatorProfile`].
    Structured,
}

impl MutationStrategy {
    /// Parses a CLI value (`havoc` / `structured`).
    pub fn parse(s: &str) -> Option<MutationStrategy> {
        match s {
            "havoc" => Some(MutationStrategy::Havoc),
            "structured" => Some(MutationStrategy::Structured),
            _ => None,
        }
    }
}

impl std::fmt::Display for MutationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MutationStrategy::Havoc => "havoc",
            MutationStrategy::Structured => "structured",
        })
    }
}

/// Number of arms in the classic havoc stack.
pub const HAVOC_ARMS: usize = 7;

/// Mutation-side statistics of one engine: the structured profile's
/// per-operator stats plus the havoc stack-arm counters. Which half is
/// live depends on [`MutationStrategy`]; the other stays zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MutationStats {
    /// The strategy the engine ran.
    pub strategy: MutationStrategy,
    /// Per-operator scheduling stats (structured strategy).
    pub operators: Vec<OperatorStats>,
    /// Executions of each classic havoc arm (havoc strategy).
    pub havoc_arms: [u64; HAVOC_ARMS],
}

impl MutationStats {
    /// `true` when every mutation primitive of the strategy ran at
    /// least once (the `mutator_yield --smoke` gate).
    pub fn all_exercised(&self) -> bool {
        match self.strategy {
            MutationStrategy::Havoc => self.havoc_arms.iter().all(|&n| n > 0),
            MutationStrategy::Structured => {
                !self.operators.is_empty() && self.operators.iter().all(|s| s.generated > 0)
            }
        }
    }
}

/// Persistable snapshot of a [`Fuzzer`]'s mutable state *besides* the
/// corpus: the RNG position, the lifetime counters, and the adaptive
/// scheduler. Taken at report boundaries (no input pending a report),
/// so the in-flight provenance slot is always empty and never
/// persisted. The corpus travels separately through its own
/// persistence format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzerState {
    /// Raw xoshiro256++ state words of the mutation RNG.
    pub rng: [u64; 4],
    /// Total executions reported.
    pub execs: u64,
    /// Total crashing executions reported.
    pub crashes: u64,
    /// Inputs promoted into the queue.
    pub queue_adds: u64,
    /// Per-arm execution counts of the classic havoc stack.
    pub havoc_arms: [u64; HAVOC_ARMS],
    /// Whether novel inputs are recorded into the corpus.
    pub recording: bool,
    /// The adaptive operator scheduler's learned state.
    pub profile: ProfileState,
}

/// The fuzzing engine: mutation scheduling and RNG state on top of a
/// [`Corpus`] (which owns the queue, energy, and virgin bitmap).
pub struct Fuzzer {
    rng: SmallRng,
    mode: Mode,
    strategy: MutationStrategy,
    corpus: Corpus,
    /// The adaptive operator scheduler (structured strategy only; the
    /// havoc path never touches it, keeping havoc streams bit-stable).
    profile: MutatorProfile,
    /// Operator that produced the last generated input, consumed by the
    /// next report so queued entries carry operator provenance.
    last_op: Option<Operator>,
    /// Per-arm execution counts of the classic havoc stack.
    havoc_arms: [u64; HAVOC_ARMS],
    /// Record novel inputs into the corpus. On by default in guided
    /// mode; a sync group turns it on in unguided mode too, so
    /// breadth-first workers still contribute their discoveries to the
    /// shared pool (generation is unaffected — unguided inputs never
    /// come from the queue).
    recording: bool,
    execs: u64,
    crashes: u64,
    queue_adds: u64,
}

impl Fuzzer {
    /// Creates an engine with a deterministic seed and the default
    /// (havoc) mutation strategy.
    pub fn new(seed: u64, mode: Mode) -> Self {
        Fuzzer::with_strategy(seed, mode, MutationStrategy::Havoc)
    }

    /// Creates an engine with an explicit mutation strategy. The seed
    /// corpus and RNG stream are identical across strategies; only the
    /// parent→child transform differs.
    pub fn with_strategy(seed: u64, mode: Mode, strategy: MutationStrategy) -> Self {
        let mut f = Fuzzer {
            rng: SmallRng::seed_from_u64(seed),
            mode,
            strategy,
            corpus: Corpus::new(),
            profile: MutatorProfile::balanced(),
            last_op: None,
            havoc_arms: [0; HAVOC_ARMS],
            recording: mode == Mode::Guided,
            execs: 0,
            crashes: 0,
            queue_adds: 0,
        };
        // Seed corpus: one zero input and a few random ones.
        f.corpus.push_seed(FuzzInput::zeroed());
        for _ in 0..4 {
            let input = FuzzInput::random(&mut f.rng);
            f.corpus.push_seed(input);
        }
        f
    }

    /// Creates an engine resuming from a persisted corpus (the corpus
    /// replaces the default seed set; the RNG stream is still a pure
    /// function of `seed`).
    pub fn with_corpus(seed: u64, mode: Mode, corpus: Corpus) -> Self {
        Fuzzer::with_corpus_strategy(seed, mode, MutationStrategy::Havoc, corpus)
    }

    /// [`Fuzzer::with_corpus`] with an explicit mutation strategy.
    pub fn with_corpus_strategy(
        seed: u64,
        mode: Mode,
        strategy: MutationStrategy,
        corpus: Corpus,
    ) -> Self {
        Fuzzer {
            rng: SmallRng::seed_from_u64(seed),
            mode,
            strategy,
            corpus,
            profile: MutatorProfile::balanced(),
            last_op: None,
            havoc_arms: [0; HAVOC_ARMS],
            recording: mode == Mode::Guided,
            execs: 0,
            crashes: 0,
            queue_adds: 0,
        }
    }

    /// Snapshots the engine's non-corpus mutable state for checkpoint
    /// persistence. Call only at a report boundary (every generated
    /// input already reported) — the campaign's hour boundaries are.
    pub fn checkpoint_state(&self) -> FuzzerState {
        debug_assert!(
            self.last_op.is_none(),
            "checkpoint with an unreported input in flight"
        );
        FuzzerState {
            rng: self.rng.state(),
            execs: self.execs,
            crashes: self.crashes,
            queue_adds: self.queue_adds,
            havoc_arms: self.havoc_arms,
            recording: self.recording,
            profile: self.profile.state(),
        }
    }

    /// Rebuilds an engine from a persisted corpus plus a
    /// [`FuzzerState`] snapshot. The result generates exactly the
    /// input stream the snapshotted engine would have generated next —
    /// the checkpoint/resume convergence guarantee rests on this.
    pub fn from_checkpoint(
        mode: Mode,
        strategy: MutationStrategy,
        corpus: Corpus,
        state: FuzzerState,
    ) -> Self {
        Fuzzer {
            rng: SmallRng::from_state(state.rng),
            mode,
            strategy,
            corpus,
            profile: MutatorProfile::from_state(state.profile),
            last_op: None,
            havoc_arms: state.havoc_arms,
            recording: state.recording,
            execs: state.execs,
            crashes: state.crashes,
            queue_adds: state.queue_adds,
        }
    }

    /// Overrides corpus recording of novel inputs (see the field doc:
    /// sync groups record in unguided mode too).
    pub fn set_recording(&mut self, recording: bool) {
        self.recording = recording;
    }

    /// The mode this engine runs in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The mutation strategy this engine runs.
    pub fn strategy(&self) -> MutationStrategy {
        self.strategy
    }

    /// Mutation-side statistics: per-operator scheduling stats and the
    /// havoc arm counters.
    pub fn mutation_stats(&self) -> MutationStats {
        MutationStats {
            strategy: self.strategy,
            operators: self.profile.stats(),
            havoc_arms: self.havoc_arms,
        }
    }

    /// Total executions reported so far.
    pub fn execs(&self) -> u64 {
        self.execs
    }

    /// Total crashing executions reported so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Number of inputs promoted into the queue.
    pub fn queue_len(&self) -> usize {
        self.corpus.len()
    }

    /// The corpus (queue + virgin bitmap + provenance).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Mutable corpus access (sync delta exchange, persistence).
    pub fn corpus_mut(&mut self) -> &mut Corpus {
        &mut self.corpus
    }

    /// Sets the sync-group worker id recorded in entry provenance.
    pub fn set_worker(&mut self, worker: u32) {
        self.corpus.set_worker(worker);
    }

    /// Produces the next input to execute. Allocating wrapper around
    /// [`Fuzzer::next_input_into`]; the two consume identical RNG
    /// streams and produce bit-equal inputs.
    pub fn next_input(&mut self) -> FuzzInput {
        let mut out = FuzzInput::zeroed();
        self.next_input_into(&mut out);
        out
    }

    /// Writes the next input to execute into the caller's reusable
    /// buffer — the zero-allocation generation path. The scheduled
    /// parent is copied into `out` and the child is mutated in place
    /// (no `clone` per child); unguided mode refills the buffer with
    /// fresh random bytes.
    pub fn next_input_into(&mut self, out: &mut FuzzInput) {
        self.last_op = None;
        match self.mode {
            Mode::Unguided => out.fill_random(&mut self.rng),
            Mode::Guided => {
                if !self.corpus.schedule_next_into(out) {
                    // A minimized-to-nothing corpus degrades to random.
                    out.fill_random(&mut self.rng);
                    return;
                }
                match self.strategy {
                    MutationStrategy::Havoc => self.havoc_in_place(out),
                    MutationStrategy::Structured => {
                        // The scenario engine works in its decoded IR,
                        // which owns its buffers; only the final encode
                        // is copied back into the caller's scratch.
                        let (child, op) = self.profile.mutate(out, &mut self.rng);
                        self.last_op = Some(op);
                        out.copy_from(&child);
                    }
                }
            }
        }
    }

    /// AFL havoc stage, mutating the buffer in place: block copies move
    /// within the buffer (`copy_within`) and splices copy straight from
    /// the donor entry, so no arm allocates.
    fn havoc_in_place(&mut self, input: &mut FuzzInput) {
        let stacking = 1 << self.rng.gen_range(1..6); // 2..32 mutations
        for _ in 0..stacking {
            let arm = self.rng.gen_range(0..HAVOC_ARMS);
            self.havoc_arms[arm] += 1;
            match arm {
                0 => {
                    // Single bit flip.
                    let bit = self.rng.gen_range(0..INPUT_LEN * 8);
                    input.bytes[bit / 8] ^= 1 << (bit % 8);
                }
                1 => {
                    // Random byte set.
                    let off = self.rng.gen_range(0..INPUT_LEN);
                    input.bytes[off] = self.rng.gen();
                }
                2 => {
                    // Interesting value.
                    let off = self.rng.gen_range(0..INPUT_LEN);
                    const INTERESTING: [u8; 9] = [0, 1, 2, 3, 0x7f, 0x80, 0xff, 0x40, 0x20];
                    input.bytes[off] = INTERESTING[self.rng.gen_range(0..INTERESTING.len())];
                }
                3 => {
                    // Arithmetic +-.
                    let off = self.rng.gen_range(0..INPUT_LEN);
                    let delta = self.rng.gen_range(1..=35u8);
                    if self.rng.gen() {
                        input.bytes[off] = input.bytes[off].wrapping_add(delta);
                    } else {
                        input.bytes[off] = input.bytes[off].wrapping_sub(delta);
                    }
                }
                4 => {
                    // Block copy within the input (memmove semantics —
                    // identical to the staging copy it replaces).
                    let len = self.rng.gen_range(1..64usize);
                    let src = self.rng.gen_range(0..INPUT_LEN - len);
                    let dst = self.rng.gen_range(0..INPUT_LEN - len);
                    input.bytes.copy_within(src..src + len, dst);
                }
                5 => {
                    // Word overwrite with random value.
                    let off = self.rng.gen_range(0..INPUT_LEN - 8);
                    let v: u64 = self.rng.gen();
                    input.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
                }
                _ => {
                    // Splice: copy a block from another corpus entry.
                    if !self.corpus.is_empty() {
                        let other = self.rng.gen_range(0..self.corpus.len());
                        let len = self.rng.gen_range(16..256usize);
                        let off = self.rng.gen_range(0..INPUT_LEN - len);
                        input.bytes[off..off + len]
                            .copy_from_slice(&self.corpus.donor(other).bytes[off..off + len]);
                    }
                }
            }
        }
    }

    /// Reports an execution's bitmap. Returns `true` when the input
    /// produced new coverage (and, in guided mode, was queued).
    ///
    /// Queued entries carry no line evidence through this method; the
    /// agent path uses [`Fuzzer::report_observed`] so corpus entries
    /// record the line coverage `minimize` operates on.
    pub fn report(&mut self, input: &FuzzInput, bitmap: &[u8], feedback: ExecFeedback) -> bool {
        self.report_observed(input, bitmap, &LineSet::default(), feedback)
    }

    /// [`Fuzzer::report`] with the execution's line coverage attached
    /// as the queued entry's evidence (provenance for sync and the set
    /// `minimize` covers).
    pub fn report_observed(
        &mut self,
        input: &FuzzInput,
        bitmap: &[u8],
        lines: &LineSet,
        feedback: ExecFeedback,
    ) -> bool {
        self.execs += 1;
        if feedback.crashed {
            self.crashes += 1;
        }
        let op = self.last_op.take();
        let new_bits = self
            .corpus
            .observe(input, bitmap, lines, self.execs, op, self.recording);
        if new_bits && self.recording {
            self.queue_adds += 1;
            // Adaptive scheduling: a queued child credits every
            // operator of the stack that produced it, so productive
            // operators earn weight.
            if op.is_some() {
                self.profile.credit_last();
            }
        }
        new_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Fuzzer::new(7, Mode::Guided);
        let mut b = Fuzzer::new(7, Mode::Guided);
        for _ in 0..10 {
            assert_eq!(a.next_input(), b.next_input());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Fuzzer::new(1, Mode::Unguided);
        let mut b = Fuzzer::new(2, Mode::Unguided);
        assert_ne!(a.next_input(), b.next_input());
    }

    #[test]
    fn inputs_are_full_length() {
        let mut f = Fuzzer::new(0, Mode::Guided);
        for _ in 0..5 {
            assert_eq!(f.next_input().bytes.len(), INPUT_LEN);
        }
    }

    #[test]
    fn novelty_detection_and_queueing() {
        let mut f = Fuzzer::new(0, Mode::Guided);
        let before = f.queue_len();
        let input = FuzzInput::zeroed();
        let mut bitmap = vec![0u8; MAP_SIZE];
        bitmap[42] = 1;
        assert!(f.report(&input, &bitmap, ExecFeedback::default()));
        assert_eq!(f.queue_len(), before + 1);
        // Same bitmap again: no novelty.
        assert!(!f.report(&input, &bitmap, ExecFeedback::default()));
        assert_eq!(f.queue_len(), before + 1);
        // Higher hit bucket on the same edge: novelty again.
        bitmap[42] = 16;
        assert!(f.report(&input, &bitmap, ExecFeedback::default()));
    }

    #[test]
    fn unguided_mode_never_queues() {
        let mut f = Fuzzer::new(0, Mode::Unguided);
        let before = f.queue_len();
        let mut bitmap = vec![0u8; MAP_SIZE];
        bitmap[1] = 1;
        assert!(f.report(&FuzzInput::zeroed(), &bitmap, ExecFeedback::default()));
        assert_eq!(f.queue_len(), before);
    }

    #[test]
    fn crash_accounting() {
        let mut f = Fuzzer::new(0, Mode::Guided);
        let bitmap = vec![0u8; MAP_SIZE];
        f.report(
            &FuzzInput::zeroed(),
            &bitmap,
            ExecFeedback { crashed: true },
        );
        f.report(
            &FuzzInput::zeroed(),
            &bitmap,
            ExecFeedback { crashed: false },
        );
        assert_eq!(f.crashes(), 1);
        assert_eq!(f.execs(), 2);
    }

    #[test]
    fn accessors_read_little_endian() {
        let mut input = FuzzInput::zeroed();
        input.bytes[10..18].copy_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(input.u16_at(10), 0x7788);
        assert_eq!(input.u32_at(10), 0x5566_7788);
        assert_eq!(input.u64_at(10), 0x1122_3344_5566_7788);
        // Out-of-range reads return zero.
        assert_eq!(
            input.u64_at(INPUT_LEN - 2),
            input.u16_at(INPUT_LEN - 2) as u64
        );
    }

    /// Reports an always-novel bitmap so every generated child queues.
    fn report_novel(f: &mut Fuzzer, input: &FuzzInput, edge: usize) {
        let mut bitmap = vec![0u8; MAP_SIZE];
        bitmap[edge] = 1;
        f.report(input, &bitmap, ExecFeedback::default());
    }

    #[test]
    fn structured_children_carry_operator_provenance_and_credit() {
        let mut f = Fuzzer::with_strategy(11, Mode::Guided, MutationStrategy::Structured);
        for i in 0..40 {
            let input = f.next_input();
            report_novel(&mut f, &input, i + 1);
        }
        let typed = f
            .corpus()
            .entries()
            .filter(|e| e.provenance.op.is_some())
            .count();
        assert!(typed > 0, "structured children must record their operator");
        let stats = f.mutation_stats();
        assert_eq!(stats.strategy, MutationStrategy::Structured);
        assert!(stats.operators.iter().any(|s| s.queued > 0));
        let base = MutatorProfile::balanced().stats()[0].weight;
        assert!(
            stats.operators.iter().any(|s| s.weight > base),
            "queued children must grow operator weight"
        );
        assert_eq!(stats.havoc_arms, [0; HAVOC_ARMS], "havoc half stays dead");
    }

    #[test]
    fn havoc_children_never_carry_operator_provenance() {
        let mut f = Fuzzer::new(11, Mode::Guided);
        for i in 0..40 {
            let input = f.next_input();
            report_novel(&mut f, &input, i + 1);
        }
        assert!(
            f.corpus().entries().all(|e| e.provenance.op.is_none()),
            "havoc provenance must stay untyped"
        );
        let stats = f.mutation_stats();
        assert!(stats.operators.iter().all(|s| s.generated == 0));
        assert!(stats.havoc_arms.iter().any(|&n| n > 0));
    }

    #[test]
    fn havoc_strategy_is_bit_identical_to_default_engine() {
        let mut a = Fuzzer::new(21, Mode::Guided);
        let mut b = Fuzzer::with_strategy(21, Mode::Guided, MutationStrategy::Havoc);
        for i in 0..30 {
            let ia = a.next_input();
            let ib = b.next_input();
            assert_eq!(ia, ib, "input {i} diverged");
            report_novel(&mut a, &ia, i + 1);
            report_novel(&mut b, &ib, i + 1);
        }
        assert_eq!(a.corpus(), b.corpus());
    }

    #[test]
    fn in_place_generation_is_bit_identical_to_allocating() {
        // The scratch-buffer path must replay the allocating path's
        // exact RNG stream for every mode × strategy combination —
        // campaign determinism (and the committed BENCH files) rest on
        // this.
        for (mode, strategy) in [
            (Mode::Unguided, MutationStrategy::Havoc),
            (Mode::Guided, MutationStrategy::Havoc),
            (Mode::Guided, MutationStrategy::Structured),
        ] {
            let mut alloc = Fuzzer::with_strategy(17, mode, strategy);
            let mut scratch = Fuzzer::with_strategy(17, mode, strategy);
            let mut buf = FuzzInput::zeroed();
            for i in 0..25 {
                let a = alloc.next_input();
                scratch.next_input_into(&mut buf);
                assert_eq!(a, buf, "{mode:?}/{strategy:?} diverged at input {i}");
                report_novel(&mut alloc, &a, i + 1);
                report_novel(&mut scratch, &buf, i + 1);
            }
            assert_eq!(alloc.corpus(), scratch.corpus());
        }
    }

    #[test]
    fn havoc_preserves_length_and_changes_content() {
        let mut f = Fuzzer::new(3, Mode::Guided);
        let base = FuzzInput::zeroed();
        let mut child = base.clone();
        f.havoc_in_place(&mut child);
        assert_eq!(child.bytes.len(), INPUT_LEN);
        assert_ne!(child, base, "havoc should change something");
    }
}
