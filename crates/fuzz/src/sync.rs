//! Asynchronous corpus-sync machinery: watermark-sequenced deltas,
//! the per-group delta bus, and deterministic gossip topologies.
//!
//! The lockstep path ([`SharedCorpus`]) stops the whole fleet at an
//! hourly epoch barrier and merges all-to-all. This module is the
//! non-blocking alternative: a worker *publishes* a [`CorpusDelta`]
//! the moment it has unpublished novelty, peers *drain* inbound deltas
//! at iteration boundaries, and per-origin sequence watermarks make
//! every delta apply exactly once even when gossip echoes it back.
//! Instead of every worker merging every other worker's delta, records
//! travel a fixed topology ([`SyncTopology`]) — each worker merges
//! O(1) peers per sync and forwards fresh records verbatim, so a
//! 64-worker fleet pays ring/tree hops instead of 63 merges.
//!
//! Determinism: the bus assigns sequence numbers in publish order, a
//! drain scans peers in fixed order, and the group runner steps
//! workers in worker-id order — so an async group is a pure function
//! of (seeds, topology), reproducible at any host parallelism. The
//! convergence suite (`tests/async_convergence.rs`) pins this, and
//! pins async final coverage to the lockstep oracle's.
//!
//! [`SharedCorpus`]: crate::corpus::SharedCorpus
//! [`CorpusDelta`]: crate::corpus::CorpusDelta

use std::sync::Arc;

use crate::corpus::CorpusDelta;

/// How a sync group exchanges corpus knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Hourly epoch barrier through [`SharedCorpus`]: publish, commit
    /// in worker-id order, adopt-with-replay. The A/B determinism
    /// oracle — bit-identical to the pre-async behavior.
    ///
    /// [`SharedCorpus`]: crate::corpus::SharedCorpus
    #[default]
    Lockstep,
    /// Watermark-sequenced gossip: publish on novelty, drain at
    /// iteration boundaries, evidence-merge adoption, no barrier.
    Async,
}

impl SyncMode {
    /// Parses a CLI `--sync-mode` value.
    pub fn parse(s: &str) -> Option<SyncMode> {
        match s {
            "lockstep" => Some(SyncMode::Lockstep),
            "async" => Some(SyncMode::Async),
            _ => None,
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncMode::Lockstep => "lockstep",
            SyncMode::Async => "async",
        })
    }
}

/// The gossip graph async records travel. Both are deterministic
/// functions of (worker id, group size) — no registration, no
/// membership protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncTopology {
    /// Each worker reads its predecessor `(w + n - 1) % n`: one peer
    /// merge per sync, records take up to `n - 1` hops to circle.
    Ring,
    /// Binary tree rooted at worker 0: worker `w` reads its parent
    /// `(w - 1) / 2` and children `2w + 1`, `2w + 2`. At most three
    /// peer merges per sync, records cross in O(log n) hops — the
    /// default, because hop latency bounds how stale a 64-worker
    /// fleet's knowledge can get.
    #[default]
    Tree,
}

impl SyncTopology {
    /// Parses a CLI `--sync-topology` value.
    pub fn parse(s: &str) -> Option<SyncTopology> {
        match s {
            "ring" => Some(SyncTopology::Ring),
            "tree" => Some(SyncTopology::Tree),
            _ => None,
        }
    }

    /// The fixed peer set worker `worker` reads from, in drain order
    /// (ascending worker id), for a group of `n` workers.
    pub fn peers(self, worker: u32, n: u32) -> Vec<u32> {
        if n < 2 {
            return Vec::new();
        }
        match self {
            SyncTopology::Ring => vec![(worker + n - 1) % n],
            SyncTopology::Tree => {
                let mut peers = Vec::with_capacity(3);
                if worker > 0 {
                    peers.push((worker - 1) / 2);
                }
                for child in [2 * worker + 1, 2 * worker + 2] {
                    if child < n {
                        peers.push(child);
                    }
                }
                peers
            }
        }
    }
}

impl std::fmt::Display for SyncTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncTopology::Ring => "ring",
            SyncTopology::Tree => "tree",
        })
    }
}

/// Per-worker sync-cost counters — diagnostics, excluded from result
/// equality the same way engine stats are.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Deltas this worker published (lockstep: one per epoch).
    pub deltas_published: u64,
    /// Foreign deltas merged into this worker's corpus.
    pub deltas_applied: u64,
    /// Virgin-map segments swept across all delta/merge scans
    /// (lockstep's whole-map sweeps count every segment).
    pub segments_merged: u64,
    /// Virgin-map words visited by those sweeps — the cost the
    /// sharded path saves versus whole-map scans.
    pub words_scanned: u64,
    /// Foreign entries adopted into the local queue.
    pub adoptions: u64,
}

impl SyncStats {
    /// Folds another worker's counters into a fleet total.
    pub fn absorb(&mut self, other: &SyncStats) {
        self.deltas_published += other.deltas_published;
        self.deltas_applied += other.deltas_applied;
        self.segments_merged += other.segments_merged;
        self.words_scanned += other.words_scanned;
        self.adoptions += other.adoptions;
    }
}

/// A published delta stamped with its origin's sequence number — the
/// watermark unit. Relays forward the record verbatim (`Arc`-shared,
/// never copied), so `(origin, seq)` identifies it fleet-wide.
#[derive(Debug, Clone)]
pub struct SeqDelta {
    /// The discovering worker (== `delta.worker`).
    pub origin: u32,
    /// Position in the origin's publish stream, from 0.
    pub seq: u64,
    /// The payload.
    pub delta: Arc<CorpusDelta>,
}

/// The group's delta mailboxes: one append-only outbox per worker,
/// holding the records (own publications + relays) that worker has
/// made available to its topology peers.
///
/// Single-threaded by design: the async group runner steps workers in
/// worker-id order (the same scheduling-unit discipline as lockstep
/// groups), so the bus needs no lock and stays deterministic.
#[derive(Debug)]
pub struct DeltaBus {
    outboxes: Vec<Vec<Arc<SeqDelta>>>,
    next_seq: Vec<u64>,
}

impl DeltaBus {
    /// An empty bus for `n` workers.
    pub fn new(n: usize) -> Self {
        DeltaBus {
            outboxes: vec![Vec::new(); n],
            next_seq: vec![0; n],
        }
    }

    /// Stamps `delta` with its origin's next sequence number and
    /// appends it to the origin's outbox.
    pub fn publish_own(&mut self, delta: CorpusDelta) -> Arc<SeqDelta> {
        let origin = delta.worker;
        let seq = self.next_seq[origin as usize];
        self.next_seq[origin as usize] += 1;
        let rec = Arc::new(SeqDelta {
            origin,
            seq,
            delta: Arc::new(delta),
        });
        self.outboxes[origin as usize].push(rec.clone());
        rec
    }

    /// Appends a foreign record to `worker`'s outbox unmodified — the
    /// gossip forward. `(origin, seq)` survives relaying, which is
    /// what lets downstream watermarks deduplicate echoes.
    pub fn relay(&mut self, worker: u32, rec: Arc<SeqDelta>) {
        self.outboxes[worker as usize].push(rec);
    }

    /// The records `worker` has made available so far.
    pub fn outbox(&self, worker: u32) -> &[Arc<SeqDelta>] {
        &self.outboxes[worker as usize]
    }
}

/// One worker's view of the gossip: its fixed peer set, a read cursor
/// per peer outbox, and the per-origin applied watermark.
#[derive(Debug)]
pub struct GossipNode {
    peers: Vec<u32>,
    cursors: Vec<usize>,
    /// Next sequence number expected from each origin. Everything
    /// below is applied; gossip delivers each origin's records in
    /// order along every path (relays preserve outbox order), so one
    /// counter per origin is a complete dedup record.
    applied: Vec<u64>,
}

impl GossipNode {
    /// The node for `worker` in a group of `n` under `topology`.
    pub fn new(worker: u32, n: u32, topology: SyncTopology) -> Self {
        let peers = topology.peers(worker, n);
        GossipNode {
            cursors: vec![0; peers.len()],
            applied: vec![0; n as usize],
            peers,
        }
    }

    /// This node's read peers, in drain order.
    pub fn peers(&self) -> &[u32] {
        &self.peers
    }

    /// Watermarks the node's own publication so the record terminates
    /// when the topology echoes it back.
    pub fn note_published(&mut self, rec: &SeqDelta) {
        self.applied[rec.origin as usize] = rec.seq + 1;
    }

    /// Collects every fresh record visible from this node's peers, in
    /// (peer, outbox) order, advancing cursors and watermarks. A
    /// record below an origin's watermark is an echo and is dropped;
    /// everything returned is new to this node, exactly once. The
    /// caller applies the deltas and [`relay`]s the records onward.
    ///
    /// [`relay`]: DeltaBus::relay
    pub fn drain(&mut self, bus: &DeltaBus) -> Vec<Arc<SeqDelta>> {
        let mut fresh = Vec::new();
        for (slot, &peer) in self.peers.iter().enumerate() {
            let outbox = bus.outbox(peer);
            for rec in &outbox[self.cursors[slot].min(outbox.len())..] {
                let expected = &mut self.applied[rec.origin as usize];
                if rec.seq >= *expected {
                    debug_assert_eq!(rec.seq, *expected, "gossip delivered out of order");
                    *expected = rec.seq + 1;
                    fresh.push(rec.clone());
                }
            }
            self.cursors[slot] = outbox.len();
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(worker: u32) -> CorpusDelta {
        CorpusDelta {
            worker,
            entries: Vec::new(),
            cleared: vec![(worker.min(255), 1)],
        }
    }

    /// Steps one full gossip round: every worker drains, applies
    /// nothing (payloads are opaque here), and relays fresh records.
    fn round(nodes: &mut [GossipNode], bus: &mut DeltaBus, seen: &mut [Vec<(u32, u64)>]) -> usize {
        let mut moved = 0;
        for w in 0..nodes.len() {
            for rec in nodes[w].drain(bus) {
                seen[w].push((rec.origin, rec.seq));
                bus.relay(w as u32, rec);
                moved += 1;
            }
        }
        moved
    }

    #[test]
    fn every_record_reaches_every_worker_exactly_once() {
        for topology in [SyncTopology::Ring, SyncTopology::Tree] {
            for n in [2u32, 3, 8, 64] {
                let mut bus = DeltaBus::new(n as usize);
                let mut nodes: Vec<GossipNode> =
                    (0..n).map(|w| GossipNode::new(w, n, topology)).collect();
                let mut seen = vec![Vec::new(); n as usize];
                // Two publications per worker, interleaved with rounds.
                for burst in 0..2u64 {
                    for w in 0..n {
                        let rec = bus.publish_own(delta(w));
                        assert_eq!(rec.seq, burst);
                        nodes[w as usize].note_published(&rec);
                    }
                    round(&mut nodes, &mut bus, &mut seen);
                }
                // Drain to quiescence.
                while round(&mut nodes, &mut bus, &mut seen) > 0 {}
                for (w, log) in seen.iter().enumerate() {
                    let mut expect: Vec<(u32, u64)> = (0..n)
                        .filter(|&o| o != w as u32)
                        .flat_map(|o| [(o, 0u64), (o, 1u64)])
                        .collect();
                    let mut got = log.clone();
                    got.sort_unstable();
                    expect.sort_unstable();
                    assert_eq!(
                        got, expect,
                        "{topology} n={n} worker {w}: exactly-once violated"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_echo_terminates_at_the_origin() {
        let n = 4u32;
        let mut bus = DeltaBus::new(n as usize);
        let mut nodes: Vec<GossipNode> = (0..n)
            .map(|w| GossipNode::new(w, n, SyncTopology::Ring))
            .collect();
        let rec = bus.publish_own(delta(0));
        nodes[0].note_published(&rec);
        let mut seen = vec![Vec::new(); n as usize];
        let mut rounds = 0;
        while round(&mut nodes, &mut bus, &mut seen) > 0 {
            rounds += 1;
            assert!(rounds <= n, "record must not circle forever");
        }
        assert!(
            seen[0].is_empty(),
            "the origin never re-applies its own record"
        );
    }

    #[test]
    fn tree_peers_are_symmetric_and_connected() {
        for n in [2u32, 5, 16, 64] {
            for w in 0..n {
                for &p in &SyncTopology::Tree.peers(w, n) {
                    assert!(p < n);
                    assert!(
                        SyncTopology::Tree.peers(p, n).contains(&w),
                        "tree edges must be bidirectional: {w} <-> {p} (n={n})"
                    );
                }
            }
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for mode in [SyncMode::Lockstep, SyncMode::Async] {
            assert_eq!(SyncMode::parse(&mode.to_string()), Some(mode));
        }
        for topo in [SyncTopology::Ring, SyncTopology::Tree] {
            assert_eq!(SyncTopology::parse(&topo.to_string()), Some(topo));
        }
        assert_eq!(SyncMode::parse("hourly"), None);
        assert_eq!(SyncTopology::parse("mesh"), None);
    }
}
