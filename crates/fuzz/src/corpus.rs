//! The corpus: the fuzzer's central data structure, extracted into a
//! first-class subsystem shared across the whole stack.
//!
//! AFL++ runs fleets as one main and many secondary instances that
//! periodically exchange queue entries; the corpus-quality literature
//! (Görz et al.) shows that a shared, minimized, persisted corpus is
//! what keeps long-running harness fleets productive. This module
//! provides the pieces:
//!
//! - [`Corpus`] — queue entries with energy and per-entry provenance,
//!   plus the virgin bitmap (the novelty oracle);
//! - [`CorpusDelta`] — the novel entries and virgin bits cleared since
//!   a sync watermark, the unit workers exchange;
//! - [`SharedCorpus`] — an `Arc<RwLock<_>>` epoch-synced pool with
//!   deterministic worker-id-ordered merges;
//! - [`Corpus::minimize`] — afl-cmin-style greedy weighted set cover
//!   over line coverage;
//! - [`Corpus::save_to`] / [`Corpus::load_from`] — versioned,
//!   dependency-free persistence to a directory layout.
//!
//! Determinism: every operation is a pure function of its inputs —
//! merges iterate staged deltas in worker-id order, adoption scans the
//! pool in publication order — so a synced campaign group produces the
//! same results at any host parallelism.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

use nf_coverage::bitmap::segments;
use nf_coverage::{bitmap, LineSet};

use crate::scenario::{prefix_affinity, Operator};
use crate::sync::SyncStats;
use crate::{FuzzInput, INPUT_LEN, MAP_SIZE};

/// Where a corpus entry came from: the worker that discovered it, the
/// execution index at which it was promoted, and — for structured
/// mutation — the operator that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Sync-group worker id of the discovering campaign (plan order).
    pub worker: u32,
    /// Execution index at which the entry produced new coverage.
    pub exec: u64,
    /// The scenario operator that generated the input (`None` for
    /// seeds, havoc children, and unguided/random inputs) — the field
    /// `corpus stat` aggregates into per-operator yield ratios.
    pub op: Option<Operator>,
}

/// One queue entry: an interesting input plus its scheduling state and
/// the coverage that made it interesting.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The promoted input.
    pub input: FuzzInput,
    /// Number of havoc children per queue cycle.
    pub energy: u32,
    /// Children generated in the current cycle.
    pub fuzzed: u32,
    /// Sparse classified bitmap of the discovering execution — the
    /// novelty evidence other workers test against their own virgin map.
    pub cov: Vec<(u32, u8)>,
    /// Line coverage of the discovering execution (for `minimize`).
    pub lines: LineSet,
    /// Discovery provenance.
    pub provenance: Provenance,
}

/// The sync payload: everything a worker learned since its last
/// watermark — locally discovered entries plus the virgin bits cleared.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusDelta {
    /// The publishing worker (merge order key).
    pub worker: u32,
    /// Entries discovered locally since the watermark.
    pub entries: Vec<CorpusEntry>,
    /// Virgin bits cleared since the watermark (sparse).
    pub cleared: Vec<(u32, u8)>,
}

impl CorpusDelta {
    /// `true` when the delta carries no new information.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.cleared.is_empty()
    }
}

/// The corpus: entries + energy + virgin bitmap + provenance. Owns the
/// state that used to live privately inside `Fuzzer`.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    virgin: Vec<u8>,
    cursor: usize,
    worker: u32,
    /// Entries below this index were already shared (or are seeds).
    synced_entries: usize,
    /// Snapshot of the virgin map at the last watermark.
    synced_virgin: Vec<u8>,
    /// Virgin-map segments this worker's own observations touched
    /// since the watermark ([`segments`] mask). The async delta path
    /// scans only these; inbound foreign knowledge moves `virgin` and
    /// `synced_virgin` in step, so it never needs a mark.
    dirty_segs: u64,
    /// Pool entries already scanned during adoption. Transient: the
    /// index is relative to one live [`SharedCorpus`], so it is reset
    /// by persistence and minimization rather than carried over —
    /// a stale cursor would silently skip a new pool's early entries.
    pool_cursor: usize,
}

/// AFL's queue-culling bounds: past `CULL_AT` entries the oldest
/// `CULL_BY` are dropped.
const CULL_AT: usize = 512;
const CULL_BY: usize = 128;

impl Corpus {
    /// An empty corpus for worker 0 with an all-virgin bitmap.
    pub fn new() -> Self {
        Corpus {
            entries: Vec::new(),
            virgin: vec![0xff; MAP_SIZE],
            cursor: 0,
            worker: 0,
            synced_entries: 0,
            synced_virgin: vec![0xff; MAP_SIZE],
            dirty_segs: 0,
            pool_cursor: 0,
        }
    }

    /// Sets the sync-group worker id (merge ordering key). Seeds and
    /// RNG streams are unaffected.
    pub fn set_worker(&mut self, worker: u32) {
        self.worker = worker;
    }

    /// The sync-group worker id.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Number of queue entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the entries in queue order.
    pub fn entries(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.iter()
    }

    /// The virgin bitmap (1-bits are unseen buckets).
    pub fn virgin(&self) -> &[u8] {
        &self.virgin
    }

    /// Number of bitmap bucket-bits seen so far (cleared virgin bits).
    pub fn seen_bits(&self) -> u64 {
        self.virgin
            .iter()
            .map(|&v| u64::from((!v).count_ones() as u8))
            .sum()
    }

    /// Union of the line coverage attached to all entries.
    pub fn line_union(&self) -> LineSet {
        let mut union = LineSet::default();
        for e in &self.entries {
            union.union_with(&e.lines);
        }
        union
    }

    /// Per-operator provenance census over the queue, in operator
    /// table order with the `None` bucket (seeds, havoc children,
    /// unguided inputs, adopted entries discovered that way) first.
    /// `corpus stat` turns this into queue-yield ratios.
    pub fn operator_census(&self) -> Vec<(Option<Operator>, usize)> {
        let mut untyped = 0usize;
        let mut counts = [0usize; Operator::COUNT];
        for e in &self.entries {
            match e.provenance.op {
                Some(op) => counts[op.index()] += 1,
                None => untyped += 1,
            }
        }
        let mut census = vec![(None, untyped)];
        census.extend(
            Operator::ALL
                .iter()
                .map(|&op| (Some(op), counts[op.index()])),
        );
        census
    }

    /// Seeds the queue with an entry that has no coverage evidence
    /// (used for the initial corpus; seed entries sit below the sync
    /// watermark and are never shared — every worker has its own).
    pub fn push_seed(&mut self, input: FuzzInput) {
        self.entries.push(CorpusEntry {
            input,
            energy: 8,
            fuzzed: 0,
            cov: Vec::new(),
            lines: LineSet::default(),
            provenance: Provenance {
                worker: self.worker,
                exec: 0,
                op: None,
            },
        });
        self.synced_entries = self.entries.len();
    }

    /// Picks the next parent input for mutation and advances the
    /// energy-driven cursor (AFL's queue cycling). Returns `None` on an
    /// empty queue. Allocating wrapper around
    /// [`Corpus::schedule_next_into`].
    pub fn schedule_next(&mut self) -> Option<FuzzInput> {
        let mut parent = FuzzInput::zeroed();
        self.schedule_next_into(&mut parent).then_some(parent)
    }

    /// [`Corpus::schedule_next`] into a caller-owned buffer: copies the
    /// scheduled parent's bytes into `out` (no allocation — every queue
    /// entry is input-length) and advances the cursor. Returns `false`
    /// on an empty queue, leaving `out` untouched.
    pub fn schedule_next_into(&mut self, out: &mut FuzzInput) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let idx = self.cursor % self.entries.len();
        out.copy_from(&self.entries[idx].input);
        self.entries[idx].fuzzed += 1;
        if self.entries[idx].fuzzed >= self.entries[idx].energy {
            self.entries[idx].fuzzed = 0;
            self.batch_by_affinity(idx);
            self.cursor += 1;
        }
        true
    }

    /// Prefix-affinity batching: when the cursor leaves an entry, pull
    /// the nearest queued entry sharing its [`prefix_affinity`] key into
    /// the next slot, so consecutive parents share deep snapshot
    /// ancestors and the engine's prefix cache stays hot. The key is
    /// computed on the fly (never stored or persisted), the scan is a
    /// small fixed window, and the reorder is a single swap strictly
    /// above the sync watermark — published entries never move, every
    /// entry is still scheduled exactly as often, and the result is a
    /// pure function of the corpus state.
    fn batch_by_affinity(&mut self, idx: usize) {
        const WINDOW: usize = 8;
        let next = idx + 1;
        // Entries at or below the watermark were already shared; moving
        // them would corrupt the next sync delta. Wraparound also keeps
        // the queue untouched: the cycle restart is a natural batch
        // boundary.
        if next >= self.entries.len() || next < self.synced_entries {
            return;
        }
        let key = prefix_affinity(&self.entries[idx].input);
        if prefix_affinity(&self.entries[next].input) == key {
            return;
        }
        let end = (next + 1 + WINDOW).min(self.entries.len());
        if let Some(found) =
            (next + 1..end).find(|&j| prefix_affinity(&self.entries[j].input) == key)
        {
            self.entries.swap(next, found);
        }
    }

    /// Borrows the input of entry `idx mod len` (splice donor).
    pub fn donor(&self, idx: usize) -> &FuzzInput {
        &self.entries[idx % self.entries.len()].input
    }

    /// Tests an execution's bitmap against the virgin map, clearing
    /// every newly seen bucket. Returns `true` on novelty. When
    /// `queue` is set and the bitmap was novel, the input is promoted
    /// into the queue with its coverage evidence and the mutation
    /// operator (if any) that produced it.
    pub fn observe(
        &mut self,
        input: &FuzzInput,
        raw_bitmap: &[u8],
        lines: &LineSet,
        exec: u64,
        op: Option<Operator>,
        queue: bool,
    ) -> bool {
        // The per-execution novelty kernel: word-level with early-exit
        // skipping of all-zero raw and all-seen virgin words, marking
        // the touched segments for the sharded async delta scan
        // (mutations bit-identical to the unmarked `merge_raw`).
        let new_bits =
            segments::merge_raw_marking(&mut self.virgin, raw_bitmap, &mut self.dirty_segs);
        if new_bits && queue {
            self.entries.push(CorpusEntry {
                input: input.clone(),
                energy: 8,
                fuzzed: 0,
                // The entry owns its evidence, so the allocation is
                // inherent; classify still word-skips internally.
                cov: bitmap::classify(raw_bitmap),
                lines: lines.clone(),
                provenance: Provenance {
                    worker: self.worker,
                    exec,
                    op,
                },
            });
            // Bound queue growth like AFL's culling.
            if self.entries.len() > CULL_AT {
                self.entries.drain(0..CULL_BY);
                self.cursor = 0;
                self.synced_entries = self.synced_entries.saturating_sub(CULL_BY);
            }
        }
        new_bits
    }

    /// Takes the delta since the last watermark — locally discovered
    /// entries plus the virgin bits cleared — and advances the
    /// watermark. Foreign (adopted) entries are never re-published.
    pub fn take_delta(&mut self) -> CorpusDelta {
        let delta = CorpusDelta {
            worker: self.worker,
            entries: self.entries[self.synced_entries..]
                .iter()
                .filter(|e| e.provenance.worker == self.worker)
                .cloned()
                .collect(),
            cleared: bitmap::cleared_since(&self.synced_virgin, &self.virgin),
        };
        self.synced_entries = self.entries.len();
        self.synced_virgin.copy_from_slice(&self.virgin);
        self.dirty_segs = 0;
        delta
    }

    /// `true` when this worker has observed novelty it has not yet
    /// published — the async publish-on-novelty signal. Foreign
    /// knowledge applied via [`Corpus::apply_delta`] never raises it
    /// (the topology relays the original records instead).
    pub fn has_unpublished(&self) -> bool {
        self.dirty_segs != 0
    }

    /// [`Corpus::take_delta`] for the async path: the cleared-bits
    /// scan and the watermark snapshot sweep only the virgin-map
    /// segments local observations touched, skipping the rest of the
    /// 64 KiB wholesale. Scan costs are recorded into `stats`. The
    /// emitted delta is identical to the whole-map scan's (the marking
    /// merge guarantees the mask covers every moved byte, pinned by
    /// `bitmap_segments` proptests).
    pub fn take_delta_async(&mut self, stats: &mut SyncStats) -> CorpusDelta {
        let mut cleared = Vec::new();
        let scanned = segments::cleared_since_segments(
            &self.synced_virgin,
            &self.virgin,
            self.dirty_segs,
            &mut cleared,
        );
        stats.segments_merged += u64::from(self.dirty_segs.count_ones());
        stats.words_scanned += scanned / 8;
        let delta = CorpusDelta {
            worker: self.worker,
            entries: self.entries[self.synced_entries..]
                .iter()
                .filter(|e| e.provenance.worker == self.worker)
                .cloned()
                .collect(),
            cleared,
        };
        segments::copy_segments(&mut self.synced_virgin, &self.virgin, self.dirty_segs);
        self.synced_entries = self.entries.len();
        self.dirty_segs = 0;
        delta
    }

    /// Merges one inbound async delta: foreign entries still novel to
    /// this worker join the queue with their coverage evidence
    /// (*evidence merge* — no replay; the async loop folds the
    /// entries' line sets into the campaign's accounting instead), and
    /// the delta's cleared bits are applied to `virgin` *and*
    /// `synced_virgin` in step, so adopted knowledge is never
    /// re-published — downstream propagation is the relay's job.
    /// Returns the number of entries adopted.
    pub fn apply_delta(&mut self, delta: &CorpusDelta, stats: &mut SyncStats) -> usize {
        if delta.worker == self.worker {
            return 0; // own echo: the watermark should have caught it
        }
        let mut adopted = 0;
        for entry in &delta.entries {
            if entry.provenance.worker == self.worker {
                continue; // our discovery, relayed back around
            }
            if !bitmap::is_novel_against(&entry.cov, &self.virgin) {
                continue; // already covered locally
            }
            bitmap::merge_classified(&mut self.virgin, &entry.cov);
            bitmap::merge_classified(&mut self.synced_virgin, &entry.cov);
            self.entries.push(CorpusEntry {
                energy: 8,
                fuzzed: 0,
                ..entry.clone()
            });
            adopted += 1;
        }
        bitmap::apply_cleared(&mut self.virgin, &delta.cleared);
        bitmap::apply_cleared(&mut self.synced_virgin, &delta.cleared);
        stats.deltas_applied += 1;
        stats.adoptions += adopted as u64;
        stats.segments_merged += u64::from(segments::segments_of(&delta.cleared).count_ones());
        stats.words_scanned += delta.cleared.len() as u64;
        adopted
    }

    /// Adopts foreign pool entries that are still novel to this worker
    /// and merges the pool's virgin knowledge. Returns the adopted
    /// inputs, in pool order, so the caller can *replay* them — AFL++
    /// secondaries execute synced entries rather than only mutating
    /// them, which is what imports the siblings' coverage into this
    /// worker's own accounting. Deterministic: the pool is scanned in
    /// publication order from this corpus's own cursor.
    fn adopt(&mut self, pool: &PoolState) -> Vec<FuzzInput> {
        let mut adopted = Vec::new();
        for entry in &pool.entries[self.pool_cursor.min(pool.entries.len())..] {
            if entry.provenance.worker == self.worker {
                continue; // our own discovery, already queued locally
            }
            if !bitmap::is_novel_against(&entry.cov, &self.virgin) {
                continue; // a sibling (or we) already covered this
            }
            bitmap::merge_classified(&mut self.virgin, &entry.cov);
            adopted.push(entry.input.clone());
            self.entries.push(CorpusEntry {
                energy: 8,
                fuzzed: 0,
                ..entry.clone()
            });
        }
        self.pool_cursor = pool.entries.len();
        bitmap::merge_virgin(&mut self.virgin, &pool.virgin);
        // Adopted entries and merged bits are shared knowledge already;
        // fold them into the watermark so the next delta stays local.
        self.synced_entries = self.entries.len();
        self.synced_virgin.copy_from_slice(&self.virgin);
        self.dirty_segs = 0;
        adopted
    }

    /// afl-cmin: the smallest entry subset (greedy weighted set cover
    /// over line coverage) whose union covers exactly the same lines.
    ///
    /// Each greedy round picks the entry covering the most still
    ///-uncovered lines, tie-broken by queue position (the earliest
    /// queued entry wins) so minimization is deterministic. The
    /// result never grows the corpus and preserves the exact line
    /// union; scheduling state is reset, the virgin map is kept (the
    /// coverage knowledge is unchanged — only redundant carriers go).
    pub fn minimize(&self) -> Corpus {
        let target = self.line_union();
        let mut covered = LineSet::default();
        let mut picked = vec![false; self.entries.len()];
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (i, e) in self.entries.iter().enumerate() {
                if picked[i] {
                    continue;
                }
                let gain = e.lines.minus_count(&covered);
                if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, i));
                }
            }
            match best {
                Some((_, i)) => {
                    picked[i] = true;
                    covered.union_with(&self.entries[i].lines);
                }
                None => break,
            }
            if covered == target {
                break;
            }
        }
        let mut entries: Vec<CorpusEntry> = self
            .entries
            .iter()
            .zip(&picked)
            .filter(|(_, &p)| p)
            .map(|(e, _)| CorpusEntry {
                fuzzed: 0,
                ..e.clone()
            })
            .collect();
        if entries.is_empty() {
            // Keep the queue schedulable: retain the first entry even
            // when no entry carries line evidence (e.g. seed-only).
            if let Some(first) = self.entries.first() {
                entries.push(CorpusEntry {
                    fuzzed: 0,
                    ..first.clone()
                });
            }
        }
        let synced = entries.len();
        Corpus {
            entries,
            virgin: self.virgin.clone(),
            cursor: 0,
            worker: self.worker,
            synced_entries: synced,
            synced_virgin: self.virgin.clone(),
            dirty_segs: 0,
            pool_cursor: 0,
        }
    }

    /// Serializes the corpus to `dir` (created if missing):
    ///
    /// ```text
    /// dir/
    ///   MANIFEST            version, worker, cursors, entry count
    ///   virgin.bin          the virgin bitmap
    ///   synced_virgin.bin   the watermark snapshot
    ///   entries/NNNNNN.bin  one length-prefixed record per entry
    /// ```
    ///
    /// The format is versioned and dependency-free; `load_from`
    /// round-trips bit-identically (the transient pool cursor is not
    /// persisted — a loaded corpus starts fresh against any pool).
    ///
    /// The save is atomic at directory granularity: the whole tree is
    /// staged into a sibling `<dir>.tmp` and swapped into place with
    /// renames, so a crash mid-save (or a concurrent reader) never
    /// observes a torn half-written corpus — `dir` is always either
    /// the previous complete save or the new one.
    pub fn save_to(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        let tmp = sibling(dir, ".tmp");
        let old = sibling(dir, ".old");
        let _ = std::fs::remove_dir_all(&tmp);
        self.write_tree(&tmp)?;
        let _ = std::fs::remove_dir_all(&old);
        if dir.exists() {
            std::fs::rename(dir, &old)?;
        }
        std::fs::rename(&tmp, dir)?;
        let _ = std::fs::remove_dir_all(&old);
        Ok(())
    }

    /// Writes the corpus tree into `dir` directly (no staging) — the
    /// body of [`Corpus::save_to`], always pointed at a fresh temp
    /// directory.
    fn write_tree(&self, dir: &Path) -> io::Result<()> {
        let entries_dir = dir.join("entries");
        std::fs::create_dir_all(&entries_dir)?;
        std::fs::write(
            dir.join("MANIFEST"),
            format!(
                "necofuzz-corpus v{FORMAT_VERSION}\nworker {}\ncursor {}\n\
                 synced_entries {}\ndirty_segs {}\nmap_size {}\nentries {}\n",
                self.worker,
                self.cursor,
                self.synced_entries,
                self.dirty_segs,
                self.virgin.len(),
                self.entries.len()
            ),
        )?;
        std::fs::write(dir.join("virgin.bin"), &self.virgin)?;
        std::fs::write(dir.join("synced_virgin.bin"), &self.synced_virgin)?;
        for (i, entry) in self.entries.iter().enumerate() {
            let mut f = std::fs::File::create(entries_dir.join(format!("{i:06}.bin")))?;
            write_entry(&mut f, entry)?;
        }
        Ok(())
    }

    /// Loads a corpus previously written by [`Corpus::save_to`].
    pub fn load_from(dir: impl AsRef<Path>) -> io::Result<Corpus> {
        let dir = dir.as_ref();
        let manifest = std::fs::read_to_string(dir.join("MANIFEST"))?;
        let mut lines = manifest.lines();
        let header = lines.next().unwrap_or_default();
        // v1 records lack the operator-provenance byte; they load with
        // untyped provenance, so pre-structured corpora stay usable.
        let version = match header {
            "necofuzz-corpus v1" => 1,
            h if h == format!("necofuzz-corpus v{FORMAT_VERSION}") => FORMAT_VERSION,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported corpus format: {header:?}"),
                ))
            }
        };
        let mut fields: BTreeMap<&str, u64> = BTreeMap::new();
        for line in lines {
            if let Some((key, value)) = line.split_once(' ') {
                fields.insert(
                    key,
                    value.parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad manifest line: {line:?}"),
                        )
                    })?,
                );
            }
        }
        let field = |key: &str| {
            fields.get(key).copied().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("manifest misses {key}"))
            })
        };
        let count = field("entries")? as usize;
        let map_size = field("map_size")? as usize;
        if map_size != MAP_SIZE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus map_size {map_size} does not match this build's {MAP_SIZE}"),
            ));
        }
        let virgin = std::fs::read(dir.join("virgin.bin"))?;
        let synced_virgin = std::fs::read(dir.join("synced_virgin.bin"))?;
        if virgin.len() != map_size || synced_virgin.len() != map_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "virgin bitmap size does not match the manifest",
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let mut f = std::fs::File::open(dir.join("entries").join(format!("{i:06}.bin")))?;
            entries.push(read_entry(&mut f, version)?);
        }
        // Saves from before the sharded async path lack the mask;
        // reconstruct it from the watermark diff so the invariant
        // "the mask covers every moved segment" holds on load too.
        let dirty_segs = match fields.get("dirty_segs") {
            Some(&mask) => mask,
            None => segments::segments_of(&bitmap::cleared_since(&synced_virgin, &virgin)),
        };
        Ok(Corpus {
            entries,
            virgin,
            cursor: field("cursor")? as usize,
            worker: field("worker")? as u32,
            synced_entries: field("synced_entries")? as usize,
            synced_virgin,
            dirty_segs,
            pool_cursor: 0,
        })
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Corpus::new()
    }
}

/// `dir` with `suffix` appended to its final component (`corpus` →
/// `corpus.tmp`) — the staging/backup siblings of the atomic save.
fn sibling(dir: &Path, suffix: &str) -> std::path::PathBuf {
    let mut os = dir.as_os_str().to_os_string();
    os.push(suffix);
    std::path::PathBuf::from(os)
}

/// On-disk format version (bump on layout changes). v2 added the
/// operator-provenance byte to every entry record.
const FORMAT_VERSION: u32 = 2;
/// Per-entry record magic: `b"NFE1"`.
const ENTRY_MAGIC: u32 = 0x4e46_4531;

fn write_entry(w: &mut impl io::Write, entry: &CorpusEntry) -> io::Result<()> {
    w.write_all(&ENTRY_MAGIC.to_le_bytes())?;
    w.write_all(&(entry.input.bytes.len() as u32).to_le_bytes())?;
    w.write_all(&entry.input.bytes)?;
    w.write_all(&entry.energy.to_le_bytes())?;
    w.write_all(&entry.fuzzed.to_le_bytes())?;
    w.write_all(&entry.provenance.worker.to_le_bytes())?;
    w.write_all(&entry.provenance.exec.to_le_bytes())?;
    w.write_all(&[entry.provenance.op.map_or(0, Operator::code)])?;
    w.write_all(&(entry.cov.len() as u32).to_le_bytes())?;
    for &(i, b) in &entry.cov {
        w.write_all(&i.to_le_bytes())?;
        w.write_all(&[b])?;
    }
    let words = entry.lines.as_words();
    w.write_all(&(words.len() as u32).to_le_bytes())?;
    for &word in words {
        w.write_all(&word.to_le_bytes())?;
    }
    Ok(())
}

fn read_entry(r: &mut impl io::Read, version: u32) -> io::Result<CorpusEntry> {
    fn u32_of(r: &mut impl io::Read) -> io::Result<u32> {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
    fn u64_of(r: &mut impl io::Read) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
    if u32_of(r)? != ENTRY_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad corpus entry magic",
        ));
    }
    let input_len = u32_of(r)? as usize;
    // Mutators index up to INPUT_LEN unconditionally, so a short input
    // would panic mid-campaign — reject it at load time instead.
    if input_len != INPUT_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corpus entry input is {input_len} bytes, expected {INPUT_LEN}"),
        ));
    }
    let mut bytes = vec![0u8; input_len];
    r.read_exact(&mut bytes)?;
    let energy = u32_of(r)?;
    let fuzzed = u32_of(r)?;
    let worker = u32_of(r)?;
    let exec = u64_of(r)?;
    let op = if version >= 2 {
        let mut op_code = [0u8; 1];
        r.read_exact(&mut op_code)?;
        match op_code[0] {
            0 => None,
            c => Some(Operator::from_code(c).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown operator code {c} in corpus entry"),
                )
            })?),
        }
    } else {
        None // v1 predates operator provenance
    };
    let cov_len = u32_of(r)? as usize;
    let mut cov = Vec::with_capacity(cov_len.min(MAP_SIZE));
    for _ in 0..cov_len {
        let i = u32_of(r)?;
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        cov.push((i, b[0]));
    }
    let word_len = u32_of(r)? as usize;
    let mut words = Vec::with_capacity(word_len.min(1 << 20));
    for _ in 0..word_len {
        words.push(u64_of(r)?);
    }
    Ok(CorpusEntry {
        input: FuzzInput { bytes },
        energy,
        fuzzed,
        cov,
        lines: LineSet::from_words(words),
        provenance: Provenance { worker, exec, op },
    })
}

/// The merged pool behind a [`SharedCorpus`].
#[derive(Debug, Default)]
struct PoolState {
    /// Pool-novel entries in commit order (epoch, then worker id).
    entries: Vec<CorpusEntry>,
    /// Group-wide virgin map (what *someone* in the group has seen).
    virgin: Vec<u8>,
    /// Deltas published in the current epoch, keyed (= ordered) by
    /// worker id.
    staged: BTreeMap<u32, CorpusDelta>,
    /// Completed sync epochs.
    epoch: u64,
}

/// The cross-worker corpus pool: an epoch-synced shared view.
///
/// Usage per sync boundary: every member [`publish`]es its
/// [`CorpusDelta`], one call to [`commit_epoch`] merges the staged
/// deltas *in worker-id order*, then every member [`adopt_into`]s the
/// pool. All three steps are deterministic, so a group produces the
/// same corpora no matter how its members are scheduled.
///
/// [`publish`]: SharedCorpus::publish
/// [`commit_epoch`]: SharedCorpus::commit_epoch
/// [`adopt_into`]: SharedCorpus::adopt_into
#[derive(Debug, Clone)]
pub struct SharedCorpus {
    inner: Arc<RwLock<PoolState>>,
}

impl Default for SharedCorpus {
    /// Same as [`SharedCorpus::new`]. A derived default would leave the
    /// group virgin map empty, making every published entry look
    /// already-covered — the pool would silently drop everything.
    fn default() -> Self {
        SharedCorpus::new()
    }
}

impl SharedCorpus {
    /// An empty pool with an all-virgin group bitmap.
    pub fn new() -> Self {
        SharedCorpus {
            inner: Arc::new(RwLock::new(PoolState {
                virgin: vec![0xff; MAP_SIZE],
                ..PoolState::default()
            })),
        }
    }

    /// Stages a worker's delta for the current epoch. Re-publishing in
    /// the same epoch replaces the previous stage.
    pub fn publish(&self, delta: CorpusDelta) {
        let mut pool = self.inner.write().expect("corpus pool poisoned");
        pool.staged.insert(delta.worker, delta);
    }

    /// Merges every staged delta in worker-id order and opens the next
    /// epoch. Entries already covered by the pool's virgin map are
    /// dropped (a sibling published the same discovery first); the
    /// survivor order is (epoch, worker id, discovery order) —
    /// deterministic for a fixed publish set.
    pub fn commit_epoch(&self) -> u64 {
        let mut pool = self.inner.write().expect("corpus pool poisoned");
        let staged = std::mem::take(&mut pool.staged);
        for (_, delta) in staged {
            for entry in delta.entries {
                if bitmap::is_novel_against(&entry.cov, &pool.virgin) {
                    bitmap::merge_classified(&mut pool.virgin, &entry.cov);
                    pool.entries.push(entry);
                }
            }
            bitmap::apply_cleared(&mut pool.virgin, &delta.cleared);
        }
        pool.epoch += 1;
        pool.epoch
    }

    /// Merges the pool into `corpus`: foreign entries still novel to
    /// the worker join its queue, and the group-wide virgin knowledge
    /// is folded in so the worker stops re-exploring what siblings
    /// covered. Returns the adopted inputs in pool order — replay them
    /// to import the siblings' coverage (AFL++ secondary semantics).
    pub fn adopt_into(&self, corpus: &mut Corpus) -> Vec<FuzzInput> {
        let pool = self.inner.read().expect("corpus pool poisoned");
        corpus.adopt(&pool)
    }

    /// Completed sync epochs.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("corpus pool poisoned").epoch
    }

    /// Entries accumulated in the pool.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("corpus pool poisoned")
            .entries
            .len()
    }

    /// `true` when no entry has been pooled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lines_over(range: std::ops::Range<u32>) -> LineSet {
        let mut map = nf_coverage::CovMap::new();
        let f = map.add_file("t.c");
        map.add_block(f, 64, "blk");
        let mut set = LineSet::for_map(&map);
        let block = nf_coverage::BlockDef {
            id: nf_coverage::BlockId(0),
            file: f,
            line_start: range.start,
            line_count: range.end - range.start,
            label: "span",
        };
        set.add_block(&block);
        set
    }

    fn entry(worker: u32, exec: u64, edge: u32, lines: std::ops::Range<u32>) -> CorpusEntry {
        CorpusEntry {
            input: FuzzInput::zeroed(),
            energy: 8,
            fuzzed: 0,
            cov: vec![(edge, 1)],
            lines: lines_over(lines),
            provenance: Provenance {
                worker,
                exec,
                op: None,
            },
        }
    }

    fn observed(corpus: &mut Corpus, edge: usize, lines: std::ops::Range<u32>, exec: u64) -> bool {
        let mut bitmap = vec![0u8; MAP_SIZE];
        bitmap[edge] = 1;
        let mut rng = SmallRng::seed_from_u64(exec);
        let input = FuzzInput::random(&mut rng);
        let op = Operator::from_code((exec % 4) as u8);
        corpus.observe(&input, &bitmap, &lines_over(lines), exec, op, true)
    }

    #[test]
    fn observe_queues_on_novelty_only() {
        let mut c = Corpus::new();
        assert!(observed(&mut c, 10, 0..4, 1));
        assert_eq!(c.len(), 1);
        assert!(!observed(&mut c, 10, 0..4, 2), "same edge, no novelty");
        assert_eq!(c.len(), 1);
        assert!(observed(&mut c, 11, 4..8, 3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.line_union().count(), 8);
    }

    #[test]
    fn scheduling_batches_queue_neighbors_by_prefix_affinity() {
        use crate::scenario::InputLayout;
        let mut rng = SmallRng::seed_from_u64(11);
        let base = FuzzInput::random(&mut rng);
        // Same early prefix as `base`: only the runtime tail differs.
        let mut kin = base.clone();
        let run = InputLayout::RUNTIME;
        kin.bytes[run.offset + run.len - 1] ^= 0xff;
        // Different init directives, so different affinity keys.
        let mut other_a = base.clone();
        other_a.bytes[InputLayout::INIT.offset] ^= 0x11;
        let mut other_b = base.clone();
        other_b.bytes[InputLayout::INIT.offset] ^= 0x22;
        assert_eq!(prefix_affinity(&base), prefix_affinity(&kin));
        assert_ne!(prefix_affinity(&base), prefix_affinity(&other_a));

        let mut c = Corpus::new();
        for (i, input) in [&base, &other_a, &other_b, &kin].into_iter().enumerate() {
            let mut bitmap = vec![0u8; MAP_SIZE];
            bitmap[10 + i] = 1;
            assert!(c.observe(input, &bitmap, &lines_over(0..1), i as u64, None, true));
        }
        // Drain the head entry's energy; when the cursor advances, the
        // nearest affinity sibling (queued last) is pulled into the
        // next slot so consecutive parents share deep snapshot
        // ancestors.
        for _ in 0..8 {
            assert_eq!(c.schedule_next().unwrap(), base);
        }
        let order: Vec<&FuzzInput> = c.entries().map(|e| &e.input).collect();
        assert_eq!(order, vec![&base, &kin, &other_b, &other_a]);

        // Published entries never move: past the sync watermark the
        // same drain leaves the queue untouched.
        c.take_delta();
        for _ in 0..8 {
            assert_eq!(c.schedule_next().unwrap(), kin);
        }
        let order: Vec<&FuzzInput> = c.entries().map(|e| &e.input).collect();
        assert_eq!(order, vec![&base, &kin, &other_b, &other_a]);
    }

    #[test]
    fn delta_contains_only_local_news_since_watermark() {
        let mut c = Corpus::new();
        c.push_seed(FuzzInput::zeroed());
        observed(&mut c, 10, 0..4, 1);
        let delta = c.take_delta();
        assert_eq!(delta.entries.len(), 1, "seed entries are not shared");
        assert!(!delta.cleared.is_empty());

        let empty = c.take_delta();
        assert!(empty.is_empty(), "watermark advanced: {empty:?}");
        observed(&mut c, 11, 4..8, 2);
        assert_eq!(c.take_delta().entries.len(), 1);
    }

    #[test]
    fn async_delta_equals_whole_map_delta() {
        let mut a = Corpus::new();
        a.push_seed(FuzzInput::zeroed());
        observed(&mut a, 10, 0..4, 1); // segment 0
        observed(&mut a, 5000, 4..8, 2); // segment 4
        let mut b = a.clone();
        let mut stats = SyncStats::default();
        let sharded = a.take_delta_async(&mut stats);
        let whole = b.take_delta();
        assert_eq!(sharded, whole, "masked scan must equal the whole-map scan");
        assert_eq!(a, b, "watermark state must agree");
        assert_eq!(stats.segments_merged, 2, "only touched segments swept");
        assert!(!a.has_unpublished());
    }

    #[test]
    fn apply_delta_adopts_exactly_once_and_stays_local() {
        let mut src = Corpus::new();
        src.set_worker(1);
        observed(&mut src, 10, 0..4, 1);
        let mut pub_stats = SyncStats::default();
        let delta = src.take_delta_async(&mut pub_stats);

        let mut dst = Corpus::new(); // worker 0
        let mut stats = SyncStats::default();
        assert_eq!(dst.apply_delta(&delta, &mut stats), 1);
        assert_eq!(dst.len(), 1);
        assert!(
            !dst.has_unpublished(),
            "adoption must not trigger publication — relays forward the original"
        );
        assert!(
            dst.take_delta_async(&mut stats).is_empty(),
            "adopted knowledge is never re-published"
        );
        assert_eq!(
            dst.apply_delta(&delta, &mut stats),
            0,
            "re-apply is a no-op"
        );
        assert_eq!(stats.adoptions, 1);
        assert_eq!(stats.deltas_applied, 2);
    }

    #[test]
    fn pool_merges_in_worker_order_and_dedups() {
        let shared = SharedCorpus::new();
        // Worker 2 publishes first, but worker 1's duplicate of edge 5
        // must win the pool slot because merges are worker-id ordered.
        shared.publish(CorpusDelta {
            worker: 2,
            entries: vec![entry(2, 7, 5, 0..4), entry(2, 9, 6, 4..8)],
            cleared: vec![],
        });
        shared.publish(CorpusDelta {
            worker: 1,
            entries: vec![entry(1, 3, 5, 0..4)],
            cleared: vec![],
        });
        shared.commit_epoch();
        assert_eq!(shared.len(), 2, "edge-5 duplicate deduped");

        let mut adopter = Corpus::new();
        adopter.set_worker(3);
        let adopted = shared.adopt_into(&mut adopter);
        assert_eq!(adopted.len(), 2);
        assert_eq!(adopter.entries().next().unwrap().provenance.worker, 1);
        // Re-adoption is a no-op (pool cursor advanced).
        assert!(shared.adopt_into(&mut adopter).is_empty());
        // The adopter's next delta must not re-publish foreign entries.
        assert_eq!(adopter.take_delta().entries.len(), 0);
    }

    #[test]
    fn adoption_skips_own_and_known_coverage() {
        let shared = SharedCorpus::new();
        shared.publish(CorpusDelta {
            worker: 0,
            entries: vec![entry(0, 1, 5, 0..4)],
            cleared: vec![],
        });
        shared.publish(CorpusDelta {
            worker: 1,
            entries: vec![entry(1, 2, 6, 4..8)],
            cleared: vec![],
        });
        shared.commit_epoch();

        let mut own = Corpus::new(); // worker 0: its own entry must not bounce back
        observed(&mut own, 6, 4..8, 9); // and it already knows edge 6
        let adopted = shared.adopt_into(&mut own);
        assert!(adopted.is_empty(), "own entry skipped, known edge skipped");
        // But the group virgin map was folded in: edge 5 is now known.
        assert_eq!(own.virgin()[5] & 1, 0);
    }

    #[test]
    fn default_pool_accepts_entries_like_new() {
        let shared = SharedCorpus::default();
        shared.publish(CorpusDelta {
            worker: 0,
            entries: vec![entry(0, 1, 5, 0..4)],
            cleared: vec![],
        });
        shared.commit_epoch();
        assert_eq!(shared.len(), 1, "default pool must not drop entries");
    }

    #[test]
    fn minimize_preserves_line_union_and_shrinks() {
        let mut c = Corpus::new();
        observed(&mut c, 1, 0..8, 1); // superset carrier
        observed(&mut c, 2, 0..4, 2); // redundant
        observed(&mut c, 3, 4..8, 3); // redundant
        observed(&mut c, 4, 8..12, 4); // unique tail
        let min = c.minimize();
        assert_eq!(min.line_union(), c.line_union());
        assert_eq!(min.len(), 2, "cover = superset + tail");
        assert!(min.virgin() == c.virgin(), "coverage knowledge kept");
    }

    #[test]
    fn minimize_of_seed_only_corpus_keeps_one_entry() {
        let mut c = Corpus::new();
        c.push_seed(FuzzInput::zeroed());
        c.push_seed(FuzzInput::zeroed());
        let min = c.minimize();
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn operator_census_buckets_provenance() {
        let mut c = Corpus::new();
        c.push_seed(FuzzInput::zeroed());
        observed(&mut c, 10, 0..4, 1); // op code 1 = InitArg
        observed(&mut c, 11, 4..8, 2); // op code 2 = InitReorder
        observed(&mut c, 12, 8..12, 4); // 4 % 4 = 0 -> untyped
        let census = c.operator_census();
        assert_eq!(census[0], (None, 2), "seed + untyped entry");
        assert_eq!(census[1], (Some(Operator::InitArg), 1));
        assert_eq!(census[2], (Some(Operator::InitReorder), 1));
        let total: usize = census.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, c.len(), "census must partition the queue");
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let dir = std::env::temp_dir().join(format!("nf-corpus-test-{}", std::process::id()));
        let mut c = Corpus::new();
        c.set_worker(4);
        c.push_seed(FuzzInput::zeroed());
        observed(&mut c, 10, 0..4, 1);
        observed(&mut c, 11, 4..8, 2);
        c.take_delta();
        observed(&mut c, 12, 8..12, 3);
        c.schedule_next();

        c.save_to(&dir).expect("save");
        let loaded = Corpus::load_from(&dir).expect("load");
        assert_eq!(c, loaded, "round-trip must be bit-identical");

        // Saving a minimized corpus over the old one drops stale files.
        let min = c.minimize();
        min.save_to(&dir).expect("re-save");
        assert_eq!(Corpus::load_from(&dir).expect("re-load"), min);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_save_never_tears_the_previous_corpus() {
        // Regression: `save_to` used to write into the live directory,
        // so a crash mid-save left a torn mix of old and new records.
        // The atomic staging swap must leave the previous complete
        // save untouched by anything short of the final rename — and
        // clean up the debris on the next save.
        let dir = std::env::temp_dir().join(format!("nf-corpus-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut first = Corpus::new();
        first.set_worker(1);
        first.push_seed(FuzzInput::zeroed());
        observed(&mut first, 10, 0..4, 1);
        first.save_to(&dir).expect("first save");

        // Simulate a host death mid-second-save: the staging tree
        // exists (half-written, even) but the swap never happened.
        let tmp = sibling(&dir, ".tmp");
        std::fs::create_dir_all(tmp.join("entries")).expect("stage");
        std::fs::write(tmp.join("MANIFEST"), "necofuzz-corpus v").expect("torn manifest");
        assert_eq!(
            Corpus::load_from(&dir).expect("old save must load"),
            first,
            "the live directory is still the previous complete save"
        );

        // The next save sweeps the debris and lands atomically.
        let mut second = first.clone();
        observed(&mut second, 11, 4..8, 2);
        second.save_to(&dir).expect("second save");
        assert!(!tmp.exists(), "stale staging debris must be swept");
        assert!(!sibling(&dir, ".old").exists(), "backup must be swept");
        assert_eq!(Corpus::load_from(&dir).expect("reload"), second);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_corpora_load_with_untyped_provenance() {
        // Pre-structured corpora (format v1: no operator byte) must
        // stay loadable — users resume long campaigns from them.
        let dir = std::env::temp_dir().join(format!("nf-corpus-v1-{}", std::process::id()));
        let mut c = Corpus::new();
        c.set_worker(2);
        c.push_seed(FuzzInput::zeroed());
        observed(&mut c, 10, 0..4, 1);
        observed(&mut c, 11, 4..8, 2);
        c.save_to(&dir).expect("save");

        // Rewrite the save as v1: drop each record's op byte (right
        // after the u32 worker + u64 exec provenance) and downgrade
        // the manifest header.
        let manifest = std::fs::read_to_string(dir.join("MANIFEST")).expect("manifest");
        std::fs::write(
            dir.join("MANIFEST"),
            manifest.replace(
                &format!("necofuzz-corpus v{FORMAT_VERSION}"),
                "necofuzz-corpus v1",
            ),
        )
        .expect("downgrade manifest");
        let op_byte_at = 4 + 4 + INPUT_LEN + 4 + 4 + 4 + 8;
        for i in 0..c.len() {
            let path = dir.join("entries").join(format!("{i:06}.bin"));
            let mut bytes = std::fs::read(&path).expect("entry");
            bytes.remove(op_byte_at);
            std::fs::write(&path, bytes).expect("rewrite entry");
        }

        let loaded = Corpus::load_from(&dir).expect("v1 corpus must load");
        std::fs::remove_dir_all(&dir).ok();
        assert!(loaded.entries().all(|e| e.provenance.op.is_none()));
        let mut expected = c.clone();
        for e in &mut expected.entries {
            e.provenance.op = None;
        }
        assert_eq!(loaded, expected, "v1 load differs only in op provenance");
    }

    #[test]
    fn load_rejects_wrong_version() {
        let dir = std::env::temp_dir().join(format!("nf-corpus-badver-{}", std::process::id()));
        Corpus::new().save_to(&dir).expect("save");
        std::fs::write(
            dir.join("MANIFEST"),
            "necofuzz-corpus v999\nworker 0\ncursor 0\nsynced_entries 0\n\
             pool_cursor 0\nmap_size 65536\nentries 0\n",
        )
        .expect("tamper");
        assert!(Corpus::load_from(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
