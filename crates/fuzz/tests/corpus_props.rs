//! Property tests for the corpus invariants the shared-corpus runtime
//! leans on:
//!
//! - `minimize` preserves the exact line-coverage union and never
//!   grows the corpus;
//! - `save_to`/`load_from` round-trips bit-identically, for guided and
//!   unguided corpora alike;
//! - sync deltas never leak foreign entries back into the pool.

use nf_coverage::LineSet;
use nf_fuzz::{Corpus, ExecFeedback, Fuzzer, Mode, MAP_SIZE};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Grows a corpus by `execs` synthetic executions driven by `seed`:
/// random inputs, random sparse bitmaps, random line spans — the shape
/// of real agent feedback without the hypervisor.
fn grown_fuzzer(seed: u64, mode: Mode, execs: usize) -> Fuzzer {
    let mut fuzzer = Fuzzer::new(seed, mode);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    for _ in 0..execs {
        let input = fuzzer.next_input();
        let mut bitmap = vec![0u8; MAP_SIZE];
        for _ in 0..rng.gen_range(1..8usize) {
            let edge = rng.gen_range(0..MAP_SIZE);
            bitmap[edge] = rng.gen_range(1..=255);
        }
        let mut lines = LineSet::default();
        mark_span(
            &mut lines,
            rng.gen_range(0..512u32),
            rng.gen_range(1..32u32),
        );
        fuzzer.report_observed(
            &input,
            &bitmap,
            &lines,
            ExecFeedback {
                crashed: rng.gen_range(0..50u8) == 0,
            },
        );
    }
    fuzzer
}

/// Marks `count` consecutive lines starting at `start`.
fn mark_span(set: &mut LineSet, start: u32, count: u32) {
    let block = nf_coverage::BlockDef {
        id: nf_coverage::BlockId(0),
        file: nf_coverage::FileId(0),
        line_start: start,
        line_count: count,
        label: "span",
    };
    set.add_block(&block);
}

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "nf-corpus-prop-{tag}-{}-{case}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn minimize_preserves_line_coverage_and_never_grows(seed in 0u64..1 << 32, execs in 10usize..120) {
        let fuzzer = grown_fuzzer(seed, Mode::Guided, execs);
        let corpus = fuzzer.corpus();
        let minimized = corpus.minimize();
        prop_assert_eq!(
            minimized.line_union(),
            corpus.line_union(),
            "minimize must preserve the exact covered-line union"
        );
        prop_assert!(
            minimized.len() <= corpus.len(),
            "minimize must never grow the corpus: {} > {}",
            minimized.len(),
            corpus.len()
        );
        prop_assert!(!minimized.is_empty(), "a seeded corpus never minimizes to nothing");
        // Idempotence: minimizing a minimal cover changes nothing more.
        let again = minimized.minimize();
        prop_assert_eq!(again.len(), minimized.len());
        prop_assert_eq!(again.line_union(), minimized.line_union());
    }

    #[test]
    fn save_load_round_trips_guided_and_unguided(seed in 0u64..1 << 32, execs in 5usize..80) {
        for (tag, mode) in [("guided", Mode::Guided), ("unguided", Mode::Unguided)] {
            let mut fuzzer = grown_fuzzer(seed, mode, execs);
            if seed % 2 == 0 {
                // Half the cases persist mid-sync state too.
                fuzzer.corpus_mut().take_delta();
            }
            let corpus = fuzzer.corpus();
            let dir = temp_dir(tag, seed);
            corpus.save_to(&dir).expect("save corpus");
            let loaded = Corpus::load_from(&dir).expect("load corpus");
            std::fs::remove_dir_all(&dir).ok();
            prop_assert_eq!(
                corpus,
                &loaded,
                "{} corpus must round-trip bit-identically",
                tag
            );
        }
    }

    #[test]
    fn deltas_share_only_local_discoveries(seed in 0u64..1 << 32) {
        let mut a = grown_fuzzer(seed, Mode::Guided, 40);
        a.set_worker(0);
        let mut b = Fuzzer::new(seed.wrapping_add(1), Mode::Guided);
        b.set_worker(1);

        let shared = nf_fuzz::SharedCorpus::new();
        shared.publish(a.corpus_mut().take_delta());
        shared.publish(b.corpus_mut().take_delta());
        shared.commit_epoch();
        shared.adopt_into(b.corpus_mut());

        // B adopted A's entries; B's next delta must not re-export them.
        let leak = b.corpus_mut().take_delta();
        prop_assert!(
            leak.entries.iter().all(|e| e.provenance.worker == 1),
            "foreign entries must never be re-published"
        );
    }
}

#[test]
fn campaign_shaped_corpus_round_trips() {
    // The exact corpus a guided fuzzing loop produces (with culling
    // exercised) survives persistence bit-identically.
    let mut fuzzer = grown_fuzzer(7, Mode::Guided, 700);
    for _ in 0..3 {
        fuzzer.next_input();
    }
    let dir = temp_dir("campaign", 7);
    fuzzer.corpus().save_to(&dir).expect("save");
    let loaded = Corpus::load_from(&dir).expect("load");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(fuzzer.corpus(), &loaded);
    assert!(loaded.len() > 5, "the loop must have promoted entries");
}
