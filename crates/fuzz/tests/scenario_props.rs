//! Property tests for the scenario IR: the losslessness contract the
//! structured mutation engine stands on.
//!
//! - `Scenario::decode(input).encode() == input` for *all* 2 KiB
//!   inputs — random, patterned, and adversarially structured alike;
//! - structured mutation (the full stacked profile) always produces
//!   full-length children that themselves round-trip;
//! - field-granular VMCS access agrees with the `Vmcs` deserializer on
//!   arbitrary seeds.

use nf_fuzz::{FuzzInput, MutatorProfile, Scenario, INPUT_LEN};
use nf_vmx::{Vmcs, VmcsField};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_encode_is_identity_on_arbitrary_inputs(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = FuzzInput::random(&mut rng);
        prop_assert_eq!(Scenario::decode(&input).encode(), input);
    }

    #[test]
    fn decode_encode_is_identity_on_patterned_inputs(byte in 0u8..=255, stride in 1usize..31) {
        // Constant and strided patterns catch any off-by-one the random
        // cases would wash out (every lane differs from its neighbours).
        let mut constant = FuzzInput::zeroed();
        constant.bytes.fill(byte);
        prop_assert_eq!(Scenario::decode(&constant).encode(), constant);

        let mut strided = FuzzInput::zeroed();
        for (i, b) in strided.bytes.iter_mut().enumerate() {
            *b = ((i / stride) % 256) as u8 ^ byte;
        }
        prop_assert_eq!(Scenario::decode(&strided).encode(), strided);
    }

    #[test]
    fn structured_children_are_full_length_and_round_trip(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parent = FuzzInput::random(&mut rng);
        let mut profile = MutatorProfile::balanced();
        let mut current = parent;
        for _ in 0..8 {
            let (child, _op) = profile.mutate(&current, &mut rng);
            prop_assert_eq!(child.bytes.len(), INPUT_LEN);
            prop_assert_eq!(Scenario::decode(&child).encode(), child.clone());
            current = child;
        }
    }

    #[test]
    fn field_access_matches_vmcs_deserialization(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = FuzzInput::random(&mut rng);
        let mut s = Scenario::decode(&input);
        let vmcs = Vmcs::from_bytes(&s.vmcs_seed);
        for &f in VmcsField::ALL {
            prop_assert_eq!(s.read_field(f), vmcs.read(f));
        }
        // Writing what was read is a no-op on the serialized seed.
        for &f in VmcsField::ALL {
            let v = s.read_field(f);
            s.write_field(f, v);
        }
        prop_assert_eq!(s.encode(), input);
    }

    #[test]
    fn mutation_only_rewrites_assigned_sections(seed in 0u64..1 << 48) {
        // The tail (unassigned padding) and meta (reserved) bytes are
        // dead to the decode side; structured mutation must not spend
        // entropy there — that is exactly the waste havoc suffers.
        let mut rng = SmallRng::seed_from_u64(seed);
        let parent = FuzzInput::random(&mut rng);
        let mut profile = MutatorProfile::balanced();
        let (child, _op) = profile.mutate(&parent, &mut rng);
        let p = Scenario::decode(&parent);
        let c = Scenario::decode(&child);
        prop_assert_eq!(&p.tail, &c.tail, "tail bytes are never mutated");
        prop_assert_eq!(&p.meta, &c.meta, "meta bytes are never mutated");
    }
}
