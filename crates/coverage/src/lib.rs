//! Coverage collection for the NecoFuzz reproduction.
//!
//! Models the paper's measurement pipeline (§4.1, §5.1): KCOV-style
//! basic-block traces, mapped to source lines (`addr2line`), restricted
//! to the nested-virtualization source files, with an AFL++-compatible
//! bitmap projection for the fuzzer's feedback loop.
//!
//! A *block* is a basic block of hypervisor code; each block statically
//! declares how many `nested.c` source lines it stands for. Line
//! coverage is span-weighted: `covered lines / total lines`, exactly the
//! quantity Table 2 reports. Cross-tool set algebra (`A∩B`, `A−B`)
//! operates on line sets.
//!
//! Everything on the per-execution path is built for reuse: the
//! [`ExecTrace`] hit index is dense and clears in O(touched blocks),
//! [`ExecScratch`] bundles the buffers one fuzzing iteration needs so
//! the steady-state loop performs no heap allocation, and the
//! [`bitmap`] set algebra operates on `u64` words with early-exit
//! skipping of uninteresting words (AFL++ `has_new_bits` style) while
//! staying bit-identical to the byte-at-a-time reference kept in
//! [`bitmap::bytewise`].

/// Identifies one instrumented source file (e.g. `vmx/nested.c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u16);

/// Identifies one instrumented basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Static description of an instrumented block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDef {
    /// The block's id (dense, assigned by the map).
    pub id: BlockId,
    /// File the block lives in.
    pub file: FileId,
    /// First line of the block in the *global* line index space.
    pub line_start: u32,
    /// Number of source lines the block spans.
    pub line_count: u32,
    /// Human-readable label (function/branch), for reports.
    pub label: &'static str,
}

/// The instrumentation registry of one hypervisor build: every file and
/// block, with the line geometry used by all coverage accounting.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CovMap {
    files: Vec<(String, u32)>, // (name, total lines)
    blocks: Vec<BlockDef>,
    next_line: u32,
}

impl CovMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        CovMap::default()
    }

    /// Registers an instrumented source file.
    pub fn add_file(&mut self, name: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u16);
        self.files.push((name.into(), 0));
        id
    }

    /// Registers a block spanning `line_count` lines of `file`.
    pub fn add_block(&mut self, file: FileId, line_count: u32, label: &'static str) -> BlockId {
        assert!(line_count > 0, "a block must span at least one line");
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockDef {
            id,
            file,
            line_start: self.next_line,
            line_count,
            label,
        });
        self.next_line += line_count;
        self.files[file.0 as usize].1 += line_count;
        id
    }

    /// Total instrumented lines in `file`.
    pub fn file_lines(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].1
    }

    /// Name of `file`.
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].0
    }

    /// Total lines across all files.
    pub fn total_lines(&self) -> u32 {
        self.next_line
    }

    /// Number of registered blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Looks up a block definition.
    pub fn block(&self, id: BlockId) -> &BlockDef {
        &self.blocks[id.0 as usize]
    }

    /// Iterates all block definitions.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockDef> {
        self.blocks.iter()
    }
}

/// The basic-block trace of a single execution (one fuzzing iteration).
///
/// Hit order is preserved for the AFL edge projection; hit sets feed the
/// cumulative line accounting. The hit index is *dense and reusable*:
/// per-block counts live in a flat vector indexed by block id, and
/// [`ExecTrace::clear`] resets only the touched slots, so a trace can be
/// recycled across millions of executions without reallocating (the
/// `BTreeMap` it replaced allocated a node per distinct block per exec).
#[derive(Debug, Default, Clone)]
pub struct ExecTrace {
    order: Vec<BlockId>,
    /// Dense per-block hit counts, indexed by block id.
    counts: Vec<u32>,
    /// Blocks with a non-zero count, in first-hit order.
    uniq: Vec<u32>,
}

/// Semantic equality: two traces are equal when they recorded the same
/// hit sequence. `counts` and `uniq` are derived from `order` (and
/// `counts` may carry trailing-zero capacity from [`ExecTrace::copy_from`]
/// on a recycled buffer), so only the sequence is compared.
impl PartialEq for ExecTrace {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
    }
}

impl Eq for ExecTrace {}

/// Walks the AFL++ edge projection of `order`: each (previous, current)
/// block pair hashes to a bitmap index. The `% size` fold is
/// strength-reduced to a mask when the map size is a power of two (the
/// shipped `MAP_SIZE` always is; the modulo survives for odd sizes).
#[inline]
fn project_edges(order: &[BlockId], size: usize, mut visit: impl FnMut(usize)) {
    let mask = size - 1;
    let pow2 = size.is_power_of_two();
    let mut prev: u32 = 0;
    for &BlockId(cur) in order {
        let hash = ((prev.wrapping_mul(0x9e37_79b9)) ^ cur.wrapping_mul(0x85eb_ca6b)) as usize;
        visit(if pow2 { hash & mask } else { hash % size });
        prev = cur.wrapping_shr(1).wrapping_add(cur << 7);
    }
}

impl ExecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ExecTrace::default()
    }

    /// Records a block hit.
    pub fn hit(&mut self, id: BlockId) {
        self.order.push(id);
        let idx = id.0 as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if self.counts[idx] == 0 {
            self.uniq.push(id.0);
        }
        self.counts[idx] += 1;
    }

    /// Unique blocks hit, in first-hit order.
    pub fn unique_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.uniq.iter().map(|&b| BlockId(b))
    }

    /// Number of times `id` was hit.
    pub fn hits_of(&self, id: BlockId) -> u32 {
        self.counts.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Number of hits (including repeats).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if nothing was hit.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Clears the trace for reuse, keeping every buffer's capacity.
    /// O(touched blocks), not O(instrumented blocks).
    pub fn clear(&mut self) {
        self.order.clear();
        for &b in &self.uniq {
            self.counts[b as usize] = 0;
        }
        self.uniq.clear();
    }

    /// Projects the trace onto an AFL++-style edge bitmap: each
    /// (previous, current) block pair hashes to a bitmap byte, which
    /// saturating-increments — the shared-memory interface the agent
    /// exposes to the fuzzer (§4.1).
    pub fn fill_afl_bitmap(&self, bitmap: &mut [u8]) {
        let size = bitmap.len();
        if size == 0 {
            return;
        }
        project_edges(&self.order, size, |edge| {
            bitmap[edge] = bitmap[edge].saturating_add(1);
        });
    }

    /// Overwrites this trace with the contents of `other`, reusing this
    /// trace's buffers (no allocation once capacities are warm). This is
    /// the prefix-cache restore path: a mid-scenario snapshot's recorded
    /// trace is copied back into the hypervisor's in-flight trace so the
    /// suffix extends it exactly as a full replay would have.
    pub fn copy_from(&mut self, other: &ExecTrace) {
        self.clear();
        self.order.extend_from_slice(&other.order);
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for &b in &other.uniq {
            self.uniq.push(b);
            self.counts[b as usize] = other.counts[b as usize];
        }
    }

    /// 128-bit FNV-1a digest of the hit sequence — the content key the
    /// prefix cache's blob store interns recorded traces under. Equal
    /// traces (see the [`PartialEq`] impl) digest equal regardless of
    /// buffer capacities.
    pub fn content_digest(&self) -> u128 {
        let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        for &BlockId(b) in &self.order {
            for byte in b.to_le_bytes() {
                h ^= u128::from(byte);
                h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
            }
        }
        h
    }

    /// Approximate heap footprint of the trace's buffers in bytes (the
    /// prefix cache's byte-budget accounting).
    pub fn approx_bytes(&self) -> usize {
        self.order.len() * std::mem::size_of::<BlockId>()
            + self.counts.len() * std::mem::size_of::<u32>()
            + self.uniq.len() * std::mem::size_of::<u32>()
    }

    /// Zeroes exactly the bytes [`ExecTrace::fill_afl_bitmap`] touched —
    /// the reuse path: wiping a handful of edges beats a map-sized
    /// memset by orders of magnitude. On a bitmap whose only non-zero
    /// bytes came from this trace's projection, the result is the
    /// all-zero map.
    pub fn wipe_afl_bitmap(&self, bitmap: &mut [u8]) {
        let size = bitmap.len();
        if size == 0 {
            return;
        }
        project_edges(&self.order, size, |edge| bitmap[edge] = 0);
    }
}

/// The reusable per-execution buffers of the zero-allocation hot path:
/// one of these lives for a whole campaign and is recycled every
/// iteration, so the steady-state execution loop performs no heap
/// allocation at all.
///
/// Ownership protocol (see `nf_core::engine`): call
/// [`ExecScratch::begin_exec`] before collecting a new execution, swap
/// the hypervisor's trace into [`ExecScratch::trace`], then
/// [`ExecScratch::project`] it. The invariant the targeted wipe relies
/// on: `bitmap` is non-zero exactly on the projection of `trace`.
#[derive(Debug, Clone)]
pub struct ExecScratch {
    /// Raw AFL hit-count bitmap of the latest execution.
    pub bitmap: Vec<u8>,
    /// Line coverage of the latest execution.
    pub lines: LineSet,
    /// The latest execution's trace (the swap target of
    /// `L0Hypervisor::swap_trace`).
    pub trace: ExecTrace,
}

impl ExecScratch {
    /// A scratch sized for `map`'s line geometry and a `map_size`-byte
    /// AFL bitmap.
    pub fn new(map: &CovMap, map_size: usize) -> Self {
        ExecScratch {
            bitmap: vec![0; map_size],
            lines: LineSet::for_map(map),
            trace: ExecTrace::new(),
        }
    }

    /// Rotates the scratch into a new execution: wipes the previous
    /// trace's bitmap projection edge-by-edge and clears the per-exec
    /// buffers in place (capacities kept).
    pub fn begin_exec(&mut self) {
        self.trace.wipe_afl_bitmap(&mut self.bitmap);
        self.trace.clear();
        self.lines.clear();
    }

    /// Projects [`ExecScratch::trace`] (typically just swapped out of a
    /// hypervisor) into the line set and the AFL bitmap.
    pub fn project(&mut self, map: &CovMap) {
        self.lines.add_trace(map, &self.trace);
        self.trace.fill_afl_bitmap(&mut self.bitmap);
    }
}

pub mod bitmap {
    //! Set algebra on AFL-style virgin bitmaps.
    //!
    //! A *virgin map* starts all-ones; every hit-count bucket a fuzzer
    //! observes clears its bit. The corpus-sync merge path (see
    //! `nf_fuzz::corpus`) exchanges coverage between workers as sparse
    //! *classified maps* — `(byte index, bucket bits)` pairs — and
    //! combines virgin maps so that siblings stop re-exploring each
    //! other's territory.
    //!
    //! The scan/merge/novelty/delta operations process the maps as
    //! `u64` words and skip whole words that cannot contribute (an
    //! all-zero raw word, an all-seen virgin word, an unchanged delta
    //! word) — the AFL++ `has_new_bits`/`classify_counts` trick. A raw
    //! bitmap after one execution is almost entirely zero, so the word
    //! loop touches bytes on a handful of words instead of all 64 Ki.
    //! Results are bit-identical to the byte-at-a-time reference
    //! implementations kept in [`bytewise`] (the compat mode of the
    //! `hotpath` bench; `crates/coverage/tests/bitmap_words.rs` holds
    //! the equivalence property suite).

    /// Classifies a raw hit count into its AFL bucket.
    pub fn bucket(count: u8) -> u8 {
        match count {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        }
    }

    /// Reads an 8-byte chunk as a little-endian word.
    #[inline]
    fn word(chunk: &[u8]) -> u64 {
        u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
    }

    /// Projects a raw hit-count bitmap onto its sparse classified form:
    /// `(index, bucket)` pairs for every non-zero byte, in index order.
    /// Allocating wrapper around [`classify_into`].
    pub fn classify(raw: &[u8]) -> Vec<(u32, u8)> {
        let mut out = Vec::new();
        classify_into(raw, &mut out);
        out
    }

    /// [`classify`] into a caller-owned buffer (cleared first), for
    /// callers holding a long-lived scratch; paths whose result must be
    /// owned (e.g. corpus promotion) reach the same word loop through
    /// the allocating wrapper. Skips all-zero words.
    pub fn classify_into(raw: &[u8], out: &mut Vec<(u32, u8)>) {
        out.clear();
        let mut chunks = raw.chunks_exact(8);
        let mut base = 0usize;
        for chunk in chunks.by_ref() {
            if word(chunk) != 0 {
                for (k, &b) in chunk.iter().enumerate() {
                    if b != 0 {
                        out.push(((base + k) as u32, bucket(b)));
                    }
                }
            }
            base += 8;
        }
        for (k, &b) in chunks.remainder().iter().enumerate() {
            if b != 0 {
                out.push(((base + k) as u32, bucket(b)));
            }
        }
    }

    /// The virgin-map novelty merge — the per-execution kernel of
    /// `Corpus::observe`: buckets every raw count and clears the newly
    /// seen bucket bits from `virgin`. Returns `true` when at least one
    /// bit was still virgin. Word-skips: an all-zero raw word buckets
    /// to nothing, an all-seen (zero) virgin word can learn nothing.
    pub fn merge_raw(virgin: &mut [u8], raw: &[u8]) -> bool {
        let n = virgin.len().min(raw.len());
        let mut new_bits = false;
        let words = n / 8;
        for w in 0..words {
            let i = w * 8;
            if word(&raw[i..i + 8]) == 0 || word(&virgin[i..i + 8]) == 0 {
                continue;
            }
            for k in i..i + 8 {
                let bucketed = bucket(raw[k]);
                if bucketed & virgin[k] != 0 {
                    virgin[k] &= !bucketed;
                    new_bits = true;
                }
            }
        }
        for k in words * 8..n {
            let bucketed = bucket(raw[k]);
            if bucketed & virgin[k] != 0 {
                virgin[k] &= !bucketed;
                new_bits = true;
            }
        }
        new_bits
    }

    /// Returns `true` if any bit of the classified map `cov` is still
    /// virgin in `virgin` — i.e. executing this input would teach the
    /// holder of `virgin` something new.
    pub fn is_novel_against(cov: &[(u32, u8)], virgin: &[u8]) -> bool {
        cov.iter()
            .any(|&(i, bits)| virgin.get(i as usize).is_some_and(|&v| bits & v != 0))
    }

    /// Clears every bit of the classified map `cov` from `virgin`.
    /// Returns `true` if at least one bit was still set.
    pub fn merge_classified(virgin: &mut [u8], cov: &[(u32, u8)]) -> bool {
        let mut new_bits = false;
        for &(i, bits) in cov {
            if let Some(v) = virgin.get_mut(i as usize) {
                if bits & *v != 0 {
                    *v &= !bits;
                    new_bits = true;
                }
            }
        }
        new_bits
    }

    /// Merges two virgin maps: after the call, `dst` treats as seen
    /// everything either map had seen (bitwise AND — virgin bits are
    /// set while *unseen*). Unconditionally word-parallel: a branchless
    /// AND sweep vectorizes (no skip test — unlike the scans above,
    /// every word costs one AND either way, so skipping would only add
    /// a data-dependent branch).
    pub fn merge_virgin(dst: &mut [u8], src: &[u8]) {
        let n = dst.len().min(src.len());
        let words = n / 8;
        for (d, s) in dst[..words * 8]
            .chunks_exact_mut(8)
            .zip(src[..words * 8].chunks_exact(8))
        {
            let merged = word(d) & word(s);
            d.copy_from_slice(&merged.to_le_bytes());
        }
        for k in words * 8..n {
            dst[k] &= src[k];
        }
    }

    /// The sparse set of bits seen in `now` but not yet in `then`
    /// (both virgin maps): the coverage delta between two watermarks.
    /// Allocating wrapper around [`cleared_since_into`].
    pub fn cleared_since(then: &[u8], now: &[u8]) -> Vec<(u32, u8)> {
        let mut out = Vec::new();
        cleared_since_into(then, now, &mut out);
        out
    }

    /// [`cleared_since`] into a caller-owned buffer (cleared first),
    /// for callers holding a long-lived scratch; the sync path's delta
    /// owns its result and reaches the same word loop through the
    /// allocating wrapper. Skips words where nothing was virgin or
    /// nothing moved.
    pub fn cleared_since_into(then: &[u8], now: &[u8], out: &mut Vec<(u32, u8)>) {
        out.clear();
        let n = then.len().min(now.len());
        let words = n / 8;
        for w in 0..words {
            let i = w * 8;
            let t = word(&then[i..i + 8]);
            if t == 0 || t == word(&now[i..i + 8]) {
                continue;
            }
            for k in i..i + 8 {
                let cleared = then[k] & !now[k];
                if cleared != 0 {
                    out.push((k as u32, cleared));
                }
            }
        }
        for k in words * 8..n {
            let cleared = then[k] & !now[k];
            if cleared != 0 {
                out.push((k as u32, cleared));
            }
        }
    }

    /// Applies a sparse cleared-bits delta to a virgin map.
    pub fn apply_cleared(virgin: &mut [u8], cleared: &[(u32, u8)]) {
        for &(i, bits) in cleared {
            if let Some(v) = virgin.get_mut(i as usize) {
                *v &= !bits;
            }
        }
    }

    pub mod segments {
        //! Sharded virgin-map algebra for the async sync path.
        //!
        //! The map is cut into fixed [`SEGMENT_BYTES`]-byte segments —
        //! 64 of them for the 64 KiB AFL map, so the set of *dirty*
        //! segments (touched since the last delta) fits one `u64` mask.
        //! `Corpus::observe` marks segments as it clears virgin bits;
        //! the delta/merge sweeps then visit only masked segments and
        //! skip the untouched ones wholesale, on top of the word-level
        //! skips inside each segment. A map longer than 64 segments
        //! saturates into the last mask bit (bit 63 covers the tail),
        //! which only costs precision, never correctness.
        //!
        //! `crates/coverage/tests/bitmap_segments.rs` holds the
        //! property suite pinning every masked sweep bit-identical to
        //! its whole-map counterpart.

        /// Bytes per virgin-map segment: 64 KiB / 64 mask bits.
        pub const SEGMENT_BYTES: usize = 1024;

        /// Number of segments covering a `len`-byte map (at least 1 for
        /// a non-empty map, capped at the 64 mask bits).
        pub fn segment_count(len: usize) -> usize {
            len.div_ceil(SEGMENT_BYTES).clamp(usize::from(len > 0), 64)
        }

        /// Byte range of segment `seg` within a `len`-byte map. The
        /// last segment absorbs any tail (remainder bytes and, on
        /// oversized maps, everything past the 64th segment).
        pub fn segment_range(seg: usize, len: usize) -> core::ops::Range<usize> {
            let start = (seg * SEGMENT_BYTES).min(len);
            let end = if seg + 1 >= segment_count(len) {
                len
            } else {
                ((seg + 1) * SEGMENT_BYTES).min(len)
            };
            start..end
        }

        /// The mask bit covering byte index `i`.
        fn segment_of_byte(i: usize) -> u64 {
            1u64 << (i / SEGMENT_BYTES).min(63)
        }

        /// [`super::merge_raw`] that additionally marks every segment
        /// it cleared a virgin bit in. Mutations and return value are
        /// bit-identical to the unmarked kernel; `dirty` only ever
        /// gains bits.
        pub fn merge_raw_marking(virgin: &mut [u8], raw: &[u8], dirty: &mut u64) -> bool {
            let n = virgin.len().min(raw.len());
            let mut new_bits = false;
            let words = n / 8;
            for w in 0..words {
                let i = w * 8;
                if super::word(&raw[i..i + 8]) == 0 || super::word(&virgin[i..i + 8]) == 0 {
                    continue;
                }
                for k in i..i + 8 {
                    let bucketed = super::bucket(raw[k]);
                    if bucketed & virgin[k] != 0 {
                        virgin[k] &= !bucketed;
                        *dirty |= segment_of_byte(k);
                        new_bits = true;
                    }
                }
            }
            for k in words * 8..n {
                let bucketed = super::bucket(raw[k]);
                if bucketed & virgin[k] != 0 {
                    virgin[k] &= !bucketed;
                    *dirty |= segment_of_byte(k);
                    new_bits = true;
                }
            }
            new_bits
        }

        /// [`super::cleared_since_into`] restricted to the segments in
        /// `dirty` — bit-identical output when `dirty` covers every
        /// segment that moved (which the marking merge guarantees).
        /// Returns the number of bytes actually scanned, the async
        /// path's `words_scanned` cost signal (in bytes, folded to
        /// words by the caller).
        pub fn cleared_since_segments(
            then: &[u8],
            now: &[u8],
            dirty: u64,
            out: &mut Vec<(u32, u8)>,
        ) -> u64 {
            out.clear();
            let n = then.len().min(now.len());
            let mut scanned = 0u64;
            for seg in 0..segment_count(n) {
                if dirty & (1u64 << seg.min(63)) == 0 {
                    continue;
                }
                let range = segment_range(seg, n);
                scanned += range.len() as u64;
                append_cleared(&then[range.clone()], &now[range.clone()], range.start, out);
            }
            scanned
        }

        /// The [`super::cleared_since_into`] word loop over one
        /// segment, emitting indices rebased by `base`.
        fn append_cleared(then: &[u8], now: &[u8], base: usize, out: &mut Vec<(u32, u8)>) {
            let n = then.len();
            let words = n / 8;
            for w in 0..words {
                let i = w * 8;
                let t = super::word(&then[i..i + 8]);
                if t == 0 || t == super::word(&now[i..i + 8]) {
                    continue;
                }
                for k in i..i + 8 {
                    let cleared = then[k] & !now[k];
                    if cleared != 0 {
                        out.push(((base + k) as u32, cleared));
                    }
                }
            }
            for k in words * 8..n {
                let cleared = then[k] & !now[k];
                if cleared != 0 {
                    out.push(((base + k) as u32, cleared));
                }
            }
        }

        /// [`super::merge_virgin`] restricted to the segments in
        /// `dirty`; untouched segments of `dst` keep their bytes.
        /// Returns the number of bytes swept.
        pub fn merge_virgin_segments(dst: &mut [u8], src: &[u8], dirty: u64) -> u64 {
            let n = dst.len().min(src.len());
            let mut scanned = 0u64;
            for seg in 0..segment_count(n) {
                if dirty & (1u64 << seg.min(63)) == 0 {
                    continue;
                }
                let range = segment_range(seg, n);
                scanned += range.len() as u64;
                super::merge_virgin(&mut dst[range.clone()], &src[range]);
            }
            scanned
        }

        /// Copies the segments in `dirty` from `src` into `dst` — the
        /// watermark snapshot after a delta, touching only the bytes
        /// the delta could have moved.
        pub fn copy_segments(dst: &mut [u8], src: &[u8], dirty: u64) {
            let n = dst.len().min(src.len());
            for seg in 0..segment_count(n) {
                if dirty & (1u64 << seg.min(63)) == 0 {
                    continue;
                }
                let range = segment_range(seg, n);
                dst[range.clone()].copy_from_slice(&src[range]);
            }
        }

        /// The segment mask touched by a sparse cleared-bits delta —
        /// how a receiver learns which of its segments an inbound
        /// [`super::apply_cleared`] moved.
        pub fn segments_of(cleared: &[(u32, u8)]) -> u64 {
            cleared
                .iter()
                .fold(0u64, |m, &(i, _)| m | segment_of_byte(i as usize))
        }
    }

    pub mod bytewise {
        //! Byte-at-a-time reference implementations of the word-level
        //! operations above — the semantics oracle.
        //!
        //! These are the original (pre-word-engine) loops, kept
        //! callable forever: the `bitmap_words` property suite asserts
        //! the word-level forms bit-identical to them, and the
        //! `hotpath` bench's compat mode measures them as the "before"
        //! in its speedup ratio. Not for production call sites.

        use super::bucket;

        /// Byte-wise [`super::classify`].
        pub fn classify(raw: &[u8]) -> Vec<(u32, u8)> {
            raw.iter()
                .enumerate()
                .filter(|(_, &b)| b != 0)
                .map(|(i, &b)| (i as u32, bucket(b)))
                .collect()
        }

        /// Byte-wise [`super::merge_raw`] (the original
        /// `Corpus::observe` scan).
        pub fn merge_raw(virgin: &mut [u8], raw: &[u8]) -> bool {
            let mut new_bits = false;
            let n = virgin.len().min(raw.len());
            for (v, &b) in virgin[..n].iter_mut().zip(raw) {
                let bucketed = bucket(b);
                if bucketed & *v != 0 {
                    *v &= !bucketed;
                    new_bits = true;
                }
            }
            new_bits
        }

        /// Byte-wise [`super::merge_virgin`].
        pub fn merge_virgin(dst: &mut [u8], src: &[u8]) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d &= s;
            }
        }

        /// Byte-wise [`super::cleared_since`].
        pub fn cleared_since(then: &[u8], now: &[u8]) -> Vec<(u32, u8)> {
            then.iter()
                .zip(now)
                .enumerate()
                .filter_map(|(i, (&t, &n))| {
                    let cleared = t & !n;
                    (cleared != 0).then_some((i as u32, cleared))
                })
                .collect()
        }
    }
}

/// A set of covered source lines in the global line index space.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LineSet {
    bits: Vec<u64>,
}

impl LineSet {
    /// Creates an empty set sized for `map`.
    pub fn for_map(map: &CovMap) -> Self {
        LineSet {
            bits: vec![0; (map.total_lines() as usize).div_ceil(64)],
        }
    }

    fn grow(&mut self, line: u32) {
        let word = line as usize / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
    }

    /// Marks every line of `block` covered.
    pub fn add_block(&mut self, block: &BlockDef) {
        for line in block.line_start..block.line_start + block.line_count {
            self.grow(line);
            self.bits[line as usize / 64] |= 1 << (line % 64);
        }
    }

    /// Adds every block of an execution trace.
    pub fn add_trace(&mut self, map: &CovMap, trace: &ExecTrace) {
        for id in trace.unique_blocks() {
            self.add_block(map.block(id));
        }
    }

    /// Clears every bit in place, keeping the allocation — the scratch
    /// reuse path ([`ExecScratch`]) calls this once per execution.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Returns `true` if `line` is covered.
    pub fn contains(&self, line: u32) -> bool {
        self.bits
            .get(line as usize / 64)
            .is_some_and(|w| w & (1 << (line % 64)) != 0)
    }

    /// Number of covered lines.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of covered lines belonging to `file`.
    pub fn count_in(&self, map: &CovMap, file: FileId) -> u32 {
        map.blocks()
            .filter(|b| b.file == file)
            .map(|b| {
                (b.line_start..b.line_start + b.line_count)
                    .filter(|&l| self.contains(l))
                    .count() as u32
            })
            .sum()
    }

    /// Union (`A ∪ B`), in place.
    pub fn union_with(&mut self, other: &LineSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (i, w) in other.bits.iter().enumerate() {
            self.bits[i] |= w;
        }
    }

    /// Intersection (`A ∩ B`), the Table 2 `A∩B` rows.
    pub fn intersect(&self, other: &LineSet) -> LineSet {
        let n = self.bits.len().min(other.bits.len());
        LineSet {
            bits: (0..n).map(|i| self.bits[i] & other.bits[i]).collect(),
        }
    }

    /// Difference (`A − B`), the Table 2 `A-B` rows.
    pub fn minus(&self, other: &LineSet) -> LineSet {
        LineSet {
            bits: self
                .bits
                .iter()
                .enumerate()
                .map(|(i, w)| w & !other.bits.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// `self.minus(other).count()` without materializing the
    /// difference set — corpus minimization calls this once per
    /// (round × entry) pair, where the allocation would dominate.
    pub fn minus_count(&self, other: &LineSet) -> u32 {
        self.bits
            .iter()
            .enumerate()
            .map(|(i, w)| (w & !other.bits.get(i).copied().unwrap_or(0)).count_ones())
            .sum()
    }

    /// The raw 64-line words backing the set (for serialization).
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a set from raw words produced by [`LineSet::as_words`].
    /// The round-trip is bit-identical.
    pub fn from_words(bits: Vec<u64>) -> Self {
        LineSet { bits }
    }

    /// Coverage fraction over the lines of `file` (0.0..=1.0).
    pub fn fraction_of(&self, map: &CovMap, file: FileId) -> f64 {
        let total = map.file_lines(file);
        if total == 0 {
            return 0.0;
        }
        self.count_in(map, file) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_map() -> (CovMap, FileId, Vec<BlockId>) {
        let mut map = CovMap::new();
        let f = map.add_file("vmx/nested.c");
        let ids = vec![
            map.add_block(f, 10, "check_a"),
            map.add_block(f, 5, "check_b"),
            map.add_block(f, 20, "commit"),
        ];
        (map, f, ids)
    }

    #[test]
    fn line_geometry() {
        let (map, f, _) = small_map();
        assert_eq!(map.total_lines(), 35);
        assert_eq!(map.file_lines(f), 35);
        assert_eq!(map.block(BlockId(1)).line_start, 10);
        assert_eq!(map.block_count(), 3);
    }

    #[test]
    fn trace_copy_from_replicates_hits_and_order() {
        let (_, _, ids) = small_map();
        let mut src = ExecTrace::new();
        src.hit(ids[1]);
        src.hit(ids[0]);
        src.hit(ids[1]);
        // The destination carries unrelated residue that copy_from must
        // clear, including counts for blocks the source never touched.
        let mut dst = ExecTrace::new();
        dst.hit(ids[2]);
        dst.copy_from(&src);
        // The full hit sequence (with repeats and order) survives: the
        // AFL edge projection is order-sensitive, so identical bitmaps
        // mean identical sequences.
        let (mut bm_src, mut bm_dst) = ([0u8; 64], [0u8; 64]);
        src.fill_afl_bitmap(&mut bm_src);
        dst.fill_afl_bitmap(&mut bm_dst);
        assert_eq!(bm_src, bm_dst);
        assert_eq!(
            dst.unique_blocks().collect::<Vec<_>>(),
            src.unique_blocks().collect::<Vec<_>>()
        );
        assert_eq!(dst.hits_of(ids[1]), 2);
        assert_eq!(dst.hits_of(ids[0]), 1);
        assert_eq!(dst.hits_of(ids[2]), 0, "residue must be cleared");
        assert_eq!(dst.len(), src.len());
        // Restored traces keep accumulating normally.
        dst.hit(ids[1]);
        assert_eq!(dst.hits_of(ids[1]), 3);
        assert!(dst.approx_bytes() > 0);
        let empty = ExecTrace::new();
        dst.copy_from(&empty);
        assert!(dst.is_empty());
    }

    #[test]
    fn trace_to_lineset() {
        let (map, f, ids) = small_map();
        let mut trace = ExecTrace::new();
        trace.hit(ids[0]);
        trace.hit(ids[0]); // repeat hits count once for lines
        trace.hit(ids[2]);
        let mut set = LineSet::for_map(&map);
        set.add_trace(&map, &trace);
        assert_eq!(set.count(), 30);
        assert_eq!(set.count_in(&map, f), 30);
        assert!((set.fraction_of(&map, f) - 30.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn set_algebra() {
        let (map, _, ids) = small_map();
        let mut a = LineSet::for_map(&map);
        a.add_block(map.block(ids[0]));
        a.add_block(map.block(ids[1]));
        let mut b = LineSet::for_map(&map);
        b.add_block(map.block(ids[1]));
        b.add_block(map.block(ids[2]));

        assert_eq!(a.intersect(&b).count(), 5);
        assert_eq!(a.minus(&b).count(), 10);
        assert_eq!(b.minus(&a).count(), 20);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 35);
    }

    #[test]
    fn multi_file_restriction() {
        let mut map = CovMap::new();
        let intel = map.add_file("vmx/nested.c");
        let amd = map.add_file("svm/nested.c");
        let bi = map.add_block(intel, 7, "intel_blk");
        let ba = map.add_block(amd, 3, "amd_blk");
        let mut set = LineSet::for_map(&map);
        set.add_block(map.block(bi));
        set.add_block(map.block(ba));
        assert_eq!(set.count_in(&map, intel), 7);
        assert_eq!(set.count_in(&map, amd), 3);
        assert_eq!(map.file_name(amd), "svm/nested.c");
    }

    #[test]
    fn afl_bitmap_projection_deterministic_and_order_sensitive() {
        let (_, _, ids) = small_map();
        let mut t1 = ExecTrace::new();
        t1.hit(ids[0]);
        t1.hit(ids[1]);
        let mut t2 = ExecTrace::new();
        t2.hit(ids[1]);
        t2.hit(ids[0]);

        let mut b1 = vec![0u8; 1 << 16];
        let mut b1b = vec![0u8; 1 << 16];
        let mut b2 = vec![0u8; 1 << 16];
        t1.fill_afl_bitmap(&mut b1);
        t1.fill_afl_bitmap(&mut b1b);
        t2.fill_afl_bitmap(&mut b2);
        assert_eq!(b1, b1b, "projection must be deterministic");
        assert_ne!(b1, b2, "edge projection must be order sensitive");
    }

    #[test]
    fn lineset_words_round_trip() {
        let (map, _, ids) = small_map();
        let mut set = LineSet::for_map(&map);
        set.add_block(map.block(ids[1]));
        let rebuilt = LineSet::from_words(set.as_words().to_vec());
        assert_eq!(set, rebuilt);
        assert_eq!(rebuilt.count(), 5);
    }

    #[test]
    fn bitmap_classify_and_novelty() {
        let mut raw = vec![0u8; 64];
        raw[3] = 1;
        raw[10] = 5;
        let cov = bitmap::classify(&raw);
        assert_eq!(cov, vec![(3, 1), (10, 8)]);

        let mut virgin = vec![0xff; 64];
        assert!(bitmap::is_novel_against(&cov, &virgin));
        assert!(bitmap::merge_classified(&mut virgin, &cov));
        assert!(!bitmap::is_novel_against(&cov, &virgin));
        assert!(!bitmap::merge_classified(&mut virgin, &cov));
        // A higher hit bucket on a merged edge is novel again.
        raw[10] = 200;
        assert!(bitmap::is_novel_against(&bitmap::classify(&raw), &virgin));
    }

    #[test]
    fn bitmap_virgin_merge_and_delta() {
        let mut a = vec![0xffu8; 16];
        let mut b = vec![0xffu8; 16];
        a[0] &= !0x01;
        b[5] &= !0x10;
        let before = a.clone();
        bitmap::merge_virgin(&mut a, &b);
        assert_eq!(a[0], 0xfe, "own bits kept");
        assert_eq!(a[5], 0xef, "sibling bits adopted");

        let cleared = bitmap::cleared_since(&before, &a);
        assert_eq!(cleared, vec![(5, 0x10)]);
        let mut c = vec![0xffu8; 16];
        bitmap::apply_cleared(&mut c, &cleared);
        assert_eq!(c[5], 0xef);
    }

    #[test]
    fn empty_trace_clears() {
        let mut t = ExecTrace::new();
        assert!(t.is_empty());
        t.hit(BlockId(0));
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn dense_trace_index_counts_and_recycles() {
        let mut t = ExecTrace::new();
        t.hit(BlockId(7));
        t.hit(BlockId(2));
        t.hit(BlockId(7));
        assert_eq!(t.hits_of(BlockId(7)), 2);
        assert_eq!(t.hits_of(BlockId(2)), 1);
        assert_eq!(t.hits_of(BlockId(100)), 0);
        let uniq: Vec<BlockId> = t.unique_blocks().collect();
        assert_eq!(uniq, vec![BlockId(7), BlockId(2)], "first-hit order");
        t.clear();
        assert_eq!(t.hits_of(BlockId(7)), 0);
        assert_eq!(t.unique_blocks().count(), 0);
        // Reuse after clear behaves like a fresh trace.
        t.hit(BlockId(2));
        assert_eq!(t.hits_of(BlockId(2)), 1);
        assert_eq!(t.unique_blocks().collect::<Vec<_>>(), vec![BlockId(2)]);
    }

    #[test]
    fn wipe_undoes_fill_exactly() {
        let (_, _, ids) = small_map();
        let mut t = ExecTrace::new();
        for &id in &[ids[0], ids[1], ids[0], ids[2]] {
            t.hit(id);
        }
        // Power-of-two and odd sizes exercise both index folds.
        for size in [1usize << 16, 1000] {
            let mut bitmap = vec![0u8; size];
            t.fill_afl_bitmap(&mut bitmap);
            assert!(bitmap.iter().any(|&b| b != 0));
            t.wipe_afl_bitmap(&mut bitmap);
            assert!(
                bitmap.iter().all(|&b| b == 0),
                "wipe must restore the all-zero map at size {size}"
            );
        }
    }

    #[test]
    fn scratch_round_trips_executions_without_residue() {
        let (map, _, ids) = small_map();
        let mut scratch = ExecScratch::new(&map, 1 << 16);
        scratch.begin_exec();
        scratch.trace.hit(ids[0]);
        scratch.trace.hit(ids[2]);
        scratch.project(&map);
        assert_eq!(scratch.lines.count(), 30);
        let first_bitmap = scratch.bitmap.clone();
        assert!(first_bitmap.iter().any(|&b| b != 0));

        // Next exec hits a different block: no residue from the first.
        scratch.begin_exec();
        scratch.trace.hit(ids[1]);
        scratch.project(&map);
        assert_eq!(scratch.lines.count(), 5);
        let mut expected = vec![0u8; 1 << 16];
        let mut fresh = ExecTrace::new();
        fresh.hit(ids[1]);
        fresh.fill_afl_bitmap(&mut expected);
        assert_eq!(scratch.bitmap, expected, "scratch equals a fresh buffer");
    }

    #[test]
    fn lineset_clear_keeps_capacity() {
        let (map, _, ids) = small_map();
        let mut set = LineSet::for_map(&map);
        set.add_block(map.block(ids[2]));
        assert_eq!(set.count(), 20);
        set.clear();
        assert_eq!(set.count(), 0);
        assert_eq!(set, LineSet::for_map(&map), "cleared == freshly sized");
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let mut raw = vec![0u8; 100]; // tail remainder (100 % 8 != 0)
        raw[3] = 1;
        raw[64] = 9;
        raw[99] = 255;
        let mut buf = Vec::new();
        bitmap::classify_into(&raw, &mut buf);
        assert_eq!(buf, bitmap::classify(&raw));

        let then = vec![0xffu8; 100];
        let mut now = then.clone();
        now[5] &= !0x11;
        now[99] &= !0x80;
        bitmap::cleared_since_into(&then, &now, &mut buf);
        assert_eq!(buf, bitmap::cleared_since(&then, &now));
        assert_eq!(buf, vec![(5, 0x11), (99, 0x80)]);
    }

    #[test]
    fn merge_raw_matches_bytewise_and_detects_novelty() {
        let mut raw = vec![0u8; 96];
        raw[0] = 1;
        raw[42] = 7;
        raw[95] = 200;
        let mut word_virgin = vec![0xffu8; 96];
        let mut byte_virgin = vec![0xffu8; 96];
        assert!(bitmap::merge_raw(&mut word_virgin, &raw));
        assert!(bitmap::bytewise::merge_raw(&mut byte_virgin, &raw));
        assert_eq!(word_virgin, byte_virgin);
        // Re-merging the same map finds nothing new in either form.
        assert!(!bitmap::merge_raw(&mut word_virgin, &raw));
        assert!(!bitmap::bytewise::merge_raw(&mut byte_virgin, &raw));
        assert_eq!(word_virgin, byte_virgin);
    }
}
