//! Coverage collection for the NecoFuzz reproduction.
//!
//! Models the paper's measurement pipeline (§4.1, §5.1): KCOV-style
//! basic-block traces, mapped to source lines (`addr2line`), restricted
//! to the nested-virtualization source files, with an AFL++-compatible
//! bitmap projection for the fuzzer's feedback loop.
//!
//! A *block* is a basic block of hypervisor code; each block statically
//! declares how many `nested.c` source lines it stands for. Line
//! coverage is span-weighted: `covered lines / total lines`, exactly the
//! quantity Table 2 reports. Cross-tool set algebra (`A∩B`, `A−B`)
//! operates on line sets.

use std::collections::BTreeMap;

/// Identifies one instrumented source file (e.g. `vmx/nested.c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u16);

/// Identifies one instrumented basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Static description of an instrumented block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDef {
    /// The block's id (dense, assigned by the map).
    pub id: BlockId,
    /// File the block lives in.
    pub file: FileId,
    /// First line of the block in the *global* line index space.
    pub line_start: u32,
    /// Number of source lines the block spans.
    pub line_count: u32,
    /// Human-readable label (function/branch), for reports.
    pub label: &'static str,
}

/// The instrumentation registry of one hypervisor build: every file and
/// block, with the line geometry used by all coverage accounting.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CovMap {
    files: Vec<(String, u32)>, // (name, total lines)
    blocks: Vec<BlockDef>,
    next_line: u32,
}

impl CovMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        CovMap::default()
    }

    /// Registers an instrumented source file.
    pub fn add_file(&mut self, name: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u16);
        self.files.push((name.into(), 0));
        id
    }

    /// Registers a block spanning `line_count` lines of `file`.
    pub fn add_block(&mut self, file: FileId, line_count: u32, label: &'static str) -> BlockId {
        assert!(line_count > 0, "a block must span at least one line");
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockDef {
            id,
            file,
            line_start: self.next_line,
            line_count,
            label,
        });
        self.next_line += line_count;
        self.files[file.0 as usize].1 += line_count;
        id
    }

    /// Total instrumented lines in `file`.
    pub fn file_lines(&self, file: FileId) -> u32 {
        self.files[file.0 as usize].1
    }

    /// Name of `file`.
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].0
    }

    /// Total lines across all files.
    pub fn total_lines(&self) -> u32 {
        self.next_line
    }

    /// Number of registered blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Looks up a block definition.
    pub fn block(&self, id: BlockId) -> &BlockDef {
        &self.blocks[id.0 as usize]
    }

    /// Iterates all block definitions.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockDef> {
        self.blocks.iter()
    }
}

/// The basic-block trace of a single execution (one fuzzing iteration).
///
/// Hit order is preserved for the AFL edge projection; hit sets feed the
/// cumulative line accounting.
#[derive(Debug, Default, Clone)]
pub struct ExecTrace {
    order: Vec<BlockId>,
    seen: BTreeMap<u32, u32>, // block -> hit count
}

impl ExecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ExecTrace::default()
    }

    /// Records a block hit.
    pub fn hit(&mut self, id: BlockId) {
        self.order.push(id);
        *self.seen.entry(id.0).or_insert(0) += 1;
    }

    /// Unique blocks hit.
    pub fn unique_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.seen.keys().map(|&b| BlockId(b))
    }

    /// Number of hits (including repeats).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if nothing was hit.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Clears the trace for reuse.
    pub fn clear(&mut self) {
        self.order.clear();
        self.seen.clear();
    }

    /// Projects the trace onto an AFL++-style edge bitmap: each
    /// (previous, current) block pair hashes to a bitmap byte, which
    /// saturating-increments — the shared-memory interface the agent
    /// exposes to the fuzzer (§4.1).
    pub fn fill_afl_bitmap(&self, bitmap: &mut [u8]) {
        let size = bitmap.len();
        if size == 0 {
            return;
        }
        let mut prev: u32 = 0;
        for &BlockId(cur) in &self.order {
            let edge =
                ((prev.wrapping_mul(0x9e37_79b9)) ^ cur.wrapping_mul(0x85eb_ca6b)) as usize % size;
            bitmap[edge] = bitmap[edge].saturating_add(1);
            prev = cur.wrapping_shr(1).wrapping_add(cur << 7);
        }
    }
}

pub mod bitmap {
    //! Set algebra on AFL-style virgin bitmaps.
    //!
    //! A *virgin map* starts all-ones; every hit-count bucket a fuzzer
    //! observes clears its bit. The corpus-sync merge path (see
    //! `nf_fuzz::corpus`) exchanges coverage between workers as sparse
    //! *classified maps* — `(byte index, bucket bits)` pairs — and
    //! combines virgin maps so that siblings stop re-exploring each
    //! other's territory.

    /// Classifies a raw hit count into its AFL bucket.
    pub fn bucket(count: u8) -> u8 {
        match count {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        }
    }

    /// Projects a raw hit-count bitmap onto its sparse classified form:
    /// `(index, bucket)` pairs for every non-zero byte, in index order.
    pub fn classify(raw: &[u8]) -> Vec<(u32, u8)> {
        raw.iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, &b)| (i as u32, bucket(b)))
            .collect()
    }

    /// Returns `true` if any bit of the classified map `cov` is still
    /// virgin in `virgin` — i.e. executing this input would teach the
    /// holder of `virgin` something new.
    pub fn is_novel_against(cov: &[(u32, u8)], virgin: &[u8]) -> bool {
        cov.iter()
            .any(|&(i, bits)| virgin.get(i as usize).is_some_and(|&v| bits & v != 0))
    }

    /// Clears every bit of the classified map `cov` from `virgin`.
    /// Returns `true` if at least one bit was still set.
    pub fn merge_classified(virgin: &mut [u8], cov: &[(u32, u8)]) -> bool {
        let mut new_bits = false;
        for &(i, bits) in cov {
            if let Some(v) = virgin.get_mut(i as usize) {
                if bits & *v != 0 {
                    *v &= !bits;
                    new_bits = true;
                }
            }
        }
        new_bits
    }

    /// Merges two virgin maps: after the call, `dst` treats as seen
    /// everything either map had seen (bitwise AND — virgin bits are
    /// set while *unseen*).
    pub fn merge_virgin(dst: &mut [u8], src: &[u8]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d &= s;
        }
    }

    /// The sparse set of bits seen in `now` but not yet in `then`
    /// (both virgin maps): the coverage delta between two watermarks.
    pub fn cleared_since(then: &[u8], now: &[u8]) -> Vec<(u32, u8)> {
        then.iter()
            .zip(now)
            .enumerate()
            .filter_map(|(i, (&t, &n))| {
                let cleared = t & !n;
                (cleared != 0).then_some((i as u32, cleared))
            })
            .collect()
    }

    /// Applies a sparse cleared-bits delta to a virgin map.
    pub fn apply_cleared(virgin: &mut [u8], cleared: &[(u32, u8)]) {
        for &(i, bits) in cleared {
            if let Some(v) = virgin.get_mut(i as usize) {
                *v &= !bits;
            }
        }
    }
}

/// A set of covered source lines in the global line index space.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LineSet {
    bits: Vec<u64>,
}

impl LineSet {
    /// Creates an empty set sized for `map`.
    pub fn for_map(map: &CovMap) -> Self {
        LineSet {
            bits: vec![0; (map.total_lines() as usize).div_ceil(64)],
        }
    }

    fn grow(&mut self, line: u32) {
        let word = line as usize / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
    }

    /// Marks every line of `block` covered.
    pub fn add_block(&mut self, block: &BlockDef) {
        for line in block.line_start..block.line_start + block.line_count {
            self.grow(line);
            self.bits[line as usize / 64] |= 1 << (line % 64);
        }
    }

    /// Adds every block of an execution trace.
    pub fn add_trace(&mut self, map: &CovMap, trace: &ExecTrace) {
        for id in trace.unique_blocks() {
            self.add_block(map.block(id));
        }
    }

    /// Returns `true` if `line` is covered.
    pub fn contains(&self, line: u32) -> bool {
        self.bits
            .get(line as usize / 64)
            .is_some_and(|w| w & (1 << (line % 64)) != 0)
    }

    /// Number of covered lines.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of covered lines belonging to `file`.
    pub fn count_in(&self, map: &CovMap, file: FileId) -> u32 {
        map.blocks()
            .filter(|b| b.file == file)
            .map(|b| {
                (b.line_start..b.line_start + b.line_count)
                    .filter(|&l| self.contains(l))
                    .count() as u32
            })
            .sum()
    }

    /// Union (`A ∪ B`), in place.
    pub fn union_with(&mut self, other: &LineSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (i, w) in other.bits.iter().enumerate() {
            self.bits[i] |= w;
        }
    }

    /// Intersection (`A ∩ B`), the Table 2 `A∩B` rows.
    pub fn intersect(&self, other: &LineSet) -> LineSet {
        let n = self.bits.len().min(other.bits.len());
        LineSet {
            bits: (0..n).map(|i| self.bits[i] & other.bits[i]).collect(),
        }
    }

    /// Difference (`A − B`), the Table 2 `A-B` rows.
    pub fn minus(&self, other: &LineSet) -> LineSet {
        LineSet {
            bits: self
                .bits
                .iter()
                .enumerate()
                .map(|(i, w)| w & !other.bits.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// `self.minus(other).count()` without materializing the
    /// difference set — corpus minimization calls this once per
    /// (round × entry) pair, where the allocation would dominate.
    pub fn minus_count(&self, other: &LineSet) -> u32 {
        self.bits
            .iter()
            .enumerate()
            .map(|(i, w)| (w & !other.bits.get(i).copied().unwrap_or(0)).count_ones())
            .sum()
    }

    /// The raw 64-line words backing the set (for serialization).
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a set from raw words produced by [`LineSet::as_words`].
    /// The round-trip is bit-identical.
    pub fn from_words(bits: Vec<u64>) -> Self {
        LineSet { bits }
    }

    /// Coverage fraction over the lines of `file` (0.0..=1.0).
    pub fn fraction_of(&self, map: &CovMap, file: FileId) -> f64 {
        let total = map.file_lines(file);
        if total == 0 {
            return 0.0;
        }
        self.count_in(map, file) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_map() -> (CovMap, FileId, Vec<BlockId>) {
        let mut map = CovMap::new();
        let f = map.add_file("vmx/nested.c");
        let ids = vec![
            map.add_block(f, 10, "check_a"),
            map.add_block(f, 5, "check_b"),
            map.add_block(f, 20, "commit"),
        ];
        (map, f, ids)
    }

    #[test]
    fn line_geometry() {
        let (map, f, _) = small_map();
        assert_eq!(map.total_lines(), 35);
        assert_eq!(map.file_lines(f), 35);
        assert_eq!(map.block(BlockId(1)).line_start, 10);
        assert_eq!(map.block_count(), 3);
    }

    #[test]
    fn trace_to_lineset() {
        let (map, f, ids) = small_map();
        let mut trace = ExecTrace::new();
        trace.hit(ids[0]);
        trace.hit(ids[0]); // repeat hits count once for lines
        trace.hit(ids[2]);
        let mut set = LineSet::for_map(&map);
        set.add_trace(&map, &trace);
        assert_eq!(set.count(), 30);
        assert_eq!(set.count_in(&map, f), 30);
        assert!((set.fraction_of(&map, f) - 30.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn set_algebra() {
        let (map, _, ids) = small_map();
        let mut a = LineSet::for_map(&map);
        a.add_block(map.block(ids[0]));
        a.add_block(map.block(ids[1]));
        let mut b = LineSet::for_map(&map);
        b.add_block(map.block(ids[1]));
        b.add_block(map.block(ids[2]));

        assert_eq!(a.intersect(&b).count(), 5);
        assert_eq!(a.minus(&b).count(), 10);
        assert_eq!(b.minus(&a).count(), 20);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 35);
    }

    #[test]
    fn multi_file_restriction() {
        let mut map = CovMap::new();
        let intel = map.add_file("vmx/nested.c");
        let amd = map.add_file("svm/nested.c");
        let bi = map.add_block(intel, 7, "intel_blk");
        let ba = map.add_block(amd, 3, "amd_blk");
        let mut set = LineSet::for_map(&map);
        set.add_block(map.block(bi));
        set.add_block(map.block(ba));
        assert_eq!(set.count_in(&map, intel), 7);
        assert_eq!(set.count_in(&map, amd), 3);
        assert_eq!(map.file_name(amd), "svm/nested.c");
    }

    #[test]
    fn afl_bitmap_projection_deterministic_and_order_sensitive() {
        let (_, _, ids) = small_map();
        let mut t1 = ExecTrace::new();
        t1.hit(ids[0]);
        t1.hit(ids[1]);
        let mut t2 = ExecTrace::new();
        t2.hit(ids[1]);
        t2.hit(ids[0]);

        let mut b1 = vec![0u8; 1 << 16];
        let mut b1b = vec![0u8; 1 << 16];
        let mut b2 = vec![0u8; 1 << 16];
        t1.fill_afl_bitmap(&mut b1);
        t1.fill_afl_bitmap(&mut b1b);
        t2.fill_afl_bitmap(&mut b2);
        assert_eq!(b1, b1b, "projection must be deterministic");
        assert_ne!(b1, b2, "edge projection must be order sensitive");
    }

    #[test]
    fn lineset_words_round_trip() {
        let (map, _, ids) = small_map();
        let mut set = LineSet::for_map(&map);
        set.add_block(map.block(ids[1]));
        let rebuilt = LineSet::from_words(set.as_words().to_vec());
        assert_eq!(set, rebuilt);
        assert_eq!(rebuilt.count(), 5);
    }

    #[test]
    fn bitmap_classify_and_novelty() {
        let mut raw = vec![0u8; 64];
        raw[3] = 1;
        raw[10] = 5;
        let cov = bitmap::classify(&raw);
        assert_eq!(cov, vec![(3, 1), (10, 8)]);

        let mut virgin = vec![0xff; 64];
        assert!(bitmap::is_novel_against(&cov, &virgin));
        assert!(bitmap::merge_classified(&mut virgin, &cov));
        assert!(!bitmap::is_novel_against(&cov, &virgin));
        assert!(!bitmap::merge_classified(&mut virgin, &cov));
        // A higher hit bucket on a merged edge is novel again.
        raw[10] = 200;
        assert!(bitmap::is_novel_against(&bitmap::classify(&raw), &virgin));
    }

    #[test]
    fn bitmap_virgin_merge_and_delta() {
        let mut a = vec![0xffu8; 16];
        let mut b = vec![0xffu8; 16];
        a[0] &= !0x01;
        b[5] &= !0x10;
        let before = a.clone();
        bitmap::merge_virgin(&mut a, &b);
        assert_eq!(a[0], 0xfe, "own bits kept");
        assert_eq!(a[5], 0xef, "sibling bits adopted");

        let cleared = bitmap::cleared_since(&before, &a);
        assert_eq!(cleared, vec![(5, 0x10)]);
        let mut c = vec![0xffu8; 16];
        bitmap::apply_cleared(&mut c, &cleared);
        assert_eq!(c[5], 0xef);
    }

    #[test]
    fn empty_trace_clears() {
        let mut t = ExecTrace::new();
        assert!(t.is_empty());
        t.hit(BlockId(0));
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }
}
