//! Equivalence property suite for the word-level bitmap engine:
//! every word-wise operation must be bit-identical to its
//! byte-at-a-time reference (`bitmap::bytewise`) — return values *and*
//! mutated state — across random maps including the adversarial
//! shapes: all-0x00 (maximum skip), all-0xff (no skip), sparse/dense
//! mixes, mismatched lengths, and tail remainders (lengths not a
//! multiple of the 8-byte word).

use nf_coverage::bitmap;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A raw hit-count bitmap of one of the shapes the engine meets:
/// `0` all-zero (an empty exec), `1` all-0xff (saturated), `2` sparse
/// (a realistic exec: a handful of edges), `3` dense random.
fn raw_map(rng: &mut SmallRng, len: usize, shape: u8) -> Vec<u8> {
    match shape {
        0 => vec![0; len],
        1 => vec![0xff; len],
        2 => {
            let mut raw = vec![0u8; len];
            for _ in 0..len / 16 {
                raw[rng.gen_range(0..len.max(1))] = rng.gen_range(1..=255);
            }
            raw
        }
        _ => (0..len).map(|_| rng.gen()).collect(),
    }
}

/// A virgin map: `0` all-virgin, `1` all-seen (maximum skip), `2`
/// mostly seen (late campaign), `3` random.
fn virgin_map(rng: &mut SmallRng, len: usize, shape: u8) -> Vec<u8> {
    match shape {
        0 => vec![0xff; len],
        1 => vec![0; len],
        2 => (0..len)
            .map(|_| if rng.gen_range(0..16u8) == 0 { 0xff } else { 0 })
            .collect(),
        _ => (0..len).map(|_| rng.gen()).collect(),
    }
}

/// Lengths covering the word-loop edge cases: empty, sub-word, exact
/// words, tail remainders, and a full AFL map.
fn pick_len(rng: &mut SmallRng) -> usize {
    const LENS: [usize; 8] = [0, 1, 7, 8, 9, 64, 100, 1 << 16];
    LENS[rng.gen_range(0..LENS.len())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn classify_matches_bytewise(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let shape = rng.gen_range(0..4u8);
        let raw = raw_map(&mut rng, len, shape);
        let mut via_into = vec![(9u32, 9u8)]; // stale garbage: _into must clear
        bitmap::classify_into(&raw, &mut via_into);
        prop_assert_eq!(&via_into, &bitmap::bytewise::classify(&raw));
        prop_assert_eq!(&via_into, &bitmap::classify(&raw));
    }

    #[test]
    fn merge_raw_matches_bytewise(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (vlen, rlen) = (pick_len(&mut rng), pick_len(&mut rng));
        let vshape = rng.gen_range(0..4u8);
        let rshape = rng.gen_range(0..4u8);
        let raw = raw_map(&mut rng, rlen, rshape);
        let mut word_virgin = virgin_map(&mut rng, vlen, vshape);
        let mut byte_virgin = word_virgin.clone();
        let novel_words = bitmap::merge_raw(&mut word_virgin, &raw);
        let novel_bytes = bitmap::bytewise::merge_raw(&mut byte_virgin, &raw);
        prop_assert_eq!(novel_words, novel_bytes, "novelty verdict diverged");
        prop_assert_eq!(&word_virgin, &byte_virgin, "virgin state diverged");
        // Idempotence: a second merge of the same raw map finds nothing.
        prop_assert!(!bitmap::merge_raw(&mut word_virgin, &raw));
    }

    #[test]
    fn merge_raw_agrees_with_the_sparse_novelty_test(seed in 0u64..1 << 48) {
        // The raw-map scan and the classified-map test are two views of
        // the same question: "would this exec teach `virgin` anything?"
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let rshape = rng.gen_range(0..4u8);
        let vshape = rng.gen_range(0..4u8);
        let raw = raw_map(&mut rng, len, rshape);
        let virgin = virgin_map(&mut rng, len, vshape);
        let sparse_says = bitmap::is_novel_against(&bitmap::classify(&raw), &virgin);
        let mut scratch = virgin.clone();
        prop_assert_eq!(bitmap::merge_raw(&mut scratch, &raw), sparse_says);
    }

    #[test]
    fn cleared_since_matches_bytewise(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (tlen, nlen) = (pick_len(&mut rng), pick_len(&mut rng));
        let tshape = rng.gen_range(0..4u8);
        let then = virgin_map(&mut rng, tlen, tshape);
        // Bias towards realistic deltas: `now` is `then` with a few more
        // bits seen — but raw random pairs must agree too.
        let nshape = rng.gen_range(0..4u8);
        let now = if rng.gen() {
            let mut now = virgin_map(&mut rng, nlen, 3);
            bitmap::merge_virgin(&mut now, &then);
            now
        } else {
            virgin_map(&mut rng, nlen, nshape)
        };
        let mut via_into = vec![(9u32, 9u8)];
        bitmap::cleared_since_into(&then, &now, &mut via_into);
        prop_assert_eq!(&via_into, &bitmap::bytewise::cleared_since(&then, &now));
        prop_assert_eq!(&via_into, &bitmap::cleared_since(&then, &now));
        // Round trip: applying the delta to `then` reproduces the
        // merge — on equal lengths the delta is exactly what moved.
        if then.len() == now.len() {
            let mut replay = then.clone();
            bitmap::apply_cleared(&mut replay, &via_into);
            let mut merged = then.clone();
            bitmap::merge_virgin(&mut merged, &now);
            prop_assert_eq!(replay, merged);
        }
    }

    #[test]
    fn merge_virgin_matches_bytewise(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (dlen, slen) = (pick_len(&mut rng), pick_len(&mut rng));
        let sshape = rng.gen_range(0..4u8);
        let dshape = rng.gen_range(0..4u8);
        let src = virgin_map(&mut rng, slen, sshape);
        let mut word_dst = virgin_map(&mut rng, dlen, dshape);
        let mut byte_dst = word_dst.clone();
        bitmap::merge_virgin(&mut word_dst, &src);
        bitmap::bytewise::merge_virgin(&mut byte_dst, &src);
        prop_assert_eq!(word_dst, byte_dst);
    }
}
