//! Property suite for the sharded virgin-map algebra
//! (`bitmap::segments`): every masked sweep must be bit-identical to
//! its whole-map counterpart whenever the dirty mask covers the
//! segments that moved — across random maps including the adversarial
//! shapes: all-0x00, all-0xff, sub-segment maps, tail remainders, and
//! maps longer than the 64-bit mask can address (tail saturation).

use nf_coverage::bitmap::{self, segments};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A raw hit-count bitmap: `0` all-zero, `1` all-0xff (saturated),
/// `2` sparse (a realistic exec), `3` dense random.
fn raw_map(rng: &mut SmallRng, len: usize, shape: u8) -> Vec<u8> {
    match shape {
        0 => vec![0; len],
        1 => vec![0xff; len],
        2 => {
            let mut raw = vec![0u8; len];
            for _ in 0..len / 16 {
                raw[rng.gen_range(0..len.max(1))] = rng.gen_range(1..=255);
            }
            raw
        }
        _ => (0..len).map(|_| rng.gen()).collect(),
    }
}

/// A virgin map: `0` all-virgin, `1` all-seen, `2` mostly seen (late
/// campaign), `3` random.
fn virgin_map(rng: &mut SmallRng, len: usize, shape: u8) -> Vec<u8> {
    match shape {
        0 => vec![0xff; len],
        1 => vec![0; len],
        2 => (0..len)
            .map(|_| if rng.gen_range(0..16u8) == 0 { 0xff } else { 0 })
            .collect(),
        _ => (0..len).map(|_| rng.gen()).collect(),
    }
}

/// Lengths covering the segment-loop edge cases: empty, sub-word,
/// sub-segment, exact segment, segment + tail, the full AFL map
/// (exactly 64 segments), and an oversized map that saturates the
/// mask's last bit.
fn pick_len(rng: &mut SmallRng) -> usize {
    const LENS: [usize; 9] = [
        0,
        1,
        100,
        1024,
        1025,
        4096 + 7,
        1 << 16,
        (1 << 16) + 9,
        80_000,
    ];
    LENS[rng.gen_range(0..LENS.len())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn marking_merge_matches_merge_raw(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let (rshape, vshape) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
        let raw = raw_map(&mut rng, len, rshape);
        let mut marked = virgin_map(&mut rng, len, vshape);
        let mut plain = marked.clone();
        let mut dirty = 0u64;
        let novel_marked = segments::merge_raw_marking(&mut marked, &raw, &mut dirty);
        let novel_plain = bitmap::merge_raw(&mut plain, &raw);
        prop_assert_eq!(novel_marked, novel_plain, "novelty verdict diverged");
        prop_assert_eq!(&marked, &plain, "virgin state diverged");
        prop_assert_eq!(novel_marked, dirty != 0, "novelty must mark a segment");
    }

    #[test]
    fn marked_segments_cover_every_moved_byte(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let (rshape, vshape) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
        let raw = raw_map(&mut rng, len, rshape);
        let before = virgin_map(&mut rng, len, vshape);
        let mut after = before.clone();
        let mut dirty = 0u64;
        segments::merge_raw_marking(&mut after, &raw, &mut dirty);
        let moved = bitmap::cleared_since(&before, &after);
        prop_assert_eq!(segments::segments_of(&moved) & !dirty, 0,
            "a byte moved in an unmarked segment");
    }

    #[test]
    fn masked_cleared_since_matches_whole_map(seed in 0u64..1 << 48) {
        // Drive `now` from `then` through the marking merge, so the
        // mask is exactly the honest record of what moved.
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let tshape = rng.gen_range(0..4u8);
        let then = virgin_map(&mut rng, len, tshape);
        let mut now = then.clone();
        let mut dirty = 0u64;
        for _ in 0..rng.gen_range(0..3usize) {
            let rshape = rng.gen_range(0..4u8);
            let raw = raw_map(&mut rng, len, rshape);
            segments::merge_raw_marking(&mut now, &raw, &mut dirty);
        }
        let mut masked = vec![(9u32, 9u8)]; // stale garbage: must clear
        segments::cleared_since_segments(&then, &now, dirty, &mut masked);
        prop_assert_eq!(&masked, &bitmap::cleared_since(&then, &now));
        // A full mask is always a safe over-approximation.
        let mut full = Vec::new();
        segments::cleared_since_segments(&then, &now, u64::MAX, &mut full);
        prop_assert_eq!(&full, &bitmap::cleared_since(&then, &now));
    }

    #[test]
    fn masked_merge_virgin_matches_whole_map(seed in 0u64..1 << 48) {
        // When the mask covers every segment where `src` knows more
        // than `dst`, the masked merge equals the whole-map merge.
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let (sshape, dshape) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
        let src = virgin_map(&mut rng, len, sshape);
        let mut masked_dst = virgin_map(&mut rng, len, dshape);
        let mut whole_dst = masked_dst.clone();
        let dirty = segments::segments_of(&bitmap::cleared_since(&masked_dst, &src));
        segments::merge_virgin_segments(&mut masked_dst, &src, dirty);
        bitmap::merge_virgin(&mut whole_dst, &src);
        prop_assert_eq!(&masked_dst, &whole_dst);
    }

    #[test]
    fn copy_segments_snapshots_exactly_the_mask(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let (sshape, oshape) = (rng.gen_range(0..4u8), rng.gen_range(0..4u8));
        let src = virgin_map(&mut rng, len, sshape);
        let orig = virgin_map(&mut rng, len, oshape);
        let dirty: u64 = rng.gen();
        let mut dst = orig.clone();
        segments::copy_segments(&mut dst, &src, dirty);
        for seg in 0..segments::segment_count(len) {
            let range = segments::segment_range(seg, len);
            let expect = if dirty & (1u64 << seg) != 0 { &src } else { &orig };
            prop_assert_eq!(&dst[range.clone()], &expect[range]);
        }
        // Full mask == plain copy; empty mask == no-op.
        let mut full = orig.clone();
        segments::copy_segments(&mut full, &src, u64::MAX);
        prop_assert_eq!(&full, &src);
        let mut none = orig.clone();
        segments::copy_segments(&mut none, &src, 0);
        prop_assert_eq!(&none, &orig);
    }

    #[test]
    fn segment_ranges_tile_the_map(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = pick_len(&mut rng);
        let count = segments::segment_count(len);
        prop_assert_eq!(count == 0, len == 0);
        let mut covered = 0usize;
        for seg in 0..count {
            let range = segments::segment_range(seg, len);
            prop_assert_eq!(range.start, covered, "segments must abut");
            covered = range.end;
        }
        prop_assert_eq!(covered, len, "segments must cover the map");
    }
}
