//! Deterministic fault injection for the L0 hypervisor models.
//!
//! Long-haul fleets must survive backends that hang, restores that
//! fail, and hosts that die mid-campaign — and the tolerance machinery
//! that survives them can only be tested if such failures can be
//! *provoked on demand, reproducibly*. This module is that seam: a
//! [`FaultPlan`] names per-class fault rates plus a seed, and a
//! [`FaultInjector`] turns the plan into a schedule that is a pure
//! function of `(plan, exec index, input content)` — the same plan on
//! the same campaign produces the identical fault sequence, every run.
//!
//! Four fault classes are modeled (paper §3.2's watchdog motivation,
//! plus the restore/capture failure modes of the snapshot engine):
//!
//! - **Hung exec** — a vmexit loop that never terminates. *Content*-
//!   indexed (a hash of the fuzz input decides), so a hanging input
//!   hangs again on replay: the agent's fuel watchdog classifies it as
//!   a [`CrashKind::HungExec`](crate::CrashKind::HungExec) finding that
//!   is deduped, minimized, and replay-validated like any crash.
//! - **Transient restore failure** — `restore()` fails once; a retry
//!   succeeds. *Schedule*-indexed (exec index + per-exec ordinal).
//! - **Permanent restore failure** — `restore()` of the current boot
//!   image keeps failing; the engine must quarantine the image and
//!   degrade to factory-rebuild servicing.
//! - **Capture corruption** — a snapshot capture produces a bad digest
//!   and must be discarded (prefix-trie boundary captures).
//! - **Delayed host death** — the host dies silently mid-exec after a
//!   bounded number of instructions (no sanitizer report; only the
//!   watchdog notices).
//!
//! All backends consult the injector through one shared handle
//! ([`SharedFaults`]) installed by
//! [`L0Hypervisor::install_faults`](crate::L0Hypervisor::install_faults):
//! every guest instruction ticks the injector ([`tick`]), and every
//! snapshot restore goes through
//! [`L0Hypervisor::try_restore`](crate::L0Hypervisor::try_restore),
//! which asks [`FaultInjector::check_restore`] first.

use std::cell::RefCell;
use std::rc::Rc;

use crate::sanitizer::HostHealth;

/// Default per-exec instruction-fuel budget of the exec watchdog. Far
/// above what any real scenario consumes (a full init + runtime pass is
/// a few hundred instructions), so a fault-free campaign never trips
/// it and a zero-rate plan stays bit-identical to no plan at all.
pub const DEFAULT_WATCHDOG_FUEL: u64 = 1 << 20;

/// Fuel consumed per instruction once an exec is hung: the modeled
/// vmexit loop spins this many times per driven instruction, so the
/// watchdog budget exhausts within a handful of instructions instead
/// of after a million.
const HANG_SPIN_COST: u64 = 1 << 16;

/// Hung-exec findings are bucketed into this many stable bug ids so a
/// campaign can surface several distinct hang sites (deduped per
/// bucket) while `bug_id` stays `&'static str` like every sanitizer id.
const HANG_BUCKETS: usize = 4;

static HANG_BUG_IDS: [&str; HANG_BUCKETS] = [
    "fault-hung-exec-0",
    "fault-hung-exec-1",
    "fault-hung-exec-2",
    "fault-hung-exec-3",
];

/// A failed snapshot restore, as surfaced by
/// [`L0Hypervisor::try_restore`](crate::L0Hypervisor::try_restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreFault {
    /// The restore failed this once; retrying may succeed.
    Transient,
    /// The restored image is poisoned; every retry will fail. The
    /// caller must quarantine the image and rebuild from the factory.
    Permanent,
}

impl std::fmt::Display for RestoreFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreFault::Transient => write!(f, "transient restore fault"),
            RestoreFault::Permanent => write!(f, "permanent restore fault"),
        }
    }
}

/// A seeded, per-class fault schedule. Rates are expressed in parts
/// per 65536 (`p16`); `0` everywhere (the [`Default`]) injects nothing.
///
/// The plan is pure data: two campaigns given equal plans (and equal
/// configs) observe the identical fault sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Hung-exec rate (content-indexed), parts per 65536.
    pub hang_p16: u32,
    /// Transient restore-failure rate (schedule-indexed), parts per 65536.
    pub transient_restore_p16: u32,
    /// Permanent restore-failure rate (schedule-indexed), parts per 65536.
    pub permanent_restore_p16: u32,
    /// Snapshot-capture corruption rate (schedule-indexed), parts per 65536.
    pub capture_corrupt_p16: u32,
    /// Delayed host-death rate (schedule-indexed), parts per 65536.
    pub host_death_p16: u32,
}

impl FaultPlan {
    /// A composite plan injecting all classes at an overall `rate`
    /// (0.0..=1.0) split across them: half the budget goes to hangs,
    /// a quarter to transient restore failures, an eighth each to
    /// capture corruption and host death, and one permanent restore
    /// failure per ~64 transient ones (permanent faults cost a full
    /// factory rebuild, so they are kept rare).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let p16 = |f: f64| (f * 65536.0) as u32;
        FaultPlan {
            seed,
            hang_p16: p16(rate / 2.0),
            transient_restore_p16: p16(rate / 4.0),
            permanent_restore_p16: p16(rate / 256.0),
            capture_corrupt_p16: p16(rate / 8.0),
            host_death_p16: p16(rate / 8.0),
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.hang_p16 == 0
            && self.transient_restore_p16 == 0
            && self.permanent_restore_p16 == 0
            && self.capture_corrupt_p16 == 0
            && self.host_death_p16 == 0
    }

    /// The content-indexed subset of the plan: only fault classes that
    /// are a pure function of the *input* survive. Replay and
    /// minimization install this subset so a hanging input hangs again
    /// wherever it is replayed, while schedule-indexed faults (tied to
    /// the original campaign's exec positions) don't fire spuriously.
    pub fn replay_subset(&self) -> Self {
        FaultPlan {
            seed: self.seed,
            hang_p16: self.hang_p16,
            ..FaultPlan::default()
        }
    }
}

// Decision streams: a distinct constant per fault class keeps the
// per-class schedules independent even under one seed.
const STREAM_HANG: u64 = 0x6861_6e67; // "hang"
const STREAM_RESTORE_T: u64 = 0x7265_7374; // "rest"
const STREAM_RESTORE_P: u64 = 0x7065_726d; // "perm"
const STREAM_CAPTURE: u64 = 0x6361_7074; // "capt"
const STREAM_DEATH: u64 = 0x6465_6164; // "dead"

/// SplitMix64-style finalizer over the plan seed, a class stream, and
/// two schedule coordinates — the single source of every fault
/// decision.
fn mix(seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(a)
        .wrapping_mul(0x94d0_49bb_1331_11eb)
        .wrapping_add(b);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether a roll at probability `p16`/65536 fires.
fn fires(word: u64, p16: u32) -> bool {
    p16 > 0 && (word & 0xffff) < u64::from(p16)
}

/// The deterministic fault scheduler. One injector is shared (via
/// [`SharedFaults`]) between the agent (which opens each exec), the
/// engine (which asks about captures), and every hypervisor instance
/// the engine boots (which tick it per instruction and ask about
/// restores).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Exec index of the current execution (the agent's exec counter,
    /// so a resumed campaign continues the schedule exactly).
    exec: u64,
    /// Remaining instruction fuel of the current exec.
    fuel: u64,
    /// Whether the current exec is scheduled to hang, and under which
    /// bucketed bug id.
    hang: Option<&'static str>,
    /// Instructions until the host silently dies this exec.
    death_in: Option<u64>,
    /// Restore calls seen within the current exec (schedule ordinal).
    restore_ordinal: u64,
    /// Capture calls seen within the current exec (schedule ordinal).
    capture_ordinal: u64,
    /// Hung execs the watchdog classified.
    pub hangs_fired: u64,
    /// Silent host deaths injected.
    pub deaths_fired: u64,
}

impl FaultInjector {
    /// An injector for `plan`, idle until the first
    /// [`FaultInjector::begin_exec`].
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            exec: 0,
            fuel: DEFAULT_WATCHDOG_FUEL,
            hang: None,
            death_in: None,
            restore_ordinal: 0,
            capture_ordinal: 0,
            hangs_fired: 0,
            deaths_fired: 0,
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Opens execution `exec` over an input with content digest
    /// `input_digest`, arming this exec's faults and resetting the
    /// watchdog fuel to `fuel`. Passing the agent's own exec counter
    /// (not an internal one) keeps the schedule exact across
    /// checkpoint/resume.
    pub fn begin_exec(&mut self, exec: u64, input_digest: u64, fuel: u64) {
        self.exec = exec;
        self.fuel = fuel;
        self.restore_ordinal = 0;
        self.capture_ordinal = 0;
        let h = mix(self.plan.seed, STREAM_HANG, input_digest, 0);
        self.hang =
            fires(h, self.plan.hang_p16).then(|| HANG_BUG_IDS[(h >> 16) as usize % HANG_BUCKETS]);
        let d = mix(self.plan.seed, STREAM_DEATH, exec, 0);
        // Die 1..=64 instructions in: deep enough that part of the
        // scenario executed, silent (no report) — only the agent's
        // watchdog notices at the next iteration.
        self.death_in = fires(d, self.plan.host_death_p16).then(|| 1 + ((d >> 16) & 63));
    }

    /// One guest instruction executed: burns fuel (a hung exec spins a
    /// vmexit loop and burns `HANG_SPIN_COST` per instruction), fires
    /// the scheduled host death, and — when the fuel budget exhausts —
    /// classifies the exec as hung: a [`HostHealth::hung_exec`] report
    /// plus host death, which the agent's watchdog then services.
    pub fn on_instr(&mut self, health: &mut HostHealth) {
        if health.dead {
            return;
        }
        if let Some(left) = self.death_in.as_mut() {
            *left -= 1;
            if *left == 0 {
                self.death_in = None;
                self.deaths_fired += 1;
                // Silent: the host stops responding with no report —
                // the class only a watchdog can observe.
                health.dead = true;
                return;
            }
        }
        let cost = if self.hang.is_some() {
            HANG_SPIN_COST
        } else {
            1
        };
        self.fuel = self.fuel.saturating_sub(cost);
        if self.fuel == 0 {
            if let Some(bug_id) = self.hang.take() {
                self.hangs_fired += 1;
                health.hung_exec(bug_id, "exec exceeded its watchdog fuel budget");
            } else {
                // Fuel exhausted without an injected hang: a genuinely
                // runaway exec (possible under tiny --watchdog-fuel).
                self.hangs_fired += 1;
                health.hung_exec(
                    "fault-hung-exec-0",
                    "exec exceeded its watchdog fuel budget",
                );
            }
        }
    }

    /// Whether the current exec is scheduled to hang (diagnostic).
    pub fn hang_pending(&self) -> bool {
        self.hang.is_some()
    }

    /// Asks whether the next snapshot restore fails. Schedule-indexed:
    /// a pure function of `(plan, exec, per-exec restore ordinal)`, so
    /// retries of the same logical restore re-roll (a transient fault
    /// clears) while a permanent fault is sticky for the whole exec.
    pub fn check_restore(&mut self) -> Result<(), RestoreFault> {
        let ordinal = self.restore_ordinal;
        self.restore_ordinal += 1;
        let p = mix(self.plan.seed, STREAM_RESTORE_P, self.exec, 0);
        if fires(p, self.plan.permanent_restore_p16) {
            return Err(RestoreFault::Permanent);
        }
        let t = mix(self.plan.seed, STREAM_RESTORE_T, self.exec, ordinal);
        if fires(t, self.plan.transient_restore_p16) {
            return Err(RestoreFault::Transient);
        }
        Ok(())
    }

    /// Asks whether the next snapshot capture comes back corrupted
    /// (bad digest) and must be discarded.
    pub fn check_capture(&mut self) -> bool {
        let ordinal = self.capture_ordinal;
        self.capture_ordinal += 1;
        let c = mix(self.plan.seed, STREAM_CAPTURE, self.exec, ordinal);
        fires(c, self.plan.capture_corrupt_p16)
    }
}

/// The shared injector handle: one per (single-threaded) campaign,
/// cloned into every hypervisor instance the engine boots.
pub type SharedFaults = Rc<RefCell<FaultInjector>>;

/// Builds a [`SharedFaults`] handle for `plan`.
pub fn shared(plan: FaultPlan) -> SharedFaults {
    Rc::new(RefCell::new(FaultInjector::new(plan)))
}

/// Per-instruction injector consult, shared by every backend's
/// `l1_exec`/`l2_exec`: ticks the injector (fuel, hangs, delayed
/// death) against the instance's health surface. A `None` handle (no
/// plan installed) is free.
#[inline]
pub fn tick(faults: &Option<SharedFaults>, health: &mut HostHealth) {
    if let Some(f) = faults {
        f.borrow_mut().on_instr(health);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        let mut health = HostHealth::new();
        for exec in 0..200 {
            inj.begin_exec(exec, exec.wrapping_mul(0x9e37), DEFAULT_WATCHDOG_FUEL);
            for _ in 0..64 {
                inj.on_instr(&mut health);
            }
            assert!(inj.check_restore().is_ok());
            assert!(!inj.check_capture());
        }
        assert!(!health.dead);
        assert!(health.reports.is_empty());
        assert_eq!(inj.hangs_fired + inj.deaths_fired, 0);
    }

    #[test]
    fn schedules_are_plan_deterministic() {
        let plan = FaultPlan::uniform(7, 0.05);
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let mut health = HostHealth::new();
            let mut log = Vec::new();
            for exec in 0..400u64 {
                inj.begin_exec(exec, mix(1, 2, exec, 3), DEFAULT_WATCHDOG_FUEL);
                // Longer than the deepest scheduled death (64 instrs)
                // and a hung exec's fuel horizon (16 spins).
                for _ in 0..80 {
                    inj.on_instr(&mut health);
                }
                log.push((health.dead, inj.check_restore().err(), inj.check_capture()));
                health = HostHealth::new();
            }
            (log, inj.hangs_fired, inj.deaths_fired)
        };
        assert_eq!(run(), run());
        let (_, hangs, deaths) = run();
        assert!(hangs > 0, "5% plan must hang something in 400 execs");
        assert!(deaths > 0, "5% plan must kill something in 400 execs");
    }

    #[test]
    fn hangs_are_content_indexed() {
        let plan = FaultPlan {
            seed: 3,
            hang_p16: 65536 / 50,
            ..FaultPlan::default()
        };
        // Find a hanging digest, then verify it hangs at any exec index.
        let mut inj = FaultInjector::new(plan);
        let mut health = HostHealth::new();
        let digest = (0..10_000u64)
            .find(|&d| {
                inj.begin_exec(0, d, DEFAULT_WATCHDOG_FUEL);
                inj.hang_pending()
            })
            .expect("a 2% hang rate hits within 10k digests");
        for exec in [0, 17, 123_456] {
            inj.begin_exec(exec, digest, DEFAULT_WATCHDOG_FUEL);
            assert!(inj.hang_pending(), "hangs must not depend on exec index");
        }
        // And the hang actually exhausts the fuel into a report.
        inj.begin_exec(9, digest, DEFAULT_WATCHDOG_FUEL);
        for _ in 0..64 {
            inj.on_instr(&mut health);
        }
        assert!(health.dead);
        assert_eq!(health.reports.len(), 1);
        assert_eq!(health.reports[0].kind, crate::CrashKind::HungExec);
        assert!(health.reports[0].bug_id.starts_with("fault-hung-exec-"));
    }

    #[test]
    fn transient_restore_faults_clear_on_retry() {
        let plan = FaultPlan {
            seed: 11,
            transient_restore_p16: 65536 / 20,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let mut saw_fault = false;
        for exec in 0..2000u64 {
            inj.begin_exec(exec, 0, DEFAULT_WATCHDOG_FUEL);
            let mut attempts = 0;
            while inj.check_restore().is_err() {
                saw_fault = true;
                attempts += 1;
                assert!(attempts < 8, "transient faults must clear under retry");
            }
        }
        assert!(saw_fault, "5% transient rate must fire within 2000 execs");
    }

    #[test]
    fn replay_subset_keeps_only_content_faults() {
        let plan = FaultPlan::uniform(5, 0.05);
        let sub = plan.replay_subset();
        assert_eq!(sub.hang_p16, plan.hang_p16);
        assert_eq!(sub.seed, plan.seed);
        assert_eq!(
            sub.transient_restore_p16
                + sub.permanent_restore_p16
                + sub.capture_corrupt_p16
                + sub.host_death_p16,
            0
        );
    }
}
