//! vvbox — the Oracle VirtualBox 7.0.12 model (Intel only).
//!
//! VirtualBox's nested VMX implementation validates most of VMCS12 but
//! **skips the canonicality check on VM-entry MSR-load values**
//! (CVE-2024-21106, Table 6 row 2): a non-canonical address loaded into
//! `MSR_KERNEL_GS_BASE` reaches a host-context `wrmsr` and raises a
//! general protection fault in the host — the exact log line the paper
//! quotes is reproduced in the health report.

mod blocks;

pub use blocks::VBlk;

use std::collections::BTreeMap;

use nf_coverage::{BlockId, CovMap, ExecTrace, FileId};
use nf_silicon::{
    golden_vmcs, launch_state_check, vmclear_check, vmptrld_check, vmread_check, vmwrite_check,
    vmx_exit_for, vmxon_check, GuestInstr, VmInstrError,
};
use nf_vmx::{ExitReason, MsrArea, Vmcb, Vmcs, VmcsField, VmcsState, VmxCapabilities};
use nf_x86::addr::VirtAddr;
use nf_x86::{CpuFeature, CpuVendor, Cr0, Cr4, Efer, FeatureSet, Msr};

use std::sync::Arc;

use crate::api::{HvConfig, HvSnapshot, IoctlOp, L0Hypervisor, L1Result, L2Result};
use crate::fault::{RestoreFault, SharedFaults};
use crate::restore_fields;
use crate::sanitizer::HostHealth;
use crate::store::{
    digest_msr_area, digest_vmcs, msr_area_bytes, share_map, share_opt, vmcs_bytes, SnapshotStore,
};

/// Seeded-bug switch; `false` = vulnerable (as evaluated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VvboxBugs {
    /// Validate MSR-load values with full `wrmsr` semantics (the
    /// CVE-2024-21106 fix).
    pub msr_load_fixed: bool,
}

/// The mutable-state image of a [`Vvbox`] instance (see
/// [`crate::HvSnapshot`]). Compare snapshots with `==` to assert
/// round-trip identity; the fields themselves are an internal detail.
#[derive(Debug, Clone, PartialEq)]
pub struct VvboxSnapshot {
    bugs: VvboxBugs,
    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,
    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Arc<Vmcs>>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, Arc<MsrArea>>,
    vmcs02: Option<Arc<Vmcs>>,
    in_l2: bool,
    pending_host_msrs: Vec<(u32, u64)>,
    health: HostHealth,
}

impl VvboxSnapshot {
    /// Interns every `Arc`-held component into `store`, canonicalizing
    /// the handles; returns the bytes newly resident.
    pub(crate) fn intern_into(&mut self, store: &mut SnapshotStore) -> usize {
        let mut new = 0;
        for v in self.vmcs12_mem.values_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        for a in self.msr_area_mem.values_mut() {
            let d = digest_msr_area(a);
            let bytes = msr_area_bytes(a);
            new += store.msr.intern(a, d, bytes);
        }
        if let Some(v) = self.vmcs02.as_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        new
    }

    /// Releases every `Arc`-held component from `store`; returns the
    /// bytes freed.
    pub(crate) fn release_from(&self, store: &mut SnapshotStore) -> usize {
        let mut freed = 0;
        for v in self.vmcs12_mem.values() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        for a in self.msr_area_mem.values() {
            freed += store.msr.release(a, digest_msr_area(a));
        }
        if let Some(v) = self.vmcs02.as_ref() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        freed
    }

    /// Heap footprint of the heavy components as if each were owned
    /// outright (the deep-copy baseline's budget accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.vmcs12_mem.len() * vmcs_bytes()
            + self
                .msr_area_mem
                .values()
                .map(|a| msr_area_bytes(a))
                .sum::<usize>()
            + self.vmcs02.as_ref().map_or(0, |_| vmcs_bytes())
    }
}

/// The VirtualBox model.
pub struct Vvbox {
    config: HvConfig,
    exposed_caps: VmxCapabilities,
    hw_caps: VmxCapabilities,
    /// Bug switches.
    pub bugs: VvboxBugs,

    map: CovMap,
    intel_file: FileId,
    vb: Vec<BlockId>,
    trace: ExecTrace,
    health: HostHealth,

    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,

    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Vmcs>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, MsrArea>,
    vmcs02: Option<Vmcs>,
    in_l2: bool,
    /// MSR values the (unvalidated) load list queued for the host
    /// context; consumed at the next host-context switch.
    pending_host_msrs: Vec<(u32, u64)>,

    /// Deterministic fault injection (instrumentation, not VM state:
    /// deliberately excluded from snapshots).
    faults: Option<SharedFaults>,
}

impl Vvbox {
    /// Boots a vvbox host with `config` (vendor must be Intel).
    pub fn new(config: HvConfig) -> Self {
        assert_eq!(
            config.vendor,
            CpuVendor::Intel,
            "VirtualBox nested VMX model is Intel-only"
        );
        let mut map = CovMap::new();
        let intel_file = map.add_file("VMMAll/VMXAllTemplate.cpp.h (nested)");
        let vb = VBlk::register(&mut map, intel_file);
        let exposed = config.features.sanitized(config.vendor);
        Vvbox {
            exposed_caps: VmxCapabilities::from_features(exposed),
            hw_caps: VmxCapabilities::from_features(FeatureSet::full(config.vendor)),
            bugs: VvboxBugs::default(),
            map,
            intel_file,
            vb,
            trace: ExecTrace::new(),
            health: HostHealth::new(),
            l1_cr0: Cr0::PE | Cr0::PG | Cr0::NE,
            l1_cr4: Cr4::PAE,
            l1_efer: Efer::LME | Efer::LMA,
            vmxon_region: None,
            vmcs12_mem: BTreeMap::new(),
            current_vmptr: None,
            msr_area_mem: BTreeMap::new(),
            vmcs02: None,
            in_l2: false,
            pending_host_msrs: Vec::new(),
            config,
            faults: None,
        }
    }

    fn cov(&mut self, b: VBlk) {
        self.trace.hit(self.vb[b.idx()]);
    }

    fn vmlaunch(&mut self, launch: bool) -> L1Result {
        self.cov(VBlk::VmlaunchEmul);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        let Some(ptr) = self.current_vmptr else {
            return L1Result::VmFail(VmInstrError::FailInvalid);
        };
        let vmcs12 = self.vmcs12_mem[&ptr].clone();
        if let Err(e) = launch_state_check(vmcs12.state, !launch) {
            self.cov(VBlk::LaunchStateErr);
            return L1Result::VmFail(e);
        }

        self.cov(VBlk::CheckCtls);
        let exposed = self.exposed_caps.clone();
        if nf_silicon::check_vm_controls(&vmcs12, &exposed).is_err() {
            self.cov(VBlk::CtlsErr);
            return L1Result::VmFail(VmInstrError::EntryInvalidControls);
        }
        self.cov(VBlk::CheckHost);
        if nf_silicon::check_host_state(&vmcs12, &exposed).is_err() {
            self.cov(VBlk::HostErr);
            return L1Result::VmFail(VmInstrError::EntryInvalidHostState);
        }
        self.cov(VBlk::CheckGuest);
        if nf_silicon::check_guest_state(&vmcs12, &exposed).is_err() {
            self.cov(VBlk::GuestErr);
            let encoded = ExitReason::EntryFailGuestState.encode(true);
            let v = self.vmcs12_mem.get_mut(&ptr).expect("staged");
            v.write(VmcsField::VmExitReason, encoded as u64);
            return L1Result::L2EntryFailed { reason: encoded };
        }
        let act = vmcs12.read(VmcsField::GuestActivityState);
        if act > 1 {
            self.cov(VBlk::GuestErr);
            let encoded = ExitReason::EntryFailGuestState.encode(true);
            let v = self.vmcs12_mem.get_mut(&ptr).expect("staged");
            v.write(VmcsField::VmExitReason, encoded as u64);
            return L1Result::L2EntryFailed { reason: encoded };
        }

        // VM-entry MSR-load processing — CVE-2024-21106 site. VirtualBox
        // checks only that the MSR index is *known*, not that the value
        // is legal for the MSR.
        self.cov(VBlk::MsrLoadWalk);
        let count = vmcs12.read(VmcsField::VmEntryMsrLoadCount) as usize;
        if count > 0 {
            let addr = vmcs12.read(VmcsField::VmEntryMsrLoadAddr);
            let mut area = self.msr_area_mem.get(&addr).cloned().unwrap_or_default();
            area.entries.truncate(count);
            for e in &area.entries {
                let Some(msr) = Msr::from_index(e.index) else {
                    self.cov(VBlk::MsrLoadUnknownMsr);
                    let encoded = ExitReason::EntryFailMsrLoad.encode(true);
                    let v = self.vmcs12_mem.get_mut(&ptr).expect("staged");
                    v.write(VmcsField::VmExitReason, encoded as u64);
                    return L1Result::L2EntryFailed { reason: encoded };
                };
                if self.bugs.msr_load_fixed
                    && msr.requires_canonical()
                    && !VirtAddr(e.value).is_canonical()
                {
                    // FIXED: reject like KVM does.
                    self.cov(VBlk::MsrLoadReject);
                    let encoded = ExitReason::EntryFailMsrLoad.encode(true);
                    let v = self.vmcs12_mem.get_mut(&ptr).expect("staged");
                    v.write(VmcsField::VmExitReason, encoded as u64);
                    return L1Result::L2EntryFailed { reason: encoded };
                }
                // BUG: values are queued for the host-context wrmsr
                // without validation.
                self.pending_host_msrs.push((e.index, e.value));
            }
        }

        // Merge and real entry.
        self.cov(VBlk::Merge02);
        let hw = self.hw_caps.clone();
        let mut vmcs02 = golden_vmcs(&hw);
        for &f in VmcsField::ALL {
            if f.group() == nf_vmx::FieldGroup::Guest {
                vmcs02.write(f, vmcs12.read(f));
            }
        }
        vmcs02.write(VmcsField::VmcsLinkPointer, u64::MAX);
        vmcs02.write(
            VmcsField::VmEntryControls,
            hw.round_control(
                nf_vmx::CtrlKind::Entry,
                vmcs12.read(VmcsField::VmEntryControls) as u32,
            ) as u64,
        );
        for f in [
            VmcsField::Cr0GuestHostMask,
            VmcsField::Cr4GuestHostMask,
            VmcsField::Cr0ReadShadow,
            VmcsField::Cr4ReadShadow,
        ] {
            vmcs02.write(f, vmcs12.read(f));
        }

        match nf_silicon::try_vmentry(&vmcs02, &hw, &MsrArea::new()) {
            Ok(outcome) => {
                self.cov(VBlk::EntryOk);
                // The queued host MSR values hit the host context now.
                let pending = std::mem::take(&mut self.pending_host_msrs);
                for (index, value) in pending {
                    let msr = Msr::from_index(index).expect("checked above");
                    if msr.requires_canonical() && !VirtAddr(value).is_canonical() {
                        self.cov(VBlk::HostGpArm);
                        self.health.host_crash(
                            "CVE-2024-21106",
                            format!(
                                "general protection fault, probably for non-canonical \
                                 address {value:#x}"
                            ),
                        );
                        return L1Result::HostDead;
                    }
                }
                self.vmcs02 = Some(vmcs02);
                self.in_l2 = true;
                self.vmcs12_mem.get_mut(&ptr).expect("staged").state = VmcsState::Launched;
                L1Result::L2Entered {
                    runnable: outcome.runnable,
                }
            }
            Err(_) => {
                self.cov(VBlk::GuestErr);
                self.pending_host_msrs.clear();
                let encoded = ExitReason::EntryFailGuestState.encode(true);
                let v = self.vmcs12_mem.get_mut(&ptr).expect("staged");
                v.write(VmcsField::VmExitReason, encoded as u64);
                L1Result::L2EntryFailed { reason: encoded }
            }
        }
    }
}

impl L0Hypervisor for Vvbox {
    fn name(&self) -> &'static str {
        "vvbox"
    }

    fn vendor(&self) -> CpuVendor {
        self.config.vendor
    }

    fn config(&self) -> &HvConfig {
        &self.config
    }

    fn reset_guest(&mut self) {
        self.l1_cr0 = Cr0::PE | Cr0::PG | Cr0::NE;
        self.l1_cr4 = Cr4::PAE;
        self.l1_efer = Efer::LME | Efer::LMA;
        self.vmxon_region = None;
        self.vmcs12_mem.clear();
        self.current_vmptr = None;
        self.msr_area_mem.clear();
        self.vmcs02 = None;
        self.in_l2 = false;
        self.pending_host_msrs.clear();
    }

    fn reboot_host(&mut self) {
        self.reset_guest();
        self.health = HostHealth::new();
    }

    fn snapshot(&self) -> HvSnapshot {
        HvSnapshot::Vvbox(VvboxSnapshot {
            bugs: self.bugs,
            l1_cr0: self.l1_cr0,
            l1_cr4: self.l1_cr4,
            l1_efer: self.l1_efer,
            vmxon_region: self.vmxon_region,
            vmcs12_mem: share_map(&self.vmcs12_mem),
            current_vmptr: self.current_vmptr,
            msr_area_mem: share_map(&self.msr_area_mem),
            vmcs02: share_opt(&self.vmcs02),
            in_l2: self.in_l2,
            pending_host_msrs: self.pending_host_msrs.clone(),
            health: self.health.clone(),
        })
    }

    fn restore(&mut self, snap: &HvSnapshot) {
        let HvSnapshot::Vvbox(s) = snap else {
            panic!("vvbox cannot restore a {} snapshot", snap.backend());
        };
        restore_fields!(copy: self, s, [
            bugs, l1_cr0, l1_cr4, l1_efer, vmxon_region, current_vmptr, in_l2,
        ]);
        restore_fields!(clone: self, s, [pending_host_msrs, health]);
        restore_fields!(shared: self, s, [vmcs12_mem, msr_area_mem, vmcs02]);
    }

    fn install_faults(&mut self, faults: SharedFaults) {
        self.faults = Some(faults);
    }

    fn try_restore(&mut self, snap: &HvSnapshot) -> Result<(), RestoreFault> {
        if let Some(f) = &self.faults {
            f.borrow_mut().check_restore()?;
        }
        self.restore(snap);
        Ok(())
    }

    fn l1_exec(&mut self, instr: GuestInstr) -> L1Result {
        if self.health.dead {
            return L1Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L1Result::HostDead;
        }
        use GuestInstr::*;
        match instr {
            Vmxon(addr) => {
                self.cov(VBlk::VmxonEmul);
                if !self.config.nested
                    || !self.config.features.contains(CpuFeature::Vmx)
                    || self.l1_cr4 & Cr4::VMXE == 0
                {
                    return L1Result::Fault("#UD");
                }
                if vmxon_check(
                    Cr0::new(self.l1_cr0),
                    Cr4::new(self.l1_cr4),
                    Efer::new(self.l1_efer),
                    addr,
                )
                .is_err()
                {
                    return L1Result::Fault("#GP");
                }
                self.vmxon_region = Some(addr);
                L1Result::Ok(0)
            }
            Vmxoff => {
                self.cov(VBlk::VmxonEmul);
                self.vmxon_region = None;
                self.current_vmptr = None;
                self.in_l2 = false;
                L1Result::Ok(0)
            }
            Vmclear(addr) => {
                self.cov(VBlk::VmclearEmul);
                let Some(vmxon) = self.vmxon_region else {
                    return L1Result::Fault("#UD");
                };
                if let Err(e) = vmclear_check(addr, vmxon) {
                    return L1Result::VmFail(e);
                }
                let rev = self.exposed_caps.revision_id;
                let v = self.vmcs12_mem.entry(addr).or_insert_with(|| {
                    let mut v = Vmcs::new();
                    v.revision_id = rev;
                    v
                });
                v.state = VmcsState::Clear;
                if self.current_vmptr == Some(addr) {
                    self.current_vmptr = None;
                }
                L1Result::Ok(0)
            }
            Vmptrld(addr) => {
                self.cov(VBlk::VmptrldEmul);
                let Some(vmxon) = self.vmxon_region else {
                    return L1Result::Fault("#UD");
                };
                let rev = self.exposed_caps.revision_id;
                let region_rev = self
                    .vmcs12_mem
                    .get(&addr)
                    .map(|v| v.revision_id)
                    .unwrap_or(rev);
                if let Err(e) = vmptrld_check(addr, vmxon, region_rev, rev) {
                    return L1Result::VmFail(e);
                }
                self.vmcs12_mem.entry(addr).or_insert_with(|| {
                    let mut v = Vmcs::new();
                    v.revision_id = rev;
                    v
                });
                self.current_vmptr = Some(addr);
                L1Result::Ok(0)
            }
            Vmptrst => L1Result::Ok(self.current_vmptr.unwrap_or(u64::MAX)),
            Vmread(enc) => {
                self.cov(VBlk::VmreadVmwriteEmul);
                let Some(ptr) = self.current_vmptr else {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                };
                match vmread_check(enc) {
                    Err(e) => L1Result::VmFail(e),
                    Ok(f) => L1Result::Ok(self.vmcs12_mem[&ptr].read(f)),
                }
            }
            Vmwrite(enc, val) => {
                self.cov(VBlk::VmreadVmwriteEmul);
                let Some(ptr) = self.current_vmptr else {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                };
                match vmwrite_check(enc) {
                    Err(e) => L1Result::VmFail(e),
                    Ok(f) => {
                        self.vmcs12_mem.get_mut(&ptr).expect("staged").write(f, val);
                        L1Result::Ok(0)
                    }
                }
            }
            Vmlaunch => self.vmlaunch(true),
            Vmresume => self.vmlaunch(false),
            Vmcall => L1Result::Ok(0),
            Invept(_) | Invvpid(_) => {
                self.cov(VBlk::InveptInvvpidEmul);
                L1Result::Ok(0)
            }
            Vmrun(_) | Vmload(_) | Vmsave(_) | Stgi | Clgi | Skinit => L1Result::Fault("#UD"),
            MovToCr(nf_silicon::CrIndex::Cr4, v) => {
                self.l1_cr4 = v;
                L1Result::Ok(0)
            }
            MovToCr(nf_silicon::CrIndex::Cr0, v) => {
                self.l1_cr0 = v;
                L1Result::Ok(0)
            }
            Wrmsr(idx, v) if idx == Msr::Efer.index() => {
                self.l1_efer = v;
                L1Result::Ok(0)
            }
            _ => L1Result::Ok(0),
        }
    }

    fn l2_exec(&mut self, instr: GuestInstr) -> L2Result {
        if self.health.dead {
            return L2Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L2Result::HostDead;
        }
        if !self.in_l2 {
            return L2Result::NoGuest;
        }
        let vmcs02 = self.vmcs02.as_ref().expect("in_l2");
        let Some(reason) = vmx_exit_for(instr, vmcs02) else {
            return L2Result::NoExit;
        };
        self.cov(VBlk::ExitDispatch);
        let ptr = self.current_vmptr.expect("in_l2");
        let vmcs12 = &self.vmcs12_mem[&ptr];
        let reflect = reason.is_vmx_instruction()
            || reason == ExitReason::Cpuid
            || vmx_exit_for(instr, vmcs12).is_some();
        if reflect {
            self.cov(VBlk::Sync12);
            let encoded = reason.encode(false);
            let vmcs12 = self.vmcs12_mem.get_mut(&ptr).expect("staged");
            vmcs12.write(VmcsField::VmExitReason, encoded as u64);
            self.in_l2 = false;
            L2Result::ReflectedToL1(encoded)
        } else {
            self.cov(VBlk::L0Handle);
            L2Result::HandledByL0
        }
    }

    fn l1_stage_vmcs_region(&mut self, addr: u64, revision: u32) {
        let vmcs = self.vmcs12_mem.entry(addr).or_default();
        vmcs.revision_id = revision;
    }

    fn l1_stage_vmcb(&mut self, _addr: u64, _vmcb: Vmcb) {
        // VirtualBox's model has no AMD nested support.
    }

    fn l1_stage_msr_area(&mut self, addr: u64, area: MsrArea) {
        self.msr_area_mem.insert(addr, area);
    }

    fn host_ioctl(&mut self, op: IoctlOp) {
        if matches!(op, IoctlOp::GetNestedState | IoctlOp::SetNestedState) {
            self.cov(VBlk::SavedStateLoad);
        } else {
            self.cov(VBlk::HmSetup);
        }
    }

    fn coverage_map(&self) -> &CovMap {
        &self.map
    }

    fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    fn swap_trace(&mut self, trace: &mut ExecTrace) {
        std::mem::swap(&mut self.trace, trace);
    }

    fn intel_file(&self) -> FileId {
        self.intel_file
    }

    fn amd_file(&self) -> Option<FileId> {
        None
    }

    fn health(&self) -> &HostHealth {
        &self.health
    }

    fn observe_guest(&self) -> crate::api::GuestObservation {
        use crate::api::GuestObservation;
        GuestObservation {
            cr0: self.l1_cr0,
            cr4: self.l1_cr4,
            efer: self.l1_efer,
            vmx_on: self.vmxon_region.is_some(),
            current_vmptr: self.current_vmptr.unwrap_or(u64::MAX),
            in_l2: self.in_l2,
            vmcs12_digest: self
                .current_vmptr
                .map(|p| GuestObservation::digest_vmcs(&self.vmcs12_mem[&p]))
                .unwrap_or(0),
        }
    }

    fn health_mut(&mut self) -> &mut HostHealth {
        &mut self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::CrashKind;
    use nf_vmx::MsrAreaEntry;

    fn vbox() -> Vvbox {
        let mut vb = Vvbox::new(HvConfig::default_for(CpuVendor::Intel));
        vb.l1_cr4 |= Cr4::VMXE;
        vb
    }

    fn boot_to_golden(vb: &mut Vvbox) {
        assert_eq!(vb.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
        assert_eq!(vb.l1_exec(GuestInstr::Vmclear(0x2000)), L1Result::Ok(0));
        assert_eq!(vb.l1_exec(GuestInstr::Vmptrld(0x2000)), L1Result::Ok(0));
        let golden = golden_vmcs(&vb.exposed_caps);
        for &f in VmcsField::ALL {
            if f.writable() {
                vb.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
            }
        }
    }

    #[test]
    fn golden_state_enters() {
        let mut vb = vbox();
        boot_to_golden(&mut vb);
        assert!(matches!(
            vb.l1_exec(GuestInstr::Vmlaunch),
            L1Result::L2Entered { runnable: true }
        ));
    }

    #[test]
    fn cve_2024_21106_non_canonical_kernel_gs_base() {
        let mut vb = vbox();
        boot_to_golden(&mut vb);
        vb.l1_stage_msr_area(
            0x6000,
            MsrArea {
                entries: vec![MsrAreaEntry {
                    index: Msr::KernelGsBase.index(),
                    value: 0x8000_0000_0000_0000,
                }],
            },
        );
        vb.l1_exec(GuestInstr::Vmwrite(
            VmcsField::VmEntryMsrLoadAddr.encoding(),
            0x6000,
        ));
        vb.l1_exec(GuestInstr::Vmwrite(
            VmcsField::VmEntryMsrLoadCount.encoding(),
            1,
        ));
        assert_eq!(vb.l1_exec(GuestInstr::Vmlaunch), L1Result::HostDead);
        assert!(vb.health().dead);
        assert_eq!(vb.health().reports[0].kind, CrashKind::HostCrash);
        assert_eq!(vb.health().reports[0].bug_id, "CVE-2024-21106");
        assert!(vb.health().reports[0].message.contains("non-canonical"));
    }

    #[test]
    fn msr_load_fix_rejects_cleanly() {
        let mut vb = vbox();
        vb.bugs.msr_load_fixed = true;
        boot_to_golden(&mut vb);
        vb.l1_stage_msr_area(
            0x6000,
            MsrArea {
                entries: vec![MsrAreaEntry {
                    index: Msr::KernelGsBase.index(),
                    value: 0x8000_0000_0000_0000,
                }],
            },
        );
        vb.l1_exec(GuestInstr::Vmwrite(
            VmcsField::VmEntryMsrLoadAddr.encoding(),
            0x6000,
        ));
        vb.l1_exec(GuestInstr::Vmwrite(
            VmcsField::VmEntryMsrLoadCount.encoding(),
            1,
        ));
        match vb.l1_exec(GuestInstr::Vmlaunch) {
            L1Result::L2EntryFailed { reason } => {
                assert_eq!(reason & 0xffff, ExitReason::EntryFailMsrLoad as u16 as u32);
            }
            other => panic!("expected clean MSR-load failure, got {other:?}"),
        }
        assert!(!vb.health().dead);
    }

    #[test]
    fn canonical_msr_load_is_harmless() {
        let mut vb = vbox();
        boot_to_golden(&mut vb);
        vb.l1_stage_msr_area(
            0x6000,
            MsrArea {
                entries: vec![MsrAreaEntry {
                    index: Msr::KernelGsBase.index(),
                    value: 0xffff_8800_0000_0000,
                }],
            },
        );
        vb.l1_exec(GuestInstr::Vmwrite(
            VmcsField::VmEntryMsrLoadAddr.encoding(),
            0x6000,
        ));
        vb.l1_exec(GuestInstr::Vmwrite(
            VmcsField::VmEntryMsrLoadCount.encoding(),
            1,
        ));
        assert!(matches!(
            vb.l1_exec(GuestInstr::Vmlaunch),
            L1Result::L2Entered { .. }
        ));
    }
}
