//! Instrumented basic blocks of vvbox's nested VMX code.
//!
//! The paper does not report coverage numbers for VirtualBox (it is used
//! for vulnerability discovery only, §5.5.3), so the geometry here is
//! sized after the nested-VMX portion of `VMXAllTemplate.cpp.h`.

use crate::hv_blocks;

hv_blocks! {
    /// Basic blocks of the VirtualBox nested-VMX model.
    pub enum VBlk {
        VmxonEmul = 18,
        VmclearEmul = 12,
        VmptrldEmul = 14,
        VmreadVmwriteEmul = 26,
        InveptInvvpidEmul = 10,
        VmlaunchEmul = 24,
        LaunchStateErr = 6,
        CheckCtls = 38,
        CtlsErr = 10,
        CheckHost = 30,
        HostErr = 8,
        CheckGuest = 44,
        GuestErr = 12,
        MsrLoadWalk = 16,
        MsrLoadUnknownMsr = 6,
        MsrLoadReject = 8,
        Merge02 = 40,
        EntryOk = 12,
        HostGpArm = 9,
        ExitDispatch = 28,
        Sync12 = 32,
        L0Handle = 20,
        SavedStateLoad = 24,
        HmSetup = 14,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_stable() {
        assert_eq!(VBlk::total_lines(), 461);
        assert_eq!(VBlk::ALL.len(), 24);
    }
}
