//! The hypervisor-facing API: what a fuzz-harness VM can do to an L0
//! hypervisor, and what comes back.
//!
//! The harness plays both L1 hypervisor and L2 guest (paper §3.3). Every
//! interaction goes through two calls:
//!
//! - [`L0Hypervisor::l1_exec`] — L1 executes an instruction. Sensitive
//!   instructions trap to L0, which emulates them (this is the nested
//!   virtualization interface: `vmxon`, `vmwrite`, `vmlaunch`, `vmrun`…).
//! - [`L0Hypervisor::l2_exec`] — once a nested guest is live, drive it
//!   with one instruction; silicon decides the exit against VMCS02/VMCB02
//!   and L0 decides whether to reflect it to L1.

use nf_coverage::{CovMap, ExecTrace, FileId};
use nf_silicon::{GuestInstr, VmInstrError};
use nf_x86::{CpuVendor, FeatureSet};

use crate::fault::{RestoreFault, SharedFaults};
use crate::sanitizer::HostHealth;

/// A vCPU/host configuration produced by the vCPU configurator through a
/// per-hypervisor adapter (paper §3.5, §4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HvConfig {
    /// Which vendor's virtualization the host CPU provides.
    pub vendor: CpuVendor,
    /// Enabled hardware-assisted virtualization features (module
    /// parameters such as `ept=`, `npt=`, `avic=` …).
    pub features: FeatureSet,
    /// Whether nested virtualization is exposed to guests at all
    /// (`kvm-intel.nested=1` analog).
    pub nested: bool,
}

impl HvConfig {
    /// The out-of-the-box configuration for `vendor` with nesting on.
    pub fn default_for(vendor: CpuVendor) -> Self {
        HvConfig {
            vendor,
            features: FeatureSet::default_for(vendor),
            nested: true,
        }
    }
}

/// Result of L1 executing one instruction under L0 emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L1Result {
    /// Completed; `rflags`-style success, with an optional read value.
    Ok(u64),
    /// The emulated VMX instruction failed (`VMfailValid`/`VMfailInvalid`).
    VmFail(VmInstrError),
    /// L0 injected a fault into L1 (`#GP`, `#UD`, …).
    Fault(&'static str),
    /// A nested VM entry succeeded; L2 is live.
    L2Entered {
        /// `false` when the entered L2 cannot make progress (stalled
        /// activity state) — the host must still stay responsive.
        runnable: bool,
    },
    /// The nested entry failed with a VM-entry-failure exit delivered to
    /// L1 (Intel reason 33/34, AMD `VMEXIT_INVALID`).
    L2EntryFailed {
        /// Raw exit reason / exit code delivered to L1.
        reason: u32,
    },
    /// The host became unable to continue (crash or hang); the agent's
    /// watchdog will restart it.
    HostDead,
}

/// Result of driving the live L2 guest with one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Result {
    /// No exit: the instruction ran natively inside L2.
    NoExit,
    /// L0 handled the exit itself and resumed L2.
    HandledByL0,
    /// L0 reflected the exit to L1 (raw reason / exit code); the harness
    /// is now executing its L1 exit handler.
    ReflectedToL1(u32),
    /// There is no live L2 (entry failed or never attempted).
    NoGuest,
    /// The host became unable to continue.
    HostDead,
}

/// The guest-visible architectural state of the L1/L2 stack at the end
/// of one execution — the per-backend half of the differential oracle's
/// canonical observation.
///
/// Only state an L1 hypervisor could itself read is captured: control
/// registers, VMX-operation status, and a digest of the *current*
/// VMCS12 (every field, as `vmread` would return it). L0-internal
/// bookkeeping (VMCS02 contents, shadow structures, health state) is
/// deliberately excluded — two backends that present identical state to
/// their guest must produce identical observations, whatever their
/// internals do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuestObservation {
    /// L1's CR0.
    pub cr0: u64,
    /// L1's CR4.
    pub cr4: u64,
    /// L1's EFER.
    pub efer: u64,
    /// Whether L1 is in VMX operation (`vmxon` without `vmxoff`).
    pub vmx_on: bool,
    /// The current-VMCS pointer (`vmptrst`); `u64::MAX` when none.
    pub current_vmptr: u64,
    /// Whether a nested guest is live.
    pub in_l2: bool,
    /// FNV-1a digest over `(encoding, value)` of every field of the
    /// current VMCS12; `0` when no VMCS is current.
    pub vmcs12_digest: u64,
}

impl GuestObservation {
    /// Digests a VMCS the way every backend must: FNV-1a over
    /// `(encoding, value)` of [`nf_vmx::VmcsField::ALL`] in order.
    pub fn digest_vmcs(vmcs: &nf_vmx::Vmcs) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &f in nf_vmx::VmcsField::ALL {
            mix(u64::from(f.encoding()));
            mix(vmcs.read(f));
        }
        h
    }

    /// Digests a VMCB's guest-visible scalar fields (AMD side of
    /// [`Self::digest_vmcs`]): the save-area register file plus the
    /// control fields an L1 hypervisor reads back after `#VMEXIT`.
    pub fn digest_vmcb(vmcb: &nf_vmx::Vmcb) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        let c = &vmcb.control;
        for v in [
            c.intercepts,
            c.iopm_base_pa,
            c.msrpm_base_pa,
            c.tsc_offset,
            u64::from(c.guest_asid),
            c.int_ctl,
            c.interrupt_shadow,
            c.exitcode,
            c.exitinfo1,
            c.exitinfo2,
            c.exitintinfo,
            c.np_enable,
            c.event_inj,
            c.ncr3,
            c.lbr_ctl,
            c.nrip,
        ] {
            mix(v);
        }
        let s = &vmcb.save;
        for v in [
            s.efer,
            s.cr0,
            s.cr3,
            s.cr4,
            s.dr6,
            s.dr7,
            s.rflags,
            s.rip,
            s.rsp,
            s.rax,
            u64::from(s.cpl),
        ] {
            mix(v);
        }
        h
    }
}

/// Host-side ioctl-style operations — the interface Syzkaller fuzzes and
/// the paper's threat model excludes for NecoFuzz (§3.1, §5.2). Blocks
/// reachable only through these calls form the coverage residue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoctlOp {
    /// `KVM_GET_NESTED_STATE` analog (live migration save).
    GetNestedState,
    /// `KVM_SET_NESTED_STATE` analog (live migration restore).
    SetNestedState,
    /// vCPU teardown / nested state free.
    FreeNestedState,
    /// Module load-time hardware setup.
    HardwareSetup,
    /// Module unload-time cleanup.
    HardwareUnsetup,
}

/// A captured image of one hypervisor instance's mutable state.
///
/// This is the substrate of the snapshot-based persistent-execution
/// engine (paper §3.2, §4.5 — and the IRIS-style record/replay of a
/// booted VM): instead of rebooting the guest between fuzzing
/// iterations, the agent captures the freshly-booted state once and
/// *restores* it before every test case. A snapshot holds everything a
/// fuzzing iteration can observe or dirty — guest-visible registers,
/// staged regions, nested VMX/SVM bookkeeping, bug switches, and the
/// host-health surface. The coverage-map geometry and the in-flight
/// execution trace are instrumentation, not VM state, and are not
/// captured.
///
/// Snapshots are backend-tagged: restoring a snapshot on a different
/// backend is a programming error and panics.
#[derive(Debug, Clone, PartialEq)]
pub enum HvSnapshot {
    /// State image of a [`crate::Vkvm`] instance.
    Vkvm(crate::vkvm::VkvmSnapshot),
    /// State image of a [`crate::Vxen`] instance.
    Vxen(crate::vxen::VxenSnapshot),
    /// State image of a [`crate::Vvbox`] instance.
    Vvbox(crate::vvbox::VvboxSnapshot),
    /// State image of a [`crate::SiliconGolden`] instance.
    Golden(crate::golden::GoldenSnapshot),
}

impl HvSnapshot {
    /// Name of the backend this snapshot was captured from.
    pub fn backend(&self) -> &'static str {
        match self {
            HvSnapshot::Vkvm(_) => "vkvm",
            HvSnapshot::Vxen(_) => "vxen",
            HvSnapshot::Vvbox(_) => "vvbox",
            HvSnapshot::Golden(_) => "golden",
        }
    }

    /// Heap footprint of the snapshot's heavy components (VMCS/VMCB
    /// images, MSR areas) as if each were owned outright — what a
    /// deep-copied snapshot costs. The content-addressed store's budget
    /// accounting (see [`crate::store`]) charges only the unique subset
    /// instead.
    pub fn heap_bytes(&self) -> usize {
        match self {
            HvSnapshot::Vkvm(s) => s.heap_bytes(),
            HvSnapshot::Vxen(s) => s.heap_bytes(),
            HvSnapshot::Vvbox(s) => s.heap_bytes(),
            HvSnapshot::Golden(s) => s.heap_bytes(),
        }
    }
}

/// The L0 hypervisor under test.
pub trait L0Hypervisor {
    /// Short name, e.g. `"vkvm"`.
    fn name(&self) -> &'static str;

    /// CPU vendor this instance was booted on.
    fn vendor(&self) -> CpuVendor;

    /// The active configuration.
    fn config(&self) -> &HvConfig;

    /// Resets guest-visible state for a fresh fuzz-harness VM boot,
    /// keeping cumulative coverage. Models the agent relaunching the
    /// UEFI executor (§4.5).
    fn reset_guest(&mut self);

    /// Fully reboots the host (watchdog path): clears health state too.
    fn reboot_host(&mut self);

    /// Captures the instance's complete mutable state (see
    /// [`HvSnapshot`] for exactly what that covers). A snapshot taken
    /// right after construction is a *boot image*: restoring it is
    /// equivalent to [`Self::reset_guest`] plus a health reset, without
    /// re-running the hypervisor factory.
    fn snapshot(&self) -> HvSnapshot;

    /// Restores a state previously captured with [`Self::snapshot`],
    /// copying only the fields that have been dirtied since the capture
    /// (delta restore) — restoring onto an undirtied instance is a
    /// comparison-only no-op.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was captured from a different backend.
    fn restore(&mut self, snap: &HvSnapshot);

    /// Installs a deterministic fault-injection handle (see
    /// [`crate::fault`]): once installed, every guest instruction ticks
    /// the injector and every [`Self::try_restore`] consults it. The
    /// default ignores the handle — a backend that opts out simply
    /// never faults. All four shipped backends opt in.
    fn install_faults(&mut self, faults: SharedFaults) {
        let _ = faults;
    }

    /// Fallible form of [`Self::restore`]: consults the installed
    /// fault injector (if any) before restoring. The default — and the
    /// behaviour with no injector installed — is an infallible
    /// [`Self::restore`]. On `Err` the instance state is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was captured from a different backend.
    fn try_restore(&mut self, snap: &HvSnapshot) -> Result<(), RestoreFault> {
        self.restore(snap);
        Ok(())
    }

    /// L1 executes `instr`; L0 traps and emulates if it is sensitive.
    fn l1_exec(&mut self, instr: GuestInstr) -> L1Result;

    /// Models L1 writing a VMCS region header (revision id) into its own
    /// memory before `vmptrld` — a plain store, invisible to L0.
    fn l1_stage_vmcs_region(&mut self, addr: u64, revision: u32);

    /// Models L1 building a VMCB in its own memory before `vmrun`.
    fn l1_stage_vmcb(&mut self, addr: u64, vmcb: nf_vmx::Vmcb);

    /// Models L1 building an MSR-load/store area in its own memory.
    fn l1_stage_msr_area(&mut self, addr: u64, area: nf_vmx::MsrArea);

    /// Drives the live L2 guest with `instr`.
    fn l2_exec(&mut self, instr: GuestInstr) -> L2Result;

    /// Host-side ioctl interface (outside the NecoFuzz threat model).
    fn host_ioctl(&mut self, op: IoctlOp);

    /// Captures the guest-visible architectural state for the
    /// differential oracle (see [`GuestObservation`] for exactly what
    /// is — and is not — comparable across backends).
    fn observe_guest(&self) -> GuestObservation;

    /// The instrumentation registry.
    fn coverage_map(&self) -> &CovMap;

    /// Read-only view of the in-flight execution trace.
    ///
    /// [`Self::snapshot`] deliberately excludes instrumentation, so a
    /// mid-scenario checkpoint (the prefix cache's snapshot-at-an-
    /// instruction-boundary path) must capture the trace separately;
    /// this accessor is that capture point. Implemented by every
    /// backend as a plain borrow of its trace field.
    fn trace(&self) -> &ExecTrace;

    /// Swaps the in-flight execution trace with `trace` — the
    /// zero-allocation collection path. The caller hands in a *cleared*
    /// trace (its buffers are reused for the next execution) and
    /// receives the current one; see `nf_coverage::ExecScratch` for the
    /// ownership protocol. Implemented by every backend as a plain
    /// `std::mem::swap` on its trace field.
    fn swap_trace(&mut self, trace: &mut ExecTrace);

    /// Takes (and clears) the block trace of the current execution.
    ///
    /// Allocating convenience form of [`Self::swap_trace`]: the
    /// hypervisor is left with a fresh (empty, capacity-less) trace, so
    /// per-exec callers should prefer the swap. Kept for one-shot
    /// inspection and as the compat ("before") path of the `hotpath`
    /// bench.
    fn take_trace(&mut self) -> ExecTrace {
        let mut trace = ExecTrace::new();
        self.swap_trace(&mut trace);
        trace
    }

    /// The instrumented file holding Intel nested-virtualization code.
    fn intel_file(&self) -> FileId;

    /// The instrumented file holding AMD nested-virtualization code,
    /// if the hypervisor has one.
    fn amd_file(&self) -> Option<FileId>;

    /// Sanitizer / log / watchdog state.
    fn health(&self) -> &HostHealth;

    /// Mutable health access for the agent (to drain reports).
    fn health_mut(&mut self) -> &mut HostHealth;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_vendor() {
        let c = HvConfig::default_for(CpuVendor::Intel);
        assert!(c.nested);
        assert_eq!(c.vendor, CpuVendor::Intel);
        assert!(c.features.contains(nf_x86::CpuFeature::Vmx));
        let a = HvConfig::default_for(CpuVendor::Amd);
        assert!(a.features.contains(nf_x86::CpuFeature::Svm));
    }
}
