//! vkvm — the KVM (Linux 6.5) model.
//!
//! A from-scratch L0 hypervisor with full nested VMX and nested SVM
//! emulation, mirroring the structure of
//! `arch/x86/kvm/{vmx,svm}/nested.c`: VMX-instruction emulation for L1,
//! the three-group consistency checks on VMCS12, `prepare_vmcs02`-style
//! merging, nested VM-exit reflection, and the host-only ioctl surface.
//!
//! Two of the paper's six bugs are seeded here (Table 6 rows 1 and 3):
//!
//! - **CVE-2023-30456** — missing IA-32e/`CR4.PAE` consistency check on
//!   VMCS12 combined with a literal interpretation of `CR4.PAE` in the
//!   shadow-paging path; triggers a UBSAN array-index-out-of-bounds when
//!   EPT is disabled by module parameter.
//! - **Spurious triple fault** — an invalid-but-well-formed EPTP/nCR3
//!   root fails `mmu_check_root()` and vkvm wrongly synthesizes a
//!   triple-fault exit to L1 although L2 never ran (fixed upstream by
//!   loading a dummy root backed by the zero page).

mod blocks;
mod svm_nested;
mod vmx_nested;

pub use blocks::{ABlk, IBlk};

use std::collections::BTreeMap;
use std::sync::Arc;

use nf_coverage::{BlockId, CovMap, ExecTrace, FileId};
use nf_silicon::GuestInstr;
use nf_vmx::{MsrArea, Vmcb, Vmcs, VmxCapabilities};
use nf_x86::{CpuVendor, Efer, FeatureSet, Msr};

use crate::api::{HvConfig, HvSnapshot, IoctlOp, L0Hypervisor, L1Result, L2Result};
use crate::fault::{RestoreFault, SharedFaults};
use crate::restore_fields;
use crate::sanitizer::HostHealth;
use crate::store::{
    digest_msr_area, digest_vmcb, digest_vmcs, msr_area_bytes, share_map, share_opt, vmcb_bytes,
    vmcs_bytes, SnapshotStore,
};

/// Guest-physical memory size of the L1 VM; roots beyond this limit fail
/// `mmu_check_root()`.
pub const GUEST_MEM_LIMIT: u64 = 0x2000_0000;

/// Seeded-bug switches; `false` means the vulnerable (as-evaluated) code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VkvmBugs {
    /// Apply the CVE-2023-30456 fix (commit 112e660: add the missing
    /// CR0/CR4 consistency checks).
    pub cve_2023_30456_fixed: bool,
    /// Apply the dummy-root fix (commit 0e3223d8d).
    pub dummy_root_fixed: bool,
    /// Test-only misvirtualization switch (`true` = *inject* the bug):
    /// a reflected HLT exit is misreported to L1 as a PAUSE exit, in
    /// both the VMCS12 exit-reason field and the reflected reason. No
    /// sanitizer fires — the exec completes with wrong guest-visible
    /// state, exactly the class only the differential oracle can see.
    /// Unreachable from any [`HvConfig`]; enabled only by differential
    /// self-tests and the `diff_oracle` seeded-bug bench arm.
    pub misreport_hlt_exit: bool,
}

/// The mutable-state image of a [`Vkvm`] instance (see
/// [`crate::HvSnapshot`]). Compare snapshots with `==` to assert
/// round-trip identity; the fields themselves are an internal detail.
#[derive(Debug, Clone, PartialEq)]
pub struct VkvmSnapshot {
    bugs: VkvmBugs,
    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,
    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Arc<Vmcs>>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, Arc<MsrArea>>,
    vmcs02: Option<Arc<Vmcs>>,
    in_l2: bool,
    gif: bool,
    vmcb12_mem: BTreeMap<u64, Arc<Vmcb>>,
    current_vmcb: Option<u64>,
    vmcb02: Option<Vmcb>,
    fail_next_alloc: bool,
    health: HostHealth,
}

impl VkvmSnapshot {
    /// Interns every `Arc`-held component into `store`, canonicalizing
    /// the handles; returns the bytes newly resident.
    pub(crate) fn intern_into(&mut self, store: &mut SnapshotStore) -> usize {
        let mut new = 0;
        for v in self.vmcs12_mem.values_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        for a in self.msr_area_mem.values_mut() {
            let d = digest_msr_area(a);
            let bytes = msr_area_bytes(a);
            new += store.msr.intern(a, d, bytes);
        }
        if let Some(v) = self.vmcs02.as_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        for b in self.vmcb12_mem.values_mut() {
            let d = digest_vmcb(b);
            new += store.vmcb.intern(b, d, vmcb_bytes());
        }
        new
    }

    /// Releases every `Arc`-held component from `store`; returns the
    /// bytes freed.
    pub(crate) fn release_from(&self, store: &mut SnapshotStore) -> usize {
        let mut freed = 0;
        for v in self.vmcs12_mem.values() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        for a in self.msr_area_mem.values() {
            freed += store.msr.release(a, digest_msr_area(a));
        }
        if let Some(v) = self.vmcs02.as_ref() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        for b in self.vmcb12_mem.values() {
            freed += store.vmcb.release(b, digest_vmcb(b));
        }
        freed
    }

    /// Heap footprint of the heavy components as if each were owned
    /// outright (the deep-copy baseline's budget accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.vmcs12_mem.len() * vmcs_bytes()
            + self
                .msr_area_mem
                .values()
                .map(|a| msr_area_bytes(a))
                .sum::<usize>()
            + self.vmcs02.as_ref().map_or(0, |_| vmcs_bytes())
            + self.vmcb12_mem.len() * vmcb_bytes()
    }
}

/// The KVM model.
pub struct Vkvm {
    config: HvConfig,
    /// Capabilities exposed to L1 (module-parameter filtered).
    pub(crate) exposed_caps: VmxCapabilities,
    /// Capabilities of the physical CPU underneath.
    pub(crate) hw_caps: VmxCapabilities,
    /// Bug switches.
    pub bugs: VkvmBugs,

    map: CovMap,
    intel_file: FileId,
    amd_file: FileId,
    pub(crate) ib: Vec<BlockId>,
    pub(crate) ab: Vec<BlockId>,
    pub(crate) trace: ExecTrace,
    pub(crate) health: HostHealth,

    // --- L1 vCPU state (the guest-visible registers L0 tracks).
    pub(crate) l1_cr0: u64,
    pub(crate) l1_cr4: u64,
    pub(crate) l1_efer: u64,

    // --- Nested VMX state.
    pub(crate) vmxon_region: Option<u64>,
    pub(crate) vmcs12_mem: BTreeMap<u64, Vmcs>,
    pub(crate) current_vmptr: Option<u64>,
    pub(crate) msr_area_mem: BTreeMap<u64, MsrArea>,
    pub(crate) vmcs02: Option<Vmcs>,
    pub(crate) in_l2: bool,

    // --- Nested SVM state.
    pub(crate) gif: bool,
    pub(crate) vmcb12_mem: BTreeMap<u64, Vmcb>,
    pub(crate) current_vmcb: Option<u64>,
    pub(crate) vmcb02: Option<Vmcb>,

    // --- Fault injection (tests only): next allocation fails.
    pub(crate) fail_next_alloc: bool,

    // --- Deterministic fault injection (instrumentation, not VM
    // state: deliberately excluded from snapshots).
    pub(crate) faults: Option<SharedFaults>,
}

impl Vkvm {
    /// Boots a vkvm host with `config`.
    pub fn new(config: HvConfig) -> Self {
        let mut map = CovMap::new();
        let intel_file = map.add_file("arch/x86/kvm/vmx/nested.c");
        let amd_file = map.add_file("arch/x86/kvm/svm/nested.c");
        let ib = IBlk::register(&mut map, intel_file);
        let ab = ABlk::register(&mut map, amd_file);
        let exposed = config.features.sanitized(config.vendor);
        Vkvm {
            exposed_caps: VmxCapabilities::from_features(exposed),
            hw_caps: VmxCapabilities::from_features(FeatureSet::full(config.vendor)),
            bugs: VkvmBugs::default(),
            map,
            intel_file,
            amd_file,
            ib,
            ab,
            trace: ExecTrace::new(),
            health: HostHealth::new(),
            l1_cr0: nf_x86::Cr0::PE | nf_x86::Cr0::PG | nf_x86::Cr0::NE,
            l1_cr4: nf_x86::Cr4::PAE,
            l1_efer: Efer::LME | Efer::LMA,
            vmxon_region: None,
            vmcs12_mem: BTreeMap::new(),
            current_vmptr: None,
            msr_area_mem: BTreeMap::new(),
            vmcs02: None,
            in_l2: false,
            gif: true,
            vmcb12_mem: BTreeMap::new(),
            current_vmcb: None,
            vmcb02: None,
            config,
            fail_next_alloc: false,
            faults: None,
        }
    }

    /// Hits an Intel nested.c block.
    pub(crate) fn cov_i(&mut self, b: IBlk) {
        self.trace.hit(self.ib[b.idx()]);
    }

    /// Hits an AMD nested.c block.
    pub(crate) fn cov_a(&mut self, b: ABlk) {
        self.trace.hit(self.ab[b.idx()]);
    }

    /// Whether nested virtualization is exposed at all (module param).
    pub(crate) fn nested_on(&self) -> bool {
        self.config.nested
            && match self.config.vendor {
                CpuVendor::Intel => self.config.features.contains(nf_x86::CpuFeature::Vmx),
                CpuVendor::Amd => self.config.features.contains(nf_x86::CpuFeature::Svm),
            }
    }

    /// Fault injection: the next nested-state allocation fails, covering
    /// the allocation-failure arm (rare-path testing, §5.2).
    pub fn inject_alloc_failure(&mut self) {
        self.fail_next_alloc = true;
    }

    /// The capability surface exposed to L1 (module-parameter filtered).
    pub fn exposed_capabilities(&self) -> &VmxCapabilities {
        &self.exposed_caps
    }

    /// Emulates an L1 `rdmsr` of the nested capability MSRs
    /// (`vmx_get_vmx_msr` analog). Non-VMX MSRs live outside nested.c.
    fn nested_vmx_msr_read(&mut self, index: u32) -> L1Result {
        self.cov_i(IBlk::NestedVmxMsrRead);
        let caps = &self.exposed_caps;
        let value = match index {
            x if x == Msr::VmxBasic.index() => caps.revision_id as u64,
            x if x == Msr::VmxPinbasedCtls.index() || x == Msr::VmxTruePinbasedCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::PinBased);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxProcbasedCtls.index() || x == Msr::VmxTrueProcbasedCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::ProcBased);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxProcbasedCtls2.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::ProcBased2);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxExitCtls.index() || x == Msr::VmxTrueExitCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::Exit);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxEntryCtls.index() || x == Msr::VmxTrueEntryCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::Entry);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxCr0Fixed0.index() => caps.cr0_fixed0(false),
            x if x == Msr::VmxCr0Fixed1.index() => caps.cr0_fixed1(),
            x if x == Msr::VmxCr4Fixed0.index() => caps.cr4_fixed0(),
            x if x == Msr::VmxCr4Fixed1.index() => caps.cr4_fixed1(),
            _ => 0,
        };
        L1Result::Ok(value)
    }
}

impl L0Hypervisor for Vkvm {
    fn name(&self) -> &'static str {
        "vkvm"
    }

    fn vendor(&self) -> CpuVendor {
        self.config.vendor
    }

    fn config(&self) -> &HvConfig {
        &self.config
    }

    fn reset_guest(&mut self) {
        self.l1_cr0 = nf_x86::Cr0::PE | nf_x86::Cr0::PG | nf_x86::Cr0::NE;
        self.l1_cr4 = nf_x86::Cr4::PAE;
        self.l1_efer = Efer::LME | Efer::LMA;
        self.vmxon_region = None;
        self.vmcs12_mem.clear();
        self.current_vmptr = None;
        self.msr_area_mem.clear();
        self.vmcs02 = None;
        self.in_l2 = false;
        self.gif = true;
        self.vmcb12_mem.clear();
        self.current_vmcb = None;
        self.vmcb02 = None;
    }

    fn reboot_host(&mut self) {
        self.reset_guest();
        self.health = HostHealth::new();
    }

    fn snapshot(&self) -> HvSnapshot {
        HvSnapshot::Vkvm(VkvmSnapshot {
            bugs: self.bugs,
            l1_cr0: self.l1_cr0,
            l1_cr4: self.l1_cr4,
            l1_efer: self.l1_efer,
            vmxon_region: self.vmxon_region,
            vmcs12_mem: share_map(&self.vmcs12_mem),
            current_vmptr: self.current_vmptr,
            msr_area_mem: share_map(&self.msr_area_mem),
            vmcs02: share_opt(&self.vmcs02),
            in_l2: self.in_l2,
            gif: self.gif,
            vmcb12_mem: share_map(&self.vmcb12_mem),
            current_vmcb: self.current_vmcb,
            vmcb02: self.vmcb02,
            fail_next_alloc: self.fail_next_alloc,
            health: self.health.clone(),
        })
    }

    fn restore(&mut self, snap: &HvSnapshot) {
        let HvSnapshot::Vkvm(s) = snap else {
            panic!("vkvm cannot restore a {} snapshot", snap.backend());
        };
        restore_fields!(copy: self, s, [
            bugs, l1_cr0, l1_cr4, l1_efer, vmxon_region, current_vmptr,
            in_l2, gif, current_vmcb, vmcb02, fail_next_alloc,
        ]);
        restore_fields!(clone: self, s, [health]);
        restore_fields!(shared: self, s, [
            vmcs12_mem, msr_area_mem, vmcs02, vmcb12_mem,
        ]);
    }

    fn install_faults(&mut self, faults: SharedFaults) {
        self.faults = Some(faults);
    }

    fn try_restore(&mut self, snap: &HvSnapshot) -> Result<(), RestoreFault> {
        if let Some(f) = &self.faults {
            f.borrow_mut().check_restore()?;
        }
        self.restore(snap);
        Ok(())
    }

    fn l1_exec(&mut self, instr: GuestInstr) -> L1Result {
        if self.health.dead {
            return L1Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L1Result::HostDead;
        }
        use GuestInstr::*;
        match (self.config.vendor, instr) {
            // --- Intel VMX emulation (vmx/nested.c).
            (CpuVendor::Intel, Vmxon(addr)) => self.handle_vmxon(addr),
            (CpuVendor::Intel, Vmxoff) => self.handle_vmxoff(),
            (CpuVendor::Intel, Vmclear(addr)) => self.handle_vmclear(addr),
            (CpuVendor::Intel, Vmptrld(addr)) => self.handle_vmptrld(addr),
            (CpuVendor::Intel, Vmptrst) => {
                self.cov_i(IBlk::HandleVmptrst);
                L1Result::Ok(self.current_vmptr.unwrap_or(u64::MAX))
            }
            (CpuVendor::Intel, Vmread(enc)) => self.handle_vmread(enc),
            (CpuVendor::Intel, Vmwrite(enc, val)) => self.handle_vmwrite(enc, val),
            (CpuVendor::Intel, Vmlaunch) => self.nested_vmx_run(true),
            (CpuVendor::Intel, Vmresume) => self.nested_vmx_run(false),
            (CpuVendor::Intel, Vmcall) => {
                self.cov_i(IBlk::HandleVmcallL1);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Invept(t)) => self.handle_invept(t),
            (CpuVendor::Intel, Invvpid(t)) => self.handle_invvpid(t),
            (CpuVendor::Intel, Rdmsr(idx))
                if (Msr::VmxBasic.index()..=Msr::VmxVmfunc.index()).contains(&idx) =>
            {
                self.nested_vmx_msr_read(idx)
            }
            (CpuVendor::Intel, Wrmsr(idx, _))
                if (Msr::VmxBasic.index()..=Msr::VmxVmfunc.index()).contains(&idx) =>
            {
                self.cov_i(IBlk::NestedVmxMsrWrite);
                L1Result::Fault("#GP")
            }
            // SVM instructions on Intel hardware are undefined opcodes.
            (CpuVendor::Intel, Vmrun(_) | Vmload(_) | Vmsave(_) | Stgi | Clgi | Skinit) => {
                L1Result::Fault("#UD")
            }

            // --- AMD SVM emulation (svm/nested.c).
            (CpuVendor::Amd, Vmrun(addr)) => self.nested_svm_run(addr),
            (CpuVendor::Amd, Vmload(addr)) => self.handle_vmload(addr),
            (CpuVendor::Amd, Vmsave(addr)) => self.handle_vmsave(addr),
            (CpuVendor::Amd, Stgi) => {
                self.cov_a(ABlk::HandleStgiClgi);
                self.gif = true;
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Clgi) => {
                self.cov_a(ABlk::HandleStgiClgi);
                self.gif = false;
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Vmmcall) => {
                self.cov_a(ABlk::HandleVmmcall);
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Skinit) => L1Result::Fault("#UD"),
            // VMX instructions on AMD hardware are undefined opcodes.
            (
                CpuVendor::Amd,
                Vmxon(_) | Vmxoff | Vmclear(_) | Vmptrld(_) | Vmptrst | Vmread(_) | Vmwrite(..)
                | Vmlaunch | Vmresume | Invept(_) | Invvpid(_),
            ) => L1Result::Fault("#UD"),

            // --- Vendor-neutral L1 state updates (handled in vmx.c/svm.c,
            // outside the instrumented nested files).
            (_, MovToCr(nf_silicon::CrIndex::Cr0, v)) => {
                self.l1_cr0 = v;
                L1Result::Ok(0)
            }
            (_, MovToCr(nf_silicon::CrIndex::Cr4, v)) => {
                self.l1_cr4 = v;
                L1Result::Ok(0)
            }
            (_, MovFromCr(nf_silicon::CrIndex::Cr0)) => L1Result::Ok(self.l1_cr0),
            (_, MovFromCr(nf_silicon::CrIndex::Cr4)) => L1Result::Ok(self.l1_cr4),
            (_, Wrmsr(idx, v)) if idx == Msr::Efer.index() => {
                if Efer::new(v).check_reserved().is_err() {
                    return L1Result::Fault("#GP");
                }
                self.l1_efer = v;
                L1Result::Ok(0)
            }
            (_, Rdmsr(idx)) if idx == Msr::Efer.index() => L1Result::Ok(self.l1_efer),
            // Everything else executes without touching nested code.
            _ => L1Result::Ok(0),
        }
    }

    fn l2_exec(&mut self, instr: GuestInstr) -> L2Result {
        if self.health.dead {
            return L2Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L2Result::HostDead;
        }
        if !self.in_l2 {
            return L2Result::NoGuest;
        }
        match self.config.vendor {
            CpuVendor::Intel => self.l2_exec_vmx(instr),
            CpuVendor::Amd => self.l2_exec_svm(instr),
        }
    }

    fn l1_stage_vmcs_region(&mut self, addr: u64, revision: u32) {
        let vmcs = self.vmcs12_mem.entry(addr).or_default();
        vmcs.revision_id = revision;
    }

    fn l1_stage_vmcb(&mut self, addr: u64, vmcb: Vmcb) {
        self.vmcb12_mem.insert(addr, vmcb);
    }

    fn l1_stage_msr_area(&mut self, addr: u64, area: MsrArea) {
        self.msr_area_mem.insert(addr, area);
    }

    fn host_ioctl(&mut self, op: IoctlOp) {
        match (self.config.vendor, op) {
            (CpuVendor::Intel, IoctlOp::GetNestedState) => self.cov_i(IBlk::IoctlGetNested),
            (CpuVendor::Intel, IoctlOp::SetNestedState) => self.cov_i(IBlk::IoctlSetNested),
            (CpuVendor::Intel, IoctlOp::FreeNestedState) => self.cov_i(IBlk::IoctlFreeNested),
            (CpuVendor::Intel, IoctlOp::HardwareSetup) => self.cov_i(IBlk::HwSetup),
            (CpuVendor::Intel, IoctlOp::HardwareUnsetup) => self.cov_i(IBlk::HwUnsetup),
            (CpuVendor::Amd, IoctlOp::GetNestedState | IoctlOp::SetNestedState) => {
                self.cov_a(ABlk::IoctlNestedAmd)
            }
            (CpuVendor::Amd, IoctlOp::HardwareSetup | IoctlOp::HardwareUnsetup) => {
                self.cov_a(ABlk::HwSetupAmd)
            }
            (CpuVendor::Amd, IoctlOp::FreeNestedState) => self.cov_a(ABlk::IoctlNestedAmd),
        }
    }

    fn coverage_map(&self) -> &CovMap {
        &self.map
    }

    fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    fn swap_trace(&mut self, trace: &mut ExecTrace) {
        std::mem::swap(&mut self.trace, trace);
    }

    fn intel_file(&self) -> FileId {
        self.intel_file
    }

    fn amd_file(&self) -> Option<FileId> {
        Some(self.amd_file)
    }

    fn health(&self) -> &HostHealth {
        &self.health
    }

    fn observe_guest(&self) -> crate::api::GuestObservation {
        use crate::api::GuestObservation;
        match self.config.vendor {
            CpuVendor::Intel => GuestObservation {
                cr0: self.l1_cr0,
                cr4: self.l1_cr4,
                efer: self.l1_efer,
                vmx_on: self.vmxon_region.is_some(),
                current_vmptr: self.current_vmptr.unwrap_or(u64::MAX),
                in_l2: self.in_l2,
                vmcs12_digest: self
                    .current_vmptr
                    .map(|p| GuestObservation::digest_vmcs(&self.vmcs12_mem[&p]))
                    .unwrap_or(0),
            },
            CpuVendor::Amd => GuestObservation {
                cr0: self.l1_cr0,
                cr4: self.l1_cr4,
                efer: self.l1_efer,
                vmx_on: false,
                current_vmptr: self.current_vmcb.unwrap_or(u64::MAX),
                in_l2: self.in_l2,
                vmcs12_digest: self
                    .current_vmcb
                    .map(|a| GuestObservation::digest_vmcb(&self.vmcb12_mem[&a]))
                    .unwrap_or(0),
            },
        }
    }

    fn health_mut(&mut self) -> &mut HostHealth {
        &mut self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_silicon::{golden_vmcs, VmInstrError};

    fn intel_kvm() -> Vkvm {
        Vkvm::new(HvConfig::default_for(CpuVendor::Intel))
    }

    #[test]
    fn vmxon_requires_cr4_vmxe() {
        let mut kvm = intel_kvm();
        kvm.l1_cr4 = nf_x86::Cr4::PAE; // VMXE clear
        assert_eq!(
            kvm.l1_exec(GuestInstr::Vmxon(0x1000)),
            L1Result::Fault("#UD")
        );
        kvm.l1_cr4 |= nf_x86::Cr4::VMXE;
        assert_eq!(kvm.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
    }

    #[test]
    fn nested_disabled_blocks_vmxon() {
        let mut cfg = HvConfig::default_for(CpuVendor::Intel);
        cfg.nested = false;
        let mut kvm = Vkvm::new(cfg);
        kvm.l1_cr4 |= nf_x86::Cr4::VMXE;
        assert_eq!(
            kvm.l1_exec(GuestInstr::Vmxon(0x1000)),
            L1Result::Fault("#UD")
        );
    }

    #[test]
    fn full_init_sequence_reaches_l2() {
        let mut kvm = intel_kvm();
        kvm.l1_cr4 |= nf_x86::Cr4::VMXE;
        assert_eq!(kvm.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
        assert_eq!(kvm.l1_exec(GuestInstr::Vmclear(0x2000)), L1Result::Ok(0));
        kvm.l1_stage_vmcs_region(0x2000, kvm.exposed_caps.revision_id);
        assert_eq!(kvm.l1_exec(GuestInstr::Vmptrld(0x2000)), L1Result::Ok(0));
        // Write a golden VMCS12 field by field, as the harness does.
        let golden = golden_vmcs(&kvm.exposed_caps);
        for &f in nf_vmx::VmcsField::ALL {
            if f.writable() {
                let r = kvm.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
                assert_eq!(r, L1Result::Ok(0), "{}", f.name());
            }
        }
        match kvm.l1_exec(GuestInstr::Vmlaunch) {
            L1Result::L2Entered { runnable } => assert!(runnable),
            other => panic!("expected L2 entry, got {other:?}"),
        }
        assert!(kvm.in_l2);
    }

    #[test]
    fn vmlaunch_without_vmptrld_vmfails() {
        let mut kvm = intel_kvm();
        kvm.l1_cr4 |= nf_x86::Cr4::VMXE;
        assert_eq!(kvm.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
        assert_eq!(
            kvm.l1_exec(GuestInstr::Vmlaunch),
            L1Result::VmFail(VmInstrError::FailInvalid)
        );
    }

    #[test]
    fn vmx_capability_msr_reads_hit_nested_code() {
        let mut kvm = intel_kvm();
        let r = kvm.l1_exec(GuestInstr::Rdmsr(Msr::VmxBasic.index()));
        assert_eq!(r, L1Result::Ok(VmxCapabilities::REVISION as u64));
        let trace = kvm.take_trace();
        assert!(!trace.is_empty());
    }

    #[test]
    fn swap_trace_hands_over_and_recycles() {
        let mut kvm = intel_kvm();
        kvm.l1_exec(GuestInstr::Rdmsr(Msr::VmxBasic.index()));
        let mut scratch = ExecTrace::new();
        kvm.swap_trace(&mut scratch);
        assert!(!scratch.is_empty(), "the exec's trace came out");
        assert!(kvm.take_trace().is_empty(), "the hv got the cleared one");
        // The swapped-out buffer is reusable: clear and swap back in.
        scratch.clear();
        kvm.l1_exec(GuestInstr::Rdmsr(Msr::VmxBasic.index()));
        kvm.swap_trace(&mut scratch);
        assert_eq!(scratch.len(), 1);
    }

    #[test]
    fn ioctl_surface_covers_host_only_blocks() {
        let mut kvm = intel_kvm();
        kvm.host_ioctl(IoctlOp::GetNestedState);
        kvm.host_ioctl(IoctlOp::SetNestedState);
        let trace = kvm.take_trace();
        let mut set = nf_coverage::LineSet::for_map(kvm.coverage_map());
        set.add_trace(kvm.coverage_map(), &trace);
        assert_eq!(set.count(), 48 + 60);
    }
}
