//! Instrumented basic blocks of vkvm's nested-virtualization code.
//!
//! The Intel blocks stand for `arch/x86/kvm/vmx/nested.c` and the AMD
//! blocks for `arch/x86/kvm/svm/nested.c`; line spans are calibrated so
//! the instrumented totals match the paper's Table 2 geometry (1,681
//! lines Intel, 387 lines AMD).

use crate::hv_blocks;

hv_blocks! {
    /// Basic blocks of the `vmx/nested.c` model.
    pub enum IBlk {
        // --- nested VMX instruction emulation (L1 traps).
        HandleVmxon = 20,
        VmxonNotEnabled = 6,
        VmxonGp = 8,
        VmxonBadAddr = 7,
        VmxonOk = 14,
        HandleVmxoff = 8,
        HandleVmclear = 10,
        VmclearBadAddr = 6,
        VmclearVmxonPtr = 5,
        VmclearOk = 8,
        HandleVmptrld = 10,
        VmptrldBadAddr = 6,
        VmptrldVmxonPtr = 5,
        VmptrldBadRev = 7,
        VmptrldOk = 9,
        HandleVmptrst = 6,
        HandleVmread = 14,
        VmreadNoVmcs = 4,
        VmreadBadField = 6,
        VmreadOk = 5,
        HandleVmwrite = 16,
        VmwriteNoVmcs = 4,
        VmwriteBadField = 6,
        VmwriteRo = 5,
        VmwriteShadow = 18,
        VmwriteOk = 5,
        HandleVmcallL1 = 7,
        HandleInvept = 9,
        InveptBadType = 5,
        NestedEptInvalidation = 18,
        HandleInvvpid = 9,
        InvvpidBadType = 5,
        NestedVpidSync = 13,
        // --- nested VMX capability MSRs (vmx_get_vmx_msr).
        NestedVmxMsrRead = 30,
        NestedVmxMsrWrite = 22,
        NestedEarlyInit = 26,
        // --- nested_vmx_run: launch-state and the three check groups.
        NestedRunEntry = 26,
        RunNoVmcs = 5,
        RunLaunchStateErr = 7,
        CheckCtlsEntry = 24,
        CtlPinErr = 6,
        CtlProcErr = 6,
        CtlProc2Err = 7,
        CtlCr3CountErr = 4,
        CtlIoBitmapErr = 6,
        CtlMsrBitmapErr = 5,
        CtlTprErr = 8,
        CtlEptpErr = 9,
        CtlVpidErr = 5,
        CtlPostedIntrErr = 9,
        CtlMsrAreaErr = 6,
        CtlEventInjErr = 12,
        CtlShadowErr = 6,
        CheckCtlsOk = 6,
        CheckHostEntry = 12,
        HostCrErr = 9,
        HostCr3Err = 4,
        HostSelErr = 8,
        HostCanonErr = 7,
        HostEferErr = 8,
        HostPatErr = 4,
        CheckHostOk = 4,
        CheckGuestEntry = 16,
        GuestCr0Err = 8,
        GuestCr4Err = 8,
        GuestCr3Err = 4,
        GuestEferErr = 10,
        GuestDbgErr = 7,
        GuestSegChecks = 44,
        GuestTrLdtrChecks = 12,
        GuestDtErr = 6,
        GuestRipRflagsErr = 9,
        GuestActivityErr = 7,
        GuestIntrErr = 8,
        GuestLinkPtrErr = 6,
        GuestPdpteErr = 9,
        GuestPatPerfErr = 6,
        CheckGuestOk = 10,
        MsrLoadWalk = 18,
        MsrLoadBadMsr = 6,
        MsrLoadNonCanonical = 8,
        MsrLoadOk = 4,
        // --- prepare_vmcs02 and nested entry commit.
        Prep02Entry = 30,
        Prep02CtrlMerge = 40,
        Prep02GuestCopy = 36,
        Prep02EptPath = 16,
        Prep02EptBadRoot = 9,
        Prep02ShadowPaging = 18,
        Prep02PdptWalk = 10,
        PdptLoadHelpers = 16,
        Prep02VpidPath = 7,
        Prep02ApicvPath = 10,
        Prep02PreemptTimer = 6,
        Prep02Ok = 12,
        HwEntryFailWarn = 12,
        EntryFailToL1 = 10,
        // --- nested VM-exit dispatch and reflection.
        ExitDispatchEntry = 22,
        ReflectDecide = 36,
        SyncVmcs12 = 48,
        SwitchToVmcs01 = 16,
        ReflectDeliver = 12,
        L0HandleExit = 20,
        L0EmulateCpuid = 6,
        L0EmulateIo = 7,
        L0EmulateMsr = 8,
        L0EmulateCr = 9,
        L0EmulateHlt = 4,
        L0EmulateOther = 6,
        ResumeL2 = 8,
        ReflectExc = 6,
        ReflectCpuid = 4,
        ReflectHlt = 4,
        ReflectCr = 7,
        ReflectIo = 6,
        ReflectMsr = 6,
        ReflectEptViolation = 9,
        ReflectVmxInstr = 8,
        ReflectTripleFault = 6,
        ReflectPreempt = 5,
        ReflectDr = 4,
        ReflectPause = 4,
        ReflectInvlpg = 4,
        ReflectRdtsc = 4,
        ReflectXsetbv = 5,
        ReflectMwaitMonitor = 5,
        ReflectRdrand = 4,
        ReflectWbinvd = 4,
        InjectEventToL1 = 24,
        // --- shadow-VMCS synchronization (VMCS shadowing feature).
        CopyShadowToVmcs12 = 22,
        CopyVmcs12ToShadow = 20,
        NestedCacheShadowVmcs12 = 14,
        NestedGetVmptr = 8,
        NestedReleaseVmcs12 = 12,
        VmFailHelpers = 10,
        NestedMarkDirty = 6,
        // --- host-ioctl-only paths (outside the guest threat model).
        IoctlGetNested = 48,
        IoctlSetNested = 60,
        IoctlFreeNested = 12,
        HwSetup = 14,
        HwUnsetup = 8,
        SmmEnterNested = 9,
        SmmLeaveNested = 9,
        // --- rare paths: sanitizer arms, optional hardware features.
        BugOnArm = 6,
        AllocFailArm = 8,
        IntelPtArm = 16,
        SgxArm = 8,
        EvmcsArm = 40,
        PostedIntrAccel = 9,
        MiscHelpers = 8,
    }
}

hv_blocks! {
    /// Basic blocks of the `svm/nested.c` model.
    pub enum ABlk {
        HandleVmrunEntry = 18,
        VmrunNoSvm = 5,
        VmrunBadVmcbAddr = 6,
        NestedVmcbCheckSave = 24,
        SaveCr0Err = 6,
        SaveCr34Err = 6,
        SaveEferErr = 7,
        SaveDrErr = 4,
        NestedVmcbCheckCtrl = 16,
        CtrlAsidErr = 4,
        CtrlVmrunInterceptErr = 5,
        CtrlNpErr = 6,
        NestedRootCheckFail = 8,
        PrepVmcb02 = 30,
        PrepVmcb02Npt = 10,
        PrepVmcb02Avic = 8,
        PrepVmcb02VGif = 7,
        PrepVmcb02Lbr = 5,
        VmrunOk = 12,
        EntryFailToL1Amd = 12,
        ExitDispatchAmd = 16,
        ReflectDecideAmd = 20,
        SyncVmcb12 = 20,
        ReflectDeliverAmd = 8,
        L0HandleAmd = 16,
        EmuMsrAmd = 6,
        EmuIoAmd = 5,
        EmuCpuidAmd = 4,
        HandleVmload = 10,
        HandleVmsave = 10,
        HandleStgiClgi = 9,
        HandleVmmcall = 5,
        IoctlNestedAmd = 38,
        HwSetupAmd = 8,
        AllocFailAmd = 6,
        VnmiArm = 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_total_matches_table2_geometry() {
        assert_eq!(IBlk::total_lines(), 1681, "vmx/nested.c instrumented lines");
    }

    #[test]
    fn amd_total_matches_table2_geometry() {
        assert_eq!(ABlk::total_lines(), 387, "svm/nested.c instrumented lines");
    }

    #[test]
    fn registration_preserves_order() {
        let mut map = nf_coverage::CovMap::new();
        let f = map.add_file("vmx/nested.c");
        let ids = IBlk::register(&mut map, f);
        assert_eq!(ids.len(), IBlk::ALL.len());
        assert_eq!(map.block(ids[IBlk::HandleVmxon.idx()]).label, "HandleVmxon");
        assert_eq!(map.file_lines(f), IBlk::total_lines());
    }
}
