//! vkvm's nested SVM emulation (`svm/nested.c` analog).

use nf_silicon::{check_vmrun, golden_vmcb, svm_exit_for, GuestInstr};
use nf_vmx::vmcb::int_ctl;
use nf_vmx::{SvmExitCode, Vmcb};
use nf_x86::{CpuFeature, Efer};

use super::{ABlk, Vkvm, GUEST_MEM_LIMIT};
use crate::api::{L1Result, L2Result};

impl Vkvm {
    /// `nested_svm_run`: emulates `vmrun` from L1.
    pub(crate) fn nested_svm_run(&mut self, addr: u64) -> L1Result {
        self.cov_a(ABlk::HandleVmrunEntry);
        if !self.nested_on() || self.l1_efer & Efer::SVME == 0 {
            self.cov_a(ABlk::VmrunNoSvm);
            return L1Result::Fault("#UD");
        }
        let Some(vmcb12) = self.vmcb12_mem.get(&addr).copied() else {
            self.cov_a(ABlk::VmrunBadVmcbAddr);
            return L1Result::Fault("#GP");
        };
        self.current_vmcb = Some(addr);

        // nested_vmcb_check_save: the save-area sanity checks KVM applies
        // before building VMCB02.
        self.cov_a(ABlk::NestedVmcbCheckSave);
        if let Err(failure) = check_vmrun(&vmcb12, true) {
            let arm = match failure.0.rule {
                "svm.cr0_upper" | "svm.cr0_nw_cd" => ABlk::SaveCr0Err,
                "svm.cr3_mbz" | "svm.cr4_reserved" | "svm.lme_pg_pae" | "svm.lme_pg_pe"
                | "svm.cs_l_d" => ABlk::SaveCr34Err,
                "svm.efer_reserved" | "svm.guest_svme" => ABlk::SaveEferErr,
                "svm.dr_upper" => ABlk::SaveDrErr,
                "svm.asid_zero" => ABlk::CtrlAsidErr,
                "svm.vmrun_intercept" => ABlk::CtrlVmrunInterceptErr,
                _ => ABlk::CtrlNpErr,
            };
            self.cov_a(arm);
            return self.svm_entry_fail_to_l1(addr);
        }
        self.cov_a(ABlk::NestedVmcbCheckCtrl);

        // Nested paging plumbing: nCR3 must reference visible guest
        // memory (mmu_check_root, shared with the Intel path — Table 6
        // row 3 lists this bug on both vendors).
        let np = self.config.features.contains(CpuFeature::NestedPaging)
            && vmcb12.control.np_enable & 1 != 0;
        if np && vmcb12.control.ncr3 >= GUEST_MEM_LIMIT {
            self.cov_a(ABlk::NestedRootCheckFail);
            if !self.bugs.dummy_root_fixed {
                self.health.assert_that(
                    "kvm-spurious-triple-fault",
                    false,
                    "shutdown exit without L2 entry (nCR3 invisible)",
                );
                let vmcb12m = self.vmcb12_mem.get_mut(&addr).expect("staged");
                vmcb12m.control.exitcode = SvmExitCode::Shutdown as u32 as u64;
                return L1Result::L2EntryFailed {
                    reason: SvmExitCode::Shutdown as u32,
                };
            }
            self.health
                .printk(6, "svm: using dummy root for invisible nCR3");
        }

        // prepare VMCB02.
        self.cov_a(ABlk::PrepVmcb02);
        let mut vmcb02 = golden_vmcb();
        vmcb02.save = vmcb12.save;
        vmcb02.control.intercepts = vmcb12.control.intercepts | golden_vmcb().control.intercepts;
        vmcb02.control.guest_asid = vmcb12.control.guest_asid.max(1);
        vmcb02.control.event_inj = vmcb12.control.event_inj;
        if np {
            self.cov_a(ABlk::PrepVmcb02Npt);
            vmcb02.control.np_enable = 1;
            vmcb02.control.ncr3 = golden_vmcb().control.ncr3;
        } else {
            vmcb02.control.np_enable = 0;
        }
        // KVM sanitizes int_ctl: AVIC is never enabled for L2, and vGIF
        // passes through only when the feature is configured.
        let mut ic = vmcb12.control.int_ctl & (int_ctl::V_INTR_MASKING | int_ctl::V_IGN_TPR);
        if self.config.features.contains(CpuFeature::Avic) {
            self.cov_a(ABlk::PrepVmcb02Avic);
        }
        if self.config.features.contains(CpuFeature::VGif) {
            self.cov_a(ABlk::PrepVmcb02VGif);
            ic |= vmcb12.control.int_ctl & (int_ctl::V_GIF | int_ctl::V_GIF_ENABLE);
        }
        vmcb02.control.int_ctl = ic;
        if self.config.features.contains(CpuFeature::Lbrv) {
            self.cov_a(ABlk::PrepVmcb02Lbr);
            vmcb02.control.lbr_ctl = vmcb12.control.lbr_ctl & 1;
        }

        // Hardware performs the real vmrun on VMCB02.
        match check_vmrun(&vmcb02, true) {
            Ok(outcome) => {
                self.cov_a(ABlk::VmrunOk);
                self.vmcb02 = Some(vmcb02);
                self.in_l2 = true;
                L1Result::L2Entered {
                    runnable: outcome.runnable,
                }
            }
            Err(failure) => {
                self.health.printk(
                    3,
                    format!("svm: vmcb02 rejected unexpectedly: {}", failure.0.rule),
                );
                self.svm_entry_fail_to_l1(addr)
            }
        }
    }

    /// Delivers `VMEXIT_INVALID` to L1.
    fn svm_entry_fail_to_l1(&mut self, addr: u64) -> L1Result {
        self.cov_a(ABlk::EntryFailToL1Amd);
        let vmcb12 = self.vmcb12_mem.get_mut(&addr).expect("staged");
        vmcb12.control.exitcode = SvmExitCode::Invalid as u32 as u64;
        L1Result::L2EntryFailed {
            reason: SvmExitCode::Invalid as u32,
        }
    }

    pub(crate) fn handle_vmload(&mut self, addr: u64) -> L1Result {
        self.cov_a(ABlk::HandleVmload);
        if self.l1_efer & Efer::SVME == 0 {
            return L1Result::Fault("#UD");
        }
        if !self.vmcb12_mem.contains_key(&addr) {
            return L1Result::Fault("#GP");
        }
        L1Result::Ok(0)
    }

    pub(crate) fn handle_vmsave(&mut self, addr: u64) -> L1Result {
        self.cov_a(ABlk::HandleVmsave);
        if self.l1_efer & Efer::SVME == 0 {
            return L1Result::Fault("#UD");
        }
        if !self.vmcb12_mem.contains_key(&addr) {
            return L1Result::Fault("#GP");
        }
        L1Result::Ok(0)
    }

    /// Nested #VMEXIT dispatch for a live L2 (AMD side).
    pub(crate) fn l2_exec_svm(&mut self, instr: GuestInstr) -> L2Result {
        let vmcb02 = self.vmcb02.as_ref().expect("in_l2 implies vmcb02");
        let addr = self.current_vmcb.expect("in_l2 implies current vmcb12");
        let vmcb12 = self.vmcb12_mem[&addr];
        // Same merge as the Intel side: KVM folds every intercept L1
        // programmed into VMCB02, so an L1-requested #VMEXIT always
        // occurs and carries the code L1's intercepts produce.
        let code12 = svm_exit_for(instr, &vmcb12);
        let Some(code) = code12.or_else(|| svm_exit_for(instr, vmcb02)) else {
            return L2Result::NoExit;
        };
        self.cov_a(ABlk::ExitDispatchAmd);
        self.cov_a(ABlk::ReflectDecideAmd);

        let reflect = code12.is_some();
        if reflect {
            self.cov_a(ABlk::SyncVmcb12);
            let save02 = self.vmcb02.as_ref().expect("live").save;
            let vmcb12m = self.vmcb12_mem.get_mut(&addr).expect("staged");
            vmcb12m.save = save02;
            vmcb12m.control.exitcode = code as u32 as u64;
            self.cov_a(ABlk::ReflectDeliverAmd);
            self.in_l2 = false;
            L2Result::ReflectedToL1(code as u32)
        } else {
            self.cov_a(ABlk::L0HandleAmd);
            let arm = match code {
                SvmExitCode::Msr => ABlk::EmuMsrAmd,
                SvmExitCode::Ioio => ABlk::EmuIoAmd,
                SvmExitCode::Cpuid => ABlk::EmuCpuidAmd,
                _ => ABlk::L0HandleAmd,
            };
            self.cov_a(arm);
            L2Result::HandledByL0
        }
    }

    /// Virtual-NMI plumbing (asynchronous events, out of fuzzing scope).
    pub fn handle_vnmi(&mut self) {
        self.cov_a(ABlk::VnmiArm);
    }

    /// Fault-injection arm for nested-state allocation on AMD.
    pub fn amd_alloc_failure(&mut self) {
        self.cov_a(ABlk::AllocFailAmd);
    }

    /// Returns whether the nested guest's VMRUN intercept is set — used
    /// by integration tests asserting intercept merging.
    pub fn vmcb02_intercepts(&self) -> Option<u64> {
        self.vmcb02.as_ref().map(|v| v.control.intercepts)
    }

    /// Exposes VMCB02's int_ctl for sanitization tests.
    pub fn vmcb02_int_ctl(&self) -> Option<u64> {
        self.vmcb02.as_ref().map(|v| v.control.int_ctl)
    }

    /// Stages a VMCB and runs it in one step (test helper mirroring the
    /// harness flow).
    pub fn stage_and_run(&mut self, addr: u64, vmcb: Vmcb) -> L1Result {
        use crate::api::L0Hypervisor;
        self.l1_stage_vmcb(addr, vmcb);
        self.l1_exec(GuestInstr::Vmrun(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{HvConfig, L0Hypervisor};
    use nf_vmx::vmcb::intercept;
    use nf_x86::CpuVendor;

    fn amd_kvm() -> Vkvm {
        let mut kvm = Vkvm::new(HvConfig::default_for(CpuVendor::Amd));
        kvm.l1_efer |= Efer::SVME;
        kvm
    }

    #[test]
    fn golden_vmcb_enters_l2() {
        let mut kvm = amd_kvm();
        match kvm.stage_and_run(0x5000, golden_vmcb()) {
            L1Result::L2Entered { runnable } => assert!(runnable),
            other => panic!("expected L2 entry, got {other:?}"),
        }
        assert!(kvm.in_l2);
    }

    #[test]
    fn vmrun_without_svme_uds() {
        let mut kvm = amd_kvm();
        kvm.l1_efer = Efer::LME | Efer::LMA;
        assert_eq!(
            kvm.stage_and_run(0x5000, golden_vmcb()),
            L1Result::Fault("#UD")
        );
    }

    #[test]
    fn asid_zero_fails_with_vmexit_invalid() {
        let mut kvm = amd_kvm();
        let mut vmcb = golden_vmcb();
        vmcb.control.guest_asid = 0;
        match kvm.stage_and_run(0x5000, vmcb) {
            L1Result::L2EntryFailed { reason } => {
                assert_eq!(reason, SvmExitCode::Invalid as u32)
            }
            other => panic!("expected entry failure, got {other:?}"),
        }
    }

    #[test]
    fn invalid_ncr3_triggers_spurious_shutdown_bug() {
        let mut kvm = amd_kvm();
        let mut vmcb = golden_vmcb();
        vmcb.control.ncr3 = GUEST_MEM_LIMIT + 0x1000;
        match kvm.stage_and_run(0x5000, vmcb) {
            L1Result::L2EntryFailed { reason } => {
                assert_eq!(reason, SvmExitCode::Shutdown as u32)
            }
            other => panic!("expected spurious shutdown, got {other:?}"),
        }
        assert!(kvm.health().anomalous(), "assertion report expected");
    }

    #[test]
    fn dummy_root_fix_suppresses_spurious_shutdown() {
        let mut kvm = amd_kvm();
        kvm.bugs.dummy_root_fixed = true;
        let mut vmcb = golden_vmcb();
        vmcb.control.ncr3 = GUEST_MEM_LIMIT + 0x1000;
        match kvm.stage_and_run(0x5000, vmcb) {
            L1Result::L2Entered { .. } => {}
            other => panic!("expected dummy-root entry, got {other:?}"),
        }
        assert!(!kvm.health().anomalous());
    }

    #[test]
    fn avic_never_enabled_for_l2() {
        let mut cfg = HvConfig::default_for(CpuVendor::Amd);
        cfg.features.insert(CpuFeature::Avic);
        let mut kvm = Vkvm::new(cfg);
        kvm.l1_efer |= Efer::SVME;
        let mut vmcb = golden_vmcb();
        vmcb.control.int_ctl = int_ctl::AVIC_ENABLE | int_ctl::V_INTR_MASKING;
        match kvm.stage_and_run(0x5000, vmcb) {
            L1Result::L2Entered { .. } => {}
            other => panic!("{other:?}"),
        }
        let ic = kvm.vmcb02_int_ctl().unwrap();
        assert_eq!(ic & int_ctl::AVIC_ENABLE, 0, "KVM sanitizes AVIC for L2");
        assert_ne!(ic & int_ctl::V_INTR_MASKING, 0);
    }

    #[test]
    fn l2_exits_reflect_per_vmcb12_intercepts() {
        let mut kvm = amd_kvm();
        let mut vmcb = golden_vmcb();
        vmcb.control.intercepts |= intercept::PAUSE;
        assert!(matches!(
            kvm.stage_and_run(0x5000, vmcb),
            L1Result::L2Entered { .. }
        ));
        // PAUSE intercepted by L1's VMCB -> reflected.
        assert_eq!(
            kvm.l2_exec(GuestInstr::Pause),
            L2Result::ReflectedToL1(SvmExitCode::Pause as u32)
        );
        assert!(!kvm.in_l2);
    }

    #[test]
    fn l2_nop_runs_natively() {
        let mut kvm = amd_kvm();
        assert!(matches!(
            kvm.stage_and_run(0x5000, golden_vmcb()),
            L1Result::L2Entered { .. }
        ));
        assert_eq!(kvm.l2_exec(GuestInstr::Nop), L2Result::NoExit);
        assert!(kvm.in_l2);
    }
}
