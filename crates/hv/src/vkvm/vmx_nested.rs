//! vkvm's nested VMX emulation (`vmx/nested.c` analog).

use nf_silicon::vmentry::EntryFailure;
use nf_silicon::{
    golden_vmcs, launch_state_check, vmclear_check, vmptrld_check, vmread_check, vmwrite_check,
    vmx_exit_for, vmxon_check, GuestInstr, VmInstrError,
};
use nf_vmx::controls::{entry as ec, proc, proc2};
use nf_vmx::{ExitReason, MsrArea, Vmcs, VmcsField, VmcsState};
use nf_x86::{CpuFeature, Cr0, Cr4, Efer, PagingMode};

use super::{IBlk, Vkvm, GUEST_MEM_LIMIT};
use crate::api::L1Result;

impl Vkvm {
    pub(crate) fn handle_vmxon(&mut self, addr: u64) -> L1Result {
        self.cov_i(IBlk::HandleVmxon);
        if !self.nested_on() {
            self.cov_i(IBlk::VmxonNotEnabled);
            return L1Result::Fault("#UD");
        }
        if self.l1_cr4 & Cr4::VMXE == 0 {
            self.cov_i(IBlk::VmxonNotEnabled);
            return L1Result::Fault("#UD");
        }
        if let Err(_e) = vmxon_check(
            Cr0::new(self.l1_cr0),
            Cr4::new(self.l1_cr4),
            Efer::new(self.l1_efer),
            addr,
        ) {
            // Distinguish register preconditions (#GP) from a bad region.
            if !nf_x86::addr::page_aligned(addr) || !nf_x86::addr::phys_in_width(addr) {
                self.cov_i(IBlk::VmxonBadAddr);
                return L1Result::VmFail(VmInstrError::FailInvalid);
            }
            self.cov_i(IBlk::VmxonGp);
            return L1Result::Fault("#GP");
        }
        self.cov_i(IBlk::VmxonOk);
        // First vmxon sets up the nested MSR/control state
        // (nested_vmx_setup_ctls_msrs analog).
        self.cov_i(IBlk::NestedEarlyInit);
        self.vmxon_region = Some(addr);
        L1Result::Ok(0)
    }

    pub(crate) fn handle_vmxoff(&mut self) -> L1Result {
        self.cov_i(IBlk::HandleVmxoff);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        self.vmxon_region = None;
        self.current_vmptr = None;
        self.in_l2 = false;
        L1Result::Ok(0)
    }

    pub(crate) fn handle_vmclear(&mut self, addr: u64) -> L1Result {
        self.cov_i(IBlk::HandleVmclear);
        let Some(vmxon) = self.vmxon_region else {
            return L1Result::Fault("#UD");
        };
        match vmclear_check(addr, vmxon) {
            Err(VmInstrError::VmclearBadAddress) => {
                self.cov_i(IBlk::VmclearBadAddr);
                return L1Result::VmFail(VmInstrError::VmclearBadAddress);
            }
            Err(e) => {
                self.cov_i(IBlk::VmclearVmxonPtr);
                return L1Result::VmFail(e);
            }
            Ok(()) => {}
        }
        self.cov_i(IBlk::VmclearOk);
        self.flush_shadow_vmcs();
        let revision = self.exposed_caps.revision_id;
        let vmcs = self.vmcs12_mem.entry(addr).or_insert_with(|| {
            let mut v = Vmcs::new();
            v.revision_id = revision;
            v
        });
        vmcs.state = VmcsState::Clear;
        if self.current_vmptr == Some(addr) {
            self.current_vmptr = None;
        }
        L1Result::Ok(0)
    }

    pub(crate) fn handle_vmptrld(&mut self, addr: u64) -> L1Result {
        self.cov_i(IBlk::HandleVmptrld);
        let Some(vmxon) = self.vmxon_region else {
            return L1Result::Fault("#UD");
        };
        let revision = self.exposed_caps.revision_id;
        let region_rev = self
            .vmcs12_mem
            .get(&addr)
            .map(|v| v.revision_id)
            .unwrap_or(revision);
        match vmptrld_check(addr, vmxon, region_rev, revision) {
            Err(VmInstrError::VmptrldBadAddress) => {
                self.cov_i(IBlk::VmptrldBadAddr);
                return L1Result::VmFail(VmInstrError::VmptrldBadAddress);
            }
            Err(VmInstrError::VmptrldVmxonPointer) => {
                self.cov_i(IBlk::VmptrldVmxonPtr);
                return L1Result::VmFail(VmInstrError::VmptrldVmxonPointer);
            }
            Err(e) => {
                self.cov_i(IBlk::VmptrldBadRev);
                return L1Result::VmFail(e);
            }
            Ok(()) => {}
        }
        self.cov_i(IBlk::VmptrldOk);
        self.cov_i(IBlk::NestedGetVmptr);
        self.vmcs12_mem.entry(addr).or_insert_with(|| {
            let mut v = Vmcs::new();
            v.revision_id = revision;
            v
        });
        if self.current_vmptr.is_some() && self.current_vmptr != Some(addr) {
            self.cov_i(IBlk::NestedReleaseVmcs12);
        }
        self.current_vmptr = Some(addr);
        L1Result::Ok(0)
    }

    pub(crate) fn handle_vmread(&mut self, encoding: u32) -> L1Result {
        self.cov_i(IBlk::HandleVmread);
        let Some(ptr) = self.current_vmptr else {
            self.cov_i(IBlk::VmreadNoVmcs);
            return L1Result::VmFail(VmInstrError::FailInvalid);
        };
        match vmread_check(encoding) {
            Err(e) => {
                self.cov_i(IBlk::VmreadBadField);
                L1Result::VmFail(e)
            }
            Ok(field) => {
                self.cov_i(IBlk::VmreadOk);
                L1Result::Ok(self.vmcs12_mem[&ptr].read(field))
            }
        }
    }

    pub(crate) fn handle_vmwrite(&mut self, encoding: u32, value: u64) -> L1Result {
        self.cov_i(IBlk::HandleVmwrite);
        let Some(ptr) = self.current_vmptr else {
            self.cov_i(IBlk::VmwriteNoVmcs);
            return L1Result::VmFail(VmInstrError::FailInvalid);
        };
        match vmwrite_check(encoding) {
            Err(VmInstrError::VmwriteReadOnly) => {
                self.cov_i(IBlk::VmwriteRo);
                L1Result::VmFail(VmInstrError::VmwriteReadOnly)
            }
            Err(e) => {
                self.cov_i(IBlk::VmwriteBadField);
                L1Result::VmFail(e)
            }
            Ok(field) => {
                if self.config.features.contains(CpuFeature::VmcsShadowing) {
                    self.cov_i(IBlk::VmwriteShadow);
                    self.cov_i(IBlk::NestedMarkDirty);
                } else {
                    self.cov_i(IBlk::VmwriteOk);
                }
                self.vmcs12_mem
                    .get_mut(&ptr)
                    .expect("current vmcs staged")
                    .write(field, value);
                L1Result::Ok(0)
            }
        }
    }

    pub(crate) fn handle_invept(&mut self, typ: u64) -> L1Result {
        self.cov_i(IBlk::HandleInvept);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        if !(1..=2).contains(&typ) {
            self.cov_i(IBlk::InveptBadType);
            return L1Result::VmFail(VmInstrError::FailInvalid);
        }
        if self.config.features.contains(CpuFeature::Ept) {
            self.cov_i(IBlk::NestedEptInvalidation);
        }
        L1Result::Ok(0)
    }

    pub(crate) fn handle_invvpid(&mut self, typ: u64) -> L1Result {
        self.cov_i(IBlk::HandleInvvpid);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        if typ > 3 {
            self.cov_i(IBlk::InvvpidBadType);
            return L1Result::VmFail(VmInstrError::FailInvalid);
        }
        if self.config.features.contains(CpuFeature::Vpid) {
            self.cov_i(IBlk::NestedVpidSync);
        }
        L1Result::Ok(0)
    }

    /// Maps a silicon entry-failure rule to the vkvm error arm it mirrors.
    fn ctl_arm(rule: &str, detail: &str) -> IBlk {
        match rule {
            "ctrl.capability" if detail.starts_with("pin") => IBlk::CtlPinErr,
            "ctrl.capability" => IBlk::CtlProcErr,
            "ctrl.capability2" => IBlk::CtlProc2Err,
            "ctrl.cr3_target_count" => IBlk::CtlCr3CountErr,
            "ctrl.io_bitmap_addr" => IBlk::CtlIoBitmapErr,
            "ctrl.msr_bitmap_addr" => IBlk::CtlMsrBitmapErr,
            "ctrl.vapic_addr" | "ctrl.tpr_threshold" | "ctrl.apicv_requires_tpr_shadow" => {
                IBlk::CtlTprErr
            }
            "ctrl.eptp" | "ctrl.ug_requires_ept" => IBlk::CtlEptpErr,
            "ctrl.vpid_zero" => IBlk::CtlVpidErr,
            "ctrl.posted_intr_deps" | "ctrl.posted_intr_nv" | "ctrl.posted_intr_desc" => {
                IBlk::CtlPostedIntrErr
            }
            "ctrl.msr_area_addr" => IBlk::CtlMsrAreaErr,
            "ctrl.shadow_bitmap" => IBlk::CtlShadowErr,
            r if r.starts_with("event.") => IBlk::CtlEventInjErr,
            _ => IBlk::CtlShadowErr,
        }
    }

    fn host_arm(rule: &str) -> IBlk {
        match rule {
            "host.cr0_fixed" | "host.cr4_fixed" | "host.cr4_pae" | "host.addr_space_size" => {
                IBlk::HostCrErr
            }
            "host.cr3_width" => IBlk::HostCr3Err,
            "host.selector_rpl_ti" | "host.cs_null" | "host.tr_null" => IBlk::HostSelErr,
            "host.canonical" => IBlk::HostCanonErr,
            "host.efer_reserved" | "host.efer_lma_lme" => IBlk::HostEferErr,
            _ => IBlk::HostPatErr,
        }
    }

    fn guest_arm(rule: &str) -> IBlk {
        match rule {
            "guest.cr0_fixed" | "guest.ia32e_pg" => IBlk::GuestCr0Err,
            "guest.cr4_fixed" | "guest.pcide_requires_ia32e" => IBlk::GuestCr4Err,
            "guest.cr3_width" => IBlk::GuestCr3Err,
            r if r.starts_with("guest.efer") => IBlk::GuestEferErr,
            "guest.debugctl_reserved" | "guest.dr7_upper" => IBlk::GuestDbgErr,
            r if r.starts_with("guest.tr") || r.starts_with("guest.ldtr") => {
                IBlk::GuestTrLdtrChecks
            }
            r if r.starts_with("guest.cs")
                || r.starts_with("guest.ss")
                || r.starts_with("guest.seg")
                || r.starts_with("guest.v86") =>
            {
                IBlk::GuestSegChecks
            }
            "guest.dtable_base" | "guest.dtable_limit" => IBlk::GuestDtErr,
            "guest.rip_upper" | "guest.rip_canonical" | "guest.rflags" | "guest.vm86_mode" => {
                IBlk::GuestRipRflagsErr
            }
            "guest.activity_reserved" | "guest.hlt_blocking" => IBlk::GuestActivityErr,
            "guest.interruptibility" => IBlk::GuestIntrErr,
            "guest.vmcs_link" => IBlk::GuestLinkPtrErr,
            "guest.pdpte" => IBlk::GuestPdpteErr,
            _ => IBlk::GuestPatPerfErr,
        }
    }

    /// `nested_vmx_run`: emulates `vmlaunch`/`vmresume` from L1.
    pub(crate) fn nested_vmx_run(&mut self, launch: bool) -> L1Result {
        self.cov_i(IBlk::NestedRunEntry);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        let Some(ptr) = self.current_vmptr else {
            self.cov_i(IBlk::RunNoVmcs);
            return L1Result::VmFail(VmInstrError::FailInvalid);
        };
        let vmcs12 = self.vmcs12_mem[&ptr].clone();

        if let Err(e) = launch_state_check(vmcs12.state, !launch) {
            self.cov_i(IBlk::RunLaunchStateErr);
            self.cov_i(IBlk::VmFailHelpers);
            return L1Result::VmFail(e);
        }

        // Group 1: control fields, checked against the *exposed* caps.
        self.cov_i(IBlk::CheckCtlsEntry);
        let exposed = self.exposed_caps.clone();
        if let Err(failure) = nf_silicon::check_vm_controls(&vmcs12, &exposed) {
            if let EntryFailure::InvalidControls(e) = &failure {
                self.cov_i(Self::ctl_arm(e.rule, &e.detail));
            }
            self.cov_i(IBlk::VmFailHelpers);
            return L1Result::VmFail(VmInstrError::EntryInvalidControls);
        }
        self.cov_i(IBlk::CheckCtlsOk);

        // Group 2: host state.
        self.cov_i(IBlk::CheckHostEntry);
        if let Err(failure) = nf_silicon::check_host_state(&vmcs12, &exposed) {
            if let EntryFailure::InvalidHostState(e) = &failure {
                self.cov_i(Self::host_arm(e.rule));
            }
            self.cov_i(IBlk::VmFailHelpers);
            return L1Result::VmFail(VmInstrError::EntryInvalidHostState);
        }
        self.cov_i(IBlk::CheckHostOk);

        // Group 3: guest state.
        self.cov_i(IBlk::CheckGuestEntry);
        let entryv = vmcs12.read(VmcsField::VmEntryControls) as u32;
        let ia32e = entryv & ec::IA32E_MODE_GUEST != 0;
        let guest_cr4 = vmcs12.read(VmcsField::GuestCr4);

        // The fixed kernel adds the consistency check KVM was missing
        // (CVE-2023-30456, commit 112e660); the vulnerable kernel relies
        // on the hardware quirk and sails through.
        if self.bugs.cve_2023_30456_fixed && ia32e && guest_cr4 & Cr4::PAE == 0 {
            self.cov_i(IBlk::GuestCr4Err);
            return self.entry_fail_to_l1(ptr, ExitReason::EntryFailGuestState);
        }

        if let Err(failure) = nf_silicon::check_guest_state(&vmcs12, &exposed) {
            if let EntryFailure::InvalidGuestState(e) = &failure {
                self.cov_i(Self::guest_arm(e.rule));
            }
            return self.entry_fail_to_l1(ptr, ExitReason::EntryFailGuestState);
        }
        // KVM refuses nested activity states beyond Active/HLT, avoiding
        // the class of bug Xen shipped (activity-state pass-through).
        let act = vmcs12.read(VmcsField::GuestActivityState);
        if act > 1 {
            self.cov_i(IBlk::GuestActivityErr);
            return self.entry_fail_to_l1(ptr, ExitReason::EntryFailGuestState);
        }
        self.cov_i(IBlk::CheckGuestOk);

        // VM-entry MSR-load list: KVM validates values with full wrmsr
        // semantics (the check VirtualBox lacked).
        self.cov_i(IBlk::MsrLoadWalk);
        let count = vmcs12.read(VmcsField::VmEntryMsrLoadCount) as usize;
        if count > 0 {
            let addr = vmcs12.read(VmcsField::VmEntryMsrLoadAddr);
            let mut area = self.msr_area_mem.get(&addr).cloned().unwrap_or_default();
            area.entries.truncate(count);
            if let Err(failure) = nf_silicon::check_msr_load(&area) {
                let arm = if failure.rule() == "msrload.non_canonical" {
                    IBlk::MsrLoadNonCanonical
                } else {
                    IBlk::MsrLoadBadMsr
                };
                self.cov_i(arm);
                return self.entry_fail_to_l1(ptr, ExitReason::EntryFailMsrLoad);
            }
        }
        self.cov_i(IBlk::MsrLoadOk);

        // prepare_vmcs02 and commit.
        match self.prepare_vmcs02(&vmcs12) {
            Ok(vmcs02) => {
                // Hardware performs the real entry on VMCS02.
                match nf_silicon::try_vmentry(&vmcs02, &self.hw_caps.clone(), &MsrArea::new()) {
                    Ok(outcome) => {
                        self.cov_i(IBlk::Prep02Ok);
                        self.vmcs02 = Some(vmcs02);
                        self.in_l2 = true;
                        self.vmcs12_mem.get_mut(&ptr).expect("staged").state = VmcsState::Launched;
                        L1Result::L2Entered {
                            runnable: outcome.runnable,
                        }
                    }
                    Err(failure) => {
                        // "This should never happen": KVM's checks passed
                        // but hardware rejected VMCS02.
                        self.cov_i(IBlk::HwEntryFailWarn);
                        self.health.printk(
                            3,
                            format!("vmx: vmcs02 entry failed unexpectedly: {}", failure.rule()),
                        );
                        self.entry_fail_to_l1(ptr, ExitReason::EntryFailGuestState)
                    }
                }
            }
            Err(result) => result,
        }
    }

    /// Delivers a VM-entry-failure exit to L1 (SDM 26.8).
    fn entry_fail_to_l1(&mut self, ptr: u64, reason: ExitReason) -> L1Result {
        self.cov_i(IBlk::EntryFailToL1);
        let encoded = reason.encode(true);
        let vmcs12 = self.vmcs12_mem.get_mut(&ptr).expect("staged");
        vmcs12.write(VmcsField::VmExitReason, encoded as u64);
        vmcs12.write(VmcsField::ExitQualification, 0);
        L1Result::L2EntryFailed { reason: encoded }
    }

    /// `prepare_vmcs02`: merges VMCS12 (guest half) with vkvm's own host
    /// context into the VMCS the hardware actually runs.
    fn prepare_vmcs02(&mut self, vmcs12: &Vmcs) -> Result<Vmcs, L1Result> {
        self.cov_i(IBlk::Prep02Entry);
        if self.fail_next_alloc {
            self.fail_next_alloc = false;
            self.cov_i(IBlk::AllocFailArm);
            return Err(L1Result::VmFail(VmInstrError::FailInvalid));
        }

        let hw = self.hw_caps.clone();
        let mut vmcs02 = golden_vmcs(&hw);

        // Control merge: L1's controls ORed with L0's own requirements.
        self.cov_i(IBlk::Prep02CtrlMerge);
        let pin12 = vmcs12.read(VmcsField::PinBasedVmExecControl) as u32;
        let proc12 = vmcs12.read(VmcsField::CpuBasedVmExecControl) as u32;
        let proc212 = vmcs12.read(VmcsField::SecondaryVmExecControl) as u32;
        let pin02 = hw.round_control(
            nf_vmx::CtrlKind::PinBased,
            pin12 | vmcs02.read(VmcsField::PinBasedVmExecControl) as u32,
        );
        let proc02 = hw.round_control(
            nf_vmx::CtrlKind::ProcBased,
            proc12 | vmcs02.read(VmcsField::CpuBasedVmExecControl) as u32,
        );
        let mut proc202 = hw.round_control(
            nf_vmx::CtrlKind::ProcBased2,
            proc212 | vmcs02.read(VmcsField::SecondaryVmExecControl) as u32,
        );
        vmcs02.write(VmcsField::PinBasedVmExecControl, pin02 as u64);
        vmcs02.write(VmcsField::CpuBasedVmExecControl, proc02 as u64);
        vmcs02.write(
            VmcsField::VmEntryControls,
            hw.round_control(
                nf_vmx::CtrlKind::Entry,
                vmcs12.read(VmcsField::VmEntryControls) as u32,
            ) as u64,
        );
        vmcs02.write(
            VmcsField::ExceptionBitmap,
            vmcs12.read(VmcsField::ExceptionBitmap),
        );
        for f in [
            VmcsField::Cr0GuestHostMask,
            VmcsField::Cr4GuestHostMask,
            VmcsField::Cr0ReadShadow,
            VmcsField::Cr4ReadShadow,
            VmcsField::Cr3TargetCount,
            VmcsField::Cr3TargetValue0,
            VmcsField::Cr3TargetValue1,
            VmcsField::Cr3TargetValue2,
            VmcsField::Cr3TargetValue3,
            VmcsField::VmEntryIntrInfoField,
            VmcsField::VmEntryExceptionErrorCode,
            VmcsField::VmEntryInstructionLen,
        ] {
            vmcs02.write(f, vmcs12.read(f));
        }

        // Guest-state copy.
        self.cov_i(IBlk::Prep02GuestCopy);
        for &f in VmcsField::ALL {
            if f.group() == nf_vmx::FieldGroup::Guest {
                vmcs02.write(f, vmcs12.read(f));
            }
        }
        vmcs02.write(VmcsField::VmcsLinkPointer, u64::MAX);

        let ept_on = self.config.features.contains(CpuFeature::Ept);
        let l1_wants_ept = proc212 & proc2::ENABLE_EPT != 0;
        if ept_on && l1_wants_ept {
            // Nested EPT: L0 shadows L1's EPT tables.
            self.cov_i(IBlk::Prep02EptPath);
            let eptp12 = vmcs12.read(VmcsField::EptPointer);
            let root = eptp12 & !0xfffu64;
            if root >= GUEST_MEM_LIMIT {
                // mmu_check_root() failure: the root is well-formed but
                // points outside guest memory.
                self.cov_i(IBlk::Prep02EptBadRoot);
                if !self.bugs.dummy_root_fixed {
                    // BUG (Table 6 row 3): synthesize a triple-fault exit
                    // to L1 although L2 never started.
                    self.health.assert_that(
                        "kvm-spurious-triple-fault",
                        false,
                        "triple-fault exit without L2 entry",
                    );
                    let ptr = self.current_vmptr.expect("in nested run");
                    let vmcs12m = self.vmcs12_mem.get_mut(&ptr).expect("staged");
                    vmcs12m.write(
                        VmcsField::VmExitReason,
                        ExitReason::TripleFault.encode(false) as u64,
                    );
                    return Err(L1Result::L2EntryFailed {
                        reason: ExitReason::TripleFault.encode(false),
                    });
                }
                // FIXED: load a dummy root backed by the zero page; any
                // L2 access faults cleanly afterwards.
                self.health
                    .printk(6, "vmx: using dummy root for invisible guest root");
            }
            vmcs02.write(VmcsField::EptPointer, nf_silicon::GOLDEN_EPTP);
        } else {
            // Shadow paging: L0 walks L2's page tables in software.
            self.cov_i(IBlk::Prep02ShadowPaging);
            proc202 &= !proc2::ENABLE_EPT;
            vmcs02.write(VmcsField::EptPointer, 0);

            let cr0 = nf_x86::Cr0::new(vmcs12.read(VmcsField::GuestCr0));
            let cr4 = nf_x86::Cr4::new(vmcs12.read(VmcsField::GuestCr4));
            let entryv = vmcs12.read(VmcsField::VmEntryControls) as u32;
            // EFER as the hardware will see it after entry: IA-32e mode
            // forces LME/LMA; otherwise the loaded (and already checked)
            // value applies, or the pre-entry reset value of zero.
            let efer = if entryv & ec::IA32E_MODE_GUEST != 0 {
                nf_x86::Efer::new(Efer::LME | Efer::LMA)
            } else if entryv & ec::LOAD_EFER != 0 {
                nf_x86::Efer::new(vmcs12.read(VmcsField::GuestIa32Efer))
            } else {
                nf_x86::Efer::new(0)
            };
            // Hardware walks with the derived (quirk-aware) mode; the
            // vulnerable MMU sizes its root cache from the literal bits.
            let hw_levels = PagingMode::derive(cr0, cr4, efer).walk_levels();
            let sw_levels = if self.bugs.cve_2023_30456_fixed {
                hw_levels
            } else {
                PagingMode::derive_literal(cr0, cr4, efer).walk_levels()
            };
            if hw_levels >= 3 {
                self.cov_i(IBlk::Prep02PdptWalk);
                self.cov_i(IBlk::PdptLoadHelpers);
            }
            if hw_levels > 0 {
                let root_cache = vec![0u64; sw_levels.max(1)];
                // Walk from the top level down, indexing the root cache
                // the way the shadow MMU does (CVE-2023-30456 site).
                let top = hw_levels - 1;
                self.health
                    .ubsan_index("CVE-2023-30456", top, root_cache.len());
            }
        }
        vmcs02.write(VmcsField::SecondaryVmExecControl, proc202 as u64);

        if self.config.features.contains(CpuFeature::Vpid) && proc212 & proc2::ENABLE_VPID != 0 {
            self.cov_i(IBlk::Prep02VpidPath);
            vmcs02.write(VmcsField::Vpid, vmcs12.read(VmcsField::Vpid));
        }
        if self.config.features.contains(CpuFeature::Apicv) && proc12 & proc::USE_TPR_SHADOW != 0 {
            self.cov_i(IBlk::Prep02ApicvPath);
        }
        if pin12 & nf_vmx::controls::pin::PREEMPTION_TIMER != 0 {
            self.cov_i(IBlk::Prep02PreemptTimer);
        }
        self.cov_i(IBlk::MiscHelpers);
        Ok(vmcs02)
    }

    /// Nested VM-exit dispatch for a live L2 (Intel side).
    pub(crate) fn l2_exec_vmx(&mut self, instr: GuestInstr) -> crate::api::L2Result {
        use crate::api::L2Result;
        let vmcs02 = self.vmcs02.as_ref().expect("in_l2 implies vmcs02");
        let ptr = self.current_vmptr.expect("in_l2 implies current vmcs12");
        // KVM builds VMCS02 by merging its own exit policy with every
        // exit control L1 programmed (MSR/IO bitmaps, CR masks, the
        // exception bitmap), so an exit L1 asked for always occurs even
        // where L0's own policy would let the instruction run natively.
        // The model expresses that merge by consulting VMCS12 directly:
        // its decision both forces the exit and names the reason L1
        // observes.
        let reason12 = vmx_exit_for(instr, &self.vmcs12_mem[&ptr]);
        let Some(reason) = reason12.or_else(|| vmx_exit_for(instr, vmcs02)) else {
            return L2Result::NoExit;
        };
        self.cov_i(IBlk::ExitDispatchEntry);
        self.cov_i(IBlk::ReflectDecide);

        let reflect = reason12.is_some();

        if reflect {
            let arm = match reason {
                ExitReason::ExceptionNmi => IBlk::ReflectExc,
                ExitReason::Cpuid => {
                    // KVM computes the guest's CPUID view before
                    // reflecting the exit.
                    self.cov_i(IBlk::L0EmulateCpuid);
                    IBlk::ReflectCpuid
                }
                ExitReason::Hlt => IBlk::ReflectHlt,
                ExitReason::CrAccess => IBlk::ReflectCr,
                ExitReason::IoInstruction => IBlk::ReflectIo,
                ExitReason::Rdmsr | ExitReason::Wrmsr => IBlk::ReflectMsr,
                ExitReason::EptViolation | ExitReason::EptMisconfig => IBlk::ReflectEptViolation,
                ExitReason::TripleFault => IBlk::ReflectTripleFault,
                ExitReason::PreemptionTimer => IBlk::ReflectPreempt,
                ExitReason::DrAccess => IBlk::ReflectDr,
                ExitReason::Pause => IBlk::ReflectPause,
                ExitReason::Invlpg | ExitReason::Invpcid => IBlk::ReflectInvlpg,
                ExitReason::Rdtsc | ExitReason::Rdtscp => IBlk::ReflectRdtsc,
                ExitReason::Xsetbv => IBlk::ReflectXsetbv,
                ExitReason::Mwait | ExitReason::Monitor => IBlk::ReflectMwaitMonitor,
                ExitReason::Rdrand | ExitReason::Rdseed => IBlk::ReflectRdrand,
                ExitReason::Wbinvd => IBlk::ReflectWbinvd,
                _ => IBlk::ReflectVmxInstr,
            };
            self.cov_i(arm);

            // Sync guest state VMCS02 -> VMCS12 and deliver the exit.
            self.cov_i(IBlk::SyncVmcs12);
            let vmcs02 = self.vmcs02.as_ref().expect("live");
            let mut guest_snapshot: Vec<(VmcsField, u64)> = Vec::new();
            for &f in VmcsField::ALL {
                if f.group() == nf_vmx::FieldGroup::Guest {
                    guest_snapshot.push((f, vmcs02.read(f)));
                }
            }
            // Seeded misvirtualization (test-only, see `VkvmBugs`): the
            // exit is delivered, the host stays healthy, but L1 is told
            // the wrong reason.
            let encoded = if self.bugs.misreport_hlt_exit && reason == ExitReason::Hlt {
                ExitReason::Pause.encode(false)
            } else {
                reason.encode(false)
            };
            let vmcs12 = self.vmcs12_mem.get_mut(&ptr).expect("staged");
            for (f, v) in guest_snapshot {
                vmcs12.write(f, v);
            }
            vmcs12.write(VmcsField::VmExitReason, encoded as u64);
            vmcs12.write(VmcsField::ExitQualification, 0);
            if self.config.features.contains(CpuFeature::VmcsShadowing) {
                self.cov_i(IBlk::CopyShadowToVmcs12);
                self.cov_i(IBlk::NestedCacheShadowVmcs12);
            }
            self.cov_i(IBlk::SwitchToVmcs01);
            self.cov_i(IBlk::ReflectDeliver);
            if reason == ExitReason::ExceptionNmi {
                self.cov_i(IBlk::InjectEventToL1);
            }
            self.in_l2 = false;
            L2Result::ReflectedToL1(encoded)
        } else {
            self.cov_i(IBlk::L0HandleExit);
            let arm = match reason {
                ExitReason::Cpuid => IBlk::L0EmulateCpuid,
                ExitReason::IoInstruction => IBlk::L0EmulateIo,
                ExitReason::Rdmsr | ExitReason::Wrmsr => IBlk::L0EmulateMsr,
                ExitReason::CrAccess => IBlk::L0EmulateCr,
                ExitReason::Hlt => IBlk::L0EmulateHlt,
                _ => IBlk::L0EmulateOther,
            };
            self.cov_i(arm);
            self.cov_i(IBlk::ResumeL2);
            L2Result::HandledByL0
        }
    }

    /// Unreachable-by-fuzzing optional features (the paper's ≤2% rare
    /// residue): exercised only by targeted tests, never by the harness
    /// templates.
    pub fn handle_encls_exit(&mut self) {
        self.cov_i(IBlk::SgxArm);
    }

    /// Intel PT context switch for nested guests (rare residue).
    pub fn handle_pt_nested(&mut self) {
        self.cov_i(IBlk::IntelPtArm);
    }

    /// Hyper-V enlightened-VMCS path (rare residue).
    pub fn handle_evmcs(&mut self) {
        self.cov_i(IBlk::EvmcsArm);
    }

    /// Posted-interrupt acceleration (asynchronous events, out of scope).
    pub fn handle_posted_interrupt(&mut self) {
        self.cov_i(IBlk::PostedIntrAccel);
    }

    /// `BUG_ON` arm: only a kernel-debugging build reaches this.
    pub fn trigger_bug_on(&mut self) {
        self.cov_i(IBlk::BugOnArm);
        self.health
            .host_crash("vkvm-bug-on", "kernel BUG at vmx/nested.c");
    }

    /// SMM transitions interact with nested state (host-only path).
    pub fn smm_transition(&mut self, entering: bool) {
        if entering {
            self.cov_i(IBlk::SmmEnterNested);
        } else {
            self.cov_i(IBlk::SmmLeaveNested);
        }
    }

    /// Shadow-VMCS write-back on vmclear-like flushes (shadowing only).
    pub(crate) fn flush_shadow_vmcs(&mut self) {
        if self.config.features.contains(CpuFeature::VmcsShadowing) {
            self.cov_i(IBlk::CopyVmcs12ToShadow);
        }
    }
}
