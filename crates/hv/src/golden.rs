//! The silicon golden model as a backend — bare-metal reference for the
//! differential oracle.
//!
//! [`SiliconGolden`] answers one question: *what would the scenario have
//! done on real hardware, with no L0 hypervisor in between?* It
//! implements [`L0Hypervisor`] so the differential oracle can drive it
//! through the exact harness path the real backends take, but there is
//! no emulation layer inside: the VMCS12 the scenario builds **is** the
//! VMCS the modeled CPU runs, `vmlaunch` is [`nf_silicon::try_vmentry`]
//! on it directly (no `prepare_vmcs02` merge), and L2 exits are decided
//! by [`nf_silicon::vmx_exit_for`] against that same VMCS. Every exit
//! goes to L1 — there is no "handled by L0" arm because there is no L0.
//!
//! Two modeling decisions keep the reference comparable to the backends:
//!
//! - **Capability surface.** The golden model exposes exactly the
//!   capabilities the backend configuration exposes (the sanitized
//!   feature set). A configuration that hides VMX/SVM hides it here
//!   too; otherwise every non-nested config would trivially diverge.
//! - **No policy, no bugs.** Where backends add policy on top of the
//!   architecture (KVM's activity-state refusal, VirtualBox's lenient
//!   `vmxoff`), the golden model follows the SDM/APM via the shared
//!   `nf_silicon` checks. Those deliberate policy deltas are what the
//!   conformance allowlist documents.

use std::collections::BTreeMap;

use nf_coverage::{BlockId, CovMap, ExecTrace, FileId};
use nf_silicon::vmentry::EntryFailure;
use nf_silicon::{
    check_vmrun, launch_state_check, svm_exit_for, vmclear_check, vmptrld_check, vmread_check,
    vmwrite_check, vmx_exit_for, vmxon_check, GuestInstr, VmInstrError,
};
use nf_vmx::{ExitReason, MsrArea, SvmExitCode, Vmcb, Vmcs, VmcsField, VmcsState, VmxCapabilities};
use nf_x86::{CpuFeature, CpuVendor, Cr0, Cr4, Efer, Msr};

use std::sync::Arc;

use crate::api::{
    GuestObservation, HvConfig, HvSnapshot, IoctlOp, L0Hypervisor, L1Result, L2Result,
};
use crate::fault::{RestoreFault, SharedFaults};
use crate::restore_fields;
use crate::sanitizer::HostHealth;
use crate::store::{
    digest_msr_area, digest_vmcb, digest_vmcs, msr_area_bytes, share_map, vmcb_bytes, vmcs_bytes,
    SnapshotStore,
};

crate::hv_blocks! {
    /// Instrumented blocks of the golden model. Coverage here is not a
    /// fuzzing signal (the reference is not under test); the blocks
    /// exist so the golden model satisfies the same instrumentation
    /// contract as every other backend.
    pub enum GBlk {
        Vmxon = 8,
        Vmxoff = 4,
        Vmclear = 6,
        Vmptrld = 8,
        VmreadVmwrite = 6,
        EntryChecks = 18,
        EntryOk = 4,
        EntryFail = 6,
        VmxExit = 10,
        Vmrun = 12,
        SvmExit = 8,
        Passthrough = 4,
    }
}

/// The mutable-state image of a [`SiliconGolden`] instance (see
/// [`crate::HvSnapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenSnapshot {
    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,
    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Arc<Vmcs>>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, Arc<MsrArea>>,
    in_l2: bool,
    l2_runnable: bool,
    vmcb12_mem: BTreeMap<u64, Arc<Vmcb>>,
    current_vmcb: Option<u64>,
    health: HostHealth,
}

impl GoldenSnapshot {
    /// Interns every `Arc`-held component into `store`, canonicalizing
    /// the handles; returns the bytes newly resident.
    pub(crate) fn intern_into(&mut self, store: &mut SnapshotStore) -> usize {
        let mut new = 0;
        for v in self.vmcs12_mem.values_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        for a in self.msr_area_mem.values_mut() {
            let d = digest_msr_area(a);
            let bytes = msr_area_bytes(a);
            new += store.msr.intern(a, d, bytes);
        }
        for b in self.vmcb12_mem.values_mut() {
            let d = digest_vmcb(b);
            new += store.vmcb.intern(b, d, vmcb_bytes());
        }
        new
    }

    /// Releases every `Arc`-held component from `store`; returns the
    /// bytes freed.
    pub(crate) fn release_from(&self, store: &mut SnapshotStore) -> usize {
        let mut freed = 0;
        for v in self.vmcs12_mem.values() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        for a in self.msr_area_mem.values() {
            freed += store.msr.release(a, digest_msr_area(a));
        }
        for b in self.vmcb12_mem.values() {
            freed += store.vmcb.release(b, digest_vmcb(b));
        }
        freed
    }

    /// Heap footprint of the heavy components as if each were owned
    /// outright (the deep-copy baseline's budget accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.vmcs12_mem.len() * vmcs_bytes()
            + self
                .msr_area_mem
                .values()
                .map(|a| msr_area_bytes(a))
                .sum::<usize>()
            + self.vmcb12_mem.len() * vmcb_bytes()
    }
}

/// The bare-metal reference backend (see the module docs).
pub struct SiliconGolden {
    config: HvConfig,
    caps: VmxCapabilities,

    map: CovMap,
    file: FileId,
    blocks: Vec<BlockId>,
    trace: ExecTrace,
    health: HostHealth,

    // --- L1 vCPU state.
    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,

    // --- VMX state: the VMCS12 the scenario builds is the live VMCS.
    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Vmcs>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, MsrArea>,
    in_l2: bool,
    l2_runnable: bool,

    // --- SVM state.
    vmcb12_mem: BTreeMap<u64, Vmcb>,
    current_vmcb: Option<u64>,

    // Instrumentation, not VM state: excluded from snapshots.
    faults: Option<SharedFaults>,
}

impl SiliconGolden {
    /// Boots the golden reference with `config`.
    pub fn new(config: HvConfig) -> Self {
        let mut map = CovMap::new();
        let file = map.add_file("nf-silicon/golden-model");
        let blocks = GBlk::register(&mut map, file);
        let exposed = config.features.sanitized(config.vendor);
        SiliconGolden {
            caps: VmxCapabilities::from_features(exposed),
            map,
            file,
            blocks,
            trace: ExecTrace::new(),
            health: HostHealth::new(),
            l1_cr0: Cr0::PE | Cr0::PG | Cr0::NE,
            l1_cr4: Cr4::PAE,
            l1_efer: Efer::LME | Efer::LMA,
            vmxon_region: None,
            vmcs12_mem: BTreeMap::new(),
            current_vmptr: None,
            msr_area_mem: BTreeMap::new(),
            in_l2: false,
            l2_runnable: false,
            vmcb12_mem: BTreeMap::new(),
            current_vmcb: None,
            faults: None,
            config,
        }
    }

    fn cov(&mut self, b: GBlk) {
        self.trace.hit(self.blocks[b.idx()]);
    }

    /// Whether hardware virtualization is visible to the scenario at
    /// all, mirroring the backends' `nested` gate (module docs).
    fn virt_exposed(&self) -> bool {
        self.config.nested
            && match self.config.vendor {
                CpuVendor::Intel => self.config.features.contains(CpuFeature::Vmx),
                CpuVendor::Amd => self.config.features.contains(CpuFeature::Svm),
            }
    }

    /// Capability-MSR reads, answered from the same exposed surface the
    /// backends advertise (`nested_vmx_msr_read` analog).
    fn capability_msr_read(&mut self, index: u32) -> L1Result {
        self.cov(GBlk::Passthrough);
        let caps = &self.caps;
        let value = match index {
            x if x == Msr::VmxBasic.index() => caps.revision_id as u64,
            x if x == Msr::VmxPinbasedCtls.index() || x == Msr::VmxTruePinbasedCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::PinBased);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxProcbasedCtls.index() || x == Msr::VmxTrueProcbasedCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::ProcBased);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxProcbasedCtls2.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::ProcBased2);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxExitCtls.index() || x == Msr::VmxTrueExitCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::Exit);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxEntryCtls.index() || x == Msr::VmxTrueEntryCtls.index() => {
                let (a0, a1) = caps.allowed(nf_vmx::CtrlKind::Entry);
                (a0 as u64) | ((a1 as u64) << 32)
            }
            x if x == Msr::VmxCr0Fixed0.index() => caps.cr0_fixed0(false),
            x if x == Msr::VmxCr0Fixed1.index() => caps.cr0_fixed1(),
            x if x == Msr::VmxCr4Fixed0.index() => caps.cr4_fixed0(),
            x if x == Msr::VmxCr4Fixed1.index() => caps.cr4_fixed1(),
            _ => 0,
        };
        L1Result::Ok(value)
    }

    /// The hardware delivers a VM-entry-failure exit (SDM 26.8): the
    /// exit reason lands in the (live) VMCS and control returns to L1.
    fn entry_fail(&mut self, ptr: u64, reason: ExitReason) -> L1Result {
        self.cov(GBlk::EntryFail);
        let encoded = reason.encode(true);
        let vmcs = self.vmcs12_mem.get_mut(&ptr).expect("current vmcs staged");
        vmcs.write(VmcsField::VmExitReason, encoded as u64);
        vmcs.write(VmcsField::ExitQualification, 0);
        L1Result::L2EntryFailed { reason: encoded }
    }

    /// `vmlaunch`/`vmresume` straight on the scenario's VMCS — the whole
    /// point of the golden model: no merge, no policy, just the
    /// architectural checks in SDM order.
    fn vmx_enter(&mut self, launch: bool) -> L1Result {
        self.cov(GBlk::EntryChecks);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        let Some(ptr) = self.current_vmptr else {
            return L1Result::VmFail(VmInstrError::FailInvalid);
        };
        let vmcs12 = self.vmcs12_mem[&ptr].clone();
        if let Err(e) = launch_state_check(vmcs12.state, !launch) {
            return L1Result::VmFail(e);
        }
        let count = vmcs12.read(VmcsField::VmEntryMsrLoadCount) as usize;
        let mut area = MsrArea::new();
        if count > 0 {
            let addr = vmcs12.read(VmcsField::VmEntryMsrLoadAddr);
            area = self.msr_area_mem.get(&addr).cloned().unwrap_or_default();
            area.entries.truncate(count);
        }
        match nf_silicon::try_vmentry(&vmcs12, &self.caps.clone(), &area) {
            Ok(outcome) => {
                self.cov(GBlk::EntryOk);
                self.in_l2 = true;
                self.l2_runnable = outcome.runnable;
                self.vmcs12_mem.get_mut(&ptr).expect("staged").state = VmcsState::Launched;
                L1Result::L2Entered {
                    runnable: outcome.runnable,
                }
            }
            Err(EntryFailure::InvalidControls(_)) => {
                L1Result::VmFail(VmInstrError::EntryInvalidControls)
            }
            Err(EntryFailure::InvalidHostState(_)) => {
                L1Result::VmFail(VmInstrError::EntryInvalidHostState)
            }
            Err(EntryFailure::InvalidGuestState(_)) => {
                self.entry_fail(ptr, ExitReason::EntryFailGuestState)
            }
            Err(EntryFailure::MsrLoad(..)) => self.entry_fail(ptr, ExitReason::EntryFailMsrLoad),
        }
    }

    fn l2_exec_vmx(&mut self, instr: GuestInstr) -> L2Result {
        let ptr = self.current_vmptr.expect("in_l2 implies current vmcs");
        let Some(reason) = vmx_exit_for(instr, &self.vmcs12_mem[&ptr]) else {
            return L2Result::NoExit;
        };
        self.cov(GBlk::VmxExit);
        // The exit writes straight into the live VMCS and control
        // returns to L1 — the guest fields are already there.
        let encoded = reason.encode(false);
        let vmcs = self.vmcs12_mem.get_mut(&ptr).expect("staged");
        vmcs.write(VmcsField::VmExitReason, encoded as u64);
        vmcs.write(VmcsField::ExitQualification, 0);
        self.in_l2 = false;
        L2Result::ReflectedToL1(encoded)
    }

    /// `vmrun` straight on the scenario's VMCB (APM 15.5 checks only).
    fn svm_enter(&mut self, addr: u64) -> L1Result {
        self.cov(GBlk::Vmrun);
        if !self.virt_exposed() || self.l1_efer & Efer::SVME == 0 {
            return L1Result::Fault("#UD");
        }
        let Some(vmcb12) = self.vmcb12_mem.get(&addr).copied() else {
            return L1Result::Fault("#GP");
        };
        self.current_vmcb = Some(addr);
        match check_vmrun(&vmcb12, true) {
            Ok(outcome) => {
                self.cov(GBlk::EntryOk);
                self.in_l2 = true;
                self.l2_runnable = outcome.runnable;
                L1Result::L2Entered {
                    runnable: outcome.runnable,
                }
            }
            Err(_) => {
                self.cov(GBlk::EntryFail);
                let vmcb = self.vmcb12_mem.get_mut(&addr).expect("staged");
                vmcb.control.exitcode = SvmExitCode::Invalid as u32 as u64;
                L1Result::L2EntryFailed {
                    reason: SvmExitCode::Invalid as u32,
                }
            }
        }
    }

    fn l2_exec_svm(&mut self, instr: GuestInstr) -> L2Result {
        let addr = self.current_vmcb.expect("in_l2 implies current vmcb");
        let vmcb12 = self.vmcb12_mem[&addr];
        let Some(code) = svm_exit_for(instr, &vmcb12) else {
            return L2Result::NoExit;
        };
        self.cov(GBlk::SvmExit);
        let vmcb = self.vmcb12_mem.get_mut(&addr).expect("staged");
        vmcb.control.exitcode = code as u32 as u64;
        self.in_l2 = false;
        L2Result::ReflectedToL1(code as u32)
    }
}

impl L0Hypervisor for SiliconGolden {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn vendor(&self) -> CpuVendor {
        self.config.vendor
    }

    fn config(&self) -> &HvConfig {
        &self.config
    }

    fn reset_guest(&mut self) {
        self.l1_cr0 = Cr0::PE | Cr0::PG | Cr0::NE;
        self.l1_cr4 = Cr4::PAE;
        self.l1_efer = Efer::LME | Efer::LMA;
        self.vmxon_region = None;
        self.vmcs12_mem.clear();
        self.current_vmptr = None;
        self.msr_area_mem.clear();
        self.in_l2 = false;
        self.l2_runnable = false;
        self.vmcb12_mem.clear();
        self.current_vmcb = None;
    }

    fn reboot_host(&mut self) {
        self.reset_guest();
        self.health = HostHealth::new();
    }

    fn snapshot(&self) -> HvSnapshot {
        HvSnapshot::Golden(GoldenSnapshot {
            l1_cr0: self.l1_cr0,
            l1_cr4: self.l1_cr4,
            l1_efer: self.l1_efer,
            vmxon_region: self.vmxon_region,
            vmcs12_mem: share_map(&self.vmcs12_mem),
            current_vmptr: self.current_vmptr,
            msr_area_mem: share_map(&self.msr_area_mem),
            in_l2: self.in_l2,
            l2_runnable: self.l2_runnable,
            vmcb12_mem: share_map(&self.vmcb12_mem),
            current_vmcb: self.current_vmcb,
            health: self.health.clone(),
        })
    }

    fn restore(&mut self, snap: &HvSnapshot) {
        let HvSnapshot::Golden(s) = snap else {
            panic!("golden cannot restore a {} snapshot", snap.backend());
        };
        restore_fields!(copy: self, s, [
            l1_cr0, l1_cr4, l1_efer, vmxon_region, current_vmptr,
            in_l2, l2_runnable, current_vmcb,
        ]);
        restore_fields!(clone: self, s, [health]);
        restore_fields!(shared: self, s, [vmcs12_mem, msr_area_mem, vmcb12_mem]);
    }

    fn install_faults(&mut self, faults: SharedFaults) {
        self.faults = Some(faults);
    }

    fn try_restore(&mut self, snap: &HvSnapshot) -> Result<(), RestoreFault> {
        if let Some(f) = &self.faults {
            f.borrow_mut().check_restore()?;
        }
        self.restore(snap);
        Ok(())
    }

    fn l1_exec(&mut self, instr: GuestInstr) -> L1Result {
        if self.health.dead {
            return L1Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L1Result::HostDead;
        }
        use GuestInstr::*;
        match (self.config.vendor, instr) {
            // --- Intel VMX, straight from the SDM.
            (CpuVendor::Intel, Vmxon(addr)) => {
                self.cov(GBlk::Vmxon);
                if !self.virt_exposed() || self.l1_cr4 & Cr4::VMXE == 0 {
                    return L1Result::Fault("#UD");
                }
                if vmxon_check(
                    Cr0::new(self.l1_cr0),
                    Cr4::new(self.l1_cr4),
                    Efer::new(self.l1_efer),
                    addr,
                )
                .is_err()
                {
                    if !nf_x86::addr::page_aligned(addr) || !nf_x86::addr::phys_in_width(addr) {
                        return L1Result::VmFail(VmInstrError::FailInvalid);
                    }
                    return L1Result::Fault("#GP");
                }
                self.vmxon_region = Some(addr);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmxoff) => {
                self.cov(GBlk::Vmxoff);
                if self.vmxon_region.is_none() {
                    return L1Result::Fault("#UD");
                }
                self.vmxon_region = None;
                self.current_vmptr = None;
                self.in_l2 = false;
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmclear(addr)) => {
                self.cov(GBlk::Vmclear);
                let Some(vmxon) = self.vmxon_region else {
                    return L1Result::Fault("#UD");
                };
                if let Err(e) = vmclear_check(addr, vmxon) {
                    return L1Result::VmFail(e);
                }
                let revision = self.caps.revision_id;
                let vmcs = self.vmcs12_mem.entry(addr).or_insert_with(|| {
                    let mut v = Vmcs::new();
                    v.revision_id = revision;
                    v
                });
                vmcs.state = VmcsState::Clear;
                if self.current_vmptr == Some(addr) {
                    self.current_vmptr = None;
                }
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmptrld(addr)) => {
                self.cov(GBlk::Vmptrld);
                let Some(vmxon) = self.vmxon_region else {
                    return L1Result::Fault("#UD");
                };
                let revision = self.caps.revision_id;
                let region_rev = self
                    .vmcs12_mem
                    .get(&addr)
                    .map(|v| v.revision_id)
                    .unwrap_or(revision);
                if let Err(e) = vmptrld_check(addr, vmxon, region_rev, revision) {
                    return L1Result::VmFail(e);
                }
                self.vmcs12_mem.entry(addr).or_insert_with(|| {
                    let mut v = Vmcs::new();
                    v.revision_id = revision;
                    v
                });
                self.current_vmptr = Some(addr);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmptrst) => {
                self.cov(GBlk::Passthrough);
                L1Result::Ok(self.current_vmptr.unwrap_or(u64::MAX))
            }
            (CpuVendor::Intel, Vmread(enc)) => {
                self.cov(GBlk::VmreadVmwrite);
                let Some(ptr) = self.current_vmptr else {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                };
                match vmread_check(enc) {
                    Err(e) => L1Result::VmFail(e),
                    Ok(field) => L1Result::Ok(self.vmcs12_mem[&ptr].read(field)),
                }
            }
            (CpuVendor::Intel, Vmwrite(enc, val)) => {
                self.cov(GBlk::VmreadVmwrite);
                let Some(ptr) = self.current_vmptr else {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                };
                match vmwrite_check(enc) {
                    Err(e) => L1Result::VmFail(e),
                    Ok(field) => {
                        self.vmcs12_mem
                            .get_mut(&ptr)
                            .expect("current vmcs staged")
                            .write(field, val);
                        L1Result::Ok(0)
                    }
                }
            }
            (CpuVendor::Intel, Vmlaunch) => self.vmx_enter(true),
            (CpuVendor::Intel, Vmresume) => self.vmx_enter(false),
            (CpuVendor::Intel, Vmcall) => {
                self.cov(GBlk::Passthrough);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Invept(t)) => {
                self.cov(GBlk::Passthrough);
                if self.vmxon_region.is_none() {
                    return L1Result::Fault("#UD");
                }
                if !(1..=2).contains(&t) {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                }
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Invvpid(t)) => {
                self.cov(GBlk::Passthrough);
                if self.vmxon_region.is_none() {
                    return L1Result::Fault("#UD");
                }
                if t > 3 {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                }
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Rdmsr(idx))
                if (Msr::VmxBasic.index()..=Msr::VmxVmfunc.index()).contains(&idx) =>
            {
                self.capability_msr_read(idx)
            }
            (CpuVendor::Intel, Wrmsr(idx, _))
                if (Msr::VmxBasic.index()..=Msr::VmxVmfunc.index()).contains(&idx) =>
            {
                L1Result::Fault("#GP")
            }
            (CpuVendor::Intel, Vmrun(_) | Vmload(_) | Vmsave(_) | Stgi | Clgi | Skinit) => {
                L1Result::Fault("#UD")
            }

            // --- AMD SVM, straight from the APM.
            (CpuVendor::Amd, Vmrun(addr)) => self.svm_enter(addr),
            (CpuVendor::Amd, Vmload(addr) | Vmsave(addr)) => {
                self.cov(GBlk::Passthrough);
                if self.l1_efer & Efer::SVME == 0 {
                    return L1Result::Fault("#UD");
                }
                if !self.vmcb12_mem.contains_key(&addr) {
                    return L1Result::Fault("#GP");
                }
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Stgi | Clgi | Vmmcall) => {
                self.cov(GBlk::Passthrough);
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Skinit) => L1Result::Fault("#UD"),
            (
                CpuVendor::Amd,
                Vmxon(_) | Vmxoff | Vmclear(_) | Vmptrld(_) | Vmptrst | Vmread(_) | Vmwrite(..)
                | Vmlaunch | Vmresume | Invept(_) | Invvpid(_),
            ) => L1Result::Fault("#UD"),

            // --- Vendor-neutral L1 state updates.
            (_, MovToCr(nf_silicon::CrIndex::Cr0, v)) => {
                self.l1_cr0 = v;
                L1Result::Ok(0)
            }
            (_, MovToCr(nf_silicon::CrIndex::Cr4, v)) => {
                self.l1_cr4 = v;
                L1Result::Ok(0)
            }
            (_, MovFromCr(nf_silicon::CrIndex::Cr0)) => L1Result::Ok(self.l1_cr0),
            (_, MovFromCr(nf_silicon::CrIndex::Cr4)) => L1Result::Ok(self.l1_cr4),
            (_, Wrmsr(idx, v)) if idx == Msr::Efer.index() => {
                if Efer::new(v).check_reserved().is_err() {
                    return L1Result::Fault("#GP");
                }
                self.l1_efer = v;
                L1Result::Ok(0)
            }
            (_, Rdmsr(idx)) if idx == Msr::Efer.index() => L1Result::Ok(self.l1_efer),
            _ => L1Result::Ok(0),
        }
    }

    fn l1_stage_vmcs_region(&mut self, addr: u64, revision: u32) {
        let vmcs = self.vmcs12_mem.entry(addr).or_default();
        vmcs.revision_id = revision;
    }

    fn l1_stage_vmcb(&mut self, addr: u64, vmcb: Vmcb) {
        self.vmcb12_mem.insert(addr, vmcb);
    }

    fn l1_stage_msr_area(&mut self, addr: u64, area: MsrArea) {
        self.msr_area_mem.insert(addr, area);
    }

    fn l2_exec(&mut self, instr: GuestInstr) -> L2Result {
        if self.health.dead {
            return L2Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L2Result::HostDead;
        }
        if !self.in_l2 {
            return L2Result::NoGuest;
        }
        match self.config.vendor {
            CpuVendor::Intel => self.l2_exec_vmx(instr),
            CpuVendor::Amd => self.l2_exec_svm(instr),
        }
    }

    fn host_ioctl(&mut self, _op: IoctlOp) {
        // Bare metal has no host-side ioctl surface.
    }

    fn observe_guest(&self) -> GuestObservation {
        match self.config.vendor {
            CpuVendor::Intel => GuestObservation {
                cr0: self.l1_cr0,
                cr4: self.l1_cr4,
                efer: self.l1_efer,
                vmx_on: self.vmxon_region.is_some(),
                current_vmptr: self.current_vmptr.unwrap_or(u64::MAX),
                in_l2: self.in_l2,
                vmcs12_digest: self
                    .current_vmptr
                    .map(|p| GuestObservation::digest_vmcs(&self.vmcs12_mem[&p]))
                    .unwrap_or(0),
            },
            CpuVendor::Amd => GuestObservation {
                cr0: self.l1_cr0,
                cr4: self.l1_cr4,
                efer: self.l1_efer,
                vmx_on: false,
                current_vmptr: self.current_vmcb.unwrap_or(u64::MAX),
                in_l2: self.in_l2,
                vmcs12_digest: self
                    .current_vmcb
                    .map(|a| GuestObservation::digest_vmcb(&self.vmcb12_mem[&a]))
                    .unwrap_or(0),
            },
        }
    }

    fn coverage_map(&self) -> &CovMap {
        &self.map
    }

    fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    fn swap_trace(&mut self, trace: &mut ExecTrace) {
        std::mem::swap(&mut self.trace, trace);
    }

    fn intel_file(&self) -> FileId {
        self.file
    }

    fn amd_file(&self) -> Option<FileId> {
        None
    }

    fn health(&self) -> &HostHealth {
        &self.health
    }

    fn health_mut(&mut self) -> &mut HostHealth {
        &mut self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_silicon::golden_vmcs;

    fn intel_golden() -> SiliconGolden {
        SiliconGolden::new(HvConfig::default_for(CpuVendor::Intel))
    }

    fn boot_to_l2(g: &mut SiliconGolden) -> L1Result {
        g.l1_cr4 |= Cr4::VMXE;
        assert_eq!(g.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
        assert_eq!(g.l1_exec(GuestInstr::Vmclear(0x2000)), L1Result::Ok(0));
        g.l1_stage_vmcs_region(0x2000, g.caps.revision_id);
        assert_eq!(g.l1_exec(GuestInstr::Vmptrld(0x2000)), L1Result::Ok(0));
        let golden = golden_vmcs(&g.caps);
        for &f in VmcsField::ALL {
            if f.writable() {
                let r = g.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
                assert_eq!(r, L1Result::Ok(0), "{}", f.name());
            }
        }
        g.l1_exec(GuestInstr::Vmlaunch)
    }

    #[test]
    fn golden_vmcs_enters_l2_directly() {
        let mut g = intel_golden();
        match boot_to_l2(&mut g) {
            L1Result::L2Entered { runnable } => assert!(runnable),
            other => panic!("expected direct entry, got {other:?}"),
        }
        assert!(g.in_l2);
    }

    #[test]
    fn every_exit_reaches_l1() {
        // HLT exits (HLT_EXITING is in the golden template) and there is
        // no L0 to swallow it: the exit always reaches L1.
        let mut g = intel_golden();
        assert!(matches!(boot_to_l2(&mut g), L1Result::L2Entered { .. }));
        match g.l2_exec(GuestInstr::Hlt) {
            L2Result::ReflectedToL1(r) => {
                assert_eq!(r, ExitReason::Hlt.encode(false));
            }
            other => panic!("expected an exit to L1, got {other:?}"),
        }
        assert!(!g.in_l2);
        // The exit reason is architecturally visible in the live VMCS.
        assert_eq!(
            g.l1_exec(GuestInstr::Vmread(VmcsField::VmExitReason.encoding())),
            L1Result::Ok(ExitReason::Hlt.encode(false) as u64)
        );
    }

    #[test]
    fn activity_state_follows_the_sdm_not_kvm_policy() {
        // Activity 3 (wait-for-SIPI) is architecturally valid: the golden
        // model enters (not runnable) where KVM's policy refuses.
        let mut g = intel_golden();
        g.l1_cr4 |= Cr4::VMXE;
        assert_eq!(g.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
        assert_eq!(g.l1_exec(GuestInstr::Vmclear(0x2000)), L1Result::Ok(0));
        g.l1_stage_vmcs_region(0x2000, g.caps.revision_id);
        assert_eq!(g.l1_exec(GuestInstr::Vmptrld(0x2000)), L1Result::Ok(0));
        let mut golden = golden_vmcs(&g.caps);
        golden.write(VmcsField::GuestActivityState, 3);
        for &f in VmcsField::ALL {
            if f.writable() {
                g.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
            }
        }
        match g.l1_exec(GuestInstr::Vmlaunch) {
            L1Result::L2Entered { runnable } => assert!(!runnable),
            other => panic!("expected entry per SDM, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let mut g = intel_golden();
        let boot = g.snapshot();
        assert!(matches!(boot_to_l2(&mut g), L1Result::L2Entered { .. }));
        let dirty = g.snapshot();
        assert_ne!(boot, dirty);
        g.restore(&boot);
        assert_eq!(g.snapshot(), boot);
        g.restore(&dirty);
        assert_eq!(g.snapshot(), dirty);
    }

    #[test]
    fn svm_golden_vmcb_enters() {
        let mut g = SiliconGolden::new(HvConfig::default_for(CpuVendor::Amd));
        g.l1_efer |= Efer::SVME;
        g.l1_stage_vmcb(0x5000, nf_silicon::golden_vmcb());
        match g.l1_exec(GuestInstr::Vmrun(0x5000)) {
            L1Result::L2Entered { runnable } => assert!(runnable),
            other => panic!("expected vmrun entry, got {other:?}"),
        }
        match g.l2_exec(GuestInstr::Hlt) {
            L2Result::ReflectedToL1(code) => {
                assert_eq!(code, SvmExitCode::Hlt as u32);
            }
            other => panic!("expected #VMEXIT, got {other:?}"),
        }
    }

    #[test]
    fn observation_tracks_vmx_state() {
        let mut g = intel_golden();
        let before = g.observe_guest();
        assert!(!before.vmx_on);
        assert_eq!(before.current_vmptr, u64::MAX);
        assert_eq!(before.vmcs12_digest, 0);
        assert!(matches!(boot_to_l2(&mut g), L1Result::L2Entered { .. }));
        let after = g.observe_guest();
        assert!(after.vmx_on && after.in_l2);
        assert_eq!(after.current_vmptr, 0x2000);
        assert_ne!(after.vmcs12_digest, 0);
    }
}
