//! Bug-detection surface of a modeled host kernel.
//!
//! The paper's agent detects anomalies through "hypervisor-specific bug
//! detection mechanisms" (§4.5): KASAN/UBSAN sanitizer reports, kernel
//! log monitoring for assertion failures and warnings, and a hardware
//! watchdog for full-host hangs. This module is that surface.

use std::fmt;

/// Kind of anomaly a detector produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// The host kernel crashed (oops/panic/#GP in host context).
    HostCrash,
    /// The host stopped making progress; only the watchdog sees this.
    HostHang,
    /// Undefined Behaviour Sanitizer report (e.g. array index OOB).
    Ubsan,
    /// Kernel Address Sanitizer report (OOB access / use-after-free).
    Kasan,
    /// An internal assertion (`BUG()`, `ASSERT()`) fired.
    AssertFail,
    /// A kernel warning that the log monitor flags as anomalous.
    Warning,
    /// Two backends disagreed on the guest-visible outcome of the same
    /// scenario (the differential oracle's silent-misvirtualization
    /// class; no sanitizer fires for these).
    Divergence,
    /// A single execution stopped making progress (a vmexit loop that
    /// never terminates): the agent's fuel-budget exec watchdog
    /// classified it. Unlike [`CrashKind::HostHang`] the host itself is
    /// fine once the runaway exec is torn down.
    HungExec,
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrashKind::HostCrash => "host crash",
            CrashKind::HostHang => "host hang",
            CrashKind::Ubsan => "UBSAN",
            CrashKind::Kasan => "KASAN",
            CrashKind::AssertFail => "assertion failure",
            CrashKind::Warning => "kernel warning",
            CrashKind::Divergence => "divergence",
            CrashKind::HungExec => "hung exec",
        };
        f.write_str(s)
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// What detected it.
    pub kind: CrashKind,
    /// Stable identifier of the underlying bug (used to deduplicate and
    /// to match reports against the Table 6 ground truth).
    pub bug_id: &'static str,
    /// Free-form diagnostic, mirroring a dmesg excerpt.
    pub message: String,
}

/// A line in the modeled kernel log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    /// Severity (0 = emerg .. 7 = debug, Linux convention).
    pub level: u8,
    /// Message text.
    pub text: String,
}

/// The sanitizer + log + watchdog state of one host kernel instance.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HostHealth {
    /// Anomalies detected this boot, in order.
    pub reports: Vec<CrashReport>,
    /// Kernel log since boot.
    pub log: Vec<LogLine>,
    /// Set when the host can no longer run guests (crash or hang).
    pub dead: bool,
}

impl HostHealth {
    /// Creates a healthy host.
    pub fn new() -> Self {
        HostHealth::default()
    }

    /// Records a kernel log line.
    pub fn printk(&mut self, level: u8, text: impl Into<String>) {
        self.log.push(LogLine {
            level,
            text: text.into(),
        });
    }

    /// UBSAN: array-index-out-of-bounds check. Returns `true` (and files
    /// a report) when `index >= len` — the detector that caught
    /// CVE-2023-30456.
    pub fn ubsan_index(&mut self, bug_id: &'static str, index: usize, len: usize) -> bool {
        if index < len {
            return false;
        }
        let message = format!(
            "UBSAN: array-index-out-of-bounds: index {index} is out of range for length {len}"
        );
        self.printk(2, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::Ubsan,
            bug_id,
            message,
        });
        true
    }

    /// KASAN: flags an out-of-bounds byte access.
    pub fn kasan_oob(&mut self, bug_id: &'static str, addr: u64, size: usize) {
        let message = format!("KASAN: slab-out-of-bounds write of size {size} at {addr:#x}");
        self.printk(2, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::Kasan,
            bug_id,
            message,
        });
    }

    /// `BUG_ON`/`ASSERT`-style check: files a report when `cond` is false.
    /// Returns `true` when the assertion failed.
    pub fn assert_that(&mut self, bug_id: &'static str, cond: bool, what: &str) -> bool {
        if cond {
            return false;
        }
        let message = format!("Assertion '{what}' failed");
        self.printk(1, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::AssertFail,
            bug_id,
            message,
        });
        true
    }

    /// The host took an unrecoverable fault (e.g. #GP on a non-canonical
    /// MSR value in host context).
    pub fn host_crash(&mut self, bug_id: &'static str, message: impl Into<String>) {
        let message = message.into();
        self.printk(0, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::HostCrash,
            bug_id,
            message,
        });
        self.dead = true;
    }

    /// The watchdog declared the host hung (paper §3.2: hardware watchdog
    /// plus an in-hypervisor agent).
    pub fn watchdog_hang(&mut self, bug_id: &'static str, message: impl Into<String>) {
        let message = message.into();
        self.printk(0, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::HostHang,
            bug_id,
            message,
        });
        self.dead = true;
    }

    /// The exec watchdog's fuel budget ran out: the current execution
    /// is classified as hung and the host is power-cycled to tear the
    /// runaway exec down (the host comes back healthy — the *input* is
    /// the finding, deduped and minimized like a crash).
    pub fn hung_exec(&mut self, bug_id: &'static str, message: impl Into<String>) {
        let message = message.into();
        self.printk(0, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::HungExec,
            bug_id,
            message,
        });
        self.dead = true;
    }

    /// A WARN-level anomaly the log monitor picks up.
    pub fn warn_anomaly(&mut self, bug_id: &'static str, message: impl Into<String>) {
        let message = message.into();
        self.printk(4, message.clone());
        self.reports.push(CrashReport {
            kind: CrashKind::Warning,
            bug_id,
            message,
        });
    }

    /// Returns `true` if any anomaly has been detected.
    pub fn anomalous(&self) -> bool {
        !self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubsan_fires_only_out_of_range() {
        let mut h = HostHealth::new();
        assert!(!h.ubsan_index("bug-x", 3, 4));
        assert!(!h.anomalous());
        assert!(h.ubsan_index("bug-x", 4, 4));
        assert!(h.anomalous());
        assert_eq!(h.reports[0].kind, CrashKind::Ubsan);
        assert!(!h.dead, "UBSAN reports do not kill the host");
    }

    #[test]
    fn assertions_and_crashes() {
        let mut h = HostHealth::new();
        assert!(!h.assert_that("bug-y", true, "vgif set"));
        assert!(h.assert_that("bug-y", false, "vgif set"));
        assert_eq!(h.reports[0].kind, CrashKind::AssertFail);

        h.host_crash("bug-z", "general protection fault");
        assert!(h.dead);
    }

    #[test]
    fn watchdog_marks_host_dead() {
        let mut h = HostHealth::new();
        h.watchdog_hang("bug-w", "no forward progress");
        assert!(h.dead);
        assert_eq!(h.reports[0].kind, CrashKind::HostHang);
    }

    #[test]
    fn log_accumulates() {
        let mut h = HostHealth::new();
        h.printk(6, "kvm: nested vmxon");
        h.kasan_oob("bug-k", 0xdead, 8);
        assert_eq!(h.log.len(), 2);
        assert_eq!(h.reports.len(), 1);
    }
}
