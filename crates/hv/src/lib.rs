//! The L0 hypervisors under test.
//!
//! NecoFuzz is evaluated against KVM, Xen, and VirtualBox (paper §5).
//! This crate provides faithful *models* of the three: from-scratch L0
//! hypervisors with full nested-virtualization emulation running on the
//! `nf-silicon` CPU model, instrumented with kcov-style line coverage
//! restricted to their nested-virtualization source files, and seeded
//! with the six vulnerabilities of Table 6 (each individually togglable
//! so regression tests can verify both the vulnerable and fixed
//! behaviour).
//!
//! | Model | Stands in for | Nested files |
//! |---|---|---|
//! | [`Vkvm`] | KVM, Linux 6.5 | `vmx/nested.c`, `svm/nested.c` |
//! | [`Vxen`] | Xen 4.18 | `vmx/vvmx.c`, `svm/nestedsvm.c` |
//! | [`Vvbox`] | VirtualBox 7.0.12 | `VMXAllTemplate.cpp` (nested part) |

pub mod api;
pub mod fault;
pub mod golden;
pub mod sanitizer;
pub mod store;
pub mod vkvm;
pub mod vvbox;
pub mod vxen;

pub use api::{GuestObservation, HvConfig, HvSnapshot, IoctlOp, L0Hypervisor, L1Result, L2Result};
pub use fault::{FaultInjector, FaultPlan, RestoreFault, SharedFaults, DEFAULT_WATCHDOG_FUEL};
pub use golden::{GoldenSnapshot, SiliconGolden};
pub use sanitizer::{CrashKind, CrashReport, HostHealth, LogLine};
pub use store::{Digest128, InternStore, SharedRestore, SnapshotStore};
pub use vkvm::{Vkvm, VkvmSnapshot};
pub use vvbox::{Vvbox, VvboxSnapshot};
pub use vxen::{Vxen, VxenSnapshot};

/// Delta restore of snapshot fields: each field is copied back only
/// when it differs from the captured value, so restoring onto a mostly
/// clean instance does no allocation or deep copying.
///
/// `copy:` fields are plain-`Copy` scalars; `clone:` fields own heap
/// state (maps, vectors, health) and are cloned only when dirtied;
/// `shared:` fields hold `Arc`-interned blobs on the snapshot side
/// (see [`store::SharedRestore`]) and delta-restore per entry, so a
/// boundary that touched one VMCS clones one VMCS, not the whole map.
macro_rules! restore_fields {
    (copy: $hv:expr, $snap:expr, [$($f:ident),* $(,)?]) => {
        $( if $hv.$f != $snap.$f { $hv.$f = $snap.$f; } )*
    };
    (clone: $hv:expr, $snap:expr, [$($f:ident),* $(,)?]) => {
        $( if $hv.$f != $snap.$f { $hv.$f = $snap.$f.clone(); } )*
    };
    (shared: $hv:expr, $snap:expr, [$($f:ident),* $(,)?]) => {
        $( $crate::store::SharedRestore::restore_from(&mut $hv.$f, &$snap.$f); )*
    };
}
pub(crate) use restore_fields;

/// Declares an instrumented-block enum: each variant is one basic block
/// of hypervisor code with a static source-line span.
///
/// The generated type offers [`ALL`](#), `idx`, `name`, `total_lines`,
/// and `register` (which adds every block to a [`nf_coverage::CovMap`]
/// in declaration order, returning the assigned ids).
#[macro_export]
macro_rules! hv_blocks {
    ($(#[$meta:meta])* $vis:vis enum $name:ident { $($blk:ident = $lines:expr,)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(missing_docs)]
        $vis enum $name { $($blk),+ }

        impl $name {
            /// Every block with its line span, in declaration order.
            $vis const ALL: &'static [($name, u32)] = &[$(($name::$blk, $lines)),+];

            /// Dense index of the block.
            $vis const fn idx(self) -> usize {
                self as usize
            }

            /// Block label, used in coverage reports.
            $vis const fn name(self) -> &'static str {
                match self { $($name::$blk => stringify!($blk)),+ }
            }

            /// Sum of the line spans of all blocks.
            $vis const fn total_lines() -> u32 {
                let mut total = 0;
                let mut i = 0;
                while i < Self::ALL.len() {
                    total += Self::ALL[i].1;
                    i += 1;
                }
                total
            }

            /// Registers every block into `map` under `file`; the result
            /// is indexed by [`Self::idx`].
            $vis fn register(
                map: &mut nf_coverage::CovMap,
                file: nf_coverage::FileId,
            ) -> Vec<nf_coverage::BlockId> {
                Self::ALL.iter().map(|(b, l)| map.add_block(file, *l, b.name())).collect()
            }
        }
    };
}
