//! vxen — the Xen 4.18 model.
//!
//! Xen's nested virtualization (`vvmx.c` / `nestedsvm.c`) differs from
//! KVM's in the failure modes the paper found (Table 6 rows 4–6), all
//! seeded here:
//!
//! - **Activity-state pass-through** (Intel, fixed by citation \[11\]): vxen copies
//!   the VMCS12 activity state into VMCS02 without sanitizing it. A
//!   WAIT-FOR-SIPI guest enters and never runs; the host spins waiting
//!   for an exit and the watchdog declares the whole machine hung.
//! - **`LMA && !PG` corruption** (AMD, Xen issue #216): the APM permits
//!   a VMCB with `EFER.LMA = 1` and `CR0.PG = 0`; vxen's merge assumes it
//!   cannot happen and corrupts `int_ctl`, erroneously enabling AVIC and
//!   producing an `AVIC_NOACCEL` exit that an assertion rejects.
//! - **VGIF assertion** (AMD, Xen issue #215): on a failed `vmrun`,
//!   `nsvm_vcpu_vmexit_inject()` assumes the virtual GIF is set whenever
//!   VGIF is enabled; an L1 that enables VGIF with `V_GIF = 0` and then
//!   fails a `vmrun` trips the `ASSERT(vgif)`.

mod blocks;

pub use blocks::{XABlk, XIBlk};

use std::collections::BTreeMap;

use nf_coverage::{BlockId, CovMap, ExecTrace, FileId};
use nf_silicon::vmentry::EntryFailure;
use nf_silicon::{
    check_vmrun, golden_vmcb, golden_vmcs, launch_state_check, svm_exit_for, vmclear_check,
    vmptrld_check, vmread_check, vmwrite_check, vmx_exit_for, vmxon_check, GuestInstr,
    VmInstrError,
};
use nf_vmx::controls::proc2;
use nf_vmx::vmcb::int_ctl;
use nf_vmx::{ExitReason, MsrArea, SvmExitCode, Vmcb, Vmcs, VmcsField, VmcsState, VmxCapabilities};
use nf_x86::{CpuFeature, CpuVendor, Cr0, Cr4, Efer, FeatureSet};

use std::sync::Arc;

use crate::api::{HvConfig, HvSnapshot, IoctlOp, L0Hypervisor, L1Result, L2Result};
use crate::fault::{RestoreFault, SharedFaults};
use crate::restore_fields;
use crate::sanitizer::HostHealth;
use crate::store::{
    digest_msr_area, digest_vmcb, digest_vmcs, msr_area_bytes, share_map, share_opt, vmcb_bytes,
    vmcs_bytes, SnapshotStore,
};

/// Seeded-bug switches for vxen; `false` = vulnerable (as evaluated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VxenBugs {
    /// Sanitize the VMCS12 activity state (the fix of citation \[11\]).
    pub activity_state_fixed: bool,
    /// Reject `LMA && !PG` VMCBs before merging (issue #216 fix).
    pub lma_pg_fixed: bool,
    /// Tolerate `vgif == 0` in the exit-injection path (issue #215 fix).
    pub vgif_assert_fixed: bool,
}

/// The mutable-state image of a [`Vxen`] instance (see
/// [`crate::HvSnapshot`]). Compare snapshots with `==` to assert
/// round-trip identity; the fields themselves are an internal detail.
#[derive(Debug, Clone, PartialEq)]
pub struct VxenSnapshot {
    bugs: VxenBugs,
    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,
    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Arc<Vmcs>>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, Arc<MsrArea>>,
    vmcs02: Option<Arc<Vmcs>>,
    in_l2: bool,
    avic_corrupted: bool,
    vmcb12_mem: BTreeMap<u64, Arc<Vmcb>>,
    current_vmcb: Option<u64>,
    vmcb02: Option<Vmcb>,
    health: HostHealth,
}

impl VxenSnapshot {
    /// Interns every `Arc`-held component into `store`, canonicalizing
    /// the handles; returns the bytes newly resident.
    pub(crate) fn intern_into(&mut self, store: &mut SnapshotStore) -> usize {
        let mut new = 0;
        for v in self.vmcs12_mem.values_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        for a in self.msr_area_mem.values_mut() {
            let d = digest_msr_area(a);
            let bytes = msr_area_bytes(a);
            new += store.msr.intern(a, d, bytes);
        }
        if let Some(v) = self.vmcs02.as_mut() {
            let d = digest_vmcs(v);
            new += store.vmcs.intern(v, d, vmcs_bytes());
        }
        for b in self.vmcb12_mem.values_mut() {
            let d = digest_vmcb(b);
            new += store.vmcb.intern(b, d, vmcb_bytes());
        }
        new
    }

    /// Releases every `Arc`-held component from `store`; returns the
    /// bytes freed.
    pub(crate) fn release_from(&self, store: &mut SnapshotStore) -> usize {
        let mut freed = 0;
        for v in self.vmcs12_mem.values() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        for a in self.msr_area_mem.values() {
            freed += store.msr.release(a, digest_msr_area(a));
        }
        if let Some(v) = self.vmcs02.as_ref() {
            freed += store.vmcs.release(v, digest_vmcs(v));
        }
        for b in self.vmcb12_mem.values() {
            freed += store.vmcb.release(b, digest_vmcb(b));
        }
        freed
    }

    /// Heap footprint of the heavy components as if each were owned
    /// outright (the deep-copy baseline's budget accounting).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.vmcs12_mem.len() * vmcs_bytes()
            + self
                .msr_area_mem
                .values()
                .map(|a| msr_area_bytes(a))
                .sum::<usize>()
            + self.vmcs02.as_ref().map_or(0, |_| vmcs_bytes())
            + self.vmcb12_mem.len() * vmcb_bytes()
    }
}

/// The Xen model.
pub struct Vxen {
    config: HvConfig,
    exposed_caps: VmxCapabilities,
    hw_caps: VmxCapabilities,
    /// Bug switches.
    pub bugs: VxenBugs,

    map: CovMap,
    intel_file: FileId,
    amd_file: FileId,
    ib: Vec<BlockId>,
    ab: Vec<BlockId>,
    trace: ExecTrace,
    health: HostHealth,

    l1_cr0: u64,
    l1_cr4: u64,
    l1_efer: u64,

    vmxon_region: Option<u64>,
    vmcs12_mem: BTreeMap<u64, Vmcs>,
    current_vmptr: Option<u64>,
    msr_area_mem: BTreeMap<u64, MsrArea>,
    vmcs02: Option<Vmcs>,
    in_l2: bool,
    /// Set when the merge corrupted int_ctl (bug #5): the next L2 action
    /// produces the spurious `AVIC_NOACCEL` exit.
    avic_corrupted: bool,

    vmcb12_mem: BTreeMap<u64, Vmcb>,
    current_vmcb: Option<u64>,
    vmcb02: Option<Vmcb>,

    /// Deterministic fault injection (instrumentation, not VM state:
    /// deliberately excluded from snapshots).
    faults: Option<SharedFaults>,
}

impl Vxen {
    /// Boots a vxen host with `config`.
    pub fn new(config: HvConfig) -> Self {
        let mut map = CovMap::new();
        let intel_file = map.add_file("xen/arch/x86/hvm/vmx/vvmx.c");
        let amd_file = map.add_file("xen/arch/x86/hvm/svm/nestedsvm.c");
        let ib = XIBlk::register(&mut map, intel_file);
        let ab = XABlk::register(&mut map, amd_file);
        let exposed = config.features.sanitized(config.vendor);
        Vxen {
            exposed_caps: VmxCapabilities::from_features(exposed),
            hw_caps: VmxCapabilities::from_features(FeatureSet::full(config.vendor)),
            bugs: VxenBugs::default(),
            map,
            intel_file,
            amd_file,
            ib,
            ab,
            trace: ExecTrace::new(),
            health: HostHealth::new(),
            l1_cr0: Cr0::PE | Cr0::PG | Cr0::NE,
            l1_cr4: Cr4::PAE,
            l1_efer: Efer::LME | Efer::LMA,
            vmxon_region: None,
            vmcs12_mem: BTreeMap::new(),
            current_vmptr: None,
            msr_area_mem: BTreeMap::new(),
            vmcs02: None,
            in_l2: false,
            avic_corrupted: false,
            vmcb12_mem: BTreeMap::new(),
            current_vmcb: None,
            vmcb02: None,
            config,
            faults: None,
        }
    }

    fn cov_i(&mut self, b: XIBlk) {
        self.trace.hit(self.ib[b.idx()]);
    }

    fn cov_a(&mut self, b: XABlk) {
        self.trace.hit(self.ab[b.idx()]);
    }

    fn nested_on(&self) -> bool {
        self.config.nested
            && match self.config.vendor {
                CpuVendor::Intel => self.config.features.contains(CpuFeature::Vmx),
                CpuVendor::Amd => self.config.features.contains(CpuFeature::Svm),
            }
    }

    // --- Intel (vvmx.c) -------------------------------------------------

    fn nvmx_run(&mut self, launch: bool) -> L1Result {
        self.cov_i(XIBlk::NvmxRunEntry);
        if self.vmxon_region.is_none() {
            return L1Result::Fault("#UD");
        }
        let Some(ptr) = self.current_vmptr else {
            self.cov_i(XIBlk::VmFailHelpers);
            return L1Result::VmFail(VmInstrError::FailInvalid);
        };
        let vmcs12 = self.vmcs12_mem[&ptr].clone();
        if let Err(e) = launch_state_check(vmcs12.state, !launch) {
            self.cov_i(XIBlk::NvmxLaunchStateErr);
            return L1Result::VmFail(e);
        }

        self.cov_i(XIBlk::CheckCtls);
        let exposed = self.exposed_caps.clone();
        if nf_silicon::check_vm_controls(&vmcs12, &exposed).is_err() {
            self.cov_i(XIBlk::CtlsErrArm);
            return L1Result::VmFail(VmInstrError::EntryInvalidControls);
        }
        self.cov_i(XIBlk::CheckHost);
        if nf_silicon::check_host_state(&vmcs12, &exposed).is_err() {
            self.cov_i(XIBlk::HostErrArm);
            return L1Result::VmFail(VmInstrError::EntryInvalidHostState);
        }
        self.cov_i(XIBlk::CheckGuest);
        if let Err(EntryFailure::InvalidGuestState(_)) =
            nf_silicon::check_guest_state(&vmcs12, &exposed)
        {
            self.cov_i(XIBlk::GuestErrArm);
            return self.nvmx_entry_fail(ptr, ExitReason::EntryFailGuestState);
        }
        // NOTE: unlike KVM, vxen does NOT restrict the activity state —
        // the pass-through below is bug #4. The fixed code rejects
        // anything beyond Active/HLT here.
        let act = vmcs12.read(VmcsField::GuestActivityState);
        if self.bugs.activity_state_fixed && act > 1 {
            self.cov_i(XIBlk::GuestErrArm);
            return self.nvmx_entry_fail(ptr, ExitReason::EntryFailGuestState);
        }

        self.cov_i(XIBlk::MsrLoadChecks);
        let count = vmcs12.read(VmcsField::VmEntryMsrLoadCount) as usize;
        if count > 0 {
            let addr = vmcs12.read(VmcsField::VmEntryMsrLoadAddr);
            let mut area = self.msr_area_mem.get(&addr).cloned().unwrap_or_default();
            area.entries.truncate(count);
            if nf_silicon::check_msr_load(&area).is_err() {
                self.cov_i(XIBlk::MsrLoadErr);
                return self.nvmx_entry_fail(ptr, ExitReason::EntryFailMsrLoad);
            }
        }

        // Merge into VMCS02.
        self.cov_i(XIBlk::Prep02);
        self.cov_i(XIBlk::VvmcsAccess);
        let hw = self.hw_caps.clone();
        let mut vmcs02 = golden_vmcs(&hw);
        for &f in VmcsField::ALL {
            if f.group() == nf_vmx::FieldGroup::Guest {
                vmcs02.write(f, vmcs12.read(f));
            }
        }
        vmcs02.write(VmcsField::VmcsLinkPointer, u64::MAX);
        for f in [
            VmcsField::Cr0GuestHostMask,
            VmcsField::Cr4GuestHostMask,
            VmcsField::Cr0ReadShadow,
            VmcsField::Cr4ReadShadow,
            VmcsField::ExceptionBitmap,
        ] {
            vmcs02.write(f, vmcs12.read(f));
        }
        let proc12 = vmcs12.read(VmcsField::CpuBasedVmExecControl) as u32;
        let proc212 = vmcs12.read(VmcsField::SecondaryVmExecControl) as u32;
        vmcs02.write(
            VmcsField::CpuBasedVmExecControl,
            hw.round_control(
                nf_vmx::CtrlKind::ProcBased,
                proc12 | vmcs02.read(VmcsField::CpuBasedVmExecControl) as u32,
            ) as u64,
        );
        vmcs02.write(
            VmcsField::VmEntryControls,
            hw.round_control(
                nf_vmx::CtrlKind::Entry,
                vmcs12.read(VmcsField::VmEntryControls) as u32,
            ) as u64,
        );
        let ept_on = self.config.features.contains(CpuFeature::Ept);
        if ept_on && proc212 & proc2::ENABLE_EPT != 0 {
            self.cov_i(XIBlk::Prep02Ept);
            let eptp12 = vmcs12.read(VmcsField::EptPointer);
            if !nf_silicon::eptp_valid(eptp12) {
                self.cov_i(XIBlk::Prep02EptErr);
                return self.nvmx_entry_fail(ptr, ExitReason::EntryFailGuestState);
            }
            vmcs02.write(VmcsField::EptPointer, nf_silicon::GOLDEN_EPTP);
        } else {
            self.cov_i(XIBlk::Prep02ShadowPath);
            let p2 = vmcs02.read(VmcsField::SecondaryVmExecControl) as u32 & !proc2::ENABLE_EPT;
            vmcs02.write(VmcsField::SecondaryVmExecControl, p2 as u64);
            vmcs02.write(VmcsField::EptPointer, 0);
        }

        // BUG #4 (Table 6 row 4): the activity state is copied verbatim
        // from VMCS12 into VMCS02 — including SHUTDOWN / WAIT-FOR-SIPI.
        self.cov_i(XIBlk::ActivityCopy);
        vmcs02.write(VmcsField::GuestActivityState, act);

        match nf_silicon::try_vmentry(&vmcs02, &hw, &MsrArea::new()) {
            Ok(outcome) => {
                self.cov_i(XIBlk::Prep02Ok);
                self.vmcs02 = Some(vmcs02);
                self.in_l2 = true;
                self.vmcs12_mem.get_mut(&ptr).expect("staged").state = VmcsState::Launched;
                if !outcome.runnable && act == 3 {
                    // The WAIT-FOR-SIPI guest blocks every interrupt but
                    // SIPIs; vxen spins in the entry path and the whole
                    // host stops making progress.
                    self.health.watchdog_hang(
                        "xen-wait-for-sipi",
                        "watchdog: host unresponsive after nested entry (activity=wait-for-SIPI)",
                    );
                    return L1Result::HostDead;
                }
                L1Result::L2Entered {
                    runnable: outcome.runnable,
                }
            }
            Err(_) => {
                self.cov_i(XIBlk::EntryFailDeliver);
                self.nvmx_entry_fail(ptr, ExitReason::EntryFailGuestState)
            }
        }
    }

    fn nvmx_entry_fail(&mut self, ptr: u64, reason: ExitReason) -> L1Result {
        self.cov_i(XIBlk::EntryFailDeliver);
        let encoded = reason.encode(true);
        let vmcs12 = self.vmcs12_mem.get_mut(&ptr).expect("staged");
        vmcs12.write(VmcsField::VmExitReason, encoded as u64);
        L1Result::L2EntryFailed { reason: encoded }
    }

    fn l2_exec_vmx(&mut self, instr: GuestInstr) -> L2Result {
        let vmcs02 = self.vmcs02.as_ref().expect("in_l2");
        let Some(reason) = vmx_exit_for(instr, vmcs02) else {
            return L2Result::NoExit;
        };
        self.cov_i(XIBlk::L2ExitDispatch);
        self.cov_i(XIBlk::ReflectDecide);
        let ptr = self.current_vmptr.expect("in_l2");
        let vmcs12 = &self.vmcs12_mem[&ptr];
        let reflect = reason.is_vmx_instruction()
            || reason == ExitReason::Cpuid
            || reason == ExitReason::Xsetbv
            || vmx_exit_for(instr, vmcs12).is_some();
        if reflect {
            self.cov_i(XIBlk::Sync12);
            self.cov_i(XIBlk::VvmcsSync);
            let vmcs02 = self.vmcs02.as_ref().expect("live");
            let snapshot: Vec<(VmcsField, u64)> = VmcsField::ALL
                .iter()
                .filter(|f| f.group() == nf_vmx::FieldGroup::Guest)
                .map(|&f| (f, vmcs02.read(f)))
                .collect();
            let encoded = reason.encode(false);
            let vmcs12 = self.vmcs12_mem.get_mut(&ptr).expect("staged");
            for (f, v) in snapshot {
                vmcs12.write(f, v);
            }
            vmcs12.write(VmcsField::VmExitReason, encoded as u64);
            self.cov_i(XIBlk::ReflectDeliver);
            if reason == ExitReason::ExceptionNmi {
                self.cov_i(XIBlk::InjectToL1);
            }
            self.in_l2 = false;
            L2Result::ReflectedToL1(encoded)
        } else {
            self.cov_i(XIBlk::L0Handle);
            self.cov_i(XIBlk::EmuArms);
            self.cov_i(XIBlk::ResumeL2);
            L2Result::HandledByL0
        }
    }

    // --- AMD (nestedsvm.c) ----------------------------------------------

    fn nsvm_run(&mut self, addr: u64) -> L1Result {
        self.cov_a(XABlk::SvmRunEntry);
        if !self.nested_on() || self.l1_efer & Efer::SVME == 0 {
            self.cov_a(XABlk::SvmNoSvmErr);
            return L1Result::Fault("#UD");
        }
        let Some(vmcb12) = self.vmcb12_mem.get(&addr).copied() else {
            self.cov_a(XABlk::VmcbAddrErr);
            return L1Result::Fault("#GP");
        };
        self.current_vmcb = Some(addr);

        self.cov_a(XABlk::CheckSave);
        if let Err(failure) = check_vmrun(&vmcb12, true) {
            let arm = match failure.0.rule {
                "svm.asid_zero" | "svm.vmrun_intercept" => XABlk::CtrlErrArm,
                _ => XABlk::SaveErrArm,
            };
            self.cov_a(arm);
            // BUG #6 (Table 6 row 6): the failed vmrun is reported to L1
            // through nsvm_vcpu_vmexit_inject(), which asserts that the
            // virtual GIF is set whenever VGIF is enabled.
            return self.nsvm_vmexit_inject(addr, SvmExitCode::Invalid as u32, &vmcb12);
        }
        self.cov_a(XABlk::CheckCtrl);

        // FIXED code rejects the ambiguous LMA && !PG state up front.
        let lma_no_pg = vmcb12.save.efer & Efer::LMA != 0 && vmcb12.save.cr0 & Cr0::PG == 0;
        if self.bugs.lma_pg_fixed && lma_no_pg {
            self.cov_a(XABlk::SaveErrArm);
            return self.nsvm_vmexit_inject(addr, SvmExitCode::Invalid as u32, &vmcb12);
        }

        self.cov_a(XABlk::VmcbMerge);
        self.cov_a(XABlk::MsrpmMerge);
        self.cov_a(XABlk::IopmMerge);
        self.cov_a(XABlk::TlbCtl);
        let mut vmcb02 = golden_vmcb();
        vmcb02.save = vmcb12.save;
        vmcb02.control.intercepts = vmcb12.control.intercepts | golden_vmcb().control.intercepts;
        vmcb02.control.guest_asid = vmcb12.control.guest_asid.max(1);

        let np = self.config.features.contains(CpuFeature::NestedPaging)
            && vmcb12.control.np_enable & 1 != 0;
        if np {
            self.cov_a(XABlk::MergeNp);
            if !nf_x86::addr::phys_in_width(vmcb12.control.ncr3) {
                self.cov_a(XABlk::MergeNpErr);
                return self.nsvm_vmexit_inject(addr, SvmExitCode::Invalid as u32, &vmcb12);
            }
            vmcb02.control.np_enable = 1;
        } else {
            vmcb02.control.np_enable = 0;
        }

        // int_ctl merge — BUG #5 (Table 6 row 5) lives here: with the
        // ambiguous LMA && !PG state the mode bookkeeping underflows and
        // the AVIC-enable bit leaks into VMCB02.
        self.cov_a(XABlk::MergeIntCtl);
        let mut ic = vmcb12.control.int_ctl & (int_ctl::V_INTR_MASKING | int_ctl::V_IGN_TPR);
        if self.config.features.contains(CpuFeature::VGif) {
            self.cov_a(XABlk::MergeVgif);
            ic |= vmcb12.control.int_ctl & (int_ctl::V_GIF | int_ctl::V_GIF_ENABLE);
        }
        if self.config.features.contains(CpuFeature::Avic) {
            self.cov_a(XABlk::MergeAvic);
        }
        if lma_no_pg && !self.bugs.lma_pg_fixed {
            ic |= int_ctl::AVIC_ENABLE;
            self.avic_corrupted = true;
        }
        vmcb02.control.int_ctl = ic;
        if self.config.features.contains(CpuFeature::Lbrv) {
            self.cov_a(XABlk::MergeLbr);
        }

        match check_vmrun(&vmcb02, true) {
            Ok(outcome) => {
                self.cov_a(XABlk::VmrunOk);
                if self.avic_corrupted {
                    // BUG #5 epilogue: the corrupted AVIC enable makes
                    // the (stalled) guest's very first fetch produce an
                    // AVIC_NOACCEL exit Xen cannot handle.
                    self.avic_corrupted = false;
                    self.cov_a(XABlk::L2Dispatch);
                    self.health.assert_that(
                        "xen-avic-noaccel",
                        false,
                        "unexpected VMEXIT_AVIC_NOACCEL without AVIC support",
                    );
                    let vmcb12m = self.vmcb12_mem.get_mut(&addr).expect("staged");
                    vmcb12m.control.exitcode = SvmExitCode::AvicNoaccel as u32 as u64;
                    return L1Result::L2EntryFailed {
                        reason: SvmExitCode::AvicNoaccel as u32,
                    };
                }
                self.vmcb02 = Some(vmcb02);
                self.in_l2 = true;
                L1Result::L2Entered {
                    runnable: outcome.runnable,
                }
            }
            Err(_) => self.nsvm_vmexit_inject(addr, SvmExitCode::Invalid as u32, &vmcb12),
        }
    }

    /// `nsvm_vcpu_vmexit_inject()`: reports a #VMEXIT to L1 — with the
    /// VGIF assertion of Xen issue #215.
    fn nsvm_vmexit_inject(&mut self, addr: u64, code: u32, vmcb12: &Vmcb) -> L1Result {
        self.cov_a(XABlk::VmexitInvalid);
        self.cov_a(XABlk::VmexitInject);
        let vgif_enabled = self.config.features.contains(CpuFeature::VGif)
            && vmcb12.control.int_ctl & int_ctl::V_GIF_ENABLE != 0;
        if vgif_enabled && !self.bugs.vgif_assert_fixed {
            let vgif_set = vmcb12.control.int_ctl & int_ctl::V_GIF != 0;
            if self
                .health
                .assert_that("xen-vgif-assert", vgif_set, "vmcb->_vintr.fields.vgif")
            {
                // Debug builds crash the host on a failed ASSERT.
                return L1Result::HostDead;
            }
        }
        let vmcb12m = self.vmcb12_mem.get_mut(&addr).expect("staged");
        vmcb12m.control.exitcode = code as u64;
        L1Result::L2EntryFailed { reason: code }
    }

    fn l2_exec_svm(&mut self, instr: GuestInstr) -> L2Result {
        let vmcb02 = self.vmcb02.as_ref().expect("in_l2");
        let Some(code) = svm_exit_for(instr, vmcb02) else {
            return L2Result::NoExit;
        };
        self.cov_a(XABlk::L2Dispatch);
        self.cov_a(XABlk::ReflectDecideA);
        let addr = self.current_vmcb.expect("in_l2");
        let vmcb12 = self.vmcb12_mem[&addr];
        let reflect = code.is_svm_instruction() || svm_exit_for(instr, &vmcb12).is_some();
        if reflect {
            self.cov_a(XABlk::Sync12A);
            let save02 = self.vmcb02.as_ref().expect("live").save;
            let vmcb12m = self.vmcb12_mem.get_mut(&addr).expect("staged");
            vmcb12m.save = save02;
            vmcb12m.control.exitcode = code as u32 as u64;
            self.cov_a(XABlk::ReflectDeliverA);
            self.in_l2 = false;
            L2Result::ReflectedToL1(code as u32)
        } else {
            self.cov_a(XABlk::L0HandleA);
            self.cov_a(XABlk::EmuArmsA);
            L2Result::HandledByL0
        }
    }
}

impl L0Hypervisor for Vxen {
    fn name(&self) -> &'static str {
        "vxen"
    }

    fn vendor(&self) -> CpuVendor {
        self.config.vendor
    }

    fn config(&self) -> &HvConfig {
        &self.config
    }

    fn reset_guest(&mut self) {
        self.l1_cr0 = Cr0::PE | Cr0::PG | Cr0::NE;
        self.l1_cr4 = Cr4::PAE;
        self.l1_efer = Efer::LME | Efer::LMA;
        self.vmxon_region = None;
        self.vmcs12_mem.clear();
        self.current_vmptr = None;
        self.msr_area_mem.clear();
        self.vmcs02 = None;
        self.in_l2 = false;
        self.avic_corrupted = false;
        self.vmcb12_mem.clear();
        self.current_vmcb = None;
        self.vmcb02 = None;
    }

    fn reboot_host(&mut self) {
        self.reset_guest();
        self.health = HostHealth::new();
    }

    fn snapshot(&self) -> HvSnapshot {
        HvSnapshot::Vxen(VxenSnapshot {
            bugs: self.bugs,
            l1_cr0: self.l1_cr0,
            l1_cr4: self.l1_cr4,
            l1_efer: self.l1_efer,
            vmxon_region: self.vmxon_region,
            vmcs12_mem: share_map(&self.vmcs12_mem),
            current_vmptr: self.current_vmptr,
            msr_area_mem: share_map(&self.msr_area_mem),
            vmcs02: share_opt(&self.vmcs02),
            in_l2: self.in_l2,
            avic_corrupted: self.avic_corrupted,
            vmcb12_mem: share_map(&self.vmcb12_mem),
            current_vmcb: self.current_vmcb,
            vmcb02: self.vmcb02,
            health: self.health.clone(),
        })
    }

    fn restore(&mut self, snap: &HvSnapshot) {
        let HvSnapshot::Vxen(s) = snap else {
            panic!("vxen cannot restore a {} snapshot", snap.backend());
        };
        restore_fields!(copy: self, s, [
            bugs, l1_cr0, l1_cr4, l1_efer, vmxon_region, current_vmptr,
            in_l2, avic_corrupted, current_vmcb, vmcb02,
        ]);
        restore_fields!(clone: self, s, [health]);
        restore_fields!(shared: self, s, [
            vmcs12_mem, msr_area_mem, vmcs02, vmcb12_mem,
        ]);
    }

    fn install_faults(&mut self, faults: SharedFaults) {
        self.faults = Some(faults);
    }

    fn try_restore(&mut self, snap: &HvSnapshot) -> Result<(), RestoreFault> {
        if let Some(f) = &self.faults {
            f.borrow_mut().check_restore()?;
        }
        self.restore(snap);
        Ok(())
    }

    fn l1_exec(&mut self, instr: GuestInstr) -> L1Result {
        if self.health.dead {
            return L1Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L1Result::HostDead;
        }
        use GuestInstr::*;
        match (self.config.vendor, instr) {
            (CpuVendor::Intel, Vmxon(addr)) => {
                self.cov_i(XIBlk::NvmxHandleVmxon);
                if !self.nested_on() || self.l1_cr4 & Cr4::VMXE == 0 {
                    self.cov_i(XIBlk::NvmxVmxonErr);
                    return L1Result::Fault("#UD");
                }
                if vmxon_check(
                    Cr0::new(self.l1_cr0),
                    Cr4::new(self.l1_cr4),
                    Efer::new(self.l1_efer),
                    addr,
                )
                .is_err()
                {
                    self.cov_i(XIBlk::NvmxVmxonErr);
                    return L1Result::Fault("#GP");
                }
                self.cov_i(XIBlk::NvmxSetupDomain);
                self.vmxon_region = Some(addr);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmxoff) => {
                self.cov_i(XIBlk::NvmxHandleVmxoff);
                self.vmxon_region = None;
                self.current_vmptr = None;
                self.in_l2 = false;
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmclear(addr)) => {
                self.cov_i(XIBlk::NvmxHandleVmclear);
                let Some(vmxon) = self.vmxon_region else {
                    return L1Result::Fault("#UD");
                };
                if let Err(e) = vmclear_check(addr, vmxon) {
                    self.cov_i(XIBlk::NvmxVmclearErr);
                    return L1Result::VmFail(e);
                }
                let rev = self.exposed_caps.revision_id;
                let v = self.vmcs12_mem.entry(addr).or_insert_with(|| {
                    let mut v = Vmcs::new();
                    v.revision_id = rev;
                    v
                });
                v.state = VmcsState::Clear;
                if self.current_vmptr == Some(addr) {
                    self.current_vmptr = None;
                }
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmptrld(addr)) => {
                self.cov_i(XIBlk::NvmxHandleVmptrld);
                let Some(vmxon) = self.vmxon_region else {
                    return L1Result::Fault("#UD");
                };
                let rev = self.exposed_caps.revision_id;
                let region_rev = self
                    .vmcs12_mem
                    .get(&addr)
                    .map(|v| v.revision_id)
                    .unwrap_or(rev);
                if let Err(e) = vmptrld_check(addr, vmxon, region_rev, rev) {
                    self.cov_i(XIBlk::NvmxVmptrldErr);
                    return L1Result::VmFail(e);
                }
                self.vmcs12_mem.entry(addr).or_insert_with(|| {
                    let mut v = Vmcs::new();
                    v.revision_id = rev;
                    v
                });
                self.current_vmptr = Some(addr);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Vmptrst) => {
                self.cov_i(XIBlk::NvmxHandleVmptrld);
                L1Result::Ok(self.current_vmptr.unwrap_or(u64::MAX))
            }
            (CpuVendor::Intel, Vmread(enc)) => {
                self.cov_i(XIBlk::NvmxHandleVmread);
                let Some(ptr) = self.current_vmptr else {
                    self.cov_i(XIBlk::NvmxVmreadErr);
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                };
                match vmread_check(enc) {
                    Err(e) => {
                        self.cov_i(XIBlk::NvmxVmreadErr);
                        L1Result::VmFail(e)
                    }
                    Ok(field) => L1Result::Ok(self.vmcs12_mem[&ptr].read(field)),
                }
            }
            (CpuVendor::Intel, Vmwrite(enc, val)) => {
                self.cov_i(XIBlk::NvmxHandleVmwrite);
                let Some(ptr) = self.current_vmptr else {
                    self.cov_i(XIBlk::NvmxVmwriteErr);
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                };
                match vmwrite_check(enc) {
                    Err(e) => {
                        self.cov_i(XIBlk::NvmxVmwriteErr);
                        L1Result::VmFail(e)
                    }
                    Ok(field) => {
                        self.vmcs12_mem
                            .get_mut(&ptr)
                            .expect("staged")
                            .write(field, val);
                        L1Result::Ok(0)
                    }
                }
            }
            (CpuVendor::Intel, Vmlaunch) => self.nvmx_run(true),
            (CpuVendor::Intel, Vmresume) => self.nvmx_run(false),
            (CpuVendor::Intel, Vmcall) => {
                self.cov_i(XIBlk::NvmxIntrIntercept);
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Invept(t)) | (CpuVendor::Intel, Invvpid(t)) => {
                self.cov_i(XIBlk::NvmxHandleInveptInvvpid);
                if t > 3 {
                    return L1Result::VmFail(VmInstrError::FailInvalid);
                }
                L1Result::Ok(0)
            }
            (CpuVendor::Intel, Rdmsr(idx))
                if (nf_x86::Msr::VmxBasic.index()..=nf_x86::Msr::VmxVmfunc.index())
                    .contains(&idx) =>
            {
                self.cov_i(XIBlk::NvmxMsrRead);
                L1Result::Ok(self.exposed_caps.revision_id as u64)
            }
            (CpuVendor::Intel, Vmrun(_) | Vmload(_) | Vmsave(_) | Stgi | Clgi | Skinit) => {
                L1Result::Fault("#UD")
            }

            (CpuVendor::Amd, Vmrun(addr)) => self.nsvm_run(addr),
            (CpuVendor::Amd, Vmload(addr)) => {
                self.cov_a(XABlk::HandleVmloadX);
                if self.vmcb12_mem.contains_key(&addr) {
                    L1Result::Ok(0)
                } else {
                    L1Result::Fault("#GP")
                }
            }
            (CpuVendor::Amd, Vmsave(addr)) => {
                self.cov_a(XABlk::HandleVmsaveX);
                if self.vmcb12_mem.contains_key(&addr) {
                    L1Result::Ok(0)
                } else {
                    L1Result::Fault("#GP")
                }
            }
            (CpuVendor::Amd, Stgi) => {
                self.cov_a(XABlk::HandleStgiX);
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Clgi) => {
                self.cov_a(XABlk::HandleClgiX);
                L1Result::Ok(0)
            }
            (CpuVendor::Amd, Vmmcall) => {
                self.cov_a(XABlk::HandleVmmcallX);
                L1Result::Ok(0)
            }
            (
                CpuVendor::Amd,
                Vmxon(_) | Vmxoff | Vmclear(_) | Vmptrld(_) | Vmptrst | Vmread(_) | Vmwrite(..)
                | Vmlaunch | Vmresume | Invept(_) | Invvpid(_) | Skinit,
            ) => L1Result::Fault("#UD"),

            (_, MovToCr(nf_silicon::CrIndex::Cr0, v)) => {
                self.l1_cr0 = v;
                L1Result::Ok(0)
            }
            (_, MovToCr(nf_silicon::CrIndex::Cr4, v)) => {
                self.l1_cr4 = v;
                L1Result::Ok(0)
            }
            (_, Wrmsr(idx, v)) if idx == nf_x86::Msr::Efer.index() => {
                if Efer::new(v).check_reserved().is_err() {
                    return L1Result::Fault("#GP");
                }
                self.l1_efer = v;
                L1Result::Ok(0)
            }
            _ => L1Result::Ok(0),
        }
    }

    fn l2_exec(&mut self, instr: GuestInstr) -> L2Result {
        if self.health.dead {
            return L2Result::HostDead;
        }
        crate::fault::tick(&self.faults, &mut self.health);
        if self.health.dead {
            return L2Result::HostDead;
        }
        if !self.in_l2 {
            return L2Result::NoGuest;
        }
        match self.config.vendor {
            CpuVendor::Intel => self.l2_exec_vmx(instr),
            CpuVendor::Amd => self.l2_exec_svm(instr),
        }
    }

    fn l1_stage_vmcs_region(&mut self, addr: u64, revision: u32) {
        let vmcs = self.vmcs12_mem.entry(addr).or_default();
        vmcs.revision_id = revision;
    }

    fn l1_stage_vmcb(&mut self, addr: u64, vmcb: Vmcb) {
        self.vmcb12_mem.insert(addr, vmcb);
    }

    fn l1_stage_msr_area(&mut self, addr: u64, area: MsrArea) {
        self.msr_area_mem.insert(addr, area);
    }

    fn host_ioctl(&mut self, op: IoctlOp) {
        match (self.config.vendor, op) {
            (CpuVendor::Intel, IoctlOp::GetNestedState) => self.cov_i(XIBlk::MigrationSave),
            (CpuVendor::Intel, IoctlOp::SetNestedState) => self.cov_i(XIBlk::MigrationRestore),
            (CpuVendor::Intel, IoctlOp::FreeNestedState | IoctlOp::HardwareUnsetup) => {
                self.cov_i(XIBlk::NvmxTeardown)
            }
            (CpuVendor::Intel, IoctlOp::HardwareSetup) => self.cov_i(XIBlk::NvmxSetupDomain),
            (CpuVendor::Amd, IoctlOp::HardwareSetup | IoctlOp::SetNestedState) => {
                self.cov_a(XABlk::HostIoctlSvm)
            }
            (CpuVendor::Amd, _) => self.cov_a(XABlk::SvmTeardown),
        }
    }

    fn coverage_map(&self) -> &CovMap {
        &self.map
    }

    fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    fn swap_trace(&mut self, trace: &mut ExecTrace) {
        std::mem::swap(&mut self.trace, trace);
    }

    fn intel_file(&self) -> FileId {
        self.intel_file
    }

    fn amd_file(&self) -> Option<FileId> {
        Some(self.amd_file)
    }

    fn health(&self) -> &HostHealth {
        &self.health
    }

    fn observe_guest(&self) -> crate::api::GuestObservation {
        use crate::api::GuestObservation;
        match self.config.vendor {
            CpuVendor::Intel => GuestObservation {
                cr0: self.l1_cr0,
                cr4: self.l1_cr4,
                efer: self.l1_efer,
                vmx_on: self.vmxon_region.is_some(),
                current_vmptr: self.current_vmptr.unwrap_or(u64::MAX),
                in_l2: self.in_l2,
                vmcs12_digest: self
                    .current_vmptr
                    .map(|p| GuestObservation::digest_vmcs(&self.vmcs12_mem[&p]))
                    .unwrap_or(0),
            },
            CpuVendor::Amd => GuestObservation {
                cr0: self.l1_cr0,
                cr4: self.l1_cr4,
                efer: self.l1_efer,
                vmx_on: false,
                current_vmptr: self.current_vmcb.unwrap_or(u64::MAX),
                in_l2: self.in_l2,
                vmcs12_digest: self
                    .current_vmcb
                    .map(|a| GuestObservation::digest_vmcb(&self.vmcb12_mem[&a]))
                    .unwrap_or(0),
            },
        }
    }

    fn health_mut(&mut self) -> &mut HostHealth {
        &mut self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::CrashKind;

    fn intel_xen() -> Vxen {
        let mut xen = Vxen::new(HvConfig::default_for(CpuVendor::Intel));
        xen.l1_cr4 |= Cr4::VMXE;
        xen
    }

    fn init_to_vmptrld(xen: &mut Vxen) {
        assert_eq!(xen.l1_exec(GuestInstr::Vmxon(0x1000)), L1Result::Ok(0));
        assert_eq!(xen.l1_exec(GuestInstr::Vmclear(0x2000)), L1Result::Ok(0));
        assert_eq!(xen.l1_exec(GuestInstr::Vmptrld(0x2000)), L1Result::Ok(0));
    }

    fn write_golden(xen: &mut Vxen) {
        let golden = golden_vmcs(&xen.exposed_caps);
        for &f in VmcsField::ALL {
            if f.writable() {
                xen.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
            }
        }
    }

    #[test]
    fn golden_state_enters_l2() {
        let mut xen = intel_xen();
        init_to_vmptrld(&mut xen);
        write_golden(&mut xen);
        assert!(matches!(
            xen.l1_exec(GuestInstr::Vmlaunch),
            L1Result::L2Entered { runnable: true }
        ));
    }

    #[test]
    fn wait_for_sipi_hangs_the_host() {
        let mut xen = intel_xen();
        init_to_vmptrld(&mut xen);
        write_golden(&mut xen);
        xen.l1_exec(GuestInstr::Vmwrite(
            VmcsField::GuestActivityState.encoding(),
            3,
        ));
        assert_eq!(xen.l1_exec(GuestInstr::Vmlaunch), L1Result::HostDead);
        assert!(xen.health().dead);
        assert_eq!(xen.health().reports[0].kind, CrashKind::HostHang);
        assert_eq!(xen.health().reports[0].bug_id, "xen-wait-for-sipi");
    }

    #[test]
    fn activity_fix_rejects_wait_for_sipi() {
        let mut xen = intel_xen();
        xen.bugs.activity_state_fixed = true;
        init_to_vmptrld(&mut xen);
        write_golden(&mut xen);
        xen.l1_exec(GuestInstr::Vmwrite(
            VmcsField::GuestActivityState.encoding(),
            3,
        ));
        assert!(matches!(
            xen.l1_exec(GuestInstr::Vmlaunch),
            L1Result::L2EntryFailed { .. }
        ));
        assert!(!xen.health().dead);
    }

    fn amd_xen(vgif: bool) -> Vxen {
        let mut cfg = HvConfig::default_for(CpuVendor::Amd);
        if vgif {
            cfg.features.insert(CpuFeature::VGif);
        }
        let mut xen = Vxen::new(cfg);
        xen.l1_efer |= Efer::SVME;
        xen
    }

    #[test]
    fn lma_without_pg_corrupts_avic() {
        let mut xen = amd_xen(false);
        let mut vmcb = golden_vmcb();
        vmcb.save.cr0 &= !Cr0::PG; // EFER still has LMA: the ambiguous state.
        xen.l1_stage_vmcb(0x5000, vmcb);
        // The corrupted entry produces the spurious AVIC_NOACCEL exit
        // before the stalled guest ever executes.
        assert_eq!(
            xen.l1_exec(GuestInstr::Vmrun(0x5000)),
            L1Result::L2EntryFailed {
                reason: SvmExitCode::AvicNoaccel as u32
            }
        );
        assert!(xen.health().anomalous());
        assert_eq!(xen.health().reports[0].bug_id, "xen-avic-noaccel");
    }

    #[test]
    fn lma_pg_fix_rejects_ambiguous_state() {
        let mut xen = amd_xen(false);
        xen.bugs.lma_pg_fixed = true;
        let mut vmcb = golden_vmcb();
        vmcb.save.cr0 &= !Cr0::PG;
        xen.l1_stage_vmcb(0x5000, vmcb);
        assert!(matches!(
            xen.l1_exec(GuestInstr::Vmrun(0x5000)),
            L1Result::L2EntryFailed { .. }
        ));
        assert!(!xen.health().anomalous());
    }

    #[test]
    fn vgif_assert_on_failed_vmrun() {
        let mut xen = amd_xen(true);
        let mut vmcb = golden_vmcb();
        vmcb.control.int_ctl |= int_ctl::V_GIF_ENABLE; // vGIF on, V_GIF = 0
        vmcb.save.cr4 = 1 << 15; // reserved CR4 bit -> vmrun fails
        xen.l1_stage_vmcb(0x5000, vmcb);
        assert_eq!(xen.l1_exec(GuestInstr::Vmrun(0x5000)), L1Result::HostDead);
        assert!(xen.health().anomalous());
        assert_eq!(xen.health().reports[0].bug_id, "xen-vgif-assert");
        assert_eq!(xen.health().reports[0].kind, CrashKind::AssertFail);
    }

    #[test]
    fn vgif_fix_reports_clean_failure() {
        let mut xen = amd_xen(true);
        xen.bugs.vgif_assert_fixed = true;
        let mut vmcb = golden_vmcb();
        vmcb.control.int_ctl |= int_ctl::V_GIF_ENABLE;
        vmcb.save.cr4 = 1 << 15;
        xen.l1_stage_vmcb(0x5000, vmcb);
        assert!(matches!(
            xen.l1_exec(GuestInstr::Vmrun(0x5000)),
            L1Result::L2EntryFailed { .. }
        ));
        assert!(!xen.health().anomalous());
    }

    #[test]
    fn vgif_set_does_not_assert() {
        let mut xen = amd_xen(true);
        let mut vmcb = golden_vmcb();
        vmcb.control.int_ctl |= int_ctl::V_GIF_ENABLE | int_ctl::V_GIF;
        vmcb.save.cr4 = 1 << 15;
        xen.l1_stage_vmcb(0x5000, vmcb);
        assert!(matches!(
            xen.l1_exec(GuestInstr::Vmrun(0x5000)),
            L1Result::L2EntryFailed { .. }
        ));
        assert!(!xen.health().anomalous());
    }
}
