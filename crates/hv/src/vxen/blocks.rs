//! Instrumented basic blocks of vxen's nested-virtualization code.
//!
//! Intel blocks stand for `xen/arch/x86/hvm/vmx/vvmx.c` and AMD blocks
//! for `xen/arch/x86/hvm/svm/nestedsvm.c`; spans are calibrated to the
//! paper's Table 4 geometry (1,401 lines Intel, 794 lines AMD).

use crate::hv_blocks;

hv_blocks! {
    /// Basic blocks of the `vmx/vvmx.c` model.
    pub enum XIBlk {
        NvmxHandleVmxon = 22,
        NvmxVmxonErr = 8,
        NvmxHandleVmxoff = 10,
        NvmxHandleVmclear = 16,
        NvmxVmclearErr = 8,
        NvmxHandleVmptrld = 18,
        NvmxVmptrldErr = 10,
        NvmxHandleVmread = 16,
        NvmxVmreadErr = 6,
        NvmxHandleVmwrite = 18,
        NvmxVmwriteErr = 6,
        NvmxHandleInveptInvvpid = 20,
        NvmxMsrRead = 56,
        NvmxIntrIntercept = 40,
        NvmxRunEntry = 44,
        NvmxLaunchStateErr = 8,
        CheckCtls = 60,
        CtlsErrArm = 14,
        CheckHost = 44,
        HostErrArm = 12,
        CheckGuest = 70,
        GuestErrArm = 16,
        MsrLoadChecks = 20,
        MsrLoadErr = 8,
        VvmcsAccess = 44,
        VvmcsSync = 60,
        Prep02 = 80,
        Prep02Ept = 40,
        Prep02EptErr = 10,
        Prep02ShadowPath = 44,
        ActivityCopy = 27,
        Prep02Ok = 12,
        EntryFailDeliver = 14,
        L2ExitDispatch = 44,
        ReflectDecide = 50,
        Sync12 = 70,
        ReflectDeliver = 16,
        L0Handle = 38,
        EmuArms = 34,
        ResumeL2 = 10,
        InjectToL1 = 30,
        VmFailHelpers = 12,
        NvmxSetupDomain = 56,
        NvmxTeardown = 24,
        MigrationSave = 48,
        MigrationRestore = 56,
        BugArm = 8,
        AllocFail = 10,
        PmlXen = 14,
    }
}

hv_blocks! {
    /// Basic blocks of the `svm/nestedsvm.c` model.
    pub enum XABlk {
        SvmRunEntry = 44,
        SvmNoSvmErr = 8,
        VmcbAddrErr = 8,
        CheckSave = 50,
        SaveErrArm = 16,
        CheckCtrl = 30,
        CtrlErrArm = 12,
        VmcbMerge = 80,
        MergeNp = 22,
        MergeNpErr = 10,
        MergeAvic = 16,
        MergeVgif = 14,
        MergeLbr = 10,
        MergeIntCtl = 24,
        VmrunOk = 14,
        VmexitInvalid = 16,
        VmexitInject = 28,
        L2Dispatch = 30,
        ReflectDecideA = 34,
        Sync12A = 60,
        ReflectDeliverA = 14,
        L0HandleA = 28,
        EmuArmsA = 18,
        HandleVmloadX = 14,
        HandleVmsaveX = 14,
        HandleStgiX = 12,
        HandleClgiX = 12,
        HandleVmmcallX = 8,
        MsrpmMerge = 26,
        IopmMerge = 18,
        TlbCtl = 16,
        HostIoctlSvm = 44,
        SvmTeardown = 18,
        RareBugA = 8,
        AllocFailA = 10,
        VnmiA = 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_total_matches_table4_geometry() {
        assert_eq!(XIBlk::total_lines(), 1401, "vmx/vvmx.c instrumented lines");
    }

    #[test]
    fn amd_total_matches_table4_geometry() {
        assert_eq!(
            XABlk::total_lines(),
            794,
            "svm/nestedsvm.c instrumented lines"
        );
    }
}
