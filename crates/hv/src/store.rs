//! The content-addressed, refcounted snapshot blob store.
//!
//! A [`crate::HvSnapshot`] is dominated by a handful of heavy
//! components: per-address [`Vmcs`] / [`Vmcb`] images and MSR
//! load/store areas. Consecutive mid-scenario snapshots of the same
//! execution differ in at most one or two of them — everything else is
//! byte-identical — so deep-copying every component into every trie
//! node (PR 7's layout) pays for the same kilobytes over and over and
//! burns the byte budget on duplicates.
//!
//! This module is the copy-on-write alternative. Snapshot structs hold
//! their heavy components behind [`Arc`] handles; an [`InternStore`]
//! keys each blob by a 128-bit FNV-1a content digest and swaps
//! value-equal blobs onto one canonical `Arc`, refcounted by explicit
//! `intern` / `release` calls. The store reports exactly how many bytes
//! an intern made *newly* resident (0 on a dedup hit) and how many a
//! release freed (0 while other holders remain), so the trie's budget
//! accounting can charge each unique blob once — the same budget holds
//! many times more boundaries. Digest collisions are handled, not
//! assumed away: entries with one digest form a chain and are value-
//! compared, so two distinct blobs never alias.
//!
//! [`SnapshotStore`] bundles one typed store per component kind and
//! dispatches whole snapshots; the per-backend walks live next to each
//! snapshot struct (their fields are module-private). Restores stay
//! value-based delta copies — see [`SharedRestore`] and the `shared:`
//! arm of `restore_fields!` in the crate root.

use std::collections::BTreeMap;
use std::sync::Arc;

use nf_vmx::{MsrArea, MsrAreaEntry, Vmcb, Vmcs};

use crate::api::HvSnapshot;

/// 128-bit FNV-1a offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a hasher for blob content digests.
#[derive(Debug, Clone, Copy)]
pub struct Digest128(u128);

impl Digest128 {
    /// Starts a digest at the offset basis.
    pub fn new() -> Self {
        Digest128(FNV128_OFFSET)
    }

    /// Folds one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u128::from(b);
        self.0 = self.0.wrapping_mul(FNV128_PRIME);
    }

    /// Folds a byte slice.
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Folds a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// The digest value.
    pub fn value(self) -> u128 {
        self.0
    }
}

impl Default for Digest128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Content digest of a [`Vmcs`]: every field in catalogue order plus
/// the lifecycle state and revision id (the parts its equality covers).
pub fn digest_vmcs(v: &Vmcs) -> u128 {
    let mut d = Digest128::new();
    for &f in nf_vmx::VmcsField::ALL {
        d.u64(v.read(f));
    }
    d.byte(v.state as u8);
    d.u32(v.revision_id);
    d.value()
}

/// Content digest of a [`Vmcb`] (its full serialized image).
pub fn digest_vmcb(v: &Vmcb) -> u128 {
    let mut d = Digest128::new();
    d.bytes(&v.to_bytes());
    d.value()
}

/// Content digest of an [`MsrArea`] (its entry list in order).
pub fn digest_msr_area(a: &MsrArea) -> u128 {
    let mut d = Digest128::new();
    for e in &a.entries {
        d.u32(e.index);
        d.u64(e.value);
    }
    d.value()
}

/// Resident footprint charged for one [`Vmcs`] blob.
pub fn vmcs_bytes() -> usize {
    std::mem::size_of::<Vmcs>()
}

/// Resident footprint charged for one [`Vmcb`] blob.
pub fn vmcb_bytes() -> usize {
    std::mem::size_of::<Vmcb>()
}

/// Resident footprint charged for one [`MsrArea`] blob.
pub fn msr_area_bytes(a: &MsrArea) -> usize {
    std::mem::size_of::<MsrArea>() + a.entries.len() * std::mem::size_of::<MsrAreaEntry>()
}

struct InternEntry<T> {
    blob: Arc<T>,
    refs: usize,
    bytes: usize,
}

/// A content-addressed, refcounted blob store for one component type.
///
/// Blobs are keyed by a caller-supplied 128-bit digest; entries sharing
/// a digest form a chain and are distinguished by value comparison, so
/// the store is correct even under digest collisions. Refcounts are
/// explicit: every [`InternStore::intern`] must be balanced by one
/// [`InternStore::release`] of the same blob (releasing a blob the
/// store does not hold is a caller bug and panics).
///
/// The digest is a parameter rather than a trait method so foreign
/// types (e.g. `nf_coverage::ExecTrace`, event-log segments) can be
/// interned by downstream crates without orphan-rule contortions.
pub struct InternStore<T> {
    chains: BTreeMap<u128, Vec<InternEntry<T>>>,
    resident_bytes: usize,
    blob_count: usize,
    interned_bytes: u64,
    unique_bytes: u64,
}

impl<T: PartialEq> InternStore<T> {
    /// An empty store.
    pub fn new() -> Self {
        InternStore {
            chains: BTreeMap::new(),
            resident_bytes: 0,
            blob_count: 0,
            interned_bytes: 0,
            unique_bytes: 0,
        }
    }

    /// Interns `blob` under `digest`, charging `bytes` for its
    /// footprint. When a value-equal blob is already resident, its
    /// refcount is bumped and `blob` is swapped onto the canonical
    /// `Arc` (the duplicate's memory is dropped with the caller's last
    /// clone); otherwise the blob becomes resident with refcount 1.
    ///
    /// Returns the bytes this call made *newly* resident: `bytes` for a
    /// first-time blob, `0` for a dedup hit — the delta the caller's
    /// budget accounting should charge.
    pub fn intern(&mut self, blob: &mut Arc<T>, digest: u128, bytes: usize) -> usize {
        self.interned_bytes += bytes as u64;
        let chain = self.chains.entry(digest).or_default();
        for entry in chain.iter_mut() {
            if Arc::ptr_eq(&entry.blob, blob) || *entry.blob == **blob {
                entry.refs += 1;
                *blob = Arc::clone(&entry.blob);
                return 0;
            }
        }
        chain.push(InternEntry {
            blob: Arc::clone(blob),
            refs: 1,
            bytes,
        });
        self.resident_bytes += bytes;
        self.blob_count += 1;
        self.unique_bytes += bytes as u64;
        bytes
    }

    /// Releases one reference to `blob` (previously interned under
    /// `digest`). Returns the bytes freed: the blob's recorded
    /// footprint when this was the last reference, `0` while other
    /// holders remain.
    ///
    /// # Panics
    ///
    /// Panics if the store holds no matching blob under `digest` —
    /// an unbalanced release is a refcounting bug.
    pub fn release(&mut self, blob: &Arc<T>, digest: u128) -> usize {
        let chain = self
            .chains
            .get_mut(&digest)
            .expect("release of a digest the store does not hold");
        let idx = chain
            .iter()
            .position(|e| Arc::ptr_eq(&e.blob, blob) || *e.blob == **blob)
            .expect("release of a blob the store does not hold");
        chain[idx].refs -= 1;
        if chain[idx].refs > 0 {
            return 0;
        }
        let freed = chain.remove(idx).bytes;
        if chain.is_empty() {
            self.chains.remove(&digest);
        }
        self.resident_bytes -= freed;
        self.blob_count -= 1;
        freed
    }

    /// Current refcount of a resident blob (`0` when absent) — test and
    /// invariant-check surface.
    pub fn refs(&self, blob: &Arc<T>, digest: u128) -> usize {
        self.chains
            .get(&digest)
            .and_then(|chain| {
                chain
                    .iter()
                    .find(|e| Arc::ptr_eq(&e.blob, blob) || *e.blob == **blob)
            })
            .map_or(0, |e| e.refs)
    }

    /// Bytes currently resident (each unique blob charged once).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of unique blobs currently resident.
    pub fn blob_count(&self) -> usize {
        self.blob_count
    }

    /// Cumulative bytes offered to [`InternStore::intern`].
    pub fn interned_bytes(&self) -> u64 {
        self.interned_bytes
    }

    /// Cumulative bytes that were new to the store (the unique subset
    /// of [`InternStore::interned_bytes`]; their ratio is the dedup
    /// ratio).
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }
}

impl<T: PartialEq> Default for InternStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// One typed [`InternStore`] per heavy snapshot component, plus
/// whole-snapshot dispatch: [`SnapshotStore::intern`] walks every
/// `Arc`-held component of an [`HvSnapshot`] through the matching
/// store (canonicalizing its handles in place), and
/// [`SnapshotStore::release`] walks them back out.
pub struct SnapshotStore {
    /// Interned VMCS images (`vmcs12_mem` entries and `vmcs02`).
    pub vmcs: InternStore<Vmcs>,
    /// Interned VMCB images (`vmcb12_mem` entries).
    pub vmcb: InternStore<Vmcb>,
    /// Interned MSR load/store areas.
    pub msr: InternStore<MsrArea>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        SnapshotStore {
            vmcs: InternStore::new(),
            vmcb: InternStore::new(),
            msr: InternStore::new(),
        }
    }

    /// Interns every shared component of `snap`, swapping its handles
    /// onto the canonical `Arc`s. Returns the bytes newly resident
    /// (each component already held by an earlier snapshot charges 0).
    pub fn intern(&mut self, snap: &mut HvSnapshot) -> usize {
        match snap {
            HvSnapshot::Vkvm(s) => s.intern_into(self),
            HvSnapshot::Vxen(s) => s.intern_into(self),
            HvSnapshot::Vvbox(s) => s.intern_into(self),
            HvSnapshot::Golden(s) => s.intern_into(self),
        }
    }

    /// Releases every shared component of a previously interned `snap`.
    /// Returns the bytes freed (components still held elsewhere free 0).
    pub fn release(&mut self, snap: &HvSnapshot) -> usize {
        match snap {
            HvSnapshot::Vkvm(s) => s.release_from(self),
            HvSnapshot::Vxen(s) => s.release_from(self),
            HvSnapshot::Vvbox(s) => s.release_from(self),
            HvSnapshot::Golden(s) => s.release_from(self),
        }
    }

    /// Bytes currently resident across all component stores.
    pub fn resident_bytes(&self) -> usize {
        self.vmcs.resident_bytes() + self.vmcb.resident_bytes() + self.msr.resident_bytes()
    }

    /// Unique blobs currently resident across all component stores.
    pub fn blob_count(&self) -> usize {
        self.vmcs.blob_count() + self.vmcb.blob_count() + self.msr.blob_count()
    }

    /// Cumulative bytes offered across all component stores.
    pub fn interned_bytes(&self) -> u64 {
        self.vmcs.interned_bytes() + self.vmcb.interned_bytes() + self.msr.interned_bytes()
    }

    /// Cumulative bytes that were new across all component stores.
    pub fn unique_bytes(&self) -> u64 {
        self.vmcs.unique_bytes() + self.vmcb.unique_bytes() + self.msr.unique_bytes()
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Value-based delta restore of a live component from a snapshot's
/// shared (`Arc`-held) image — the `shared:` arm of `restore_fields!`.
///
/// Semantically identical to the `clone:` arm on an unshared field:
/// after the call the live value equals the snapshot value. The work is
/// finer-grained, though — per entry rather than per map — so restoring
/// across a boundary that touched one VMCS clones one VMCS, not the
/// whole map.
pub trait SharedRestore<S> {
    /// Makes `self` equal to the snapshot image `snap`, cloning only
    /// the entries that differ.
    fn restore_from(&mut self, snap: &S);
}

impl<K: Ord + Copy, V: Clone + PartialEq> SharedRestore<BTreeMap<K, Arc<V>>> for BTreeMap<K, V> {
    fn restore_from(&mut self, snap: &BTreeMap<K, Arc<V>>) {
        self.retain(|k, _| snap.contains_key(k));
        for (k, v) in snap {
            match self.get_mut(k) {
                Some(cur) if *cur == **v => {}
                Some(cur) => *cur = (**v).clone(),
                None => {
                    self.insert(*k, (**v).clone());
                }
            }
        }
    }
}

impl<V: Clone + PartialEq> SharedRestore<Option<Arc<V>>> for Option<V> {
    fn restore_from(&mut self, snap: &Option<Arc<V>>) {
        match (self.as_mut(), snap) {
            (Some(cur), Some(v)) if *cur == **v => {}
            (Some(cur), Some(v)) => *cur = (**v).clone(),
            (None, Some(v)) => *self = Some((**v).clone()),
            (_, None) => *self = None,
        }
    }
}

/// Wraps every value of a live component map into a fresh `Arc` — the
/// snapshot-capture half of the shared layout (interning then dedups
/// the fresh `Arc`s onto canonical ones).
pub(crate) fn share_map<K: Ord + Copy, V: Clone>(live: &BTreeMap<K, V>) -> BTreeMap<K, Arc<V>> {
    live.iter()
        .map(|(&k, v)| (k, Arc::new(v.clone())))
        .collect()
}

/// [`share_map`] for optional components.
pub(crate) fn share_opt<V: Clone>(live: &Option<V>) -> Option<Arc<V>> {
    live.as_ref().map(|v| Arc::new(v.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_equal_blobs_and_canonicalizes_handles() {
        let mut store: InternStore<Vec<u8>> = InternStore::new();
        let mut a = Arc::new(vec![1u8, 2, 3]);
        let mut b = Arc::new(vec![1u8, 2, 3]);
        assert_eq!(store.intern(&mut a, 7, 100), 100);
        assert_eq!(store.intern(&mut b, 7, 100), 0, "dedup charges nothing");
        assert!(Arc::ptr_eq(&a, &b), "handles canonicalized");
        assert_eq!(store.resident_bytes(), 100);
        assert_eq!(store.blob_count(), 1);
        assert_eq!(store.refs(&a, 7), 2);
        assert_eq!(store.interned_bytes(), 200);
        assert_eq!(store.unique_bytes(), 100);
    }

    #[test]
    fn release_frees_only_the_last_reference() {
        let mut store: InternStore<u64> = InternStore::new();
        let mut a = Arc::new(42u64);
        store.intern(&mut a, 1, 8);
        let mut b = Arc::new(42u64);
        store.intern(&mut b, 1, 8);
        assert_eq!(store.release(&a, 1), 0, "one holder remains");
        assert_eq!(store.resident_bytes(), 8);
        assert_eq!(store.release(&b, 1), 8, "last release frees");
        assert_eq!(store.resident_bytes(), 0);
        assert_eq!(store.blob_count(), 0);
    }

    #[test]
    fn digest_collisions_keep_distinct_blobs_apart() {
        let mut store: InternStore<u64> = InternStore::new();
        let mut a = Arc::new(1u64);
        let mut b = Arc::new(2u64);
        // Same digest, different values: both must stay resident and
        // independently refcounted.
        assert_eq!(store.intern(&mut a, 9, 8), 8);
        assert_eq!(store.intern(&mut b, 9, 8), 8);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.blob_count(), 2);
        assert_eq!(store.release(&a, 9), 8);
        assert_eq!(store.refs(&b, 9), 1, "collision partner untouched");
    }

    #[test]
    #[should_panic(expected = "release of a blob the store does not hold")]
    fn unbalanced_release_panics() {
        let mut store: InternStore<u64> = InternStore::new();
        let mut a = Arc::new(1u64);
        store.intern(&mut a, 3, 8);
        let stranger = Arc::new(2u64);
        store.release(&stranger, 3);
    }

    #[test]
    fn shared_restore_matches_clone_semantics() {
        let mut live: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        live.insert(1, vec![1]);
        live.insert(2, vec![2]);
        let mut snap: BTreeMap<u64, Arc<Vec<u8>>> = BTreeMap::new();
        snap.insert(2, Arc::new(vec![2]));
        snap.insert(3, Arc::new(vec![3]));
        live.restore_from(&snap);
        let want: BTreeMap<u64, Vec<u8>> = snap.iter().map(|(&k, v)| (k, (**v).clone())).collect();
        assert_eq!(live, want);

        let mut opt: Option<Vec<u8>> = Some(vec![9]);
        opt.restore_from(&None);
        assert_eq!(opt, None);
        opt.restore_from(&Some(Arc::new(vec![4])));
        assert_eq!(opt, Some(vec![4]));
    }

    #[test]
    fn component_digests_separate_unequal_blobs() {
        let mut a = Vmcs::new();
        let b = a.clone();
        assert_eq!(digest_vmcs(&a), digest_vmcs(&b));
        a.write(nf_vmx::VmcsField::GuestRip, 0x1234);
        assert_ne!(digest_vmcs(&a), digest_vmcs(&b));

        let mut m = MsrArea::new();
        let n = m.clone();
        assert_eq!(digest_msr_area(&m), digest_msr_area(&n));
        m.entries.push(MsrAreaEntry {
            index: 0x10,
            value: 5,
        });
        assert_ne!(digest_msr_area(&m), digest_msr_area(&n));

        let mut v = Vmcb::default();
        let w = v;
        assert_eq!(digest_vmcb(&v), digest_vmcb(&w));
        v.save.rip = 0xfff0;
        assert_ne!(digest_vmcb(&v), digest_vmcb(&w));
    }
}
