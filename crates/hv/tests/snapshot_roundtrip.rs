//! Snapshot round-trip properties (proptest) for every backend and
//! vendor: `restore(snapshot(hv))` must leave all guest-visible and
//! health state identical, no matter what instruction stream ran
//! before the capture or between capture and restore.
//!
//! State identity is asserted through the snapshots themselves —
//! [`HvSnapshot`] captures exactly the guest-visible + health surface
//! and compares with `==` — plus behavioral probes (the same
//! instruction must produce the same result before and after a
//! restore).

use nf_hv::{HvConfig, HvSnapshot, L0Hypervisor, Vkvm, Vvbox, Vxen};
use nf_silicon::{golden_vmcb, golden_vmcs, CrIndex, GuestInstr};
use nf_vmx::VmxCapabilities;
use nf_x86::{CpuVendor, Cr0, Cr4, FeatureSet};
use proptest::prelude::*;

/// Every (backend, vendor) cell of the grid (vvbox is Intel-only).
fn grid() -> Vec<(&'static str, CpuVendor, Box<dyn L0Hypervisor>)> {
    let mk = |vendor| HvConfig::default_for(vendor);
    vec![
        (
            "vkvm",
            CpuVendor::Intel,
            Box::new(Vkvm::new(mk(CpuVendor::Intel))) as _,
        ),
        (
            "vkvm",
            CpuVendor::Amd,
            Box::new(Vkvm::new(mk(CpuVendor::Amd))) as _,
        ),
        (
            "vxen",
            CpuVendor::Intel,
            Box::new(Vxen::new(mk(CpuVendor::Intel))) as _,
        ),
        (
            "vxen",
            CpuVendor::Amd,
            Box::new(Vxen::new(mk(CpuVendor::Amd))) as _,
        ),
        (
            "vvbox",
            CpuVendor::Intel,
            Box::new(Vvbox::new(mk(CpuVendor::Intel))) as _,
        ),
    ]
}

/// Decodes one fuzz step into a hypervisor interaction. Covers the
/// whole mutable surface: VMX/SVM instruction emulation, CR/MSR state,
/// region staging, the L2 dispatch path, and the init sequence that
/// reaches a live nested guest.
fn drive_step(hv: &mut dyn L0Hypervisor, caps: &VmxCapabilities, step: &[u8; 4]) {
    let [sel, a, b, c] = *step;
    let addr = 0x1000u64 * (1 + (a % 8) as u64);
    let val = u64::from(b) << 8 | u64::from(c);
    match sel % 20 {
        0 => {
            // Walk the canonical init sequence so later steps can hit
            // the post-vmxon / post-vmptrld / in-L2 states.
            hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
            hv.l1_exec(GuestInstr::MovToCr(
                CrIndex::Cr0,
                Cr0::PE | Cr0::PG | Cr0::NE,
            ));
            hv.l1_exec(GuestInstr::Vmxon(0x1000));
            hv.l1_exec(GuestInstr::Vmclear(0x2000));
            hv.l1_stage_vmcs_region(0x2000, caps.revision_id);
            hv.l1_exec(GuestInstr::Vmptrld(0x2000));
            let golden = golden_vmcs(caps);
            for &f in nf_vmx::VmcsField::ALL {
                if f.writable() {
                    hv.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
                }
            }
            hv.l1_exec(GuestInstr::Vmlaunch);
        }
        1 => {
            hv.l1_exec(GuestInstr::Wrmsr(
                nf_x86::Msr::Efer.index(),
                nf_x86::Efer::LME | nf_x86::Efer::LMA | nf_x86::Efer::SVME,
            ));
            hv.l1_stage_vmcb(0x5000, golden_vmcb());
            hv.l1_exec(GuestInstr::Vmrun(0x5000));
        }
        2 => {
            hv.l1_exec(GuestInstr::Vmxon(addr));
        }
        3 => {
            hv.l1_exec(GuestInstr::Vmclear(addr));
        }
        4 => {
            hv.l1_stage_vmcs_region(addr, u32::from(b));
            hv.l1_exec(GuestInstr::Vmptrld(addr));
        }
        5 => {
            hv.l1_exec(GuestInstr::Vmwrite(u32::from(b), val));
        }
        6 => {
            hv.l1_exec(GuestInstr::Vmread(u32::from(b)));
        }
        7 => {
            hv.l1_exec(GuestInstr::Vmlaunch);
        }
        8 => {
            hv.l1_exec(GuestInstr::Vmresume);
        }
        9 => {
            hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, val));
        }
        10 => {
            hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr0, val | Cr0::PE));
        }
        11 => {
            hv.l1_exec(GuestInstr::Wrmsr(u32::from(b), val));
        }
        12 => {
            hv.l1_exec(GuestInstr::Rdmsr(0x480 + u32::from(b % 18)));
        }
        13 => {
            hv.l1_stage_msr_area(addr, nf_vmx::MsrArea::new());
        }
        14 => {
            hv.l1_exec(GuestInstr::Vmrun(addr));
        }
        15 => {
            hv.l1_exec(GuestInstr::Stgi);
        }
        16 => {
            hv.l1_exec(GuestInstr::Clgi);
        }
        17 => {
            hv.l2_exec(GuestInstr::Cpuid(u32::from(a)));
        }
        18 => {
            hv.l2_exec(GuestInstr::Hlt);
        }
        _ => {
            hv.l1_exec(GuestInstr::Vmxoff);
        }
    }
}

fn caps_for(vendor: CpuVendor) -> VmxCapabilities {
    VmxCapabilities::from_features(FeatureSet::default_for(vendor).sanitized(vendor))
}

fn drive(hv: &mut dyn L0Hypervisor, caps: &VmxCapabilities, bytes: &[u8]) {
    for chunk in bytes.chunks_exact(4) {
        drive_step(hv, caps, &[chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core property: snapshot → arbitrary execution → restore
    /// lands on exactly the captured state, for every backend/vendor.
    #[test]
    fn restore_after_arbitrary_execution_is_identity(
        prefix in proptest::collection::vec(any::<u8>(), 24),
        suffix in proptest::collection::vec(any::<u8>(), 40),
    ) {
        for (name, vendor, mut hv) in grid() {
            let caps = caps_for(vendor);
            drive(hv.as_mut(), &caps, &prefix);
            hv.take_trace();
            let captured = hv.snapshot();
            drive(hv.as_mut(), &caps, &suffix);
            hv.restore(&captured);
            prop_assert_eq!(
                hv.snapshot(), captured.clone(),
                "{}/{} state diverged after restore", name, vendor
            );
        }
    }

    /// Immediate round trip: `restore(snapshot(hv))` on an undirtied
    /// instance is an identity (the delta restore copies nothing).
    #[test]
    fn immediate_roundtrip_is_identity(
        prefix in proptest::collection::vec(any::<u8>(), 32),
    ) {
        for (name, vendor, mut hv) in grid() {
            let caps = caps_for(vendor);
            drive(hv.as_mut(), &caps, &prefix);
            let captured = hv.snapshot();
            hv.restore(&captured);
            prop_assert_eq!(
                hv.snapshot(), captured.clone(),
                "{}/{} immediate round trip", name, vendor
            );
        }
    }

    /// Behavioral identity: a restored host answers a probe exactly as
    /// it did at capture time (state equality is not just structural).
    #[test]
    fn restored_host_replays_probe_results(
        prefix in proptest::collection::vec(any::<u8>(), 24),
        probe_sel in any::<u8>(),
        probe_args in proptest::collection::vec(any::<u8>(), 3),
    ) {
        let step = [probe_sel, probe_args[0], probe_args[1], probe_args[2]];
        for (name, vendor, mut hv) in grid() {
            let caps = caps_for(vendor);
            drive(hv.as_mut(), &caps, &prefix);
            let captured = hv.snapshot();
            drive_step(hv.as_mut(), &caps, &step);
            let first = hv.snapshot();
            hv.restore(&captured);
            drive_step(hv.as_mut(), &caps, &step);
            prop_assert_eq!(
                hv.snapshot(), first.clone(),
                "{}/{} probe replay diverged", name, vendor
            );
        }
    }
}

/// Restoring a foreign backend's snapshot is a programming error.
#[test]
#[should_panic(expected = "cannot restore")]
fn cross_backend_restore_panics() {
    let kvm = Vkvm::new(HvConfig::default_for(CpuVendor::Intel));
    let snap: HvSnapshot = kvm.snapshot();
    let mut xen = Vxen::new(HvConfig::default_for(CpuVendor::Intel));
    xen.restore(&snap);
}

/// Boot snapshots make `reset_guest` + health reset redundant: the
/// fast path the execution engine runs on.
#[test]
fn boot_snapshot_equals_reboot_state() {
    for (name, vendor, mut hv) in grid() {
        let caps = caps_for(vendor);
        let boot = hv.snapshot();
        drive(hv.as_mut(), &caps, &[0, 1, 2, 3, 9, 200, 7, 7, 1, 0, 0, 0]);
        hv.reboot_host();
        assert_eq!(hv.snapshot(), boot, "{name}/{vendor} reboot vs boot image");
    }
}
