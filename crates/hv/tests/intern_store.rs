//! Property tests for the content-addressed snapshot store.
//!
//! Three families of invariants:
//!
//! - **Refcount accounting** ([`InternStore`]): under arbitrary
//!   interleavings of intern and release, the store's resident bytes
//!   and blob count always equal a naïve model's, every intern return
//!   value is exactly the bytes made newly resident, and a balanced
//!   sequence drains the store to empty.
//! - **Collision safety**: blobs deliberately interned under one shared
//!   digest never alias — value-distinct blobs stay independently
//!   refcounted and round-trip through release untouched.
//! - **Delta-compose ≡ deep copy** ([`SnapshotStore`]): restoring a
//!   hypervisor from an interned snapshot (heavy components swapped
//!   onto canonical shared `Arc`s) lands on exactly the same state as
//!   restoring from a pristine deep clone captured at the same moment,
//!   for every backend/vendor cell and any execution in between.

use std::collections::HashMap;
use std::sync::Arc;

use nf_hv::{HvConfig, InternStore, L0Hypervisor, SnapshotStore, Vkvm, Vvbox, Vxen};
use nf_silicon::{golden_vmcb, golden_vmcs, CrIndex, GuestInstr};
use nf_vmx::VmxCapabilities;
use nf_x86::{CpuVendor, Cr0, Cr4, FeatureSet};
use proptest::prelude::*;

/// Every (backend, vendor) cell of the grid (vvbox is Intel-only).
fn grid() -> Vec<(&'static str, CpuVendor, Box<dyn L0Hypervisor>)> {
    let mk = |vendor| HvConfig::default_for(vendor);
    vec![
        (
            "vkvm",
            CpuVendor::Intel,
            Box::new(Vkvm::new(mk(CpuVendor::Intel))) as _,
        ),
        (
            "vkvm",
            CpuVendor::Amd,
            Box::new(Vkvm::new(mk(CpuVendor::Amd))) as _,
        ),
        (
            "vxen",
            CpuVendor::Intel,
            Box::new(Vxen::new(mk(CpuVendor::Intel))) as _,
        ),
        (
            "vxen",
            CpuVendor::Amd,
            Box::new(Vxen::new(mk(CpuVendor::Amd))) as _,
        ),
        (
            "vvbox",
            CpuVendor::Intel,
            Box::new(Vvbox::new(mk(CpuVendor::Intel))) as _,
        ),
    ]
}

/// Compact fuzz-step decoder: enough surface to populate every heavy
/// snapshot component (VMCS images, VMCBs, MSR areas) on both vendors.
fn drive_step(hv: &mut dyn L0Hypervisor, caps: &VmxCapabilities, step: &[u8; 4]) {
    let [sel, a, b, c] = *step;
    let addr = 0x1000u64 * (1 + (a % 8) as u64);
    let val = u64::from(b) << 8 | u64::from(c);
    match sel % 8 {
        0 => {
            // The canonical VMX init walk: reaches a loaded, launched
            // vmcs12 so later vmwrites land in staged images.
            hv.l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
            hv.l1_exec(GuestInstr::MovToCr(
                CrIndex::Cr0,
                Cr0::PE | Cr0::PG | Cr0::NE,
            ));
            hv.l1_exec(GuestInstr::Vmxon(0x1000));
            hv.l1_exec(GuestInstr::Vmclear(0x2000));
            hv.l1_stage_vmcs_region(0x2000, caps.revision_id);
            hv.l1_exec(GuestInstr::Vmptrld(0x2000));
            let golden = golden_vmcs(caps);
            for &f in nf_vmx::VmcsField::ALL {
                if f.writable() {
                    hv.l1_exec(GuestInstr::Vmwrite(f.encoding(), golden.read(f)));
                }
            }
            hv.l1_exec(GuestInstr::Vmlaunch);
        }
        1 => {
            // The SVM walk: EFER.SVME, a staged golden VMCB, VMRUN.
            hv.l1_exec(GuestInstr::Wrmsr(
                nf_x86::Msr::Efer.index(),
                nf_x86::Efer::LME | nf_x86::Efer::LMA | nf_x86::Efer::SVME,
            ));
            hv.l1_stage_vmcb(0x5000, golden_vmcb());
            hv.l1_exec(GuestInstr::Vmrun(0x5000));
        }
        2 => {
            hv.l1_stage_vmcs_region(addr, caps.revision_id);
            hv.l1_exec(GuestInstr::Vmptrld(addr));
        }
        3 => {
            hv.l1_exec(GuestInstr::Vmwrite(u32::from(b), val));
        }
        4 => {
            hv.l1_exec(GuestInstr::Wrmsr(u32::from(b), val));
        }
        5 => {
            hv.l1_stage_msr_area(addr, nf_vmx::MsrArea::new());
        }
        6 => {
            hv.l2_exec(GuestInstr::Cpuid(u32::from(a)));
        }
        _ => {
            hv.l1_exec(GuestInstr::Rdmsr(0x480 + u32::from(b % 18)));
        }
    }
}

fn caps_for(vendor: CpuVendor) -> VmxCapabilities {
    VmxCapabilities::from_features(FeatureSet::default_for(vendor).sanitized(vendor))
}

fn drive(hv: &mut dyn L0Hypervisor, caps: &VmxCapabilities, bytes: &[u8]) {
    for chunk in bytes.chunks_exact(4) {
        drive_step(hv, caps, &[chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
}

/// The model the refcount property checks against: digest → list of
/// (value, refs, bytes), mirroring the store's collision chains.
#[derive(Default)]
struct Model {
    chains: HashMap<u64, Vec<(Vec<u8>, usize, usize)>>,
}

impl Model {
    fn intern(&mut self, value: &[u8], digest: u64, bytes: usize) -> usize {
        let chain = self.chains.entry(digest).or_default();
        if let Some(e) = chain.iter_mut().find(|e| e.0 == value) {
            e.1 += 1;
            return 0;
        }
        chain.push((value.to_vec(), 1, bytes));
        bytes
    }

    fn release(&mut self, value: &[u8], digest: u64) -> usize {
        let chain = self.chains.get_mut(&digest).expect("model holds digest");
        let idx = chain.iter().position(|e| e.0 == value).expect("model blob");
        chain[idx].1 -= 1;
        if chain[idx].1 > 0 {
            return 0;
        }
        chain.remove(idx).2
    }

    fn resident_bytes(&self) -> usize {
        self.chains.values().flatten().map(|e| e.2).sum()
    }

    fn blob_count(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary intern/release interleavings: the store's accounting
    /// always matches the naïve model, intern-by-intern.
    #[test]
    fn refcounts_match_a_naive_model(
        ops in proptest::collection::vec(any::<u32>(), 120),
    ) {
        let mut store: InternStore<Vec<u8>> = InternStore::new();
        let mut model = Model::default();
        // Live handles the test still owes a release for.
        let mut held: Vec<(Arc<Vec<u8>>, u64)> = Vec::new();
        for op in ops {
            // A narrow value/digest space forces dedup hits, collision
            // chains (digest = value % 3 maps many values to one
            // digest), and interleaved multi-holder releases.
            let value = vec![(op % 7) as u8; 1 + (op % 5) as usize];
            let digest = u64::from(op % 3);
            let bytes = value.len() * 10;
            if op % 4 != 0 || held.is_empty() {
                let mut blob = Arc::new(value.clone());
                let charged = store.intern(&mut blob, u128::from(digest), bytes);
                prop_assert_eq!(charged, model.intern(&value, digest, bytes));
                held.push((blob, digest));
            } else {
                let (blob, digest) = held.swap_remove((op / 4) as usize % held.len());
                let freed = store.release(&blob, u128::from(digest));
                prop_assert_eq!(freed, model.release(&blob, digest));
            }
            prop_assert_eq!(store.resident_bytes(), model.resident_bytes());
            prop_assert_eq!(store.blob_count(), model.blob_count());
        }
        // Balance the books: after releasing every held handle the
        // store must be empty again.
        for (blob, digest) in held.drain(..) {
            store.release(&blob, u128::from(digest));
        }
        prop_assert_eq!(store.resident_bytes(), 0);
        prop_assert_eq!(store.blob_count(), 0);
    }

    /// Value-distinct blobs interned under one digest never alias:
    /// each keeps its own refcount and round-trips through release
    /// with its own footprint.
    #[test]
    fn colliding_digests_round_trip_without_aliasing(
        values in proptest::collection::vec(any::<u64>(), 24),
    ) {
        const DIGEST: u128 = 0xdead_beef;
        let mut store: InternStore<u64> = InternStore::new();
        let mut held: Vec<Arc<u64>> = Vec::new();
        for v in &values {
            let mut blob = Arc::new(*v);
            store.intern(&mut blob, DIGEST, 8);
            held.push(blob);
        }
        let mut unique: Vec<u64> = values.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(store.blob_count(), unique.len());
        prop_assert_eq!(store.resident_bytes(), unique.len() * 8);
        for v in &unique {
            let refs = store.refs(&Arc::new(*v), DIGEST);
            let want = values.iter().filter(|x| *x == v).count();
            prop_assert_eq!(refs, want, "refcount of {} under collision", v);
        }
        // Distinct blobs sharing the digest must not have been
        // canonicalized onto each other.
        for (i, a) in held.iter().enumerate() {
            for b in &held[i + 1..] {
                if **a != **b {
                    prop_assert!(!Arc::ptr_eq(a, b), "distinct blobs aliased");
                }
            }
        }
        for blob in held.drain(..) {
            store.release(&blob, DIGEST);
        }
        prop_assert_eq!(store.blob_count(), 0);
        prop_assert_eq!(store.resident_bytes(), 0);
    }

    /// Interning a snapshot is value-preserving, dedups a back-to-back
    /// capture completely, and releases back to an empty store — for
    /// every backend/vendor cell.
    #[test]
    fn snapshot_interning_preserves_value_and_balances(
        prefix in proptest::collection::vec(any::<u8>(), 24),
    ) {
        for (name, vendor, mut hv) in grid() {
            let caps = caps_for(vendor);
            drive(hv.as_mut(), &caps, &prefix);
            let pristine = hv.snapshot();
            let mut store = SnapshotStore::new();
            let mut first = pristine.clone();
            let charged = store.intern(&mut first);
            prop_assert_eq!(charged, store.resident_bytes());
            prop_assert!(
                first == pristine,
                "{}/{} interning changed the snapshot's value", name, vendor
            );
            // A back-to-back capture of the unchanged host dedups to
            // zero newly-resident bytes.
            let mut second = hv.snapshot();
            prop_assert_eq!(
                store.intern(&mut second), 0,
                "{}/{} identical capture charged bytes", name, vendor
            );
            prop_assert_eq!(store.release(&second), 0, "other holder remains");
            let freed = store.release(&first);
            prop_assert_eq!(freed, charged, "{}/{} release imbalance", name, vendor);
            prop_assert_eq!(store.resident_bytes(), 0);
            prop_assert_eq!(store.blob_count(), 0);
        }
    }

    /// The tentpole equivalence: restoring from an interned snapshot
    /// (shared canonical components, delta-composed at restore time)
    /// must land on exactly the state a deep-copy restore lands on.
    #[test]
    fn interned_restore_equals_deep_copy_restore(
        prefix in proptest::collection::vec(any::<u8>(), 24),
        suffix in proptest::collection::vec(any::<u8>(), 32),
    ) {
        for (name, vendor, mut hv) in grid() {
            let caps = caps_for(vendor);
            drive(hv.as_mut(), &caps, &prefix);
            let deep = hv.snapshot();
            let mut store = SnapshotStore::new();
            let mut interned = deep.clone();
            store.intern(&mut interned);
            drive(hv.as_mut(), &caps, &suffix);

            hv.restore(&interned);
            let via_interned = hv.snapshot();
            drive(hv.as_mut(), &caps, &suffix);
            hv.restore(&deep);
            let via_deep = hv.snapshot();

            prop_assert!(
                via_interned == via_deep,
                "{}/{} interned restore diverged from deep-copy restore",
                name, vendor
            );
            prop_assert!(
                via_deep == deep,
                "{}/{} restore is not an identity", name, vendor
            );
        }
    }
}
