//! VM-exit reasons (Intel basic exit reasons and SVM exit codes).

/// Intel VT-x basic exit reasons (SDM Appendix C), restricted to the set
/// the framework's instruction templates and hypervisors exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum ExitReason {
    /// Exception or NMI.
    ExceptionNmi = 0,
    /// External interrupt.
    ExternalInterrupt = 1,
    /// Triple fault.
    TripleFault = 2,
    /// CPUID instruction.
    Cpuid = 10,
    /// HLT instruction.
    Hlt = 12,
    /// INVLPG instruction.
    Invlpg = 14,
    /// RDPMC instruction.
    Rdpmc = 15,
    /// RDTSC instruction.
    Rdtsc = 16,
    /// VMCALL instruction.
    Vmcall = 18,
    /// VMCLEAR instruction.
    Vmclear = 19,
    /// VMLAUNCH instruction.
    Vmlaunch = 20,
    /// VMPTRLD instruction.
    Vmptrld = 21,
    /// VMPTRST instruction.
    Vmptrst = 22,
    /// VMREAD instruction.
    Vmread = 23,
    /// VMRESUME instruction.
    Vmresume = 24,
    /// VMWRITE instruction.
    Vmwrite = 25,
    /// VMXOFF instruction.
    Vmxoff = 26,
    /// VMXON instruction.
    Vmxon = 27,
    /// Control-register access.
    CrAccess = 28,
    /// Debug-register access.
    DrAccess = 29,
    /// I/O instruction.
    IoInstruction = 30,
    /// RDMSR instruction.
    Rdmsr = 31,
    /// WRMSR instruction.
    Wrmsr = 32,
    /// VM entry failed: invalid guest state.
    EntryFailGuestState = 33,
    /// VM entry failed: MSR loading.
    EntryFailMsrLoad = 34,
    /// MWAIT instruction.
    Mwait = 36,
    /// Monitor trap flag.
    MonitorTrapFlag = 37,
    /// MONITOR instruction.
    Monitor = 39,
    /// PAUSE instruction.
    Pause = 40,
    /// VM entry failed: machine check.
    EntryFailMachineCheck = 41,
    /// EPT violation.
    EptViolation = 48,
    /// EPT misconfiguration.
    EptMisconfig = 49,
    /// INVEPT instruction.
    Invept = 50,
    /// RDTSCP instruction.
    Rdtscp = 51,
    /// Preemption timer expired.
    PreemptionTimer = 52,
    /// INVVPID instruction.
    Invvpid = 53,
    /// WBINVD instruction.
    Wbinvd = 54,
    /// XSETBV instruction.
    Xsetbv = 55,
    /// RDRAND instruction.
    Rdrand = 57,
    /// INVPCID instruction.
    Invpcid = 58,
    /// RDSEED instruction.
    Rdseed = 61,
}

impl ExitReason {
    /// Bit 31 of the exit-reason field: VM-entry failure indicator.
    pub const ENTRY_FAILURE: u32 = 1 << 31;

    /// Encodes the exit reason as the 32-bit VMCS field value.
    pub const fn encode(self, entry_failure: bool) -> u32 {
        self as u16 as u32
            | if entry_failure {
                Self::ENTRY_FAILURE
            } else {
                0
            }
    }

    /// Returns `true` for exits caused by VMX instructions — the exits an
    /// L0 hypervisor must *reflect* to L1 when L1 is a hypervisor.
    pub const fn is_vmx_instruction(self) -> bool {
        matches!(
            self,
            ExitReason::Vmcall
                | ExitReason::Vmclear
                | ExitReason::Vmlaunch
                | ExitReason::Vmptrld
                | ExitReason::Vmptrst
                | ExitReason::Vmread
                | ExitReason::Vmresume
                | ExitReason::Vmwrite
                | ExitReason::Vmxoff
                | ExitReason::Vmxon
                | ExitReason::Invept
                | ExitReason::Invvpid
        )
    }
}

/// AMD-V (SVM) exit codes (APM Vol. 2, Appendix C), modeled subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum SvmExitCode {
    /// CR0 read.
    Cr0Read = 0x00,
    /// CR0 write.
    Cr0Write = 0x10,
    /// CR3 write.
    Cr3Write = 0x13,
    /// CR4 write.
    Cr4Write = 0x14,
    /// INTR (physical interrupt).
    Intr = 0x60,
    /// NMI.
    Nmi = 0x61,
    /// VINTR (virtual interrupt window).
    Vintr = 0x64,
    /// CPUID instruction.
    Cpuid = 0x72,
    /// IRET instruction.
    Iret = 0x74,
    /// PAUSE instruction.
    Pause = 0x77,
    /// HLT instruction.
    Hlt = 0x78,
    /// INVLPG instruction.
    Invlpg = 0x79,
    /// I/O instruction.
    Ioio = 0x7b,
    /// MSR access.
    Msr = 0x7c,
    /// Shutdown (triple fault).
    Shutdown = 0x7f,
    /// VMRUN instruction.
    Vmrun = 0x80,
    /// VMMCALL instruction.
    Vmmcall = 0x81,
    /// VMLOAD instruction.
    Vmload = 0x82,
    /// VMSAVE instruction.
    Vmsave = 0x83,
    /// STGI instruction.
    Stgi = 0x84,
    /// CLGI instruction.
    Clgi = 0x85,
    /// SKINIT instruction.
    Skinit = 0x86,
    /// RDTSCP instruction.
    Rdtscp = 0x87,
    /// Nested page fault.
    NestedPageFault = 0x400,
    /// AVIC incomplete IPI.
    AvicIncompleteIpi = 0x401,
    /// AVIC access to unaccelerated register — the spurious exit that
    /// exposes Xen's `LMA && !PG` bug (paper §5.5.2, bug #5).
    AvicNoaccel = 0x402,
    /// Invalid guest state in the VMCB (`VMEXIT_INVALID`; encoded as -1).
    Invalid = 0xffff_ffff,
}

impl SvmExitCode {
    /// Returns `true` for exits caused by SVM instructions.
    pub const fn is_svm_instruction(self) -> bool {
        matches!(
            self,
            SvmExitCode::Vmrun
                | SvmExitCode::Vmmcall
                | SvmExitCode::Vmload
                | SvmExitCode::Vmsave
                | SvmExitCode::Stgi
                | SvmExitCode::Clgi
                | SvmExitCode::Skinit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_with_entry_failure_bit() {
        let enc = ExitReason::EntryFailGuestState.encode(true);
        assert_eq!(enc & 0xffff, 33);
        assert_ne!(enc & ExitReason::ENTRY_FAILURE, 0);
        assert_eq!(ExitReason::Cpuid.encode(false), 10);
    }

    #[test]
    fn vmx_instruction_classification() {
        assert!(ExitReason::Vmlaunch.is_vmx_instruction());
        assert!(ExitReason::Vmresume.is_vmx_instruction());
        assert!(!ExitReason::Cpuid.is_vmx_instruction());
        assert!(!ExitReason::EptViolation.is_vmx_instruction());
    }

    #[test]
    fn svm_instruction_classification() {
        assert!(SvmExitCode::Vmrun.is_svm_instruction());
        assert!(SvmExitCode::Stgi.is_svm_instruction());
        assert!(!SvmExitCode::Cpuid.is_svm_instruction());
        assert!(!SvmExitCode::AvicNoaccel.is_svm_instruction());
    }
}
