//! The VMCS field catalogue.
//!
//! The layout follows Intel SDM Volume 3, Appendix B: fields are grouped
//! by width (16/32/64-bit and natural-width) and by area (control,
//! read-only data, guest state, host state), with their architectural
//! encodings. The catalogue defines **165 fields spanning exactly 8000
//! bits** — the VM-state geometry the paper's Figure 5 experiment is
//! defined over (natural-width fields serialize as 64 bits).

/// Field width class (SDM B.1–B.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldWidth {
    /// 16-bit fields.
    W16,
    /// 32-bit fields.
    W32,
    /// 64-bit fields.
    W64,
    /// Natural-width fields (64-bit on the modeled processor).
    Natural,
}

impl FieldWidth {
    /// Number of bits this field contributes to the serialized VM state.
    pub const fn bits(self) -> u32 {
        match self {
            FieldWidth::W16 => 16,
            FieldWidth::W32 => 32,
            FieldWidth::W64 | FieldWidth::Natural => 64,
        }
    }

    /// Mask of representable values.
    pub const fn mask(self) -> u64 {
        match self {
            FieldWidth::W16 => 0xffff,
            FieldWidth::W32 => 0xffff_ffff,
            FieldWidth::W64 | FieldWidth::Natural => u64::MAX,
        }
    }
}

/// VMCS area a field belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldGroup {
    /// VM-execution, VM-entry and VM-exit control fields.
    Control,
    /// Read-only exit-information fields.
    ReadOnly,
    /// Guest-state area.
    Guest,
    /// Host-state area.
    Host,
}

macro_rules! vmcs_fields {
    ($( $variant:ident => ($enc:expr, $width:ident, $group:ident), )+) => {
        /// A VMCS field (SDM Appendix B).
        ///
        /// Variant names follow the SDM/KVM field naming, camel-cased per
        /// Rust convention.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u16)]
        #[allow(clippy::enum_variant_names)]
        pub enum VmcsField {
            $(
                #[doc = concat!("VMCS field `", stringify!($variant), "`.")]
                $variant,
            )+
        }

        impl VmcsField {
            /// Every field, in serialization order.
            pub const ALL: &'static [VmcsField] = &[$(VmcsField::$variant),+];

            /// Architectural field encoding (the `vmread`/`vmwrite` operand).
            pub const fn encoding(self) -> u32 {
                match self { $(VmcsField::$variant => $enc),+ }
            }

            /// Width class of the field.
            pub const fn width(self) -> FieldWidth {
                match self { $(VmcsField::$variant => FieldWidth::$width),+ }
            }

            /// Area the field belongs to.
            pub const fn group(self) -> FieldGroup {
                match self { $(VmcsField::$variant => FieldGroup::$group),+ }
            }

            /// Field name as written in the SDM-derived catalogue.
            pub const fn name(self) -> &'static str {
                match self { $(VmcsField::$variant => stringify!($variant)),+ }
            }
        }
    };
}

vmcs_fields! {
    // --- 16-bit control fields (B.1.1).
    Vpid => (0x0000, W16, Control),
    PostedIntrNv => (0x0002, W16, Control),
    EptpIndex => (0x0004, W16, Control),
    // --- 16-bit guest-state fields (B.1.2).
    GuestEsSelector => (0x0800, W16, Guest),
    GuestCsSelector => (0x0802, W16, Guest),
    GuestSsSelector => (0x0804, W16, Guest),
    GuestDsSelector => (0x0806, W16, Guest),
    GuestFsSelector => (0x0808, W16, Guest),
    GuestGsSelector => (0x080a, W16, Guest),
    GuestLdtrSelector => (0x080c, W16, Guest),
    GuestTrSelector => (0x080e, W16, Guest),
    GuestIntrStatus => (0x0810, W16, Guest),
    PmlIndex => (0x0812, W16, Guest),
    // --- 16-bit host-state fields (B.1.3).
    HostEsSelector => (0x0c00, W16, Host),
    HostCsSelector => (0x0c02, W16, Host),
    HostSsSelector => (0x0c04, W16, Host),
    HostDsSelector => (0x0c06, W16, Host),
    HostFsSelector => (0x0c08, W16, Host),
    HostGsSelector => (0x0c0a, W16, Host),
    HostTrSelector => (0x0c0c, W16, Host),
    // --- 64-bit control fields (B.2.1).
    IoBitmapA => (0x2000, W64, Control),
    IoBitmapB => (0x2002, W64, Control),
    MsrBitmap => (0x2004, W64, Control),
    VmExitMsrStoreAddr => (0x2006, W64, Control),
    VmExitMsrLoadAddr => (0x2008, W64, Control),
    VmEntryMsrLoadAddr => (0x200a, W64, Control),
    ExecutiveVmcsPointer => (0x200c, W64, Control),
    PmlAddress => (0x200e, W64, Control),
    TscOffset => (0x2010, W64, Control),
    VirtualApicPageAddr => (0x2012, W64, Control),
    ApicAccessAddr => (0x2014, W64, Control),
    PostedIntrDescAddr => (0x2016, W64, Control),
    VmFunctionControl => (0x2018, W64, Control),
    EptPointer => (0x201a, W64, Control),
    EoiExitBitmap0 => (0x201c, W64, Control),
    EoiExitBitmap1 => (0x201e, W64, Control),
    EoiExitBitmap2 => (0x2020, W64, Control),
    EoiExitBitmap3 => (0x2022, W64, Control),
    EptpListAddress => (0x2024, W64, Control),
    VmreadBitmap => (0x2026, W64, Control),
    VmwriteBitmap => (0x2028, W64, Control),
    VeInfoAddress => (0x202a, W64, Control),
    XssExitBitmap => (0x202c, W64, Control),
    EnclsExitingBitmap => (0x202e, W64, Control),
    SpptPointer => (0x2030, W64, Control),
    TscMultiplier => (0x2032, W64, Control),
    HlatPointer => (0x2040, W64, Control),
    // --- 64-bit read-only data field (B.2.2).
    GuestPhysicalAddress => (0x2400, W64, ReadOnly),
    // --- 64-bit guest-state fields (B.2.3).
    VmcsLinkPointer => (0x2800, W64, Guest),
    GuestIa32Debugctl => (0x2802, W64, Guest),
    GuestIa32Pat => (0x2804, W64, Guest),
    GuestIa32Efer => (0x2806, W64, Guest),
    GuestIa32PerfGlobalCtrl => (0x2808, W64, Guest),
    GuestPdpte0 => (0x280a, W64, Guest),
    GuestPdpte1 => (0x280c, W64, Guest),
    GuestPdpte2 => (0x280e, W64, Guest),
    GuestPdpte3 => (0x2810, W64, Guest),
    GuestBndcfgs => (0x2812, W64, Guest),
    GuestIa32RtitCtl => (0x2814, W64, Guest),
    GuestIa32Pkrs => (0x2818, W64, Guest),
    // --- 64-bit host-state fields (B.2.4).
    HostIa32Pat => (0x2c00, W64, Host),
    HostIa32Efer => (0x2c02, W64, Host),
    HostIa32PerfGlobalCtrl => (0x2c04, W64, Host),
    HostIa32Pkrs => (0x2c06, W64, Host),
    // --- 32-bit control fields (B.3.1).
    PinBasedVmExecControl => (0x4000, W32, Control),
    CpuBasedVmExecControl => (0x4002, W32, Control),
    ExceptionBitmap => (0x4004, W32, Control),
    PageFaultErrorCodeMask => (0x4006, W32, Control),
    PageFaultErrorCodeMatch => (0x4008, W32, Control),
    Cr3TargetCount => (0x400a, W32, Control),
    VmExitControls => (0x400c, W32, Control),
    VmExitMsrStoreCount => (0x400e, W32, Control),
    VmExitMsrLoadCount => (0x4010, W32, Control),
    VmEntryControls => (0x4012, W32, Control),
    VmEntryMsrLoadCount => (0x4014, W32, Control),
    VmEntryIntrInfoField => (0x4016, W32, Control),
    VmEntryExceptionErrorCode => (0x4018, W32, Control),
    VmEntryInstructionLen => (0x401a, W32, Control),
    TprThreshold => (0x401c, W32, Control),
    SecondaryVmExecControl => (0x401e, W32, Control),
    PleGap => (0x4020, W32, Control),
    PleWindow => (0x4022, W32, Control),
    // --- 32-bit read-only data fields (B.3.2).
    VmInstructionError => (0x4400, W32, ReadOnly),
    VmExitReason => (0x4402, W32, ReadOnly),
    VmExitIntrInfo => (0x4404, W32, ReadOnly),
    VmExitIntrErrorCode => (0x4406, W32, ReadOnly),
    IdtVectoringInfoField => (0x4408, W32, ReadOnly),
    IdtVectoringErrorCode => (0x440a, W32, ReadOnly),
    VmExitInstructionLen => (0x440c, W32, ReadOnly),
    VmxInstructionInfo => (0x440e, W32, ReadOnly),
    // --- 32-bit guest-state fields (B.3.3).
    GuestEsLimit => (0x4800, W32, Guest),
    GuestCsLimit => (0x4802, W32, Guest),
    GuestSsLimit => (0x4804, W32, Guest),
    GuestDsLimit => (0x4806, W32, Guest),
    GuestFsLimit => (0x4808, W32, Guest),
    GuestGsLimit => (0x480a, W32, Guest),
    GuestLdtrLimit => (0x480c, W32, Guest),
    GuestTrLimit => (0x480e, W32, Guest),
    GuestGdtrLimit => (0x4810, W32, Guest),
    GuestIdtrLimit => (0x4812, W32, Guest),
    GuestEsArBytes => (0x4814, W32, Guest),
    GuestCsArBytes => (0x4816, W32, Guest),
    GuestSsArBytes => (0x4818, W32, Guest),
    GuestDsArBytes => (0x481a, W32, Guest),
    GuestFsArBytes => (0x481c, W32, Guest),
    GuestGsArBytes => (0x481e, W32, Guest),
    GuestLdtrArBytes => (0x4820, W32, Guest),
    GuestTrArBytes => (0x4822, W32, Guest),
    GuestInterruptibilityInfo => (0x4824, W32, Guest),
    GuestActivityState => (0x4826, W32, Guest),
    GuestSmbase => (0x4828, W32, Guest),
    GuestSysenterCs => (0x482a, W32, Guest),
    VmxPreemptionTimerValue => (0x482e, W32, Guest),
    // --- 32-bit host-state field (B.3.4).
    HostIa32SysenterCs => (0x4c00, W32, Host),
    // --- Natural-width control fields (B.4.1).
    Cr0GuestHostMask => (0x6000, Natural, Control),
    Cr4GuestHostMask => (0x6002, Natural, Control),
    Cr0ReadShadow => (0x6004, Natural, Control),
    Cr4ReadShadow => (0x6006, Natural, Control),
    Cr3TargetValue0 => (0x6008, Natural, Control),
    Cr3TargetValue1 => (0x600a, Natural, Control),
    Cr3TargetValue2 => (0x600c, Natural, Control),
    Cr3TargetValue3 => (0x600e, Natural, Control),
    // --- Natural-width read-only data fields (B.4.2).
    ExitQualification => (0x6400, Natural, ReadOnly),
    IoRcx => (0x6402, Natural, ReadOnly),
    IoRsi => (0x6404, Natural, ReadOnly),
    IoRdi => (0x6406, Natural, ReadOnly),
    IoRip => (0x6408, Natural, ReadOnly),
    GuestLinearAddress => (0x640a, Natural, ReadOnly),
    // --- Natural-width guest-state fields (B.4.3).
    GuestCr0 => (0x6800, Natural, Guest),
    GuestCr3 => (0x6802, Natural, Guest),
    GuestCr4 => (0x6804, Natural, Guest),
    GuestEsBase => (0x6806, Natural, Guest),
    GuestCsBase => (0x6808, Natural, Guest),
    GuestSsBase => (0x680a, Natural, Guest),
    GuestDsBase => (0x680c, Natural, Guest),
    GuestFsBase => (0x680e, Natural, Guest),
    GuestGsBase => (0x6810, Natural, Guest),
    GuestLdtrBase => (0x6812, Natural, Guest),
    GuestTrBase => (0x6814, Natural, Guest),
    GuestGdtrBase => (0x6816, Natural, Guest),
    GuestIdtrBase => (0x6818, Natural, Guest),
    GuestDr7 => (0x681a, Natural, Guest),
    GuestRsp => (0x681c, Natural, Guest),
    GuestRip => (0x681e, Natural, Guest),
    GuestRflags => (0x6820, Natural, Guest),
    GuestPendingDbgExceptions => (0x6822, Natural, Guest),
    GuestSysenterEsp => (0x6824, Natural, Guest),
    GuestSysenterEip => (0x6826, Natural, Guest),
    GuestSCet => (0x6828, Natural, Guest),
    GuestSsp => (0x682a, Natural, Guest),
    GuestIntrSspTableAddr => (0x682c, Natural, Guest),
    // --- Natural-width host-state fields (B.4.4).
    HostCr0 => (0x6c00, Natural, Host),
    HostCr3 => (0x6c02, Natural, Host),
    HostCr4 => (0x6c04, Natural, Host),
    HostFsBase => (0x6c06, Natural, Host),
    HostGsBase => (0x6c08, Natural, Host),
    HostTrBase => (0x6c0a, Natural, Host),
    HostGdtrBase => (0x6c0c, Natural, Host),
    HostIdtrBase => (0x6c0e, Natural, Host),
    HostIa32SysenterEsp => (0x6c10, Natural, Host),
    HostIa32SysenterEip => (0x6c12, Natural, Host),
    HostRsp => (0x6c14, Natural, Host),
    HostRip => (0x6c16, Natural, Host),
    HostSCet => (0x6c18, Natural, Host),
    HostSsp => (0x6c1a, Natural, Host),
}

/// Number of fields in the catalogue.
pub const FIELD_COUNT: usize = VmcsField::ALL.len();

/// Total serialized VM-state size in bits (the paper's "8,000-bit VM
/// state across 165 fields").
pub const STATE_BITS: u32 = {
    let mut total = 0;
    let mut i = 0;
    while i < VmcsField::ALL.len() {
        total += VmcsField::ALL[i].width().bits();
        i += 1;
    }
    total
};

/// Byte offset of every field inside the serialized seed layout, in
/// catalogue order — the geometry [`crate::Vmcs::from_bytes`] decodes
/// and structure-aware mutators write through. Derived from the width
/// table, so the two can never drift apart.
pub const SEED_OFFSETS: [usize; FIELD_COUNT] = {
    let mut offsets = [0usize; FIELD_COUNT];
    let mut off = 0usize;
    let mut i = 0;
    while i < FIELD_COUNT {
        offsets[i] = off;
        off += (VmcsField::ALL[i].width().bits() / 8) as usize;
        i += 1;
    }
    offsets
};

impl VmcsField {
    /// Dense index of the field inside [`VmcsField::ALL`], used as the
    /// storage slot.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Byte offset of the field in the serialized seed layout (the
    /// little-endian byte stream `Vmcs::from_bytes` reads).
    pub const fn seed_offset(self) -> usize {
        SEED_OFFSETS[self as usize]
    }

    /// Byte length of the field in the serialized seed layout.
    pub const fn seed_len(self) -> usize {
        (self.width().bits() / 8) as usize
    }

    /// Looks a field up by architectural encoding.
    pub fn from_encoding(enc: u32) -> Option<VmcsField> {
        VmcsField::ALL.iter().copied().find(|f| f.encoding() == enc)
    }

    /// Returns `true` if `vmwrite` from a guest hypervisor may set the
    /// field (read-only data fields reject writes with a VMX instruction
    /// error on real hardware).
    pub const fn writable(self) -> bool {
        !matches!(self.group(), FieldGroup::ReadOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn paper_geometry_165_fields_8000_bits() {
        assert_eq!(FIELD_COUNT, 165);
        assert_eq!(STATE_BITS, 8000);
    }

    #[test]
    fn encodings_unique() {
        let encs: BTreeSet<u32> = VmcsField::ALL.iter().map(|f| f.encoding()).collect();
        assert_eq!(encs.len(), FIELD_COUNT);
    }

    #[test]
    fn encoding_width_class_consistent() {
        for &f in VmcsField::ALL {
            // SDM encodes the width class in encoding bits 14:13.
            let class = (f.encoding() >> 13) & 3;
            let expected = match f.width() {
                FieldWidth::W16 => 0,
                FieldWidth::W64 => 1,
                FieldWidth::W32 => 2,
                FieldWidth::Natural => 3,
            };
            assert_eq!(class, expected, "{}", f.name());
        }
    }

    #[test]
    fn from_encoding_roundtrip() {
        for &f in VmcsField::ALL {
            assert_eq!(VmcsField::from_encoding(f.encoding()), Some(f));
        }
        assert_eq!(VmcsField::from_encoding(0xdead_0000), None);
    }

    #[test]
    fn read_only_fields_not_writable() {
        assert!(!VmcsField::VmExitReason.writable());
        assert!(!VmcsField::ExitQualification.writable());
        assert!(VmcsField::GuestCr0.writable());
        assert!(VmcsField::PinBasedVmExecControl.writable());
    }

    #[test]
    fn indices_dense_and_ordered() {
        for (i, &f) in VmcsField::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn seed_offsets_match_serialization_geometry() {
        // The offset table is exactly the cursor Vmcs::from_bytes walks:
        // contiguous, in catalogue order, ending at the 1000-byte seed.
        let mut off = 0usize;
        for &f in VmcsField::ALL {
            assert_eq!(f.seed_offset(), off, "{}", f.name());
            off += f.seed_len();
        }
        assert_eq!(off, STATE_BITS as usize / 8);
    }

    #[test]
    fn group_census_matches_sdm_shape() {
        let count = |g: FieldGroup| VmcsField::ALL.iter().filter(|f| f.group() == g).count();
        assert_eq!(count(FieldGroup::Control), 3 + 27 + 18 + 8);
        assert_eq!(count(FieldGroup::ReadOnly), 1 + 8 + 6);
        assert_eq!(count(FieldGroup::Host), 7 + 4 + 1 + 14);
        assert_eq!(count(FieldGroup::Guest), 10 + 12 + 23 + 23);
    }
}
