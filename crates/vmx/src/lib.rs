//! VMX/SVM data structures for the NecoFuzz reproduction.
//!
//! This crate defines the structures hardware-assisted virtualization is
//! *about*:
//!
//! - the [`Vmcs`] with its [`VmcsField`] catalogue — 165 fields spanning
//!   exactly 8000 bits, the geometry the paper's Figure 5 experiment is
//!   defined over;
//! - control-field bit definitions ([`controls`]);
//! - the capability surface ([`VmxCapabilities`]) derived from a vCPU
//!   [`nf_x86::FeatureSet`];
//! - VM-exit reasons for both vendors ([`ExitReason`], [`SvmExitCode`]);
//! - the AMD [`Vmcb`]; and
//! - MSR-load/store areas ([`MsrArea`]).
//!
//! Behavioural semantics (what VM entry *accepts*) live in `nf-silicon`.

pub mod caps;
pub mod controls;
pub mod exit;
pub mod field;
pub mod msr_area;
pub mod vmcb;
pub mod vmcs;

pub use caps::{CtrlKind, VmxCapabilities};
pub use exit::{ExitReason, SvmExitCode};
pub use field::{FieldGroup, FieldWidth, VmcsField, FIELD_COUNT, STATE_BITS};
pub use msr_area::{MsrArea, MsrAreaEntry};
pub use vmcb::{Vmcb, VmcbControl, VmcbSave};
pub use vmcs::{Vmcs, VmcsState};
