//! VMX capability MSRs derived from the vCPU configuration.
//!
//! `IA32_VMX_*` MSR pairs tell software which control bits *must* be 1
//! (allowed-0 word) and which *may* be 1 (allowed-1 word). The vCPU
//! configurator changes the [`FeatureSet`]; this module turns a feature
//! set into the capability surface both the silicon model and the
//! hypervisors consult — which is how configuration choices propagate
//! into VM-entry validity, exactly the interaction the paper's
//! configurator exploits (§3.5).

use crate::controls::{entry, exit, pin, proc, proc2};
use nf_x86::{CpuFeature, Cr0, Cr4, FeatureSet};

/// Which VMCS control word a capability query refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Pin-based VM-execution controls.
    PinBased,
    /// Primary processor-based VM-execution controls.
    ProcBased,
    /// Secondary processor-based VM-execution controls.
    ProcBased2,
    /// VM-exit controls.
    Exit,
    /// VM-entry controls.
    Entry,
}

impl CtrlKind {
    /// All control words, in check order.
    pub const ALL: [CtrlKind; 5] = [
        CtrlKind::PinBased,
        CtrlKind::ProcBased,
        CtrlKind::ProcBased2,
        CtrlKind::Exit,
        CtrlKind::Entry,
    ];
}

/// The VMX capability surface of a configured virtual CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmxCapabilities {
    /// The feature set the capabilities were derived from.
    pub features: FeatureSet,
    /// VMCS revision identifier (IA32_VMX_BASIC bits 30:0).
    pub revision_id: u32,
}

impl VmxCapabilities {
    /// Revision identifier used by the modeled processor.
    pub const REVISION: u32 = 0x0000_4e65; // "Ne"

    /// Derives the capability surface from a sanitized feature set.
    pub fn from_features(features: FeatureSet) -> Self {
        VmxCapabilities {
            features,
            revision_id: Self::REVISION,
        }
    }

    /// Returns the `(allowed0, allowed1)` pair for a control word:
    /// `allowed0` bits must be 1, and only `allowed1` bits may be 1.
    pub fn allowed(&self, kind: CtrlKind) -> (u32, u32) {
        match kind {
            CtrlKind::PinBased => {
                let mut a1 = pin::DEFINED | pin::DEFAULT1;
                if !self.features.contains(CpuFeature::VirtualNmi) {
                    a1 &= !pin::VIRTUAL_NMIS;
                }
                if !self.features.contains(CpuFeature::PostedInterrupts) {
                    a1 &= !pin::POSTED_INTR;
                }
                (pin::DEFAULT1, a1)
            }
            CtrlKind::ProcBased => {
                let a1 = proc::DEFINED | proc::DEFAULT1;
                (proc::DEFAULT1, a1)
            }
            CtrlKind::ProcBased2 => {
                let mut a1 = proc2::DEFINED;
                let f = &self.features;
                if !f.contains(CpuFeature::Ept) {
                    a1 &= !(proc2::ENABLE_EPT | proc2::ENABLE_PML | proc2::EPT_VIOLATION_VE);
                }
                if !f.contains(CpuFeature::UnrestrictedGuest) {
                    a1 &= !proc2::UNRESTRICTED_GUEST;
                }
                if !f.contains(CpuFeature::Vpid) {
                    a1 &= !proc2::ENABLE_VPID;
                }
                if !f.contains(CpuFeature::VmcsShadowing) {
                    a1 &= !proc2::VMCS_SHADOWING;
                }
                if !f.contains(CpuFeature::Apicv) {
                    a1 &= !(proc2::APIC_REGISTER_VIRT
                        | proc2::VIRT_INTR_DELIVERY
                        | proc2::VIRT_X2APIC);
                }
                if !f.contains(CpuFeature::Sgx) {
                    a1 &= !proc2::ENCLS_EXITING;
                }
                if !f.contains(CpuFeature::IntelPt) {
                    a1 &= !(proc2::PT_CONCEAL_VMX | proc2::PT_USE_GPA);
                }
                if !f.contains(CpuFeature::TscScaling) {
                    a1 &= !proc2::TSC_SCALING;
                }
                (0, a1)
            }
            CtrlKind::Exit => {
                let a1 = exit::DEFINED | exit::DEFAULT1;
                (exit::DEFAULT1, a1)
            }
            CtrlKind::Entry => {
                let a1 = entry::DEFINED | entry::DEFAULT1;
                (entry::DEFAULT1, a1)
            }
        }
    }

    /// Checks a control-word value against the capability pair.
    pub fn control_ok(&self, kind: CtrlKind, value: u32) -> bool {
        let (a0, a1) = self.allowed(kind);
        value & a0 == a0 && value & !a1 == 0
    }

    /// Rounds a control word to the nearest legal value: forces allowed-0
    /// bits on and clears not-allowed-1 bits — the same adjustment the
    /// validator's rounding pass applies.
    pub fn round_control(&self, kind: CtrlKind, value: u32) -> u32 {
        let (a0, a1) = self.allowed(kind);
        (value | a0) & a1
    }

    /// `IA32_VMX_CR0_FIXED0`: CR0 bits that must be 1 in VMX operation.
    /// With unrestricted guest enabled, `PE` and `PG` may be 0.
    pub fn cr0_fixed0(&self, unrestricted_active: bool) -> u64 {
        let mut fixed = Cr0::NE;
        if !unrestricted_active {
            fixed |= Cr0::PE | Cr0::PG;
        }
        fixed
    }

    /// `IA32_VMX_CR0_FIXED1`: CR0 bits that may be 1 (everything defined).
    pub fn cr0_fixed1(&self) -> u64 {
        Cr0::DEFINED
    }

    /// `IA32_VMX_CR4_FIXED0`: CR4 bits that must be 1 (VMXE).
    pub fn cr4_fixed0(&self) -> u64 {
        Cr4::VMXE
    }

    /// `IA32_VMX_CR4_FIXED1`: CR4 bits that may be 1.
    pub fn cr4_fixed1(&self) -> u64 {
        let mut allowed = Cr4::DEFINED;
        if !self.features.contains(CpuFeature::Sgx) {
            allowed &= !Cr4::SMXE;
        }
        allowed
    }

    /// Checks a guest/host CR0 against the fixed-bit words.
    pub fn cr0_ok(&self, cr0: u64, unrestricted_active: bool) -> bool {
        let f0 = self.cr0_fixed0(unrestricted_active);
        let f1 = self.cr0_fixed1();
        // Special case (SDM A.7): if PE=0 (allowed only with unrestricted
        // guest), PG must also be 0.
        if unrestricted_active && cr0 & Cr0::PG != 0 && cr0 & Cr0::PE == 0 {
            return false;
        }
        cr0 & f0 == f0 && cr0 & !f1 == 0
    }

    /// Checks a guest/host CR4 against the fixed-bit words.
    pub fn cr4_ok(&self, cr4: u64) -> bool {
        let f0 = self.cr4_fixed0();
        let f1 = self.cr4_fixed1();
        cr4 & f0 == f0 && cr4 & !f1 == 0
    }

    /// Rounds CR0 to satisfy the fixed-bit words.
    pub fn round_cr0(&self, cr0: u64, unrestricted_active: bool) -> u64 {
        let mut v = (cr0 | self.cr0_fixed0(unrestricted_active)) & self.cr0_fixed1();
        if v & Cr0::PG != 0 && v & Cr0::PE == 0 {
            v |= Cr0::PE;
        }
        v
    }

    /// Rounds CR4 to satisfy the fixed-bit words.
    pub fn round_cr4(&self, cr4: u64) -> u64 {
        (cr4 | self.cr4_fixed0()) & self.cr4_fixed1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_x86::CpuVendor;

    fn caps(features: FeatureSet) -> VmxCapabilities {
        VmxCapabilities::from_features(features.sanitized(CpuVendor::Intel))
    }

    #[test]
    fn default_feature_caps_allow_ept() {
        let c = caps(FeatureSet::default_for(CpuVendor::Intel));
        let (_, a1) = c.allowed(CtrlKind::ProcBased2);
        assert_ne!(a1 & proc2::ENABLE_EPT, 0);
        assert_ne!(a1 & proc2::UNRESTRICTED_GUEST, 0);
    }

    #[test]
    fn disabling_ept_removes_dependents() {
        let mut f = FeatureSet::default_for(CpuVendor::Intel);
        f.remove(CpuFeature::Ept);
        let c = caps(f);
        let (_, a1) = c.allowed(CtrlKind::ProcBased2);
        assert_eq!(a1 & proc2::ENABLE_EPT, 0);
        assert_eq!(a1 & proc2::UNRESTRICTED_GUEST, 0, "UG requires EPT");
        assert_eq!(a1 & proc2::ENABLE_PML, 0, "PML requires EPT");
    }

    #[test]
    fn control_check_and_round_agree() {
        let c = caps(FeatureSet::default_for(CpuVendor::Intel));
        for kind in CtrlKind::ALL {
            for raw in [0u32, u32::MAX, 0x1234_5678, proc::SECONDARY_CONTROLS] {
                let rounded = c.round_control(kind, raw);
                assert!(c.control_ok(kind, rounded), "{kind:?} raw={raw:#x}");
            }
        }
    }

    #[test]
    fn round_is_idempotent() {
        let c = caps(FeatureSet::default_for(CpuVendor::Intel));
        for kind in CtrlKind::ALL {
            let once = c.round_control(kind, 0xdead_beef);
            assert_eq!(c.round_control(kind, once), once);
        }
    }

    #[test]
    fn cr0_fixed_bits_depend_on_unrestricted_guest() {
        let c = caps(FeatureSet::default_for(CpuVendor::Intel));
        // Without unrestricted guest: PE and PG forced.
        assert!(!c.cr0_ok(Cr0::NE, false));
        assert!(c.cr0_ok(Cr0::NE | Cr0::PE | Cr0::PG, false));
        // With unrestricted guest: real mode allowed.
        assert!(c.cr0_ok(Cr0::NE, true));
        // But PG without PE is never allowed.
        assert!(!c.cr0_ok(Cr0::NE | Cr0::PG, true));
    }

    #[test]
    fn cr4_vmxe_forced() {
        let c = caps(FeatureSet::default_for(CpuVendor::Intel));
        assert!(!c.cr4_ok(0));
        assert!(c.cr4_ok(Cr4::VMXE));
        assert!(c.cr4_ok(Cr4::VMXE | Cr4::PAE));
    }

    #[test]
    fn cr_rounding_fixes_arbitrary_values() {
        let c = caps(FeatureSet::default_for(CpuVendor::Intel));
        for raw in [0u64, u64::MAX, Cr0::PG, 0xffff_0000] {
            assert!(c.cr0_ok(c.round_cr0(raw, false), false), "raw={raw:#x}");
            assert!(c.cr0_ok(c.round_cr0(raw, true), true), "raw={raw:#x}");
            assert!(c.cr4_ok(c.round_cr4(raw)), "raw={raw:#x}");
        }
    }

    #[test]
    fn posted_interrupts_gated_by_apicv() {
        let mut f = FeatureSet::default_for(CpuVendor::Intel);
        f.insert(CpuFeature::Apicv);
        f.insert(CpuFeature::PostedInterrupts);
        let c = caps(f);
        let (_, a1) = c.allowed(CtrlKind::PinBased);
        assert_ne!(a1 & pin::POSTED_INTR, 0);

        let c2 = caps(FeatureSet::default_for(CpuVendor::Intel));
        let (_, a1) = c2.allowed(CtrlKind::PinBased);
        assert_eq!(a1 & pin::POSTED_INTR, 0);
    }
}
