//! The AMD-V virtual machine control block (VMCB).
//!
//! AMD splits the VMCB into a *control area* (intercepts, TLB/ASID
//! control, virtual interrupt state, nested paging) and a *save area*
//! (guest register state). Layout follows APM Vol. 2 Appendix B, reduced
//! to the fields the framework's harness, checks, and seeded bugs touch.

use nf_x86::segment::{AccessRights, Segment, Selector};
use nf_x86::SegReg;

/// Intercept bits in the modeled intercept vector.
///
/// Real VMCBs spread intercepts over five 32-bit words; the model packs
/// the ones it uses into a single 64-bit word with APM-faithful names.
pub mod intercept {
    /// Intercept INTR.
    pub const INTR: u64 = 1 << 0;
    /// Intercept NMI.
    pub const NMI: u64 = 1 << 1;
    /// Intercept CPUID.
    pub const CPUID: u64 = 1 << 2;
    /// Intercept HLT.
    pub const HLT: u64 = 1 << 3;
    /// Intercept INVLPG.
    pub const INVLPG: u64 = 1 << 4;
    /// Intercept IOIO_PROT (use the I/O permission map).
    pub const IOIO_PROT: u64 = 1 << 5;
    /// Intercept MSR_PROT (use the MSR permission map).
    pub const MSR_PROT: u64 = 1 << 6;
    /// Intercept CR0 writes.
    pub const CR0_WRITE: u64 = 1 << 7;
    /// Intercept CR3 writes.
    pub const CR3_WRITE: u64 = 1 << 8;
    /// Intercept CR4 writes.
    pub const CR4_WRITE: u64 = 1 << 9;
    /// Intercept VMRUN — must be set for any legal VMCB (APM 15.5).
    pub const VMRUN: u64 = 1 << 10;
    /// Intercept VMMCALL.
    pub const VMMCALL: u64 = 1 << 11;
    /// Intercept VMLOAD.
    pub const VMLOAD: u64 = 1 << 12;
    /// Intercept VMSAVE.
    pub const VMSAVE: u64 = 1 << 13;
    /// Intercept STGI.
    pub const STGI: u64 = 1 << 14;
    /// Intercept CLGI.
    pub const CLGI: u64 = 1 << 15;
    /// Intercept SKINIT.
    pub const SKINIT: u64 = 1 << 16;
    /// Intercept RDTSC.
    pub const RDTSC: u64 = 1 << 17;
    /// Intercept RDPMC.
    pub const RDPMC: u64 = 1 << 18;
    /// Intercept PAUSE.
    pub const PAUSE: u64 = 1 << 19;
    /// Intercept shutdown events.
    pub const SHUTDOWN: u64 = 1 << 20;
}

/// `int_ctl` bits (APM B.1, offset 0x60).
pub mod int_ctl {
    /// Virtual TPR (bits 7:0 in hardware; modeled as a flag-free field).
    pub const V_IRQ: u64 = 1 << 8;
    /// Virtual GIF value — the bit Xen's `nsvm_vcpu_vmexit_inject`
    /// asserts on (paper bug #6).
    pub const V_GIF: u64 = 1 << 9;
    /// Ignore virtual TPR.
    pub const V_IGN_TPR: u64 = 1 << 20;
    /// Virtual interrupt masking.
    pub const V_INTR_MASKING: u64 = 1 << 24;
    /// Virtual GIF enable (vGIF feature).
    pub const V_GIF_ENABLE: u64 = 1 << 25;
    /// AVIC enable — erroneously set by Xen's bug #5 path.
    pub const AVIC_ENABLE: u64 = 1 << 31;
}

/// VMCB control area (modeled subset of APM Table B-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmcbControl {
    /// Packed intercept vector (see [`intercept`]).
    pub intercepts: u64,
    /// I/O permission-map base physical address.
    pub iopm_base_pa: u64,
    /// MSR permission-map base physical address.
    pub msrpm_base_pa: u64,
    /// TSC offset.
    pub tsc_offset: u64,
    /// Guest ASID; zero is reserved for the host and illegal in a VMCB.
    pub guest_asid: u32,
    /// TLB control byte.
    pub tlb_control: u8,
    /// Virtual interrupt control (see [`int_ctl`]).
    pub int_ctl: u64,
    /// Interrupt shadow state.
    pub interrupt_shadow: u64,
    /// Exit code written by the CPU on #VMEXIT.
    pub exitcode: u64,
    /// Exit info 1.
    pub exitinfo1: u64,
    /// Exit info 2.
    pub exitinfo2: u64,
    /// Exit interrupt info.
    pub exitintinfo: u64,
    /// Nested-paging enable (bit 0) and SEV bits (modeled: bit 0 only).
    pub np_enable: u64,
    /// AVIC APIC_BAR.
    pub avic_apic_bar: u64,
    /// Event injection field.
    pub event_inj: u64,
    /// Nested page-table CR3.
    pub ncr3: u64,
    /// LBR virtualization enable (bit 0), virtual VMLOAD/VMSAVE (bit 1).
    pub lbr_ctl: u64,
    /// VMCB clean bits.
    pub vmcb_clean: u32,
    /// Next sequential instruction pointer (decode assist).
    pub nrip: u64,
    /// AVIC backing page pointer.
    pub avic_backing_page: u64,
    /// AVIC logical table pointer.
    pub avic_logical_table: u64,
    /// AVIC physical table pointer.
    pub avic_physical_table: u64,
    /// Pause-filter count.
    pub pause_filter_count: u16,
    /// Pause-filter threshold.
    pub pause_filter_thresh: u16,
}

/// VMCB save area (modeled subset of APM Table B-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmcbSave {
    /// Segment registers in VMCS-compatible quadruples.
    pub es: Segment,
    /// Code segment.
    pub cs: Segment,
    /// Stack segment.
    pub ss: Segment,
    /// Data segment.
    pub ds: Segment,
    /// `FS` segment.
    pub fs: Segment,
    /// `GS` segment.
    pub gs: Segment,
    /// Global descriptor table (base/limit carried in a [`Segment`]).
    pub gdtr: Segment,
    /// Local descriptor table.
    pub ldtr: Segment,
    /// Interrupt descriptor table.
    pub idtr: Segment,
    /// Task register.
    pub tr: Segment,
    /// Current privilege level.
    pub cpl: u8,
    /// Extended feature enable register.
    pub efer: u64,
    /// Control register 4.
    pub cr4: u64,
    /// Control register 3.
    pub cr3: u64,
    /// Control register 0.
    pub cr0: u64,
    /// Debug register 7.
    pub dr7: u64,
    /// Debug register 6.
    pub dr6: u64,
    /// Flags register.
    pub rflags: u64,
    /// Instruction pointer.
    pub rip: u64,
    /// Stack pointer.
    pub rsp: u64,
    /// Accumulator (saved/restored by `vmrun`).
    pub rax: u64,
    /// SYSCALL target address.
    pub star: u64,
    /// 64-bit SYSCALL target.
    pub lstar: u64,
    /// Compatibility SYSCALL target.
    pub cstar: u64,
    /// SYSCALL flag mask.
    pub sfmask: u64,
    /// Swapped GS base.
    pub kernel_gs_base: u64,
    /// SYSENTER code segment.
    pub sysenter_cs: u64,
    /// SYSENTER stack pointer.
    pub sysenter_esp: u64,
    /// SYSENTER instruction pointer.
    pub sysenter_eip: u64,
    /// Guest PAT.
    pub g_pat: u64,
    /// Debug control MSR.
    pub dbgctl: u64,
}

/// A full VMCB: control plus save area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Vmcb {
    /// Control area.
    pub control: VmcbControl,
    /// Save area.
    pub save: VmcbSave,
}

impl Vmcb {
    /// Serialized size in bytes of the fuzz layout.
    pub const BYTES: usize = 13 * 8 // control u64 block 1
        + 4 + 1 + 2 + 2 + 1 // asid, tlb, pause filter pair, pad
        + 9 * 8 // control u64 block 2
        + 4 + 4 // vmcb_clean + pad
        + 10 * Self::SEG_BYTES
        + 1 + 7 // cpl + pad
        + 17 * 8; // save u64 fields

    const SEG_BYTES: usize = 2 + 4 + 4 + 8;

    /// Serializes to the flat fuzz layout (little-endian, fixed order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTES);
        let c = &self.control;
        for v in [
            c.intercepts,
            c.iopm_base_pa,
            c.msrpm_base_pa,
            c.tsc_offset,
            c.int_ctl,
            c.interrupt_shadow,
            c.exitcode,
            c.exitinfo1,
            c.exitinfo2,
            c.exitintinfo,
            c.np_enable,
            c.avic_apic_bar,
            c.event_inj,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&c.guest_asid.to_le_bytes());
        out.push(c.tlb_control);
        out.extend_from_slice(&c.pause_filter_count.to_le_bytes());
        out.extend_from_slice(&c.pause_filter_thresh.to_le_bytes());
        out.push(0);
        for v in [
            c.ncr3,
            c.lbr_ctl,
            c.nrip,
            c.avic_backing_page,
            c.avic_logical_table,
            c.avic_physical_table,
            0,
            0,
            0,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&c.vmcb_clean.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        let s = &self.save;
        for seg in [
            s.es, s.cs, s.ss, s.ds, s.fs, s.gs, s.gdtr, s.ldtr, s.idtr, s.tr,
        ] {
            out.extend_from_slice(&seg.selector.0.to_le_bytes());
            out.extend_from_slice(&seg.ar.0.to_le_bytes());
            out.extend_from_slice(&seg.limit.to_le_bytes());
            out.extend_from_slice(&seg.base.to_le_bytes());
        }
        out.push(s.cpl);
        out.extend_from_slice(&[0u8; 7]);
        for v in [
            s.efer,
            s.cr4,
            s.cr3,
            s.cr0,
            s.dr7,
            s.dr6,
            s.rflags,
            s.rip,
            s.rsp,
            s.rax,
            s.star,
            s.lstar,
            s.cstar,
            s.sfmask,
            s.kernel_gs_base,
            s.sysenter_cs,
            s.g_pat,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        debug_assert_eq!(out.len(), Self::BYTES);
        out
    }

    /// Deserializes from fuzz bytes; missing bytes read as zero.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        struct Cursor<'a> {
            bytes: &'a [u8],
            off: usize,
        }
        impl Cursor<'_> {
            fn take(&mut self, n: usize) -> u64 {
                let mut buf = [0u8; 8];
                for (i, b) in buf.iter_mut().enumerate().take(n) {
                    *b = self.bytes.get(self.off + i).copied().unwrap_or(0);
                }
                self.off += n;
                u64::from_le_bytes(buf)
            }
        }
        let mut cur = Cursor { bytes, off: 0 };
        let mut vmcb = Vmcb::default();
        {
            let c = &mut vmcb.control;
            c.intercepts = cur.take(8);
            c.iopm_base_pa = cur.take(8);
            c.msrpm_base_pa = cur.take(8);
            c.tsc_offset = cur.take(8);
            c.int_ctl = cur.take(8);
            c.interrupt_shadow = cur.take(8);
            c.exitcode = cur.take(8);
            c.exitinfo1 = cur.take(8);
            c.exitinfo2 = cur.take(8);
            c.exitintinfo = cur.take(8);
            c.np_enable = cur.take(8);
            c.avic_apic_bar = cur.take(8);
            c.event_inj = cur.take(8);
            c.guest_asid = cur.take(4) as u32;
            c.tlb_control = cur.take(1) as u8;
            c.pause_filter_count = cur.take(2) as u16;
            c.pause_filter_thresh = cur.take(2) as u16;
            cur.take(1);
            c.ncr3 = cur.take(8);
            c.lbr_ctl = cur.take(8);
            c.nrip = cur.take(8);
            c.avic_backing_page = cur.take(8);
            c.avic_logical_table = cur.take(8);
            c.avic_physical_table = cur.take(8);
            cur.take(8);
            cur.take(8);
            cur.take(8);
            c.vmcb_clean = cur.take(4) as u32;
            cur.take(4);
        }
        {
            let s = &mut vmcb.save;
            let seg = |cur: &mut Cursor| Segment {
                selector: Selector(cur.take(2) as u16),
                ar: AccessRights::new(cur.take(4) as u32),
                limit: cur.take(4) as u32,
                base: cur.take(8),
            };
            s.es = seg(&mut cur);
            s.cs = seg(&mut cur);
            s.ss = seg(&mut cur);
            s.ds = seg(&mut cur);
            s.fs = seg(&mut cur);
            s.gs = seg(&mut cur);
            s.gdtr = seg(&mut cur);
            s.ldtr = seg(&mut cur);
            s.idtr = seg(&mut cur);
            s.tr = seg(&mut cur);
            s.cpl = cur.take(1) as u8;
            cur.take(7);
            s.efer = cur.take(8);
            s.cr4 = cur.take(8);
            s.cr3 = cur.take(8);
            s.cr0 = cur.take(8);
            s.dr7 = cur.take(8);
            s.dr6 = cur.take(8);
            s.rflags = cur.take(8);
            s.rip = cur.take(8);
            s.rsp = cur.take(8);
            s.rax = cur.take(8);
            s.star = cur.take(8);
            s.lstar = cur.take(8);
            s.cstar = cur.take(8);
            s.sfmask = cur.take(8);
            s.kernel_gs_base = cur.take(8);
            s.sysenter_cs = cur.take(8);
            s.g_pat = cur.take(8);
        }
        vmcb
    }

    /// Returns the segment for `reg` (GDTR/IDTR are not addressable this
    /// way; they are separate fields in the save area).
    pub fn segment(&self, reg: SegReg) -> Segment {
        match reg {
            SegReg::Es => self.save.es,
            SegReg::Cs => self.save.cs,
            SegReg::Ss => self.save.ss,
            SegReg::Ds => self.save.ds,
            SegReg::Fs => self.save.fs,
            SegReg::Gs => self.save.gs,
            SegReg::Ldtr => self.save.ldtr,
            SegReg::Tr => self.save.tr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_x86::Efer;

    #[test]
    fn serialization_roundtrip() {
        let mut v = Vmcb::default();
        v.control.intercepts = intercept::VMRUN | intercept::CPUID;
        v.control.guest_asid = 7;
        v.control.int_ctl = int_ctl::V_GIF_ENABLE;
        v.control.ncr3 = 0xabc000;
        v.save.efer = Efer::SVME | Efer::LME;
        v.save.cr0 = 0x8000_0011;
        v.save.cs = Segment::flat_code64();
        v.save.cpl = 3;
        v.save.kernel_gs_base = 0xffff_8000_0000_0000;
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), Vmcb::BYTES);
        let back = Vmcb::from_bytes(&bytes);
        assert_eq!(back, v);
    }

    #[test]
    fn from_bytes_tolerates_any_length() {
        let v = Vmcb::from_bytes(&[0xaa; 16]);
        assert_eq!(v.control.intercepts, 0xaaaa_aaaa_aaaa_aaaa);
        assert_eq!(v.control.msrpm_base_pa, 0);
        let empty = Vmcb::from_bytes(&[]);
        assert_eq!(empty, Vmcb::default());
    }

    #[test]
    fn segment_accessor() {
        let mut v = Vmcb::default();
        v.save.fs = Segment::flat_data();
        assert_eq!(v.segment(SegReg::Fs), Segment::flat_data());
        assert_eq!(v.segment(SegReg::Cs), Segment::default());
    }
}
