//! VM-entry/exit MSR-load and MSR-store areas.
//!
//! VM entry can load a list of MSRs from memory (SDM 26.4); the list
//! entries are (index, value) pairs. Values loaded this way bypass the
//! ordinary `wrmsr` checks **unless the hypervisor re-validates them** —
//! the validation VirtualBox skipped for `KernelGSBase`, producing
//! CVE-2024-21106.

/// One entry of an MSR-load/store area (SDM Table 26-10, padding elided).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MsrAreaEntry {
    /// MSR index.
    pub index: u32,
    /// Value to load (or slot to store into).
    pub value: u64,
}

/// An MSR-load/store area.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MsrArea {
    /// Entries in list order.
    pub entries: Vec<MsrAreaEntry>,
}

impl MsrArea {
    /// Architectural limit on the entry count (SDM 26.4: 512 entries).
    pub const MAX_ENTRIES: usize = 512;

    /// Bytes per serialized entry (index + reserved pad + value).
    pub const ENTRY_BYTES: usize = 12;

    /// Creates an empty area.
    pub fn new() -> Self {
        MsrArea::default()
    }

    /// Parses `count` entries from fuzz bytes (missing bytes read zero).
    pub fn from_bytes(bytes: &[u8], count: usize) -> Self {
        let count = count.min(Self::MAX_ENTRIES);
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = i * Self::ENTRY_BYTES;
            let get = |o: usize, n: usize| -> u64 {
                let mut buf = [0u8; 8];
                for (j, b) in buf.iter_mut().enumerate().take(n) {
                    *b = bytes.get(o + j).copied().unwrap_or(0);
                }
                u64::from_le_bytes(buf)
            };
            entries.push(MsrAreaEntry {
                index: get(off, 4) as u32,
                value: get(off + 4, 8),
            });
        }
        MsrArea { entries }
    }

    /// Serializes back into the fuzz byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * Self::ENTRY_BYTES);
        for e in &self.entries {
            out.extend_from_slice(&e.index.to_le_bytes());
            out.extend_from_slice(&e.value.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let area = MsrArea {
            entries: vec![
                MsrAreaEntry {
                    index: 0xc000_0102,
                    value: 0x8000_0000_0000_0000,
                },
                MsrAreaEntry {
                    index: 0x277,
                    value: 0x0007_0406_0007_0406,
                },
            ],
        };
        let bytes = area.to_bytes();
        let back = MsrArea::from_bytes(&bytes, 2);
        assert_eq!(back, area);
    }

    #[test]
    fn count_clamped_to_architectural_limit() {
        let area = MsrArea::from_bytes(&[], 100_000);
        assert_eq!(area.entries.len(), MsrArea::MAX_ENTRIES);
    }

    #[test]
    fn short_input_zero_fills() {
        let area = MsrArea::from_bytes(&[0xff, 0xff], 1);
        assert_eq!(area.entries[0].index, 0xffff);
        assert_eq!(area.entries[0].value, 0);
    }
}
