//! VMCS storage, lifecycle state, and fuzz-oriented serialization.

use crate::field::{FieldWidth, VmcsField, FIELD_COUNT, STATE_BITS};
use nf_x86::segment::{AccessRights, Segment, Selector};
use nf_x86::SegReg;

/// Lifecycle state of a VMCS region (SDM 24.1): tracked by the CPU and —
/// in nested operation — re-tracked in software by the L0 hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmcsState {
    /// `vmclear` has been executed; the region is inactive.
    #[default]
    Clear,
    /// The region is the current VMCS (`vmptrld`) but never launched.
    Loaded,
    /// A `vmlaunch` succeeded; only `vmresume` is valid now.
    Launched,
}

/// A virtual-machine control structure.
///
/// Field values are stored in a dense array indexed by
/// [`VmcsField::index`]. Writes are masked to the field width, matching
/// hardware behaviour where the upper bits of a 16/32-bit field are
/// ignored by `vmwrite`.
///
/// # Examples
///
/// ```
/// use nf_vmx::{Vmcs, VmcsField};
///
/// let mut vmcs = Vmcs::new();
/// vmcs.write(VmcsField::GuestRip, 0xfff0);
/// assert_eq!(vmcs.read(VmcsField::GuestRip), 0xfff0);
/// // 16-bit fields are truncated like hardware does.
/// vmcs.write(VmcsField::GuestCsSelector, 0x12_0008);
/// assert_eq!(vmcs.read(VmcsField::GuestCsSelector), 0x0008);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vmcs {
    values: [u64; FIELD_COUNT],
    /// Lifecycle state, maintained by `vmclear`/`vmptrld`/`vmlaunch`.
    pub state: VmcsState,
    /// Revision identifier from `IA32_VMX_BASIC`.
    pub revision_id: u32,
}

impl Default for Vmcs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vmcs {
    /// Serialized size in bytes (8000 bits = 1000 bytes).
    pub const BYTES: usize = STATE_BITS as usize / 8;

    /// Creates a zeroed VMCS in the `Clear` state.
    pub fn new() -> Self {
        Vmcs {
            values: [0; FIELD_COUNT],
            state: VmcsState::Clear,
            revision_id: 0,
        }
    }

    /// Reads a field.
    pub fn read(&self, field: VmcsField) -> u64 {
        self.values[field.index()]
    }

    /// Writes a field, masking the value to the field width.
    pub fn write(&mut self, field: VmcsField, value: u64) {
        self.values[field.index()] = value & field.width().mask();
    }

    /// Serializes every field, in catalogue order, into the flat
    /// little-endian byte layout the fuzzer mutates (16-bit fields take 2
    /// bytes, 32-bit 4 bytes, 64-bit/natural 8 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTES);
        for &f in VmcsField::ALL {
            let v = self.read(f);
            match f.width() {
                FieldWidth::W16 => out.extend_from_slice(&(v as u16).to_le_bytes()),
                FieldWidth::W32 => out.extend_from_slice(&(v as u32).to_le_bytes()),
                FieldWidth::W64 | FieldWidth::Natural => out.extend_from_slice(&v.to_le_bytes()),
            }
        }
        debug_assert_eq!(out.len(), Self::BYTES);
        out
    }

    /// Deserializes a VMCS from fuzz bytes. Missing bytes read as zero, so
    /// any input length is accepted (the agent hands the harness whatever
    /// slice of the 2 KiB input is assigned to the VMCS section).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut vmcs = Vmcs::new();
        let mut off = 0usize;
        let get = |off: usize, n: usize| -> u64 {
            let mut buf = [0u8; 8];
            for (i, b) in buf.iter_mut().enumerate().take(n) {
                *b = bytes.get(off + i).copied().unwrap_or(0);
            }
            u64::from_le_bytes(buf)
        };
        for &f in VmcsField::ALL {
            let n = (f.width().bits() / 8) as usize;
            vmcs.write(f, get(off, n));
            off += n;
        }
        vmcs
    }

    /// Hamming distance in bits between two VMCSs over the serialized
    /// 8000-bit layout (the Figure 5 metric).
    pub fn hamming_distance(&self, other: &Vmcs) -> u32 {
        let mut dist = 0;
        for &f in VmcsField::ALL {
            dist += (self.read(f) ^ other.read(f)).count_ones();
        }
        dist
    }

    /// Reads a full segment quadruple out of the guest-state area.
    pub fn guest_segment(&self, reg: SegReg) -> Segment {
        let (sel, base, limit, ar) = match reg {
            SegReg::Es => (
                VmcsField::GuestEsSelector,
                VmcsField::GuestEsBase,
                VmcsField::GuestEsLimit,
                VmcsField::GuestEsArBytes,
            ),
            SegReg::Cs => (
                VmcsField::GuestCsSelector,
                VmcsField::GuestCsBase,
                VmcsField::GuestCsLimit,
                VmcsField::GuestCsArBytes,
            ),
            SegReg::Ss => (
                VmcsField::GuestSsSelector,
                VmcsField::GuestSsBase,
                VmcsField::GuestSsLimit,
                VmcsField::GuestSsArBytes,
            ),
            SegReg::Ds => (
                VmcsField::GuestDsSelector,
                VmcsField::GuestDsBase,
                VmcsField::GuestDsLimit,
                VmcsField::GuestDsArBytes,
            ),
            SegReg::Fs => (
                VmcsField::GuestFsSelector,
                VmcsField::GuestFsBase,
                VmcsField::GuestFsLimit,
                VmcsField::GuestFsArBytes,
            ),
            SegReg::Gs => (
                VmcsField::GuestGsSelector,
                VmcsField::GuestGsBase,
                VmcsField::GuestGsLimit,
                VmcsField::GuestGsArBytes,
            ),
            SegReg::Ldtr => (
                VmcsField::GuestLdtrSelector,
                VmcsField::GuestLdtrBase,
                VmcsField::GuestLdtrLimit,
                VmcsField::GuestLdtrArBytes,
            ),
            SegReg::Tr => (
                VmcsField::GuestTrSelector,
                VmcsField::GuestTrBase,
                VmcsField::GuestTrLimit,
                VmcsField::GuestTrArBytes,
            ),
        };
        Segment {
            selector: Selector(self.read(sel) as u16),
            base: self.read(base),
            limit: self.read(limit) as u32,
            ar: AccessRights::new(self.read(ar) as u32),
        }
    }

    /// Writes a full segment quadruple into the guest-state area.
    pub fn set_guest_segment(&mut self, reg: SegReg, seg: Segment) {
        let (sel, base, limit, ar) = match reg {
            SegReg::Es => (
                VmcsField::GuestEsSelector,
                VmcsField::GuestEsBase,
                VmcsField::GuestEsLimit,
                VmcsField::GuestEsArBytes,
            ),
            SegReg::Cs => (
                VmcsField::GuestCsSelector,
                VmcsField::GuestCsBase,
                VmcsField::GuestCsLimit,
                VmcsField::GuestCsArBytes,
            ),
            SegReg::Ss => (
                VmcsField::GuestSsSelector,
                VmcsField::GuestSsBase,
                VmcsField::GuestSsLimit,
                VmcsField::GuestSsArBytes,
            ),
            SegReg::Ds => (
                VmcsField::GuestDsSelector,
                VmcsField::GuestDsBase,
                VmcsField::GuestDsLimit,
                VmcsField::GuestDsArBytes,
            ),
            SegReg::Fs => (
                VmcsField::GuestFsSelector,
                VmcsField::GuestFsBase,
                VmcsField::GuestFsLimit,
                VmcsField::GuestFsArBytes,
            ),
            SegReg::Gs => (
                VmcsField::GuestGsSelector,
                VmcsField::GuestGsBase,
                VmcsField::GuestGsLimit,
                VmcsField::GuestGsArBytes,
            ),
            SegReg::Ldtr => (
                VmcsField::GuestLdtrSelector,
                VmcsField::GuestLdtrBase,
                VmcsField::GuestLdtrLimit,
                VmcsField::GuestLdtrArBytes,
            ),
            SegReg::Tr => (
                VmcsField::GuestTrSelector,
                VmcsField::GuestTrBase,
                VmcsField::GuestTrLimit,
                VmcsField::GuestTrArBytes,
            ),
        };
        self.write(sel, seg.selector.0 as u64);
        self.write(base, seg.base);
        self.write(limit, seg.limit as u64);
        self.write(ar, seg.ar.0 as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masking_on_write() {
        let mut v = Vmcs::new();
        v.write(VmcsField::GuestEsSelector, 0xffff_ffff);
        assert_eq!(v.read(VmcsField::GuestEsSelector), 0xffff);
        v.write(VmcsField::GuestActivityState, 0x1_0000_0003);
        assert_eq!(v.read(VmcsField::GuestActivityState), 3);
        v.write(VmcsField::GuestCr3, u64::MAX);
        assert_eq!(v.read(VmcsField::GuestCr3), u64::MAX);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut v = Vmcs::new();
        for (i, &f) in VmcsField::ALL.iter().enumerate() {
            v.write(f, (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), Vmcs::BYTES);
        let back = Vmcs::from_bytes(&bytes);
        for &f in VmcsField::ALL {
            assert_eq!(back.read(f), v.read(f), "{}", f.name());
        }
    }

    #[test]
    fn from_bytes_tolerates_short_input() {
        let v = Vmcs::from_bytes(&[0xff; 3]);
        assert_eq!(v.read(VmcsField::Vpid), 0xffff);
        assert_eq!(v.read(VmcsField::PostedIntrNv), 0x00ff);
        assert_eq!(v.read(VmcsField::EptpIndex), 0);
    }

    #[test]
    fn hamming_distance_basics() {
        let a = Vmcs::new();
        let mut b = Vmcs::new();
        assert_eq!(a.hamming_distance(&b), 0);
        b.write(VmcsField::GuestCr0, 0b1011);
        assert_eq!(a.hamming_distance(&b), 3);
        assert_eq!(b.hamming_distance(&a), 3);
    }

    #[test]
    fn segment_quadruple_roundtrip() {
        let mut v = Vmcs::new();
        let seg = Segment::flat_code64();
        v.set_guest_segment(SegReg::Cs, seg);
        assert_eq!(v.guest_segment(SegReg::Cs), seg);
        // Writing CS does not disturb SS.
        assert_eq!(v.guest_segment(SegReg::Ss), Segment::default());
    }

    #[test]
    fn lifecycle_default_is_clear() {
        assert_eq!(Vmcs::new().state, VmcsState::Clear);
    }
}
