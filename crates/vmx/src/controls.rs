//! Bit definitions for the VMCS control fields.
//!
//! Names mirror the Intel SDM / KVM definitions so that the hypervisor
//! models read like the code they stand in for.

/// Pin-based VM-execution controls (SDM 24.6.1).
pub mod pin {
    /// External-interrupt exiting.
    pub const EXT_INTR_EXITING: u32 = 1 << 0;
    /// NMI exiting.
    pub const NMI_EXITING: u32 = 1 << 3;
    /// Virtual NMIs.
    pub const VIRTUAL_NMIS: u32 = 1 << 5;
    /// Activate VMX-preemption timer.
    pub const PREEMPTION_TIMER: u32 = 1 << 6;
    /// Process posted interrupts.
    pub const POSTED_INTR: u32 = 1 << 7;
    /// Bits the architecture defines; default1 class bits are handled via
    /// the capability MSRs.
    pub const DEFINED: u32 =
        EXT_INTR_EXITING | NMI_EXITING | VIRTUAL_NMIS | PREEMPTION_TIMER | POSTED_INTR;
    /// Reserved bits that read as 1 in `IA32_VMX_PINBASED_CTLS` allowed-0.
    pub const DEFAULT1: u32 = 0x16;
}

/// Primary processor-based VM-execution controls (SDM 24.6.2).
pub mod proc {
    /// Interrupt-window exiting.
    pub const INTR_WINDOW_EXITING: u32 = 1 << 2;
    /// Use TSC offsetting.
    pub const USE_TSC_OFFSETTING: u32 = 1 << 3;
    /// HLT exiting.
    pub const HLT_EXITING: u32 = 1 << 7;
    /// INVLPG exiting.
    pub const INVLPG_EXITING: u32 = 1 << 9;
    /// MWAIT exiting.
    pub const MWAIT_EXITING: u32 = 1 << 10;
    /// RDPMC exiting.
    pub const RDPMC_EXITING: u32 = 1 << 11;
    /// RDTSC exiting.
    pub const RDTSC_EXITING: u32 = 1 << 12;
    /// CR3-load exiting.
    pub const CR3_LOAD_EXITING: u32 = 1 << 15;
    /// CR3-store exiting.
    pub const CR3_STORE_EXITING: u32 = 1 << 16;
    /// CR8-load exiting.
    pub const CR8_LOAD_EXITING: u32 = 1 << 19;
    /// CR8-store exiting.
    pub const CR8_STORE_EXITING: u32 = 1 << 20;
    /// Use TPR shadow.
    pub const USE_TPR_SHADOW: u32 = 1 << 21;
    /// NMI-window exiting.
    pub const NMI_WINDOW_EXITING: u32 = 1 << 22;
    /// MOV-DR exiting.
    pub const MOV_DR_EXITING: u32 = 1 << 23;
    /// Unconditional I/O exiting.
    pub const UNCOND_IO_EXITING: u32 = 1 << 24;
    /// Use I/O bitmaps.
    pub const USE_IO_BITMAPS: u32 = 1 << 25;
    /// Monitor trap flag.
    pub const MONITOR_TRAP_FLAG: u32 = 1 << 27;
    /// Use MSR bitmaps.
    pub const USE_MSR_BITMAPS: u32 = 1 << 28;
    /// MONITOR exiting.
    pub const MONITOR_EXITING: u32 = 1 << 29;
    /// PAUSE exiting.
    pub const PAUSE_EXITING: u32 = 1 << 30;
    /// Activate secondary controls.
    pub const SECONDARY_CONTROLS: u32 = 1 << 31;
    /// Bits the architecture defines.
    pub const DEFINED: u32 = INTR_WINDOW_EXITING
        | USE_TSC_OFFSETTING
        | HLT_EXITING
        | INVLPG_EXITING
        | MWAIT_EXITING
        | RDPMC_EXITING
        | RDTSC_EXITING
        | CR3_LOAD_EXITING
        | CR3_STORE_EXITING
        | CR8_LOAD_EXITING
        | CR8_STORE_EXITING
        | USE_TPR_SHADOW
        | NMI_WINDOW_EXITING
        | MOV_DR_EXITING
        | UNCOND_IO_EXITING
        | USE_IO_BITMAPS
        | MONITOR_TRAP_FLAG
        | USE_MSR_BITMAPS
        | MONITOR_EXITING
        | PAUSE_EXITING
        | SECONDARY_CONTROLS;
    /// Reserved bits that read as 1 in the allowed-0 capability word.
    pub const DEFAULT1: u32 = 0x0401_e172;
}

/// Secondary processor-based VM-execution controls (SDM 24.6.2).
pub mod proc2 {
    /// Virtualize APIC accesses.
    pub const VIRT_APIC_ACCESSES: u32 = 1 << 0;
    /// Enable EPT.
    pub const ENABLE_EPT: u32 = 1 << 1;
    /// Descriptor-table exiting.
    pub const DESC_TABLE_EXITING: u32 = 1 << 2;
    /// Enable RDTSCP.
    pub const ENABLE_RDTSCP: u32 = 1 << 3;
    /// Virtualize x2APIC mode.
    pub const VIRT_X2APIC: u32 = 1 << 4;
    /// Enable VPID.
    pub const ENABLE_VPID: u32 = 1 << 5;
    /// WBINVD exiting.
    pub const WBINVD_EXITING: u32 = 1 << 6;
    /// Unrestricted guest.
    pub const UNRESTRICTED_GUEST: u32 = 1 << 7;
    /// APIC-register virtualization.
    pub const APIC_REGISTER_VIRT: u32 = 1 << 8;
    /// Virtual-interrupt delivery.
    pub const VIRT_INTR_DELIVERY: u32 = 1 << 9;
    /// PAUSE-loop exiting.
    pub const PAUSE_LOOP_EXITING: u32 = 1 << 10;
    /// RDRAND exiting.
    pub const RDRAND_EXITING: u32 = 1 << 11;
    /// Enable INVPCID.
    pub const ENABLE_INVPCID: u32 = 1 << 12;
    /// Enable VM functions.
    pub const ENABLE_VMFUNC: u32 = 1 << 13;
    /// VMCS shadowing.
    pub const VMCS_SHADOWING: u32 = 1 << 14;
    /// Enable ENCLS exiting.
    pub const ENCLS_EXITING: u32 = 1 << 15;
    /// RDSEED exiting.
    pub const RDSEED_EXITING: u32 = 1 << 16;
    /// Enable PML.
    pub const ENABLE_PML: u32 = 1 << 17;
    /// EPT-violation #VE.
    pub const EPT_VIOLATION_VE: u32 = 1 << 18;
    /// Conceal VMX from PT.
    pub const PT_CONCEAL_VMX: u32 = 1 << 19;
    /// Enable XSAVES/XRSTORS.
    pub const ENABLE_XSAVES: u32 = 1 << 20;
    /// Mode-based execute control for EPT.
    pub const MODE_BASED_EPT_EXEC: u32 = 1 << 22;
    /// Sub-page write permissions for EPT.
    pub const SPP_EPT: u32 = 1 << 23;
    /// Intel PT uses guest physical addresses.
    pub const PT_USE_GPA: u32 = 1 << 24;
    /// Use TSC scaling.
    pub const TSC_SCALING: u32 = 1 << 25;
    /// Enable user-level wait and pause.
    pub const USER_WAIT_PAUSE: u32 = 1 << 26;
    /// Bits the architecture defines.
    pub const DEFINED: u32 = VIRT_APIC_ACCESSES
        | ENABLE_EPT
        | DESC_TABLE_EXITING
        | ENABLE_RDTSCP
        | VIRT_X2APIC
        | ENABLE_VPID
        | WBINVD_EXITING
        | UNRESTRICTED_GUEST
        | APIC_REGISTER_VIRT
        | VIRT_INTR_DELIVERY
        | PAUSE_LOOP_EXITING
        | RDRAND_EXITING
        | ENABLE_INVPCID
        | ENABLE_VMFUNC
        | VMCS_SHADOWING
        | ENCLS_EXITING
        | RDSEED_EXITING
        | ENABLE_PML
        | EPT_VIOLATION_VE
        | PT_CONCEAL_VMX
        | ENABLE_XSAVES
        | MODE_BASED_EPT_EXEC
        | SPP_EPT
        | PT_USE_GPA
        | TSC_SCALING
        | USER_WAIT_PAUSE;
}

/// VM-exit controls (SDM 24.7.1).
pub mod exit {
    /// Save debug controls.
    pub const SAVE_DEBUG_CONTROLS: u32 = 1 << 2;
    /// Host address-space size (must be 1 on 64-bit hosts).
    pub const HOST_ADDR_SPACE_SIZE: u32 = 1 << 9;
    /// Load IA32_PERF_GLOBAL_CTRL.
    pub const LOAD_PERF_GLOBAL_CTRL: u32 = 1 << 12;
    /// Acknowledge interrupt on exit.
    pub const ACK_INTR_ON_EXIT: u32 = 1 << 15;
    /// Save IA32_PAT.
    pub const SAVE_PAT: u32 = 1 << 18;
    /// Load IA32_PAT.
    pub const LOAD_PAT: u32 = 1 << 19;
    /// Save IA32_EFER.
    pub const SAVE_EFER: u32 = 1 << 20;
    /// Load IA32_EFER.
    pub const LOAD_EFER: u32 = 1 << 21;
    /// Save VMX-preemption timer value.
    pub const SAVE_PREEMPTION_TIMER: u32 = 1 << 22;
    /// Clear IA32_BNDCFGS.
    pub const CLEAR_BNDCFGS: u32 = 1 << 23;
    /// Bits the architecture defines.
    pub const DEFINED: u32 = SAVE_DEBUG_CONTROLS
        | HOST_ADDR_SPACE_SIZE
        | LOAD_PERF_GLOBAL_CTRL
        | ACK_INTR_ON_EXIT
        | SAVE_PAT
        | LOAD_PAT
        | SAVE_EFER
        | LOAD_EFER
        | SAVE_PREEMPTION_TIMER
        | CLEAR_BNDCFGS;
    /// Reserved bits that read as 1 in the allowed-0 capability word.
    pub const DEFAULT1: u32 = 0x0003_6dff;
}

/// VM-entry controls (SDM 24.8.1).
pub mod entry {
    /// Load debug controls.
    pub const LOAD_DEBUG_CONTROLS: u32 = 1 << 2;
    /// IA-32e mode guest — the control at the heart of CVE-2023-30456.
    pub const IA32E_MODE_GUEST: u32 = 1 << 9;
    /// Entry to SMM.
    pub const ENTRY_TO_SMM: u32 = 1 << 10;
    /// Deactivate dual-monitor treatment.
    pub const DEACT_DUAL_MONITOR: u32 = 1 << 11;
    /// Load IA32_PERF_GLOBAL_CTRL.
    pub const LOAD_PERF_GLOBAL_CTRL: u32 = 1 << 13;
    /// Load IA32_PAT.
    pub const LOAD_PAT: u32 = 1 << 14;
    /// Load IA32_EFER.
    pub const LOAD_EFER: u32 = 1 << 15;
    /// Load IA32_BNDCFGS.
    pub const LOAD_BNDCFGS: u32 = 1 << 16;
    /// Bits the architecture defines.
    pub const DEFINED: u32 = LOAD_DEBUG_CONTROLS
        | IA32E_MODE_GUEST
        | ENTRY_TO_SMM
        | DEACT_DUAL_MONITOR
        | LOAD_PERF_GLOBAL_CTRL
        | LOAD_PAT
        | LOAD_EFER
        | LOAD_BNDCFGS;
    /// Reserved bits that read as 1 in the allowed-0 capability word.
    pub const DEFAULT1: u32 = 0x0000_11ff;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default1_bits_outside_defined() {
        // Purely-reserved default-1 bits must not collide with defined
        // control bits. The debug-controls bits (bit 2 of the entry and
        // exit words) are the architectural exception: defined *and*
        // default-1, exactly as on real parts.
        assert_eq!(pin::DEFINED & pin::DEFAULT1, 0);
        assert_eq!(exit::DEFINED & exit::DEFAULT1, exit::SAVE_DEBUG_CONTROLS);
        assert_eq!(entry::DEFINED & entry::DEFAULT1, entry::LOAD_DEBUG_CONTROLS);
    }

    #[test]
    fn proc_default1_subset_check() {
        // KVM's 0x0401e172 default-1 mask includes bits 1, 4-6, 8, 13-14,
        // 16-17 (historical reserved) — none of which may be "defined".
        assert_eq!(proc::DEFAULT1 & proc::CR3_LOAD_EXITING, 0x8000);
        // CR3 load/store exiting are default-1 on parts without the
        // "true" controls; our model exposes true controls, so they are
        // also architecturally defined. Everything else must not overlap.
        let overlap = proc::DEFINED & proc::DEFAULT1;
        assert_eq!(overlap, proc::CR3_LOAD_EXITING | proc::CR3_STORE_EXITING);
    }

    #[test]
    fn ia32e_mode_guest_is_bit_9() {
        assert_eq!(entry::IA32E_MODE_GUEST, 0x200);
    }
}
