//! The persistent-execution engine: the iteration hot path.
//!
//! The paper's whole premise is that a fuzz-harness VM makes each
//! fuzzing iteration cheap by avoiding guest-OS reboots (§3.2, §4.5).
//! The engine realizes that on the simulator side:
//!
//! - **Snapshot restore instead of reboot.** A boot-time
//!   [`HvSnapshot`] is captured once per hypervisor instance; before
//!   every test case the engine *restores* it (delta copy of dirtied
//!   state) instead of re-deriving boot state.
//! - **Booted-image cache.** The vCPU configurator flips the
//!   [`HvConfig`] constantly; instead of re-running the hypervisor
//!   factory on every flip, the engine keeps an LRU-bounded cache of
//!   booted instances keyed by config, and a flip restores a cached
//!   image.
//! - **Memoized validator corrections.** The [`VmStateValidator`] is a
//!   pure function of its [`VmxCapabilities`] plus the corrections
//!   learned from the oracle; when a config flip leaves the
//!   capabilities unchanged (e.g. only the `nested` switch moved), the
//!   engine reuses the validator as-is instead of rebuilding it and
//!   re-cloning its correction history.
//!
//! - **Reusable execution scratch.** The engine owns the
//!   [`ExecScratch`] of the zero-allocation hot path: per iteration the
//!   hypervisor's trace is *swapped* (not cloned) into the scratch,
//!   projected onto the reusable AFL bitmap with a targeted wipe of the
//!   previous projection, and the line set is cleared in place — the
//!   steady-state loop performs no heap allocation (the `hotpath`
//!   bench's counting allocator enforces this).
//!
//! [`EngineMode::Rebuild`] preserves the original full-rebuild
//! semantics for A/B measurement (`necofuzz --engine rebuild`, the
//! `throughput` bench). The two modes are **bit-identical** in
//! observable results — `tests/engine_equivalence.rs` asserts
//! [`crate::campaign::CampaignResult`] equality over the whole
//! backend × mode × mask grid.

use nf_coverage::{ExecScratch, ExecTrace};
use nf_fuzz::MAP_SIZE;
use nf_hv::{HvConfig, HvSnapshot, L0Hypervisor};
use nf_vmx::VmxCapabilities;
use nf_x86::FeatureSet;

use crate::harness::{ExecEvent, ExecPhase};
use crate::validator::VmStateValidator;

/// How the engine turns a config change / iteration boundary into a
/// runnable hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Snapshot-based persistent execution: boot images are cached per
    /// config and restored via [`L0Hypervisor::restore`].
    Snapshot,
    /// The original semantics: re-run the factory on every config
    /// change and re-derive boot state with
    /// [`L0Hypervisor::reset_guest`] each iteration.
    Rebuild,
}

impl EngineMode {
    /// Parses the CLI spelling (`snapshot` / `rebuild`).
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "snapshot" => Some(EngineMode::Snapshot),
            "rebuild" => Some(EngineMode::Rebuild),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Snapshot => "snapshot",
            EngineMode::Rebuild => "rebuild",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default number of booted images the snapshot cache keeps (beyond
/// the active one). The configurator's sanitized feature space is
/// small; a handful of images covers the vast majority of flips.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Default byte budget of the mid-scenario snapshot trie. Nodes are a
/// few kilobytes each (a [`HvSnapshot`] plus the partial trace and
/// event log), so the default holds a deep working set while still
/// exercising eviction on long campaigns.
pub const DEFAULT_PREFIX_BUDGET: usize = 8 << 20;

/// Default hotness threshold before a scenario boundary is captured
/// into the trie: a prefix must be seen this many times before it pays
/// for a snapshot. `1` captures at every boundary (the exhaustive
/// setting the equivalence tests use).
pub const DEFAULT_PREFIX_THRESHOLD: u32 = 2;

/// Slots in the fixed-size direct-mapped prefix-hotness table (a power
/// of two; collisions replace, so the table never allocates or grows).
const HOT_SLOTS: usize = 4096;

/// Counters describing how the engine serviced the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Hypervisor instances built through the factory (cold boots).
    pub factory_builds: u64,
    /// Config flips serviced from the booted-image cache.
    pub cache_hits: u64,
    /// Iteration resets serviced by snapshot restore.
    pub snapshot_restores: u64,
    /// Config flips where the validator was reused because the
    /// capabilities were unchanged.
    pub validator_reuses: u64,
    /// Config flips where the validator was rebuilt (new capabilities,
    /// corrections carried over).
    pub validator_rebuilds: u64,
    /// Executions that restored a mid-scenario snapshot from the
    /// prefix trie (deepest cached ancestor).
    pub prefix_hits: u64,
    /// Prefix-cache lookups that found no cached ancestor.
    pub prefix_misses: u64,
    /// Scenario units (init steps + runtime steps) whose re-execution
    /// was skipped by restoring a cached prefix.
    pub prefix_units_skipped: u64,
    /// Mid-scenario snapshots captured into the trie.
    pub prefix_captures: u64,
    /// Trie nodes evicted by the byte-budgeted LRU policy.
    pub prefix_evictions: u64,
}

/// One parked booted image: the instance plus its boot snapshot.
///
/// The snapshot is boxed: [`HvSnapshot`] holds VMCS/VMCB images
/// inline, and cache rotation must move pointers, not kilobytes.
struct CachedImage {
    config: HvConfig,
    hv: Box<dyn L0Hypervisor>,
    boot: Box<HvSnapshot>,
}

/// One parked validator, keyed by the feature set it was derived from.
///
/// A validator is a pure function of its [`VmxCapabilities`] (itself a
/// pure function of the feature set) plus the corrections learned from
/// the oracle. Corrections are append-only and shared across the whole
/// campaign, so `validator.corrections.len()` acts as a staleness
/// stamp: a parked validator whose correction count still matches the
/// active history is *identical* to what a fresh
/// [`VmStateValidator::with_corrections_of`] rebuild would produce,
/// and can be reused as-is.
struct ParkedValidator {
    features: FeatureSet,
    validator: VmStateValidator,
}

/// One mid-scenario checkpoint: the VM state, in-flight trace, and
/// observable event log of a scenario prefix, keyed by the prefix's
/// rolling hash.
///
/// The key is the whole identity: it covers the hypervisor config, the
/// generated VMCS/VMCB/MSR-area image digests, and every scenario unit
/// up to the boundary (see `Agent`'s chain construction), so a node can
/// only ever be restored into an execution whose prefix is
/// bit-identical to the one that captured it. Config flips and learned
/// validator corrections change the key's root — stale nodes become
/// unreachable and age out through the LRU budget.
struct PrefixNode {
    key: u64,
    /// Scenario units (init steps + runtime steps) the prefix covers.
    depth: usize,
    snapshot: Box<HvSnapshot>,
    /// The in-flight coverage trace at the boundary ([`HvSnapshot`]
    /// excludes instrumentation, so it is captured separately).
    trace: ExecTrace,
    /// The observer-visible events of the prefix, replayed on restore.
    events: Vec<ExecEvent>,
    /// The phase machine at the boundary (guest liveness, exit count).
    phase: ExecPhase,
    /// Approximate heap footprint (budget accounting).
    bytes: usize,
    /// LRU stamp (monotone clock; smallest = evict first).
    stamp: u64,
}

/// The snapshot trie and its policy state. Logically a trie over
/// scenario prefixes; physically a flat node list — prefix hashes
/// already encode the path, so lookup is a key scan from the deepest
/// requested boundary downward.
struct PrefixCache {
    enabled: bool,
    budget: usize,
    threshold: u32,
    nodes: Vec<PrefixNode>,
    /// Total approximate bytes across `nodes`.
    bytes: usize,
    /// Monotone LRU clock (deterministic: bumps on touch/insert only).
    clock: u64,
    /// Direct-mapped `(key, count)` hotness table (fixed size, replace
    /// on collision): a boundary is captured once its prefix has been
    /// seen `threshold` times.
    hot: Vec<(u64, u32)>,
    /// Reusable trace buffer for restores (the hypervisor's cleared
    /// trace is parked here between them).
    spare: ExecTrace,
}

impl PrefixCache {
    fn new() -> Self {
        PrefixCache {
            enabled: false,
            budget: DEFAULT_PREFIX_BUDGET,
            threshold: DEFAULT_PREFIX_THRESHOLD,
            nodes: Vec::new(),
            bytes: 0,
            clock: 0,
            hot: vec![(0, 0); HOT_SLOTS],
            spare: ExecTrace::new(),
        }
    }

    /// Bumps the hotness of `key`; `true` once it crossed the capture
    /// threshold.
    fn note_hot(&mut self, key: u64) -> bool {
        let slot = &mut self.hot[(key as usize) & (HOT_SLOTS - 1)];
        if slot.0 != key {
            *slot = (key, 1);
        } else {
            slot.1 = slot.1.saturating_add(1);
        }
        slot.1 >= self.threshold
    }
}

/// The engine: owns the active hypervisor instance, the booted-image
/// cache, and the (memoized) VM state validator.
pub struct ExecutionEngine {
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    mode: EngineMode,
    hv: Box<dyn L0Hypervisor>,
    /// Boot image of the active instance (`Snapshot` mode only).
    boot: Option<Box<HvSnapshot>>,
    /// Parked booted images, least-recently-used first.
    cache: Vec<CachedImage>,
    capacity: usize,
    validator: VmStateValidator,
    /// Feature set the active validator was derived from (`None` when
    /// the initial capabilities were not derived from the initial
    /// config's features — the memo shortcut then misses once).
    validator_features: Option<FeatureSet>,
    /// Parked validators, least-recently-used first (`Snapshot` mode).
    validator_pool: Vec<ParkedValidator>,
    /// The reusable per-execution buffers (trace, AFL bitmap, lines).
    scratch: ExecScratch,
    /// The mid-scenario snapshot trie (`Snapshot` mode, off by default).
    prefix: PrefixCache,
    stats: EngineStats,
}

impl ExecutionEngine {
    /// Boots an engine on `factory` with the given initial config and
    /// validator capabilities.
    pub fn new(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        config: HvConfig,
        validator_caps: VmxCapabilities,
        mode: EngineMode,
    ) -> Self {
        let features = config.features;
        let hv = factory(config);
        let boot = match mode {
            EngineMode::Snapshot => Some(Box::new(hv.snapshot())),
            EngineMode::Rebuild => None,
        };
        let validator_features = if VmxCapabilities::from_features(features) == validator_caps {
            Some(features)
        } else {
            None
        };
        let scratch = ExecScratch::new(hv.coverage_map(), MAP_SIZE);
        ExecutionEngine {
            factory,
            mode,
            hv,
            boot,
            cache: Vec::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            validator: VmStateValidator::new(validator_caps),
            validator_features,
            validator_pool: Vec::new(),
            scratch,
            prefix: PrefixCache::new(),
            stats: EngineStats {
                factory_builds: 1,
                ..EngineStats::default()
            },
        }
    }

    /// Bounds both the booted-image cache and the validator pool
    /// (snapshot mode). `0` disables caching entirely — every config
    /// flip becomes a cold boot, and every capability-changing flip a
    /// validator rebuild (only the active-features shortcut survives).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.set_cache_capacity(capacity);
        self
    }

    /// Non-consuming form of
    /// [`with_cache_capacity`](Self::with_cache_capacity).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Enables (or disables) the mid-scenario snapshot trie. Only
    /// effective in `Snapshot` mode — prefix restores are snapshot
    /// restores, and `Rebuild` exists precisely to measure life without
    /// them.
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.set_prefix_cache(enabled);
        self
    }

    /// Non-consuming form of [`with_prefix_cache`](Self::with_prefix_cache).
    pub fn set_prefix_cache(&mut self, enabled: bool) {
        self.prefix.enabled = enabled;
    }

    /// Sets the trie's byte budget (LRU-evicted past it). `0` keeps the
    /// trie permanently empty — every capture is immediately evicted.
    pub fn set_prefix_budget(&mut self, bytes: usize) {
        self.prefix.budget = bytes;
    }

    /// Sets the capture hotness threshold (`1` = snapshot at every
    /// scenario boundary).
    pub fn set_prefix_threshold(&mut self, threshold: u32) {
        self.prefix.threshold = threshold.max(1);
    }

    /// `true` when the prefix trie is active (enabled and in `Snapshot`
    /// mode).
    pub fn prefix_enabled(&self) -> bool {
        self.prefix.enabled && self.mode == EngineMode::Snapshot
    }

    /// Looks up the deepest cached ancestor of a prefix-hash chain and
    /// restores it: VM state from the node's snapshot, the in-flight
    /// trace from the node's recorded partial trace. `chain[k]` must be
    /// the rolling hash after `k` scenario units (`chain[0]` = the
    /// post-boot root, which is never a node — that case is the plain
    /// boot restore [`prepare`](Self::prepare) already performed).
    ///
    /// Returns the restored node's index for
    /// [`prefix_node_events`](Self::prefix_node_events) /
    /// [`prefix_node_phase`](Self::prefix_node_phase) /
    /// [`prefix_node_depth`](Self::prefix_node_depth); the index stays
    /// valid until the next capture or eviction.
    pub fn prefix_restore(&mut self, chain: &[u64]) -> Option<usize> {
        if !self.prefix_enabled() {
            return None;
        }
        let mut found = None;
        'deepest: for k in (1..chain.len()).rev() {
            for (i, node) in self.prefix.nodes.iter().enumerate() {
                if node.key == chain[k] {
                    found = Some(i);
                    break 'deepest;
                }
            }
        }
        let Some(i) = found else {
            self.stats.prefix_misses += 1;
            return None;
        };
        let node = &mut self.prefix.nodes[i];
        self.hv.restore(&node.snapshot);
        // The hypervisor's trace is empty at execution start (the last
        // collection swapped a cleared one in); park it as the next
        // spare and hand the prefix's partial trace over.
        self.prefix.spare.copy_from(&node.trace);
        self.hv.swap_trace(&mut self.prefix.spare);
        node.stamp = self.prefix.clock;
        self.prefix.clock += 1;
        self.stats.prefix_hits += 1;
        self.stats.prefix_units_skipped += node.depth as u64;
        Some(i)
    }

    /// The recorded observer events of a restored node (replay these
    /// into the execution's observer before running the suffix).
    pub fn prefix_node_events(&self, idx: usize) -> &[ExecEvent] {
        &self.prefix.nodes[idx].events
    }

    /// The phase machine at a restored node's boundary.
    pub fn prefix_node_phase(&self, idx: usize) -> ExecPhase {
        self.prefix.nodes[idx].phase
    }

    /// The number of scenario units a restored node covers.
    pub fn prefix_node_depth(&self, idx: usize) -> usize {
        self.prefix.nodes[idx].depth
    }

    /// Notes that live execution crossed a scenario boundary whose
    /// prefix hash is `key`: bumps the boundary's hotness and, once hot
    /// and absent from the trie, captures a node (snapshot + partial
    /// trace + the `events` recorded so far) under the byte-budgeted
    /// LRU policy.
    ///
    /// Never called for boundaries past a host death — execution stops
    /// there, so the state is not a resumable prefix.
    pub fn prefix_note_boundary(
        &mut self,
        key: u64,
        depth: usize,
        phase: ExecPhase,
        events: &[ExecEvent],
    ) {
        if !self.prefix_enabled() || !self.prefix.note_hot(key) {
            return;
        }
        if self.prefix.nodes.iter().any(|n| n.key == key) {
            return;
        }
        let mut trace = ExecTrace::new();
        trace.copy_from(self.hv.trace());
        let node = PrefixNode {
            key,
            depth,
            snapshot: Box::new(self.hv.snapshot()),
            trace,
            events: events.to_vec(),
            phase,
            bytes: 0,
            stamp: self.prefix.clock,
        };
        self.prefix.clock += 1;
        let bytes = std::mem::size_of::<PrefixNode>()
            + std::mem::size_of::<HvSnapshot>()
            + node.trace.approx_bytes()
            + node.events.len() * std::mem::size_of::<ExecEvent>();
        self.prefix.nodes.push(PrefixNode { bytes, ..node });
        self.prefix.bytes += bytes;
        self.stats.prefix_captures += 1;
        // Byte-budgeted LRU: evict stalest-stamp nodes until the trie
        // fits (possibly including the one just captured when the
        // budget is smaller than a single node).
        while self.prefix.bytes > self.prefix.budget && !self.prefix.nodes.is_empty() {
            let stalest = self
                .prefix
                .nodes
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| n.stamp)
                .map(|(i, _)| i)
                .expect("non-empty");
            let evicted = self.prefix.nodes.remove(stalest);
            self.prefix.bytes -= evicted.bytes;
            self.stats.prefix_evictions += 1;
        }
    }

    /// The engine's mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Hot-path counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The active hypervisor instance.
    pub fn hv(&self) -> &dyn L0Hypervisor {
        self.hv.as_ref()
    }

    /// Mutable access to the active instance (the harness drives it).
    pub fn hv_mut(&mut self) -> &mut dyn L0Hypervisor {
        self.hv.as_mut()
    }

    /// The validator (exposes the oracle-correction state).
    pub fn validator(&self) -> &VmStateValidator {
        &self.validator
    }

    /// Mutable validator access (the generation pipeline learns).
    pub fn validator_mut(&mut self) -> &mut VmStateValidator {
        &mut self.validator
    }

    /// The per-execution scratch buffers. After
    /// [`ExecutionEngine::collect_coverage`], `scratch.bitmap`,
    /// `scratch.lines`, and `scratch.trace` describe the latest
    /// execution; they stay valid until the next collection.
    pub fn scratch(&self) -> &ExecScratch {
        &self.scratch
    }

    /// Mutable scratch access (benches and tests that drive the
    /// collection protocol by hand).
    pub fn scratch_mut(&mut self) -> &mut ExecScratch {
        &mut self.scratch
    }

    /// Collects the just-finished execution's coverage into the
    /// reusable scratch, allocation-free: wipes the previous exec's
    /// bitmap projection edge-by-edge, swaps the hypervisor's trace out
    /// (handing the cleared one back in), and projects it onto the
    /// scratch bitmap and line set.
    pub fn collect_coverage(&mut self) {
        self.scratch.begin_exec();
        self.hv.swap_trace(&mut self.scratch.trace);
        self.scratch.project(self.hv.coverage_map());
    }

    /// Watchdog slow path: fully reboots the active host, clearing its
    /// health state. Deliberately *not* snapshot-based — a dead host
    /// models a real machine power-cycle (§3.2).
    pub fn reboot(&mut self) {
        self.hv.reboot_host();
    }

    /// Iteration fast path: makes the active instance run `config` in
    /// freshly-booted guest state.
    ///
    /// In `Rebuild` mode this is the original agent behavior: a config
    /// change re-runs the factory and the validator rebuild, and every
    /// call re-derives boot state via `reset_guest`. In `Snapshot` mode
    /// a config change swaps in a cached booted image (cold-booting
    /// only on a cache miss) and every call restores the boot snapshot.
    pub fn prepare(&mut self, config: &HvConfig) {
        if self.hv.config() != config {
            self.switch_config(config);
        } else {
            self.reset();
        }
    }

    /// Resets guest state without a config change.
    fn reset(&mut self) {
        match self.mode {
            EngineMode::Rebuild => self.hv.reset_guest(),
            EngineMode::Snapshot => {
                let boot = self.boot.as_ref().expect("snapshot mode has a boot image");
                self.hv.restore(boot);
                self.stats.snapshot_restores += 1;
            }
        }
    }

    /// Services a config flip: swap (or rebuild) the instance, then
    /// memoize-or-rebuild the validator.
    fn switch_config(&mut self, config: &HvConfig) {
        match self.mode {
            EngineMode::Rebuild => {
                self.hv = (self.factory)(config.clone());
                self.stats.factory_builds += 1;
                // Parity with the original path: reset the (already
                // fresh) guest state unconditionally.
                self.hv.reset_guest();
            }
            EngineMode::Snapshot => {
                let incoming = match self.cache.iter().position(|c| c.config == *config) {
                    Some(i) => {
                        self.stats.cache_hits += 1;
                        self.cache.remove(i)
                    }
                    None => {
                        let hv = (self.factory)(config.clone());
                        self.stats.factory_builds += 1;
                        let boot = Box::new(hv.snapshot());
                        CachedImage {
                            config: config.clone(),
                            hv,
                            boot,
                        }
                    }
                };
                let outgoing = CachedImage {
                    config: self.hv.config().clone(),
                    hv: std::mem::replace(&mut self.hv, incoming.hv),
                    boot: self
                        .boot
                        .replace(incoming.boot)
                        .expect("snapshot mode has a boot image"),
                };
                if self.capacity > 0 {
                    self.cache.push(outgoing);
                    if self.cache.len() > self.capacity {
                        self.cache.remove(0);
                    }
                }
                // The cached image was parked mid-campaign (or is
                // freshly booted): restore its boot state either way.
                let boot = self.boot.as_ref().expect("just replaced");
                self.hv.restore(boot);
                self.stats.snapshot_restores += 1;
            }
        }
        match self.mode {
            // Parity with the original agent: recompute the validator
            // (and re-clone its correction history) on every flip.
            EngineMode::Rebuild => {
                self.validator = VmStateValidator::with_corrections_of(
                    VmxCapabilities::from_features(config.features),
                    &self.validator,
                );
                self.stats.validator_rebuilds += 1;
            }
            EngineMode::Snapshot => self.switch_validator(config.features),
        }
    }

    /// Memoized validator switch (`Snapshot` mode): a validator is a
    /// pure function of (feature set, correction history), so parked
    /// validators whose correction count still matches the active
    /// history are reused verbatim — see [`ParkedValidator`].
    fn switch_validator(&mut self, features: FeatureSet) {
        if self.validator_features == Some(features) {
            // Capability-neutral flip (e.g. only `nested` moved): the
            // active validator is exactly what a rebuild would produce.
            self.stats.validator_reuses += 1;
            return;
        }
        let stamp = self.validator.corrections.len();
        let parked = match self
            .validator_pool
            .iter()
            .position(|p| p.features == features)
        {
            Some(i) if self.validator_pool[i].validator.corrections.len() == stamp => {
                Some(self.validator_pool.remove(i).validator)
            }
            Some(i) => {
                // Stale: corrections were learned since it was parked.
                self.validator_pool.remove(i);
                None
            }
            None => None,
        };
        let next = match parked {
            Some(v) => {
                self.stats.validator_reuses += 1;
                v
            }
            None => {
                self.stats.validator_rebuilds += 1;
                VmStateValidator::with_corrections_of(
                    VmxCapabilities::from_features(features),
                    &self.validator,
                )
            }
        };
        let prev = std::mem::replace(&mut self.validator, next);
        if let Some(prev_features) = self.validator_features {
            if self.capacity > 0 {
                self.validator_pool.push(ParkedValidator {
                    features: prev_features,
                    validator: prev,
                });
                if self.validator_pool.len() > self.capacity {
                    self.validator_pool.remove(0);
                }
            }
        }
        self.validator_features = Some(features);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::{Vkvm, Vxen};
    use nf_x86::{CpuFeature, CpuVendor, FeatureSet};

    fn kvm_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|c| Box::new(Vkvm::new(c)))
    }

    fn engine(mode: EngineMode) -> ExecutionEngine {
        let config = HvConfig::default_for(CpuVendor::Intel);
        let caps = VmxCapabilities::from_features(
            FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
        );
        ExecutionEngine::new(kvm_factory(), config, caps, mode)
    }

    fn flipped_config() -> HvConfig {
        let mut config = HvConfig::default_for(CpuVendor::Intel);
        config.features.remove(CpuFeature::Ept);
        config
    }

    #[test]
    fn config_flip_round_trip_hits_the_cache() {
        let mut e = engine(EngineMode::Snapshot);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        e.prepare(&other);
        assert_eq!(e.stats().factory_builds, 2, "first flip cold-boots");
        e.prepare(&base);
        e.prepare(&other);
        e.prepare(&base);
        let stats = e.stats();
        assert_eq!(stats.factory_builds, 2, "round trips must not rebuild");
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(e.hv().config(), &base);
    }

    #[test]
    fn rebuild_mode_pays_the_factory_on_every_flip() {
        let mut e = engine(EngineMode::Rebuild);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        for _ in 0..3 {
            e.prepare(&other);
            e.prepare(&base);
        }
        assert_eq!(e.stats().factory_builds, 7);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn nested_only_flip_reuses_the_validator() {
        // `nested` is not part of the capability surface: flipping it
        // must swap the instance but keep the validator untouched.
        let mut e = engine(EngineMode::Snapshot);
        e.validator_mut().apply_known_quirk();
        let corrections_ptr = e.validator().corrections.as_ptr();
        let mut nested_off = HvConfig::default_for(CpuVendor::Intel);
        nested_off.nested = false;
        e.prepare(&nested_off);
        assert_eq!(e.stats().validator_reuses, 1);
        assert_eq!(e.stats().validator_rebuilds, 0);
        assert_eq!(
            e.validator().corrections.as_ptr(),
            corrections_ptr,
            "same caps must share the validator, not clone it"
        );
        // A capability-changing flip still rebuilds.
        e.prepare(&flipped_config());
        assert_eq!(e.stats().validator_rebuilds, 1);
    }

    #[test]
    fn lru_eviction_bounds_the_cache() {
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(2);
        let mut configs = Vec::new();
        for n in 0..4u32 {
            let mut c = HvConfig::default_for(CpuVendor::Intel);
            for (i, f) in [CpuFeature::Ept, CpuFeature::Vpid].iter().enumerate() {
                if n & (1 << i) != 0 {
                    c.features.remove(*f);
                }
            }
            configs.push(c);
        }
        for c in &configs {
            e.prepare(c);
        }
        assert!(e.cache.len() <= 2, "cache exceeded its bound");
        // The least-recently-used image (configs[0]) was evicted: going
        // back is a cold boot, not a hit.
        let hits = e.stats().cache_hits;
        let builds = e.stats().factory_builds;
        e.prepare(&configs[0]);
        assert_eq!(e.stats().cache_hits, hits);
        assert_eq!(e.stats().factory_builds, builds + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(0);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        e.prepare(&other);
        e.prepare(&base);
        assert_eq!(e.stats().factory_builds, 3);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn restore_equals_reset_guest_state() {
        // The boot snapshot restore must land on exactly the state
        // `reset_guest` lands on — the bit-identity between the two
        // engine modes rests on this.
        let config = HvConfig::default_for(CpuVendor::Intel);
        for mut hv in [
            Box::new(Vkvm::new(config.clone())) as Box<dyn L0Hypervisor>,
            Box::new(Vxen::new(config.clone())) as Box<dyn L0Hypervisor>,
        ] {
            let boot = hv.snapshot();
            hv.l1_exec(nf_silicon::GuestInstr::MovToCr(
                nf_silicon::CrIndex::Cr4,
                nf_x86::Cr4::VMXE | nf_x86::Cr4::PAE,
            ));
            hv.l1_exec(nf_silicon::GuestInstr::Vmxon(0x1000));
            assert_ne!(hv.snapshot(), boot, "probe must dirty state");
            hv.reset_guest();
            let via_reset = hv.snapshot();
            hv.restore(&boot);
            let via_restore = hv.snapshot();
            assert_eq!(via_restore, via_reset, "{}", hv.name());
            assert_eq!(via_restore, boot, "{}", hv.name());
        }
    }

    #[test]
    fn collect_coverage_recycles_the_scratch() {
        let mut e = engine(EngineMode::Snapshot);
        let probe = nf_silicon::GuestInstr::Rdmsr(nf_x86::Msr::VmxBasic.index());
        e.hv_mut().l1_exec(probe);
        e.collect_coverage();
        let first_bitmap = e.scratch().bitmap.clone();
        let first_lines = e.scratch().lines.clone();
        assert!(!e.scratch().trace.is_empty());
        assert!(first_bitmap.iter().any(|&b| b != 0));
        assert!(first_lines.count() > 0);

        // A second identical exec reproduces the same scratch contents:
        // the wipe left no residue and the swap handed a clean trace
        // back to the hypervisor.
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.hv_mut().l1_exec(probe);
        e.collect_coverage();
        assert_eq!(e.scratch().bitmap, first_bitmap);
        assert_eq!(e.scratch().lines, first_lines);

        // An empty exec leaves an all-zero bitmap and empty lines.
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.collect_coverage();
        assert!(e.scratch().bitmap.iter().all(|&b| b == 0));
        assert_eq!(e.scratch().lines.count(), 0);
        assert!(e.scratch().trace.is_empty());
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [EngineMode::Snapshot, EngineMode::Rebuild] {
            assert_eq!(EngineMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(EngineMode::parse("warp"), None);
    }

    #[test]
    fn prefix_cache_requires_snapshot_mode() {
        let mut rebuild = engine(EngineMode::Rebuild);
        rebuild.set_prefix_cache(true);
        assert!(!rebuild.prefix_enabled(), "rebuild mode has no snapshots");
        assert_eq!(rebuild.prefix_restore(&[1, 2, 3]), None);
        assert_eq!(rebuild.stats().prefix_misses, 0, "disabled != miss");

        let mut snapshot = engine(EngineMode::Snapshot);
        assert!(!snapshot.prefix_enabled(), "off by default");
        snapshot.set_prefix_cache(true);
        assert!(snapshot.prefix_enabled());
    }

    #[test]
    fn hotness_threshold_gates_capture() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(2);
        let phase = crate::harness::ExecPhase::boot();
        e.prefix_note_boundary(0xabc, 1, phase, &[]);
        assert_eq!(e.stats().prefix_captures, 0, "first sighting is cold");
        e.prefix_note_boundary(0xabc, 1, phase, &[]);
        assert_eq!(e.stats().prefix_captures, 1, "second sighting is hot");
        e.prefix_note_boundary(0xabc, 1, phase, &[]);
        assert_eq!(e.stats().prefix_captures, 1, "already cached");
        assert_eq!(e.prefix.nodes.len(), 1);
    }

    #[test]
    fn prefix_restore_picks_the_deepest_cached_ancestor() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        let phase = crate::harness::ExecPhase::boot();
        // chain[k] is the rolling hash after k units; cache depths 2
        // and 5 of a 7-unit scenario.
        let chain: Vec<u64> = (0..8).map(|k| 0x1000 + k).collect();
        e.prefix_note_boundary(chain[2], 2, phase, &[]);
        e.prefix_note_boundary(chain[5], 5, phase, &[]);
        let idx = e.prefix_restore(&chain).expect("ancestor cached");
        assert_eq!(e.prefix_node_depth(idx), 5, "deepest wins");
        assert_eq!(e.stats().prefix_hits, 1);
        assert_eq!(e.stats().prefix_units_skipped, 5);
        // A chain sharing only the shallow prefix restores depth 2.
        let mut short = chain[..3].to_vec();
        short.push(0x9999);
        let idx = e.prefix_restore(&short).expect("shallow ancestor");
        assert_eq!(e.prefix_node_depth(idx), 2);
        // chain[0] is the boot root — never a node, so a chain that
        // shares nothing is a miss.
        assert_eq!(e.prefix_restore(&[chain[0], 0x7777]), None);
        assert_eq!(e.stats().prefix_misses, 1);
    }

    #[test]
    fn byte_budget_evicts_the_stalest_node() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        let phase = crate::harness::ExecPhase::boot();
        e.prefix_note_boundary(1, 1, phase, &[]);
        let node_bytes = e.prefix.bytes;
        assert!(node_bytes > 0);
        // Room for exactly two nodes.
        e.set_prefix_budget(node_bytes * 2);
        e.prefix_note_boundary(2, 2, phase, &[]);
        assert_eq!(e.prefix.nodes.len(), 2);
        assert_eq!(e.stats().prefix_evictions, 0);
        // Freshen node 1, then overflow: node 2 is now the stalest.
        e.prefix_restore(&[0, 1]);
        e.prefix_note_boundary(3, 3, phase, &[]);
        assert_eq!(e.stats().prefix_evictions, 1);
        let keys: Vec<u64> = e.prefix.nodes.iter().map(|n| n.key).collect();
        assert_eq!(keys, vec![1, 3], "LRU evicts the least recently used");
        assert_eq!(e.prefix.bytes, node_bytes * 2);
    }

    #[test]
    fn prefix_restore_round_trips_hypervisor_state() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        // Perturb the hypervisor past boot, capture, reset and perturb
        // differently, then restore: the captured state must come back
        // exactly.
        use nf_silicon::{CrIndex, GuestInstr};
        use nf_x86::Cr4;
        e.hv_mut()
            .l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
        let captured = e.hv().observe_guest();
        e.prefix_note_boundary(0x55, 3, crate::harness::ExecPhase::boot(), &[]);
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.hv_mut().l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, 0));
        let idx = e.prefix_restore(&[0, 0x55]).expect("cached");
        assert_eq!(e.prefix_node_depth(idx), 3);
        assert_eq!(e.hv().observe_guest(), captured);
    }
}
