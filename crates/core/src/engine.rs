//! The persistent-execution engine: the iteration hot path.
//!
//! The paper's whole premise is that a fuzz-harness VM makes each
//! fuzzing iteration cheap by avoiding guest-OS reboots (§3.2, §4.5).
//! The engine realizes that on the simulator side:
//!
//! - **Snapshot restore instead of reboot.** A boot-time
//!   [`HvSnapshot`] is captured once per hypervisor instance; before
//!   every test case the engine *restores* it (delta copy of dirtied
//!   state) instead of re-deriving boot state.
//! - **Booted-image cache.** The vCPU configurator flips the
//!   [`HvConfig`] constantly; instead of re-running the hypervisor
//!   factory on every flip, the engine keeps an LRU-bounded cache of
//!   booted instances keyed by config, and a flip restores a cached
//!   image.
//! - **Memoized validator corrections.** The [`VmStateValidator`] is a
//!   pure function of its [`VmxCapabilities`] plus the corrections
//!   learned from the oracle; when a config flip leaves the
//!   capabilities unchanged (e.g. only the `nested` switch moved), the
//!   engine reuses the validator as-is instead of rebuilding it and
//!   re-cloning its correction history.
//!
//! - **Reusable execution scratch.** The engine owns the
//!   [`ExecScratch`] of the zero-allocation hot path: per iteration the
//!   hypervisor's trace is *swapped* (not cloned) into the scratch,
//!   projected onto the reusable AFL bitmap with a targeted wipe of the
//!   previous projection, and the line set is cleared in place — the
//!   steady-state loop performs no heap allocation (the `hotpath`
//!   bench's counting allocator enforces this).
//!
//! [`EngineMode::Rebuild`] preserves the original full-rebuild
//! semantics for A/B measurement (`necofuzz --engine rebuild`, the
//! `throughput` bench). The two modes are **bit-identical** in
//! observable results — `tests/engine_equivalence.rs` asserts
//! [`crate::campaign::CampaignResult`] equality over the whole
//! backend × mode × mask grid.

use nf_coverage::ExecScratch;
use nf_fuzz::MAP_SIZE;
use nf_hv::{HvConfig, HvSnapshot, L0Hypervisor};
use nf_vmx::VmxCapabilities;
use nf_x86::FeatureSet;

use crate::validator::VmStateValidator;

/// How the engine turns a config change / iteration boundary into a
/// runnable hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Snapshot-based persistent execution: boot images are cached per
    /// config and restored via [`L0Hypervisor::restore`].
    Snapshot,
    /// The original semantics: re-run the factory on every config
    /// change and re-derive boot state with
    /// [`L0Hypervisor::reset_guest`] each iteration.
    Rebuild,
}

impl EngineMode {
    /// Parses the CLI spelling (`snapshot` / `rebuild`).
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "snapshot" => Some(EngineMode::Snapshot),
            "rebuild" => Some(EngineMode::Rebuild),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Snapshot => "snapshot",
            EngineMode::Rebuild => "rebuild",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default number of booted images the snapshot cache keeps (beyond
/// the active one). The configurator's sanitized feature space is
/// small; a handful of images covers the vast majority of flips.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Counters describing how the engine serviced the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Hypervisor instances built through the factory (cold boots).
    pub factory_builds: u64,
    /// Config flips serviced from the booted-image cache.
    pub cache_hits: u64,
    /// Iteration resets serviced by snapshot restore.
    pub snapshot_restores: u64,
    /// Config flips where the validator was reused because the
    /// capabilities were unchanged.
    pub validator_reuses: u64,
    /// Config flips where the validator was rebuilt (new capabilities,
    /// corrections carried over).
    pub validator_rebuilds: u64,
}

/// One parked booted image: the instance plus its boot snapshot.
///
/// The snapshot is boxed: [`HvSnapshot`] holds VMCS/VMCB images
/// inline, and cache rotation must move pointers, not kilobytes.
struct CachedImage {
    config: HvConfig,
    hv: Box<dyn L0Hypervisor>,
    boot: Box<HvSnapshot>,
}

/// One parked validator, keyed by the feature set it was derived from.
///
/// A validator is a pure function of its [`VmxCapabilities`] (itself a
/// pure function of the feature set) plus the corrections learned from
/// the oracle. Corrections are append-only and shared across the whole
/// campaign, so `validator.corrections.len()` acts as a staleness
/// stamp: a parked validator whose correction count still matches the
/// active history is *identical* to what a fresh
/// [`VmStateValidator::with_corrections_of`] rebuild would produce,
/// and can be reused as-is.
struct ParkedValidator {
    features: FeatureSet,
    validator: VmStateValidator,
}

/// The engine: owns the active hypervisor instance, the booted-image
/// cache, and the (memoized) VM state validator.
pub struct ExecutionEngine {
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    mode: EngineMode,
    hv: Box<dyn L0Hypervisor>,
    /// Boot image of the active instance (`Snapshot` mode only).
    boot: Option<Box<HvSnapshot>>,
    /// Parked booted images, least-recently-used first.
    cache: Vec<CachedImage>,
    capacity: usize,
    validator: VmStateValidator,
    /// Feature set the active validator was derived from (`None` when
    /// the initial capabilities were not derived from the initial
    /// config's features — the memo shortcut then misses once).
    validator_features: Option<FeatureSet>,
    /// Parked validators, least-recently-used first (`Snapshot` mode).
    validator_pool: Vec<ParkedValidator>,
    /// The reusable per-execution buffers (trace, AFL bitmap, lines).
    scratch: ExecScratch,
    stats: EngineStats,
}

impl ExecutionEngine {
    /// Boots an engine on `factory` with the given initial config and
    /// validator capabilities.
    pub fn new(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        config: HvConfig,
        validator_caps: VmxCapabilities,
        mode: EngineMode,
    ) -> Self {
        let features = config.features;
        let hv = factory(config);
        let boot = match mode {
            EngineMode::Snapshot => Some(Box::new(hv.snapshot())),
            EngineMode::Rebuild => None,
        };
        let validator_features = if VmxCapabilities::from_features(features) == validator_caps {
            Some(features)
        } else {
            None
        };
        let scratch = ExecScratch::new(hv.coverage_map(), MAP_SIZE);
        ExecutionEngine {
            factory,
            mode,
            hv,
            boot,
            cache: Vec::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            validator: VmStateValidator::new(validator_caps),
            validator_features,
            validator_pool: Vec::new(),
            scratch,
            stats: EngineStats {
                factory_builds: 1,
                ..EngineStats::default()
            },
        }
    }

    /// Bounds both the booted-image cache and the validator pool
    /// (snapshot mode). `0` disables caching entirely — every config
    /// flip becomes a cold boot, and every capability-changing flip a
    /// validator rebuild (only the active-features shortcut survives).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// The engine's mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Hot-path counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The active hypervisor instance.
    pub fn hv(&self) -> &dyn L0Hypervisor {
        self.hv.as_ref()
    }

    /// Mutable access to the active instance (the harness drives it).
    pub fn hv_mut(&mut self) -> &mut dyn L0Hypervisor {
        self.hv.as_mut()
    }

    /// The validator (exposes the oracle-correction state).
    pub fn validator(&self) -> &VmStateValidator {
        &self.validator
    }

    /// Mutable validator access (the generation pipeline learns).
    pub fn validator_mut(&mut self) -> &mut VmStateValidator {
        &mut self.validator
    }

    /// The per-execution scratch buffers. After
    /// [`ExecutionEngine::collect_coverage`], `scratch.bitmap`,
    /// `scratch.lines`, and `scratch.trace` describe the latest
    /// execution; they stay valid until the next collection.
    pub fn scratch(&self) -> &ExecScratch {
        &self.scratch
    }

    /// Mutable scratch access (benches and tests that drive the
    /// collection protocol by hand).
    pub fn scratch_mut(&mut self) -> &mut ExecScratch {
        &mut self.scratch
    }

    /// Collects the just-finished execution's coverage into the
    /// reusable scratch, allocation-free: wipes the previous exec's
    /// bitmap projection edge-by-edge, swaps the hypervisor's trace out
    /// (handing the cleared one back in), and projects it onto the
    /// scratch bitmap and line set.
    pub fn collect_coverage(&mut self) {
        self.scratch.begin_exec();
        self.hv.swap_trace(&mut self.scratch.trace);
        self.scratch.project(self.hv.coverage_map());
    }

    /// Watchdog slow path: fully reboots the active host, clearing its
    /// health state. Deliberately *not* snapshot-based — a dead host
    /// models a real machine power-cycle (§3.2).
    pub fn reboot(&mut self) {
        self.hv.reboot_host();
    }

    /// Iteration fast path: makes the active instance run `config` in
    /// freshly-booted guest state.
    ///
    /// In `Rebuild` mode this is the original agent behavior: a config
    /// change re-runs the factory and the validator rebuild, and every
    /// call re-derives boot state via `reset_guest`. In `Snapshot` mode
    /// a config change swaps in a cached booted image (cold-booting
    /// only on a cache miss) and every call restores the boot snapshot.
    pub fn prepare(&mut self, config: &HvConfig) {
        if self.hv.config() != config {
            self.switch_config(config);
        } else {
            self.reset();
        }
    }

    /// Resets guest state without a config change.
    fn reset(&mut self) {
        match self.mode {
            EngineMode::Rebuild => self.hv.reset_guest(),
            EngineMode::Snapshot => {
                let boot = self.boot.as_ref().expect("snapshot mode has a boot image");
                self.hv.restore(boot);
                self.stats.snapshot_restores += 1;
            }
        }
    }

    /// Services a config flip: swap (or rebuild) the instance, then
    /// memoize-or-rebuild the validator.
    fn switch_config(&mut self, config: &HvConfig) {
        match self.mode {
            EngineMode::Rebuild => {
                self.hv = (self.factory)(config.clone());
                self.stats.factory_builds += 1;
                // Parity with the original path: reset the (already
                // fresh) guest state unconditionally.
                self.hv.reset_guest();
            }
            EngineMode::Snapshot => {
                let incoming = match self.cache.iter().position(|c| c.config == *config) {
                    Some(i) => {
                        self.stats.cache_hits += 1;
                        self.cache.remove(i)
                    }
                    None => {
                        let hv = (self.factory)(config.clone());
                        self.stats.factory_builds += 1;
                        let boot = Box::new(hv.snapshot());
                        CachedImage {
                            config: config.clone(),
                            hv,
                            boot,
                        }
                    }
                };
                let outgoing = CachedImage {
                    config: self.hv.config().clone(),
                    hv: std::mem::replace(&mut self.hv, incoming.hv),
                    boot: self
                        .boot
                        .replace(incoming.boot)
                        .expect("snapshot mode has a boot image"),
                };
                if self.capacity > 0 {
                    self.cache.push(outgoing);
                    if self.cache.len() > self.capacity {
                        self.cache.remove(0);
                    }
                }
                // The cached image was parked mid-campaign (or is
                // freshly booted): restore its boot state either way.
                let boot = self.boot.as_ref().expect("just replaced");
                self.hv.restore(boot);
                self.stats.snapshot_restores += 1;
            }
        }
        match self.mode {
            // Parity with the original agent: recompute the validator
            // (and re-clone its correction history) on every flip.
            EngineMode::Rebuild => {
                self.validator = VmStateValidator::with_corrections_of(
                    VmxCapabilities::from_features(config.features),
                    &self.validator,
                );
                self.stats.validator_rebuilds += 1;
            }
            EngineMode::Snapshot => self.switch_validator(config.features),
        }
    }

    /// Memoized validator switch (`Snapshot` mode): a validator is a
    /// pure function of (feature set, correction history), so parked
    /// validators whose correction count still matches the active
    /// history are reused verbatim — see [`ParkedValidator`].
    fn switch_validator(&mut self, features: FeatureSet) {
        if self.validator_features == Some(features) {
            // Capability-neutral flip (e.g. only `nested` moved): the
            // active validator is exactly what a rebuild would produce.
            self.stats.validator_reuses += 1;
            return;
        }
        let stamp = self.validator.corrections.len();
        let parked = match self
            .validator_pool
            .iter()
            .position(|p| p.features == features)
        {
            Some(i) if self.validator_pool[i].validator.corrections.len() == stamp => {
                Some(self.validator_pool.remove(i).validator)
            }
            Some(i) => {
                // Stale: corrections were learned since it was parked.
                self.validator_pool.remove(i);
                None
            }
            None => None,
        };
        let next = match parked {
            Some(v) => {
                self.stats.validator_reuses += 1;
                v
            }
            None => {
                self.stats.validator_rebuilds += 1;
                VmStateValidator::with_corrections_of(
                    VmxCapabilities::from_features(features),
                    &self.validator,
                )
            }
        };
        let prev = std::mem::replace(&mut self.validator, next);
        if let Some(prev_features) = self.validator_features {
            if self.capacity > 0 {
                self.validator_pool.push(ParkedValidator {
                    features: prev_features,
                    validator: prev,
                });
                if self.validator_pool.len() > self.capacity {
                    self.validator_pool.remove(0);
                }
            }
        }
        self.validator_features = Some(features);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::{Vkvm, Vxen};
    use nf_x86::{CpuFeature, CpuVendor, FeatureSet};

    fn kvm_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|c| Box::new(Vkvm::new(c)))
    }

    fn engine(mode: EngineMode) -> ExecutionEngine {
        let config = HvConfig::default_for(CpuVendor::Intel);
        let caps = VmxCapabilities::from_features(
            FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
        );
        ExecutionEngine::new(kvm_factory(), config, caps, mode)
    }

    fn flipped_config() -> HvConfig {
        let mut config = HvConfig::default_for(CpuVendor::Intel);
        config.features.remove(CpuFeature::Ept);
        config
    }

    #[test]
    fn config_flip_round_trip_hits_the_cache() {
        let mut e = engine(EngineMode::Snapshot);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        e.prepare(&other);
        assert_eq!(e.stats().factory_builds, 2, "first flip cold-boots");
        e.prepare(&base);
        e.prepare(&other);
        e.prepare(&base);
        let stats = e.stats();
        assert_eq!(stats.factory_builds, 2, "round trips must not rebuild");
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(e.hv().config(), &base);
    }

    #[test]
    fn rebuild_mode_pays_the_factory_on_every_flip() {
        let mut e = engine(EngineMode::Rebuild);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        for _ in 0..3 {
            e.prepare(&other);
            e.prepare(&base);
        }
        assert_eq!(e.stats().factory_builds, 7);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn nested_only_flip_reuses_the_validator() {
        // `nested` is not part of the capability surface: flipping it
        // must swap the instance but keep the validator untouched.
        let mut e = engine(EngineMode::Snapshot);
        e.validator_mut().apply_known_quirk();
        let corrections_ptr = e.validator().corrections.as_ptr();
        let mut nested_off = HvConfig::default_for(CpuVendor::Intel);
        nested_off.nested = false;
        e.prepare(&nested_off);
        assert_eq!(e.stats().validator_reuses, 1);
        assert_eq!(e.stats().validator_rebuilds, 0);
        assert_eq!(
            e.validator().corrections.as_ptr(),
            corrections_ptr,
            "same caps must share the validator, not clone it"
        );
        // A capability-changing flip still rebuilds.
        e.prepare(&flipped_config());
        assert_eq!(e.stats().validator_rebuilds, 1);
    }

    #[test]
    fn lru_eviction_bounds_the_cache() {
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(2);
        let mut configs = Vec::new();
        for n in 0..4u32 {
            let mut c = HvConfig::default_for(CpuVendor::Intel);
            for (i, f) in [CpuFeature::Ept, CpuFeature::Vpid].iter().enumerate() {
                if n & (1 << i) != 0 {
                    c.features.remove(*f);
                }
            }
            configs.push(c);
        }
        for c in &configs {
            e.prepare(c);
        }
        assert!(e.cache.len() <= 2, "cache exceeded its bound");
        // The least-recently-used image (configs[0]) was evicted: going
        // back is a cold boot, not a hit.
        let hits = e.stats().cache_hits;
        let builds = e.stats().factory_builds;
        e.prepare(&configs[0]);
        assert_eq!(e.stats().cache_hits, hits);
        assert_eq!(e.stats().factory_builds, builds + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(0);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        e.prepare(&other);
        e.prepare(&base);
        assert_eq!(e.stats().factory_builds, 3);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn restore_equals_reset_guest_state() {
        // The boot snapshot restore must land on exactly the state
        // `reset_guest` lands on — the bit-identity between the two
        // engine modes rests on this.
        let config = HvConfig::default_for(CpuVendor::Intel);
        for mut hv in [
            Box::new(Vkvm::new(config.clone())) as Box<dyn L0Hypervisor>,
            Box::new(Vxen::new(config.clone())) as Box<dyn L0Hypervisor>,
        ] {
            let boot = hv.snapshot();
            hv.l1_exec(nf_silicon::GuestInstr::MovToCr(
                nf_silicon::CrIndex::Cr4,
                nf_x86::Cr4::VMXE | nf_x86::Cr4::PAE,
            ));
            hv.l1_exec(nf_silicon::GuestInstr::Vmxon(0x1000));
            assert_ne!(hv.snapshot(), boot, "probe must dirty state");
            hv.reset_guest();
            let via_reset = hv.snapshot();
            hv.restore(&boot);
            let via_restore = hv.snapshot();
            assert_eq!(via_restore, via_reset, "{}", hv.name());
            assert_eq!(via_restore, boot, "{}", hv.name());
        }
    }

    #[test]
    fn collect_coverage_recycles_the_scratch() {
        let mut e = engine(EngineMode::Snapshot);
        let probe = nf_silicon::GuestInstr::Rdmsr(nf_x86::Msr::VmxBasic.index());
        e.hv_mut().l1_exec(probe);
        e.collect_coverage();
        let first_bitmap = e.scratch().bitmap.clone();
        let first_lines = e.scratch().lines.clone();
        assert!(!e.scratch().trace.is_empty());
        assert!(first_bitmap.iter().any(|&b| b != 0));
        assert!(first_lines.count() > 0);

        // A second identical exec reproduces the same scratch contents:
        // the wipe left no residue and the swap handed a clean trace
        // back to the hypervisor.
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.hv_mut().l1_exec(probe);
        e.collect_coverage();
        assert_eq!(e.scratch().bitmap, first_bitmap);
        assert_eq!(e.scratch().lines, first_lines);

        // An empty exec leaves an all-zero bitmap and empty lines.
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.collect_coverage();
        assert!(e.scratch().bitmap.iter().all(|&b| b == 0));
        assert_eq!(e.scratch().lines.count(), 0);
        assert!(e.scratch().trace.is_empty());
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [EngineMode::Snapshot, EngineMode::Rebuild] {
            assert_eq!(EngineMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(EngineMode::parse("warp"), None);
    }
}
