//! The persistent-execution engine: the iteration hot path.
//!
//! The paper's whole premise is that a fuzz-harness VM makes each
//! fuzzing iteration cheap by avoiding guest-OS reboots (§3.2, §4.5).
//! The engine realizes that on the simulator side:
//!
//! - **Snapshot restore instead of reboot.** A boot-time
//!   [`HvSnapshot`] is captured once per hypervisor instance; before
//!   every test case the engine *restores* it (delta copy of dirtied
//!   state) instead of re-deriving boot state.
//! - **Booted-image cache.** The vCPU configurator flips the
//!   [`HvConfig`] constantly; instead of re-running the hypervisor
//!   factory on every flip, the engine keeps an LRU-bounded cache of
//!   booted instances keyed by config, and a flip restores a cached
//!   image.
//! - **Memoized validator corrections.** The [`VmStateValidator`] is a
//!   pure function of its [`VmxCapabilities`] plus the corrections
//!   learned from the oracle; when a config flip leaves the
//!   capabilities unchanged (e.g. only the `nested` switch moved), the
//!   engine reuses the validator as-is instead of rebuilding it and
//!   re-cloning its correction history.
//!
//! - **Reusable execution scratch.** The engine owns the
//!   [`ExecScratch`] of the zero-allocation hot path: per iteration the
//!   hypervisor's trace is *swapped* (not cloned) into the scratch,
//!   projected onto the reusable AFL bitmap with a targeted wipe of the
//!   previous projection, and the line set is cleared in place — the
//!   steady-state loop performs no heap allocation (the `hotpath`
//!   bench's counting allocator enforces this).
//!
//! [`EngineMode::Rebuild`] preserves the original full-rebuild
//! semantics for A/B measurement (`necofuzz --engine rebuild`, the
//! `throughput` bench). The two modes are **bit-identical** in
//! observable results — `tests/engine_equivalence.rs` asserts
//! [`crate::campaign::CampaignResult`] equality over the whole
//! backend × mode × mask grid.

use std::collections::BTreeMap;
use std::sync::Arc;

use nf_coverage::{ExecScratch, ExecTrace};
use nf_fuzz::MAP_SIZE;
use nf_hv::store::{Digest128, InternStore, SnapshotStore};
use nf_hv::{FaultPlan, HvConfig, HvSnapshot, L0Hypervisor, RestoreFault, SharedFaults};
use nf_vmx::VmxCapabilities;
use nf_x86::FeatureSet;

use crate::harness::{ExecEvent, ExecPhase};
use crate::validator::VmStateValidator;

/// How the engine turns a config change / iteration boundary into a
/// runnable hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Snapshot-based persistent execution: boot images are cached per
    /// config and restored via [`L0Hypervisor::restore`].
    Snapshot,
    /// The original semantics: re-run the factory on every config
    /// change and re-derive boot state with
    /// [`L0Hypervisor::reset_guest`] each iteration.
    Rebuild,
}

impl EngineMode {
    /// Parses the CLI spelling (`snapshot` / `rebuild`).
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "snapshot" => Some(EngineMode::Snapshot),
            "rebuild" => Some(EngineMode::Rebuild),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Snapshot => "snapshot",
            EngineMode::Rebuild => "rebuild",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default number of booted images the snapshot cache keeps (beyond
/// the active one). The configurator's sanitized feature space is
/// small; a handful of images covers the vast majority of flips.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Default byte budget of the mid-scenario snapshot trie. Nodes are a
/// few kilobytes each (a [`HvSnapshot`] plus the partial trace and
/// event log), so the default holds a deep working set while still
/// exercising eviction on long campaigns.
pub const DEFAULT_PREFIX_BUDGET: usize = 8 << 20;

/// Default hotness threshold before a scenario boundary is captured
/// into the trie: a prefix must be seen this many times before it pays
/// for a snapshot. `1` captures at every boundary (the exhaustive
/// setting the equivalence tests use).
pub const DEFAULT_PREFIX_THRESHOLD: u32 = 2;

/// Slots in the fixed-size direct-mapped prefix-hotness table (a power
/// of two; collisions replace, so the table never allocates or grows).
const HOT_SLOTS: usize = 4096;

/// Bounded retry budget for a faulted snapshot restore: transient
/// faults clear under retry; a restore still failing after this many
/// attempts is treated as permanent and the image is quarantined.
pub const MAX_RESTORE_RETRIES: u32 = 3;

/// A fault the engine surfaced as a value instead of a panic. The
/// engine's own `prepare` path *services* these (retry, then quarantine
/// and degrade) — the type exists so callers and tests can observe what
/// happened rather than unwinding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A snapshot restore failed past the retry budget; the image was
    /// quarantined and serviced by a factory rebuild.
    RestoreFailed(RestoreFault),
    /// The engine needed a boot image that was missing (snapshot-mode
    /// invariant broken); serviced by a guest reset.
    MissingBootImage,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RestoreFailed(fault) => write!(f, "boot restore failed: {fault}"),
            EngineError::MissingBootImage => write!(f, "snapshot mode lost its boot image"),
        }
    }
}

impl std::error::Error for EngineError {}

/// How the prefix trie stores the state a node captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixStoreMode {
    /// Content-addressed copy-on-write store (the default): heavy
    /// snapshot components, trace blobs, and event-log segments are
    /// interned by content digest and shared across nodes; the byte
    /// budget charges each unique blob once, so the same budget holds
    /// many times more boundaries.
    Cow,
    /// Deep-copied nodes (PR 7 semantics): every node owns its whole
    /// snapshot, trace, and event log, and the budget charges the full
    /// footprint of every node. Kept as the A/B baseline the
    /// `prefix_speedup` bench measures the CoW store against.
    DeepCopy,
}

impl PrefixStoreMode {
    /// Parses the CLI/bench spelling (`cow` / `deep`).
    pub fn parse(s: &str) -> Option<PrefixStoreMode> {
        match s {
            "cow" => Some(PrefixStoreMode::Cow),
            "deep" => Some(PrefixStoreMode::DeepCopy),
            _ => None,
        }
    }

    /// The CLI/bench spelling.
    pub fn name(self) -> &'static str {
        match self {
            PrefixStoreMode::Cow => "cow",
            PrefixStoreMode::DeepCopy => "deep",
        }
    }
}

impl std::fmt::Display for PrefixStoreMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Content digest of an event-log segment (framed per event so
/// adjacent segments cannot alias a merged one).
fn events_digest(events: &[ExecEvent]) -> u128 {
    use std::fmt::Write as _;
    let mut d = Digest128::new();
    let mut buf = String::new();
    for e in events {
        buf.clear();
        write!(buf, "{e:?}").expect("formatting into a String cannot fail");
        d.bytes(buf.as_bytes());
        d.byte(0xff);
    }
    d.value()
}

/// Footprint charged for an event-log segment.
fn events_bytes(events: &[ExecEvent]) -> usize {
    std::mem::size_of_val(events)
}

/// Counters describing how the engine serviced the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Hypervisor instances built through the factory (cold boots).
    pub factory_builds: u64,
    /// Config flips serviced from the booted-image cache.
    pub cache_hits: u64,
    /// Iteration resets serviced by snapshot restore.
    pub snapshot_restores: u64,
    /// Config flips where the validator was reused because the
    /// capabilities were unchanged.
    pub validator_reuses: u64,
    /// Config flips where the validator was rebuilt (new capabilities,
    /// corrections carried over).
    pub validator_rebuilds: u64,
    /// Executions that restored a mid-scenario snapshot from the
    /// prefix trie (deepest cached ancestor).
    pub prefix_hits: u64,
    /// Prefix-cache lookups that found no cached ancestor.
    pub prefix_misses: u64,
    /// Scenario units (init steps + runtime steps) whose re-execution
    /// was skipped by restoring a cached prefix.
    pub prefix_units_skipped: u64,
    /// Mid-scenario snapshots captured into the trie.
    pub prefix_captures: u64,
    /// Trie nodes evicted by the byte-budgeted LRU policy.
    pub prefix_evictions: u64,
    /// Bytes currently resident in the trie (unique blobs charged once
    /// under the CoW store, full per-node footprints under deep copy).
    pub prefix_bytes_resident: u64,
    /// Nodes currently resident in the trie.
    pub prefix_nodes: u64,
    /// Cumulative blob bytes offered to the content-addressed store by
    /// trie captures (zero under the deep-copy store).
    pub prefix_blob_bytes_interned: u64,
    /// The unique subset of [`EngineStats::prefix_blob_bytes_interned`]:
    /// blob bytes that were new to the store when offered.
    pub prefix_blob_bytes_unique: u64,
    /// Deepest prefix (in scenario units) ever restored from the trie.
    pub prefix_max_hit_depth: u64,
    /// Boot restores retried after a transient restore fault.
    pub restore_retries: u64,
    /// Transient restore faults observed (each cleared by a retry).
    pub restore_transient_faults: u64,
    /// Virtual backoff units waited across restore retries (exponential:
    /// 2, 4, 8, ... per successive attempt of one restore).
    pub restore_backoff_units: u64,
    /// Boot images quarantined after an unrecoverable restore fault.
    pub quarantined_images: u64,
    /// Prefix-trie nodes quarantined after their restore faulted.
    pub quarantined_prefix_nodes: u64,
    /// Mid-scenario snapshot captures discarded for a corrupt digest.
    pub captures_corrupted: u64,
    /// Executions serviced in degraded mode: the boot image was
    /// quarantined and the instance rebuilt from the factory.
    pub degraded_mode: u64,
}

impl EngineStats {
    /// Blob-store dedup ratio: bytes offered per byte actually stored.
    /// `1.0` means no structural sharing (every blob was unique — also
    /// the deep-copy store's fixed answer); `2.0` means every blob was
    /// stored once but offered twice.
    pub fn prefix_dedup_ratio(&self) -> f64 {
        if self.prefix_blob_bytes_unique == 0 {
            1.0
        } else {
            self.prefix_blob_bytes_interned as f64 / self.prefix_blob_bytes_unique as f64
        }
    }
}

/// One parked booted image: the instance plus its boot snapshot.
///
/// The snapshot is boxed: [`HvSnapshot`] holds VMCS/VMCB images
/// inline, and cache rotation must move pointers, not kilobytes.
struct CachedImage {
    config: HvConfig,
    hv: Box<dyn L0Hypervisor>,
    boot: Box<HvSnapshot>,
}

/// One parked validator, keyed by the feature set it was derived from.
///
/// A validator is a pure function of its [`VmxCapabilities`] (itself a
/// pure function of the feature set) plus the corrections learned from
/// the oracle. Corrections are append-only and shared across the whole
/// campaign, so `validator.corrections.len()` acts as a staleness
/// stamp: a parked validator whose correction count still matches the
/// active history is *identical* to what a fresh
/// [`VmStateValidator::with_corrections_of`] rebuild would produce,
/// and can be reused as-is.
struct ParkedValidator {
    features: FeatureSet,
    validator: VmStateValidator,
}

/// One interned event-log segment: the observer-visible events between
/// two captured boundaries of one execution. A node's event log is a
/// *chain* of segments — child nodes share every parent segment by
/// handle and add one suffix segment, so a deep prefix's log costs its
/// own suffix, not a fresh copy of the whole history.
#[derive(Clone)]
struct EventSeg {
    digest: u128,
    events: Arc<Vec<ExecEvent>>,
}

/// One mid-scenario checkpoint: the VM state, in-flight trace, and
/// observable event log of a scenario prefix, keyed in the trie by the
/// prefix's rolling hash.
///
/// The key is the whole identity: it covers the hypervisor config, the
/// generated VMCS/VMCB/MSR-area image digests, and every scenario unit
/// up to the boundary (see `Agent`'s chain construction), so a node can
/// only ever be restored into an execution whose prefix is
/// bit-identical to the one that captured it. Config flips and learned
/// validator corrections change the key's root — stale nodes become
/// unreachable and age out through the LRU budget.
struct PrefixNode {
    /// Scenario units (init steps + runtime steps) the prefix covers.
    depth: usize,
    snapshot: Box<HvSnapshot>,
    /// The in-flight coverage trace at the boundary ([`HvSnapshot`]
    /// excludes instrumentation, so it is captured separately).
    trace: Arc<ExecTrace>,
    trace_digest: u128,
    /// The observer-visible events of the prefix as a shared segment
    /// chain, composed in order on restore.
    segments: Vec<EventSeg>,
    /// The phase machine at the boundary (guest liveness, exit count).
    phase: ExecPhase,
    /// Bytes this node's capture charged against the budget (full
    /// footprint under deep copy; newly-resident delta under CoW, where
    /// the refund is recomputed from the store at eviction instead).
    bytes: usize,
    /// LRU stamp (monotone clock; smallest = evict first).
    stamp: u64,
}

impl PrefixNode {
    /// The node's structural overhead outside the blob stores.
    fn overhead_bytes(&self) -> usize {
        std::mem::size_of::<PrefixNode>() + self.segments.len() * std::mem::size_of::<EventSeg>()
    }
}

/// The snapshot trie and its policy state. Logically a trie over
/// scenario prefixes — the chain *is* the tree structure, so nodes
/// never store edges; physically a hash-keyed node map plus a
/// stamp-ordered eviction index, both O(log n) per operation.
struct PrefixCache {
    enabled: bool,
    mode: PrefixStoreMode,
    budget: usize,
    threshold: u32,
    /// Nodes keyed by prefix hash.
    nodes: BTreeMap<u64, PrefixNode>,
    /// Stamp-ordered eviction index (`stamp -> key`). Stamps are unique
    /// (the clock bumps on every touch/insert), so the first entry *is*
    /// the stalest node — eviction pops it in O(log n) instead of the
    /// O(n) stalest-scan this index replaced.
    by_stamp: BTreeMap<u64, u64>,
    /// Total bytes charged against the budget.
    bytes: usize,
    /// Monotone LRU clock (deterministic: bumps on touch/insert only).
    clock: u64,
    /// Direct-mapped `(key, count)` hotness table (fixed size, replace
    /// on collision): a boundary is captured once its prefix has been
    /// seen `threshold` times.
    hot: Vec<(u64, u32)>,
    /// Reusable trace buffer for restores (the hypervisor's cleared
    /// trace is parked here between them).
    spare: ExecTrace,
    /// The current execution's segment chain: the segments covering the
    /// events already captured (or restored) this exec, extended at
    /// each captured boundary. Reset by [`ExecutionEngine::prefix_restore`].
    cur_segments: Vec<EventSeg>,
    /// Events covered by `cur_segments`.
    cur_covered: usize,
    /// Content-addressed snapshot-component store, shared with the
    /// engine's booted-image LRU.
    snapshots: SnapshotStore,
    /// Interned boundary traces.
    traces: InternStore<ExecTrace>,
    /// Interned event-log segments.
    events: InternStore<Vec<ExecEvent>>,
}

impl PrefixCache {
    fn new() -> Self {
        PrefixCache {
            enabled: false,
            mode: PrefixStoreMode::Cow,
            budget: DEFAULT_PREFIX_BUDGET,
            threshold: DEFAULT_PREFIX_THRESHOLD,
            nodes: BTreeMap::new(),
            by_stamp: BTreeMap::new(),
            bytes: 0,
            clock: 0,
            hot: vec![(0, 0); HOT_SLOTS],
            spare: ExecTrace::new(),
            cur_segments: Vec::new(),
            cur_covered: 0,
            snapshots: SnapshotStore::new(),
            traces: InternStore::new(),
            events: InternStore::new(),
        }
    }

    /// Bumps the hotness of `key`; `true` once it crossed the capture
    /// threshold.
    fn note_hot(&mut self, key: u64) -> bool {
        let slot = &mut self.hot[(key as usize) & (HOT_SLOTS - 1)];
        if slot.0 != key {
            *slot = (key, 1);
        } else {
            slot.1 = slot.1.saturating_add(1);
        }
        slot.1 >= self.threshold
    }

    /// Cumulative blob bytes offered across the three stores.
    fn interned_bytes(&self) -> u64 {
        self.snapshots.interned_bytes()
            + self.traces.interned_bytes()
            + self.events.interned_bytes()
    }

    /// Cumulative blob bytes that were new across the three stores.
    fn unique_bytes(&self) -> u64 {
        self.snapshots.unique_bytes() + self.traces.unique_bytes() + self.events.unique_bytes()
    }

    /// Releases an evicted node's blobs from the stores and returns the
    /// bytes to refund against the budget. Under CoW the refund is
    /// whatever the stores actually freed (a shared blob frees nothing
    /// until its last holder goes) plus the node overhead; under deep
    /// copy it is the full footprint the capture charged.
    fn release_node(&mut self, node: PrefixNode) -> usize {
        match self.mode {
            PrefixStoreMode::Cow => {
                let mut freed = self.snapshots.release(&node.snapshot);
                freed += self.traces.release(&node.trace, node.trace_digest);
                for seg in &node.segments {
                    freed += self.events.release(&seg.events, seg.digest);
                }
                freed + node.overhead_bytes()
            }
            PrefixStoreMode::DeepCopy => node.bytes,
        }
    }
}

/// The engine: owns the active hypervisor instance, the booted-image
/// cache, and the (memoized) VM state validator.
pub struct ExecutionEngine {
    factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
    mode: EngineMode,
    hv: Box<dyn L0Hypervisor>,
    /// Boot image of the active instance (`Snapshot` mode only).
    boot: Option<Box<HvSnapshot>>,
    /// Parked booted images, least-recently-used first.
    cache: Vec<CachedImage>,
    capacity: usize,
    validator: VmStateValidator,
    /// Feature set the active validator was derived from (`None` when
    /// the initial capabilities were not derived from the initial
    /// config's features — the memo shortcut then misses once).
    validator_features: Option<FeatureSet>,
    /// Parked validators, least-recently-used first (`Snapshot` mode).
    validator_pool: Vec<ParkedValidator>,
    /// The reusable per-execution buffers (trace, AFL bitmap, lines).
    scratch: ExecScratch,
    /// The mid-scenario snapshot trie (`Snapshot` mode, off by default).
    prefix: PrefixCache,
    /// The shared fault injector, when a plan is installed; handed to
    /// the active instance, every cached image, and every instance the
    /// factory builds later.
    faults: Option<SharedFaults>,
    stats: EngineStats,
}

impl ExecutionEngine {
    /// Boots an engine on `factory` with the given initial config and
    /// validator capabilities.
    pub fn new(
        factory: Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>>,
        config: HvConfig,
        validator_caps: VmxCapabilities,
        mode: EngineMode,
    ) -> Self {
        let features = config.features;
        let hv = factory(config);
        let mut prefix = PrefixCache::new();
        let boot = match mode {
            EngineMode::Snapshot => {
                let mut boot = Box::new(hv.snapshot());
                // Boot images share the trie's component store (their
                // blobs dedup against mid-scenario snapshots) but are
                // never charged against the trie's byte budget.
                prefix.snapshots.intern(&mut boot);
                Some(boot)
            }
            EngineMode::Rebuild => None,
        };
        let validator_features = if VmxCapabilities::from_features(features) == validator_caps {
            Some(features)
        } else {
            None
        };
        let scratch = ExecScratch::new(hv.coverage_map(), MAP_SIZE);
        ExecutionEngine {
            factory,
            mode,
            hv,
            boot,
            cache: Vec::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            validator: VmStateValidator::new(validator_caps),
            validator_features,
            validator_pool: Vec::new(),
            scratch,
            prefix,
            faults: None,
            stats: EngineStats {
                factory_builds: 1,
                ..EngineStats::default()
            },
        }
    }

    /// Bounds both the booted-image cache and the validator pool
    /// (snapshot mode). `0` disables caching entirely — every config
    /// flip becomes a cold boot, and every capability-changing flip a
    /// validator rebuild (only the active-features shortcut survives).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.set_cache_capacity(capacity);
        self
    }

    /// Non-consuming form of
    /// [`with_cache_capacity`](Self::with_cache_capacity).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Installs a deterministic fault plan: builds the shared
    /// [`FaultInjector`](nf_hv::FaultInjector) and hands it to the
    /// active instance, every cached image, and every instance booted
    /// from here on. A zero plan installs an injector that never fires.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Non-consuming form of [`with_fault_plan`](Self::with_fault_plan).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let faults = nf_hv::fault::shared(plan);
        self.hv.install_faults(faults.clone());
        for image in &mut self.cache {
            image.hv.install_faults(faults.clone());
        }
        self.faults = Some(faults);
    }

    /// The shared fault-injector handle, when a plan is installed (the
    /// agent opens each execution on it; campaign summaries read its
    /// fired counters).
    pub fn faults(&self) -> Option<SharedFaults> {
        self.faults.clone()
    }

    /// Enables (or disables) the mid-scenario snapshot trie. Only
    /// effective in `Snapshot` mode — prefix restores are snapshot
    /// restores, and `Rebuild` exists precisely to measure life without
    /// them.
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.set_prefix_cache(enabled);
        self
    }

    /// Non-consuming form of [`with_prefix_cache`](Self::with_prefix_cache).
    pub fn set_prefix_cache(&mut self, enabled: bool) {
        self.prefix.enabled = enabled;
    }

    /// Sets the trie's byte budget (LRU-evicted past it). `0` keeps the
    /// trie permanently empty — every capture is immediately evicted.
    pub fn set_prefix_budget(&mut self, bytes: usize) {
        self.prefix.budget = bytes;
    }

    /// Sets the capture hotness threshold (`1` = snapshot at every
    /// scenario boundary).
    pub fn set_prefix_threshold(&mut self, threshold: u32) {
        self.prefix.threshold = threshold.max(1);
    }

    /// Selects the trie's snapshot store ([`PrefixStoreMode::Cow`] by
    /// default; [`PrefixStoreMode::DeepCopy`] is the A/B baseline).
    pub fn with_prefix_store(mut self, mode: PrefixStoreMode) -> Self {
        self.set_prefix_store(mode);
        self
    }

    /// Non-consuming form of [`with_prefix_store`](Self::with_prefix_store).
    /// Switching modes clears the trie (nodes captured under one
    /// accounting scheme cannot be refunded under the other), releasing
    /// every node under the outgoing mode first.
    pub fn set_prefix_store(&mut self, mode: PrefixStoreMode) {
        if self.prefix.mode == mode {
            return;
        }
        while let Some((_, key)) = self.prefix.by_stamp.pop_first() {
            let node = self
                .prefix
                .nodes
                .remove(&key)
                .expect("stamp index tracks nodes");
            let refund = self.prefix.release_node(node);
            self.prefix.bytes = self.prefix.bytes.saturating_sub(refund);
        }
        debug_assert!(self.prefix.nodes.is_empty());
        self.prefix.bytes = 0;
        self.prefix.cur_segments.clear();
        self.prefix.cur_covered = 0;
        self.prefix.mode = mode;
        self.stats.prefix_bytes_resident = 0;
        self.stats.prefix_nodes = 0;
    }

    /// `true` when the prefix trie is active (enabled and in `Snapshot`
    /// mode).
    pub fn prefix_enabled(&self) -> bool {
        self.prefix.enabled && self.mode == EngineMode::Snapshot
    }

    /// Looks up the deepest cached ancestor of a prefix-hash chain and
    /// restores it: VM state from the node's snapshot, the in-flight
    /// trace from the node's recorded partial trace. `chain[k]` must be
    /// the rolling hash after `k` scenario units (`chain[0]` = the
    /// post-boot root, which is never a node — that case is the plain
    /// boot restore [`prepare`](Self::prepare) already performed).
    ///
    /// Returns the restored node's key for
    /// [`prefix_node_events`](Self::prefix_node_events) /
    /// [`prefix_node_phase`](Self::prefix_node_phase) /
    /// [`prefix_node_depth`](Self::prefix_node_depth); the key stays
    /// valid until the node is evicted.
    ///
    /// Also begins the execution's segment-chain bookkeeping: on a hit
    /// the node's event-segment chain becomes the current chain (later
    /// captures extend it with suffix segments), on a miss the chain
    /// starts empty.
    pub fn prefix_restore(&mut self, chain: &[u64]) -> Option<u64> {
        if !self.prefix_enabled() {
            return None;
        }
        self.prefix.cur_segments.clear();
        self.prefix.cur_covered = 0;
        let found = chain
            .iter()
            .skip(1)
            .rev()
            .find(|k| self.prefix.nodes.contains_key(k))
            .copied();
        let Some(key) = found else {
            self.stats.prefix_misses += 1;
            return None;
        };
        let node = self.prefix.nodes.get_mut(&key).expect("just found");
        // Prefix restores share the boot path's retry budget; a node
        // whose restore still faults is quarantined (evicted and
        // released) and the lookup degrades to a miss — the hypervisor
        // is untouched on failure (`try_restore` asks the injector
        // before mutating), so it still holds the boot state `prepare`
        // established and a full replay is safe.
        let mut attempt = 0u32;
        let quarantine = loop {
            match self.hv.try_restore(&node.snapshot) {
                Ok(()) => break false,
                Err(RestoreFault::Transient) if attempt < MAX_RESTORE_RETRIES => {
                    attempt += 1;
                    self.stats.restore_transient_faults += 1;
                    self.stats.restore_retries += 1;
                    self.stats.restore_backoff_units += 1u64 << attempt;
                }
                Err(_) => break true,
            }
        };
        if quarantine {
            let stamp = node.stamp;
            self.prefix.by_stamp.remove(&stamp);
            let node = self.prefix.nodes.remove(&key).expect("just found");
            let refund = self.prefix.release_node(node);
            self.prefix.bytes = self.prefix.bytes.saturating_sub(refund);
            self.stats.quarantined_prefix_nodes += 1;
            self.stats.prefix_bytes_resident = self.prefix.bytes as u64;
            self.stats.prefix_nodes = self.prefix.nodes.len() as u64;
            self.stats.prefix_misses += 1;
            return None;
        }
        let node = self.prefix.nodes.get_mut(&key).expect("just found");
        // The hypervisor's trace is empty at execution start (the last
        // collection swapped a cleared one in); park it as the next
        // spare and hand the prefix's partial trace over.
        self.prefix.spare.copy_from(&node.trace);
        self.hv.swap_trace(&mut self.prefix.spare);
        self.prefix.by_stamp.remove(&node.stamp);
        node.stamp = self.prefix.clock;
        self.prefix.by_stamp.insert(node.stamp, key);
        self.prefix.clock += 1;
        self.prefix.cur_segments = node.segments.clone();
        self.prefix.cur_covered = node.segments.iter().map(|s| s.events.len()).sum();
        self.stats.prefix_hits += 1;
        self.stats.prefix_units_skipped += node.depth as u64;
        self.stats.prefix_max_hit_depth = self.stats.prefix_max_hit_depth.max(node.depth as u64);
        Some(key)
    }

    /// The recorded observer events of a restored node (replay these
    /// into the execution's observer before running the suffix),
    /// composed in order from the node's shared segment chain.
    pub fn prefix_node_events(&self, key: u64) -> impl Iterator<Item = &ExecEvent> + '_ {
        self.prefix.nodes[&key]
            .segments
            .iter()
            .flat_map(|s| s.events.iter())
    }

    /// The phase machine at a restored node's boundary.
    pub fn prefix_node_phase(&self, key: u64) -> ExecPhase {
        self.prefix.nodes[&key].phase
    }

    /// The number of scenario units a restored node covers.
    pub fn prefix_node_depth(&self, key: u64) -> usize {
        self.prefix.nodes[&key].depth
    }

    /// Notes that live execution crossed a scenario boundary whose
    /// prefix hash is `key`: bumps the boundary's hotness and, once hot
    /// and absent from the trie, captures a node under the byte-budgeted
    /// LRU policy.
    ///
    /// Under [`PrefixStoreMode::Cow`] the capture is a delta against
    /// the current chain: snapshot components, the boundary trace, and
    /// the event suffix since the last captured (or restored) boundary
    /// are interned, so the budget is charged only for bytes that were
    /// not already resident. Under [`PrefixStoreMode::DeepCopy`] the
    /// node is self-contained and charged its full footprint.
    ///
    /// Never called for boundaries past a host death — execution stops
    /// there, so the state is not a resumable prefix.
    pub fn prefix_note_boundary(
        &mut self,
        key: u64,
        depth: usize,
        phase: ExecPhase,
        events: &[ExecEvent],
    ) {
        if !self.prefix_enabled() || !self.prefix.note_hot(key) {
            return;
        }
        if self.prefix.cur_covered > events.len() {
            // Direct callers (tests, benches) may present a shorter log
            // than the chain already covers; start the chain over.
            self.prefix.cur_segments.clear();
            self.prefix.cur_covered = 0;
        }
        if self.prefix.nodes.contains_key(&key) {
            return;
        }
        // Injected capture corruption: the snapshot would come back
        // with a bad digest, so discard the capture (perf-only — the
        // boundary is simply not cached this time around).
        if let Some(faults) = &self.faults {
            if faults.borrow_mut().check_capture() {
                self.stats.captures_corrupted += 1;
                return;
            }
        }
        let mut trace = ExecTrace::new();
        trace.copy_from(self.hv.trace());
        let trace_digest = trace.content_digest();
        let trace_bytes = trace.approx_bytes();
        let mut trace = Arc::new(trace);
        let mut snapshot = Box::new(self.hv.snapshot());
        let mut segments = match self.prefix.mode {
            PrefixStoreMode::Cow => {
                // Extend the current chain with this boundary's suffix
                // (skipped when empty — the chain already covers it).
                let suffix = &events[self.prefix.cur_covered..];
                let mut segs = self.prefix.cur_segments.clone();
                if !suffix.is_empty() {
                    segs.push(EventSeg {
                        digest: events_digest(suffix),
                        events: Arc::new(suffix.to_vec()),
                    });
                }
                segs
            }
            PrefixStoreMode::DeepCopy => {
                // Self-contained single segment holding the full log.
                if events.is_empty() {
                    Vec::new()
                } else {
                    vec![EventSeg {
                        digest: events_digest(events),
                        events: Arc::new(events.to_vec()),
                    }]
                }
            }
        };
        let charged = match self.prefix.mode {
            PrefixStoreMode::Cow => {
                let mut new = self.prefix.snapshots.intern(&mut snapshot);
                new += self
                    .prefix
                    .traces
                    .intern(&mut trace, trace_digest, trace_bytes);
                for seg in &mut segments {
                    let seg_bytes = events_bytes(&seg.events);
                    new += self
                        .prefix
                        .events
                        .intern(&mut seg.events, seg.digest, seg_bytes);
                }
                new
            }
            PrefixStoreMode::DeepCopy => {
                std::mem::size_of::<HvSnapshot>()
                    + snapshot.heap_bytes()
                    + trace_bytes
                    + segments
                        .iter()
                        .map(|s| events_bytes(&s.events))
                        .sum::<usize>()
            }
        };
        let stamp = self.prefix.clock;
        self.prefix.clock += 1;
        let node = PrefixNode {
            depth,
            snapshot,
            trace,
            trace_digest,
            segments,
            phase,
            bytes: 0,
            stamp,
        };
        let bytes = node.overhead_bytes() + charged;
        self.prefix.cur_segments = node.segments.clone();
        self.prefix.cur_covered = events.len();
        self.prefix.by_stamp.insert(stamp, key);
        self.prefix.nodes.insert(key, PrefixNode { bytes, ..node });
        self.prefix.bytes += bytes;
        self.stats.prefix_captures += 1;
        // Byte-budgeted LRU: evict stalest-stamp nodes until the trie
        // fits (possibly including the one just captured when the
        // budget is smaller than a single node). The stamp index makes
        // each eviction O(log n): its first entry is the stalest node.
        while self.prefix.bytes > self.prefix.budget {
            let Some((_, stale_key)) = self.prefix.by_stamp.pop_first() else {
                break;
            };
            let evicted = self
                .prefix
                .nodes
                .remove(&stale_key)
                .expect("stamp index tracks nodes");
            let refund = self.prefix.release_node(evicted);
            self.prefix.bytes = self.prefix.bytes.saturating_sub(refund);
            self.stats.prefix_evictions += 1;
        }
        if self.prefix.nodes.is_empty() {
            // Self-heal any shared-blob accounting drift once the trie
            // is empty (an empty trie charges nothing by definition).
            self.prefix.bytes = 0;
        }
        self.stats.prefix_bytes_resident = self.prefix.bytes as u64;
        self.stats.prefix_nodes = self.prefix.nodes.len() as u64;
        self.stats.prefix_blob_bytes_interned = self.prefix.interned_bytes();
        self.stats.prefix_blob_bytes_unique = self.prefix.unique_bytes();
    }

    /// The engine's mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Hot-path counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The active hypervisor instance.
    pub fn hv(&self) -> &dyn L0Hypervisor {
        self.hv.as_ref()
    }

    /// Mutable access to the active instance (the harness drives it).
    pub fn hv_mut(&mut self) -> &mut dyn L0Hypervisor {
        self.hv.as_mut()
    }

    /// The validator (exposes the oracle-correction state).
    pub fn validator(&self) -> &VmStateValidator {
        &self.validator
    }

    /// Mutable validator access (the generation pipeline learns).
    pub fn validator_mut(&mut self) -> &mut VmStateValidator {
        &mut self.validator
    }

    /// The per-execution scratch buffers. After
    /// [`ExecutionEngine::collect_coverage`], `scratch.bitmap`,
    /// `scratch.lines`, and `scratch.trace` describe the latest
    /// execution; they stay valid until the next collection.
    pub fn scratch(&self) -> &ExecScratch {
        &self.scratch
    }

    /// Mutable scratch access (benches and tests that drive the
    /// collection protocol by hand).
    pub fn scratch_mut(&mut self) -> &mut ExecScratch {
        &mut self.scratch
    }

    /// Collects the just-finished execution's coverage into the
    /// reusable scratch, allocation-free: wipes the previous exec's
    /// bitmap projection edge-by-edge, swaps the hypervisor's trace out
    /// (handing the cleared one back in), and projects it onto the
    /// scratch bitmap and line set.
    pub fn collect_coverage(&mut self) {
        self.scratch.begin_exec();
        self.hv.swap_trace(&mut self.scratch.trace);
        self.scratch.project(self.hv.coverage_map());
    }

    /// Watchdog slow path: fully reboots the active host, clearing its
    /// health state. Deliberately *not* snapshot-based — a dead host
    /// models a real machine power-cycle (§3.2).
    pub fn reboot(&mut self) {
        self.hv.reboot_host();
    }

    /// Iteration fast path: makes the active instance run `config` in
    /// freshly-booted guest state.
    ///
    /// In `Rebuild` mode this is the original agent behavior: a config
    /// change re-runs the factory and the validator rebuild, and every
    /// call re-derives boot state via `reset_guest`. In `Snapshot` mode
    /// a config change swaps in a cached booted image (cold-booting
    /// only on a cache miss) and every call restores the boot snapshot.
    pub fn prepare(&mut self, config: &HvConfig) {
        if self.hv.config() != config {
            self.switch_config(config);
        } else {
            self.reset();
        }
    }

    /// Resets guest state without a config change.
    fn reset(&mut self) {
        match self.mode {
            EngineMode::Rebuild => self.hv.reset_guest(),
            EngineMode::Snapshot => {
                if let Err(error) = self.restore_boot() {
                    self.service_restore_failure(error);
                }
            }
        }
    }

    /// Restores the boot image with bounded retry: transient restore
    /// faults re-roll under retry (with exponential virtual backoff,
    /// counted in [`EngineStats::restore_backoff_units`]); a permanent
    /// fault — or a transient one outlasting [`MAX_RESTORE_RETRIES`] —
    /// surfaces as a value for
    /// [`service_restore_failure`](Self::service_restore_failure) to
    /// degrade on.
    fn restore_boot(&mut self) -> Result<(), EngineError> {
        let mut attempt = 0u32;
        loop {
            let Some(boot) = self.boot.as_ref() else {
                return Err(EngineError::MissingBootImage);
            };
            match self.hv.try_restore(boot) {
                Ok(()) => {
                    self.stats.snapshot_restores += 1;
                    return Ok(());
                }
                Err(RestoreFault::Transient) if attempt < MAX_RESTORE_RETRIES => {
                    attempt += 1;
                    self.stats.restore_transient_faults += 1;
                    self.stats.restore_retries += 1;
                    self.stats.restore_backoff_units += 1u64 << attempt;
                }
                Err(fault) => return Err(EngineError::RestoreFailed(fault)),
            }
        }
    }

    /// Graceful degradation after [`restore_boot`](Self::restore_boot)
    /// gave up: quarantine the poisoned boot image, rebuild the
    /// instance from the factory (re-entering snapshot servicing with a
    /// fresh boot capture), and count the degraded execution. A missing
    /// boot image (broken invariant, not a fault) degrades to a plain
    /// guest reset instead of panicking.
    fn service_restore_failure(&mut self, error: EngineError) {
        self.stats.degraded_mode += 1;
        match error {
            EngineError::MissingBootImage => self.hv.reset_guest(),
            EngineError::RestoreFailed(_) => {
                if let Some(poisoned) = self.boot.take() {
                    self.prefix.snapshots.release(&poisoned);
                    self.stats.quarantined_images += 1;
                }
                let config = self.hv.config().clone();
                self.hv = self.build_instance(config);
                let mut boot = Box::new(self.hv.snapshot());
                self.prefix.snapshots.intern(&mut boot);
                self.boot = Some(boot);
            }
        }
    }

    /// Runs the factory and installs the fault injector (when present)
    /// into the new instance — the single path every boot goes through.
    fn build_instance(&mut self, config: HvConfig) -> Box<dyn L0Hypervisor> {
        let mut hv = (self.factory)(config);
        if let Some(faults) = &self.faults {
            hv.install_faults(faults.clone());
        }
        self.stats.factory_builds += 1;
        hv
    }

    /// Services a config flip: swap (or rebuild) the instance, then
    /// memoize-or-rebuild the validator.
    fn switch_config(&mut self, config: &HvConfig) {
        match self.mode {
            EngineMode::Rebuild => {
                self.hv = self.build_instance(config.clone());
                // Parity with the original path: reset the (already
                // fresh) guest state unconditionally.
                self.hv.reset_guest();
            }
            EngineMode::Snapshot => {
                let incoming = match self.cache.iter().position(|c| c.config == *config) {
                    Some(i) => {
                        self.stats.cache_hits += 1;
                        self.cache.remove(i)
                    }
                    None => {
                        let hv = self.build_instance(config.clone());
                        let mut boot = Box::new(hv.snapshot());
                        self.prefix.snapshots.intern(&mut boot);
                        CachedImage {
                            config: config.clone(),
                            hv,
                            boot,
                        }
                    }
                };
                let outgoing_config = self.hv.config().clone();
                let outgoing_hv = std::mem::replace(&mut self.hv, incoming.hv);
                // A missing outgoing boot image (broken invariant, e.g.
                // mid-quarantine) just means the outgoing instance is
                // not parkable; drop it instead of panicking.
                if let Some(boot) = self.boot.replace(incoming.boot) {
                    let outgoing = CachedImage {
                        config: outgoing_config,
                        hv: outgoing_hv,
                        boot,
                    };
                    if self.capacity > 0 {
                        self.cache.push(outgoing);
                        if self.cache.len() > self.capacity {
                            let dropped = self.cache.remove(0);
                            self.prefix.snapshots.release(&dropped.boot);
                        }
                    } else {
                        self.prefix.snapshots.release(&outgoing.boot);
                    }
                }
                // The cached image was parked mid-campaign (or is
                // freshly booted): restore its boot state either way.
                if let Err(error) = self.restore_boot() {
                    self.service_restore_failure(error);
                }
            }
        }
        match self.mode {
            // Parity with the original agent: recompute the validator
            // (and re-clone its correction history) on every flip.
            EngineMode::Rebuild => {
                self.validator = VmStateValidator::with_corrections_of(
                    VmxCapabilities::from_features(config.features),
                    &self.validator,
                );
                self.stats.validator_rebuilds += 1;
            }
            EngineMode::Snapshot => self.switch_validator(config.features),
        }
    }

    /// Memoized validator switch (`Snapshot` mode): a validator is a
    /// pure function of (feature set, correction history), so parked
    /// validators whose correction count still matches the active
    /// history are reused verbatim — see [`ParkedValidator`].
    fn switch_validator(&mut self, features: FeatureSet) {
        if self.validator_features == Some(features) {
            // Capability-neutral flip (e.g. only `nested` moved): the
            // active validator is exactly what a rebuild would produce.
            self.stats.validator_reuses += 1;
            return;
        }
        let stamp = self.validator.corrections.len();
        let parked = match self
            .validator_pool
            .iter()
            .position(|p| p.features == features)
        {
            Some(i) if self.validator_pool[i].validator.corrections.len() == stamp => {
                Some(self.validator_pool.remove(i).validator)
            }
            Some(i) => {
                // Stale: corrections were learned since it was parked.
                self.validator_pool.remove(i);
                None
            }
            None => None,
        };
        let next = match parked {
            Some(v) => {
                self.stats.validator_reuses += 1;
                v
            }
            None => {
                self.stats.validator_rebuilds += 1;
                VmStateValidator::with_corrections_of(
                    VmxCapabilities::from_features(features),
                    &self.validator,
                )
            }
        };
        let prev = std::mem::replace(&mut self.validator, next);
        if let Some(prev_features) = self.validator_features {
            if self.capacity > 0 {
                self.validator_pool.push(ParkedValidator {
                    features: prev_features,
                    validator: prev,
                });
                if self.validator_pool.len() > self.capacity {
                    self.validator_pool.remove(0);
                }
            }
        }
        self.validator_features = Some(features);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_hv::{Vkvm, Vxen};
    use nf_x86::{CpuFeature, CpuVendor, FeatureSet};

    fn kvm_factory() -> Box<dyn Fn(HvConfig) -> Box<dyn L0Hypervisor>> {
        Box::new(|c| Box::new(Vkvm::new(c)))
    }

    fn engine(mode: EngineMode) -> ExecutionEngine {
        let config = HvConfig::default_for(CpuVendor::Intel);
        let caps = VmxCapabilities::from_features(
            FeatureSet::default_for(CpuVendor::Intel).sanitized(CpuVendor::Intel),
        );
        ExecutionEngine::new(kvm_factory(), config, caps, mode)
    }

    fn flipped_config() -> HvConfig {
        let mut config = HvConfig::default_for(CpuVendor::Intel);
        config.features.remove(CpuFeature::Ept);
        config
    }

    #[test]
    fn config_flip_round_trip_hits_the_cache() {
        let mut e = engine(EngineMode::Snapshot);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        e.prepare(&other);
        assert_eq!(e.stats().factory_builds, 2, "first flip cold-boots");
        e.prepare(&base);
        e.prepare(&other);
        e.prepare(&base);
        let stats = e.stats();
        assert_eq!(stats.factory_builds, 2, "round trips must not rebuild");
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(e.hv().config(), &base);
    }

    #[test]
    fn rebuild_mode_pays_the_factory_on_every_flip() {
        let mut e = engine(EngineMode::Rebuild);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        for _ in 0..3 {
            e.prepare(&other);
            e.prepare(&base);
        }
        assert_eq!(e.stats().factory_builds, 7);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn nested_only_flip_reuses_the_validator() {
        // `nested` is not part of the capability surface: flipping it
        // must swap the instance but keep the validator untouched.
        let mut e = engine(EngineMode::Snapshot);
        e.validator_mut().apply_known_quirk();
        let corrections_ptr = e.validator().corrections.as_ptr();
        let mut nested_off = HvConfig::default_for(CpuVendor::Intel);
        nested_off.nested = false;
        e.prepare(&nested_off);
        assert_eq!(e.stats().validator_reuses, 1);
        assert_eq!(e.stats().validator_rebuilds, 0);
        assert_eq!(
            e.validator().corrections.as_ptr(),
            corrections_ptr,
            "same caps must share the validator, not clone it"
        );
        // A capability-changing flip still rebuilds.
        e.prepare(&flipped_config());
        assert_eq!(e.stats().validator_rebuilds, 1);
    }

    #[test]
    fn lru_eviction_bounds_the_cache() {
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(2);
        let mut configs = Vec::new();
        for n in 0..4u32 {
            let mut c = HvConfig::default_for(CpuVendor::Intel);
            for (i, f) in [CpuFeature::Ept, CpuFeature::Vpid].iter().enumerate() {
                if n & (1 << i) != 0 {
                    c.features.remove(*f);
                }
            }
            configs.push(c);
        }
        for c in &configs {
            e.prepare(c);
        }
        assert!(e.cache.len() <= 2, "cache exceeded its bound");
        // The least-recently-used image (configs[0]) was evicted: going
        // back is a cold boot, not a hit.
        let hits = e.stats().cache_hits;
        let builds = e.stats().factory_builds;
        e.prepare(&configs[0]);
        assert_eq!(e.stats().cache_hits, hits);
        assert_eq!(e.stats().factory_builds, builds + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(0);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let other = flipped_config();
        e.prepare(&other);
        e.prepare(&base);
        assert_eq!(e.stats().factory_builds, 3);
        assert_eq!(e.stats().cache_hits, 0);
    }

    #[test]
    fn restore_equals_reset_guest_state() {
        // The boot snapshot restore must land on exactly the state
        // `reset_guest` lands on — the bit-identity between the two
        // engine modes rests on this.
        let config = HvConfig::default_for(CpuVendor::Intel);
        for mut hv in [
            Box::new(Vkvm::new(config.clone())) as Box<dyn L0Hypervisor>,
            Box::new(Vxen::new(config.clone())) as Box<dyn L0Hypervisor>,
        ] {
            let boot = hv.snapshot();
            hv.l1_exec(nf_silicon::GuestInstr::MovToCr(
                nf_silicon::CrIndex::Cr4,
                nf_x86::Cr4::VMXE | nf_x86::Cr4::PAE,
            ));
            hv.l1_exec(nf_silicon::GuestInstr::Vmxon(0x1000));
            assert_ne!(hv.snapshot(), boot, "probe must dirty state");
            hv.reset_guest();
            let via_reset = hv.snapshot();
            hv.restore(&boot);
            let via_restore = hv.snapshot();
            assert_eq!(via_restore, via_reset, "{}", hv.name());
            assert_eq!(via_restore, boot, "{}", hv.name());
        }
    }

    #[test]
    fn collect_coverage_recycles_the_scratch() {
        let mut e = engine(EngineMode::Snapshot);
        let probe = nf_silicon::GuestInstr::Rdmsr(nf_x86::Msr::VmxBasic.index());
        e.hv_mut().l1_exec(probe);
        e.collect_coverage();
        let first_bitmap = e.scratch().bitmap.clone();
        let first_lines = e.scratch().lines.clone();
        assert!(!e.scratch().trace.is_empty());
        assert!(first_bitmap.iter().any(|&b| b != 0));
        assert!(first_lines.count() > 0);

        // A second identical exec reproduces the same scratch contents:
        // the wipe left no residue and the swap handed a clean trace
        // back to the hypervisor.
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.hv_mut().l1_exec(probe);
        e.collect_coverage();
        assert_eq!(e.scratch().bitmap, first_bitmap);
        assert_eq!(e.scratch().lines, first_lines);

        // An empty exec leaves an all-zero bitmap and empty lines.
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.collect_coverage();
        assert!(e.scratch().bitmap.iter().all(|&b| b == 0));
        assert_eq!(e.scratch().lines.count(), 0);
        assert!(e.scratch().trace.is_empty());
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [EngineMode::Snapshot, EngineMode::Rebuild] {
            assert_eq!(EngineMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(EngineMode::parse("warp"), None);
    }

    #[test]
    fn prefix_cache_requires_snapshot_mode() {
        let mut rebuild = engine(EngineMode::Rebuild);
        rebuild.set_prefix_cache(true);
        assert!(!rebuild.prefix_enabled(), "rebuild mode has no snapshots");
        assert_eq!(rebuild.prefix_restore(&[1, 2, 3]), None);
        assert_eq!(rebuild.stats().prefix_misses, 0, "disabled != miss");

        let mut snapshot = engine(EngineMode::Snapshot);
        assert!(!snapshot.prefix_enabled(), "off by default");
        snapshot.set_prefix_cache(true);
        assert!(snapshot.prefix_enabled());
    }

    #[test]
    fn hotness_threshold_gates_capture() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(2);
        let phase = crate::harness::ExecPhase::boot();
        e.prefix_note_boundary(0xabc, 1, phase, &[]);
        assert_eq!(e.stats().prefix_captures, 0, "first sighting is cold");
        e.prefix_note_boundary(0xabc, 1, phase, &[]);
        assert_eq!(e.stats().prefix_captures, 1, "second sighting is hot");
        e.prefix_note_boundary(0xabc, 1, phase, &[]);
        assert_eq!(e.stats().prefix_captures, 1, "already cached");
        assert_eq!(e.prefix.nodes.len(), 1);
    }

    #[test]
    fn prefix_restore_picks_the_deepest_cached_ancestor() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        let phase = crate::harness::ExecPhase::boot();
        // chain[k] is the rolling hash after k units; cache depths 2
        // and 5 of a 7-unit scenario.
        let chain: Vec<u64> = (0..8).map(|k| 0x1000 + k).collect();
        e.prefix_note_boundary(chain[2], 2, phase, &[]);
        e.prefix_note_boundary(chain[5], 5, phase, &[]);
        let idx = e.prefix_restore(&chain).expect("ancestor cached");
        assert_eq!(e.prefix_node_depth(idx), 5, "deepest wins");
        assert_eq!(e.stats().prefix_hits, 1);
        assert_eq!(e.stats().prefix_units_skipped, 5);
        // A chain sharing only the shallow prefix restores depth 2.
        let mut short = chain[..3].to_vec();
        short.push(0x9999);
        let idx = e.prefix_restore(&short).expect("shallow ancestor");
        assert_eq!(e.prefix_node_depth(idx), 2);
        // chain[0] is the boot root — never a node, so a chain that
        // shares nothing is a miss.
        assert_eq!(e.prefix_restore(&[chain[0], 0x7777]), None);
        assert_eq!(e.stats().prefix_misses, 1);
    }

    #[test]
    fn byte_budget_evicts_the_stalest_node() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        // Deep copy charges every node its full footprint, so the
        // budget arithmetic below is exact (under CoW these identical
        // captures would dedup to a fraction of the bytes).
        e.set_prefix_store(PrefixStoreMode::DeepCopy);
        let phase = crate::harness::ExecPhase::boot();
        e.prefix_note_boundary(1, 1, phase, &[]);
        let node_bytes = e.prefix.bytes;
        assert!(node_bytes > 0);
        // Room for exactly two nodes.
        e.set_prefix_budget(node_bytes * 2);
        e.prefix_note_boundary(2, 2, phase, &[]);
        assert_eq!(e.prefix.nodes.len(), 2);
        assert_eq!(e.stats().prefix_evictions, 0);
        // Freshen node 1, then overflow: node 2 is now the stalest.
        e.prefix_restore(&[0, 1]);
        e.prefix_note_boundary(3, 3, phase, &[]);
        assert_eq!(e.stats().prefix_evictions, 1);
        let keys: Vec<u64> = e.prefix.nodes.keys().copied().collect();
        assert_eq!(keys, vec![1, 3], "LRU evicts the least recently used");
        assert_eq!(e.prefix.bytes, node_bytes * 2);
        assert_eq!(e.stats().prefix_bytes_resident, (node_bytes * 2) as u64);
        assert_eq!(e.stats().prefix_nodes, 2);
    }

    #[test]
    fn stamp_index_matches_linear_scan_eviction_order() {
        // Regression for the O(n) stalest-scan -> stamp-index move: a
        // pseudo-random interleaving of captures and restores must
        // evict in exactly the order the old linear scan produced.
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        e.set_prefix_store(PrefixStoreMode::DeepCopy);
        let phase = crate::harness::ExecPhase::boot();
        e.prefix_note_boundary(1, 1, phase, &[]);
        let node_bytes = e.prefix.bytes;
        e.set_prefix_budget(node_bytes * 4);
        // Linear-scan model: (key, stamp) pairs, min-stamp evicts.
        let mut model: Vec<(u64, u64)> = vec![(1, 0)];
        let mut clock = 1u64;
        let mut evicted_model = Vec::new();
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        for key in 2..30u64 {
            // Pseudo-random touch of an existing node first.
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = model[(lcg >> 33) as usize % model.len()].0;
            if e.prefix_restore(&[0, pick]).is_some() {
                let slot = model
                    .iter_mut()
                    .find(|(k, _)| *k == pick)
                    .expect("model tracks");
                slot.1 = clock;
                clock += 1;
            }
            e.prefix_note_boundary(key, 1, phase, &[]);
            model.push((key, clock));
            clock += 1;
            while model.len() * node_bytes > node_bytes * 4 {
                let stalest = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, s))| *s)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                evicted_model.push(model.remove(stalest).0);
            }
        }
        let mut model_keys: Vec<u64> = model.iter().map(|(k, _)| *k).collect();
        model_keys.sort_unstable();
        let keys: Vec<u64> = e.prefix.nodes.keys().copied().collect();
        assert_eq!(keys, model_keys, "surviving set diverged from linear scan");
        assert_eq!(e.stats().prefix_evictions as usize, evicted_model.len());
    }

    #[test]
    fn cow_store_dedups_identical_captures() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        // The probe leaves a non-empty coverage trace — the blob the
        // second capture dedups against.
        e.hv_mut()
            .l1_exec(nf_silicon::GuestInstr::Rdmsr(nf_x86::Msr::VmxBasic.index()));
        e.prefix_note_boundary(1, 1, crate::harness::ExecPhase::boot(), &[]);
        let first = e.prefix.bytes;
        // Same hypervisor state captured under a different key: every
        // blob dedups, so the second node costs only its overhead.
        e.prefix_note_boundary(2, 2, crate::harness::ExecPhase::boot(), &[]);
        let second = e.prefix.bytes - first;
        assert!(
            second < first,
            "dedup must make the second identical capture cheaper \
             (first {first} B, second {second} B)"
        );
        assert!(e.stats().prefix_dedup_ratio() > 1.0);
        assert!(e.stats().prefix_blob_bytes_interned > e.stats().prefix_blob_bytes_unique);
    }

    #[test]
    fn switching_store_mode_clears_the_trie() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        let phase = crate::harness::ExecPhase::boot();
        e.prefix_note_boundary(1, 1, phase, &[]);
        e.prefix_note_boundary(2, 2, phase, &[]);
        assert_eq!(e.prefix.nodes.len(), 2);
        e.set_prefix_store(PrefixStoreMode::DeepCopy);
        assert_eq!(e.prefix.nodes.len(), 0);
        assert_eq!(e.prefix.bytes, 0);
        assert!(e.prefix.by_stamp.is_empty());
        // Same mode again is a no-op (no clear, no release).
        e.prefix_note_boundary(3, 3, phase, &[]);
        e.set_prefix_store(PrefixStoreMode::DeepCopy);
        assert_eq!(e.prefix.nodes.len(), 1);
    }

    #[test]
    fn restore_tracks_max_hit_depth() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        let phase = crate::harness::ExecPhase::boot();
        let chain: Vec<u64> = (0..8).map(|k| 0x2000 + k).collect();
        e.prefix_note_boundary(chain[2], 2, phase, &[]);
        e.prefix_note_boundary(chain[6], 6, phase, &[]);
        e.prefix_restore(&chain[..4]).expect("depth-2 ancestor");
        assert_eq!(e.stats().prefix_max_hit_depth, 2);
        e.prefix_restore(&chain).expect("depth-6 ancestor");
        assert_eq!(e.stats().prefix_max_hit_depth, 6);
        e.prefix_restore(&chain[..4])
            .expect("depth-2 ancestor again");
        assert_eq!(
            e.stats().prefix_max_hit_depth,
            6,
            "gauge is a high-water mark"
        );
    }

    #[test]
    fn mode_switch_keeps_boot_images_released_in_balance() {
        // Boot images live in the same store as trie nodes; cache
        // eviction and zero-capacity drops must release them without
        // unbalancing the refcounts (release panics on imbalance).
        let mut e = engine(EngineMode::Snapshot).with_cache_capacity(1);
        let base = HvConfig::default_for(CpuVendor::Intel);
        let mut configs = vec![base.clone(), flipped_config()];
        let mut vpid_off = base.clone();
        vpid_off.features.remove(CpuFeature::Vpid);
        configs.push(vpid_off);
        for _ in 0..2 {
            for c in &configs {
                e.prepare(c);
            }
        }
        let mut zero = engine(EngineMode::Snapshot).with_cache_capacity(0);
        for c in &configs {
            zero.prepare(c);
        }
    }

    #[test]
    fn prefix_restore_round_trips_hypervisor_state() {
        let mut e = engine(EngineMode::Snapshot);
        e.set_prefix_cache(true);
        e.set_prefix_threshold(1);
        // Perturb the hypervisor past boot, capture, reset and perturb
        // differently, then restore: the captured state must come back
        // exactly.
        use nf_silicon::{CrIndex, GuestInstr};
        use nf_x86::Cr4;
        e.hv_mut()
            .l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, Cr4::VMXE | Cr4::PAE));
        let captured = e.hv().observe_guest();
        e.prefix_note_boundary(0x55, 3, crate::harness::ExecPhase::boot(), &[]);
        e.prepare(&HvConfig::default_for(CpuVendor::Intel));
        e.hv_mut().l1_exec(GuestInstr::MovToCr(CrIndex::Cr4, 0));
        let idx = e.prefix_restore(&[0, 0x55]).expect("cached");
        assert_eq!(e.prefix_node_depth(idx), 3);
        assert_eq!(e.hv().observe_guest(), captured);
    }
}
